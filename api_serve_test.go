package hdcirc

import (
	"bytes"
	"testing"
)

// TestFacadeServer exercises the serving layer end to end through the
// public API: build, train through ApplyBatch, read through snapshots,
// persist, warm-start.
func TestFacadeServer(t *testing.T) {
	const (
		d = 512
		k = 6
	)
	labels := NewScalarEncoder(NewBasis(Level, 16, d, 0, NewStream(3)), 0, 15)
	srv, err := NewServer(ServerConfig{Dim: d, Classes: k, Shards: 2, Workers: 2, Seed: 9, Labels: labels})
	if err != nil {
		t.Fatal(err)
	}

	src := NewStream(11)
	var batch ServerBatch
	queries := make([]*Vector, 0, 24)
	for i := 0; i < 24; i++ {
		hv := RandomVector(d, src)
		batch.Train = append(batch.Train, ServerSample{Class: i % k, HV: hv})
		queries = append(queries, hv)
	}
	batch.Items = []string{"red", "green", "blue"}
	snap, err := srv.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 1 || snap.Samples() != 24 || snap.NumItems() != 3 {
		t.Fatalf("snapshot state: v%d samples=%d items=%d", snap.Version(), snap.Samples(), snap.NumItems())
	}

	classes, dists := srv.PredictBatch(queries)
	for i := range queries {
		c, dist := snap.Predict(queries[i])
		if classes[i] != c || dists[i] != dist {
			t.Fatalf("batched predict %d diverged from snapshot predict", i)
		}
	}

	greenHV, ok := snap.Item("green")
	if !ok {
		t.Fatal("item green not interned")
	}
	member, sim, ok := srv.Lookup(greenHV)
	if !ok || member != "green" || sim != 1 {
		t.Fatalf("lookup(green) = %q %v %v", member, sim, ok)
	}

	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewServer(ServerConfig{Dim: d, Classes: k, Shards: 2, Workers: 2, Seed: 9, Labels: labels})
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		ac, _ := snap.Predict(q)
		bc, _ := loaded.Snapshot().Predict(q)
		if ac != bc {
			t.Fatalf("warm-started predict %d differs", i)
		}
	}

	stats := srv.Stats()
	if stats.Shards != 2 || stats.Classes != k || !stats.Regression {
		t.Errorf("stats = %+v", stats)
	}
}
