module hdcirc

go 1.24
