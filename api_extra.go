package hdcirc

import (
	"io"

	"hdcirc/internal/core"
	"hdcirc/internal/model"
)

// Thermometer is the thermometer-code basis family (prefix flips;
// deterministic distances), included as a further linearly-correlated
// baseline from the HDC literature.
const Thermometer = core.KindThermometer

// ParseKind converts a family name ("random", "level", "circular", …) into
// a Kind. Case-insensitive.
func ParseKind(s string) (Kind, error) { return core.ParseKind(s) }

// Kinds lists every available basis family.
func Kinds() []Kind { return core.Kinds() }

// ReadBasis deserializes a basis set written with Basis.WriteTo. Together
// they let a deployment ship trained basis sets to inference targets:
//
//	var buf bytes.Buffer
//	basis.WriteTo(&buf)
//	loaded, err := hdcirc.ReadBasis(&buf)
func ReadBasis(r io.Reader) (*Basis, error) { return core.ReadSet(r) }

// ReadClassifier deserializes a classifier written with Classifier.WriteTo.
// The loaded model predicts identically to the saved one.
func ReadClassifier(r io.Reader, seed uint64) (*Classifier, error) {
	return model.ReadClassifier(r, seed)
}

// ReadRegressor deserializes a regressor written with Regressor.WriteTo.
func ReadRegressor(r io.Reader, seed uint64) (*Regressor, error) {
	return model.ReadRegressor(r, seed)
}
