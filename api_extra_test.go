package hdcirc

import (
	"bytes"
	"testing"
)

func TestFacadeThermometerAndParse(t *testing.T) {
	s := NewStream(21)
	basis := NewBasis(Thermometer, 8, 1024, 0, s)
	if basis.Kind() != Thermometer {
		t.Error("thermometer basis kind wrong")
	}
	k, err := ParseKind("circular")
	if err != nil || k != Circular {
		t.Errorf("ParseKind = %v, %v", k, err)
	}
	if len(Kinds()) != 6 {
		t.Errorf("Kinds() = %d families, want 6", len(Kinds()))
	}
}

func TestFacadeBasisSerializationRoundTrip(t *testing.T) {
	s := NewStream(22)
	basis := NewBasis(Circular, 12, 2048, 0.1, s)
	var buf bytes.Buffer
	if _, err := basis.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBasis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < basis.Len(); i++ {
		if !loaded.At(i).Equal(basis.At(i)) {
			t.Fatalf("vector %d differs after round trip", i)
		}
	}
}

func TestFacadeModelSerializationRoundTrip(t *testing.T) {
	d := 1024
	s := NewStream(23)
	clf := NewClassifier(3, d, 24)
	for class := 0; class < 3; class++ {
		clf.Add(class, RandomVector(d, s))
	}
	var buf bytes.Buffer
	if _, err := clf.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadClassifier(&buf, 24)
	if err != nil {
		t.Fatal(err)
	}
	q := RandomVector(d, s)
	p1, _ := clf.Predict(q)
	p2, _ := loaded.Predict(q)
	if p1 != p2 {
		t.Error("classifier predictions diverge after round trip")
	}

	reg := NewRegressor(d, 25)
	reg.Add(RandomVector(d, s), RandomVector(d, s))
	buf.Reset()
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	lreg, err := ReadRegressor(&buf, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !lreg.Model().Equal(reg.Model()) {
		t.Error("regressor model diverges after round trip")
	}
}

func TestFacadeWeightedDecode(t *testing.T) {
	s := NewStream(26)
	enc := NewScalarEncoder(NewBasis(Level, 16, 4096, 0, s), 0, 15)
	q := enc.Encode(8)
	if got := enc.DecodeWeighted(q, 3); got < 7 || got > 9 {
		t.Errorf("weighted decode = %v, want near 8", got)
	}
}
