package hdcirc

import (
	"context"
	"net/http"

	"hdcirc/internal/batch"
	"hdcirc/internal/bitvec"
	"hdcirc/internal/cluster"
	"hdcirc/internal/core"
	"hdcirc/internal/embed"
	"hdcirc/internal/hashring"
	"hdcirc/internal/httpapi"
	"hdcirc/internal/index"
	"hdcirc/internal/markov"
	"hdcirc/internal/model"
	"hdcirc/internal/repl"
	"hdcirc/internal/rng"
	"hdcirc/internal/scenario"
	"hdcirc/internal/serve"
)

// ---------------------------------------------------------------------------
// Hypervector arithmetic
// ---------------------------------------------------------------------------

// Vector is a binary hypervector in {0,1}^d. See the methods on
// bitvec.Vector: Xor (binding), Distance/Similarity, RotateBits
// (permutation), Bit/SetBit/FlipBit and friends.
type Vector = bitvec.Vector

// Accumulator is the integer-counter form of bundling used for training.
type Accumulator = bitvec.Accumulator

// TieBreak selects how bundling majorities resolve ties.
type TieBreak = bitvec.TieBreak

// Tie-break strategies for Majority and Accumulator.Threshold.
const (
	TieZero   = bitvec.TieZero
	TieOne    = bitvec.TieOne
	TieRandom = bitvec.TieRandom
)

// NewVector returns the all-zeros hypervector of dimension d.
func NewVector(d int) *Vector { return bitvec.New(d) }

// NewAccumulator returns an empty bundling accumulator of dimension d.
func NewAccumulator(d int) *Accumulator { return bitvec.NewAccumulator(d) }

// RandomVector draws a uniform hypervector from the stream.
func RandomVector(d int, stream *Stream) *Vector { return bitvec.Random(d, stream) }

// Majority bundles the operands element-wise; see bitvec.Majority.
func Majority(vs []*Vector, tie TieBreak, stream *Stream) *Vector {
	return bitvec.Majority(vs, tie, stream)
}

// Nearest returns the index in vs of the vector nearest to q (ties resolve
// to the lowest index) and the Hamming distance, scanning with the fused
// allocation-free kernel.
func Nearest(q *Vector, vs []*Vector) (idx, hamming int) { return bitvec.Nearest(q, vs) }

// DistanceMany stores the Hamming distance from q to every vs[i] into
// dst[i] (pass nil to allocate) and returns dst.
func DistanceMany(q *Vector, vs []*Vector, dst []int) []int {
	return bitvec.DistanceMany(q, vs, dst)
}

// XorDistance returns the Hamming distance between the binding x ⊗ y and z
// without materializing the bound vector.
func XorDistance(x, y, z *Vector) int { return bitvec.XorDistance(x, y, z) }

// DistanceBounded computes the Hamming distance between a and b with early
// abandon: it bails out of the word loop as soon as the running distance
// exceeds bound, returning (distance, true) when the true distance is at
// most bound and (partial, false) otherwise.
func DistanceBounded(a, b *Vector, bound int) (hd int, within bool) {
	return bitvec.DistanceBounded(a, b, bound)
}

// NearestPruned scans vs for the vector nearest to q among those with
// Hamming distance strictly below bound (ties resolve to the lowest index);
// it returns (-1, bound) when no candidate beats the bound.
func NearestPruned(q *Vector, vs []*Vector, bound int) (idx, hamming int) {
	return bitvec.NearestPruned(q, vs, bound)
}

// ---------------------------------------------------------------------------
// Sublinear associative lookup
// ---------------------------------------------------------------------------

// IndexConfig tunes the bit-sampling sketch indexes (internal/index) that
// serve associative lookups sublinearly past a size threshold: signature
// width, exact-re-rank candidate count, auto-enable threshold, sampling
// seed, radius-screen slack, and Disabled for exact-only operation. The
// zero value selects the defaults (256-bit signatures, auto candidates,
// threshold 2048). Candidates >= collection size makes indexed lookups
// bit-identical to the exact linear scan.
type IndexConfig = index.Config

// AssocIndex is an immutable bit-sampling sketch index over a fixed slice
// of hypervectors: Nearest runs sublinear candidate generation plus exact
// re-rank; WithinRadius screens by signature before exact verification.
// Safe for any number of concurrent readers.
type AssocIndex = index.Index

// DefaultIndexConfig returns the default sketch-index configuration.
func DefaultIndexConfig() IndexConfig { return index.DefaultConfig() }

// NewAssocIndex builds a sketch index over vs (shared, not copied; do not
// mutate the vectors while the index lives). It panics on an empty slice
// or mismatched dimensions.
func NewAssocIndex(vs []*Vector, cfg IndexConfig) *AssocIndex { return index.New(vs, cfg) }

// NewIndexedItemMemory returns an empty item memory whose Lookup is served
// through a sketch index under the given configuration once it grows past
// cfg.MinSize. NewItemMemory already auto-indexes with the defaults; use
// this to tune the recall/latency trade-off or to pin exact mode
// (Candidates >= expected size, or Disabled: true).
func NewIndexedItemMemory(d int, seed uint64, cfg IndexConfig) *ItemMemory {
	im := embed.NewItemMemory(d, seed)
	im.SetIndexConfig(cfg)
	return im
}

// ---------------------------------------------------------------------------
// Batch pipeline
// ---------------------------------------------------------------------------

// BatchPool is a fixed-size worker pool for the concurrent batch pipeline.
// Every batched operation is bit-identical to its sequential counterpart
// regardless of the pool size; see internal/batch for the determinism
// contract.
type BatchPool = batch.Pool

// NewBatchPool returns a pool of the given size; workers <= 0 selects
// GOMAXPROCS.
func NewBatchPool(workers int) *BatchPool { return batch.New(workers) }

// EncodeBatch encodes every sample across the pool and returns the
// hypervectors in input order. The encode function must be safe for
// concurrent use — the record, sequence, n-gram, scalar and circular
// encoders all are (fixed tie vectors, no internal mutation), but
// ItemMemory.Get is not (it lazily inserts; intern symbols first).
func EncodeBatch[T any](p *BatchPool, samples []T, encode func(T) *Vector) []*Vector {
	return batch.Map(p, samples, encode)
}

// Batched training and inference on Classifier — AddBatch, PredictBatch
// and RefineBatch — are methods on the Classifier alias; see
// internal/model.

// ---------------------------------------------------------------------------
// Randomness
// ---------------------------------------------------------------------------

// Stream is a deterministic random stream (xoshiro256** seeded through
// splitmix64).
type Stream = rng.Stream

// NewStream returns a Stream for the given seed.
func NewStream(seed uint64) *Stream { return rng.New(seed) }

// SubStream derives an independent named stream from a root seed; equal
// (seed, label) pairs always produce identical streams.
func SubStream(seed uint64, label string) *Stream { return rng.Sub(seed, label) }

// ---------------------------------------------------------------------------
// Basis-hypervector sets
// ---------------------------------------------------------------------------

// Basis is an ordered basis-hypervector set.
type Basis = core.Set

// Kind identifies a basis-hypervector family.
type Kind = core.Kind

// Basis families.
const (
	// Random is the uncorrelated set for symbolic data.
	Random = core.KindRandom
	// LevelLegacy is the pre-existing fixed-flip level construction.
	LevelLegacy = core.KindLevelLegacy
	// Level is the paper's Algorithm 1 interpolation construction.
	Level = core.KindLevel
	// Circular is the paper's two-phase circular construction.
	Circular = core.KindCircular
	// Scatter is the Markov-calibrated scatter-code construction.
	Scatter = core.KindScatter
)

// NewBasis generates a basis set of the given family with m vectors of
// dimension d. r is the correlation-relaxation hyperparameter of the
// paper's Section 5.2 (used by Level and Circular; pass 0 for the plain
// constructions, it is ignored by the other families).
func NewBasis(kind Kind, m, d int, r float64, stream *Stream) *Basis {
	return core.Config{Kind: kind, M: m, D: d, R: r}.Build(stream)
}

// SimilarityMatrix returns the pairwise similarity matrix of a basis set
// (the paper's Figures 3 and 6).
func SimilarityMatrix(b *Basis) [][]float64 { return core.SimilarityMatrix(b) }

// LevelExpectedDistance returns E[δ(L_i, L_j)] = |j−i|/(2(m−1)) for an
// Algorithm-1 level set (Proposition 4.1).
func LevelExpectedDistance(m, i, j int) float64 { return core.LevelExpectedDistance(m, i, j) }

// CircularExpectedDistance returns the arc-proportional expected distance
// profile of a circular set.
func CircularExpectedDistance(m, i, j int) float64 { return core.CircularExpectedDistance(m, i, j) }

// ExpectedFlips returns the expected number of single-bit flips until a
// random walk in {0,1}^d first reaches Hamming distance k — the Section 4.2
// Markov-chain calibration used by scatter codes.
func ExpectedFlips(d, k int) (float64, error) { return markov.ExpectedFlipsRecurrence(d, k) }

// ---------------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------------

// ScalarEncoder quantizes a real interval onto a basis set (invertible).
type ScalarEncoder = embed.ScalarEncoder

// CircularEncoder quantizes a periodic value onto a basis set, wrapping at
// the period (invertible).
type CircularEncoder = embed.CircularEncoder

// ItemMemory lazily maps symbols to random-hypervectors.
type ItemMemory = embed.ItemMemory

// RecordEncoder encodes numeric records as ⊕ᵢ Kᵢ ⊗ Vᵢ.
type RecordEncoder = embed.RecordEncoder

// SequenceEncoder encodes ordered sequences with position permutations.
type SequenceEncoder = embed.SequenceEncoder

// NGramEncoder encodes sequences as bundles of bound n-grams.
type NGramEncoder = embed.NGramEncoder

// FieldEncoder is any scalar-to-hypervector encoder (ScalarEncoder and
// CircularEncoder both satisfy it).
type FieldEncoder = embed.FieldEncoder

// NewScalarEncoder wraps a basis set as an encoder of [lo, hi].
func NewScalarEncoder(b *Basis, lo, hi float64) *ScalarEncoder {
	return embed.NewScalarEncoder(b, lo, hi)
}

// NewCircularEncoder wraps a basis set as an encoder of a periodic value.
func NewCircularEncoder(b *Basis, period float64) *CircularEncoder {
	return embed.NewCircularEncoder(b, period)
}

// NewItemMemory returns an empty symbol memory over dimension d.
func NewItemMemory(d int, seed uint64) *ItemMemory { return embed.NewItemMemory(d, seed) }

// NewRecordEncoder returns a record encoder with nFields random keys.
func NewRecordEncoder(d, nFields int, seed uint64) *RecordEncoder {
	return embed.NewRecordEncoder(d, nFields, seed)
}

// NewSequenceEncoder returns a position-permuting sequence encoder.
func NewSequenceEncoder(d int, seed uint64) *SequenceEncoder {
	return embed.NewSequenceEncoder(d, seed)
}

// NewNGramEncoder returns an n-gram sequence encoder.
func NewNGramEncoder(d, n int, seed uint64) *NGramEncoder {
	return embed.NewNGramEncoder(d, n, seed)
}

// ---------------------------------------------------------------------------
// Learning
// ---------------------------------------------------------------------------

// Classifier is the HDC centroid classification model (Section 2.2).
type Classifier = model.Classifier

// Regressor is the single-hypervector regression model (Section 2.3).
type Regressor = model.Regressor

// NewClassifier creates a classifier over k classes and dimension d.
func NewClassifier(k, d int, seed uint64) *Classifier { return model.NewClassifier(k, d, seed) }

// NewRegressor creates a regressor over dimension d.
func NewRegressor(d int, seed uint64) *Regressor { return model.NewRegressor(d, seed) }

// ---------------------------------------------------------------------------
// Applications
// ---------------------------------------------------------------------------

// HashRing is a consistent-hashing ring over circular-hypervector
// positions (Hyperdimensional Hashing, Heddes et al. DAC 2022).
type HashRing = hashring.Ring

// NewHashRing creates a hash ring with m positions of dimension d. It
// returns an error when m < 2 or d <= 0.
func NewHashRing(m, d int, seed uint64) (*HashRing, error) { return hashring.New(m, d, seed) }

// ---------------------------------------------------------------------------
// Online serving
// ---------------------------------------------------------------------------

// Server is the concurrency-safe online inference layer: the models live
// behind immutable versioned snapshots swapped through an atomic pointer,
// so reads are lock-free at any fan-in while writes flow through a
// single-writer apply path. Classes and item symbols are sharded across
// sub-models by a consistent-hashing ring. See internal/serve for the full
// contract; cmd/hdcserve is an HTTP front end over this API.
type Server = serve.Server

// ServerConfig parameterizes a Server: dimension, class count, shard and
// worker fan-out, and the optional regression label encoder and SDM
// cleanup memory.
type ServerConfig = serve.Config

// Snapshot is an immutable, versioned, finalized view of every model a
// Server hosts. All methods are pure reads; a snapshot stays valid (and
// frozen) for as long as it is held, no matter how many writes the server
// applies afterwards. Snapshots serialize with WriteTo while the server
// keeps serving, and warm-start a fresh server via Server.Restore.
type Snapshot = serve.Snapshot

// ServerBatch is one atomic unit of server writes — training samples,
// un-training, regression pairs, item-memory membership churn, SDM writes
// and an optional refinement pass — applied by Server.ApplyBatch, which
// validates the whole batch before mutating anything and publishes (and
// returns) the next snapshot.
type ServerBatch = serve.Batch

// ServerSample is one encoded classification example in a ServerBatch.
type ServerSample = serve.Sample

// ServerPair is one encoded regression pair in a ServerBatch.
type ServerPair = serve.Pair

// ServerMemWrite is one SDM cleanup-memory write in a ServerBatch.
type ServerMemWrite = serve.MemWrite

// ServerRefine requests retraining epochs as part of a ServerBatch.
type ServerRefine = serve.Refine

// ServerStats is the point-in-time operational summary from Server.Stats.
type ServerStats = serve.Stats

// NewServer builds a serving layer over k classes and dimension d with the
// given sharding; config problems are errors, not panics. The server is
// purely in-memory — see OpenDurableServer for crash safety.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.NewServer(cfg) }

// ServerState is where a Server is in its lifecycle: healthy (reads and
// writes), degraded (a storage fault stopped the write plane; reads keep
// serving the last published snapshot), or closed. Query it with
// Server.State and Server.Degraded; a degraded server heals through
// Server.Recover (or the WALConfig.RetryInterval auto-probe).
type ServerState = serve.State

// Server lifecycle states.
const (
	ServerHealthy  = serve.StateHealthy
	ServerDegraded = serve.StateDegraded
	ServerClosed   = serve.StateClosed
)

// Server lifecycle errors, matchable with errors.Is through any wrapping.
var (
	// ErrServerClosed: the write arrived after Close. Orderly shutdown,
	// not a fault.
	ErrServerClosed = serve.ErrClosed
	// ErrServerWALFailed: the write-ahead log took a storage fault; the
	// in-memory state is consistent but writes fail until Recover.
	ErrServerWALFailed = serve.ErrWALFailed
	// ErrServerDegraded: the server is in degraded read-only mode (every
	// rejected write wraps this alongside ErrServerWALFailed).
	ErrServerDegraded = serve.ErrDegraded
	// ErrServerUnrecoverable: Recover found the log no longer proves the
	// acknowledged writes — recovery refused rather than silently losing
	// acked data.
	ErrServerUnrecoverable = serve.ErrUnrecoverable
)

// ---------------------------------------------------------------------------
// Durability
// ---------------------------------------------------------------------------

// WALConfig enables durable serving through OpenDurableServer: every
// applied batch is written ahead to a CRC-framed segmented log in Dir
// before it mutates anything, checkpoints persist the exact model state
// and bound recovery cost, and fully-covered log segments are dropped.
// Knobs: SyncEvery (fsync cadence in batches; 1 = every batch),
// SegmentBytes (log rotation threshold), CheckpointEvery (automatic
// background checkpoint cadence in batches; negative = manual only),
// KeepCheckpoints (retained checkpoint files), RetryInterval/RetryMax
// (bounded auto-recovery probe after a storage fault degrades the server
// to read-only; 0 interval = operator-driven Recover only), and FS (the
// filesystem seam — production leaves it nil for the OS; tests inject
// faults through it).
type WALConfig = serve.WALConfig

// OpenDurableServer builds a Server backed by a write-ahead log when
// cfg.WAL is set (and is exactly NewServer when it is nil): existing state
// in cfg.WAL.Dir is recovered — newest loadable checkpoint plus the log
// suffix, yielding a snapshot bit-identical to the pre-crash one — and
// every subsequent ApplyBatch is logged before it is applied. Use the
// Server methods Checkpoint (persist state now and compact the log) and
// Close (flush and stop writes; reads keep serving) to manage the
// durability lifecycle.
func OpenDurableServer(cfg ServerConfig) (*Server, error) { return serve.Open(cfg) }

// ---------------------------------------------------------------------------
// Serving API v1 (HTTP)
// ---------------------------------------------------------------------------

// APIError is serving protocol v1's structured error envelope: a
// machine-readable Code plus human message, each code mapping to a fixed
// HTTP status. The server emits it on every non-2xx JSON response and the
// client SDK (package hdcirc/client) returns it for server-reported
// faults.
type APIError = httpapi.Error

// APIErrorCode is the machine-readable error class inside an APIError; the
// protocol's code vocabulary lives in internal/httpapi (re-exported by the
// client package as client.Code*).
type APIErrorCode = httpapi.Code

// ServeHandlerConfig parameterizes ServeHandler: the Server to front, the
// feature-record Encoder, request bounds (MaxBodyBytes, MaxRowBytes),
// admission control (MaxInFlight, MaxQueue, RetryAfter), the streaming
// coalesce size (StreamBatch), and the request lifecycle deadlines
// (WriteDeadline per write batch, PredictDeadline for read-plane
// queueing; expirations answer 504 deadline_exceeded). Zero values select
// production defaults.
type ServeHandlerConfig = httpapi.Config

// ServeEncoder maps feature records to hypervectors for the HTTP layer;
// implementations must be safe for concurrent Encode calls. See
// NewServeEncoder for the standard stack.
type ServeEncoder = httpapi.Encoder

// ServeEncoderConfig sizes NewServeEncoder.
type ServeEncoderConfig = httpapi.ScalarRecordConfig

// NewServeEncoder builds the standard serving encoder: each of Fields
// features is level-encoded over [Lo, Hi] with Levels quantization steps
// and bound to its field key (the paper's record encoding ⊕ᵢ Kᵢ ⊗ Vᵢ).
// Equal configs yield bit-identical encoders — the determinism the
// serving contract depends on.
func NewServeEncoder(cfg ServeEncoderConfig) (ServeEncoder, error) {
	return httpapi.NewScalarRecordEncoder(cfg)
}

// ServeHandler builds the serving API v1 http.Handler over a Server —
// embedding the full HTTP surface (versioned routes, streaming bulk
// endpoints, admission control, request hardening) in another binary is
// this one call plus a mux mount. cmd/hdcserve is exactly this behind
// flag parsing; the Go client SDK for the protocol is package
// hdcirc/client.
func ServeHandler(cfg ServeHandlerConfig) (http.Handler, error) { return httpapi.New(cfg) }

// ServeAPI is the concrete handler behind ServeHandler. Use NewServeAPI
// when the embedding binary needs the runtime mutators — currently
// SetReplication, which the admin-promote failover path uses so a
// follower that just became primary starts hosting /v1/replicate:stream
// (letting the tier's other nodes re-follow it) without a rebuild.
type ServeAPI = httpapi.API

// NewServeAPI builds the serving API v1 handler, returning the concrete
// type instead of http.Handler.
func NewServeAPI(cfg ServeHandlerConfig) (*ServeAPI, error) { return httpapi.New(cfg) }

// ---------------------------------------------------------------------------
// Replication (WAL shipping, primary → followers)
// ---------------------------------------------------------------------------

// ReplicationSource is the primary-side shipper: it serves each connected
// follower's catch-up (newest checkpoint + write-ahead-log suffix) and
// then tails live applied batches to it over the long-lived
// /v1/replicate:stream request. Plug it into ServeHandlerConfig.Replication
// to host the endpoint; see internal/repl for the full contract.
type ReplicationSource = repl.Source

// ReplicationSourceConfig parameterizes NewReplicationSource: the durable
// Server to ship from, plus heartbeat cadence and catch-up chunk size.
type ReplicationSourceConfig = repl.SourceConfig

// NewReplicationSource builds the primary-side shipper over a durable
// (WAL-backed) server and registers its replication stats with it.
func NewReplicationSource(cfg ReplicationSourceConfig) (*ReplicationSource, error) {
	return repl.NewSource(cfg)
}

// ReplicationFollower is the replica-side applier: it connects to the
// primary's replicate stream with its last applied sequence, applies
// shipped records through the same validate-then-apply path as local
// writes (every snapshot bit-identical to the primary's at the same
// version), and reconnects with backoff across primary restarts.
type ReplicationFollower = repl.Follower

// ReplicationFollowerConfig parameterizes StartReplicationFollower: the
// local Server to apply into, the primary's base URL, and reconnect/ack
// cadence knobs (zero values select production defaults).
type ReplicationFollowerConfig = repl.FollowerConfig

// StartReplicationFollower puts the server into follower mode (writes
// answer not_primary; reads keep serving) and starts the replication
// loop. Stop with Close, or promote an up-to-date follower to primary
// with Promote.
func StartReplicationFollower(ctx context.Context, cfg ReplicationFollowerConfig) (*ReplicationFollower, error) {
	return repl.StartFollower(ctx, cfg)
}

// ---------------------------------------------------------------------------
// Sharded cluster (manifest, topology, shard ownership)
// ---------------------------------------------------------------------------

// ClusterManifest is the versioned document describing a horizontally
// sharded serving tier: shard count, hashring seed and geometry, and each
// shard group's endpoint set. It travels as HCLU binary (whole-file CRC,
// like snapshots and checkpoints) or JSON — Decode sniffs; Save writes
// binary with the atomic-rename publish discipline. hdcserve loads one
// with -cluster, cluster clients with client.NewClusterClientFromFile.
type ClusterManifest = cluster.Manifest

// ClusterShardEndpoints is one shard group's primary and read replicas.
type ClusterShardEndpoints = cluster.ShardEndpoints

// ClusterTopology answers key→shard ownership questions for a manifest:
// classes route by "class/<id>", item symbols by "item/<symbol>", over a
// hashring pinned by the manifest's seed and geometry.
type ClusterTopology = cluster.Topology

// ClusterNode is one server's view of the topology: the topology plus
// this node's own shard id. Plug it into ServeHandlerConfig.Cluster to
// make the node refuse misrouted writes with wrong_shard owner hints.
type ClusterNode = cluster.Node

// LoadClusterManifest reads and decodes a manifest file (HCLU binary or
// JSON, sniffed), verifying the CRC before any field is trusted.
func LoadClusterManifest(path string) (*ClusterManifest, error) { return cluster.Load(nil, path) }

// DecodeClusterManifest decodes manifest bytes (HCLU binary or JSON).
func DecodeClusterManifest(data []byte) (*ClusterManifest, error) { return cluster.Decode(data) }

// NewClusterTopology builds the routing view of a manifest.
func NewClusterTopology(m *ClusterManifest) (*ClusterTopology, error) { return cluster.NewTopology(m) }

// NewClusterNode scopes a manifest to one shard (0 ≤ shard < NumShards).
func NewClusterNode(m *ClusterManifest, shard int) (*ClusterNode, error) {
	return cluster.NewNode(m, shard)
}

// ---------------------------------------------------------------------------
// Served scenario workloads
// ---------------------------------------------------------------------------

// Scenario is one end-to-end served workload: model geometry, a
// deterministic wire encoder for a domain pipeline (n-gram text, GraphHD
// edge bundles, streaming EMG windows), train/test splits as wire rows,
// and the accuracy floor the served pipeline must reach. cmd/hdcserve
// hosts one with -scenario; cmd/hdcload replays its splits as traffic.
type Scenario = scenario.Scenario

// ScenarioRow is one labeled wire record of a scenario split.
type ScenarioRow = scenario.Row

// ScenarioNames lists the registered scenario workloads in stable order.
func ScenarioNames() []string { return scenario.Names() }

// BuildScenario constructs the named scenario deterministically: two
// calls yield bit-identical encoders and splits, so a load generator and
// a server agree on the workload without shipping model state.
func BuildScenario(name string) (*Scenario, error) { return scenario.Build(name) }
