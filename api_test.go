package hdcirc

import (
	"math"
	"testing"
)

// These tests exercise the public facade end to end, doubling as compact
// usage documentation. The heavy lifting is tested in the internal
// packages; here we verify the exported surface wires through correctly.

func TestFacadeVectorOps(t *testing.T) {
	s := NewStream(1)
	a := RandomVector(2048, s)
	b := RandomVector(2048, s)
	if a.Xor(a.Xor(b)).Equal(b) == false {
		t.Error("bind/unbind through facade failed")
	}
	if v := NewVector(64); v.OnesCount() != 0 {
		t.Error("NewVector not zeroed")
	}
	m := Majority([]*Vector{a, b, RandomVector(2048, s)}, TieZero, nil)
	if sim := m.Similarity(a); sim < 0.6 {
		t.Errorf("bundle similarity %v too low", sim)
	}
	acc := NewAccumulator(2048)
	acc.Add(a)
	if !acc.Threshold(TieZero, nil).Equal(a) {
		t.Error("accumulator through facade failed")
	}
}

func TestFacadeStreams(t *testing.T) {
	if NewStream(5).Uint64() != NewStream(5).Uint64() {
		t.Error("NewStream not deterministic")
	}
	if SubStream(5, "a").Uint64() == SubStream(5, "b").Uint64() {
		t.Error("SubStream ignores label")
	}
}

func TestFacadeBasisFamilies(t *testing.T) {
	s := NewStream(2)
	for _, kind := range []Kind{Random, LevelLegacy, Level, Circular, Scatter} {
		basis := NewBasis(kind, 8, 1024, 0, s)
		if basis.Len() != 8 || basis.Dim() != 1024 || basis.Kind() != kind {
			t.Errorf("%v: wrong basis shape", kind)
		}
	}
	// r wiring: r=1 circular behaves like random.
	c := NewBasis(Circular, 8, 10000, 1, s)
	if d := c.At(0).Distance(c.At(1)); math.Abs(d-0.5) > 0.05 {
		t.Errorf("r=1 neighbor distance %v not ≈ 0.5", d)
	}
}

func TestFacadeExpectedDistances(t *testing.T) {
	if LevelExpectedDistance(11, 0, 10) != 0.5 {
		t.Error("level expected distance wrong")
	}
	if CircularExpectedDistance(10, 0, 5) != 0.5 {
		t.Error("circular expected distance wrong")
	}
	f, err := ExpectedFlips(1000, 1)
	if err != nil || math.Abs(f-1) > 1e-9 {
		t.Errorf("ExpectedFlips = %v, %v", f, err)
	}
	m := SimilarityMatrix(NewBasis(Level, 4, 512, 0, NewStream(3)))
	if len(m) != 4 || m[0][0] != 1 {
		t.Error("similarity matrix wrong")
	}
}

func TestFacadeEncoders(t *testing.T) {
	s := NewStream(4)
	se := NewScalarEncoder(NewBasis(Level, 16, 4096, 0, s), 0, 15)
	if se.Decode(se.Encode(7)) != 7 {
		t.Error("scalar encode/decode round trip failed")
	}
	ce := NewCircularEncoder(NewBasis(Circular, 16, 4096, 0, s), 2*math.Pi)
	if !ce.Encode(0).Equal(ce.Encode(2 * math.Pi)) {
		t.Error("circular encoder does not wrap")
	}
	im := NewItemMemory(4096, 5)
	if !im.Get("x").Equal(im.Get("x")) {
		t.Error("item memory unstable")
	}
	re := NewRecordEncoder(4096, 2, 6)
	rec := re.EncodeRecord([]float64{1, 2}, []FieldEncoder{se, se})
	if rec.Dim() != 4096 {
		t.Error("record encoder wrong dimension")
	}
	seq := NewSequenceEncoder(4096, 7)
	if seq.Encode([]*Vector{im.Get("a"), im.Get("b")}).Dim() != 4096 {
		t.Error("sequence encoder wrong dimension")
	}
	ng := NewNGramEncoder(4096, 2, 8)
	if ng.Encode([]*Vector{im.Get("a"), im.Get("b"), im.Get("c")}).Dim() != 4096 {
		t.Error("ngram encoder wrong dimension")
	}
}

func TestFacadeLearningEndToEnd(t *testing.T) {
	// Angle classification: three von-Mises-like clusters via jittered
	// encodings.
	const d = 8192
	s := NewStream(9)
	enc := NewCircularEncoder(NewBasis(Circular, 32, d, 0, s), 2*math.Pi)
	centers := []float64{0.3, 2.4, 4.5}
	clf := NewClassifier(len(centers), d, 10)
	jitter := NewStream(11)
	for class, c := range centers {
		for i := 0; i < 15; i++ {
			clf.Add(class, enc.Encode(c+(jitter.Float64()-0.5)*0.5))
		}
	}
	correct := 0
	for class, c := range centers {
		for i := 0; i < 10; i++ {
			pred, _ := clf.Predict(enc.Encode(c + (jitter.Float64()-0.5)*0.5))
			if pred == class {
				correct++
			}
		}
	}
	if correct < 28 {
		t.Errorf("classifier got %d/30 on separable clusters", correct)
	}

	// Regression: memorize and recall a single pair exactly.
	labels := NewScalarEncoder(NewBasis(Level, 32, d, 0, s), 0, 31)
	reg := NewRegressor(d, 12)
	reg.Add(enc.Encode(1.0), labels.Encode(20))
	if got := reg.Predict(enc.Encode(1.0), labels); got != 20 {
		t.Errorf("regressor recall = %v, want 20", got)
	}
}

func TestFacadeHashRing(t *testing.T) {
	ring, err := NewHashRing(16, 2048, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ring.Add("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ring.Add("b"); err != nil {
		t.Fatal(err)
	}
	member, ok := ring.Lookup("some-key")
	if !ok || (member != "a" && member != "b") {
		t.Errorf("lookup = %q, %v", member, ok)
	}
}
