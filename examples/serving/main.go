// Serving API v1 end to end: embed the HTTP serving surface in-process
// with hdcirc.ServeHandler (exactly what cmd/hdcserve hosts behind flags),
// then drive it through the Go client SDK — typed unary calls, NDJSON bulk
// ingest with per-batch acknowledgments, bulk prediction, client-side
// coalescing for high-fan-in callers, and the structured error envelope.
//
//	go run ./examples/serving
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"hdcirc"
	"hdcirc/client"
)

func main() {
	const (
		dim     = 4096
		classes = 3
		fields  = 2
		seed    = 7
	)

	// --- Server side: one call to embed the whole protocol. -------------
	srv, err := hdcirc.NewServer(hdcirc.ServerConfig{Dim: dim, Classes: classes, Shards: 2, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	enc, err := hdcirc.NewServeEncoder(hdcirc.ServeEncoderConfig{
		Dim: dim, Fields: fields, Lo: 0, Hi: 1, Levels: 32, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	handler, err := hdcirc.ServeHandler(hdcirc.ServeHandlerConfig{Server: srv, Encoder: enc})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, handler)

	// --- Client side: the typed SDK. ------------------------------------
	ctx := context.Background()
	c, err := client.New("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}

	// One unary training batch: three classes clustered at corners of the
	// unit square, plus two interned item symbols.
	req := client.TrainRequest{Symbols: []string{"sensor-a", "sensor-b"}}
	centers := [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}}
	for label, center := range centers {
		for j := 0; j < 8; j++ {
			jit := 0.02 * float64(j%4)
			req.Samples = append(req.Samples, client.Sample{
				Label:    label,
				Features: []float64{center[0] + jit, center[1] - jit},
			})
		}
	}
	tr, err := c.Train(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d samples → version %d (%d items interned)\n", tr.Trained, tr.Version, tr.Items)

	// Bulk load over the NDJSON stream: rows coalesce into write batches
	// server-side, one snapshot publication per batch.
	is, err := c.Ingest(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		label := i % classes
		center := centers[label]
		row := client.IngestRow{Label: &label, Features: []float64{
			center[0] + 0.03*float64(i%3), center[1] - 0.03*float64(i%5),
		}}
		if err := is.Send(row); err != nil {
			log.Fatal(err)
		}
	}
	sum, err := is.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk ingest: %d rows in %d batches → version %d\n", sum.TotalRows, sum.Batches, sum.Version)

	// Bulk prediction: one streamed request, one result per row, in order.
	queries := [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}, {0.45, 0.8}}
	results, err := c.PredictAll(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("query %v → class %d (distance %.3f, version %d)\n", queries[i], r.Class, r.Distance, r.Version)
	}

	// High fan-in: many goroutines each holding one record; the coalescer
	// merges them into few wire batches transparently.
	co := c.NewCoalescer(64, 0)
	var wg sync.WaitGroup
	agree := 0
	var mu sync.Mutex
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			class, _, _, err := co.Predict(ctx, centers[g%classes])
			if err == nil && class == g%classes {
				mu.Lock()
				agree++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Printf("coalesced fan-in: %d/12 callers classified correctly\n", agree)

	// Structured errors: branch on the machine-readable code.
	if _, err := c.Predict(ctx, [][]float64{{0.5}}); err != nil {
		var apiErr *client.Error
		if errors.As(err, &apiErr) {
			fmt.Printf("wrong arity rejected with code %q: %s\n", apiErr.Code, apiErr.Message)
		}
	}

	// Durability-aware stats (this in-memory example reports durable=false;
	// with -data-dir the WAL sequence, checkpoint and sticky-error state
	// appear here).
	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: version %d, %d samples, %d reads served, durable=%v\n",
		st.Version, st.Samples, st.ReadsServed, st.Durable)
}
