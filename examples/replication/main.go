// Distributed serving end to end: a three-node tier — one durable
// primary shipping its write-ahead log to two replicas over
// /v1/replicate:stream — assembled in-process from the public facade
// (exactly what `hdcserve -role primary` / `-role replica` host behind
// flags), then driven through the replica-aware client SDK: writes to
// the primary, reads routed to replicas, automatic failover on the
// not_primary hint, and the tier's core promise checked at the end — a
// converged replica serves a byte-identical snapshot.
//
//	go run ./examples/replication
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"hdcirc"
	"hdcirc/client"
)

const (
	dim     = 4096
	classes = 3
	fields  = 2
	seed    = 7
)

// node is one serving process stand-in: a durable server behind the v1
// handler on a loopback listener.
type node struct {
	srv  *hdcirc.Server
	base string
}

// openServer builds one node's durable serving core.
func openServer(dir string) *hdcirc.Server {
	srv, err := hdcirc.OpenDurableServer(hdcirc.ServerConfig{
		Dim: dim, Classes: classes, Shards: 2, Seed: seed,
		WAL: &hdcirc.WALConfig{Dir: dir},
	})
	if err != nil {
		log.Fatal(err)
	}
	return srv
}

// serveNode mounts the v1 handler over srv on a loopback listener. A
// non-nil source makes this node a shipping primary (it hosts
// /v1/replicate:stream); replicas pass nil.
func serveNode(srv *hdcirc.Server, src *hdcirc.ReplicationSource) *node {
	enc, err := hdcirc.NewServeEncoder(hdcirc.ServeEncoderConfig{
		Dim: dim, Fields: fields, Lo: 0, Hi: 1, Levels: 32, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := hdcirc.ServeHandlerConfig{Server: srv, Encoder: enc}
	if src != nil {
		cfg.Replication = src
	}
	handler, err := hdcirc.ServeHandler(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, handler)
	return &node{srv: srv, base: "http://" + ln.Addr().String()}
}

func main() {
	root, err := os.MkdirTemp("", "hdcirc-replication")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	ctx := context.Background()

	// --- The tier: one primary, two replicas. ---------------------------
	// The primary's handler carries a replication source (its WAL is what
	// gets shipped); each replica runs a follower pulling from it.
	psrv := openServer(root + "/primary")
	src, err := hdcirc.NewReplicationSource(hdcirc.ReplicationSourceConfig{Server: psrv})
	if err != nil {
		log.Fatal(err)
	}
	primary := serveNode(psrv, src)

	replicas := make([]*node, 2)
	for i := range replicas {
		replicas[i] = serveNode(openServer(fmt.Sprintf("%s/replica%d", root, i)), nil)
		if _, err := hdcirc.StartReplicationFollower(ctx, hdcirc.ReplicationFollowerConfig{
			Server:     replicas[i].srv,
			PrimaryURL: primary.base,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// --- The tier client: reads to replicas, writes to the primary. -----
	c, err := client.New(primary.base,
		client.WithReplicas(replicas[0].base, replicas[1].base),
		client.WithReadPreference(client.NearestReplica))
	if err != nil {
		log.Fatal(err)
	}

	// Train through the tier client: every write lands on the primary
	// (the acked version proves it — a replica would refuse with
	// not_primary) and is shipped to both replicas as it commits.
	for i := 0; i < 8; i++ {
		f := float64(i%4) / 4
		res, err := c.Train(ctx, client.TrainRequest{Samples: []client.Sample{
			{Label: i % classes, Features: []float64{f, 1 - f}},
			{Label: (i + 1) % classes, Features: []float64{1 - f, f}},
		}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("train %d → version %d\n", i, res.Version)
	}

	// Convergence: both replicas reach the primary's version; stats
	// (schema v2) expose role and lag on every node.
	head := primary.srv.Snapshot().Version()
	for _, r := range replicas {
		for r.srv.Snapshot().Version() < head {
			time.Sleep(5 * time.Millisecond)
		}
	}
	for i, r := range replicas {
		st := r.srv.Stats()
		fmt.Printf("replica %d: role=%s applied=%d lag=%d\n",
			i, st.Role, st.Replication.LastAckedSeq, st.Replication.FollowerLagSeq)
	}

	// Reads through the tier client are served by a replica: the stats
	// read below routed to the nearest one, and reports its role.
	st, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tier read served by role=%q at version %d\n", st.Role, st.Version)
	if cls, _, err := c.PredictOne(ctx, []float64{0.1, 0.9}); err == nil {
		fmt.Printf("predict via replica → class %d\n", cls)
	}

	// Failover hint: a client that only knows a replica still lands its
	// write — the replica answers not_primary (421) with the primary's
	// URL and the SDK adopts it.
	cr, err := client.New(replicas[0].base, client.WithRetry(5, 20*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	res, err := cr.Train(ctx, client.TrainRequest{Samples: []client.Sample{
		{Label: 0, Features: []float64{0.9, 0.1}},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write aimed at a replica failed over to %s, version %d\n", cr.PrimaryURL(), res.Version)

	// Bit-identity: at the same version, every node serves the same
	// snapshot bytes — the invariant the whole tier is built around.
	head = primary.srv.Snapshot().Version()
	for _, r := range replicas {
		for r.srv.Snapshot().Version() < head {
			time.Sleep(5 * time.Millisecond)
		}
	}
	var pbuf bytes.Buffer
	if _, err := primary.srv.Snapshot().WriteTo(&pbuf); err != nil {
		log.Fatal(err)
	}
	for i, r := range replicas {
		var rbuf bytes.Buffer
		if _, err := r.srv.Snapshot().WriteTo(&rbuf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replica %d snapshot identical to primary at v%d: %v\n",
			i, head, bytes.Equal(pbuf.Bytes(), rbuf.Bytes()))
	}
}
