// Gesture: the paper's Table 1 scenario as a walk-through — classifying 15
// surgical gestures from 18 angular kinematic variables, comparing the
// random, level and circular basis-hypervector families.
//
//	go run ./examples/gesture
package main

import (
	"fmt"
	"math"

	"hdcirc"
	"hdcirc/internal/dataset"
)

const (
	d      = 10000
	levels = 24
	seed   = 42
)

func main() {
	ds := dataset.GenGestures(dataset.DefaultGestureConfig("Knot Tying"), seed)
	fmt.Printf("synthetic JIGSAWS-like task: %d gestures, %d angular features, %d train / %d test\n\n",
		ds.Config.NumGestures, ds.Config.NumFeatures, len(ds.Train), len(ds.Test))

	for _, kind := range []hdcirc.Kind{hdcirc.Random, hdcirc.Level, hdcirc.Circular} {
		r := 0.0
		if kind == hdcirc.Circular {
			r = 0.1 // the paper's Table 1 setting
		}
		acc := run(ds, kind, r)
		fmt.Printf("%-9s basis: accuracy %.1f%%\n", kind, 100*acc)
	}
	fmt.Println("\ncircular wins because joint angles wrap: a reading of 6.2 rad and one of")
	fmt.Println("0.1 rad are the same posture, which level encodings treat as opposites.")
}

// run trains the standard HDC centroid classifier with one basis family and
// returns test accuracy. Samples are encoded as ⊕ᵢ Kᵢ ⊗ Vᵢ, the paper's
// record encoding.
func run(ds *dataset.GestureDataset, kind hdcirc.Kind, r float64) float64 {
	stream := hdcirc.SubStream(seed, "example/"+kind.String())
	basis := hdcirc.NewBasis(kind, levels, d, r, stream)

	var value hdcirc.FieldEncoder
	if kind == hdcirc.Circular {
		value = hdcirc.NewCircularEncoder(basis, 2*math.Pi)
	} else {
		value = hdcirc.NewScalarEncoder(basis, 0, 2*math.Pi)
	}
	record := hdcirc.NewRecordEncoder(d, ds.Config.NumFeatures, seed)
	encs := make([]hdcirc.FieldEncoder, ds.Config.NumFeatures)
	for i := range encs {
		encs[i] = value
	}

	clf := hdcirc.NewClassifier(ds.Config.NumGestures, d, seed)
	for _, s := range ds.Train {
		clf.Add(s.Label, record.EncodeRecord(s.Features, encs))
	}
	correct := 0
	for _, s := range ds.Test {
		if pred, _ := clf.Predict(record.EncodeRecord(s.Features, encs)); pred == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.Test))
}
