// Marsorbit: the paper's Table 2 "Mars Express" scenario — predicting a
// satellite's available power from its orbital mean anomaly — plus a small
// sweep of the r hyperparameter (the paper's Figure 8 in miniature).
//
//	go run ./examples/marsorbit
package main

import (
	"fmt"
	"math"

	"hdcirc"
	"hdcirc/internal/dataset"
)

const (
	d    = 10000
	m    = 512
	seed = 42
)

func main() {
	series := dataset.GenOrbitPower(dataset.DefaultOrbitConfig(), seed)
	split := hdcirc.SubStream(seed, "example/mars/split")
	train, test := dataset.SplitRandom(series, 0.7, split)
	fmt.Printf("synthetic Mars-Express-like telemetry: %d samples, %d train / %d test (random split)\n\n",
		len(series), len(train), len(test))

	fmt.Println("basis family comparison (the paper's Table 2, row 2):")
	for _, kind := range []hdcirc.Kind{hdcirc.Random, hdcirc.Level, hdcirc.Circular} {
		mse := run(train, test, kind, 0.01)
		fmt.Printf("  %-9s basis: test MSE %8.1f W²\n", kind, mse)
	}

	fmt.Println("\nr-hyperparameter sweep on the circular basis (Figure 8 in miniature):")
	for _, r := range []float64{0, 0.01, 0.1, 0.5, 1} {
		mse := run(train, test, hdcirc.Circular, r)
		fmt.Printf("  r = %-4g → test MSE %8.1f W²\n", r, mse)
	}
	fmt.Println("\nat r = 1 the circular set degenerates to a random set — the sweep shows")
	fmt.Println("the trade-off between correlation preservation and information content.")
}

func run(train, test []dataset.OrbitSample, kind hdcirc.Kind, r float64) float64 {
	stream := hdcirc.SubStream(seed, fmt.Sprintf("example/mars/%s/%g", kind, r))

	var anomaly hdcirc.FieldEncoder
	if kind == hdcirc.Circular {
		anomaly = hdcirc.NewCircularEncoder(hdcirc.NewBasis(kind, m, d, r, stream), 2*math.Pi)
	} else {
		anomaly = hdcirc.NewScalarEncoder(hdcirc.NewBasis(kind, m, d, r, stream), 0, 2*math.Pi)
	}
	lo, hi := dataset.PowerRange(train)
	label := hdcirc.NewScalarEncoder(hdcirc.NewBasis(hdcirc.Level, 128, d, 0, stream), lo, hi)

	reg := hdcirc.NewRegressor(d, seed)
	for _, s := range train {
		reg.Add(anomaly.Encode(s.MeanAnomaly), label.Encode(s.Power))
	}
	var se float64
	for _, s := range test {
		diff := reg.Predict(anomaly.Encode(s.MeanAnomaly), label) - s.Power
		se += diff * diff
	}
	return se / float64(len(test))
}
