// Hashring: circular-hypervectors in their original application —
// Hyperdimensional Hashing (Heddes et al., DAC 2022), the dynamic
// consistent-hashing scheme the paper generalizes into a learning basis.
// Demonstrates minimal remapping on membership change and graceful
// degradation under bit corruption.
//
//	go run ./examples/hashring
package main

import (
	"fmt"

	"hdcirc"
)

func main() {
	ring, err := hdcirc.NewHashRing(64, 10000, 42)
	if err != nil {
		panic(err)
	}
	for _, s := range []string{"server-a", "server-b", "server-c", "server-d"} {
		if _, err := ring.Add(s); err != nil {
			panic(err)
		}
	}

	const keys = 1000
	assign := func() map[string]string {
		out := make(map[string]string, keys)
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("object-%d", i)
			s, _ := ring.Lookup(k)
			out[k] = s
		}
		return out
	}

	before := assign()
	counts := map[string]int{}
	for _, s := range before {
		counts[s]++
	}
	fmt.Println("load distribution over 4 members:")
	for _, s := range ring.Members() {
		fmt.Printf("  %-9s %4d objects\n", s, counts[s])
	}

	// Remove a member: only its objects should move.
	if err := ring.Remove("server-c"); err != nil {
		panic(err)
	}
	after := assign()
	moved, movedOthers := 0, 0
	for k, s := range after {
		if s != before[k] {
			moved++
			if before[k] != "server-c" {
				movedOthers++
			}
		}
	}
	fmt.Printf("\nremoved server-c: %d objects moved, %d of them from surviving members\n",
		moved, movedOthers)

	// Corrupt the stored member vectors and measure lookup stability.
	if _, err := ring.Add("server-c"); err != nil {
		panic(err)
	}
	clean := assign()
	stream := hdcirc.NewStream(7)
	for _, frac := range []float64{0.05, 0.15, 0.30} {
		ring.Heal()
		ring.Corrupt(frac, stream)
		stable := 0
		for k, s := range assign() {
			if clean[k] == s {
				stable++
			}
		}
		fmt.Printf("with %2.0f%% of member-vector bits flipped: %4.1f%% of lookups unchanged\n",
			100*frac, 100*float64(stable)/keys)
	}
	fmt.Println("\nholographic representations fail gradually — no single bit is load-bearing.")
}
