// Temperature: the paper's Table 2 "Beijing" scenario — forecasting hourly
// temperature from (year, day-of-year, hour-of-day) with the HDC regression
// framework, comparing basis families for the two circular time features.
//
//	go run ./examples/temperature
package main

import (
	"fmt"

	"hdcirc"
	"hdcirc/internal/dataset"
)

const (
	d    = 10000
	seed = 42
)

func main() {
	series := dataset.GenTemperature(dataset.DefaultTempConfig(), seed)
	train, test := dataset.SplitChronological(series, 0.7)
	fmt.Printf("synthetic Beijing-like series: %d hourly samples, %d train / %d test (chronological)\n\n",
		len(series), len(train), len(test))

	for _, kind := range []hdcirc.Kind{hdcirc.Random, hdcirc.Level, hdcirc.Circular} {
		r := 0.0
		if kind == hdcirc.Circular {
			r = 0.01 // the paper's Table 2 setting
		}
		mse := run(train, test, kind, r)
		fmt.Printf("%-9s basis for day & hour: test MSE %7.1f °C²\n", kind, mse)
	}
	fmt.Println("\nDec 31st and Jan 1st are neighboring days; only the circular basis")
	fmt.Println("encodes them as neighbors, so winter predictions stop tearing at the seam.")
}

func run(train, test []dataset.TempSample, kind hdcirc.Kind, r float64) float64 {
	stream := hdcirc.SubStream(seed, "example/temp/"+kind.String())

	var day, hour hdcirc.FieldEncoder
	if kind == hdcirc.Circular {
		day = hdcirc.NewCircularEncoder(hdcirc.NewBasis(kind, 365, d, r, stream), 365)
		hour = hdcirc.NewCircularEncoder(hdcirc.NewBasis(kind, 24, d, r, stream), 24)
	} else {
		day = hdcirc.NewScalarEncoder(hdcirc.NewBasis(kind, 365, d, r, stream), 0, 365)
		hour = hdcirc.NewScalarEncoder(hdcirc.NewBasis(kind, 24, d, r, stream), 0, 24)
	}
	year := hdcirc.NewScalarEncoder(hdcirc.NewBasis(hdcirc.Level, 8, d, 0, stream), 0, 5)

	lo, hi := dataset.TempRange(train)
	label := hdcirc.NewScalarEncoder(hdcirc.NewBasis(hdcirc.Level, 128, d, 0, stream), lo, hi)

	encode := func(s dataset.TempSample) *hdcirc.Vector {
		// The paper's Y ⊗ D ⊗ H product encoding.
		return year.Encode(float64(s.YearIndex)).
			Xor(day.Encode(s.DayOfYear)).
			Xor(hour.Encode(s.HourOfDay))
	}

	reg := hdcirc.NewRegressor(d, seed)
	for _, s := range train {
		reg.Add(encode(s), label.Encode(s.Temp))
	}
	var se float64
	for _, s := range test {
		diff := reg.Predict(encode(s), label) - s.Temp
		se += diff * diff
	}
	return se / float64(len(test))
}
