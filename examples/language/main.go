// Language: the symbol-encoding pipeline of the paper's Section 3.1 —
// identify which of five synthetic "languages" a sentence comes from by
// bundling bound letter trigrams (the classic HDC text classifier of
// Rahimi et al. that random-hypervectors were made for).
//
//	go run ./examples/language
package main

import (
	"fmt"

	"hdcirc"
	"hdcirc/internal/dataset"
)

const (
	d    = 10000
	n    = 3 // trigrams
	seed = 42
)

func main() {
	ds := dataset.GenText(dataset.DefaultTextConfig(), seed)
	fmt.Printf("synthetic languages: %d Markov chains over %d letters, %d train / %d test sentences\n\n",
		ds.Config.NumLanguages, ds.Config.Alphabet, len(ds.Train), len(ds.Test))

	items := hdcirc.NewItemMemory(d, seed)
	ngram := hdcirc.NewNGramEncoder(d, n, seed)
	encode := func(text string) *hdcirc.Vector {
		letters := make([]*hdcirc.Vector, len(text))
		for i := 0; i < len(text); i++ {
			letters[i] = items.Get(text[i : i+1])
		}
		return ngram.Encode(letters)
	}

	clf := hdcirc.NewClassifier(ds.Config.NumLanguages, d, seed)
	for _, s := range ds.Train {
		clf.Add(s.Label, encode(s.Text))
	}

	correct := 0
	for _, s := range ds.Test {
		if pred, _ := clf.Predict(encode(s.Text)); pred == s.Label {
			correct++
		}
	}
	fmt.Printf("trigram classifier accuracy: %.1f%%\n\n", 100*float64(correct)/float64(len(ds.Test)))

	// Show the decision on a few test sentences.
	for _, s := range ds.Test[:4] {
		pred, dist := clf.Predict(encode(s.Text))
		fmt.Printf("%q…\n  → language %d (true %d), distance %.3f\n", s.Text[:32], pred, s.Label, dist)
	}
	fmt.Println("\neach sentence is one 10,000-bit vector: the bundle of its bound trigrams.")
	fmt.Println("no feature engineering, no counts — just bind, permute, bundle, compare.")
}
