// Quickstart: a 60-second tour of the hdcirc public API — hypervector
// arithmetic, the three basis-hypervector families, encoding, and a tiny
// classifier.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"hdcirc"
)

func main() {
	const d = 10000 // the paper's hypervector dimension
	stream := hdcirc.NewStream(42)

	// --- 1. Hypervector arithmetic -------------------------------------
	a := hdcirc.RandomVector(d, stream)
	b := hdcirc.RandomVector(d, stream)
	fmt.Printf("two random hypervectors: δ(a,b) = %.3f (quasi-orthogonal)\n", a.Distance(b))

	bound := a.Xor(b) // binding associates a and b
	fmt.Printf("binding:  δ(a⊗b, a) = %.3f (dissimilar to operands)\n", bound.Distance(a))
	fmt.Printf("unbind:   a ⊗ (a⊗b) == b? %v (binding is its own inverse)\n",
		a.Xor(bound).Equal(b))

	bundle := hdcirc.Majority([]*hdcirc.Vector{a, b, hdcirc.RandomVector(d, stream)},
		hdcirc.TieZero, nil)
	fmt.Printf("bundling: sim(maj(a,b,c), a) = %.3f (similar to each operand)\n\n",
		bundle.Similarity(a))

	// --- 2. Basis-hypervector families ----------------------------------
	m := 12
	level := hdcirc.NewBasis(hdcirc.Level, m, d, 0, stream)
	circular := hdcirc.NewBasis(hdcirc.Circular, m, d, 0, stream)
	fmt.Println("level set: distance from L0 grows linearly, endpoints orthogonal")
	for j := 0; j < m; j += 3 {
		fmt.Printf("  δ(L0, L%-2d) = %.3f (expected %.3f)\n",
			j, level.At(0).Distance(level.At(j)), hdcirc.LevelExpectedDistance(m, 0, j))
	}
	fmt.Println("circular set: distance wraps — the last vector is close to the first")
	for j := 0; j < m; j += 3 {
		fmt.Printf("  δ(C0, C%-2d) = %.3f (expected %.3f)\n",
			j, circular.At(0).Distance(circular.At(j)), hdcirc.CircularExpectedDistance(m, 0, j))
	}
	fmt.Printf("  δ(C0, C%d) = %.3f — wrap-around neighbor, unlike level's %.3f\n\n",
		m-1, circular.At(0).Distance(circular.At(m-1)),
		level.At(0).Distance(level.At(m-1)))

	// --- 3. Encoding and a tiny angle classifier ------------------------
	// Classify compass directions from noisy angle readings.
	enc := hdcirc.NewCircularEncoder(hdcirc.NewBasis(hdcirc.Circular, 64, d, 0, stream), 2*math.Pi)
	headings := []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2} // N E S W
	names := []string{"north", "east", "south", "west"}

	clf := hdcirc.NewClassifier(len(headings), d, 7)
	noise := hdcirc.NewStream(99)
	for class, h := range headings {
		for i := 0; i < 20; i++ {
			reading := h + (noise.Float64()-0.5)*0.6
			clf.Add(class, enc.Encode(reading))
		}
	}
	fmt.Println("compass classifier on noisy readings:")
	for _, q := range []float64{0.1, 1.4, 3.3, 4.6, 6.2} {
		class, dist := clf.Predict(enc.Encode(q))
		fmt.Printf("  %.1f rad → %-5s (distance %.3f)\n", q, names[class], dist)
	}
}
