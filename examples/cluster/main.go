// Sharded serving end to end: a two-shard tier — each shard one serving
// node scoped by a shared HCLU manifest — assembled in-process from the
// public facade (exactly what `hdcserve -cluster manifest -shard i/N`
// hosts behind flags), then driven through the shard-aware cluster
// client: writes split per owner, a misrouted write refused with the
// owner's endpoints, and scatter-gather predictions merged bit-identical
// to an unsharded reference trained on the same rows.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"

	"hdcirc"
	"hdcirc/client"
)

const (
	dim     = 4096
	classes = 3
	fields  = 2
	seed    = 7
)

// serveShard mounts one serving node on a loopback listener. A non-nil
// cluster node scopes it to its shard: misrouted writes are refused with
// wrong_shard and the owner's endpoints.
func serveShard(ln net.Listener, node *hdcirc.ClusterNode) string {
	srv, err := hdcirc.NewServer(hdcirc.ServerConfig{
		Dim: dim, Classes: classes, Shards: 2, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	enc, err := hdcirc.NewServeEncoder(hdcirc.ServeEncoderConfig{
		Dim: dim, Fields: fields, Lo: 0, Hi: 1, Levels: 32, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	handler, err := hdcirc.ServeHandler(hdcirc.ServeHandlerConfig{
		Server: srv, Encoder: enc, Cluster: node,
	})
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, handler)
	return "http://" + ln.Addr().String()
}

func main() {
	ctx := context.Background()

	// --- The manifest: one document binds the whole tier. ---------------
	// Endpoints must be known before the servers route by them, so listen
	// first, write the manifest second, serve third. RingSeed pins the
	// hashring every node and client builds — identical geometry
	// everywhere, or keys silently migrate.
	lns := make([]net.Listener, 2)
	man := &hdcirc.ClusterManifest{Version: 1, RingSeed: 42}
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		man.Shards = append(man.Shards, hdcirc.ClusterShardEndpoints{
			Primary: "http://" + ln.Addr().String(),
		})
	}
	for i, ln := range lns {
		node, err := hdcirc.NewClusterNode(man, i)
		if err != nil {
			log.Fatal(err)
		}
		serveShard(ln, node)
	}

	// Ownership is a pure function of the manifest: any client can answer
	// routing questions without touching the network.
	cc, err := client.NewClusterClient(man)
	if err != nil {
		log.Fatal(err)
	}
	for class := 0; class < classes; class++ {
		fmt.Printf("class %d owned by shard %d\n", class, cc.ShardForClass(class))
	}
	for _, sym := range []string{"sensor-a", "sensor-b"} {
		fmt.Printf("symbol %q owned by shard %d\n", sym, cc.ShardForSymbol(sym))
	}

	// --- An unsharded reference node, trained on the same rows. ---------
	refLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ref, err := client.New(serveShard(refLn, nil))
	if err != nil {
		log.Fatal(err)
	}

	// Train through the cluster client: each batch is split by class
	// owner, so one logical call may land on several shards — the
	// response maps shard id to that shard's ack.
	for i := 0; i < 8; i++ {
		f := float64(i%4) / 4
		req := client.TrainRequest{Samples: []client.Sample{
			{Label: i % classes, Features: []float64{f, 1 - f}},
			{Label: (i + 1) % classes, Features: []float64{1 - f, f}},
		}}
		acks, err := cc.Train(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ref.Train(ctx, req); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("train %d → shards touched: %d\n", i, len(acks))
	}

	// Bulk ingest splits per row: a row whose label and symbol have
	// different owners becomes a train half and an intern half, each on
	// its owner's stream with its own coalescer and ack sequence.
	st, err := cc.Ingest(ctx)
	if err != nil {
		log.Fatal(err)
	}
	rst, err := ref.Ingest(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		label := i % classes
		f := float64(i%20) / 20
		row := client.IngestRow{Label: &label, Features: []float64{f, 1 - f}}
		if i%10 == 0 {
			row.Symbol = fmt.Sprintf("sensor-%c", 'a'+byte(i/10)%2)
		}
		if err := st.Send(row); err != nil {
			log.Fatal(err)
		}
		if err := rst.Send(row); err != nil {
			log.Fatal(err)
		}
	}
	sum, err := st.Close()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rst.Close(); err != nil {
		log.Fatal(err)
	}
	physical := 0
	for shard, ack := range sum.Shards {
		physical += ack.TotalRows
		fmt.Printf("ingest: shard %d applied %d rows\n", shard, ack.TotalRows)
	}
	fmt.Printf("ingest: %d logical rows, %d physical (splits)\n", sum.Rows, physical)

	// A write aimed at the wrong shard is refused before admission: the
	// structured wrong_shard error names the owner and its endpoints, so
	// even a client with a stale manifest can follow the hint.
	wrongClass := 0
	owner := cc.ShardForClass(wrongClass)
	direct, err := client.New(man.Shards[1-owner].Primary, client.WithRetry(1, 0))
	if err != nil {
		log.Fatal(err)
	}
	_, err = direct.Train(ctx, client.TrainRequest{Samples: []client.Sample{
		{Label: wrongClass, Features: []float64{0.5, 0.5}},
	}})
	var e *client.Error
	if errors.As(err, &e) && e.Code == client.CodeWrongShard {
		fmt.Printf("misrouted write refused: code=%s owner_shard=%d owner=%s\n",
			e.Code, *e.OwnerShard, e.OwnerPrimaryURL)
	} else {
		log.Fatalf("expected wrong_shard, got %v", err)
	}

	// --- Scatter-gather predict, bit-identical to unsharded. ------------
	// The cluster client fans each batch to every shard as a raw-score
	// request (integer per-class Hamming distances), keeps each class only
	// at its owning shard, and merges with the exact unsharded tie-break.
	queries := [][]float64{}
	for i := 0; i <= 16; i++ {
		f := float64(i) / 16
		queries = append(queries, []float64{f, 1 - f})
	}
	got, err := cc.Predict(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}
	want, err := ref.Predict(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for q := range queries {
		if got.Classes[q] != want.Classes[q] || got.Distances[q] != want.Distances[q] {
			identical = false
		}
	}
	fmt.Printf("scatter-gather vs unsharded reference over %d queries: identical=%v\n",
		len(queries), identical)

	// Membership probes route to the symbol's owner.
	for _, sym := range []string{"sensor-a", "sensor-b"} {
		found, _, err := cc.HasSymbol(ctx, sym)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("symbol %q found at shard %d: %v\n", sym, cc.ShardForSymbol(sym), found)
	}
}
