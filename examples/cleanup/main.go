// Cleanup: Sparse Distributed Memory (Kanerva 1988) as an HDC cleanup
// stage — store the basis-hypervectors of a circular encoder in an SDM and
// recover clean vectors from heavily corrupted cues by iterative recall.
//
//	go run ./examples/cleanup
package main

import (
	"fmt"

	"hdcirc"
)

func main() {
	const d = 1024
	stream := hdcirc.NewStream(42)

	// A random basis gives crisp, well-separated attractors. (Storing a
	// correlated set — level or circular — works too, but neighboring
	// vectors blur each other's basins; try changing the kind.)
	basis := hdcirc.NewBasis(hdcirc.Random, 16, d, 0, stream)

	cfg := hdcirc.DefaultSDMConfig(d)
	mem := hdcirc.NewSDM(cfg)
	fmt.Printf("SDM: %d hard locations, activation radius %d of %d bits\n\n",
		mem.Locations(), mem.Radius(), d)

	// Auto-associative store: every basis vector is written at itself.
	for i := 0; i < basis.Len(); i++ {
		mem.Write(basis.At(i), basis.At(i))
	}

	noise := hdcirc.NewStream(7)
	fmt.Println("recall under increasing cue corruption (item C5):")
	item := basis.At(5)
	for _, frac := range []float64{0.05, 0.15, 0.25, 0.35} {
		cue := item.Clone()
		flips := int(frac * float64(d))
		for i := 0; i < flips; i++ {
			cue.FlipBit(noise.Intn(d))
		}
		got, iters, ok := mem.ReadIterative(cue, 10)
		if !ok {
			fmt.Printf("  %4.0f%% noise: no hard locations activated\n", 100*frac)
			continue
		}
		fmt.Printf("  %4.0f%% noise: cue δ=%.3f → recalled δ=%.3f in %d iteration(s)\n",
			100*frac, cue.Distance(item), got.Distance(item), iters)
	}

	fmt.Println("\nbeyond the critical distance the memory falls toward other attractors —")
	fmt.Println("inside it, recall converges to the stored vector in a couple of reads.")
}
