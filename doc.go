// Package hdcirc is a Go implementation of basis-hypervectors for
// Hyperdimensional Computing (HDC), reproducing "An Extension to
// Basis-Hypervectors for Learning from Circular Data in Hyperdimensional
// Computing" (Nunes, Heddes, Givargis, Nicolau — DAC 2023,
// arXiv:2205.07920).
//
// The package exposes the following layers:
//
//   - Hypervector arithmetic: binary vectors in {0,1}^d with binding (XOR),
//     bundling (majority / integer accumulators) and permutation (cyclic
//     shift). See Vector, Accumulator, Majority.
//   - Basis-hypervector sets: Random, LevelLegacy, Level (the paper's
//     Algorithm 1), Circular (the paper's main contribution) and Scatter
//     generators, all parameterized by the r correlation-relaxation
//     hyperparameter where applicable. See NewBasis and the Kind constants.
//   - Encoders: scalar (level), circular (angle), symbol item memories,
//     record (⊕ Kᵢ ⊗ Vᵢ), sequence and n-gram encoders. See NewScalarEncoder,
//     NewCircularEncoder, NewItemMemory, NewRecordEncoder.
//   - Learning: the standard HDC centroid classifier (with optional online
//     refinement) and the bind-and-memorize regressor with invertible label
//     decoding. See NewClassifier, NewRegressor.
//   - Batch pipeline: a GOMAXPROCS-sized worker pool that fans encode,
//     train and predict out across cores with results bit-identical to the
//     sequential path for any worker count. See NewBatchPool, EncodeBatch,
//     and the Classifier AddBatch/PredictBatch/RefineBatch methods.
//   - Online serving: the models behind immutable, versioned snapshots —
//     lock-free reads at any fan-in, a single-writer apply path for
//     training/churn, consistent-hash sharding, and live snapshot
//     persistence with warm start. See NewServer, ServerConfig, Snapshot,
//     and the cmd/hdcserve HTTP front end.
//   - Durability: a CRC-framed, fsync-batched write-ahead log plus
//     exact-state checkpoints make the serving layer crash-safe — every
//     acknowledged batch is logged before it is applied, recovery replays
//     the surviving prefix into a bit-identical snapshot (a torn tail is
//     truncated, a partial record never replayed), and checkpoints bound
//     recovery cost to one state file plus the log suffix. See
//     OpenDurableServer, WALConfig, and the Server Checkpoint/Close
//     methods; cmd/hdcserve exposes it as -data-dir.
//   - Degraded operation: a storage fault under the log does not kill a
//     durable server — it degrades to read-only. Writes fail fast with
//     errors wrapping ErrServerWALFailed and ErrServerDegraded (503
//     read_only with a Retry-After hint on the wire), reads keep serving
//     the last acknowledged snapshot, and the server probes the disk on
//     the WALConfig RetryInterval cadence until recovery replays any
//     unacknowledged records and re-enables writes. Server.State reports
//     the healthy/degraded/closed machine, Server.Recover is the manual
//     handle, and /v1/healthz?plane=write gives load balancers a 503
//     that drains write traffic while reads stay. Request lifecycles are
//     deadline-bounded server-side (ServeHandlerConfig WriteDeadline /
//     PredictDeadline → 504 deadline_exceeded) and client-side (per-call
//     timeouts, a total retry budget, and a circuit breaker that trips
//     on consecutive write-plane 503s and half-opens through a healthz
//     probe). All storage flows through the internal/vfs seam, so every
//     fault mode — ENOSPC, EIO, torn writes, failed fsyncs and renames —
//     is exercised by injection in tests, including a chaos property
//     test whose failing case is an acknowledged-then-lost write.
//   - Serving API v1: the HTTP wire layer over the serving core — typed
//     protocol structs and a structured error envelope shared by server
//     and client, versioned routes, NDJSON streaming bulk endpoints that
//     coalesce rows into write batches, request hardening (bounded
//     bodies, method/Content-Type enforcement, unknown-field rejection)
//     and admission control (bounded in-flight work; overload is a
//     structured 429 with Retry-After). Embed it with ServeHandler +
//     NewServeEncoder; cmd/hdcserve is a thin flag shell over the same
//     call, and the Go client SDK lives in package hdcirc/client (typed
//     methods for every endpoint, retry with backoff, streaming ingest
//     and prediction, client-side batch coalescing).
//   - Horizontal scale: the serving tier replicates and shards. A primary
//     ships its write-ahead log to read replicas over
//     /v1/replicate:stream (NewReplicationSource,
//     StartReplicationFollower; converged replicas serve byte-identical
//     snapshots, the client SDK routes reads to replicas and follows
//     not_primary hints on failover). Above replication, a versioned
//     ClusterManifest — HCLU binary with whole-file CRC, or JSON — binds
//     shard groups into one tier: every node and client builds the same
//     hashring from the manifest's pinned seed and geometry, classes and
//     item symbols each route to one owning shard, and a node scoped
//     with NewClusterNode refuses misrouted writes with a structured
//     wrong_shard error carrying the owner's endpoints. The shard-aware
//     cluster client (client.NewClusterClient) splits writes per owner,
//     streams bulk ingest on per-shard coalesced connections, and
//     answers predictions by scatter-gather over raw integer per-class
//     distances (POST /v1/scores) merged with the exact unsharded
//     tie-break — bit-identical to a single unsharded server trained on
//     the same rows. See ClusterManifest, NewClusterNode and
//     examples/cluster.
//
// Every hot loop — bundling accumulation, majority thresholding, rotation,
// nearest-prototype search — runs as a word-parallel kernel over the
// packed 64-bit representation rather than bit by bit; see internal/bitvec
// for the kernel catalog (Nearest, DistanceMany, XorDistance,
// WithinDistance, DistanceBounded, NearestPruned, the carry-save-adder
// Majority) and cmd/hdcbench for the tracked ns/op numbers.
//
// Associative lookups additionally go sublinear past a size threshold:
// internal/index serves ItemMemory.Lookup, large-k Classifier.Predict,
// SDM activation and the serving snapshots through a bit-sampling sketch
// index — signature-distance candidate generation plus exact re-rank with
// the threshold-pruned kernels. The recall/latency trade is tunable
// through IndexConfig (exact mode: Candidates >= collection size; opt
// out: Disabled), see NewAssocIndex, NewIndexedItemMemory and the Index
// field on ServerConfig.
//
// A minimal classification session:
//
//	stream := hdcirc.NewStream(42)
//	basis := hdcirc.NewBasis(hdcirc.Circular, 24, 10000, 0.1, stream)
//	enc := hdcirc.NewCircularEncoder(basis, 2*math.Pi)
//	clf := hdcirc.NewClassifier(numClasses, 10000, 42)
//	for _, s := range train {
//		clf.Add(s.Label, enc.Encode(s.Angle))
//	}
//	class, _ := clf.Predict(enc.Encode(query))
//
// Everything is deterministic given the seeds, uses only the standard
// library, and has no global state. The experiment harness that regenerates
// the paper's tables and figures lives in cmd/hdcrepro; runnable
// walk-throughs live under examples/.
package hdcirc
