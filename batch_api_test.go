package hdcirc

// Determinism tests for the public batch pipeline: EncodeBatch and the
// batched classifier methods must produce bit-identical results to the
// sequential path for any worker count.

import (
	"testing"
)

func TestEncodeBatchMatchesSequential(t *testing.T) {
	const d, nFields, m = 1000, 4, 32
	stream := NewStream(5)
	basis := NewBasis(Level, m, d, 0, stream)
	enc := NewScalarEncoder(basis, 0, 1)
	rec := NewRecordEncoder(d, nFields, 77)
	encs := []FieldEncoder{enc, enc, enc, enc}

	samples := make([][]float64, 150)
	r := NewStream(6)
	for i := range samples {
		row := make([]float64, nFields)
		for j := range row {
			row[j] = r.Float64()
		}
		samples[i] = row
	}
	want := make([]*Vector, len(samples))
	for i, s := range samples {
		want[i] = rec.EncodeRecord(s, encs)
	}
	for _, workers := range []int{1, 2, 3, 5, 8, 16} {
		got := EncodeBatch(NewBatchPool(workers), samples, func(s []float64) *Vector {
			return rec.EncodeRecord(s, encs)
		})
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("workers=%d: EncodeBatch[%d] differs from sequential encode", workers, i)
			}
		}
	}
}

func TestEncodeBatchSequenceEncoder(t *testing.T) {
	const d = 777
	seq := NewSequenceEncoder(d, 9)
	im := NewItemMemory(d, 10)
	// Pre-intern the alphabet: ItemMemory.Get mutates and is the one encoder
	// step that must happen before fanning out.
	alphabet := []string{"a", "b", "c", "d", "e"}
	for _, s := range alphabet {
		im.Get(s)
	}
	sentences := make([][]*Vector, 60)
	r := NewStream(11)
	for i := range sentences {
		n := 3 + r.Intn(10)
		items := make([]*Vector, n)
		for j := range items {
			items[j] = im.Get(alphabet[r.Intn(len(alphabet))])
		}
		sentences[i] = items
	}
	want := make([]*Vector, len(sentences))
	for i, s := range sentences {
		want[i] = seq.Encode(s)
	}
	for _, workers := range []int{1, 3, 8} {
		got := EncodeBatch(NewBatchPool(workers), sentences, seq.Encode)
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("workers=%d: sequence EncodeBatch[%d] differs from sequential", workers, i)
			}
		}
	}
}

func TestBatchKernelReexports(t *testing.T) {
	r := NewStream(12)
	q := RandomVector(512, r)
	vs := []*Vector{RandomVector(512, r), RandomVector(512, r), q.Clone()}
	if idx, hd := Nearest(q, vs); idx != 2 || hd != 0 {
		t.Errorf("Nearest = (%d,%d), want (2,0)", idx, hd)
	}
	dst := DistanceMany(q, vs, nil)
	if dst[2] != 0 || dst[0] != q.HammingDistance(vs[0]) {
		t.Errorf("DistanceMany wrong: %v", dst)
	}
	x, y := RandomVector(512, r), RandomVector(512, r)
	if got, want := XorDistance(x, y, q), x.Xor(y).HammingDistance(q); got != want {
		t.Errorf("XorDistance = %d, want %d", got, want)
	}
}
