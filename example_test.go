package hdcirc_test

import (
	"fmt"
	"math"

	"hdcirc"
)

// ExampleNewBasis demonstrates the distance structure of the three main
// basis families.
func ExampleNewBasis() {
	stream := hdcirc.NewStream(7)
	m, d := 8, 100000 // large d keeps the sampled distances close to expectation

	level := hdcirc.NewBasis(hdcirc.Level, m, d, 0, stream)
	circular := hdcirc.NewBasis(hdcirc.Circular, m, d, 0, stream)

	fmt.Printf("level:    δ(L0,L1)=%.2f δ(L0,L7)=%.2f\n",
		level.At(0).Distance(level.At(1)), level.At(0).Distance(level.At(7)))
	fmt.Printf("circular: δ(C0,C1)=%.2f δ(C0,C4)=%.2f δ(C0,C7)=%.2f\n",
		circular.At(0).Distance(circular.At(1)),
		circular.At(0).Distance(circular.At(4)),
		circular.At(0).Distance(circular.At(7)))
	// Output:
	// level:    δ(L0,L1)=0.07 δ(L0,L7)=0.50
	// circular: δ(C0,C1)=0.12 δ(C0,C4)=0.50 δ(C0,C7)=0.12
}

// ExampleClassifier shows the full classification loop on angular data.
func ExampleClassifier() {
	const d = 10000
	stream := hdcirc.NewStream(42)
	enc := hdcirc.NewCircularEncoder(hdcirc.NewBasis(hdcirc.Circular, 32, d, 0, stream), 2*math.Pi)

	clf := hdcirc.NewClassifier(2, d, 1)
	// Class 0 near angle 0 (wrapping!), class 1 near π.
	for _, a := range []float64{6.1, 6.2, 0.1, 0.2} {
		clf.Add(0, enc.Encode(a))
	}
	for _, a := range []float64{3.0, 3.1, 3.2, 3.3} {
		clf.Add(1, enc.Encode(a))
	}
	class, _ := clf.Predict(enc.Encode(0.05)) // near the seam
	fmt.Println("0.05 rad →", class)
	class, _ = clf.Predict(enc.Encode(3.2))
	fmt.Println("3.20 rad →", class)
	// Output:
	// 0.05 rad → 0
	// 3.20 rad → 1
}

// ExampleRegressor shows invertible label encoding for regression.
func ExampleRegressor() {
	const d = 10000
	stream := hdcirc.NewStream(3)
	x := hdcirc.NewCircularEncoder(hdcirc.NewBasis(hdcirc.Circular, 16, d, 0, stream), 360)
	y := hdcirc.NewScalarEncoder(hdcirc.NewBasis(hdcirc.Level, 32, d, 0, stream), 0, 31)

	reg := hdcirc.NewRegressor(d, 4)
	reg.Add(x.Encode(90), y.Encode(20))
	fmt.Println(reg.Predict(x.Encode(90), y))
	// Output:
	// 20
}
