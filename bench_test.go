package hdcirc

// The repository's benchmark harness. One benchmark per table and figure of
// the paper regenerates a reduced-size version of that experiment and
// reports its headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints both the runtime cost and the reproduced result shape. Full-size
// numbers (d = 10000, full series) are produced by cmd/hdcrepro and
// recorded in EXPERIMENTS.md.

import (
	"math"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/dataset"
	"hdcirc/internal/experiments"
	"hdcirc/internal/markov"
	"hdcirc/internal/rng"
)

const benchDim = 10000

// ---------------------------------------------------------------------------
// Core operation benchmarks
// ---------------------------------------------------------------------------

func BenchmarkBind(b *testing.B) {
	r := rng.New(1)
	x := bitvec.Random(benchDim, r)
	y := bitvec.Random(benchDim, r)
	dst := bitvec.New(benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.XorInto(y, dst)
	}
}

func BenchmarkDistance(b *testing.B) {
	r := rng.New(2)
	x := bitvec.Random(benchDim, r)
	y := bitvec.Random(benchDim, r)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = x.Distance(y)
	}
	_ = sink
}

func BenchmarkBundleAccumulate(b *testing.B) {
	r := rng.New(3)
	v := bitvec.Random(benchDim, r)
	acc := bitvec.NewAccumulator(benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Add(v)
	}
}

func BenchmarkBundleThreshold(b *testing.B) {
	r := rng.New(4)
	acc := bitvec.NewAccumulator(benchDim)
	for i := 0; i < 9; i++ {
		acc.Add(bitvec.Random(benchDim, r))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = acc.Threshold(bitvec.TieZero, nil)
	}
}

func BenchmarkPermuteBits(b *testing.B) {
	r := rng.New(5)
	v := bitvec.Random(benchDim, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.RotateBits(1)
	}
}

func BenchmarkPermuteWords(b *testing.B) {
	r := rng.New(6)
	v := bitvec.Random(benchDim-benchDim%64, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.RotateWords(1)
	}
}

// ---------------------------------------------------------------------------
// Basis generation benchmarks (one per family)
// ---------------------------------------------------------------------------

func benchGenerate(b *testing.B, kind core.Kind) {
	r := rng.New(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Config{Kind: kind, M: 64, D: benchDim}.Build(r)
	}
}

func BenchmarkGenerateRandom(b *testing.B)      { benchGenerate(b, core.KindRandom) }
func BenchmarkGenerateLevelLegacy(b *testing.B) { benchGenerate(b, core.KindLevelLegacy) }
func BenchmarkGenerateLevel(b *testing.B)       { benchGenerate(b, core.KindLevel) }
func BenchmarkGenerateCircular(b *testing.B)    { benchGenerate(b, core.KindCircular) }
func BenchmarkGenerateScatter(b *testing.B)     { benchGenerate(b, core.KindScatter) }

func BenchmarkMarkovSolverThomas(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := markov.ExpectedFlips(benchDim, benchDim/4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarkovSolverRecurrence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := markov.ExpectedFlipsRecurrence(benchDim, benchDim/4); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table and figure benchmarks
// ---------------------------------------------------------------------------

// benchTable1Config is the reduced Table 1 workload used by benchmarks.
func benchTable1Config() experiments.Table1Config {
	cfg := experiments.DefaultTable1Config()
	cfg.Classify.D = 4096
	cfg.Gesture.TrainPerGesture = 12
	cfg.Gesture.TestPerGesture = 8
	return cfg
}

// BenchmarkTable1 regenerates the classification accuracy table and reports
// the mean accuracy per basis family.
func BenchmarkTable1(b *testing.B) {
	cfg := benchTable1Config()
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable1(cfg)
	}
	report := func(kind core.Kind, name string) {
		var sum float64
		for _, row := range res.Rows {
			sum += row.Accuracy[kind]
		}
		b.ReportMetric(100*sum/float64(len(res.Rows)), name)
	}
	report(core.KindRandom, "acc-random-%")
	report(core.KindLevel, "acc-level-%")
	report(core.KindCircular, "acc-circular-%")
}

// benchTable2Config is the reduced Table 2 workload used by benchmarks.
func benchTable2Config() experiments.Table2Config {
	cfg := experiments.DefaultTable2Config()
	cfg.Regress.D = 4096
	cfg.Temp.HourStep = 12
	cfg.Orbit.N = 900
	return cfg
}

// BenchmarkTable2 regenerates the regression MSE table and reports each
// basis family's MSE normalized to the random baseline (averaged across the
// two datasets).
func BenchmarkTable2(b *testing.B) {
	cfg := benchTable2Config()
	var res *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable2(cfg)
	}
	norm := res.Normalized(core.KindRandom)
	var lvl, circ float64
	for _, row := range norm {
		lvl += row.MSE[core.KindLevel]
		circ += row.MSE[core.KindCircular]
	}
	b.ReportMetric(lvl/float64(len(norm)), "nmse-level")
	b.ReportMetric(circ/float64(len(norm)), "nmse-circular")
}

// BenchmarkFigure3 regenerates the basis similarity heatmaps and reports
// the circular set's wrap-neighbor similarity (the quantity the figure
// exists to show).
func BenchmarkFigure3(b *testing.B) {
	cfg := experiments.DefaultFigure3Config()
	cfg.D = 4096
	var res *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFigure3(cfg)
	}
	circ := res.Matrices[core.KindCircular]
	b.ReportMetric(circ[0][cfg.M-1], "wrap-similarity")
	b.ReportMetric(circ[0][cfg.M/2], "antipode-similarity")
}

// BenchmarkFigure4Markov regenerates the Section 4.2 flip-calibration sweep
// and reports the flips needed for Δ = 0.25 at d = 10000.
func BenchmarkFigure4Markov(b *testing.B) {
	var pts []experiments.MarkovPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.RunMarkovSweep(benchDim, []float64{0.05, 0.1, 0.25, 0.45})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[2].MarkovFlips, "flips-Δ0.25")
}

// BenchmarkFigure6 regenerates the r-profile comparison and reports the
// antipodal similarity at r = 0 and r = 1.
func BenchmarkFigure6(b *testing.B) {
	cfg := experiments.DefaultFigure6Config()
	cfg.D = 4096
	var profiles []experiments.Figure6Profile
	for i := 0; i < b.N; i++ {
		profiles = experiments.RunFigure6(cfg)
	}
	b.ReportMetric(profiles[0].Similarity[1], "r0-neighbor-sim")
	b.ReportMetric(profiles[len(profiles)-1].Similarity[1], "r1-neighbor-sim")
}

// BenchmarkFigure7 regenerates the normalized MSE bars and reports the
// circular bar heights.
func BenchmarkFigure7(b *testing.B) {
	cfg := benchTable2Config()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunFigure7(cfg)
	}
	for _, row := range rows {
		b.ReportMetric(row.MSE[core.KindCircular], "nmse-"+row.Dataset[:4])
	}
}

// BenchmarkFigure8 regenerates a coarse r sweep over all five datasets and
// reports the mean normalized error at r = 0 and r = 1.
func BenchmarkFigure8(b *testing.B) {
	cfg := experiments.DefaultFigure8Config()
	cfg.Classify.D = 4096
	cfg.Regress.D = 4096
	cfg.Gesture.TrainPerGesture = 12
	cfg.Gesture.TestPerGesture = 8
	cfg.Temp.HourStep = 12
	cfg.Orbit.N = 900
	cfg.RGrid = []float64{0, 0.1, 1}
	var series []experiments.Figure8Series
	for i := 0; i < b.N; i++ {
		series = experiments.RunFigure8(cfg)
	}
	var e0, e1 float64
	for _, s := range series {
		e0 += s.Error[0]
		e1 += s.Error[len(s.Error)-1]
	}
	b.ReportMetric(e0/float64(len(series)), "err-r0")
	b.ReportMetric(e1/float64(len(series)), "err-r1")
}

// ---------------------------------------------------------------------------
// Ablation benchmarks (design choices called out in DESIGN.md)
// ---------------------------------------------------------------------------

// BenchmarkAblationLevelGeneration compares the paper's Algorithm-1 level
// construction against the legacy fixed-flip construction on the gesture
// classification task, reporting both accuracies.
func BenchmarkAblationLevelGeneration(b *testing.B) {
	g := dataset.DefaultGestureConfig("Knot Tying")
	g.TrainPerGesture = 12
	g.TestPerGesture = 8
	ds := dataset.GenGestures(g, experiments.DefaultSeed)
	cfg := experiments.DefaultClassifyConfig()
	cfg.D = 4096
	var interp, legacy experiments.ClassificationResult
	for i := 0; i < b.N; i++ {
		interp = experiments.RunGestureClassification(ds, core.KindLevel, cfg)
		legacy = experiments.RunGestureClassification(ds, core.KindLevelLegacy, cfg)
	}
	b.ReportMetric(100*interp.Accuracy, "acc-alg1-%")
	b.ReportMetric(100*legacy.Accuracy, "acc-legacy-%")
}

// BenchmarkAblationScatterVsLevel compares scatter codes against linear
// level sets on the orbital regression task.
func BenchmarkAblationScatterVsLevel(b *testing.B) {
	o := dataset.DefaultOrbitConfig()
	o.N = 900
	orbits := dataset.GenOrbitPower(o, experiments.DefaultSeed)
	cfg := experiments.DefaultRegressConfig()
	cfg.D = 4096
	var lvl, sct experiments.RegressionResult
	for i := 0; i < b.N; i++ {
		lvl = experiments.RunOrbitRegression(orbits, core.KindLevel, cfg)
		sct = experiments.RunOrbitRegression(orbits, core.KindScatter, cfg)
	}
	b.ReportMetric(lvl.MSE, "mse-level")
	b.ReportMetric(sct.MSE, "mse-scatter")
}

// BenchmarkAblationDimension sweeps the hypervector dimension on one
// classification cell, the accuracy/efficiency trade HDC is known for.
func BenchmarkAblationDimension(b *testing.B) {
	g := dataset.DefaultGestureConfig("Knot Tying")
	g.TrainPerGesture = 12
	g.TestPerGesture = 8
	ds := dataset.GenGestures(g, experiments.DefaultSeed)
	for _, d := range []int{1024, 2048, 4096, 8192} {
		b.Run(itoa(d), func(b *testing.B) {
			cfg := experiments.DefaultClassifyConfig()
			cfg.D = d
			cfg.R = 0.1
			var res experiments.ClassificationResult
			for i := 0; i < b.N; i++ {
				res = experiments.RunGestureClassification(ds, core.KindCircular, cfg)
			}
			b.ReportMetric(100*res.Accuracy, "acc-%")
		})
	}
}

// BenchmarkAblationRefinement measures the online-refinement extension
// against the paper's single-pass centroid training.
func BenchmarkAblationRefinement(b *testing.B) {
	g := dataset.DefaultGestureConfig("Suturing")
	g.TrainPerGesture = 12
	g.TestPerGesture = 8
	ds := dataset.GenGestures(g, experiments.DefaultSeed)
	cfg := experiments.DefaultClassifyConfig()
	cfg.D = 4096
	refined := cfg
	refined.RefineEpochs = 5
	var plain, ref experiments.ClassificationResult
	for i := 0; i < b.N; i++ {
		plain = experiments.RunGestureClassification(ds, core.KindCircular, cfg)
		ref = experiments.RunGestureClassification(ds, core.KindCircular, refined)
	}
	b.ReportMetric(100*plain.Accuracy, "acc-centroid-%")
	b.ReportMetric(100*ref.Accuracy, "acc-refined-%")
}

// itoa avoids strconv for this one tiny use.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return "d=" + string(buf[i:])
}

// BenchmarkEncodeRecord measures the Table 1 record encoding end to end.
func BenchmarkEncodeRecord(b *testing.B) {
	stream := rng.New(8)
	basis := core.CircularSetR(24, benchDim, 0.1, stream)
	enc := NewCircularEncoder(basis, 2*math.Pi)
	record := NewRecordEncoder(benchDim, 18, 9)
	encs := make([]FieldEncoder, 18)
	vals := make([]float64, 18)
	for i := range encs {
		encs[i] = enc
		vals[i] = float64(i) / 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = record.EncodeRecord(vals, encs)
	}
}
