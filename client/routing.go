package client

// Replica-aware routing. A Client built with WithReplicas knows the whole
// serving tier: one primary plus any number of read replicas. Writes
// (Train, Ingest) always target the current primary — and when a node
// answers not_primary with a redirect hint (after a failover promoted a
// different replica), the client adopts the hinted primary and retries,
// so callers survive promotion without reconfiguration. Reads route per
// the configured ReadPreference and fail over across endpoints before
// giving up. Every endpoint keeps its own circuit breaker and its own
// latency/lag observations; one slow or degraded node never poisons the
// view of another.

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// ReadPreference selects which endpoints serve the read plane (Predict*,
// RouteKey, Cleanup, HasSymbol, Stats, Health, Snapshot). Use the
// Primary/NearestReplica values or the BoundedStaleness constructor.
type ReadPreference struct {
	kind   uint8
	maxLag uint64
}

const (
	prefPrimary uint8 = iota
	prefNearest
	prefBounded
)

// Primary routes every read to the current primary — the strongest
// consistency and the default: a Client without replicas behaves exactly
// as before.
var Primary = ReadPreference{kind: prefPrimary}

// NearestReplica prefers the replica with the lowest observed request
// latency (an exponentially weighted average of successful reads),
// falling back through the remaining replicas and finally the primary.
// Reads may lag the primary by however far replication is behind.
var NearestReplica = ReadPreference{kind: prefNearest}

// BoundedStaleness prefers replicas whose replication lag (as the replica
// itself reports in its stats) is at most maxLag sequence numbers, falling
// back to the primary when no replica qualifies. Lag observations are
// cached briefly (see lagTTL), so the bound is approximate by one refresh
// interval.
func BoundedStaleness(maxLag uint64) ReadPreference {
	return ReadPreference{kind: prefBounded, maxLag: maxLag}
}

// WithReplicas declares the read replicas of the serving tier. The first
// argument of New stays the primary. Replica URLs take the same form as
// the primary's.
func WithReplicas(urls ...string) Option {
	return func(c *Client) { c.replicaURLs = append(c.replicaURLs, urls...) }
}

// WithReadPreference sets how the read plane is routed across the tier.
// The default is Primary.
func WithReadPreference(p ReadPreference) Option {
	return func(c *Client) { c.pref = p }
}

// lagTTL bounds how stale a cached replica-lag observation may be before
// BoundedStaleness routing refreshes it with a stats probe.
const lagTTL = time.Second

// endpoint is one node of the serving tier as this client sees it: its
// base URL plus purely local observations — write-plane circuit breaker
// state, read-latency average, and the replication lag it last reported.
type endpoint struct {
	base string
	br   *breaker

	mu       sync.Mutex
	rtt      time.Duration // EWMA of successful read round trips; 0 = unmeasured
	lag      uint64        // replication lag it last reported
	lagKnown bool
	lagAt    time.Time // when lag was observed
}

// observeRTT folds one successful read's round trip into the moving
// average (¾ old, ¼ new — reactive but not jittery).
func (ep *endpoint) observeRTT(d time.Duration) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.rtt == 0 {
		ep.rtt = d
		return
	}
	ep.rtt = (3*ep.rtt + d) / 4
}

func (ep *endpoint) readRTT() time.Duration {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.rtt
}

// freshLag returns the endpoint's replication lag, refreshing the cached
// observation with a direct stats probe when it is older than lagTTL.
// ok=false means the lag is unknowable right now (probe failed) and the
// endpoint should not be trusted for bounded-staleness reads.
func (ep *endpoint) freshLag(ctx context.Context, hc *http.Client) (lag uint64, ok bool) {
	ep.mu.Lock()
	if ep.lagKnown && time.Since(ep.lagAt) < lagTTL {
		lag = ep.lag
		ep.mu.Unlock()
		return lag, true
	}
	ep.mu.Unlock()

	pctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, ep.base+"/v1/stats", nil)
	if err != nil {
		return 0, false
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, false
	}
	var st StatsResponse
	err = decodeJSONBody(resp, &st)
	if err != nil {
		return 0, false
	}
	lag = 0
	if st.Replication != nil {
		lag = st.Replication.FollowerLagSeq
	}
	ep.mu.Lock()
	ep.lag, ep.lagKnown, ep.lagAt = lag, true, time.Now()
	ep.mu.Unlock()
	return lag, true
}

// primaryEndpoint returns the node writes currently target.
func (c *Client) primaryEndpoint() *endpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.primary
}

// PrimaryURL reports the base URL writes currently target. It changes
// when a not_primary redirect makes the client adopt a newly promoted
// primary.
func (c *Client) PrimaryURL() string { return c.primaryEndpoint().base }

// adoptPrimary re-points writes at the primary a not_primary redirect
// hinted. The previous primary stays in the endpoint set as a replica —
// after a failover it usually IS one. Reports whether anything changed.
func (c *Client) adoptPrimary(rawURL string) bool {
	base, err := normalizeBase(rawURL)
	if err != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.primary.base == base {
		return false
	}
	np, ok := c.eps[base]
	if !ok {
		np = c.newEndpoint(base)
		c.eps[base] = np
	}
	old := c.primary
	c.primary = np
	// The endpoint sets swap roles: the new primary leaves the replica
	// list, the demoted one joins it.
	keep := c.replicas[:0]
	for _, ep := range c.replicas {
		if ep != np {
			keep = append(keep, ep)
		}
	}
	c.replicas = append(keep, old)
	return true
}

// readCandidates returns the endpoints a read should try, in order, per
// the read preference. Always non-empty; the primary is the final
// fallback for every replica-preferring mode.
func (c *Client) readCandidates(ctx context.Context) []*endpoint {
	c.mu.Lock()
	primary := c.primary
	reps := make([]*endpoint, len(c.replicas))
	copy(reps, c.replicas)
	c.mu.Unlock()

	if len(reps) == 0 || c.pref.kind == prefPrimary {
		return []*endpoint{primary}
	}
	switch c.pref.kind {
	case prefNearest:
		// Unmeasured endpoints sort first: the only way to learn their
		// latency is to use them.
		sort.SliceStable(reps, func(i, j int) bool {
			ri, rj := reps[i].readRTT(), reps[j].readRTT()
			if (ri == 0) != (rj == 0) {
				return ri == 0
			}
			return ri < rj
		})
	case prefBounded:
		within := make([]*endpoint, 0, len(reps))
		for _, ep := range reps {
			if lag, ok := ep.freshLag(ctx, c.hc); ok && lag <= c.pref.maxLag {
				within = append(within, ep)
			}
		}
		sort.SliceStable(within, func(i, j int) bool {
			ri, rj := within[i].readRTT(), within[j].readRTT()
			if (ri == 0) != (rj == 0) {
				return ri == 0
			}
			return ri < rj
		})
		reps = within
	}
	return append(reps, primary)
}

// newEndpoint builds an endpoint with its own breaker from the client's
// breaker template. Callers hold c.mu (or are inside New).
func (c *Client) newEndpoint(base string) *endpoint {
	return &endpoint{base: base, br: &breaker{threshold: c.brThreshold, cooldown: c.brCooldown}}
}

// normalizeBase validates and canonicalizes one endpoint URL.
func normalizeBase(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("client: parsing endpoint URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("client: endpoint URL %q needs an http or https scheme", raw)
	}
	return strings.TrimRight(u.String(), "/"), nil
}
