package client

// Client-side batch coalescing: many goroutines each holding ONE feature
// record call Coalescer.Predict, and the coalescer merges them into few
// wire-level /v1/predict batches — a request-processing server's answer to
// high fan-in without making every caller manage batching. A batch flushes
// when it reaches MaxBatch rows or when the oldest waiting call has waited
// MaxDelay, whichever comes first.

import (
	"context"
	"sync"
	"time"
)

// Coalescer merges single-record Predict calls into batched wire requests.
// Safe for any number of concurrent callers.
type Coalescer struct {
	c        *Client
	ctx      context.Context // base context for every wire-level flush
	maxBatch int
	maxDelay time.Duration
	flushTO  time.Duration // per-flush deadline; 0 means none

	mu      sync.Mutex
	pending []*coalesceCall
	armed   bool // an AfterFunc is outstanding
}

// CoalescerOption configures a Coalescer at construction.
type CoalescerOption func(*Coalescer)

// WithFlushTimeout bounds each wire-level flush: the batched request is
// abandoned (and every waiting caller in the batch gets the deadline
// error) if the server has not answered within d. Zero or negative means
// no per-flush deadline beyond the coalescer's base context.
func WithFlushTimeout(d time.Duration) CoalescerOption {
	return func(co *Coalescer) {
		if d > 0 {
			co.flushTO = d
		}
	}
}

type coalesceCall struct {
	features []float64
	done     chan coalesceResult
}

type coalesceResult struct {
	class    int
	distance float64
	version  uint64
	err      error
}

// NewCoalescer builds a coalescer whose flushes live as long as the
// process. Use NewCoalescerContext to tie the flush lifetime to a server
// loop or request scope instead.
func (c *Client) NewCoalescer(maxBatch int, maxDelay time.Duration, opts ...CoalescerOption) *Coalescer {
	return c.NewCoalescerContext(context.Background(), maxBatch, maxDelay, opts...)
}

// NewCoalescerContext builds a coalescer over this client. Every
// wire-level flush derives from ctx: cancelling it fails all waiting
// callers promptly instead of leaving batches in flight. maxBatch <= 0
// selects 64 rows; maxDelay <= 0 selects 2ms — small enough to be
// invisible next to a network round trip, large enough to merge a burst.
func (c *Client) NewCoalescerContext(ctx context.Context, maxBatch int, maxDelay time.Duration, opts ...CoalescerOption) *Coalescer {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if maxDelay <= 0 {
		maxDelay = 2 * time.Millisecond
	}
	co := &Coalescer{c: c, ctx: ctx, maxBatch: maxBatch, maxDelay: maxDelay}
	for _, opt := range opts {
		opt(co)
	}
	return co
}

// Predict classifies one record, transparently batched with concurrent
// callers. ctx bounds this caller's wait only; an in-flight wire request
// is shared and completes for the other callers regardless.
func (co *Coalescer) Predict(ctx context.Context, features []float64) (class int, distance float64, version uint64, err error) {
	call := &coalesceCall{features: features, done: make(chan coalesceResult, 1)}
	co.mu.Lock()
	co.pending = append(co.pending, call)
	if len(co.pending) >= co.maxBatch {
		batch := co.pending
		co.pending = nil
		co.mu.Unlock()
		co.flush(batch)
	} else {
		if !co.armed {
			co.armed = true
			time.AfterFunc(co.maxDelay, co.onTimer)
		}
		co.mu.Unlock()
	}
	select {
	case r := <-call.done:
		return r.class, r.distance, r.version, r.err
	case <-ctx.Done():
		return 0, 0, 0, ctx.Err()
	}
}

// onTimer flushes whatever accumulated since the timer was armed (a
// size-triggered flush may already have taken it; an empty take is a
// no-op).
func (co *Coalescer) onTimer() {
	co.mu.Lock()
	co.armed = false
	batch := co.pending
	co.pending = nil
	co.mu.Unlock()
	co.flush(batch)
}

// flush runs one wire call for the batch and broadcasts per-call results.
// The wire context is the coalescer's base context, not any single
// caller's: the request serves every caller in the batch, so one caller's
// cancellation must not kill it — but tearing down the coalescer's scope
// must.
func (co *Coalescer) flush(batch []*coalesceCall) {
	if len(batch) == 0 {
		return
	}
	queries := make([][]float64, len(batch))
	for i, call := range batch {
		queries[i] = call.features
	}
	fctx := co.ctx
	if co.flushTO > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(fctx, co.flushTO)
		defer cancel()
	}
	res, err := co.c.Predict(fctx, queries)
	for i, call := range batch {
		if err != nil {
			call.done <- coalesceResult{err: err}
			continue
		}
		call.done <- coalesceResult{
			class:    res.Classes[i],
			distance: res.Distances[i],
			version:  res.Version,
		}
	}
}
