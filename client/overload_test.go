package client

// Admission control under real concurrency: a fleet of parallel SDK
// clients saturates a tightly-gated server over real TCP — requests
// genuinely in flight, not recorded handlers — and the contract must
// hold: the gate's capacity admits, the queue blocks, everything beyond
// is shed as a structured 429 whose envelope carries the Retry-After
// hint, the shed count lands on the http_rejected counter, and the
// observability plane (stats, healthz) stays reachable the whole time.

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/httpapi"
	"hdcirc/internal/serve"
)

// gateStallEncoder blocks every Encode while armed, holding requests
// inside the handler so the test can fill the admission gate and keep it
// full deliberately. (httpapi.New probes Encode once at construction,
// before the test arms it.)
type gateStallEncoder struct {
	dim     int
	armed   atomic.Bool
	entered chan struct{} // one token per Encode that reached the stall
	release chan struct{} // closed to let them all through
}

func (e *gateStallEncoder) Fields() int { return 2 }

func (e *gateStallEncoder) Encode(features []float64) *bitvec.Vector {
	if e.armed.Load() {
		e.entered <- struct{}{}
		<-e.release
	}
	return bitvec.New(e.dim)
}

func TestAdmissionGateUnderConcurrentClients(t *testing.T) {
	const (
		maxInFlight = 2
		maxQueue    = 2
		retryAfter  = time.Second
		lateComers  = 14 // fired once the gate's in-flight slots are held
	)
	srv, err := serve.NewServer(serve.Config{Dim: 256, Classes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	enc := &gateStallEncoder{
		dim:     256,
		entered: make(chan struct{}, maxInFlight+maxQueue+lateComers),
		release: make(chan struct{}),
	}
	api, err := httpapi.New(httpapi.Config{
		Server: srv, Encoder: enc,
		MaxInFlight: maxInFlight, MaxQueue: maxQueue, RetryAfter: retryAfter,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api)
	defer ts.Close()
	enc.armed.Store(true)
	defer func() { // unblock any straggler before ts.Close waits on handlers
		select {
		case <-enc.release:
		default:
			close(enc.release)
		}
	}()

	// Every worker gets its own Client with retries and the breaker off:
	// one request, one verdict, nothing masked.
	newCli := func() *Client {
		cli, err := New(ts.URL, WithRetry(1, 0), WithCircuitBreaker(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		return cli
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	predict := func(results chan<- error) {
		_, _, err := newCli().PredictOne(ctx, []float64{0.1, 0.2})
		results <- err
	}

	// Phase 1: two requests take both in-flight slots and stall inside the
	// handler — confirmed by the stall tokens, not by sleeping.
	holders := make(chan error, maxInFlight)
	for i := 0; i < maxInFlight; i++ {
		go predict(holders)
	}
	for i := 0; i < maxInFlight; i++ {
		select {
		case <-enc.entered:
		case <-ctx.Done():
			t.Fatal("in-flight holders never reached the handler")
		}
	}

	// While the gate is saturated, the observability plane must answer:
	// stats and healthz bypass admission control by design.
	obs := newCli()
	if _, err := obs.Stats(ctx); err != nil {
		t.Errorf("stats gated during saturation: %v", err)
	}
	if _, err := obs.Health(ctx); err != nil {
		t.Errorf("healthz gated during saturation: %v", err)
	}

	// Phase 2: a concurrent burst. maxQueue of them block in the queue;
	// the rest must be shed immediately with the full 429 contract.
	late := make(chan error, lateComers)
	var wg sync.WaitGroup
	for i := 0; i < lateComers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			predict(late)
		}()
	}
	// Sheds return immediately; queued waiters stay blocked until the
	// stall is released. Drain rejections until the flow goes quiet. The
	// gate's documented benign queue overshoot under contention can admit
	// a few extra waiters, so the shed count is bounded, not exact — the
	// books are balanced exactly after release below.
	var shed int
	var hintless int
	for quiet := false; !quiet; {
		select {
		case err := <-late:
			if err == nil {
				t.Fatal("a burst request succeeded while the gate was held full")
			}
			var apiErr *Error
			if !errors.As(err, &apiErr) {
				t.Fatalf("shed request returned a non-protocol error: %v", err)
			}
			if apiErr.Code != CodeOverloaded {
				t.Fatalf("shed request code = %q, want %q", apiErr.Code, CodeOverloaded)
			}
			if apiErr.RetryAfterMS != retryAfter.Milliseconds() {
				hintless++
			}
			shed++
		case <-time.After(2 * time.Second):
			quiet = true
		}
	}
	if hintless > 0 {
		t.Errorf("%d shed responses missing the %dms Retry-After hint", hintless, retryAfter.Milliseconds())
	}
	if shed < lateComers/2 {
		t.Fatalf("only %d of %d burst requests were shed; the gate barely fired", shed, lateComers)
	}
	if shed > lateComers-maxQueue {
		t.Fatalf("%d shed of %d: more than the queue capacity allows to be rejected", shed, lateComers)
	}

	// The shed traffic is visible to operators while the gate is STILL
	// saturated — the counter must not wait for the stall to clear.
	stats, err := obs.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HTTPRejected < uint64(shed) {
		t.Errorf("http_rejected = %d, want >= %d", stats.HTTPRejected, shed)
	}

	// Phase 3: release the stall. The holders and every queued waiter
	// complete successfully — queueing delayed them, it didn't drop them.
	close(enc.release)
	for i := 0; i < maxInFlight; i++ {
		select {
		case err := <-holders:
			if err != nil {
				t.Errorf("in-flight holder %d failed: %v", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("in-flight holder never completed")
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("burst workers never finished after release")
	}
	queued := 0
	for drained := false; !drained; {
		select {
		case err := <-late:
			if err != nil {
				t.Errorf("queued waiter failed after release: %v", err)
			}
			queued++
		default:
			drained = true
		}
	}
	// Exact books: every burst request either shed or queued-then-served.
	if shed+queued != lateComers {
		t.Errorf("accounting: %d shed + %d served != %d fired", shed, queued, lateComers)
	}
	if queued < maxQueue {
		t.Errorf("%d queued waiters completed, want >= %d (the queue must delay, not drop)", queued, maxQueue)
	}
}
