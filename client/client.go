// Package client is the Go SDK for serving protocol v1 (the HTTP API
// internal/httpapi defines and cmd/hdcserve hosts). It shares the wire
// types with the server — they cannot drift — and adds what a production
// caller needs on top of raw HTTP: connection reuse, retry with
// exponential backoff on overload and transient faults, NDJSON streaming
// for bulk ingest and bulk prediction, and client-side batch coalescing
// for high-fan-in callers.
//
//	c, _ := client.New("http://localhost:8080")
//	res, err := c.Predict(ctx, [][]float64{{0.2, 0.7, 0.1}})
//
// # Replicated tiers
//
// A client may know a whole serving tier, not just one server: declare
// read replicas with WithReplicas and pick a routing policy with
// WithReadPreference.
//
//	c, _ := client.New("http://primary:8080",
//		client.WithReplicas("http://r1:8080", "http://r2:8080"),
//		client.WithReadPreference(client.BoundedStaleness(64)))
//
// Writes (Train, Ingest) always target the current primary. Reads route
// per the preference — Primary (the default; single-server behavior),
// NearestReplica (lowest observed latency), or BoundedStaleness(maxLag)
// (replicas within maxLag sequence numbers, per their own stats) — and
// fail over across endpoints within one call. When a write lands on a
// node that answers not_primary with a redirect hint (the tier failed
// over), the client adopts the hinted primary and retries; PrimaryURL
// reports the current target. Each endpoint keeps its own circuit
// breaker and latency/lag observations.
//
// # Errors
//
// Faults the server reports come back as *client.Error (the protocol's
// structured envelope): branch on the machine-readable Code, e.g.
//
//	var apiErr *client.Error
//	if errors.As(err, &apiErr) && apiErr.Code == client.CodeInvalidRequest { … }
//
// # Retries
//
// Overload rejections (429) are always retried — the server guarantees a
// rejected request was never admitted, so retrying cannot double-apply —
// honoring the server's Retry-After hint exactly when one is present.
// Transport faults and 5xx responses are retried only for read-plane
// calls (predict, lookup, stats, health, snapshot); a train batch that
// died mid-flight MAY have been applied, and blind replay would
// double-train, so write-plane calls surface those faults to the caller.
// Streams are never retried. WithRetryBudget caps the total backoff time
// per call; WithCallTimeout bounds each call end to end.
//
// # Degraded servers and the circuit breaker
//
// A server whose write-ahead log failed degrades to read-only: reads keep
// working, writes answer 503 with code read_only and a Retry-After hint.
// The client's circuit breaker (WithCircuitBreaker; on by default) counts
// those consecutive write-plane 503s and, past the threshold, fails
// writes fast with ErrCircuitOpen instead of dialing a server that cannot
// accept them. After the cooldown the next write probes GET /v1/healthz
// ?plane=write — recovered server, circuit closes; still degraded,
// another cooldown. Reads never pass through the breaker.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"hdcirc/internal/httpapi"
)

// Wire types, re-exported so callers need only this package. They are the
// same types the server marshals — protocol v1 has one definition.
type (
	// Error is the structured fault envelope every non-2xx response carries.
	Error = httpapi.Error
	// Code is the machine-readable error class inside an Error.
	Code = httpapi.Code
	// Sample is one labeled feature record in a TrainRequest.
	Sample = httpapi.Sample
	// TrainRequest is one write batch (samples to train, symbols to intern).
	TrainRequest = httpapi.TrainRequest
	// TrainResponse acknowledges an applied write batch.
	TrainResponse = httpapi.TrainResponse
	// PredictResponse carries classes and distances in query order.
	PredictResponse = httpapi.PredictResponse
	// LookupResponse answers key routing, symbol membership and cleanup.
	LookupResponse = httpapi.LookupResponse
	// StatsResponse is the operational summary incl. durability state.
	StatsResponse = httpapi.StatsResponse
	// HealthResponse is the liveness probe body.
	HealthResponse = httpapi.HealthResponse
	// IngestRow is one bulk-ingest NDJSON row (train sample and/or symbol).
	IngestRow = httpapi.IngestRow
	// IngestAck acknowledges applied ingest batches and summarizes the stream.
	IngestAck = httpapi.IngestAck
	// PredictRow is one bulk-predict NDJSON query row.
	PredictRow = httpapi.PredictRow
	// PredictResult is one bulk-predict NDJSON result row.
	PredictResult = httpapi.PredictResult
	// ScoresResponse carries raw per-class Hamming distances per query —
	// the scatter half of cluster scatter-gather predict.
	ScoresResponse = httpapi.ScoresResponse
	// ClusterResponse is a node's view of its cluster manifest.
	ClusterResponse = httpapi.ClusterResponse
	// ClusterShard is one shard group's endpoints in a ClusterResponse.
	ClusterShard = httpapi.ClusterShard
	// PromoteResponse acknowledges an admin promotion.
	PromoteResponse = httpapi.PromoteResponse
)

// Error codes, re-exported from the protocol.
const (
	CodeInvalidRequest   = httpapi.CodeInvalidRequest
	CodeMalformedBody    = httpapi.CodeMalformedBody
	CodeUnsupportedMedia = httpapi.CodeUnsupportedMedia
	CodeMethodNotAllowed = httpapi.CodeMethodNotAllowed
	CodeNotFound         = httpapi.CodeNotFound
	CodeBodyTooLarge     = httpapi.CodeBodyTooLarge
	CodeOverloaded       = httpapi.CodeOverloaded
	CodeUnavailable      = httpapi.CodeUnavailable
	CodeReadOnly         = httpapi.CodeReadOnly
	CodeDeadlineExceeded = httpapi.CodeDeadlineExceeded
	CodeInternal         = httpapi.CodeInternal
	CodeNotPrimary       = httpapi.CodeNotPrimary
	CodeFollowerReadOnly = httpapi.CodeFollowerReadOnly
	CodeStaleSeq         = httpapi.CodeStaleSeq
	CodeWrongShard       = httpapi.CodeWrongShard
)

// Client talks protocol v1 to a serving tier: one primary, plus any read
// replicas declared with WithReplicas. It is safe for concurrent use; the
// underlying transport pools and reuses connections per host. Writes
// always target the current primary (following not_primary redirects
// after a failover); reads route per the WithReadPreference policy.
type Client struct {
	hc          *http.Client
	maxAttempts int           // total tries per retryable call
	baseDelay   time.Duration // first backoff step, doubled per attempt
	maxDelay    time.Duration // backoff ceiling
	retryBudget time.Duration // total backoff sleep allowed per call; 0 = unbounded
	callTimeout time.Duration // per-call deadline layered under the caller's ctx; 0 = none
	streamBatch int           // client-side rows per buffered stream write

	// Breaker template, stamped into every endpoint (each node's write
	// plane degrades independently, so each gets its own circuit).
	brThreshold int
	brCooldown  time.Duration

	replicaURLs []string // raw WithReplicas arguments; resolved in New
	pref        ReadPreference

	mu       sync.Mutex
	primary  *endpoint
	replicas []*endpoint
	eps      map[string]*endpoint // every endpoint ever known, by base URL
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (timeouts, proxies,
// TLS). The default client has no global timeout — per-call contexts bound
// each request — and pools connections per host.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry sets the retry budget: total attempts per retryable call and
// the first backoff delay (doubled each attempt, capped at 16×base).
// attempts <= 1 disables retries.
func WithRetry(attempts int, base time.Duration) Option {
	return func(c *Client) {
		c.maxAttempts = attempts
		if base > 0 {
			c.baseDelay = base
			c.maxDelay = 16 * base
		}
	}
}

// WithRetryBudget caps the total time one call may spend sleeping between
// retry attempts, on top of the attempt count: when the next backoff step
// would exceed the budget the call gives up with the last fault attached.
// 0 (the default) leaves backoff bounded only by the attempt count.
func WithRetryBudget(total time.Duration) Option {
	return func(c *Client) { c.retryBudget = total }
}

// WithCallTimeout bounds every unary call (all its attempts and backoff
// together) with a deadline layered under the caller's context. 0 (the
// default) leaves calls bounded only by the caller's context.
func WithCallTimeout(d time.Duration) Option {
	return func(c *Client) { c.callTimeout = d }
}

// WithCircuitBreaker tunes the write-plane circuit breaker: after
// threshold consecutive write-plane 503s (read_only / unavailable)
// writes fail fast with ErrCircuitOpen, and after cooldown the next
// write probes healthz ?plane=write to decide whether to close the
// circuit. threshold <= 0 disables the breaker. The default is 5
// failures, 1s cooldown.
func WithCircuitBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) {
		if cooldown <= 0 {
			cooldown = time.Second
		}
		c.brThreshold, c.brCooldown = threshold, cooldown
	}
}

// WithStreamBatch sets how many NDJSON rows the streaming helpers buffer
// client-side before hitting the socket (write coalescing; the server
// batches independently per its own StreamBatch).
func WithStreamBatch(rows int) Option {
	return func(c *Client) {
		if rows > 0 {
			c.streamBatch = rows
		}
	}
}

// New builds a client for the serving tier whose primary is at baseURL
// (scheme://host[:port], with or without a trailing slash). Add read
// replicas with WithReplicas and pick how reads route with
// WithReadPreference; with neither, the client behaves exactly as the
// single-server client always has.
func New(baseURL string, opts ...Option) (*Client, error) {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConnsPerHost = 32 // high-fan-in callers reuse, not re-dial
	c := &Client{
		hc:          &http.Client{Transport: t},
		maxAttempts: 4,
		baseDelay:   100 * time.Millisecond,
		maxDelay:    1600 * time.Millisecond,
		streamBatch: 256,
		brThreshold: 5,
		brCooldown:  time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	if c.maxAttempts < 1 {
		c.maxAttempts = 1
	}
	// Endpoints are built after the options ran so each breaker is stamped
	// from the final WithCircuitBreaker configuration.
	base, err := normalizeBase(baseURL)
	if err != nil {
		return nil, err
	}
	c.eps = make(map[string]*endpoint, 1+len(c.replicaURLs))
	c.primary = c.newEndpoint(base)
	c.eps[base] = c.primary
	for _, raw := range c.replicaURLs {
		rb, err := normalizeBase(raw)
		if err != nil {
			return nil, err
		}
		if _, dup := c.eps[rb]; dup {
			continue // the primary, or a replica listed twice
		}
		ep := c.newEndpoint(rb)
		c.eps[rb] = ep
		c.replicas = append(c.replicas, ep)
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// Typed endpoint methods
// ---------------------------------------------------------------------------

// Train applies one write batch and returns the server's acknowledgment.
// Not retried on transport faults or 5xx (the batch may have applied);
// overload rejections are retried.
func (c *Client) Train(ctx context.Context, req TrainRequest) (*TrainResponse, error) {
	var out TrainResponse
	if err := c.do(ctx, http.MethodPost, "/v1/train", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Predict classifies a batch of feature records against one consistent
// server snapshot. Fully retryable.
func (c *Client) Predict(ctx context.Context, queries [][]float64) (*PredictResponse, error) {
	var out PredictResponse
	if err := c.do(ctx, http.MethodPost, "/v1/predict", httpapi.PredictRequest{Queries: queries}, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// PredictOne classifies a single record.
func (c *Client) PredictOne(ctx context.Context, features []float64) (class int, distance float64, err error) {
	res, err := c.Predict(ctx, [][]float64{features})
	if err != nil {
		return 0, 0, err
	}
	return res.Classes[0], res.Distances[0], nil
}

// RouteKey asks the server's consistent-hashing ring which shard serves an
// arbitrary key.
func (c *Client) RouteKey(ctx context.Context, key string) (*LookupResponse, error) {
	var out LookupResponse
	path := "/v1/lookup?key=" + url.QueryEscape(key)
	if err := c.do(ctx, http.MethodGet, path, nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// HasSymbol reports whether a symbol is interned in the item memory.
func (c *Client) HasSymbol(ctx context.Context, symbol string) (found bool, version uint64, err error) {
	var out LookupResponse
	path := "/v1/lookup?symbol=" + url.QueryEscape(symbol)
	if err := c.do(ctx, http.MethodGet, path, nil, &out, true); err != nil {
		return false, 0, err
	}
	return out.Found != nil && *out.Found, out.Version, nil
}

// Cleanup runs nearest-symbol cleanup on a feature record: the interned
// symbol most similar to its encoding, with the similarity.
func (c *Client) Cleanup(ctx context.Context, features []float64) (*LookupResponse, error) {
	var out LookupResponse
	if err := c.do(ctx, http.MethodPost, "/v1/lookup", httpapi.LookupRequest{Features: features}, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Scores fetches each query's raw per-class Hamming distances against one
// consistent server snapshot — the scatter half of cluster scatter-gather
// predict (integer distances merge exactly across shards; Predict's
// float64 distances would not). Fully retryable, routed per the read
// preference.
func (c *Client) Scores(ctx context.Context, queries [][]float64) (*ScoresResponse, error) {
	var out ScoresResponse
	if err := c.do(ctx, http.MethodPost, "/v1/scores", httpapi.ScoresRequest{Queries: queries}, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Cluster fetches the node's cluster manifest (GET /v1/cluster), the
// bootstrap and refresh surface of cluster clients. A node running
// outside a sharded cluster answers not_found.
func (c *Client) Cluster(ctx context.Context) (*ClusterResponse, error) {
	var out ClusterResponse
	if err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Promote asks this client's primary endpoint to become the primary of
// its replication group (POST /v1/admin/promote; the server must run with
// admin routes enabled). Point a dedicated client at the replica being
// promoted — the call deliberately does NOT route across replicas, since
// promotion targets one specific node. The caller is responsible for
// making sure the old primary is dead or demoted first.
func (c *Client) Promote(ctx context.Context) (*PromoteResponse, error) {
	var out PromoteResponse
	if err := c.do(ctx, http.MethodPost, "/v1/admin/promote", nil, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the operational summary, including the durability fields
// (WAL sequence, checkpoint version, segment count, sticky error state).
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes liveness and returns the current snapshot version.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Snapshot streams the server's binary snapshot into w and returns the
// snapshot version. The bytes warm-start a replacement server (hdcserve
// -load, or Server.Restore). Routed per the read preference, and retried
// with the same backoff machinery as the unary reads — honoring the
// server's Retry-After hint on 503 (a degraded or still-catching-up
// node) — but only until the first body byte reaches w: a partially
// copied image cannot be replayed into the same writer.
func (c *Client) Snapshot(ctx context.Context, w io.Writer) (version uint64, err error) {
	candidates := c.readCandidates(ctx)
	var (
		lastErr   error
		slept     time.Duration
		skipSleep bool
	)
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 && !skipSleep {
			d := c.backoff(lastErr, attempt)
			if c.retryBudget > 0 && slept+d > c.retryBudget {
				return 0, fmt.Errorf("client: snapshot: retry budget %v exhausted after %d attempts: %w", c.retryBudget, attempt, lastErr)
			}
			if err := sleepCtx(ctx, d); err != nil {
				return 0, err
			}
			slept += d
		}
		skipSleep = false
		ep := candidates[attempt%len(candidates)]
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.base+"/v1/snapshot", nil)
		if err != nil {
			return 0, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			lastErr = fmt.Errorf("client: snapshot: %w", err)
			skipSleep = attempt+1 < len(candidates)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			apiErr := decodeErrorBody(resp)
			drain(resp)
			var e *Error
			if errors.As(apiErr, &e) && e.Code == CodeNotPrimary && e.PrimaryURL != "" && c.adoptPrimary(e.PrimaryURL) {
				candidates = c.readCandidates(ctx)
				lastErr, skipSleep = apiErr, true
				continue
			}
			if !retryable(apiErr, resp.StatusCode, true) {
				return 0, apiErr
			}
			lastErr = apiErr
			continue
		}
		version, err = strconv.ParseUint(resp.Header.Get("X-Snapshot-Version"), 10, 64)
		if err != nil {
			drain(resp)
			return 0, fmt.Errorf("client: snapshot: bad X-Snapshot-Version header: %w", err)
		}
		n, err := io.Copy(w, resp.Body)
		drain(resp)
		if err == nil {
			return version, nil
		}
		if n > 0 {
			return 0, fmt.Errorf("client: snapshot: reading body after %d bytes: %w", n, err)
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		lastErr = fmt.Errorf("client: snapshot: reading body: %w", err)
		skipSleep = attempt+1 < len(candidates)
	}
	return 0, fmt.Errorf("client: snapshot: giving up after %d attempts: %w", c.maxAttempts, lastErr)
}

// ---------------------------------------------------------------------------
// Transport core: one bounded-retry JSON round trip
// ---------------------------------------------------------------------------

// do runs one unary call: marshal once, attempt up to the retry budget,
// decode the response (or its error envelope). idempotent gates whether
// transport faults and 5xx responses are retried; 429 always is.
//
// Routing: reads walk the read-preference candidate list — a failed
// attempt moves straight to the next untried endpoint without a backoff
// sleep (the fault was that node's, not the tier's) — while writes
// re-resolve the current primary every attempt and pass through ITS
// circuit breaker: open circuit means ErrCircuitOpen without a request,
// and every structured write-plane 503 feeds that endpoint's counter.
// A not_primary refusal with a redirect hint (this node was demoted, or
// never was the primary) makes the client adopt the hinted primary and
// retry immediately — the refused request was never admitted, so replay
// cannot double-apply.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	if c.callTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.callTimeout)
		defer cancel()
	}
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	var candidates []*endpoint
	if idempotent {
		candidates = c.readCandidates(ctx)
	}
	var (
		lastErr   error
		slept     time.Duration
		skipSleep bool
	)
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 && !skipSleep {
			d := c.backoff(lastErr, attempt)
			if c.retryBudget > 0 && slept+d > c.retryBudget {
				return fmt.Errorf("client: retry budget %v exhausted after %d attempts: %w", c.retryBudget, attempt, lastErr)
			}
			if err := sleepCtx(ctx, d); err != nil {
				return err
			}
			slept += d
		}
		skipSleep = false
		var ep *endpoint
		if idempotent {
			ep = candidates[attempt%len(candidates)]
		} else {
			ep = c.primaryEndpoint()
			if err := ep.br.allow(ctx, c, ep.base); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, ep.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		start := time.Now()
		resp, err := c.hc.Do(req)
		if err != nil {
			// Transport faults never feed the breaker: a dead connection
			// says nothing about the write plane's health.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			if !idempotent {
				return lastErr
			}
			skipSleep = attempt+1 < len(candidates)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			err := json.NewDecoder(resp.Body).Decode(out)
			drain(resp)
			if err != nil {
				return fmt.Errorf("client: decoding %s response: %w", path, err)
			}
			if idempotent {
				ep.observeRTT(time.Since(start))
			} else {
				ep.br.success()
			}
			return nil
		}
		apiErr := decodeErrorBody(resp)
		drain(resp)
		var e *Error
		isEnvelope := errors.As(apiErr, &e)
		if !idempotent && isEnvelope && writePlaneFault(e) {
			ep.br.failure()
		}
		if isEnvelope && e.Code == CodeNotPrimary {
			if e.PrimaryURL != "" && c.adoptPrimary(e.PrimaryURL) {
				if idempotent {
					candidates = c.readCandidates(ctx)
				}
				lastErr, skipSleep = apiErr, true
				continue
			}
			return apiErr // no hint, or already pointed there: nothing to adopt
		}
		if !retryable(apiErr, resp.StatusCode, idempotent) {
			return apiErr
		}
		lastErr = apiErr
		if idempotent && resp.StatusCode >= 500 {
			// This node is unhealthy; the next candidate may not be.
			skipSleep = attempt+1 < len(candidates)
		}
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", c.maxAttempts, lastErr)
}

// retryable decides whether a server response is worth another attempt.
func retryable(err error, status int, idempotent bool) bool {
	if status == http.StatusTooManyRequests {
		return true // rejected before admission: replay cannot double-apply
	}
	return idempotent && status >= 500
}

// backoff picks the delay before retry number attempt: the server's
// Retry-After hint EXACTLY when the last fault carried one (the server
// knows its own drain rate; padding the hint with local exponential
// backoff just delays recovery), exponential from baseDelay capped at
// maxDelay otherwise.
func (c *Client) backoff(lastErr error, attempt int) time.Duration {
	var apiErr *Error
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfterMS > 0 {
		return time.Duration(apiErr.RetryAfterMS) * time.Millisecond
	}
	d := c.baseDelay << (attempt - 1)
	if d > c.maxDelay {
		d = c.maxDelay
	}
	return d
}

// sleepCtx waits d or until the context dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// decodeErrorBody turns a non-2xx response into the protocol's *Error,
// synthesizing one when the body is not an envelope (a proxy in the way,
// a panic page).
func decodeErrorBody(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env struct {
		Error *Error `json:"error"`
	}
	if json.Unmarshal(raw, &env) == nil && env.Error != nil && env.Error.Code != "" {
		return env.Error
	}
	return &Error{
		Code:    CodeInternal,
		Message: fmt.Sprintf("HTTP %d with non-envelope body: %.200s", resp.StatusCode, raw),
	}
}

// decodeJSONBody decodes a 200 response body into out (or returns the
// error envelope), draining the connection either way.
func decodeJSONBody(resp *http.Response, out any) error {
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return decodeErrorBody(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// drain discards any unread body so the connection returns to the pool.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
