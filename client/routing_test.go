package client

// Replica-aware routing tests. These drive the Client against small fake
// nodes (handlers that speak the protocol's envelope) so each test can
// count exactly which endpoint served which plane — something the real
// backend fixture cannot observe.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"
)

// fakeNode is one counting protocol-v1 stand-in: every path gets a
// canned 200 unless the test overrides the handler.
type fakeNode struct {
	ts       *httptest.Server
	predicts atomic.Int64
	trains   atomic.Int64
	stats    atomic.Int64

	// lag, when >= 0, is reported as replication.follower_lag_seq.
	lag atomic.Int64
}

func newFakeNode(t *testing.T) *fakeNode {
	t.Helper()
	n := &fakeNode{}
	n.lag.Store(-1)
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/predict":
			n.predicts.Add(1)
			json.NewEncoder(w).Encode(PredictResponse{Classes: []int{0}, Distances: []float64{0.5}})
		case "/v1/train":
			n.trains.Add(1)
			json.NewEncoder(w).Encode(TrainResponse{Version: 1, Trained: 1})
		case "/v1/stats":
			n.stats.Add(1)
			resp := map[string]any{}
			if lag := n.lag.Load(); lag >= 0 {
				resp["role"] = "follower"
				resp["replication"] = map[string]any{"follower_lag_seq": lag}
			}
			json.NewEncoder(w).Encode(resp)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	t.Cleanup(n.ts.Close)
	return n
}

func writeEnvelope(w http.ResponseWriter, e *Error) {
	if e.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.HTTPStatus())
	json.NewEncoder(w).Encode(map[string]any{"error": e})
}

// NearestReplica sends the read plane to a replica and the write plane to
// the primary.
func TestReadsRouteToReplicaWritesToPrimary(t *testing.T) {
	primary, replica := newFakeNode(t), newFakeNode(t)
	c, err := New(primary.ts.URL,
		WithReplicas(replica.ts.URL),
		WithReadPreference(NearestReplica))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c.Predict(ctx, [][]float64{{0.1, 0.2}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Train(ctx, TrainRequest{Samples: []Sample{{Label: 0, Features: []float64{0.1, 0.2}}}}); err != nil {
		t.Fatal(err)
	}
	if got := replica.predicts.Load(); got != 5 {
		t.Errorf("replica served %d predicts, want 5", got)
	}
	if got := primary.predicts.Load(); got != 0 {
		t.Errorf("primary served %d predicts, want 0 (NearestReplica)", got)
	}
	if got := primary.trains.Load(); got != 1 {
		t.Errorf("primary served %d trains, want 1", got)
	}
	if got := replica.trains.Load(); got != 0 {
		t.Errorf("replica served %d trains, want 0", got)
	}
}

// The default preference (Primary) never touches replicas — the
// single-server behavior is unchanged by merely declaring them.
func TestDefaultPreferenceReadsFromPrimary(t *testing.T) {
	primary, replica := newFakeNode(t), newFakeNode(t)
	c, err := New(primary.ts.URL, WithReplicas(replica.ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(context.Background(), [][]float64{{0.1, 0.2}}); err != nil {
		t.Fatal(err)
	}
	if got := primary.predicts.Load(); got != 1 {
		t.Errorf("primary served %d predicts, want 1", got)
	}
	if got := replica.predicts.Load(); got != 0 {
		t.Errorf("replica served %d predicts, want 0", got)
	}
}

// BoundedStaleness consults the replica's self-reported lag and falls
// back to the primary when the bound is exceeded.
func TestBoundedStalenessFallsBackToPrimary(t *testing.T) {
	primary, replica := newFakeNode(t), newFakeNode(t)
	replica.lag.Store(100)
	c, err := New(primary.ts.URL,
		WithReplicas(replica.ts.URL),
		WithReadPreference(BoundedStaleness(10)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(context.Background(), [][]float64{{0.1, 0.2}}); err != nil {
		t.Fatal(err)
	}
	if got := primary.predicts.Load(); got != 1 {
		t.Errorf("primary served %d predicts, want 1 (replica 100 behind, bound 10)", got)
	}
	if got := replica.predicts.Load(); got != 0 {
		t.Errorf("lagging replica served %d predicts, want 0", got)
	}
}

// BoundedStaleness keeps using a replica within the bound.
func TestBoundedStalenessUsesFreshReplica(t *testing.T) {
	primary, replica := newFakeNode(t), newFakeNode(t)
	replica.lag.Store(2)
	c, err := New(primary.ts.URL,
		WithReplicas(replica.ts.URL),
		WithReadPreference(BoundedStaleness(10)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(context.Background(), [][]float64{{0.1, 0.2}}); err != nil {
		t.Fatal(err)
	}
	if got := replica.predicts.Load(); got != 1 {
		t.Errorf("fresh replica served %d predicts, want 1", got)
	}
	if got := primary.predicts.Load(); got != 0 {
		t.Errorf("primary served %d predicts, want 0", got)
	}
}

// A write that lands on a demoted node follows the not_primary redirect:
// the client adopts the hinted primary and the retry succeeds, with
// PrimaryURL reflecting the adoption.
func TestWriteFailsOverOnNotPrimary(t *testing.T) {
	real := newFakeNode(t)
	var demoted *httptest.Server
	demoted = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, &Error{
			Code:       CodeNotPrimary,
			Message:    "demoted",
			PrimaryURL: real.ts.URL,
		})
	}))
	t.Cleanup(demoted.Close)

	c, err := New(demoted.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Train(context.Background(), TrainRequest{Samples: []Sample{{Label: 0, Features: []float64{0.1, 0.2}}}}); err != nil {
		t.Fatalf("Train across not_primary redirect: %v", err)
	}
	if got := real.trains.Load(); got != 1 {
		t.Errorf("redirect target served %d trains, want 1", got)
	}
	if got, want := c.PrimaryURL(), real.ts.URL; got != want {
		t.Errorf("PrimaryURL after adoption = %q, want %q", got, want)
	}
	// Subsequent writes go straight to the adopted primary.
	if _, err := c.Train(context.Background(), TrainRequest{Samples: []Sample{{Label: 0, Features: []float64{0.1, 0.2}}}}); err != nil {
		t.Fatal(err)
	}
	if got := real.trains.Load(); got != 2 {
		t.Errorf("adopted primary served %d trains total, want 2", got)
	}
}

// A not_primary refusal without a redirect hint is terminal — there is
// nothing to adopt.
func TestNotPrimaryWithoutHintFails(t *testing.T) {
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, &Error{Code: CodeNotPrimary, Message: "primary unknown"})
	}))
	t.Cleanup(node.Close)
	c, err := New(node.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Train(context.Background(), TrainRequest{Samples: []Sample{{Label: 0, Features: []float64{0.1}}}})
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeNotPrimary {
		t.Fatalf("Train against hintless non-primary = %v, want not_primary", err)
	}
}

// The bugfix under test: Snapshot used to fail fast on any non-200. A 503
// follower_read_only with a Retry-After hint must be retried through the
// normal backoff machinery and succeed once the node recovers.
func TestSnapshotRetriesFollowerReadOnly(t *testing.T) {
	var calls atomic.Int64
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			writeEnvelope(w, &Error{Code: CodeFollowerReadOnly, Message: "catching up", RetryAfterMS: 1})
			return
		}
		w.Header().Set("X-Snapshot-Version", "42")
		w.Write([]byte("snapshot-bytes"))
	}))
	t.Cleanup(node.Close)
	c, err := New(node.URL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	version, err := c.Snapshot(context.Background(), &buf)
	if err != nil {
		t.Fatalf("Snapshot after transient follower_read_only: %v", err)
	}
	if version != 42 || buf.String() != "snapshot-bytes" {
		t.Fatalf("Snapshot = (v%d, %q), want (v42, snapshot-bytes)", version, buf.String())
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("snapshot endpoint called %d times, want 2 (one refusal, one success)", got)
	}
}

// The streaming half of the same bugfix: a refused ingest OPEN (503
// follower_read_only with Retry-After) is retried, because the
// 100-continue handshake guarantees no row was sent. Recovery is
// simulated by proxying the second attempt to a real backend.
func TestIngestOpenRetriesFollowerReadOnly(t *testing.T) {
	b := newBackend(t)
	target, err := url.Parse(b.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(target)
	proxy.FlushInterval = -1 // acks are a live stream; forward them as they come

	var opens atomic.Int64
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/ingest:stream" && opens.Add(1) == 1 {
			writeEnvelope(w, &Error{Code: CodeFollowerReadOnly, Message: "catching up", RetryAfterMS: 1})
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(node.Close)

	c, err := New(node.URL)
	if err != nil {
		t.Fatal(err)
	}
	is, err := c.Ingest(context.Background())
	if err != nil {
		t.Fatalf("Ingest open after transient follower_read_only: %v", err)
	}
	for i := 0; i < 3; i++ {
		label := i % 3
		if err := is.Send(IngestRow{Label: &label, Features: []float64{0.1, 0.2}}); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := is.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalRows != 3 {
		t.Fatalf("summary total %d, want 3", sum.TotalRows)
	}
	if got := opens.Load(); got != 2 {
		t.Fatalf("ingest opened %d times, want 2 (one refusal, one success)", got)
	}
}

// Replicas listed twice, or overlapping the primary, collapse into one
// endpoint each.
func TestNewDedupsEndpoints(t *testing.T) {
	primary, replica := newFakeNode(t), newFakeNode(t)
	c, err := New(primary.ts.URL,
		WithReplicas(replica.ts.URL, replica.ts.URL+"/", primary.ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.replicas) != 1 {
		t.Fatalf("got %d replicas, want 1 after dedup", len(c.replicas))
	}
	if len(c.eps) != 2 {
		t.Fatalf("got %d endpoints, want 2", len(c.eps))
	}
}

// A read against a dead replica fails over to the primary within the same
// call instead of surfacing the transport fault.
func TestReadFailsOverFromDeadReplica(t *testing.T) {
	primary := newFakeNode(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	c, err := New(primary.ts.URL,
		WithReplicas(deadURL),
		WithReadPreference(NearestReplica),
		WithRetry(4, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(context.Background(), [][]float64{{0.1, 0.2}}); err != nil {
		t.Fatalf("Predict with one dead replica: %v", err)
	}
	if got := primary.predicts.Load(); got != 1 {
		t.Errorf("primary served %d predicts, want 1 (failover)", got)
	}
}
