package client

// Shard-aware cluster client: one logical client over a horizontally
// sharded serving tier. Each shard group (a primary plus its read
// replicas) gets its own *Client underneath — so every group keeps the
// full per-endpoint machinery this package already has (circuit breaker,
// RTT observations, read-preference routing, not_primary adoption) —
// while this layer owns the key→shard routing the cluster manifest pins:
//
//   - single-key calls (Train batches, HasSymbol) go to the owning group;
//   - bulk ingest splits row-by-row into per-shard streams, each with its
//     own client-side coalescing buffer and its own ack/resume point;
//   - Predict scatters raw integer score requests to every group and
//     merges the partials with exactly the rule an unsharded model uses,
//     so the merged prediction is bit-identical to one server holding
//     all the classes (see ClusterClient.Predict).
//
// A write that lands on the wrong group — the manifest went stale under a
// resharding — comes back as a wrong_shard envelope carrying the owner's
// endpoints; unary calls follow that hint once, and Refresh re-adopts the
// tier's manifest when any node serves a newer version.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hdcirc/internal/cluster"
)

// Cluster topology types, re-exported so cluster callers need only this
// package. ClusterManifest is the versioned document (HCLU binary or
// JSON) that pins shard count, hashring geometry/seed, and per-shard
// endpoint sets; see the cluster package for the codec.
type (
	// ClusterManifest describes a sharded tier: ring geometry and the
	// endpoint set of every shard group.
	ClusterManifest = cluster.Manifest
	// ShardEndpoints is one shard group's primary and replicas.
	ShardEndpoints = cluster.ShardEndpoints
)

// ClusterClient routes protocol-v1 calls across a sharded serving tier.
// Safe for concurrent use. Build one from a manifest value, a manifest
// file, or by bootstrapping from any live node's GET /v1/cluster.
type ClusterClient struct {
	opts []Option // per-group client options, reapplied on Refresh

	mu     sync.RWMutex
	top    *cluster.Topology
	groups []*Client // one tier client per shard, index = shard id
}

// NewClusterClient builds a cluster client from a manifest. The options
// apply to every per-shard group client (retry policy, read preference,
// breaker tuning, stream batch); each group additionally gets its
// replicas from the manifest via WithReplicas.
func NewClusterClient(m *cluster.Manifest, opts ...Option) (*ClusterClient, error) {
	cc := &ClusterClient{opts: opts}
	if err := cc.adopt(m); err != nil {
		return nil, err
	}
	return cc, nil
}

// NewClusterClientFromFile loads a manifest file (HCLU binary or JSON,
// sniffed) and builds a cluster client from it.
func NewClusterClientFromFile(path string, opts ...Option) (*ClusterClient, error) {
	m, err := cluster.Load(nil, path)
	if err != nil {
		return nil, err
	}
	return NewClusterClient(m, opts...)
}

// NewClusterClientFromEndpoint bootstraps from any live cluster node:
// fetch its manifest over GET /v1/cluster, then build the full client.
// A node running outside a cluster answers not_found.
func NewClusterClientFromEndpoint(ctx context.Context, baseURL string, opts ...Option) (*ClusterClient, error) {
	boot, err := New(baseURL, opts...)
	if err != nil {
		return nil, err
	}
	resp, err := boot.Cluster(ctx)
	if err != nil {
		return nil, err
	}
	return NewClusterClient(manifestFromResponse(resp), opts...)
}

// manifestFromResponse rebuilds the manifest document a node serves.
func manifestFromResponse(r *ClusterResponse) *cluster.Manifest {
	m := &cluster.Manifest{
		Version:       r.ManifestVersion,
		RingPositions: r.RingPositions,
		RingDim:       r.RingDim,
		RingSeed:      r.RingSeed,
	}
	for _, s := range r.Shards {
		m.Shards = append(m.Shards, cluster.ShardEndpoints{
			Primary:  s.Primary,
			Replicas: append([]string(nil), s.Replicas...),
		})
	}
	return m
}

// adopt swaps in a new topology and a fresh group client per shard.
func (cc *ClusterClient) adopt(m *cluster.Manifest) error {
	top, err := cluster.NewTopology(m)
	if err != nil {
		return err
	}
	groups := make([]*Client, top.NumShards())
	for i := range groups {
		ep := top.Endpoints(i)
		gopts := append(append([]Option(nil), cc.opts...), WithReplicas(ep.Replicas...))
		g, err := New(ep.Primary, gopts...)
		if err != nil {
			return fmt.Errorf("client: cluster shard %d: %w", i, err)
		}
		groups[i] = g
	}
	cc.mu.Lock()
	cc.top, cc.groups = top, groups
	cc.mu.Unlock()
	return nil
}

// view returns one consistent (topology, groups) pair.
func (cc *ClusterClient) view() (*cluster.Topology, []*Client) {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.top, cc.groups
}

// NumShards returns the shard count of the current topology.
func (cc *ClusterClient) NumShards() int {
	top, _ := cc.view()
	return top.NumShards()
}

// ManifestVersion returns the version of the manifest currently routing
// this client.
func (cc *ClusterClient) ManifestVersion() uint64 {
	top, _ := cc.view()
	return top.Manifest().Version
}

// Group returns the tier client for one shard — the escape hatch for
// per-group calls (Stats, Health, Snapshot, Promote on a specific node).
func (cc *ClusterClient) Group(shard int) *Client {
	_, groups := cc.view()
	return groups[shard]
}

// ShardForClass returns the shard owning a class label under the current
// topology; ShardForSymbol the same for an item symbol.
func (cc *ClusterClient) ShardForClass(label int) int {
	top, _ := cc.view()
	return top.ShardForClass(label)
}

// ShardForSymbol returns the shard owning an item symbol.
func (cc *ClusterClient) ShardForSymbol(symbol string) int {
	top, _ := cc.view()
	return top.ShardForItem(symbol)
}

// Refresh asks the tier for its current manifest (trying each shard group
// in turn until one answers) and adopts it if its version is newer than
// the one routing this client. Returns whether a newer manifest was
// adopted. Call it after a wrong_shard error, or periodically.
func (cc *ClusterClient) Refresh(ctx context.Context) (changed bool, err error) {
	top, groups := cc.view()
	var lastErr error
	for shard, g := range groups {
		resp, err := g.Cluster(ctx)
		if err != nil {
			lastErr = fmt.Errorf("shard %d: %w", shard, err)
			continue
		}
		if resp.ManifestVersion <= top.Manifest().Version {
			return false, nil
		}
		if err := cc.adopt(manifestFromResponse(resp)); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, fmt.Errorf("client: cluster refresh: no shard answered: %w", lastErr)
}

// ownerHint turns a wrong_shard error into a client for the hinted owner:
// the in-topology group when the hinted shard id is one this client
// knows (so adoption state and breakers are reused), or an ephemeral
// client on the hinted endpoints when the hint points outside the local
// topology (the tier resharded under us). ok is false when err is not a
// usable wrong_shard hint.
func (cc *ClusterClient) ownerHint(err error, from int) (g *Client, ok bool) {
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeWrongShard {
		return nil, false
	}
	_, groups := cc.view()
	if e.OwnerShard != nil {
		if o := *e.OwnerShard; o >= 0 && o < len(groups) && o != from {
			return groups[o], true
		}
	}
	if e.OwnerPrimaryURL == "" {
		return nil, false
	}
	gopts := append(append([]Option(nil), cc.opts...), WithReplicas(e.OwnerReplicaURLs...))
	g, cerr := New(e.OwnerPrimaryURL, gopts...)
	if cerr != nil {
		return nil, false
	}
	return g, true
}

// ---------------------------------------------------------------------------
// Write plane: sharded train
// ---------------------------------------------------------------------------

// Train splits one write batch by ownership — samples by class owner,
// symbols by item owner — and applies each part on its shard group
// concurrently. The result maps shard id to that group's acknowledgment.
//
// Cross-shard writes are not atomic: on error, groups present in the map
// applied their part and absent groups did not — resubmit only the
// missing parts. Order within one shard's part is preserved. A part
// refused with wrong_shard (stale manifest) is re-sent once to the hinted
// owner.
func (cc *ClusterClient) Train(ctx context.Context, req TrainRequest) (map[int]*TrainResponse, error) {
	top, _ := cc.view()
	parts := make(map[int]*TrainRequest)
	part := func(shard int) *TrainRequest {
		p := parts[shard]
		if p == nil {
			p = &TrainRequest{}
			parts[shard] = p
		}
		return p
	}
	for _, s := range req.Samples {
		p := part(top.ShardForClass(s.Label))
		p.Samples = append(p.Samples, s)
	}
	for _, sym := range req.Symbols {
		p := part(top.ShardForItem(sym))
		p.Symbols = append(p.Symbols, sym)
	}
	if len(parts) == 0 {
		return nil, &Error{Code: CodeInvalidRequest, Message: "empty batch: no samples or symbols"}
	}

	out := make(map[int]*TrainResponse, len(parts))
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	for shard, p := range parts {
		wg.Add(1)
		go func(shard int, p TrainRequest) {
			defer wg.Done()
			res, err := cc.trainShard(ctx, shard, p)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("client: cluster train: shard %d: %w", shard, err)
				}
				return
			}
			out[shard] = res
		}(shard, *p)
	}
	wg.Wait()
	if firstErr != nil {
		return out, firstErr
	}
	return out, nil
}

// trainShard applies one shard's part, following a wrong_shard hint once.
func (cc *ClusterClient) trainShard(ctx context.Context, shard int, req TrainRequest) (*TrainResponse, error) {
	_, groups := cc.view()
	res, err := groups[shard].Train(ctx, req)
	if err == nil {
		return res, nil
	}
	owner, ok := cc.ownerHint(err, shard)
	if !ok {
		return nil, err
	}
	return owner.Train(ctx, req)
}

// ---------------------------------------------------------------------------
// Read plane: scatter-gather predict, cleanup, membership
// ---------------------------------------------------------------------------

// ClusterPredictResponse is a merged scatter-gather prediction. Versions
// records each shard's snapshot version at scatter time (index = shard),
// since a sharded tier has no single model version.
type ClusterPredictResponse struct {
	Classes   []int     `json:"classes"`
	Distances []float64 `json:"distances"`
	Dim       int       `json:"dim"`
	Versions  []uint64  `json:"versions"`
}

// Predict classifies a batch across the whole tier: scatter the queries
// to every shard group as raw-score requests (POST /v1/scores — integer
// per-class Hamming distances), then gather with exactly the unsharded
// rule: global minimum distance, ties to the lowest class id, considering
// each class only at the shard that owns it.
//
// Exactness: every node encodes with the same deterministic encoder and
// a shard's prototypes for its OWNED classes are built from exactly the
// rows routed to it — identical to the same classes inside one unsharded
// model — so merging integer distances reproduces the unsharded
// prediction bit for bit (float distances would round differently).
// Distances in the response are bestHD/dim, computed once after the
// merge, exactly as a single server computes them.
func (cc *ClusterClient) Predict(ctx context.Context, queries [][]float64) (*ClusterPredictResponse, error) {
	if len(queries) == 0 {
		return nil, &Error{Code: CodeInvalidRequest, Message: "no queries"}
	}
	top, groups := cc.view()
	n := len(groups)
	resps := make([]*ScoresResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := range groups {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			resps[s], errs[s] = groups[s].Scores(ctx, queries)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("client: cluster predict: shard %d: %w", s, err)
		}
	}

	// Every shard must agree on model geometry; each owns a disjoint
	// subset of the class ids, so the merge sees every class exactly once.
	dim, classes := resps[0].Dim, resps[0].Classes
	versions := make([]uint64, n)
	for s, r := range resps {
		versions[s] = r.Version
		if r.Dim != dim || r.Classes != classes {
			return nil, fmt.Errorf("client: cluster predict: shard %d geometry dim=%d classes=%d disagrees with shard 0 (dim=%d classes=%d)",
				s, r.Dim, r.Classes, dim, classes)
		}
		if len(r.Distances) != len(queries) {
			return nil, fmt.Errorf("client: cluster predict: shard %d answered %d rows for %d queries", s, len(r.Distances), len(queries))
		}
		for q, row := range r.Distances {
			if len(row) != classes {
				return nil, fmt.Errorf("client: cluster predict: shard %d query %d: %d distances for %d classes", s, q, len(row), classes)
			}
		}
	}
	owned := make([][]int, n)
	for s := range owned {
		owned[s] = top.ClassesOwnedBy(s, classes)
	}

	out := &ClusterPredictResponse{
		Classes:   make([]int, len(queries)),
		Distances: make([]float64, len(queries)),
		Dim:       dim,
		Versions:  versions,
	}
	for q := range queries {
		bestHD, bestClass := dim+1, -1
		for s := 0; s < n; s++ {
			row := resps[s].Distances[q]
			for _, c := range owned[s] {
				if hd := row[c]; hd < bestHD || (hd == bestHD && c < bestClass) {
					bestHD, bestClass = hd, c
				}
			}
		}
		out.Classes[q] = bestClass
		out.Distances[q] = float64(bestHD) / float64(dim)
	}
	return out, nil
}

// PredictOne classifies a single record across the tier.
func (cc *ClusterClient) PredictOne(ctx context.Context, features []float64) (class int, distance float64, err error) {
	res, err := cc.Predict(ctx, [][]float64{features})
	if err != nil {
		return 0, 0, err
	}
	return res.Classes[0], res.Distances[0], nil
}

// HasSymbol routes the membership probe to the shard owning the symbol.
func (cc *ClusterClient) HasSymbol(ctx context.Context, symbol string) (found bool, version uint64, err error) {
	top, groups := cc.view()
	return groups[top.ShardForItem(symbol)].HasSymbol(ctx, symbol)
}

// Cleanup runs nearest-symbol cleanup across the tier: scatter to every
// shard (each holds only its owned symbols) and keep the best similarity;
// cross-shard ties go to the lexicographically smallest symbol, which is
// deterministic (within one shard the server already breaks ties by
// creation order). Similarities are 1 − hd/dim computed identically on
// every shard, so the float comparison is exact. Shards with an empty
// item memory answer not_found and are skipped; only all shards empty is
// an error.
func (cc *ClusterClient) Cleanup(ctx context.Context, features []float64) (*LookupResponse, error) {
	_, groups := cc.view()
	n := len(groups)
	resps := make([]*LookupResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := range groups {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			resps[s], errs[s] = groups[s].Cleanup(ctx, features)
		}(s)
	}
	wg.Wait()
	var best *LookupResponse
	for s := range groups {
		if err := errs[s]; err != nil {
			var e *Error
			if errors.As(err, &e) && e.Code == CodeNotFound {
				continue // this shard has no items interned
			}
			return nil, fmt.Errorf("client: cluster cleanup: shard %d: %w", s, err)
		}
		r := resps[s]
		if best == nil || r.Similarity > best.Similarity ||
			(r.Similarity == best.Similarity && r.Symbol < best.Symbol) {
			best = r
		}
	}
	if best == nil {
		return nil, &Error{Code: CodeNotFound, Message: "no items interned on any shard"}
	}
	return best, nil
}

// ---------------------------------------------------------------------------
// Bulk ingest: per-shard streams
// ---------------------------------------------------------------------------

// ShardProgress is one shard's acknowledged ingest progress: rows its
// server has applied and the snapshot version of the last ack — that
// shard's resume point.
type ShardProgress struct {
	Rows    int
	Version uint64
}

// ClusterIngestSummary aggregates per-shard ingest summaries at Close.
type ClusterIngestSummary struct {
	// Rows counts logical rows accepted by Send; a row split across two
	// shards still counts once.
	Rows int
	// Shards maps shard id to its server's final summary; only shards
	// that received rows appear.
	Shards map[int]IngestAck
}

// ClusterIngestStream is a sharded bulk-ingest session. Each row routes
// to the shard owning its key — a row carrying both a label and a symbol
// with different owners is split into a train half and an intern half —
// over one lazily opened ingest stream per shard. Each per-shard stream
// keeps its own client-side coalescing buffer (WithStreamBatch rows per
// socket write) and its own ack sequence, so progress and resume points
// are per shard: after a fault, consult Applied and resend each shard's
// rows past its own acknowledgment.
//
// Like IngestStream, not safe for concurrent Send; errors are sticky. A
// wrong_shard fault mid-stream means the manifest went stale — Refresh,
// reopen, and resume from the per-shard acks (established streams are
// never silently retried).
type ClusterIngestStream struct {
	ctx     context.Context
	top     *cluster.Topology // pinned at open; Refresh does not move live streams
	groups  []*Client
	streams []*IngestStream // lazily opened, index = shard
	sent    int
	err     error
}

// Ingest opens a sharded bulk-ingest session. Per-shard streams dial
// lazily on the first row routed to each shard, so a session touching
// only some shards holds connections only to those.
func (cc *ClusterClient) Ingest(ctx context.Context) (*ClusterIngestStream, error) {
	top, groups := cc.view()
	return &ClusterIngestStream{
		ctx:     ctx,
		top:     top,
		groups:  groups,
		streams: make([]*IngestStream, len(groups)),
	}, nil
}

// Send routes one row to its owning shard(s). A non-nil error is sticky;
// on a fault, each shard's rows past its last acknowledgment (Applied)
// were not applied.
func (s *ClusterIngestStream) Send(row IngestRow) error {
	if s.err != nil {
		return s.err
	}
	labelShard, symShard := -1, -1
	if row.Label != nil {
		labelShard = s.top.ShardForClass(*row.Label)
	}
	if row.Symbol != "" {
		symShard = s.top.ShardForItem(row.Symbol)
	}
	switch {
	case labelShard < 0 && symShard < 0:
		s.err = &Error{Code: CodeInvalidRequest, Message: "ingest row has neither label nor symbol"}
		return s.err
	case labelShard >= 0 && symShard >= 0 && labelShard != symShard:
		// Split: the train half (label + features) to the class owner, the
		// intern half (symbol alone) to the item owner.
		trainHalf := row
		trainHalf.Symbol = ""
		if err := s.sendTo(labelShard, trainHalf); err != nil {
			return err
		}
		if err := s.sendTo(symShard, IngestRow{Symbol: row.Symbol}); err != nil {
			return err
		}
	case labelShard >= 0:
		if err := s.sendTo(labelShard, row); err != nil {
			return err
		}
	default:
		if err := s.sendTo(symShard, row); err != nil {
			return err
		}
	}
	s.sent++
	return nil
}

// sendTo writes one row on a shard's stream, opening it on first use.
func (s *ClusterIngestStream) sendTo(shard int, row IngestRow) error {
	st := s.streams[shard]
	if st == nil {
		var err error
		st, err = s.groups[shard].Ingest(s.ctx)
		if err != nil {
			s.err = fmt.Errorf("client: cluster ingest: opening shard %d stream: %w", shard, err)
			return s.err
		}
		s.streams[shard] = st
	}
	if err := st.Send(row); err != nil {
		s.err = fmt.Errorf("client: cluster ingest: shard %d: %w", shard, err)
		return s.err
	}
	return nil
}

// Sent returns how many logical rows Send has accepted.
func (s *ClusterIngestStream) Sent() int { return s.sent }

// Applied reports each touched shard's acknowledged progress — the
// per-shard resume points. Safe to call concurrently with the server
// acks; a shard whose stream saw no rows yet is absent.
func (s *ClusterIngestStream) Applied() map[int]ShardProgress {
	out := make(map[int]ShardProgress)
	for shard, st := range s.streams {
		if st == nil {
			continue
		}
		rows, version := st.Applied()
		out[shard] = ShardProgress{Rows: rows, Version: version}
	}
	return out
}

// Close ends every per-shard stream and aggregates their summaries. All
// streams are closed even when one fails; the first fault (including a
// sticky Send fault) is returned alongside whatever summaries landed.
func (s *ClusterIngestStream) Close() (ClusterIngestSummary, error) {
	sum := ClusterIngestSummary{Rows: s.sent, Shards: make(map[int]IngestAck)}
	firstErr := s.err
	for shard, st := range s.streams {
		if st == nil {
			continue
		}
		ack, err := st.Close()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("client: cluster ingest: shard %d: %w", shard, err)
			}
			continue
		}
		sum.Shards[shard] = ack
	}
	return sum, firstErr
}
