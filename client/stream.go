package client

// NDJSON streaming: bulk ingest and bulk prediction over single
// long-lived requests. Rows flow through an io.Pipe into the request body
// while a response goroutine consumes the server's acknowledgment (or
// result) lines concurrently — full duplex, so server acks can never fill
// a socket buffer and deadlock a writer that hasn't finished sending.
//
// Every stream opens with Expect: 100-continue, which does two jobs at
// once. First, it prevents a mutual deadlock with servers that refuse the
// stream early: without it, a refusing server blocks draining the unread
// chunked body before completing its response while the client waits for
// the response before ending the body. Second, it turns the open into a
// handshake — the body is withheld until the server commits to reading
// it, so an open-time refusal (429 overloaded, 503 read_only /
// follower_read_only, 421 not_primary) arrives with zero rows sent,
// which makes retrying the OPEN safe. Ingest and PredictStream therefore
// retry refused opens through the same backoff machinery as unary calls
// (honoring Retry-After, following not_primary redirects). An ESTABLISHED
// stream is still never retried: a broken ingest stream may be partially
// applied, and the per-batch acks tell the caller exactly how far the
// server got (resume from the first unacknowledged row).

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"sync"
	"time"
)

// stream is the shared duplex plumbing of both stream kinds.
type stream struct {
	ctx   context.Context // the request context; bounds every blocking wait
	pw    *io.PipeWriter
	bw    *bufio.Writer
	enc   *json.Encoder
	batch int // rows per client-side flush
	sent  int

	respDone chan struct{}
	mu       sync.Mutex
	err      error // first fault from either direction; sticky
}

// startStream opens the request against one endpoint, performs the
// 100-continue open handshake, and spawns the response consumer. A
// non-nil error means the server refused the stream before reading any
// row (or the dial itself failed) — the caller may safely retry against
// the same or another endpoint.
func (c *Client) startStream(ctx context.Context, base, path string, consume func(*json.Decoder) error) (*stream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("Expect", "100-continue")
	accepted := make(chan struct{})
	var acceptOnce sync.Once
	trace := &httptrace.ClientTrace{
		Got100Continue: func() { acceptOnce.Do(func() { close(accepted) }) },
	}
	req = req.WithContext(httptrace.WithClientTrace(req.Context(), trace))
	s := &stream{
		ctx:      ctx,
		pw:       pw,
		bw:       bufio.NewWriterSize(pw, 64<<10),
		batch:    c.streamBatch,
		respDone: make(chan struct{}),
	}
	s.enc = json.NewEncoder(s.bw)
	go func() {
		defer close(s.respDone)
		resp, err := c.hc.Do(req)
		if err != nil {
			s.fail(fmt.Errorf("client: %s: %w", path, err))
			return
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			s.fail(decodeErrorBody(resp))
			return
		}
		if err := consume(json.NewDecoder(resp.Body)); err != nil {
			s.fail(err)
		}
	}()
	// Open handshake: wait until the server commits to reading the body
	// (it sends 100 Continue on its first body read), refuses outright, or
	// the transport's ExpectContinueTimeout (1s on the default transport)
	// has certainly elapsed — past that the body flows regardless, which is
	// also the right fallback for proxies that swallow the 100.
	timer := time.NewTimer(1300 * time.Millisecond)
	defer timer.Stop()
	select {
	case <-accepted:
	case <-timer.C:
	case <-s.respDone:
		if err := s.asyncErr(); err != nil {
			return nil, err
		}
	case <-ctx.Done():
		s.fail(ctx.Err())
		<-s.respDone
		return nil, ctx.Err()
	}
	return s, nil
}

// fail records the first fault and unblocks any Send stuck on the pipe.
func (s *stream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.pw.CloseWithError(err)
}

func (s *stream) asyncErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// send encodes one NDJSON row, flushing the client-side buffer every batch
// rows so the server sees work promptly without a syscall per row.
func (s *stream) send(row any) error {
	if err := s.asyncErr(); err != nil {
		return err
	}
	if err := s.enc.Encode(row); err != nil {
		if aerr := s.asyncErr(); aerr != nil {
			return aerr // the pipe broke because the response side failed; say why
		}
		return err
	}
	s.sent++
	if s.sent%s.batch == 0 {
		if err := s.bw.Flush(); err != nil {
			if aerr := s.asyncErr(); aerr != nil {
				return aerr
			}
			return err
		}
	}
	return nil
}

// finish flushes, closes the request body and waits for the response
// consumer to drain.
func (s *stream) finish() error {
	ferr := s.bw.Flush()
	s.pw.Close()
	<-s.respDone
	if err := s.asyncErr(); err != nil {
		return err
	}
	return ferr
}

// ---------------------------------------------------------------------------
// Bulk ingest
// ---------------------------------------------------------------------------

// IngestStream is an open bulk-ingest session (POST /v1/ingest:stream).
// Send rows, then Close for the server's summary. Not safe for concurrent
// Senders; wrap with your own mutex to fan in.
type IngestStream struct {
	s *stream

	mu         sync.Mutex
	lastAck    IngestAck
	applied    int
	summary    IngestAck
	sawSummary bool
}

// Ingest opens a bulk-ingest stream against the current primary. Rows are
// coalesced server-side into write batches (one snapshot publication per
// batch, not per row), each acknowledged as it lands; Close returns the
// final summary. A refused OPEN (zero rows sent, guaranteed by the
// 100-continue handshake) is retried with backoff — honoring Retry-After
// on 503 from a degraded or follower node, following not_primary
// redirects after a failover — while an established stream that breaks is
// never replayed.
func (c *Client) Ingest(ctx context.Context) (*IngestStream, error) {
	var (
		lastErr   error
		slept     time.Duration
		skipSleep bool
	)
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 && !skipSleep {
			d := c.backoff(lastErr, attempt)
			if c.retryBudget > 0 && slept+d > c.retryBudget {
				return nil, fmt.Errorf("client: ingest: retry budget %v exhausted after %d attempts: %w", c.retryBudget, attempt, lastErr)
			}
			if err := sleepCtx(ctx, d); err != nil {
				return nil, err
			}
			slept += d
		}
		skipSleep = false
		ep := c.primaryEndpoint()
		// The write-plane breaker gates stream opens too: a degraded server
		// will 503 every coalesced batch, so don't even dial while it's open.
		if err := ep.br.allow(ctx, c, ep.base); err != nil {
			return nil, err
		}
		is, err := c.openIngest(ctx, ep.base)
		if err == nil {
			return is, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var e *Error
		if !errors.As(err, &e) {
			// Transport fault on open: like unary writes, surface it — the
			// dial itself failing says nothing a blind retry would fix.
			return nil, err
		}
		if writePlaneFault(e) {
			ep.br.failure()
		}
		if e.Code == CodeNotPrimary {
			if e.PrimaryURL != "" && c.adoptPrimary(e.PrimaryURL) {
				lastErr, skipSleep = err, true
				continue
			}
			return nil, err
		}
		if !retryable(e, e.HTTPStatus(), false) && !writePlaneFault(e) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("client: ingest: giving up after %d attempts: %w", c.maxAttempts, lastErr)
}

// openIngest makes one attempt at opening the ingest stream against base.
func (c *Client) openIngest(ctx context.Context, base string) (*IngestStream, error) {
	is := &IngestStream{}
	s, err := c.startStream(ctx, base, "/v1/ingest:stream", func(dec *json.Decoder) error {
		for {
			var ack IngestAck
			if err := dec.Decode(&ack); err != nil {
				if err == io.EOF {
					return nil
				}
				return fmt.Errorf("client: decoding ingest ack: %w", err)
			}
			if ack.Error != nil {
				return ack.Error
			}
			is.mu.Lock()
			if ack.Done {
				is.summary, is.sawSummary = ack, true
			} else {
				is.lastAck = ack
				is.applied += ack.Rows
			}
			is.mu.Unlock()
		}
	})
	if err != nil {
		return nil, err
	}
	is.s = s
	return is, nil
}

// Send queues one row. A non-nil error is sticky and reflects the first
// fault from either direction — on a server fault, rows past the last
// acknowledgment were not applied.
func (is *IngestStream) Send(row IngestRow) error { return is.s.send(row) }

// Applied returns how many rows the server has acknowledged so far — the
// resume point if the stream breaks.
func (is *IngestStream) Applied() (rows int, version uint64) {
	is.mu.Lock()
	defer is.mu.Unlock()
	return is.applied, is.lastAck.Version
}

// Close ends the stream and returns the server's summary. It fails if the
// server never sent one, or acknowledged fewer rows than were sent.
func (is *IngestStream) Close() (IngestAck, error) {
	if err := is.s.finish(); err != nil {
		return IngestAck{}, err
	}
	is.mu.Lock()
	defer is.mu.Unlock()
	if !is.sawSummary {
		return IngestAck{}, fmt.Errorf("client: ingest stream ended without a summary line")
	}
	if is.summary.TotalRows != is.s.sent {
		return is.summary, fmt.Errorf("client: sent %d rows but server applied %d", is.s.sent, is.summary.TotalRows)
	}
	return is.summary, nil
}

// ---------------------------------------------------------------------------
// Bulk prediction
// ---------------------------------------------------------------------------

// PredictStream is an open bulk-prediction session: Send queries, Recv
// results (exactly one per query, in order), CloseSend when done sending.
// One goroutine may Send while another Recvs — that is the intended shape;
// neither side is safe for multiple concurrent callers.
type PredictStream struct {
	s       *stream
	results chan PredictResult
}

// PredictStream opens a bulk-prediction stream (POST /v1/predict:stream),
// routed per the read preference. A refused or failed OPEN (no query
// sent yet, guaranteed by the 100-continue handshake) fails over to the
// next read candidate, with backoff honoring Retry-After once the
// candidates are exhausted.
func (c *Client) PredictStream(ctx context.Context) (*PredictStream, error) {
	candidates := c.readCandidates(ctx)
	var (
		lastErr   error
		slept     time.Duration
		skipSleep bool
	)
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 && !skipSleep {
			d := c.backoff(lastErr, attempt)
			if c.retryBudget > 0 && slept+d > c.retryBudget {
				return nil, fmt.Errorf("client: predict stream: retry budget %v exhausted after %d attempts: %w", c.retryBudget, attempt, lastErr)
			}
			if err := sleepCtx(ctx, d); err != nil {
				return nil, err
			}
			slept += d
		}
		skipSleep = false
		ep := candidates[attempt%len(candidates)]
		ps, err := c.openPredictStream(ctx, ep.base)
		if err == nil {
			return ps, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var e *Error
		if !errors.As(err, &e) {
			// Transport fault on open: nothing was sent; try the next node.
			lastErr = err
			skipSleep = attempt+1 < len(candidates)
			continue
		}
		if e.Code == CodeNotPrimary && e.PrimaryURL != "" && c.adoptPrimary(e.PrimaryURL) {
			candidates = c.readCandidates(ctx)
			lastErr, skipSleep = err, true
			continue
		}
		if !retryable(e, e.HTTPStatus(), true) {
			return nil, err
		}
		lastErr = err
		if e.HTTPStatus() >= 500 {
			skipSleep = attempt+1 < len(candidates)
		}
	}
	return nil, fmt.Errorf("client: predict stream: giving up after %d attempts: %w", c.maxAttempts, lastErr)
}

// openPredictStream makes one attempt at opening the prediction stream
// against base.
func (c *Client) openPredictStream(ctx context.Context, base string) (*PredictStream, error) {
	ps := &PredictStream{results: make(chan PredictResult, 1024)}
	s, err := c.startStream(ctx, base, "/v1/predict:stream", func(dec *json.Decoder) error {
		defer close(ps.results)
		for {
			var res PredictResult
			if err := dec.Decode(&res); err != nil {
				if err == io.EOF {
					return nil
				}
				return fmt.Errorf("client: decoding predict result: %w", err)
			}
			if res.Error != nil {
				return res.Error
			}
			ps.results <- res
		}
	})
	if err != nil {
		return nil, err
	}
	ps.s = s
	return ps, nil
}

// Send queues one query row.
func (ps *PredictStream) Send(features []float64) error {
	return ps.s.send(PredictRow{Features: features})
}

// CloseSend flushes and ends the request side; Recv keeps delivering until
// the server's results drain.
func (ps *PredictStream) CloseSend() error {
	err := ps.s.bw.Flush()
	ps.s.pw.Close()
	return err
}

// Recv returns the next result, or io.EOF after the last one. It is
// bounded by the context the stream was opened with: if that context ends,
// or the response goroutine dies without ever running the result consumer
// (e.g. the dial itself failed), Recv returns the fault instead of
// blocking forever on a channel nothing will ever close.
func (ps *PredictStream) Recv() (PredictResult, error) {
	select {
	case res, ok := <-ps.results:
		if !ok {
			return ps.endOfStream()
		}
		return res, nil
	case <-ps.s.respDone:
		// The response side is finished, but results may still be
		// buffered (the consumer closes the channel before respDone
		// closes) — drain those before reporting the stream's fate.
		select {
		case res, ok := <-ps.results:
			if ok {
				return res, nil
			}
		default:
			// The consumer never ran, so the channel never closes: the
			// request failed before a response arrived.
		}
		return ps.endOfStream()
	case <-ps.s.ctx.Done():
		return PredictResult{}, ps.s.ctx.Err()
	}
}

// endOfStream reports why no further results will arrive.
func (ps *PredictStream) endOfStream() (PredictResult, error) {
	// The results channel closes (inside consume) before startStream
	// records a server-reported fault via fail; wait for the response
	// goroutine to finish so a stream error is never misread as EOF.
	<-ps.s.respDone
	if err := ps.s.asyncErr(); err != nil {
		return PredictResult{}, err
	}
	return PredictResult{}, io.EOF
}

// PredictAll streams every row through one bulk-prediction request and
// returns the results in row order — the high-throughput alternative to
// Predict for large query sets.
func (c *Client) PredictAll(ctx context.Context, rows [][]float64) ([]PredictResult, error) {
	ps, err := c.PredictStream(ctx)
	if err != nil {
		return nil, err
	}
	sendErr := make(chan error, 1)
	go func() {
		for _, row := range rows {
			if err := ps.Send(row); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- ps.CloseSend()
	}()
	out := make([]PredictResult, 0, len(rows))
	for {
		res, err := ps.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	if err := <-sendErr; err != nil {
		return nil, err
	}
	if len(out) != len(rows) {
		return out, fmt.Errorf("client: sent %d queries but received %d results", len(rows), len(out))
	}
	return out, nil
}
