package client

// NDJSON streaming: bulk ingest and bulk prediction over single
// long-lived requests. Rows flow through an io.Pipe into the request body
// while a response goroutine consumes the server's acknowledgment (or
// result) lines concurrently — full duplex, so server acks can never fill
// a socket buffer and deadlock a writer that hasn't finished sending.
// Streams are never retried: a broken ingest stream may be partially
// applied, and the per-batch acks tell the caller exactly how far the
// server got (resume from the first unacknowledged row).

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// stream is the shared duplex plumbing of both stream kinds.
type stream struct {
	ctx   context.Context // the request context; bounds every blocking wait
	pw    *io.PipeWriter
	bw    *bufio.Writer
	enc   *json.Encoder
	batch int // rows per client-side flush
	sent  int

	respDone chan struct{}
	mu       sync.Mutex
	err      error // first fault from either direction; sticky
}

// startStream opens the request and spawns the response consumer.
func (c *Client) startStream(ctx context.Context, path string, consume func(*json.Decoder) error) (*stream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	s := &stream{
		ctx:      ctx,
		pw:       pw,
		bw:       bufio.NewWriterSize(pw, 64<<10),
		batch:    c.streamBatch,
		respDone: make(chan struct{}),
	}
	s.enc = json.NewEncoder(s.bw)
	go func() {
		defer close(s.respDone)
		resp, err := c.hc.Do(req)
		if err != nil {
			s.fail(fmt.Errorf("client: %s: %w", path, err))
			return
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			s.fail(decodeErrorBody(resp))
			return
		}
		if err := consume(json.NewDecoder(resp.Body)); err != nil {
			s.fail(err)
		}
	}()
	return s, nil
}

// fail records the first fault and unblocks any Send stuck on the pipe.
func (s *stream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.pw.CloseWithError(err)
}

func (s *stream) asyncErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// send encodes one NDJSON row, flushing the client-side buffer every batch
// rows so the server sees work promptly without a syscall per row.
func (s *stream) send(row any) error {
	if err := s.asyncErr(); err != nil {
		return err
	}
	if err := s.enc.Encode(row); err != nil {
		if aerr := s.asyncErr(); aerr != nil {
			return aerr // the pipe broke because the response side failed; say why
		}
		return err
	}
	s.sent++
	if s.sent%s.batch == 0 {
		if err := s.bw.Flush(); err != nil {
			if aerr := s.asyncErr(); aerr != nil {
				return aerr
			}
			return err
		}
	}
	return nil
}

// finish flushes, closes the request body and waits for the response
// consumer to drain.
func (s *stream) finish() error {
	ferr := s.bw.Flush()
	s.pw.Close()
	<-s.respDone
	if err := s.asyncErr(); err != nil {
		return err
	}
	return ferr
}

// ---------------------------------------------------------------------------
// Bulk ingest
// ---------------------------------------------------------------------------

// IngestStream is an open bulk-ingest session (POST /v1/ingest:stream).
// Send rows, then Close for the server's summary. Not safe for concurrent
// Senders; wrap with your own mutex to fan in.
type IngestStream struct {
	s *stream

	mu         sync.Mutex
	lastAck    IngestAck
	applied    int
	summary    IngestAck
	sawSummary bool
}

// Ingest opens a bulk-ingest stream. Rows are coalesced server-side into
// write batches (one snapshot publication per batch, not per row), each
// acknowledged as it lands; Close returns the final summary.
func (c *Client) Ingest(ctx context.Context) (*IngestStream, error) {
	// The write-plane breaker gates stream opens too: a degraded server
	// will 503 every coalesced batch, so don't even dial while it's open.
	if err := c.br.allow(ctx, c); err != nil {
		return nil, err
	}
	is := &IngestStream{}
	s, err := c.startStream(ctx, "/v1/ingest:stream", func(dec *json.Decoder) error {
		for {
			var ack IngestAck
			if err := dec.Decode(&ack); err != nil {
				if err == io.EOF {
					return nil
				}
				return fmt.Errorf("client: decoding ingest ack: %w", err)
			}
			if ack.Error != nil {
				return ack.Error
			}
			is.mu.Lock()
			if ack.Done {
				is.summary, is.sawSummary = ack, true
			} else {
				is.lastAck = ack
				is.applied += ack.Rows
			}
			is.mu.Unlock()
		}
	})
	if err != nil {
		return nil, err
	}
	is.s = s
	return is, nil
}

// Send queues one row. A non-nil error is sticky and reflects the first
// fault from either direction — on a server fault, rows past the last
// acknowledgment were not applied.
func (is *IngestStream) Send(row IngestRow) error { return is.s.send(row) }

// Applied returns how many rows the server has acknowledged so far — the
// resume point if the stream breaks.
func (is *IngestStream) Applied() (rows int, version uint64) {
	is.mu.Lock()
	defer is.mu.Unlock()
	return is.applied, is.lastAck.Version
}

// Close ends the stream and returns the server's summary. It fails if the
// server never sent one, or acknowledged fewer rows than were sent.
func (is *IngestStream) Close() (IngestAck, error) {
	if err := is.s.finish(); err != nil {
		return IngestAck{}, err
	}
	is.mu.Lock()
	defer is.mu.Unlock()
	if !is.sawSummary {
		return IngestAck{}, fmt.Errorf("client: ingest stream ended without a summary line")
	}
	if is.summary.TotalRows != is.s.sent {
		return is.summary, fmt.Errorf("client: sent %d rows but server applied %d", is.s.sent, is.summary.TotalRows)
	}
	return is.summary, nil
}

// ---------------------------------------------------------------------------
// Bulk prediction
// ---------------------------------------------------------------------------

// PredictStream is an open bulk-prediction session: Send queries, Recv
// results (exactly one per query, in order), CloseSend when done sending.
// One goroutine may Send while another Recvs — that is the intended shape;
// neither side is safe for multiple concurrent callers.
type PredictStream struct {
	s       *stream
	results chan PredictResult
}

// PredictStream opens a bulk-prediction stream (POST /v1/predict:stream).
func (c *Client) PredictStream(ctx context.Context) (*PredictStream, error) {
	ps := &PredictStream{results: make(chan PredictResult, 1024)}
	s, err := c.startStream(ctx, "/v1/predict:stream", func(dec *json.Decoder) error {
		defer close(ps.results)
		for {
			var res PredictResult
			if err := dec.Decode(&res); err != nil {
				if err == io.EOF {
					return nil
				}
				return fmt.Errorf("client: decoding predict result: %w", err)
			}
			if res.Error != nil {
				return res.Error
			}
			ps.results <- res
		}
	})
	if err != nil {
		return nil, err
	}
	ps.s = s
	return ps, nil
}

// Send queues one query row.
func (ps *PredictStream) Send(features []float64) error {
	return ps.s.send(PredictRow{Features: features})
}

// CloseSend flushes and ends the request side; Recv keeps delivering until
// the server's results drain.
func (ps *PredictStream) CloseSend() error {
	err := ps.s.bw.Flush()
	ps.s.pw.Close()
	return err
}

// Recv returns the next result, or io.EOF after the last one. It is
// bounded by the context the stream was opened with: if that context ends,
// or the response goroutine dies without ever running the result consumer
// (e.g. the dial itself failed), Recv returns the fault instead of
// blocking forever on a channel nothing will ever close.
func (ps *PredictStream) Recv() (PredictResult, error) {
	select {
	case res, ok := <-ps.results:
		if !ok {
			return ps.endOfStream()
		}
		return res, nil
	case <-ps.s.respDone:
		// The response side is finished, but results may still be
		// buffered (the consumer closes the channel before respDone
		// closes) — drain those before reporting the stream's fate.
		select {
		case res, ok := <-ps.results:
			if ok {
				return res, nil
			}
		default:
			// The consumer never ran, so the channel never closes: the
			// request failed before a response arrived.
		}
		return ps.endOfStream()
	case <-ps.s.ctx.Done():
		return PredictResult{}, ps.s.ctx.Err()
	}
}

// endOfStream reports why no further results will arrive.
func (ps *PredictStream) endOfStream() (PredictResult, error) {
	// The results channel closes (inside consume) before startStream
	// records a server-reported fault via fail; wait for the response
	// goroutine to finish so a stream error is never misread as EOF.
	<-ps.s.respDone
	if err := ps.s.asyncErr(); err != nil {
		return PredictResult{}, err
	}
	return PredictResult{}, io.EOF
}

// PredictAll streams every row through one bulk-prediction request and
// returns the results in row order — the high-throughput alternative to
// Predict for large query sets.
func (c *Client) PredictAll(ctx context.Context, rows [][]float64) ([]PredictResult, error) {
	ps, err := c.PredictStream(ctx)
	if err != nil {
		return nil, err
	}
	sendErr := make(chan error, 1)
	go func() {
		for _, row := range rows {
			if err := ps.Send(row); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- ps.CloseSend()
	}()
	out := make([]PredictResult, 0, len(rows))
	for {
		res, err := ps.Recv()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	if err := <-sendErr; err != nil {
		return nil, err
	}
	if len(out) != len(rows) {
		return out, fmt.Errorf("client: sent %d queries but received %d results", len(rows), len(out))
	}
	return out, nil
}
