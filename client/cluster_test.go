package client

// Cluster client unit tests over real in-process protocol-v1 nodes: one
// httptest server per shard, each running a real serving core with a
// real cluster.Node, plus an unsharded reference server fed the same
// rows for the differential scatter-gather exactness check.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hdcirc/internal/cluster"
	"hdcirc/internal/httpapi"
	"hdcirc/internal/serve"
)

// handlerSwap lets the httptest server start (to learn its URL) before
// the handler exists — the manifest needs the URLs, the nodes need the
// manifest, the handlers need the nodes.
type handlerSwap struct{ h atomic.Value }

func (s *handlerSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

// The model geometry every node in these tests shares: 8 classes so the
// seed-42 ring splits ownership across both shards.
func clusterServeConfig() serve.Config {
	return serve.Config{Dim: 512, Classes: 8, Shards: 2, Workers: 2, Seed: 7}
}

func clusterEncoder(t *testing.T) httpapi.Encoder {
	t.Helper()
	enc, err := httpapi.NewScalarRecordEncoder(httpapi.ScalarRecordConfig{
		Dim: 512, Fields: 2, Lo: 0, Hi: 1, Levels: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

type clusterBackend struct {
	man  *cluster.Manifest
	apis []*httpapi.API
	urls []string
}

// newClusterBackend stands up one real node per shard, all sharing one
// manifest whose endpoints are the live httptest URLs.
func newClusterBackend(t *testing.T, shards int, mutate ...func(shard int, c *httpapi.Config)) *clusterBackend {
	t.Helper()
	b := &clusterBackend{man: &cluster.Manifest{Version: 1, RingSeed: 42}}
	swaps := make([]*handlerSwap, shards)
	for i := 0; i < shards; i++ {
		swaps[i] = &handlerSwap{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		b.urls = append(b.urls, ts.URL)
		b.man.Shards = append(b.man.Shards, cluster.ShardEndpoints{Primary: ts.URL})
	}
	for i := 0; i < shards; i++ {
		node, err := cluster.NewNode(b.man, i)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewServer(clusterServeConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := httpapi.Config{Server: srv, Encoder: clusterEncoder(t), Cluster: node}
		for _, m := range mutate {
			m(i, &cfg)
		}
		api, err := httpapi.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		swaps[i].h.Store(http.Handler(api))
		b.apis = append(b.apis, api)
	}
	return b
}

func (b *clusterBackend) client(t *testing.T, opts ...Option) *ClusterClient {
	t.Helper()
	cc, err := NewClusterClient(b.man, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

// clusterTrainBody spreads samples over all 8 classes (centers on a 4×2
// feature grid, deterministic jitter) plus a few symbols, so both shards
// own part of the batch under the seed-42 ring.
func clusterTrainBody(perClass int) TrainRequest {
	var req TrainRequest
	for class := 0; class < 8; class++ {
		cx := float64(class%4)*0.25 + 0.1
		cy := float64(class/4)*0.5 + 0.2
		for j := 0; j < perClass; j++ {
			jit := 0.015 * float64(j%4)
			req.Samples = append(req.Samples, Sample{
				Label:    class,
				Features: []float64{cx + jit, cy - jit},
			})
		}
	}
	req.Symbols = []string{"alpha", "bravo", "charlie", "delta", "echo"}
	return req
}

// clusterQueries exercises the merge: class centers, midpoints between
// centers owned by different shards, and corners.
func clusterQueries() [][]float64 {
	qs := [][]float64{{0, 0}, {1, 1}, {0.5, 0.45}}
	for class := 0; class < 8; class++ {
		cx := float64(class%4)*0.25 + 0.1
		cy := float64(class/4)*0.5 + 0.2
		qs = append(qs, []float64{cx, cy}, []float64{cx + 0.12, cy + 0.24})
	}
	return qs
}

// TestClusterPredictBitIdentical is the differential acceptance check:
// the same rows into a 2-shard tier and into one unsharded server, then
// the same queries — the merged scatter-gather prediction must equal the
// unsharded prediction bit for bit, classes and float distances both.
func TestClusterPredictBitIdentical(t *testing.T) {
	b := newClusterBackend(t, 2)
	cc := b.client(t)
	ctx := t.Context()

	// Unsharded reference: identical geometry, identical rows.
	refSrv, err := serve.NewServer(clusterServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	refAPI, err := httpapi.New(httpapi.Config{Server: refSrv, Encoder: clusterEncoder(t)})
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(refAPI)
	t.Cleanup(refTS.Close)
	ref, err := New(refTS.URL)
	if err != nil {
		t.Fatal(err)
	}

	rows := clusterTrainBody(12)
	if _, err := ref.Train(ctx, rows); err != nil {
		t.Fatalf("reference train: %v", err)
	}
	acks, err := cc.Train(ctx, rows)
	if err != nil {
		t.Fatalf("cluster train: %v", err)
	}
	if len(acks) != 2 {
		t.Fatalf("train touched %d shards, want both: %v", len(acks), acks)
	}

	queries := clusterQueries()
	want, err := ref.Predict(ctx, queries)
	if err != nil {
		t.Fatalf("reference predict: %v", err)
	}
	got, err := cc.Predict(ctx, queries)
	if err != nil {
		t.Fatalf("cluster predict: %v", err)
	}
	winners := make(map[int]bool)
	for q := range queries {
		if got.Classes[q] != want.Classes[q] || got.Distances[q] != want.Distances[q] {
			t.Errorf("query %d (%v): cluster (%d, %v) != unsharded (%d, %v)",
				q, queries[q], got.Classes[q], got.Distances[q], want.Classes[q], want.Distances[q])
		}
		winners[cc.ShardForClass(want.Classes[q])] = true
	}
	// The check is vacuous unless winning classes live on both shards.
	if len(winners) != 2 {
		t.Fatalf("all winning classes on shards %v; fixture no longer exercises the merge", winners)
	}
	if got.Dim != 512 || len(got.Versions) != 2 {
		t.Fatalf("merged response header: %+v", got)
	}
}

// TestClusterTrainSplitsByOwner: each shard applies exactly its part,
// symbol probes route to the owner, and the non-owner never saw the key.
func TestClusterTrainSplitsByOwner(t *testing.T) {
	b := newClusterBackend(t, 2)
	cc := b.client(t)
	ctx := t.Context()

	req := clusterTrainBody(4)
	acks, err := cc.Train(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for shard, api := range b.apis {
		ack, touched := acks[shard]
		if !touched {
			t.Fatalf("shard %d got no part of an all-class batch", shard)
		}
		if v := api.Server().Snapshot().Version(); v != ack.Version {
			t.Fatalf("shard %d at version %d, ack said %d", shard, v, ack.Version)
		}
	}

	for _, sym := range req.Symbols {
		owner := cc.ShardForSymbol(sym)
		found, _, err := cc.HasSymbol(ctx, sym)
		if err != nil || !found {
			t.Fatalf("HasSymbol(%q) = %v, %v; want found via shard %d", sym, found, err, owner)
		}
		if _, ok := b.apis[1-owner].Server().Snapshot().Item(sym); ok {
			t.Fatalf("symbol %q leaked onto non-owner shard %d", sym, 1-owner)
		}
	}
}

// TestClusterIngestSplit: the sharded stream routes each row to its
// owner, splits rows whose label and symbol belong to different shards,
// and reports per-shard acks that add up.
func TestClusterIngestSplit(t *testing.T) {
	b := newClusterBackend(t, 2)
	cc := b.client(t)
	ctx := t.Context()

	// Find a (label, symbol) pair with different owners so one row splits.
	split := -1
	symbols := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	for c := 0; c < 8 && split < 0; c++ {
		for _, sym := range symbols {
			if cc.ShardForClass(c) != cc.ShardForSymbol(sym) {
				split = c
				symbols = []string{sym}
				break
			}
		}
	}
	if split < 0 {
		t.Fatal("fixture: no cross-owner (label, symbol) pair under this ring")
	}

	st, err := cc.Ingest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	logical := 0
	for class := 0; class < 8; class++ {
		cx := float64(class%4)*0.25 + 0.1
		cy := float64(class/4)*0.5 + 0.2
		label := class
		if err := st.Send(IngestRow{Label: &label, Features: []float64{cx, cy}}); err != nil {
			t.Fatal(err)
		}
		logical++
	}
	lbl := split
	if err := st.Send(IngestRow{Label: &lbl, Features: []float64{0.4, 0.4}, Symbol: symbols[0]}); err != nil {
		t.Fatal(err)
	}
	logical++

	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rows != logical || st.Sent() != logical {
		t.Fatalf("summary rows = %d, sent = %d, want %d", sum.Rows, st.Sent(), logical)
	}
	wire := 0
	for _, ack := range sum.Shards {
		wire += ack.TotalRows
	}
	if wire != logical+1 { // the split row became two wire rows
		t.Fatalf("wire rows = %d, want %d (one split)", wire, logical+1)
	}
	applied := st.Applied()
	for shard, ack := range sum.Shards {
		if p := applied[shard]; p.Rows != ack.TotalRows || p.Version != ack.Version {
			t.Fatalf("shard %d progress %+v vs summary %+v", shard, p, ack)
		}
	}

	// The split row's halves landed on their owners.
	symOwner := cc.ShardForSymbol(symbols[0])
	if _, ok := b.apis[symOwner].Server().Snapshot().Item(symbols[0]); !ok {
		t.Fatalf("split symbol %q missing on owner shard %d", symbols[0], symOwner)
	}
	if _, ok := b.apis[1-symOwner].Server().Snapshot().Item(symbols[0]); ok {
		t.Fatalf("split symbol %q leaked onto shard %d", symbols[0], 1-symOwner)
	}
}

// TestClusterWrongShardFollowsHint: a client routing with a stale (here:
// endpoint-swapped) manifest gets wrong_shard from every misdirected
// part and lands each one on the hinted owner — the whole batch still
// applies, with no key on a non-owner.
func TestClusterWrongShardFollowsHint(t *testing.T) {
	b := newClusterBackend(t, 2)
	ctx := t.Context()

	stale := b.man.Clone()
	stale.Shards[0], stale.Shards[1] = stale.Shards[1], stale.Shards[0]
	cc, err := NewClusterClient(stale)
	if err != nil {
		t.Fatal(err)
	}

	req := clusterTrainBody(2)
	if _, err := cc.Train(ctx, req); err != nil {
		t.Fatalf("train through stale manifest: %v", err)
	}
	// Every shard's server holds exactly its owned symbols.
	fresh := b.client(t)
	for _, sym := range req.Symbols {
		owner := fresh.ShardForSymbol(sym)
		if _, ok := b.apis[owner].Server().Snapshot().Item(sym); !ok {
			t.Fatalf("symbol %q missing on owner shard %d after hinted reroute", sym, owner)
		}
		if _, ok := b.apis[1-owner].Server().Snapshot().Item(sym); ok {
			t.Fatalf("symbol %q applied on non-owner shard %d", sym, 1-owner)
		}
	}
}

// TestClusterBootstrapAndRefresh: a client built from any one endpoint
// learns the whole tier, and Refresh is a no-op while the manifest
// version stands still.
func TestClusterBootstrapAndRefresh(t *testing.T) {
	b := newClusterBackend(t, 3)
	ctx := t.Context()

	cc, err := NewClusterClientFromEndpoint(ctx, b.urls[2])
	if err != nil {
		t.Fatal(err)
	}
	if cc.NumShards() != 3 || cc.ManifestVersion() != 1 {
		t.Fatalf("bootstrap: shards=%d version=%d", cc.NumShards(), cc.ManifestVersion())
	}
	changed, err := cc.Refresh(ctx)
	if err != nil || changed {
		t.Fatalf("refresh against same version: changed=%v err=%v", changed, err)
	}

	// Bootstrapping off an unsharded node is a structured not_found.
	srv, err := serve.NewServer(clusterServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	plainAPI, err := httpapi.New(httpapi.Config{Server: srv, Encoder: clusterEncoder(t)})
	if err != nil {
		t.Fatal(err)
	}
	plain := httptest.NewServer(plainAPI)
	t.Cleanup(plain.Close)
	if _, err := NewClusterClientFromEndpoint(ctx, plain.URL); err == nil {
		t.Fatal("bootstrap from unsharded node succeeded")
	}
}

// TestClusterCleanupMerge: cleanup scatters everywhere and returns the
// globally best symbol; an empty tier answers a structured not_found.
func TestClusterCleanupMerge(t *testing.T) {
	b := newClusterBackend(t, 2)
	cc := b.client(t)
	ctx := t.Context()

	if _, err := cc.Cleanup(ctx, []float64{0.5, 0.5}); err == nil {
		t.Fatal("cleanup on an empty tier succeeded")
	}

	if _, err := cc.Train(ctx, clusterTrainBody(2)); err != nil {
		t.Fatal(err)
	}
	res, err := cc.Cleanup(ctx, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// The winner must beat (or tie, with a smaller symbol) every shard's
	// own best — recomputed here per shard directly against the nodes.
	for shard := range b.apis {
		g := cc.Group(shard)
		r, err := g.Cleanup(ctx, []float64{0.5, 0.5})
		if err != nil {
			continue // shard may hold no symbols
		}
		if r.Similarity > res.Similarity ||
			(r.Similarity == res.Similarity && r.Symbol < res.Symbol) {
			t.Fatalf("shard %d has a better symbol %q (%v) than merged %q (%v)",
				shard, r.Symbol, r.Similarity, res.Symbol, res.Similarity)
		}
	}
	if res.Symbol == "" {
		t.Fatalf("merged cleanup returned no symbol: %+v", res)
	}
}

// TestClusterPredictGeometryMismatch: a shard whose model geometry
// drifted from the tier's is an error, not a silently wrong merge.
func TestClusterPredictGeometryMismatch(t *testing.T) {
	b := newClusterBackend(t, 2, func(shard int, c *httpapi.Config) {
		if shard != 1 {
			return
		}
		srv, err := serve.NewServer(serve.Config{Dim: 512, Classes: 5, Shards: 2, Workers: 2, Seed: 7})
		if err != nil {
			panic(fmt.Sprintf("mismatched server: %v", err))
		}
		c.Server = srv
	})
	cc := b.client(t)
	if _, err := cc.Predict(t.Context(), [][]float64{{0.5, 0.5}}); err == nil {
		t.Fatal("predict across mismatched geometries succeeded")
	}
}
