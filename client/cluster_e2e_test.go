package client

// Sharded-cluster end-to-end test: two shard groups, each a real hdcserve
// primary + replica child process bound into one HCLU manifest, driven
// through the cluster client. The test streams the scenario workload in,
// proves the merged scatter-gather prediction bit-identical to an
// unsharded in-process reference fed the same rows, SIGKILLs shard 0's
// primary, promotes its replica over POST /v1/admin/promote, revives the
// old primary as a follower of the new one (re-seeded over the stream the
// promoted node now hosts), and rides the not_primary/wrong_shard hints
// through recovery — with the final merged predictions again bit-identical
// and every acked write present.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/url"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"hdcirc/internal/cluster"
)

// reserveAddr grabs a free loopback port and releases it for a child to
// claim: the manifest must name every endpoint before any child starts.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// e2eQueries hits every trainBody class center plus a sweep of the feature
// square, so the winning classes span both shards' ownership.
func e2eQueries() [][]float64 {
	qs := [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}}
	for i := 0; i < 24; i++ {
		f := float64(i) / 24
		qs = append(qs, []float64{f, 1 - f}, []float64{f, f})
	}
	return qs
}

// mustMatchReference asserts the cluster tier's merged predictions are
// bit-identical — classes and float distances — to the unsharded
// reference, and that the winning classes span both shards (otherwise
// the merge isn't being exercised).
func mustMatchReference(t *testing.T, ctx context.Context, cc *ClusterClient, ref *Client, phase string) {
	t.Helper()
	queries := e2eQueries()
	want, err := ref.Predict(ctx, queries)
	if err != nil {
		t.Fatalf("%s: reference predict: %v", phase, err)
	}
	got, err := cc.Predict(ctx, queries)
	if err != nil {
		t.Fatalf("%s: cluster predict: %v", phase, err)
	}
	winners := make(map[int]bool)
	for q := range queries {
		if got.Classes[q] != want.Classes[q] || got.Distances[q] != want.Distances[q] {
			t.Fatalf("%s: query %d (%v): cluster (%d, %v) != unsharded (%d, %v)",
				phase, q, queries[q], got.Classes[q], got.Distances[q], want.Classes[q], want.Distances[q])
		}
		winners[cc.ShardForClass(want.Classes[q])] = true
	}
	if len(winners) != 2 {
		t.Fatalf("%s: winning classes only on shards %v; merge not exercised", phase, winners)
	}
}

func TestClusterTierE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process integration test")
	}
	bin := buildHdcserve(t)
	ctx := context.Background()

	// The manifest, written in HCLU binary form and loaded by every child
	// via -cluster: 2 shards × (primary + replica) on reserved ports.
	s0p, s0r := reserveAddr(t), reserveAddr(t)
	s1p, s1r := reserveAddr(t), reserveAddr(t)
	man := &cluster.Manifest{
		Version:  1,
		RingSeed: 42,
		Shards: []cluster.ShardEndpoints{
			{Primary: "http://" + s0p, Replicas: []string{"http://" + s0r}},
			{Primary: "http://" + s1p, Replicas: []string{"http://" + s1r}},
		},
	}
	manPath := filepath.Join(t.TempDir(), "manifest.hclu")
	if err := man.Save(nil, manPath); err != nil {
		t.Fatal(err)
	}

	s0pDir, s0rDir, s1pDir, s1rDir := t.TempDir(), t.TempDir(), t.TempDir(), t.TempDir()
	s0pChild, s0pBase := startChild(t, bin, s0p, s0pDir, "-cluster", manPath, "-shard", "0/2", "-admin")
	_, s0rBase := startChild(t, bin, s0r, s0rDir, "-cluster", manPath, "-shard", "0/2", "-admin",
		"-role", "replica", "-primary-url", "http://"+s0p,
		"-replica-max-inflight", "64", "-replica-max-queue", "128")
	_, s1pBase := startChild(t, bin, s1p, s1pDir, "-cluster", manPath, "-shard", "1/2", "-admin")
	_, s1rBase := startChild(t, bin, s1r, s1rDir, "-cluster", manPath, "-shard", "1/2", "-admin",
		"-role", "replica", "-primary-url", "http://"+s1p,
		"-replica-max-inflight", "64", "-replica-max-queue", "128")

	direct := func(base string) *Client {
		c, err := New(base, WithRetry(10, 50*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	s0pc, s0rc := direct(s0pBase), direct(s0rBase)
	s1pc, s1rc := direct(s1pBase), direct(s1rBase)
	for _, c := range []*Client{s0pc, s0rc, s1pc, s1rc} {
		waitHealthy(t, c)
	}

	// The cluster client under test, built from the manifest FILE (the
	// same bytes the children loaded). Reads prefer replicas so the tier
	// keeps serving reads while a primary is down.
	cc, err := NewClusterClientFromFile(manPath,
		WithRetry(20, 50*time.Millisecond),
		WithReadPreference(NearestReplica))
	if err != nil {
		t.Fatal(err)
	}

	// The ring must give both shards classes or the whole fixture is
	// vacuous (deterministic in RingSeed, so this cannot flake).
	ownedClass := make(map[int]int) // shard → some class it owns
	for c := 0; c < childClasses; c++ {
		ownedClass[cc.ShardForClass(c)] = c
	}
	if len(ownedClass) != 2 {
		t.Fatalf("fixture: all %d classes owned by one shard; pick another RingSeed", childClasses)
	}

	// Unsharded in-process reference with the children's exact geometry,
	// fed the same logical rows throughout.
	ref := newBackend(t).client(t)

	// Phase 1: stream the workload through the sharded ingest (rows split
	// per owner, per-shard coalescers and acks) and into the reference.
	cis, err := cc.Ingest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ris, err := ref.Ingest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	splits := 0
	for i := 0; i < ingestRows; i++ {
		row := ingestRowIdx(i)
		if err := cis.Send(row); err != nil {
			t.Fatalf("cluster ingest row %d: %v", i, err)
		}
		if err := ris.Send(row); err != nil {
			t.Fatalf("reference ingest row %d: %v", i, err)
		}
		if row.Symbol != "" && cc.ShardForClass(*row.Label) != cc.ShardForSymbol(row.Symbol) {
			splits++
		}
	}
	csum, err := cis.Close()
	if err != nil {
		t.Fatalf("cluster ingest close: %v", err)
	}
	if _, err := ris.Close(); err != nil {
		t.Fatalf("reference ingest close: %v", err)
	}
	if csum.Rows != ingestRows {
		t.Fatalf("cluster ingest summary rows = %d, want %d", csum.Rows, ingestRows)
	}
	wire := 0
	for _, ack := range csum.Shards {
		wire += ack.TotalRows
	}
	if wire != ingestRows+splits {
		t.Fatalf("wire rows = %d, want %d (%d split across owners)", wire, ingestRows+splits, splits)
	}

	// Phase 2: unary training through the sharded splitter — the
	// deterministic replay batches plus a structured batch that anchors
	// each class to its own region of the feature square, so prediction
	// winners are spread across classes (and therefore shards).
	for i := 0; i < 10; i++ {
		if _, err := cc.Train(ctx, trainReqIdx(i)); err != nil {
			t.Fatalf("cluster train %d: %v", i, err)
		}
		if _, err := ref.Train(ctx, trainReqIdx(i)); err != nil {
			t.Fatalf("reference train %d: %v", i, err)
		}
	}
	if _, err := cc.Train(ctx, trainBody(60)); err != nil {
		t.Fatalf("cluster structured train: %v", err)
	}
	if _, err := ref.Train(ctx, trainBody(60)); err != nil {
		t.Fatalf("reference structured train: %v", err)
	}

	// Replicas converge to their own primary's version; within a group
	// the snapshots are byte-identical.
	shardVersion := func(c *Client) uint64 {
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return st.Version
	}
	waitConverged(t, s0rc, shardVersion(s0pc))
	waitConverged(t, s1rc, shardVersion(s1pc))
	for shard, pair := range [][2]*Client{{s0pc, s0rc}, {s1pc, s1rc}} {
		pv, pb := nodeSnapshot(t, pair[0])
		rv, rb := nodeSnapshot(t, pair[1])
		if pv != rv || !bytes.Equal(pb, rb) {
			t.Fatalf("shard %d: replica snapshot (v%d, %d bytes) != primary (v%d, %d bytes)",
				shard, rv, len(rb), pv, len(pb))
		}
	}

	// Phase 3: the merged prediction is bit-identical to the unsharded
	// reference (reads served by converged replicas).
	mustMatchReference(t, ctx, cc, ref, "pre-failover")

	// A write aimed at the wrong shard's primary answers wrong_shard with
	// the owner's endpoints straight from the manifest. The batch is
	// non-empty (a sample for a class shard 1 does not own) so rejection
	// is the ownership check, not input validation.
	oneShot, err := New(s1pBase, WithRetry(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	misrouted := TrainRequest{Samples: []Sample{{Label: ownedClass[0], Features: []float64{0.5, 0.5}}}}
	var e *Error
	if _, err := oneShot.Train(ctx, misrouted); !errors.As(err, &e) ||
		e.Code != CodeWrongShard || e.OwnerShard == nil || *e.OwnerShard != 0 ||
		e.OwnerPrimaryURL != s0pBase {
		t.Fatalf("misrouted write error = %v, want wrong_shard owned by shard 0 at %s", err, s0pBase)
	}

	// Phase 4: SIGKILL shard 0's primary; the tier keeps serving reads
	// (scores fan out to the surviving replica), then the operator
	// promotes the replica through the admin route.
	if err := s0pChild.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	s0pChild.Wait()
	if _, err := cc.Predict(ctx, [][]float64{{0.3, 0.7}}); err != nil {
		t.Fatalf("predict with shard 0 primary dead: %v", err)
	}
	pr, err := s0rc.Promote(ctx)
	if err != nil {
		t.Fatalf("admin promote: %v", err)
	}
	if pr.Role != "primary" {
		t.Fatalf("promoted node reports role %q", pr.Role)
	}

	// Revive the old primary on its manifest address as a follower of the
	// promoted node: it re-seeds over the replicate stream the new
	// primary now hosts, and — still named as shard 0's primary in the
	// manifest — answers writes with a not_primary hint to the real one.
	u, err := url.Parse(s0pBase)
	if err != nil {
		t.Fatal(err)
	}
	_, revivedBase := startChild(t, bin, u.Host, s0pDir, "-cluster", manPath, "-shard", "0/2", "-admin",
		"-role", "replica", "-primary-url", s0rBase)
	if revivedBase != s0pBase {
		t.Fatalf("old primary revived on %s, want %s", revivedBase, s0pBase)
	}
	waitHealthy(t, s0pc)

	// Phase 5: writes through the cluster client ride the hint — shard 0
	// parts hit the revived follower, adopt the promoted primary, and
	// land — while shard 1 is untouched. The reference gets the same rows.
	for i := 10; i < 20; i++ {
		if _, err := cc.Train(ctx, trainReqIdx(i)); err != nil {
			t.Fatalf("post-failover cluster train %d: %v", i, err)
		}
		if _, err := ref.Train(ctx, trainReqIdx(i)); err != nil {
			t.Fatalf("post-failover reference train %d: %v", i, err)
		}
	}
	if got := cc.Group(0).PrimaryURL(); got != s0rBase {
		t.Fatalf("shard 0 group adopted %s, want the promoted node %s", got, s0rBase)
	}

	// The revived follower catches up to the new primary bit for bit —
	// every write acked before the kill (it converged then) and after it
	// (via the new primary's stream) is present.
	waitConverged(t, s0pc, shardVersion(s0rc))
	waitConverged(t, s1rc, shardVersion(s1pc))
	nv, nb := nodeSnapshot(t, s0rc)
	rv, rb := nodeSnapshot(t, s0pc)
	if nv != rv || !bytes.Equal(nb, rb) {
		t.Fatalf("revived follower snapshot (v%d, %d bytes) != promoted primary (v%d, %d bytes)",
			rv, len(rb), nv, len(nb))
	}

	// Phase 6: merged predictions are again bit-identical to the
	// reference — no acked write was lost across the failover.
	mustMatchReference(t, ctx, cc, ref, "post-failover")

	// A client routing with a stale manifest still lands writes by riding
	// wrong_shard hints (to the true owner's endpoints) and then
	// not_primary hints (to the promoted node) in sequence.
	stale := man.Clone()
	stale.Shards[0], stale.Shards[1] = stale.Shards[1], stale.Shards[0]
	scc, err := NewClusterClient(stale, WithRetry(20, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scc.Train(ctx, trainReqIdx(20)); err != nil {
		t.Fatalf("train through stale manifest after failover: %v", err)
	}
	if _, err := ref.Train(ctx, trainReqIdx(20)); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, s0pc, shardVersion(s0rc))
	waitConverged(t, s1rc, shardVersion(s1pc))
	mustMatchReference(t, ctx, cc, ref, "post-stale-write")

	// Every interned symbol is findable through the tier (routed to its
	// owner group) after the failover.
	for i := 0; i < 7; i++ {
		sym := fmt.Sprintf("ing/%d", i)
		found, _, err := cc.HasSymbol(ctx, sym)
		if err != nil || !found {
			t.Fatalf("HasSymbol(%q) = %v, %v after failover", sym, found, err)
		}
	}
	for i := 0; i < 6; i++ {
		sym := fmt.Sprintf("sym/%d", i)
		found, _, err := cc.HasSymbol(ctx, sym)
		if err != nil || !found {
			t.Fatalf("HasSymbol(%q) = %v, %v after failover", sym, found, err)
		}
	}
}
