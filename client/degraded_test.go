package client

// Client-side behavior against a degraded server, plus the retry-policy
// refinements that ride along: exact Retry-After honoring, the per-call
// retry budget and call timeout, and the write-plane circuit breaker.
// The e2e test at the bottom is the acceptance scenario: a live server
// takes a forced WAL fault mid-traffic, degrades to read-only, and the
// client rides through it — reads keep working, writes fail fast once
// the breaker trips, and everything heals when the disk does.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hdcirc/internal/httpapi"
	"hdcirc/internal/serve"
	"hdcirc/internal/vfs"
)

// faultedBackend is newBackend over a durable server whose disk fails on
// demand.
func faultedBackend(t *testing.T, mutate ...func(*httpapi.Config)) (*testBackend, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFaultFS(nil)
	srv, err := serve.Open(serve.Config{
		Dim: 512, Classes: 3, Shards: 2, Workers: 2, Seed: 7,
		WAL: &serve.WALConfig{Dir: t.TempDir(), FS: ffs},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	enc, err := httpapi.NewScalarRecordEncoder(httpapi.ScalarRecordConfig{
		Dim: 512, Fields: 2, Lo: 0, Hi: 1, Levels: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := httpapi.Config{Server: srv, Encoder: enc, RetryAfter: 50 * time.Millisecond}
	for _, m := range mutate {
		m(&cfg)
	}
	api, err := httpapi.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	return &testBackend{api: api, ts: ts}, ffs
}

func TestRetryAfterHintHonoredExactly(t *testing.T) {
	b := newBackend(t)
	// One 429 carrying a 50ms hint, against a client whose own backoff
	// would start at 2s: exact honoring retries almost immediately, the
	// old max(backoff, hint) policy would sit out the full 2s.
	overload := &Error{Code: CodeOverloaded, Message: "full", RetryAfterMS: 50}
	ts, calls := flakyProxy(t, b.api, 1, overload)
	c, err := New(ts.URL, WithRetry(2, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Predict(t.Context(), [][]float64{{0.1, 0.1}}); err != nil {
		t.Fatalf("predict through hinted 429: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Fatalf("call took %v: the 50ms hint was not honored exactly", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("used %d calls, want 2", got)
	}
}

func TestRetryBudgetCapsBackoffTime(t *testing.T) {
	b := newBackend(t)
	overload := &Error{Code: CodeOverloaded, Message: "full", RetryAfterMS: 60}
	ts, calls := flakyProxy(t, b.api, 99, overload) // never heals
	c, err := New(ts.URL, WithRetry(10, time.Millisecond), WithRetryBudget(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Predict(t.Context(), [][]float64{{0.1, 0.1}})
	var apiErr *Error
	if err == nil || !errors.As(err, &apiErr) || apiErr.Code != CodeOverloaded {
		t.Fatalf("budget-exhausted error = %v, want wrapped overload fault", err)
	}
	// 60ms per retry into a 100ms budget: attempt 1, one sleep, attempt 2,
	// then the second sleep would blow the budget. Well short of 10.
	if got := calls.Load(); got != 2 {
		t.Fatalf("used %d calls, want 2 (budget should stop the third)", got)
	}
}

func TestCallTimeoutBoundsTheWholeCall(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(slow.Close)
	c, err := New(slow.URL, WithCallTimeout(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(t.Context()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("call against stalled server: %v, want context.DeadlineExceeded", err)
	}
}

func TestBreakerIgnoresTransportFaults(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on
	c, err := New(dead.URL, WithCircuitBreaker(1, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := func() error { _, err := c.Train(t.Context(), trainBody(1)); return err }()
		if err == nil {
			t.Fatal("train against a dead server succeeded")
		}
		if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("attempt %d: transport faults tripped the breaker: %v", i, err)
		}
	}
}

func TestE2EDegradedServerBreakerTripsAndRecovers(t *testing.T) {
	b, ffs := faultedBackend(t)
	c := b.client(t,
		WithRetry(1, time.Millisecond), // one attempt per call: failures count one by one
		WithCircuitBreaker(3, 50*time.Millisecond),
	)
	ctx := t.Context()

	// Healthy server takes writes.
	if _, err := c.Train(ctx, trainBody(2)); err != nil {
		t.Fatal(err)
	}

	// The disk dies under the WAL. Every write from here is a structured
	// read_only 503 with a retry hint.
	ffs.Arm(vfs.Fault{Op: vfs.OpWrite, Path: ".seg", Err: vfs.ErrNoSpace})
	var apiErr *Error
	for i := 0; i < 3; i++ {
		_, err := c.Train(ctx, trainBody(1))
		if !errors.As(err, &apiErr) || apiErr.Code != CodeReadOnly {
			t.Fatalf("degraded train %d: %v, want read_only", i, err)
		}
		if apiErr.RetryAfterMS <= 0 {
			t.Fatalf("degraded train %d: no retry_after_ms hint: %+v", i, apiErr)
		}
	}

	// Healthz tells the truth; the read plane still serves.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Reason == "" || h.DegradedSince.IsZero() {
		t.Fatalf("health while degraded: %+v", h)
	}
	if _, err := c.Predict(ctx, [][]float64{{0.2, 0.8}}); err != nil {
		t.Fatalf("predict while degraded: %v", err)
	}

	// Three consecutive write-plane 503s tripped the breaker: the next
	// write fails fast without touching the server.
	if _, err := c.Train(ctx, trainBody(1)); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("train after trip: %v, want ErrCircuitOpen", err)
	}
	if _, err := c.Ingest(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("ingest after trip: %v, want ErrCircuitOpen", err)
	}

	// After the cooldown the half-open probe runs — and the server is
	// still degraded, so the circuit snaps shut again.
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Train(ctx, trainBody(1)); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("half-open against still-degraded server: %v, want ErrCircuitOpen", err)
	}

	// The disk heals and the operator recovers the server.
	ffs.Clear()
	if err := b.api.Server().Recover(); err != nil {
		t.Fatal(err)
	}

	// Next cooldown's probe sees a healthy write plane: the circuit
	// closes and the write goes through.
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Train(ctx, trainBody(2)); err != nil {
		t.Fatalf("train after recovery: %v", err)
	}
	h, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health after recovery: %+v", h)
	}
}
