package client

// End-to-end contract test: the client SDK driven against a real hdcserve
// child process — bulk ingest over the stream endpoint, unary training
// under load, a SIGKILL mid-traffic, a restart on the same address — with
// the client resuming transparently (its retry policy rides through the
// restart on the same Client value) and the recovered state required to be
// bit-identical to an in-process sequential replay of exactly the batches
// the recovered version covers.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/url"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hdcirc/internal/httpapi"
	"hdcirc/internal/serve"
)

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// childConfig mirrors the flags below; the in-process replay depends on
// every one of them.
const (
	childDim     = 512
	childClasses = 3
	childShards  = 2
	childFields  = 2
	childLevels  = 16
	childSeed    = 7
	ingestRows   = 1000
	streamBatch  = 256
)

func childFlags(addr, dataDir string) []string {
	return []string{
		"-addr", addr,
		"-data-dir", dataDir,
		"-fsync-every", "1",
		"-checkpoint-every", "4",
		"-d", fmt.Sprint(childDim), "-k", fmt.Sprint(childClasses),
		"-shards", fmt.Sprint(childShards), "-workers", "2",
		"-fields", fmt.Sprint(childFields), "-lo", "0", "-hi", "1",
		"-levels", fmt.Sprint(childLevels), "-seed", fmt.Sprint(childSeed),
		"-stream-batch", fmt.Sprint(streamBatch),
	}
}

// buildHdcserve compiles the command under test once per test run.
func buildHdcserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hdcserve-under-test")
	cmd := exec.Command("go", "build", "-o", bin, "hdcirc/cmd/hdcserve")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hdcserve: %v\n%s", err, out)
	}
	return bin
}

// startChild launches the binary and returns the process plus its resolved
// base URL. Extra flags (e.g. a replication role) append to the standard
// set.
func startChild(t *testing.T, bin, addr, dataDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append(childFlags(addr, dataDir), extra...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case got := <-addrc:
		return cmd, "http://" + got
	case <-time.After(30 * time.Second):
		t.Fatal("child never reported a listen address")
		return nil, ""
	}
}

func waitHealthy(t *testing.T, c *Client) *StatsResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		st, err := c.Stats(ctx)
		cancel()
		if err == nil {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("child never became healthy")
	return nil
}

// trainReqIdx is a deterministic training batch per index (mirrors
// cmd/hdcserve's shutdown test), so a replay of batches 0..V-1 reproduces
// any server that applied the first V unary batches.
func trainReqIdx(i int) TrainRequest {
	f := float64(i%10) / 10
	return TrainRequest{
		Samples: []Sample{
			{Label: i % 3, Features: []float64{f, 1 - f}},
			{Label: (i + 1) % 3, Features: []float64{1 - f, f}},
		},
		Symbols: []string{fmt.Sprintf("sym/%d", i%6)},
	}
}

func TestContractSIGKILLRecoveryThroughClient(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process integration test")
	}
	bin := buildHdcserve(t)
	dataDir := t.TempDir()

	child, base := startChild(t, bin, "127.0.0.1:0", dataDir)
	c, err := New(base, WithRetry(20, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	waitHealthy(t, c)

	// Phase 1: bulk-load over the streaming endpoint. 1000 rows at
	// stream-batch 256 → 4 write batches, versions 1..4.
	is, err := c.Ingest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ingestRows; i++ {
		if err := is.Send(ingestRowIdx(i)); err != nil {
			t.Fatalf("ingest row %d: %v", i, err)
		}
	}
	sum, err := is.Close()
	if err != nil {
		t.Fatal(err)
	}
	ingestBatches := (ingestRows + streamBatch - 1) / streamBatch
	if sum.Version != uint64(ingestBatches) || sum.TotalRows != ingestRows {
		t.Fatalf("ingest summary = %+v, want version %d", sum, ingestBatches)
	}

	// Phase 2: unary training under load; SIGKILL lands while batches are
	// in flight, somewhere inside ApplyBatch's append-then-apply window.
	var acked, sent atomic.Int64
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		for i := 0; ; i++ {
			sent.Add(1)
			res, err := c.Train(context.Background(), trainReqIdx(i))
			if err != nil {
				return // the process is gone
			}
			if want := uint64(ingestBatches) + uint64(acked.Load()) + 1; res.Version != want {
				t.Errorf("train %d acknowledged version %d, want %d", i, res.Version, want)
				return
			}
			acked.Add(1)
		}
	}()
	for acked.Load() < 9 {
		time.Sleep(time.Millisecond)
	}
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	child.Wait()
	<-senderDone
	ackedAtKill, sentAtKill := acked.Load(), sent.Load()
	t.Logf("killed child: %d acked, %d sent", ackedAtKill, sentAtKill)

	// Restart on the SAME address: the client value resumes untouched.
	u, err := url.Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	_, base2 := startChild(t, bin, u.Host, dataDir)
	if base2 != base {
		t.Fatalf("child restarted on %s, want %s", base2, base)
	}

	// Transparent resumption: the same Client rides its retry policy
	// through the recovery window without reconstruction.
	rctx, rcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer rcancel()
	if _, err := c.Predict(rctx, [][]float64{{0.2, 0.8}}); err != nil {
		t.Fatalf("predict through restart: %v", err)
	}
	stats := waitHealthy(t, c)
	v := int64(stats.Version)
	lo, hi := int64(ingestBatches)+ackedAtKill, int64(ingestBatches)+sentAtKill
	if v < lo || v > hi {
		t.Fatalf("recovered version %d outside [acked %d, sent %d]", v, lo, hi)
	}
	if !stats.Durable {
		t.Fatalf("recovered server not durable: %+v", stats)
	}
	if stats.WALError != "" {
		t.Fatalf("recovered server reports WAL error: %q", stats.WALError)
	}
	if stats.WALSeq != stats.Version {
		t.Errorf("wal_seq %d != version %d (record seq must equal snapshot version)", stats.WALSeq, stats.Version)
	}
	var recovered bytes.Buffer
	sv, err := c.Snapshot(context.Background(), &recovered)
	if err != nil || sv != uint64(v) {
		t.Fatalf("snapshot download: version %d, err %v", sv, err)
	}

	// Bit-for-bit: an in-process server replaying exactly the batches the
	// recovered version covers — the 4 ingest chunks, then v-4 unary
	// batches — must serialize identically.
	mirror, err := serve.NewServer(serve.Config{
		Dim: childDim, Classes: childClasses, Shards: childShards, Workers: 2, Seed: childSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := httpapi.NewScalarRecordEncoder(httpapi.ScalarRecordConfig{
		Dim: childDim, Fields: childFields, Lo: 0, Hi: 1, Levels: childLevels, Seed: childSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < ingestRows; start += streamBatch {
		end := min(start+streamBatch, ingestRows)
		var batch serve.Batch
		for i := start; i < end; i++ {
			row := ingestRowIdx(i)
			batch.Train = append(batch.Train, serve.Sample{Class: *row.Label, HV: enc.Encode(row.Features)})
			if row.Symbol != "" {
				batch.Items = append(batch.Items, row.Symbol)
			}
		}
		if _, err := mirror.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < v-int64(ingestBatches); i++ {
		req := trainReqIdx(int(i))
		var batch serve.Batch
		for _, s := range req.Samples {
			batch.Train = append(batch.Train, serve.Sample{Class: s.Label, HV: enc.Encode(s.Features)})
		}
		batch.Items = req.Symbols
		if _, err := mirror.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	var replayed bytes.Buffer
	if _, err := mirror.Snapshot().WriteTo(&replayed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recovered.Bytes(), replayed.Bytes()) {
		t.Fatalf("recovered snapshot (version %d, %d bytes) differs from sequential replay (%d bytes)",
			v, recovered.Len(), replayed.Len())
	}

	// The restarted child keeps accepting durable writes through the same
	// client, continuing the version sequence.
	res, err := c.Train(context.Background(), trainReqIdx(int(v)))
	if err != nil || res.Version != uint64(v)+1 {
		t.Fatalf("train after recovery: %+v, %v", res, err)
	}

	// Checkpoints were configured every 4 batches — at least one landed.
	ckpts, err := filepath.Glob(filepath.Join(dataDir, "ckpt-*.hckp"))
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoint file in data dir (glob err %v)", err)
	}
}
