package client

// Three-process replication e2e: one primary and two replicas, each a real
// hdcserve child on loopback, driven through the multi-endpoint SDK. The
// test asserts the tier's contract end to end — reads served by replicas,
// writes landing only on the primary, a direct replica write surfacing
// not_primary (and the SDK failing over on its hint), and a SIGKILLed
// replica rejoining from its own checkpoint + WAL suffix to serve a
// byte-identical /v1/snapshot at the primary's version.

import (
	"bytes"
	"context"
	"errors"
	"net/url"
	"syscall"
	"testing"
	"time"
)

// waitConverged polls a node's stats until it reports follower role at
// exactly the target version with zero lag.
func waitConverged(t *testing.T, c *Client, version uint64) *StatsResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last *StatsResponse
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		st, err := c.Stats(ctx)
		cancel()
		if err == nil {
			last = st
			if st.Role == "follower" && st.Version == version &&
				st.Replication != nil && st.Replication.FollowerLagSeq == 0 {
				return st
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("replica never converged to version %d (last stats %+v)", version, last)
	return nil
}

// nodeSnapshot downloads one node's snapshot through a direct client.
func nodeSnapshot(t *testing.T, c *Client) (uint64, []byte) {
	t.Helper()
	var buf bytes.Buffer
	v, err := c.Snapshot(context.Background(), &buf)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return v, buf.Bytes()
}

func TestReplicationTierE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process integration test")
	}
	bin := buildHdcserve(t)
	ctx := context.Background()

	pdir, r1dir, r2dir := t.TempDir(), t.TempDir(), t.TempDir()
	_, pbase := startChild(t, bin, "127.0.0.1:0", pdir)
	r1child, r1base := startChild(t, bin, "127.0.0.1:0", r1dir, "-role", "replica", "-primary-url", pbase)
	_, r2base := startChild(t, bin, "127.0.0.1:0", r2dir, "-role", "replica", "-primary-url", pbase)

	// Direct per-node clients for health, convergence, and snapshots.
	direct := func(base string) *Client {
		c, err := New(base, WithRetry(10, 50*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	pc, r1c, r2c := direct(pbase), direct(r1base), direct(r2base)
	waitHealthy(t, pc)
	waitHealthy(t, r1c)
	waitHealthy(t, r2c)

	// The tier client: reads prefer replicas, writes go to the primary.
	tier, err := New(pbase,
		WithReplicas(r1base, r2base),
		WithReadPreference(NearestReplica),
		WithRetry(20, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	// Bulk-load through the tier client's stream (always the primary), then
	// unary trains. Each acked version proves the write landed on the
	// primary: a replica would have refused it with not_primary.
	is, err := tier.Ingest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ingestRows; i++ {
		if err := is.Send(ingestRowIdx(i)); err != nil {
			t.Fatalf("ingest row %d: %v", i, err)
		}
	}
	sum, err := is.Close()
	if err != nil {
		t.Fatal(err)
	}
	version := uint64((ingestRows + streamBatch - 1) / streamBatch)
	if sum.Version != version || sum.TotalRows != ingestRows {
		t.Fatalf("ingest summary = %+v, want version %d", sum, version)
	}
	for i := 0; i < 10; i++ {
		res, err := tier.Train(ctx, trainReqIdx(i))
		if err != nil {
			t.Fatalf("train %d: %v", i, err)
		}
		version++
		if res.Version != version {
			t.Fatalf("train %d acked version %d, want %d", i, res.Version, version)
		}
	}
	if got := tier.PrimaryURL(); got != pbase {
		t.Fatalf("tier client's primary drifted to %s, want %s", got, pbase)
	}

	// Reads route to replicas: with NearestReplica preference the stats
	// read must be served by a follower, not the primary.
	waitConverged(t, r1c, version)
	waitConverged(t, r2c, version)
	st, err := tier.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "follower" {
		t.Fatalf("tier read served by role %q, want a replica", st.Role)
	}

	// A write aimed directly at a replica surfaces not_primary.
	oneShot, err := New(r2base, WithRetry(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var e *Error
	if _, err := oneShot.Train(ctx, trainReqIdx(0)); !errors.As(err, &e) || e.Code != CodeNotPrimary {
		t.Fatalf("replica write error = %v, want code %s", err, CodeNotPrimary)
	}

	// With retries left, the SDK follows the primary_url hint: a client
	// that only knows a replica fails over and the write lands.
	follow, err := New(r1base, WithRetry(10, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res, err := follow.Train(ctx, trainReqIdx(10))
	if err != nil {
		t.Fatalf("failover train: %v", err)
	}
	version++
	if res.Version != version {
		t.Fatalf("failover train acked version %d, want %d", res.Version, version)
	}
	if got := follow.PrimaryURL(); got != pbase {
		t.Fatalf("failover client adopted %s, want %s", got, pbase)
	}

	// Converged tier: every node serves the same bytes at the same version.
	waitConverged(t, r1c, version)
	waitConverged(t, r2c, version)
	pv, pb := nodeSnapshot(t, pc)
	for name, c := range map[string]*Client{"replica1": r1c, "replica2": r2c} {
		v, b := nodeSnapshot(t, c)
		if v != pv || !bytes.Equal(b, pb) {
			t.Fatalf("%s snapshot (version %d, %d bytes) differs from primary (version %d, %d bytes)",
				name, v, len(b), pv, len(pb))
		}
	}

	// Kill replica 1 outright, keep writing, then restart it on the same
	// address with the same data dir: it must recover from its own
	// checkpoint + WAL suffix, catch up over the stream, and converge
	// byte-identically again.
	if err := r1child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	r1child.Wait()
	for i := 0; i < 10; i++ {
		if _, err := tier.Train(ctx, trainReqIdx(11+i)); err != nil {
			t.Fatalf("train with a dead replica: %v", err)
		}
		version++
	}
	// Tier reads keep working while replica 1 is down.
	if _, err := tier.Predict(ctx, [][]float64{{0.3, 0.7}}); err != nil {
		t.Fatalf("predict with a dead replica: %v", err)
	}

	u, err := url.Parse(r1base)
	if err != nil {
		t.Fatal(err)
	}
	_, r1base2 := startChild(t, bin, u.Host, r1dir, "-role", "replica", "-primary-url", pbase)
	if r1base2 != r1base {
		t.Fatalf("replica restarted on %s, want %s", r1base2, r1base)
	}
	st = waitConverged(t, r1c, version)
	if !st.Durable || st.WALError != "" {
		t.Fatalf("rejoined replica not durable: %+v", st)
	}
	pv, pb = nodeSnapshot(t, pc)
	v, b := nodeSnapshot(t, r1c)
	if pv != version || v != pv || !bytes.Equal(b, pb) {
		t.Fatalf("rejoined replica snapshot (version %d, %d bytes) differs from primary (version %d, %d bytes)",
			v, len(b), pv, len(pb))
	}
}
