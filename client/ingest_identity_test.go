package client

import (
	"bytes"
	"fmt"
	"testing"

	"hdcirc/internal/httpapi"
	"hdcirc/internal/serve"
)

// ingestRowIdx is a deterministic bulk-load row: labeled sample always,
// plus an item symbol on every 10th row.
func ingestRowIdx(i int) IngestRow {
	label := i % 3
	f := float64(i%20) / 20
	row := IngestRow{Label: &label, Features: []float64{f, 1 - f}}
	if i%10 == 0 {
		row.Symbol = fmt.Sprintf("ing/%d", (i/10)%7)
	}
	return row
}

// TestStreamingIngest10kBitIdentical is the acceptance contract for the
// bulk path: 10k rows streamed through the client SDK must leave the
// server in a state bit-identical to a sequential in-process ApplyBatch
// replay of the same rows with the same coalescing boundaries.
func TestStreamingIngest10kBitIdentical(t *testing.T) {
	const (
		rows       = 10_000
		coalesce   = 256
		dim        = 512
		seed       = 7
		numClasses = 3
	)
	b := newBackend(t, func(c *httpapi.Config) { c.StreamBatch = coalesce })
	c := b.client(t)

	is, err := c.Ingest(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := is.Send(ingestRowIdx(i)); err != nil {
			t.Fatalf("send row %d: %v", i, err)
		}
	}
	sum, err := is.Close()
	if err != nil {
		t.Fatal(err)
	}
	wantBatches := (rows + coalesce - 1) / coalesce
	if sum.TotalRows != rows || sum.Batches != wantBatches || sum.Version != uint64(wantBatches) {
		t.Fatalf("summary = %+v, want %d rows in %d batches", sum, rows, wantBatches)
	}

	// Sequential in-process replay: same server config, same encoder, same
	// rows, same batch boundaries, applied through ApplyBatch directly.
	mirror, err := serve.NewServer(serve.Config{Dim: dim, Classes: numClasses, Shards: 2, Workers: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := httpapi.NewScalarRecordEncoder(httpapi.ScalarRecordConfig{
		Dim: dim, Fields: 2, Lo: 0, Hi: 1, Levels: 16, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < rows; start += coalesce {
		end := start + coalesce
		if end > rows {
			end = rows
		}
		var batch serve.Batch
		for i := start; i < end; i++ {
			row := ingestRowIdx(i)
			batch.Train = append(batch.Train, serve.Sample{Class: *row.Label, HV: enc.Encode(row.Features)})
			if row.Symbol != "" {
				batch.Items = append(batch.Items, row.Symbol)
			}
		}
		if _, err := mirror.ApplyBatch(batch); err != nil {
			t.Fatalf("mirror batch at %d: %v", start, err)
		}
	}

	var viaWire, viaReplay bytes.Buffer
	if _, err := b.api.Server().Snapshot().WriteTo(&viaWire); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.Snapshot().WriteTo(&viaReplay); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaWire.Bytes(), viaReplay.Bytes()) {
		t.Fatalf("streamed ingest (%d bytes) diverged from sequential ApplyBatch replay (%d bytes)",
			viaWire.Len(), viaReplay.Len())
	}

	// And the served predictions agree with the replay's, through the wire.
	queries := [][]float64{{0.05, 0.95}, {0.5, 0.5}, {0.95, 0.05}}
	res, err := c.Predict(t.Context(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		class, _ := mirror.Snapshot().Predict(enc.Encode(q))
		if res.Classes[i] != class {
			t.Errorf("query %d: wire %d, replay %d", i, res.Classes[i], class)
		}
	}
}
