package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdcirc/internal/httpapi"
	"hdcirc/internal/serve"
)

// testBackend is the standard in-process fixture: a real protocol-v1
// handler over a real serving core, on a loopback httptest server.
type testBackend struct {
	api *httpapi.API
	ts  *httptest.Server
}

func newBackend(t *testing.T, mutate ...func(*httpapi.Config)) *testBackend {
	t.Helper()
	srv, err := serve.NewServer(serve.Config{Dim: 512, Classes: 3, Shards: 2, Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := httpapi.NewScalarRecordEncoder(httpapi.ScalarRecordConfig{
		Dim: 512, Fields: 2, Lo: 0, Hi: 1, Levels: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := httpapi.Config{Server: srv, Encoder: enc}
	for _, m := range mutate {
		m(&cfg)
	}
	api, err := httpapi.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	return &testBackend{api: api, ts: ts}
}

func (b *testBackend) client(t *testing.T, opts ...Option) *Client {
	t.Helper()
	c, err := New(b.ts.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func trainBody(perClass int) TrainRequest {
	centers := [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}}
	var req TrainRequest
	for class, c := range centers {
		for j := 0; j < perClass; j++ {
			jit := 0.02 * float64(j%5)
			req.Samples = append(req.Samples, Sample{
				Label:    class,
				Features: []float64{c[0] + jit, c[1] - jit},
			})
		}
	}
	req.Symbols = []string{"sensor-a", "sensor-b"}
	return req
}

func TestTypedMethodsRoundTrip(t *testing.T) {
	b := newBackend(t)
	c := b.client(t)
	ctx := t.Context()

	tr, err := c.Train(ctx, trainBody(8))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Version != 1 || tr.Trained != 24 || tr.Items != 2 {
		t.Fatalf("train response: %+v", tr)
	}

	pr, err := c.Predict(ctx, [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	for want, got := range pr.Classes {
		if got != want {
			t.Errorf("query %d classified as %d", want, got)
		}
	}
	class, dist, err := c.PredictOne(ctx, []float64{0.5, 0.9})
	if err != nil || class != 2 || dist != pr.Distances[2] {
		t.Errorf("PredictOne = (%d, %v, %v)", class, dist, err)
	}

	route, err := c.RouteKey(ctx, "user-42")
	if err != nil || route.Shard == nil || *route.Shard < 0 || *route.Shard >= 2 {
		t.Errorf("RouteKey = %+v, %v", route, err)
	}
	found, v, err := c.HasSymbol(ctx, "sensor-a")
	if err != nil || !found || v != 1 {
		t.Errorf("HasSymbol(sensor-a) = %v %d %v", found, v, err)
	}
	if found, _, _ := c.HasSymbol(ctx, "missing"); found {
		t.Error("phantom symbol")
	}
	cl, err := c.Cleanup(ctx, []float64{0.3, 0.3})
	if err != nil || (cl.Symbol != "sensor-a" && cl.Symbol != "sensor-b") {
		t.Errorf("Cleanup = %+v, %v", cl, err)
	}

	st, err := c.Stats(ctx)
	if err != nil || st.Version != 1 || st.Samples != 24 || st.Classes != 3 {
		t.Errorf("Stats = %+v, %v", st, err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || h.Version != 1 {
		t.Errorf("Health = %+v, %v", h, err)
	}

	var snap bytes.Buffer
	sv, err := c.Snapshot(ctx, &snap)
	if err != nil || sv != 1 {
		t.Fatalf("Snapshot = %d, %v", sv, err)
	}
	var direct bytes.Buffer
	if _, err := b.api.Server().Snapshot().WriteTo(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), direct.Bytes()) {
		t.Fatal("downloaded snapshot differs from the server's own serialization")
	}
}

func TestStructuredErrorsSurface(t *testing.T) {
	b := newBackend(t)
	c := b.client(t)

	_, err := c.Predict(t.Context(), [][]float64{{0.5}}) // wrong arity
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error is not a *client.Error: %v", err)
	}
	if apiErr.Code != CodeInvalidRequest {
		t.Errorf("code = %s", apiErr.Code)
	}

	_, err = c.Train(t.Context(), TrainRequest{})
	if !errors.As(err, &apiErr) || apiErr.Code != CodeInvalidRequest {
		t.Errorf("empty train error = %v", err)
	}
}

// flakyProxy fronts a backend, failing the first n requests with the given
// envelope before passing through.
func flakyProxy(t *testing.T, target http.Handler, n int32, e *Error) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			if e.Code == CodeOverloaded {
				w.Header().Set("Retry-After", "1")
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(e.HTTPStatus())
			json.NewEncoder(w).Encode(map[string]any{"error": e})
			return
		}
		target.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func TestRetryPolicy(t *testing.T) {
	b := newBackend(t)

	// 429s are retried for everything — train included (a rejected request
	// was never admitted).
	overload := &Error{Code: CodeOverloaded, Message: "full", RetryAfterMS: 1}
	ts, calls := flakyProxy(t, b.api, 2, overload)
	c, err := New(ts.URL, WithRetry(4, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Train(t.Context(), trainBody(1)); err != nil {
		t.Fatalf("train through 429s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("429 path used %d calls, want 3", got)
	}

	// 5xx: read-plane calls are retried…
	unavailable := &Error{Code: CodeUnavailable, Message: "restarting"}
	ts2, calls2 := flakyProxy(t, b.api, 2, unavailable)
	c2, _ := New(ts2.URL, WithRetry(4, time.Millisecond))
	if _, err := c2.Predict(t.Context(), [][]float64{{0.1, 0.1}}); err != nil {
		t.Fatalf("predict through 503s: %v", err)
	}
	if got := calls2.Load(); got != 3 {
		t.Errorf("503 predict used %d calls, want 3", got)
	}

	// …but a write that died on a 5xx is NOT blindly replayed.
	ts3, calls3 := flakyProxy(t, b.api, 1, unavailable)
	c3, _ := New(ts3.URL, WithRetry(4, time.Millisecond))
	if _, err := c3.Train(t.Context(), trainBody(1)); err == nil {
		t.Fatal("train retried through a 5xx")
	}
	if got := calls3.Load(); got != 1 {
		t.Errorf("5xx train used %d calls, want 1", got)
	}

	// Retry budget exhausts with the last fault attached.
	ts4, _ := flakyProxy(t, b.api, 99, overload)
	c4, _ := New(ts4.URL, WithRetry(3, time.Millisecond))
	_, err = c4.Predict(t.Context(), [][]float64{{0.1, 0.1}})
	var apiErr *Error
	if err == nil || !errors.As(err, &apiErr) || apiErr.Code != CodeOverloaded {
		t.Fatalf("exhausted retry error = %v", err)
	}
}

func TestCoalescerMergesFanIn(t *testing.T) {
	var wireCalls atomic.Int32
	b := newBackend(t)
	counted := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/predict" {
			wireCalls.Add(1)
		}
		b.api.ServeHTTP(w, r)
	}))
	t.Cleanup(counted.Close)
	c, err := New(counted.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Train(t.Context(), trainBody(8)); err != nil {
		t.Fatal(err)
	}

	co := c.NewCoalescer(64, 20*time.Millisecond)
	queries := [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}}
	const callers = 24
	results := make([]int, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			class, _, _, err := co.Predict(t.Context(), queries[g%3])
			if err != nil {
				t.Errorf("caller %d: %v", g, err)
				return
			}
			results[g] = class
		}()
	}
	wg.Wait()
	for g := 0; g < callers; g++ {
		if results[g] != g%3 {
			t.Errorf("caller %d got class %d, want %d", g, results[g], g%3)
		}
	}
	if got := wireCalls.Load(); got >= callers {
		t.Errorf("coalescer made %d wire calls for %d callers", got, callers)
	}

	// Size-triggered flush: maxBatch callers go out as one request.
	wireCalls.Store(0)
	co2 := c.NewCoalescer(8, time.Hour) // only the size trigger can flush
	var wg2 sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if _, _, _, err := co2.Predict(t.Context(), queries[g%3]); err != nil {
				t.Errorf("caller %d: %v", g, err)
			}
		}()
	}
	wg2.Wait()
	if got := wireCalls.Load(); got != 1 {
		t.Errorf("size-triggered flush made %d wire calls, want 1", got)
	}
}

func TestPredictStreamMatchesUnary(t *testing.T) {
	b := newBackend(t, func(c *httpapi.Config) { c.StreamBatch = 4 })
	c := b.client(t)
	ctx := t.Context()
	if _, err := c.Train(ctx, trainBody(8)); err != nil {
		t.Fatal(err)
	}

	rows := make([][]float64, 37) // deliberately not a batch multiple
	for i := range rows {
		rows[i] = []float64{float64(i%10) / 10, float64((i*3)%10) / 10}
	}
	streamed, err := c.PredictAll(ctx, rows)
	if err != nil {
		t.Fatal(err)
	}
	unary, err := c.Predict(ctx, rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if streamed[i].Class != unary.Classes[i] || streamed[i].Distance != unary.Distances[i] {
			t.Errorf("row %d: stream (%d, %v) vs unary (%d, %v)",
				i, streamed[i].Class, streamed[i].Distance, unary.Classes[i], unary.Distances[i])
		}
	}
}

func TestIngestStreamFaultSurfacesResumePoint(t *testing.T) {
	b := newBackend(t, func(c *httpapi.Config) { c.StreamBatch = 2 })
	c := b.client(t)
	is, err := c.Ingest(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	label := 1
	good := IngestRow{Label: &label, Features: []float64{0.1, 0.2}}
	bad := IngestRow{Label: &label, Features: []float64{0.1}} // wrong arity
	for i := 0; i < 2; i++ {
		if err := is.Send(good); err != nil {
			t.Fatal(err)
		}
	}
	if err := is.Send(bad); err != nil {
		t.Fatal(err) // buffered client-side; fault lands at Close
	}
	_, err = is.Close()
	var apiErr *Error
	if err == nil || !errors.As(err, &apiErr) || apiErr.Code != CodeInvalidRequest {
		t.Fatalf("Close error = %v", err)
	}
	rows, version := is.Applied()
	if rows != 2 || version != 1 {
		t.Errorf("Applied = (%d, %d), want (2, 1): the complete batch before the fault is durable", rows, version)
	}
}
