package client

// Circuit breaker for the write plane. A degraded server answers every
// write with a 503 (read_only / unavailable) until an operator or its
// retry probe heals it; hammering it with doomed train batches wastes
// sockets on both sides and hides the real state from the caller. The
// breaker counts consecutive write-plane 503s, and past the threshold it
// fails writes fast with ErrCircuitOpen. After the cooldown the next
// write half-opens the circuit: one healthz ?plane=write probe decides
// whether writes flow again or the circuit snaps shut for another
// cooldown. Transport faults do NOT count — a connection that died
// mid-flight says nothing about the write plane, and counting it would
// trip the breaker during ordinary restarts.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ErrCircuitOpen is returned by write-plane calls while the circuit
// breaker is open: the server has answered too many consecutive writes
// with 503 and the cooldown has not produced a healthy write plane yet.
// The request was never sent.
var ErrCircuitOpen = errors.New("client: circuit breaker open (server write plane unavailable)")

type breaker struct {
	threshold int           // consecutive write-plane 503s that trip it; <= 0 disables
	cooldown  time.Duration // how long to fail fast before half-opening

	mu          sync.Mutex
	consecutive int
	open        bool
	retryAt     time.Time // when open: earliest half-open probe
	probing     bool      // a half-open probe is in flight; others fail fast
}

// allow gates one write-plane call against the endpoint at base. nil
// means send it; ErrCircuitOpen means fail fast. In the half-open state
// exactly one caller probes that endpoint's write-plane health; concurrent
// writes keep failing fast until the probe settles the circuit.
func (b *breaker) allow(ctx context.Context, c *Client, base string) error {
	if b == nil || b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	if !b.open {
		b.mu.Unlock()
		return nil
	}
	if time.Now().Before(b.retryAt) || b.probing {
		b.mu.Unlock()
		return ErrCircuitOpen
	}
	b.probing = true
	b.mu.Unlock()

	healthy := c.probeWritePlane(ctx, base)

	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if healthy {
		b.open = false
		b.consecutive = 0
		return nil
	}
	b.retryAt = time.Now().Add(b.cooldown)
	return fmt.Errorf("%w: write plane still unhealthy at half-open probe", ErrCircuitOpen)
}

// failure records one write-plane 503 and trips the circuit at the
// threshold.
func (b *breaker) failure() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if !b.open && b.consecutive >= b.threshold {
		b.open = true
		b.retryAt = time.Now().Add(b.cooldown)
	}
}

// success resets the circuit after any write the server accepted.
func (b *breaker) success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.open = false
}

// writePlaneFault reports whether a response counts toward tripping: the
// structured 503s a degraded or closed server answers writes with,
// including a follower that lost its primary (follower_read_only) — that
// node cannot admit writes until an operator promotes it or re-points it.
func writePlaneFault(err *Error) bool {
	return err != nil && (err.Code == CodeReadOnly || err.Code == CodeUnavailable || err.Code == CodeFollowerReadOnly)
}

// probeWritePlane asks one endpoint's healthz about the write plane
// specifically: one attempt, no retries — the point of the half-open
// state is a cheap, decisive answer.
func (c *Client) probeWritePlane(ctx context.Context, base string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/healthz?plane=write", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	drain(resp)
	return resp.StatusCode == http.StatusOK
}
