package client

// Lifecycle tests: cancellation and deadlines must reach every blocking
// path in the client — a coalesced flush in flight, a stream Recv with no
// response coming — instead of stranding goroutines on channels nothing
// will close.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// stuckBackend serves requests that block until the test releases them (or
// the request's own context dies), signalling each arrival on entered.
func stuckBackend(t *testing.T) (url string, entered chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	entered = make(chan struct{}, 8)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		select {
		case <-release:
		case <-r.Context().Done():
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(func() { close(release); ts.Close() })
	return ts.URL, entered
}

// Cancelling the coalescer's base context must abort an in-flight flush
// and fail the waiting callers promptly — even callers whose own Predict
// context is still alive, since the wire request runs under the base
// context, not theirs.
func TestCoalescerCancellationMidFlush(t *testing.T) {
	url, entered := stuckBackend(t)
	c, err := New(url)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	co := c.NewCoalescerContext(ctx, 1, time.Hour) // maxBatch 1: flush on first call

	errc := make(chan error, 1)
	go func() {
		_, _, _, err := co.Predict(context.Background(), []float64{0.1, 0.1})
		errc <- err
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flush never reached the wire")
	}
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Predict after base-context cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Predict still blocked after the coalescer's context was cancelled")
	}
}

// WithFlushTimeout bounds each wire flush on its own, with no caller or
// base-context deadline involved.
func TestCoalescerFlushTimeout(t *testing.T) {
	url, entered := stuckBackend(t)
	c, err := New(url)
	if err != nil {
		t.Fatal(err)
	}
	co := c.NewCoalescer(1, time.Hour, WithFlushTimeout(30*time.Millisecond))

	errc := make(chan error, 1)
	go func() {
		_, _, _, err := co.Predict(context.Background(), []float64{0.1, 0.1})
		errc <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flush never reached the wire")
	}
	select {
	case err := <-errc:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Predict with expired flush timeout = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Predict still blocked past the flush timeout")
	}
}

// When the dial itself fails, the open handshake surfaces the transport
// fault synchronously from PredictStream (after its open retries) — the
// caller never receives a stream whose Recv would hang or fail later.
func TestPredictStreamOpenSurfacesDialFailure(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // every dial to url now fails outright

	c, err := New(url, WithRetry(1, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ps, err := c.PredictStream(t.Context())
		if err == nil {
			ps.CloseSend()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || errors.Is(err, io.EOF) {
			t.Fatalf("PredictStream open after dial failure = %v, want a transport error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PredictStream open hung after the dial failed")
	}
}

// Recv is bounded by the context the stream was opened with: cancelling it
// while the server sits on the request unblocks the receiver.
func TestPredictStreamRecvHonorsContext(t *testing.T) {
	url, entered := stuckBackend(t)
	c, err := New(url)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ps, err := c.PredictStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ps.Recv()
		done <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("stream request never reached the wire")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Recv after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked after the stream context was cancelled")
	}
}
