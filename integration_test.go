package hdcirc

// End-to-end integration tests: golden determinism across the whole stack
// and cross-module pipelines that the unit tests cover only in isolation.

import (
	"bytes"
	"math"
	"testing"

	"hdcirc/internal/core"
	"hdcirc/internal/dataset"
	"hdcirc/internal/experiments"
)

// TestGoldenDeterminism pins the full-stack determinism contract: the same
// seed must reproduce the exact accuracy on the gesture task, run after
// run, machine after machine. If this test fails after a refactor, the
// repository's recorded EXPERIMENTS.md numbers are no longer reproducible
// and must be regenerated.
func TestGoldenDeterminism(t *testing.T) {
	cfg := experiments.DefaultClassifyConfig()
	cfg.D = 2048
	g := dataset.DefaultGestureConfig("Knot Tying")
	g.TrainPerGesture = 10
	g.TestPerGesture = 6
	ds := dataset.GenGestures(g, experiments.DefaultSeed)
	a := experiments.RunGestureClassification(ds, core.KindCircular, cfg)
	b := experiments.RunGestureClassification(ds, core.KindCircular, cfg)
	if a.Accuracy != b.Accuracy {
		t.Fatalf("same-seed accuracies differ: %v vs %v", a.Accuracy, b.Accuracy)
	}
	// A different seed must (generically) change the value — guards
	// against a silently ignored seed.
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	c := experiments.RunGestureClassification(ds, core.KindCircular, cfg2)
	if a.Accuracy == c.Accuracy {
		t.Log("different seed produced identical accuracy (possible but unlikely); not failing")
	}
}

// TestTrainSerializeDeployPredict is the deployment story end to end:
// train on the host, serialize the model and encoders' basis sets, reload,
// and verify identical predictions.
func TestTrainSerializeDeployPredict(t *testing.T) {
	const d = 4096
	stream := NewStream(77)
	basis := NewBasis(Circular, 24, d, 0.05, stream)
	enc := NewCircularEncoder(basis, 2*math.Pi)

	clf := NewClassifier(3, d, 78)
	jitter := NewStream(79)
	centers := []float64{0.5, 2.5, 4.5}
	for class, c := range centers {
		for i := 0; i < 12; i++ {
			clf.Add(class, enc.Encode(c+(jitter.Float64()-0.5)*0.4))
		}
	}

	// Host → wire → device.
	var basisBuf, modelBuf bytes.Buffer
	if _, err := basis.WriteTo(&basisBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := clf.WriteTo(&modelBuf); err != nil {
		t.Fatal(err)
	}
	deployedBasis, err := ReadBasis(&basisBuf)
	if err != nil {
		t.Fatal(err)
	}
	deployedEnc := NewCircularEncoder(deployedBasis, 2*math.Pi)
	deployedClf, err := ReadClassifier(&modelBuf, 78)
	if err != nil {
		t.Fatal(err)
	}

	for q := 0.0; q < 2*math.Pi; q += 0.37 {
		hostPred, _ := clf.Predict(enc.Encode(q))
		devPred, _ := deployedClf.Predict(deployedEnc.Encode(q))
		if hostPred != devPred {
			t.Fatalf("deployment diverges at %v: host %d vs device %d", q, hostPred, devPred)
		}
	}
}

// TestCircularPipelineBeatsLevelAtTheSeam isolates the paper's core
// mechanism in one compact integration test: a classifier whose classes
// straddle the wrap point.
func TestCircularPipelineBeatsLevelAtTheSeam(t *testing.T) {
	const d = 8192
	run := func(kind Kind) float64 {
		stream := NewStream(88)
		var enc FieldEncoder
		basis := NewBasis(kind, 32, d, 0, stream)
		if kind == Circular {
			enc = NewCircularEncoder(basis, 2*math.Pi)
		} else {
			enc = NewScalarEncoder(basis, 0, 2*math.Pi)
		}
		clf := NewClassifier(2, d, 89)
		jitter := NewStream(90)
		// Class 0 straddles the seam; class 1 sits at π.
		sample := func(center float64) float64 {
			x := center + (jitter.Float64()-0.5)*0.8
			return math.Mod(x+2*math.Pi, 2*math.Pi)
		}
		for i := 0; i < 40; i++ {
			clf.Add(0, enc.Encode(sample(0)))
			clf.Add(1, enc.Encode(sample(math.Pi)))
		}
		correct, total := 0, 0
		for i := 0; i < 60; i++ {
			p0, _ := clf.Predict(enc.Encode(sample(0)))
			p1, _ := clf.Predict(enc.Encode(sample(math.Pi)))
			if p0 == 0 {
				correct++
			}
			if p1 == 1 {
				correct++
			}
			total += 2
		}
		return float64(correct) / float64(total)
	}
	circ := run(Circular)
	lvl := run(Level)
	if circ <= lvl {
		t.Errorf("circular (%v) does not beat level (%v) on a seam-straddling class", circ, lvl)
	}
	if circ < 0.95 {
		t.Errorf("circular accuracy %v unexpectedly low on a separable task", circ)
	}
}

// TestSDMAsCleanupForClassifier couples the SDM substrate with the
// classifier: prototypes stored in SDM are recoverable from noisy reads
// and still classify correctly.
func TestSDMAsCleanupForClassifier(t *testing.T) {
	const d = 1024
	stream := NewStream(91)
	protos := make([]*Vector, 4)
	mem := NewSDM(DefaultSDMConfig(d))
	for i := range protos {
		protos[i] = RandomVector(d, stream)
		mem.Write(protos[i], protos[i])
	}
	noise := NewStream(92)
	for i, p := range protos {
		cue := p.Clone()
		for f := 0; f < d/8; f++ {
			cue.FlipBit(noise.Intn(d))
		}
		recalled, _, ok := mem.ReadIterative(cue, 8)
		if !ok {
			t.Fatalf("prototype %d: no activations", i)
		}
		if dd := recalled.Distance(p); dd > 0.02 {
			t.Errorf("prototype %d: cleanup distance %v", i, dd)
		}
	}
}
