package hdcirc

import (
	"fmt"
	"testing"
)

func TestFacadeDistanceBoundedAndNearestPruned(t *testing.T) {
	src := NewStream(4)
	a := RandomVector(1000, src)
	b := RandomVector(1000, src)
	want := a.HammingDistance(b)
	if hd, within := DistanceBounded(a, b, 1000); !within || hd != want {
		t.Fatalf("DistanceBounded = (%d,%v), want (%d,true)", hd, within, want)
	}
	if _, within := DistanceBounded(a, b, want-1); within {
		t.Fatal("DistanceBounded claimed within below the true distance")
	}
	vs := []*Vector{b, a.Clone()}
	if idx, hd := NearestPruned(a, vs, 1001); idx != 1 || hd != 0 {
		t.Fatalf("NearestPruned = (%d,%d), want (1,0)", idx, hd)
	}
	if idx, hd := NearestPruned(a, vs[:1], want/2); idx != -1 || hd != want/2 {
		t.Fatalf("NearestPruned under bound = (%d,%d), want (-1,%d)", idx, hd, want/2)
	}
}

func TestFacadeAssocIndexExactMode(t *testing.T) {
	const d, n = 512, 300
	src := NewStream(9)
	vs := make([]*Vector, n)
	for i := range vs {
		vs[i] = RandomVector(d, src)
	}
	cfg := DefaultIndexConfig()
	cfg.Candidates = n // exact mode
	ix := NewAssocIndex(vs, cfg)
	if !ix.Exact() {
		t.Fatal("C == n should be exact")
	}
	for i := 0; i < 40; i++ {
		q := RandomVector(d, src)
		wi, wh := Nearest(q, vs)
		if gi, gh := ix.Nearest(q); gi != wi || gh != wh {
			t.Fatalf("query %d: index (%d,%d), linear (%d,%d)", i, gi, gh, wi, wh)
		}
	}
}

func TestFacadeNewIndexedItemMemory(t *testing.T) {
	const d, n = 512, 400
	cfg := DefaultIndexConfig()
	cfg.MinSize = 100
	cfg.Candidates = 1 << 20 // exact
	im := NewIndexedItemMemory(d, 7, cfg)
	plain := NewItemMemory(d, 7)
	for i := 0; i < n; i++ {
		sym := fmt.Sprintf("s/%d", i)
		im.Get(sym)
		plain.Get(sym)
	}
	src := NewStream(11)
	for i := 0; i < 40; i++ {
		q := RandomVector(d, src)
		ws, wsim, _ := plain.Lookup(q)
		gs, gsim, _ := im.Lookup(q)
		if gs != ws || gsim != wsim {
			t.Fatalf("query %d: indexed (%q,%v), plain (%q,%v)", i, gs, gsim, ws, wsim)
		}
	}
}

func TestFacadeServerIndexConfig(t *testing.T) {
	ixCfg := DefaultIndexConfig()
	ixCfg.MinSize = 50
	ixCfg.Candidates = 1 << 20
	srv, err := NewServer(ServerConfig{Dim: 256, Classes: 4, Seed: 3, Index: &ixCfg})
	if err != nil {
		t.Fatal(err)
	}
	var b ServerBatch
	for i := 0; i < 200; i++ {
		b.Items = append(b.Items, fmt.Sprintf("item/%d", i))
	}
	snap, err := srv.ApplyBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	hv, ok := snap.Item("item/42")
	if !ok {
		t.Fatal("interned item missing")
	}
	if sym, _, ok := snap.Lookup(hv); !ok || sym != "item/42" {
		t.Fatalf("indexed snapshot lookup got (%q,%v)", sym, ok)
	}
}
