// Command hdcload is the SLO-proving load harness for serving protocol
// v1: it replays scenario workloads (internal/scenario) against a server
// through the client SDK and reports latency distributions, throughput
// and a per-error-code breakdown as machine-readable JSON.
//
//	go run ./cmd/hdcload                       # self-serve all scenarios
//	go run ./cmd/hdcload -scenario language -mode open -rate 500,2000
//	go run ./cmd/hdcload -target http://127.0.0.1:8080 -scenario language
//
// Two scheduling disciplines (internal/loadgen): -mode closed runs a
// fixed fleet of synchronous clients and measures capacity; -mode open
// schedules arrivals at -rate per second and measures each latency from
// the request's scheduled arrival time, so a stalled server inflates the
// tail instead of silently suppressing samples (coordinated omission).
// -workers sweeps closed-loop fleet sizes; -rate sweeps open-loop
// arrival rates. An open-loop sweep over 2+ rates additionally distills
// a per-scenario p99 knee into the report (see -knee-factor): the
// highest swept rate the server absorbs before queueing collapse
// inflates the tail, with the full rate/p99 curve alongside it.
//
// Each scenario first runs a calibration pass — bulk-ingest of the
// training split over /v1/ingest:stream, bulk prediction of the test
// split over /v1/predict:stream — and asserts the scenario's accuracy
// floor, so a server that stops learning fails the harness before any
// load numbers are produced. The load phases then mix unary predicts
// (reads) and single-sample train batches (writes) per -read-ratio.
//
// With -overload the harness deliberately saturates a tightly-gated
// endpoint (its own gated listener in self-serve mode, the -target
// server otherwise) and reports how admission control sheds the excess:
// under -strict-overload every shed request must be a structured 429
// carrying a Retry-After hint — any other error class fails the run.
// -max-p99 turns the report into a gate: a nominal-phase p99 above the
// budget exits non-zero. Both gates together are the CI smoke leg.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hdcirc/client"
	"hdcirc/internal/httpapi"
	"hdcirc/internal/loadgen"
	"hdcirc/internal/scenario"
	"hdcirc/internal/serve"
)

// latencySummary is the wire form of one latency distribution, in
// microseconds for human-diffable reports.
type latencySummary struct {
	P50  float64 `json:"p50_us"`
	P90  float64 `json:"p90_us"`
	P99  float64 `json:"p99_us"`
	P999 float64 `json:"p999_us"`
	Mean float64 `json:"mean_us"`
	Max  float64 `json:"max_us"`
}

func summarize(h *loadgen.Hist) latencySummary {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return latencySummary{
		P50:  us(h.Quantile(0.5)),
		P90:  us(h.Quantile(0.9)),
		P99:  us(h.Quantile(0.99)),
		P999: us(h.Quantile(0.999)),
		Mean: us(h.Mean()),
		Max:  us(h.Max()),
	}
}

// runReport is one load phase in the JSON report.
type runReport struct {
	Scenario         string            `json:"scenario"`
	Phase            string            `json:"phase"` // nominal | overload
	Mode             string            `json:"mode"`
	WorkersRequested int               `json:"workers_requested"`
	WorkersEffective int               `json:"workers_effective"`
	Rate             float64           `json:"rate_rps,omitempty"`
	DurationMS       int64             `json:"duration_ms"`
	Requests         uint64            `json:"requests"`
	Success          uint64            `json:"success"`
	ThroughputRPS    float64           `json:"throughput_rps"`
	Latency          latencySummary    `json:"latency_us"`
	Errors           map[string]uint64 `json:"errors,omitempty"`
}

// scenarioReport is one scenario's calibration summary.
type scenarioReport struct {
	Name          string  `json:"name"`
	Dim           int     `json:"dim"`
	Classes       int     `json:"classes"`
	Fields        int     `json:"fields"`
	TrainRows     int     `json:"train_rows"`
	TestRows      int     `json:"test_rows"`
	Accuracy      float64 `json:"accuracy"`
	AccuracyFloor float64 `json:"accuracy_floor"`
}

// kneeReport distills one scenario's open-loop rate sweep into its p99
// knee: the highest swept arrival rate whose success p99 stays within
// -knee-factor of the slowest rate's p99. Rates past the knee have tipped
// the server into queueing collapse — open-loop latency there measures
// the backlog, not the service. The full sweep curve rides along so a
// trajectory diff can see the knee move, not just where it landed.
type kneeReport struct {
	Scenario string `json:"scenario"`
	// Rates and P99US are the sweep curve in ascending rate order;
	// SuccessRPS is the throughput actually served at each rate.
	Rates      []float64 `json:"rates_rps"`
	P99US      []float64 `json:"p99_us"`
	SuccessRPS []float64 `json:"success_rps"`
	KneeFactor float64   `json:"knee_factor"`
	KneeRate   float64   `json:"knee_rate_rps"`
	KneeP99US  float64   `json:"knee_p99_us"`
	// Bracketed is false when even the top swept rate held its p99 under
	// the factor — the sweep never found the knee and KneeRate is only a
	// lower bound.
	Bracketed bool `json:"bracketed"`
}

// report is the full BENCH_load.json document.
type report struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Target     string           `json:"target"`
	ReadRatio  float64          `json:"read_ratio"`
	Scenarios  []scenarioReport `json:"scenarios"`
	Runs       []runReport      `json:"runs"`
	Knees      []kneeReport     `json:"knees,omitempty"`
}

// options is the flag surface.
type options struct {
	target          string
	scenarios       string
	mode            string
	workers         string
	rates           string
	duration        time.Duration
	readRatio       float64
	overload        bool
	overloadWorkers int
	overloadBatch   int
	gateInflight    int
	gateQueue       int
	maxP99          time.Duration
	strictOverload  bool
	kneeFactor      float64
	out             string
}

func main() {
	var o options
	flag.StringVar(&o.target, "target", "", "drive an external server at this base URL (start it with the matching hdcserve -scenario); empty = self-serve in-process")
	flag.StringVar(&o.scenarios, "scenario", "all", "comma-separated scenario names, or all ("+strings.Join(scenario.Names(), ", ")+"); -target mode takes exactly one")
	flag.StringVar(&o.mode, "mode", "closed", "scheduling discipline: closed (capacity) or open (fixed arrival rate, coordinated-omission-safe)")
	flag.StringVar(&o.workers, "workers", "8", "closed-loop fleet sizes to sweep (comma-separated); first value caps open-loop in-flight requests")
	flag.StringVar(&o.rates, "rate", "500", "open-loop arrival rates per second to sweep (comma-separated)")
	flag.DurationVar(&o.duration, "duration", 3*time.Second, "scheduling window per load phase")
	flag.Float64Var(&o.readRatio, "read-ratio", 0.9, "fraction of load-phase requests that are unary predicts; the rest are single-sample train batches")
	flag.BoolVar(&o.overload, "overload", true, "after nominal phases, deliberately saturate admission control and report the shed traffic")
	flag.IntVar(&o.overloadWorkers, "overload-workers", 64, "closed-loop fleet size for the overload phase")
	flag.IntVar(&o.overloadBatch, "overload-batch", 64, "queries per batch-predict request in the overload phase; batches cost real handler time, so arrivals stack up at the gate even on one CPU")
	flag.IntVar(&o.gateInflight, "gate-inflight", 2, "self-serve overload endpoint: max in-flight model requests")
	flag.IntVar(&o.gateQueue, "gate-queue", 2, "self-serve overload endpoint: max queued waiters before 429s")
	flag.DurationVar(&o.maxP99, "max-p99", 0, "fail (exit 1) if any nominal phase's success p99 exceeds this budget (0 = report only)")
	flag.BoolVar(&o.strictOverload, "strict-overload", false, "fail (exit 1) unless every overload-phase error is a structured 429 with a Retry-After hint")
	flag.Float64Var(&o.kneeFactor, "knee-factor", 3.0, "open-loop sweeps with 2+ rates: the p99 knee is the highest rate whose p99 stays within this factor of the slowest rate's p99")
	flag.StringVar(&o.out, "o", "-", "report path (- = stdout)")
	flag.Parse()

	if err := run(&o); err != nil {
		fmt.Fprintf(os.Stderr, "hdcload: %v\n", err)
		os.Exit(1)
	}
}

func run(o *options) error {
	names := scenario.Names()
	if o.scenarios != "all" {
		names = strings.Split(o.scenarios, ",")
	}
	if o.target != "" && len(names) != 1 {
		return errors.New("-target mode drives exactly one -scenario (the one the server hosts)")
	}
	mode := loadgen.Mode(o.mode)
	if mode != loadgen.ModeClosed && mode != loadgen.ModeOpen {
		return fmt.Errorf("unknown -mode %q", o.mode)
	}
	workers, err := parseInts(o.workers)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	rates, err := parseFloats(o.rates)
	if err != nil {
		return fmt.Errorf("-rate: %w", err)
	}

	rep := &report{
		Schema:     "hdcload/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Target:     o.target,
		ReadRatio:  o.readRatio,
	}
	if o.target == "" {
		rep.Target = "self-serve"
	}

	ctx := context.Background()
	var violations []string
	for _, name := range names {
		sc, err := scenario.Build(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		if err := runScenario(ctx, o, mode, workers, rates, sc, rep, &violations); err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}

	if mode == loadgen.ModeOpen && len(rates) >= 2 {
		extractKnees(rep, o.kneeFactor)
	}

	if err := writeReport(o.out, rep); err != nil {
		return err
	}
	if len(violations) > 0 {
		return fmt.Errorf("SLO gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}

// runScenario calibrates one scenario and drives its load phases,
// appending to the report and collecting gate violations.
func runScenario(ctx context.Context, o *options, mode loadgen.Mode, workers []int, rates []float64, sc *scenario.Scenario, rep *report, violations *[]string) error {
	nominalURL, overloadURL := o.target, o.target
	if o.target == "" {
		stop, nurl, ourl, err := selfServe(sc, o.gateInflight, o.gateQueue)
		if err != nil {
			return err
		}
		defer stop()
		nominalURL, overloadURL = nurl, ourl
	}
	// Retries and the circuit breaker would mask exactly the behavior a
	// load harness exists to observe; a load client reports raw outcomes.
	cli, err := client.New(nominalURL, client.WithRetry(1, 0), client.WithCircuitBreaker(0, 0))
	if err != nil {
		return err
	}

	acc, err := calibrate(ctx, cli, sc)
	if err != nil {
		return err
	}
	rep.Scenarios = append(rep.Scenarios, scenarioReport{
		Name: sc.Name, Dim: sc.Dim, Classes: sc.Classes, Fields: sc.Fields(),
		TrainRows: len(sc.Train), TestRows: len(sc.Test),
		Accuracy: acc, AccuracyFloor: sc.AccuracyFloor,
	})
	if acc < sc.AccuracyFloor {
		*violations = append(*violations, fmt.Sprintf("%s: served accuracy %.3f below floor %.2f", sc.Name, acc, sc.AccuracyFloor))
	}
	fmt.Fprintf(os.Stderr, "hdcload: %s calibrated: accuracy %.3f (floor %.2f), %d train / %d test rows\n",
		sc.Name, acc, sc.AccuracyFloor, len(sc.Train), len(sc.Test))

	// Nominal phases: sweep fleet sizes (closed) or arrival rates (open).
	type point struct {
		workers int
		rate    float64
	}
	var sweep []point
	if mode == loadgen.ModeClosed {
		for _, w := range workers {
			sweep = append(sweep, point{workers: w})
		}
	} else {
		for _, r := range rates {
			sweep = append(sweep, point{workers: workers[0], rate: r})
		}
	}
	for _, p := range sweep {
		res, err := loadgen.Run(ctx, loadgen.Config{
			Mode: mode, Workers: p.workers, Rate: p.rate,
			Duration: o.duration, Classify: classify,
		}, mixedOp(cli, sc, o.readRatio))
		if err != nil {
			return err
		}
		rr := toRunReport(sc.Name, "nominal", res)
		rep.Runs = append(rep.Runs, rr)
		fmt.Fprintf(os.Stderr, "hdcload: %s nominal %s w=%d r=%g: %d req, %.0f rps, p99 %.0fµs, errors %v\n",
			sc.Name, res.Mode, res.WorkersRequested, res.Rate, res.Requests, rr.ThroughputRPS, rr.Latency.P99, rr.Errors)
		if o.maxP99 > 0 && res.Hist.Quantile(0.99) > o.maxP99 {
			*violations = append(*violations, fmt.Sprintf("%s nominal (w=%d r=%g): p99 %v exceeds budget %v",
				sc.Name, res.WorkersRequested, res.Rate, res.Hist.Quantile(0.99), o.maxP99))
		}
		if res.Success() == 0 {
			*violations = append(*violations, fmt.Sprintf("%s nominal (w=%d r=%g): no successful requests", sc.Name, res.WorkersRequested, res.Rate))
		}
	}

	if !o.overload {
		return nil
	}
	// Overload phase: saturate the gated endpoint far past its admission
	// limits and observe how the excess is shed.
	ocli, err := client.New(overloadURL, client.WithRetry(1, 0), client.WithCircuitBreaker(0, 0))
	if err != nil {
		return err
	}
	res, err := loadgen.Run(ctx, loadgen.Config{
		Mode: loadgen.ModeClosed, Workers: o.overloadWorkers,
		Duration: o.duration, Classify: classify,
	}, overloadOp(ocli, sc, o.overloadBatch))
	if err != nil {
		return err
	}
	rr := toRunReport(sc.Name, "overload", res)
	rep.Runs = append(rep.Runs, rr)
	fmt.Fprintf(os.Stderr, "hdcload: %s overload w=%d: %d req, %d shed, errors %v\n",
		sc.Name, res.WorkersRequested, res.Requests, res.ErrorCount(), rr.Errors)
	if o.strictOverload {
		if res.Errors[string(client.CodeOverloaded)] == 0 {
			*violations = append(*violations, fmt.Sprintf("%s overload: admission control never fired (no 429s)", sc.Name))
		}
		for class, n := range res.Errors {
			if class != string(client.CodeOverloaded) {
				*violations = append(*violations, fmt.Sprintf("%s overload: %d %s errors; only structured 429s with Retry-After hints are acceptable shed", sc.Name, n, class))
			}
		}
	}
	return nil
}

// selfServe hosts the scenario in-process on two loopback listeners: a
// nominal endpoint with default admission limits and an overload endpoint
// whose tiny gate (gateInflight in flight, gateQueue queued) makes
// admission control observable without hundreds of workers. Both front
// the same model, so training on one is visible on the other.
func selfServe(sc *scenario.Scenario, gateInflight, gateQueue int) (stop func(), nominalURL, overloadURL string, err error) {
	srv, err := serve.NewServer(sc.ServerConfig())
	if err != nil {
		return nil, "", "", err
	}
	nominal, err := httpapi.New(httpapi.Config{Server: srv, Encoder: sc.Encoder})
	if err != nil {
		return nil, "", "", err
	}
	gated, err := httpapi.New(httpapi.Config{
		Server: srv, Encoder: sc.Encoder,
		MaxInFlight: gateInflight, MaxQueue: gateQueue,
	})
	if err != nil {
		return nil, "", "", err
	}
	var (
		listeners []net.Listener
		servers   []*http.Server
		urls      []string
	)
	for _, h := range []http.Handler{nominal, gated} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners {
				l.Close()
			}
			return nil, "", "", err
		}
		hs := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
		go func() { _ = hs.Serve(ln) }()
		listeners = append(listeners, ln)
		servers = append(servers, hs)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	stop = func() {
		for _, hs := range servers {
			hs.Close()
		}
	}
	return stop, urls[0], urls[1], nil
}

// calibrate runs the end-to-end scenario recipe: bulk-ingest the training
// split, bulk-predict the test split, return the served accuracy.
func calibrate(ctx context.Context, cli *client.Client, sc *scenario.Scenario) (float64, error) {
	is, err := cli.Ingest(ctx)
	if err != nil {
		return 0, fmt.Errorf("ingest stream: %w", err)
	}
	for _, row := range sc.IngestRows() {
		if err := is.Send(row); err != nil {
			return 0, fmt.Errorf("ingest stream: %w", err)
		}
	}
	ack, err := is.Close()
	if err != nil {
		return 0, fmt.Errorf("ingest stream: %w", err)
	}
	if ack.TotalRows != len(sc.Train) {
		return 0, fmt.Errorf("ingest stream applied %d of %d rows", ack.TotalRows, len(sc.Train))
	}
	results, err := cli.PredictAll(ctx, sc.TestFeatures())
	if err != nil {
		return 0, fmt.Errorf("predict stream: %w", err)
	}
	classes := make([]int, len(results))
	for i, r := range results {
		classes[i] = r.Class
	}
	return sc.Accuracy(classes), nil
}

// mixedOp builds the load-phase op: a deterministic hash of the request
// sequence number interleaves reads (unary predicts over the test split)
// and writes (single-sample train batches over the training split) at the
// requested ratio without bursts.
func mixedOp(cli *client.Client, sc *scenario.Scenario, readRatio float64) func(context.Context) error {
	var seq atomic.Uint64
	readCut := uint64(readRatio * 1000)
	return func(ctx context.Context) error {
		i := seq.Add(1)
		if (i*2654435761)%1000 < readCut {
			row := sc.Test[int(i)%len(sc.Test)]
			_, _, err := cli.PredictOne(ctx, row.Features)
			return err
		}
		row := sc.Train[int(i)%len(sc.Train)]
		_, err := cli.Train(ctx, client.TrainRequest{Samples: []client.Sample{{Label: row.Label, Features: row.Features}}})
		return err
	}
}

// overloadOp builds the overload-phase op: one batch predict per request,
// sized so each admitted request occupies the server for real handler
// time. Sub-millisecond requests can drain as fast as a scheduler quantum
// admits them — a gate in front of them never fills on a small machine —
// so saturation needs requests with weight, not just more workers.
func overloadOp(cli *client.Client, sc *scenario.Scenario, batch int) func(context.Context) error {
	var seq atomic.Uint64
	return func(ctx context.Context) error {
		i := int(seq.Add(1))
		queries := make([][]float64, batch)
		for j := range queries {
			queries[j] = sc.Test[(i+j)%len(sc.Test)].Features
		}
		_, err := cli.Predict(ctx, queries)
		return err
	}
}

// classify maps client errors to the report's error classes: the wire
// code for structured API faults — with 429s missing their Retry-After
// hint singled out, since the hint is part of the overload contract —
// and "transport" for everything below the protocol.
func classify(err error) string {
	var apiErr *client.Error
	if errors.As(err, &apiErr) {
		if apiErr.Code == client.CodeOverloaded && apiErr.RetryAfterMS <= 0 {
			return string(apiErr.Code) + "_no_hint"
		}
		return string(apiErr.Code)
	}
	return "transport"
}

func toRunReport(name, phase string, res *loadgen.Result) runReport {
	rr := runReport{
		Scenario:         name,
		Phase:            phase,
		Mode:             string(res.Mode),
		WorkersRequested: res.WorkersRequested,
		WorkersEffective: res.WorkersEffective,
		Rate:             res.Rate,
		DurationMS:       res.Elapsed.Milliseconds(),
		Requests:         res.Requests,
		Success:          res.Success(),
		ThroughputRPS:    res.Throughput(),
		Latency:          summarize(res.Hist),
	}
	if len(res.Errors) > 0 {
		rr.Errors = res.Errors
	}
	return rr
}

// extractKnees appends one kneeReport per scenario with 2+ nominal
// open-loop runs: the sweep curve in ascending rate order and the highest
// rate whose p99 stays within factor of the slowest rate's p99. The
// highest such rate — not the last before a first violation — because
// true queueing collapse is monotone (past capacity the open-loop
// backlog only grows), so a single over-budget blip below a rate that
// demonstrably holds its p99 is runner noise, not the knee. A rate with
// zero successes has no p99 at all and is past the knee by definition.
func extractKnees(rep *report, factor float64) {
	byScenario := map[string][]runReport{}
	var order []string
	for _, rr := range rep.Runs {
		if rr.Phase != "nominal" || rr.Mode != string(loadgen.ModeOpen) || rr.Rate <= 0 {
			continue
		}
		if _, seen := byScenario[rr.Scenario]; !seen {
			order = append(order, rr.Scenario)
		}
		byScenario[rr.Scenario] = append(byScenario[rr.Scenario], rr)
	}
	sort.Strings(order)
	for _, name := range order {
		runs := byScenario[name]
		if len(runs) < 2 {
			continue
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].Rate < runs[j].Rate })
		kr := kneeReport{Scenario: name, KneeFactor: factor}
		for _, rr := range runs {
			served := float64(rr.Success) / (float64(rr.DurationMS) / 1000)
			kr.Rates = append(kr.Rates, rr.Rate)
			kr.P99US = append(kr.P99US, rr.Latency.P99)
			kr.SuccessRPS = append(kr.SuccessRPS, served)
		}
		budget := kr.P99US[0] * factor
		kr.KneeRate, kr.KneeP99US = kr.Rates[0], kr.P99US[0]
		for i, rr := range runs {
			if rr.Success > 0 && kr.P99US[i] <= budget {
				kr.KneeRate, kr.KneeP99US = kr.Rates[i], kr.P99US[i]
			}
		}
		last := len(runs) - 1
		kr.Bracketed = runs[last].Success == 0 || kr.P99US[last] > budget
		if !kr.Bracketed {
			fmt.Fprintf(os.Stderr, "hdcload: %s: every swept rate stayed under %gx the base p99; knee %g rps is a lower bound, sweep higher\n",
				name, factor, kr.KneeRate)
		}
		rep.Knees = append(rep.Knees, kr)
	}
}

func writeReport(path string, rep *report) error {
	sort.Slice(rep.Runs, func(i, j int) bool {
		if rep.Runs[i].Scenario != rep.Runs[j].Scenario {
			return rep.Runs[i].Scenario < rep.Runs[j].Scenario
		}
		if rep.Runs[i].Phase != rep.Runs[j].Phase {
			return rep.Runs[i].Phase < rep.Runs[j].Phase
		}
		return rep.Runs[i].WorkersRequested < rep.Runs[j].WorkersRequested
	})
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
