package main

// CI smoke legs: the load harness binary driven for real. One leg builds
// hdcserve and hdcload, starts the server as a child process hosting the
// language scenario behind a deliberately tiny admission gate, and runs a
// short closed-loop hdcload against it with both gates armed — the p99
// budget for nominal load and strict-overload for the shed path. The
// other leg exercises self-serve mode across every registered scenario
// and checks the report carries full latency/throughput/error detail for
// each. Both parse the machine-readable report, so a report-shape
// regression fails here before any dashboard notices.

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"hdcirc/client"
	"hdcirc/internal/scenario"
)

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// buildBin compiles one command under test.
func buildBin(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg)+"-under-test")
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startScenarioChild launches hdcserve hosting a scenario behind a tiny
// admission gate and returns its base URL.
func startScenarioChild(t *testing.T, bin, name string) string {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-scenario", name,
		"-workers", "2",
		"-max-inflight", "2", "-max-queue", "2",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("hdcserve child never reported a listen address")
		return ""
	}
}

func readLoadReport(t *testing.T, path string) *report {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parsing report: %v", err)
	}
	return &rep
}

// checkRun asserts one run carries the full latency/throughput detail the
// report contract promises.
func checkRun(t *testing.T, rr runReport) {
	t.Helper()
	if rr.Success == 0 {
		t.Errorf("%s/%s: no successful requests", rr.Scenario, rr.Phase)
		return
	}
	l := rr.Latency
	if l.P50 <= 0 || l.P90 < l.P50 || l.P99 < l.P90 || l.P999 < l.P99 || l.Max < l.P999 {
		t.Errorf("%s/%s: latency quantiles not monotone: %+v", rr.Scenario, rr.Phase, l)
	}
	if rr.ThroughputRPS <= 0 {
		t.Errorf("%s/%s: zero throughput", rr.Scenario, rr.Phase)
	}
	if rr.WorkersRequested <= 0 || rr.WorkersEffective <= 0 || rr.WorkersEffective > rr.WorkersRequested {
		t.Errorf("%s/%s: parallelism accounting: requested %d effective %d",
			rr.Scenario, rr.Phase, rr.WorkersRequested, rr.WorkersEffective)
	}
}

// TestLoadOpenSweepKnee runs a short self-serve open-loop rate sweep over
// one scenario and checks the report distills a p99 knee: the sweep curve
// is present in ascending rate order and the knee lands on a swept rate
// with its p99 taken from the curve. The 20000 rps leg is far past any
// CI machine's capacity for this workload, so the knee is genuinely
// bracketed.
func TestLoadOpenSweepKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke")
	}
	loadBin := buildBin(t, "hdcirc/cmd/hdcload")
	reportPath := filepath.Join(t.TempDir(), "load.json")
	cmd := exec.Command(loadBin,
		"-scenario", "language",
		"-mode", "open",
		"-rate", "150,20000",
		"-workers", "32",
		"-duration", "500ms",
		"-overload=false",
		"-o", reportPath,
	)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("hdcload failed: %v\n%s", err, out)
	}
	rep := readLoadReport(t, reportPath)
	if len(rep.Knees) != 1 {
		t.Fatalf("report carries %d knee rows, want 1", len(rep.Knees))
	}
	kr := rep.Knees[0]
	if kr.Scenario != "language" || kr.KneeFactor <= 1 {
		t.Fatalf("knee row header: %+v", kr)
	}
	if len(kr.Rates) != 2 || len(kr.P99US) != 2 || len(kr.SuccessRPS) != 2 {
		t.Fatalf("sweep curve incomplete: %+v", kr)
	}
	if kr.Rates[0] >= kr.Rates[1] {
		t.Errorf("sweep curve not in ascending rate order: %v", kr.Rates)
	}
	onCurve := false
	for i, r := range kr.Rates {
		if kr.KneeRate == r && kr.KneeP99US == kr.P99US[i] {
			onCurve = true
		}
	}
	if !onCurve {
		t.Errorf("knee (%g rps, %g µs) not a point of the sweep curve %v / %v",
			kr.KneeRate, kr.KneeP99US, kr.Rates, kr.P99US)
	}
	if !kr.Bracketed {
		t.Errorf("a 20000 rps leg should bracket the knee: %+v", kr)
	}
	if kr.KneeRate != kr.Rates[0] {
		t.Errorf("knee rate %g, want the nominal leg %g (the overload leg cannot hold its p99)", kr.KneeRate, kr.Rates[0])
	}
}

// TestLoadSmokeAgainstChild is the CI smoke leg: a short closed-loop run
// against a real hdcserve child pinning a p99 budget under nominal load,
// then deliberate overload where every shed request must be a structured
// 429 with a Retry-After hint — any other error class fails the harness,
// and therefore this test.
func TestLoadSmokeAgainstChild(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process smoke test")
	}
	serveBin := buildBin(t, "hdcirc/cmd/hdcserve")
	loadBin := buildBin(t, "hdcirc/cmd/hdcload")
	base := startScenarioChild(t, serveBin, "language")
	reportPath := filepath.Join(t.TempDir(), "load.json")

	cmd := exec.Command(loadBin,
		"-target", base,
		"-scenario", "language",
		"-mode", "closed",
		"-workers", "2", // stays under the child's 2-in-flight gate
		"-duration", "1s",
		"-overload-workers", "32",
		"-strict-overload",
		"-max-p99", "500ms",
		"-o", reportPath,
	)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("hdcload failed (SLO gate or harness error): %v\n%s", err, out)
	}

	rep := readLoadReport(t, reportPath)
	if len(rep.Scenarios) != 1 || rep.Scenarios[0].Name != "language" {
		t.Fatalf("scenarios = %+v", rep.Scenarios)
	}
	if sr := rep.Scenarios[0]; sr.Accuracy < sr.AccuracyFloor {
		t.Errorf("served accuracy %.3f below floor %.2f", sr.Accuracy, sr.AccuracyFloor)
	}
	var sawNominal, sawOverload bool
	for _, rr := range rep.Runs {
		checkRun(t, rr)
		switch rr.Phase {
		case "nominal":
			sawNominal = true
			if len(rr.Errors) != 0 {
				t.Errorf("nominal phase under the gate's capacity must be error-free, got %v", rr.Errors)
			}
		case "overload":
			sawOverload = true
			if rr.Errors["overloaded"] == 0 {
				t.Error("overload phase produced no 429s")
			}
			for class, n := range rr.Errors {
				if class != "overloaded" {
					t.Errorf("overload phase shed %d requests as %q; only structured 429s are acceptable", n, class)
				}
			}
		}
	}
	if !sawNominal || !sawOverload {
		t.Fatalf("report missing phases: nominal=%v overload=%v", sawNominal, sawOverload)
	}

	// The child's own counters must agree that the gate did the shedding.
	cli, err := client.New(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stats, err := cli.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HTTPRejected == 0 {
		t.Error("child reports zero http_rejected after a shed overload phase")
	}
}

// TestLoadSelfServeAllScenarios runs the harness in self-serve mode over
// every registered scenario and checks the single report carries latency
// quantiles, throughput and per-error-code counts for each — the
// machine-readable contract dashboards and the bench gate consume.
func TestLoadSelfServeAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario load smoke")
	}
	loadBin := buildBin(t, "hdcirc/cmd/hdcload")
	reportPath := filepath.Join(t.TempDir(), "load.json")
	cmd := exec.Command(loadBin,
		"-scenario", "all",
		"-mode", "closed",
		"-workers", "2",
		"-duration", "700ms",
		"-overload-workers", "24",
		"-strict-overload",
		"-o", reportPath,
	)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("hdcload failed: %v\n%s", err, out)
	}
	rep := readLoadReport(t, reportPath)
	if rep.Schema != "hdcload/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.GOMAXPROCS <= 0 || rep.NumCPU <= 0 {
		t.Errorf("parallelism header missing: gomaxprocs=%d num_cpu=%d", rep.GOMAXPROCS, rep.NumCPU)
	}
	want := scenario.Names()
	if len(rep.Scenarios) != len(want) {
		t.Fatalf("report covers %d scenarios, want %d", len(rep.Scenarios), len(want))
	}
	perScenario := map[string]map[string]bool{}
	for _, rr := range rep.Runs {
		checkRun(t, rr)
		if perScenario[rr.Scenario] == nil {
			perScenario[rr.Scenario] = map[string]bool{}
		}
		perScenario[rr.Scenario][rr.Phase] = true
		if rr.Phase == "overload" && rr.Errors["overloaded"] == 0 {
			t.Errorf("%s: overload phase has no per-error-code 429 count", rr.Scenario)
		}
	}
	for _, name := range want {
		if !perScenario[name]["nominal"] || !perScenario[name]["overload"] {
			t.Errorf("%s: missing phases in report: %v", name, perScenario[name])
		}
	}
}
