// Command hdcgen generates basis-hypervector sets and writes them in the
// library's binary framing, or inspects existing files — the offline half
// of an HDC deployment workflow (generate on the host, ship to the target,
// load with hdcirc.ReadBasis).
//
//	hdcgen -kind circular -m 64 -d 10000 -r 0.1 -seed 42 -o basis.hv
//	hdcgen -inspect basis.hv
package main

import (
	"flag"
	"fmt"
	"os"

	"hdcirc/internal/core"
	"hdcirc/internal/rng"
)

func main() {
	kind := flag.String("kind", "circular", "basis family: random|level-legacy|level|circular|scatter|thermometer")
	m := flag.Int("m", 64, "set cardinality")
	d := flag.Int("d", 10000, "hypervector dimension")
	r := flag.Float64("r", 0, "correlation-relaxation hyperparameter (level/circular)")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	inspect := flag.String("inspect", "", "inspect an existing basis file instead of generating")
	flag.Parse()

	if err := run(*kind, *m, *d, *r, *seed, *out, *inspect); err != nil {
		fmt.Fprintln(os.Stderr, "hdcgen:", err)
		os.Exit(1)
	}
}

func run(kindName string, m, d int, r float64, seed uint64, out, inspect string) error {
	if inspect != "" {
		f, err := os.Open(inspect)
		if err != nil {
			return err
		}
		defer f.Close()
		set, err := core.ReadSet(f)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s basis, m=%d d=%d r=%g\n",
			inspect, set.Kind(), set.Len(), set.Dim(), set.R())
		fmt.Printf("  δ(0,1)   = %.4f\n", set.At(0).Distance(set.At(1)))
		fmt.Printf("  δ(0,m/2) = %.4f\n", set.At(0).Distance(set.At(set.Len()/2)))
		fmt.Printf("  δ(0,m−1) = %.4f\n", set.At(0).Distance(set.At(set.Len()-1)))
		return nil
	}

	k, err := core.ParseKind(kindName)
	if err != nil {
		return err
	}
	set := core.Config{Kind: k, M: m, D: d, R: r}.Build(rng.Sub(seed, "hdcgen"))

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	n, err := set.WriteTo(w)
	if err != nil {
		return err
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "hdcgen: wrote %s basis (m=%d d=%d r=%g, %d bytes) to %s\n",
			set.Kind(), m, d, r, n, out)
	}
	return nil
}
