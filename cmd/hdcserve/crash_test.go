package main

// Crash-recovery integration: build the real hdcserve binary, run it as a
// child process with a durability directory, SIGKILL it while training
// batches are in flight, restart it, and require the recovered snapshot to
// match — bit for bit — an in-process mirror that replayed exactly the
// batches the recovered version covers. With -fsync-every 1 every
// acknowledged batch must survive the kill.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// buildHdcserve compiles the command under test once per test run.
func buildHdcserve(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hdcserve-under-test")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building hdcserve: %v\n%s", err, out)
	}
	return bin
}

// startChild launches the binary against dataDir and returns the process
// plus its resolved base URL.
// The flags here must mirror durableTestConfig, which the in-process
// replay below uses to reproduce the child's exact model.
func startChild(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-fsync-every", "1",
		"-checkpoint-every", "4",
		"-d", "512", "-k", "3", "-shards", "2", "-workers", "2",
		"-fields", "2", "-lo", "0", "-hi", "1", "-levels", "16", "-seed", "7",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatal("child never reported a listen address")
		return nil, ""
	}
}

func waitHealthy(t *testing.T, client *http.Client, base string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/stats")
		if err == nil {
			var out map[string]any
			dec := json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if dec == nil && resp.StatusCode == http.StatusOK {
				return out
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("child never became healthy")
	return nil
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process integration test")
	}
	bin := buildHdcserve(t)
	dataDir := t.TempDir()
	client := &http.Client{Timeout: 5 * time.Second}

	child, base := startChild(t, bin, dataDir)
	waitHealthy(t, client, base)

	// Stream training batches; SIGKILL lands while later ones are in
	// flight, so the kill point is somewhere inside ApplyBatch's
	// append-then-apply window for some batch.
	var acked, sent atomic.Int64
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		for i := 0; ; i++ {
			sent.Add(1)
			out, code, err := postJSON(client, base+"/train", trainBodyIdx(i))
			if err != nil || code != http.StatusOK {
				return // the process is gone
			}
			if v := int64(out["version"].(float64)); v != acked.Load()+1 {
				t.Errorf("train %d acknowledged version %d, want %d", i, v, acked.Load()+1)
				return
			}
			acked.Add(1)
		}
	}()
	for acked.Load() < 9 {
		time.Sleep(time.Millisecond)
	}
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	child.Wait()
	<-senderDone
	ackedAtKill, sentAtKill := acked.Load(), sent.Load()
	t.Logf("killed child: %d acked, %d sent", ackedAtKill, sentAtKill)

	// Restart on the same directory: the recovered version must cover every
	// acknowledged batch (fsync-every=1) and nothing that was never sent.
	_, base2 := startChild(t, bin, dataDir)
	stats := waitHealthy(t, client, base2)
	v := int64(stats["version"].(float64))
	if v < ackedAtKill || v > sentAtKill {
		t.Fatalf("recovered version %d outside [acked %d, sent %d]", v, ackedAtKill, sentAtKill)
	}
	if stats["durable"] != true {
		t.Fatalf("recovered server not durable: %v", stats)
	}
	resp, err := client.Get(base2 + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot download: code %d, err %v", resp.StatusCode, err)
	}

	// Bit-for-bit: an in-process mirror replaying exactly the first v
	// batches through the same handler stack must serialize identically.
	mirror, err := newApp(func() appConfig {
		c := durableTestConfig("")
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	defer mirror.close()
	m := mirror.mux()
	for i := int64(0); i < v; i++ {
		rec, _ := doJSON(t, m, http.MethodPost, "/train", trainBodyIdx(int(i)))
		if rec.Code != http.StatusOK {
			t.Fatalf("mirror train %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/snapshot", nil)
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("mirror snapshot: %d", rec.Code)
	}
	if !strings.Contains(string(recovered[:4]), "HSRV") {
		t.Fatalf("recovered snapshot is not an HSRV stream: % x", recovered[:4])
	}
	if string(recovered) != rec.Body.String() {
		t.Fatalf("recovered snapshot (version %d, %d bytes) differs from sequential replay (%d bytes)",
			v, len(recovered), rec.Body.Len())
	}

	// The restarted child must keep accepting durable writes.
	if out, code, err := postJSON(client, base2+"/train", trainBodyIdx(int(v))); err != nil || code != http.StatusOK {
		t.Fatalf("train after recovery: code %d, err %v (%v)", code, err, out)
	}

	// Checkpoints were configured every 4 batches — at least one must have
	// landed and compacted, proving the integration exercises that path.
	ckpts, err := filepath.Glob(filepath.Join(dataDir, "ckpt-*.hckp"))
	if err != nil || len(ckpts) == 0 {
		names, _ := os.ReadDir(dataDir)
		var listing []string
		for _, n := range names {
			listing = append(listing, n.Name())
		}
		t.Fatalf("no checkpoint file in data dir (contents: %v)", listing)
	}
}
