// Command hdcserve is a small HTTP JSON front end over the concurrency-safe
// serving layer (hdcirc.Server): it hosts a record-encoding HDC classifier
// plus item memory behind versioned snapshots, so any number of in-flight
// requests read lock-free while training writes stream in.
//
//	go run ./cmd/hdcserve -addr :8080 -d 2048 -k 4 -fields 3 -shards 2
//
// Endpoints (all JSON unless noted):
//
//	POST /train    {"samples":[{"label":0,"features":[…]}],"symbols":["a"]}
//	               → {"version":…,"trained":…,"samples":…,"items":…}
//	POST /predict  {"queries":[[…],[…]]}
//	               → {"version":…,"classes":[…],"distances":[…]}
//	GET  /lookup?key=K      → consistent-hash routing of an arbitrary key
//	POST /lookup   {"features":[…]} → nearest interned symbol (cleanup)
//	GET  /stats    → operational summary (version, samples, reads, …)
//	GET  /snapshot → binary snapshot download (save while serving);
//	               restore it at boot with -load
//
// Samples are numeric records: each of the -fields features is
// level-encoded over the interval [lo, hi] given by the -lo and -hi flags
// and bound to its field key (the paper's record encoding ⊕ᵢ Kᵢ ⊗ Vᵢ).
// Training and prediction both encode across the server's worker pool.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		d       = flag.Int("d", 2048, "hypervector dimension")
		k       = flag.Int("k", 4, "number of classes")
		shards  = flag.Int("shards", 2, "sub-model shards")
		workers = flag.Int("workers", 0, "batch pool size (0 = GOMAXPROCS)")
		fields  = flag.Int("fields", 3, "features per sample record")
		lo      = flag.Float64("lo", 0, "feature interval lower bound")
		hi      = flag.Float64("hi", 1, "feature interval upper bound")
		levels  = flag.Int("levels", 64, "quantization levels per feature")
		seed    = flag.Uint64("seed", 1, "master seed")
		load    = flag.String("load", "", "warm-start from a snapshot file")
	)
	flag.Parse()

	app, err := newApp(appConfig{
		Dim: *d, Classes: *k, Shards: *shards, Workers: *workers,
		Fields: *fields, Lo: *lo, Hi: *hi, Levels: *levels, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdcserve: %v\n", err)
		os.Exit(2)
	}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdcserve: %v\n", err)
			os.Exit(2)
		}
		err = app.srv.Restore(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdcserve: warm start: %v\n", err)
			os.Exit(2)
		}
		log.Printf("warm-started from %s at version %d", *load, app.srv.Snapshot().Version())
	}
	log.Printf("hdcserve listening on %s (d=%d k=%d shards=%d fields=%d)", *addr, *d, *k, *shards, *fields)
	if err := http.ListenAndServe(*addr, app.mux()); err != nil {
		log.Fatal(err)
	}
}
