// Command hdcserve hosts serving protocol v1 — the versioned HTTP API
// over the concurrency-safe, durable serving layer — as a thin
// flag-parsing shell: every wire type, route and policy lives in the
// shared protocol layer (hdcirc.ServeHandler / internal/httpapi), which
// both this binary and the Go client SDK (hdcirc/client) consume.
//
//	go run ./cmd/hdcserve -addr :8080 -d 2048 -k 4 -fields 3 -shards 2
//
// Endpoints (see the README "Serving API v1" reference for the full
// contract — request shapes, error codes, streaming framing):
//
//	POST /v1/train           one write batch (samples + item churn)
//	POST /v1/predict         classify feature records
//	POST /v1/scores          raw per-class distances (cluster scatter)
//	GET  /v1/lookup          ?key= ring routing, ?symbol= membership
//	POST /v1/lookup          nearest-symbol cleanup
//	GET  /v1/stats           operational summary incl. durability state
//	GET  /v1/cluster         this node's cluster manifest (with -cluster)
//	GET  /v1/snapshot        binary snapshot download (restore with -load)
//	GET  /v1/healthz         liveness + current version
//	POST /v1/predict:stream  NDJSON bulk classification
//	POST /v1/ingest:stream   NDJSON bulk training / interning
//	POST /v1/admin/promote   flip this node to primary (with -admin)
//
// Requests are hardened (bounded bodies, method/Content-Type enforcement,
// unknown-field rejection) and admission-controlled: past -max-inflight
// executing requests plus -max-queue waiters, the server sheds load with
// structured 429s and a Retry-After hint instead of queuing unboundedly.
//
// With -scenario NAME the server hosts a named scenario workload
// (internal/scenario): the scenario dictates model geometry and installs
// its domain encoder — n-gram language identification, GraphHD graph
// classification, or streaming EMG windows — and cmd/hdcload replays the
// matching deterministic splits against it as load.
//
// # Durability
//
// With -data-dir the server is durable: every training batch is written
// ahead to a CRC-framed log in that directory before it is applied (fsync
// cadence set by -fsync-every), background checkpoints persist the exact
// model state every -checkpoint-every batches and compact the log, and a
// restart recovers the pre-crash state bit for bit. On SIGINT/SIGTERM the
// server shuts down gracefully: in-flight requests (including training
// batches) complete, then the log is flushed and closed.
//
// # Replication
//
// A durable server (-data-dir) can head a replicated tier. The primary
// (-role primary, the default) hosts POST /v1/replicate:stream and ships
// every logged batch to connected followers; a replica (-role replica
// -primary-url http://primary:8080) connects with its last applied
// sequence, catches up from the primary's newest checkpoint plus WAL
// suffix, then tails live writes — applying through the same
// validate-then-apply path, so its snapshots are bit-identical to the
// primary's at the same version. Replicas serve the read plane and answer
// writes with 421 not_primary (plus the primary's URL for client-side
// failover); both roles log replication health every 10s and report it
// under GET /v1/stats "replication". See the README "Distributed serving"
// section for the topology and failover runbook.
//
// # Sharded cluster
//
// With -cluster manifest.hclu -shard i/N the server joins a horizontally
// sharded tier as shard i: the manifest pins the hashring (seed and
// geometry) every node and client route by, classes and item symbols
// hash to exactly one shard, and a write for a key this shard does not
// own answers 421 wrong_shard carrying the owning group's endpoints so a
// stale client reroutes instead of retrying. Each shard is itself a
// replication group (-role/-primary-url work unchanged within it), and
// -replica-max-inflight/-replica-max-queue give followers their own
// admission profile so a saturated replica sheds load without touching
// the primary's budget. The cluster client (hdcirc/client
// NewClusterClient) fans reads out and merges them bit-identically to an
// unsharded model; see the README "Sharded cluster" section for the
// topology, manifest format, and resharding caveats.
//
// # Degraded read-only mode
//
// A storage fault under the log (disk full, I/O error) does not kill the
// server: it degrades to read-only — reads keep serving the last
// published snapshot while writes answer 503 read_only with a
// Retry-After hint. GET /v1/healthz reports {"status":"degraded"} (still
// HTTP 200: the read plane is healthy; probe ?plane=write for a 503 that
// drains write traffic). Every -wal-retry-interval the server probes the
// disk itself, up to -wal-retry-max attempts; recovery replays any
// records that landed but were never acknowledged and re-enables writes.
// -write-deadline and -predict-deadline bound each request server-side
// (504 deadline_exceeded past the bound). See the README "Failure modes
// & degraded operation" section for the operator runbook.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"hdcirc"
)

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before giving up and closing anyway.
const shutdownGrace = 15 * time.Second

// options is the flag surface, bundled so tests can build the exact
// production stack without a command line.
type options struct {
	scenario                      string
	dim, classes, shards, workers int
	fields, levels                int
	lo, hi                        float64
	seed                          uint64
	dataDir                       string
	fsyncEvery, checkpointEvery   int
	walRetryInterval              time.Duration
	walRetryMax                   int
	maxInflight, maxQueue         int
	streamBatch                   int
	maxBodyBytes                  int64
	writeDeadline                 time.Duration
	predictDeadline               time.Duration
	role                          string
	primaryURL                    string
	clusterPath                   string
	shardSpec                     string
	admin                         bool
	replicaMaxInflight            int
	replicaMaxQueue               int
	promote                       promoteTarget
}

// promoteTarget late-binds what POST /v1/admin/promote runs. The handler
// is built before the replication follower starts, so the target begins
// as the server's bare Promote and is swapped for the follower's Promote
// (which cancels the replication loop before flipping the role) once one
// is running.
type promoteTarget struct {
	mu sync.Mutex
	fn func() error
}

func (p *promoteTarget) set(fn func() error) { p.mu.Lock(); p.fn = fn; p.mu.Unlock() }

func (p *promoteTarget) promote() error {
	p.mu.Lock()
	fn := p.fn
	p.mu.Unlock()
	return fn()
}

// parseShardSpec parses -shard i/N into the node's shard id, checking N
// against the manifest so a unit mismatch (an old manifest with a new
// flag line, or vice versa) fails loudly at boot instead of misrouting.
func parseShardSpec(spec string, m *hdcirc.ClusterManifest) (int, error) {
	idx := strings.IndexByte(spec, '/')
	if idx < 0 {
		return 0, fmt.Errorf("-shard must be i/N (e.g. 0/2), got %q", spec)
	}
	i, err := strconv.Atoi(spec[:idx])
	if err != nil {
		return 0, fmt.Errorf("-shard %q: bad shard id: %v", spec, err)
	}
	n, err := strconv.Atoi(spec[idx+1:])
	if err != nil {
		return 0, fmt.Errorf("-shard %q: bad shard count: %v", spec, err)
	}
	if n != m.NumShards() {
		return 0, fmt.Errorf("-shard %s disagrees with the manifest's %d shards", spec, m.NumShards())
	}
	if i < 0 || i >= n {
		return 0, fmt.Errorf("-shard %s: shard id out of range", spec)
	}
	return i, nil
}

// build assembles the serving stack from options: durable server, record
// encoder, protocol-v1 handler. Everything protocol-shaped comes from the
// hdcirc facade — this binary defines no wire types of its own.
func build(o *options) (*hdcirc.ServeAPI, *hdcirc.Server, error) {
	var enc hdcirc.ServeEncoder
	if o.scenario != "" {
		// A scenario dictates the whole model geometry and the wire
		// encoder; the generic -d/-k/-fields/-seed knobs are superseded.
		sc, err := hdcirc.BuildScenario(o.scenario)
		if err != nil {
			return nil, nil, err
		}
		o.dim, o.classes, o.shards, o.seed = sc.Dim, sc.Classes, sc.Shards, sc.Seed
		enc = sc.Encoder
	}
	scfg := hdcirc.ServerConfig{
		Dim:     o.dim,
		Classes: o.classes,
		Shards:  o.shards,
		Workers: o.workers,
		Seed:    o.seed,
	}
	if o.dataDir != "" {
		scfg.WAL = &hdcirc.WALConfig{
			Dir:             o.dataDir,
			SyncEvery:       o.fsyncEvery,
			CheckpointEvery: o.checkpointEvery,
			RetryInterval:   o.walRetryInterval,
			RetryMax:        o.walRetryMax,
		}
	}
	srv, err := hdcirc.OpenDurableServer(scfg)
	if err != nil {
		return nil, nil, err
	}
	if enc == nil {
		enc, err = hdcirc.NewServeEncoder(hdcirc.ServeEncoderConfig{
			Dim: o.dim, Fields: o.fields, Lo: o.lo, Hi: o.hi, Levels: o.levels, Seed: o.seed,
		})
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
	}
	hcfg := hdcirc.ServeHandlerConfig{
		Server:             srv,
		Encoder:            enc,
		MaxInFlight:        o.maxInflight,
		MaxQueue:           o.maxQueue,
		StreamBatch:        o.streamBatch,
		MaxBodyBytes:       o.maxBodyBytes,
		WriteDeadline:      o.writeDeadline,
		PredictDeadline:    o.predictDeadline,
		EnableAdmin:        o.admin,
		ReplicaMaxInFlight: o.replicaMaxInflight,
		ReplicaMaxQueue:    o.replicaMaxQueue,
	}
	// Promote starts as the server's own role flip; main rebinds it to the
	// replication follower's Promote once one is running.
	o.promote.set(srv.Promote)
	hcfg.PromoteFunc = o.promote.promote
	// A sharded node loads the cluster manifest and enforces ownership:
	// writes for keys the hashring assigns elsewhere answer wrong_shard
	// with the owning group's endpoints.
	if o.clusterPath != "" {
		m, err := hdcirc.LoadClusterManifest(o.clusterPath)
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
		shard, err := parseShardSpec(o.shardSpec, m)
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
		node, err := hdcirc.NewClusterNode(m, shard)
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
		hcfg.Cluster = node
	}
	// A durable primary ships its write-ahead log to followers over
	// /v1/replicate:stream; without -data-dir there is no log to ship, so
	// the endpoint stays unavailable (replicas need -data-dir too — their
	// own log is what lets THEM restart without a full re-seed).
	if o.role == "primary" && o.dataDir != "" {
		src, err := hdcirc.NewReplicationSource(hdcirc.ReplicationSourceConfig{Server: srv})
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
		hcfg.Replication = src
	}
	h, err := hdcirc.NewServeAPI(hcfg)
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	return h, srv, nil
}

// logReplication periodically surfaces replication health — the
// follower's lag behind the primary, or the primary's follower fan-out —
// so an operator tailing the log sees convergence without curling stats.
func logReplication(ctx context.Context, srv *hdcirc.Server, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			st := srv.Stats()
			if st.Replication == nil {
				continue
			}
			if st.Role == "follower" {
				log.Printf("replication: role=follower applied_seq=%d lag=%d", st.Replication.LastAckedSeq, st.Replication.FollowerLagSeq)
			} else {
				log.Printf("replication: role=primary followers=%d min_acked_seq=%d lag=%d", st.Replication.ConnectedFollowers, st.Replication.LastAckedSeq, st.Replication.FollowerLagSeq)
			}
		}
	}
}

func main() {
	var o options
	addr := flag.String("addr", ":8080", "listen address")
	flag.StringVar(&o.scenario, "scenario", "", "host a named scenario workload ("+strings.Join(hdcirc.ScenarioNames(), ", ")+"); overrides -d/-k/-shards/-fields/-seed and installs the scenario's encoder")
	flag.IntVar(&o.dim, "d", 2048, "hypervector dimension")
	flag.IntVar(&o.classes, "k", 4, "number of classes")
	flag.IntVar(&o.shards, "shards", 2, "sub-model shards")
	flag.IntVar(&o.workers, "workers", 0, "batch pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.fields, "fields", 3, "features per sample record")
	flag.Float64Var(&o.lo, "lo", 0, "feature interval lower bound")
	flag.Float64Var(&o.hi, "hi", 1, "feature interval upper bound")
	flag.IntVar(&o.levels, "levels", 64, "quantization levels per feature")
	flag.Uint64Var(&o.seed, "seed", 1, "master seed")
	load := flag.String("load", "", "warm-start from a snapshot file")
	flag.StringVar(&o.dataDir, "data-dir", "", "durability directory (write-ahead log + checkpoints); empty = in-memory only")
	flag.IntVar(&o.fsyncEvery, "fsync-every", 1, "with -data-dir: fsync the log once per this many batches (negative = never)")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 256, "with -data-dir: background checkpoint cadence in batches (negative = manual only)")
	flag.DurationVar(&o.walRetryInterval, "wal-retry-interval", 5*time.Second, "with -data-dir: auto-recovery probe cadence after a storage fault degrades the server (0 = manual Recover only)")
	flag.IntVar(&o.walRetryMax, "wal-retry-max", 0, "with -data-dir: auto-recovery probe attempts before giving up (0 = 8)")
	flag.DurationVar(&o.writeDeadline, "write-deadline", 0, "server-side bound per write batch; expirations answer 504 deadline_exceeded (0 = unbounded)")
	flag.DurationVar(&o.predictDeadline, "predict-deadline", 0, "server-side bound on read-plane queueing (0 = unbounded)")
	flag.IntVar(&o.maxInflight, "max-inflight", 0, "admission control: concurrently executing model requests (0 = 4×GOMAXPROCS)")
	flag.IntVar(&o.maxQueue, "max-queue", 0, "admission control: requests waiting for a slot before 429s (0 = 2×max-inflight)")
	flag.IntVar(&o.streamBatch, "stream-batch", 0, "rows coalesced per batch on the streaming endpoints (0 = 256)")
	flag.Int64Var(&o.maxBodyBytes, "max-body", 0, "maximum unary request body in bytes (0 = 8 MiB)")
	flag.StringVar(&o.role, "role", "primary", "replication role: primary (accepts writes; with -data-dir, ships its WAL to followers) or replica (read-only; replicates from -primary-url)")
	flag.StringVar(&o.primaryURL, "primary-url", "", "with -role replica: base URL of the primary to replicate from (e.g. http://primary:8080)")
	flag.StringVar(&o.clusterPath, "cluster", "", "cluster manifest file (HCLU binary or JSON); makes this node shard-aware")
	flag.StringVar(&o.shardSpec, "shard", "", "with -cluster: this node's shard as i/N (e.g. 0/2); N must match the manifest")
	flag.BoolVar(&o.admin, "admin", false, "enable operator routes (POST /v1/admin/promote)")
	flag.IntVar(&o.replicaMaxInflight, "replica-max-inflight", 0, "admission control while serving as a follower: concurrent model requests (0 = -max-inflight)")
	flag.IntVar(&o.replicaMaxQueue, "replica-max-queue", 0, "admission control while serving as a follower: waiters before 429s (0 = 2×replica-max-inflight)")
	flag.Parse()

	if o.role != "primary" && o.role != "replica" {
		fmt.Fprintf(os.Stderr, "hdcserve: -role must be primary or replica, got %q\n", o.role)
		os.Exit(2)
	}
	if o.role == "replica" && o.primaryURL == "" {
		fmt.Fprintln(os.Stderr, "hdcserve: -role replica requires -primary-url")
		os.Exit(2)
	}
	if o.role != "replica" && o.primaryURL != "" {
		fmt.Fprintln(os.Stderr, "hdcserve: -primary-url only applies with -role replica")
		os.Exit(2)
	}
	if (o.clusterPath == "") != (o.shardSpec == "") {
		fmt.Fprintln(os.Stderr, "hdcserve: -cluster and -shard go together (e.g. -cluster manifest.hclu -shard 0/2)")
		os.Exit(2)
	}

	h, srv, err := build(&o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdcserve: %v\n", err)
		os.Exit(2)
	}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdcserve: %v\n", err)
			os.Exit(2)
		}
		err = srv.Restore(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdcserve: warm start: %v\n", err)
			os.Exit(2)
		}
		log.Printf("warm-started from %s at version %d", *load, srv.Snapshot().Version())
	}
	if o.dataDir != "" {
		log.Printf("durable: data-dir %s, recovered at version %d", o.dataDir, srv.Snapshot().Version())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdcserve: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var follower *hdcirc.ReplicationFollower
	if o.role == "replica" {
		follower, err = hdcirc.StartReplicationFollower(ctx, hdcirc.ReplicationFollowerConfig{
			Server:     srv,
			PrimaryURL: o.primaryURL,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdcserve: %v\n", err)
			os.Exit(2)
		}
		// An admin promote must cancel the replication loop before the role
		// flips, or the loop would fight the new primary. After the flip the
		// new primary starts hosting /v1/replicate:stream itself, so the
		// tier's surviving nodes (and the revived old primary) can
		// re-follow it; without -data-dir there is no log to ship.
		o.promote.set(func() error {
			if err := follower.Promote(); err != nil {
				return err
			}
			if o.dataDir != "" {
				src, err := hdcirc.NewReplicationSource(hdcirc.ReplicationSourceConfig{Server: srv})
				if err != nil {
					log.Printf("promote: serving writes, but cannot ship replication: %v", err)
					return nil
				}
				h.SetReplication(src)
			}
			return nil
		})
		log.Printf("replica: replicating from %s", o.primaryURL)
	}
	if o.role == "replica" || o.dataDir != "" {
		go logReplication(ctx, srv, 10*time.Second)
	}
	shardNote := ""
	if o.clusterPath != "" {
		shardNote = " cluster-shard=" + o.shardSpec
	}
	if o.scenario != "" {
		log.Printf("hdcserve listening on %s (role=%s scenario=%s d=%d k=%d shards=%d%s)", ln.Addr(), o.role, o.scenario, o.dim, o.classes, o.shards, shardNote)
	} else {
		log.Printf("hdcserve listening on %s (role=%s d=%d k=%d shards=%d fields=%d%s)", ln.Addr(), o.role, o.dim, o.classes, o.shards, o.fields, shardNote)
	}
	if err := serveHTTP(ctx, ln, h, srv); err != nil {
		log.Fatal(err)
	}
	if follower != nil {
		follower.Close() // the signal context already stopped it; wait it out
	}
	log.Printf("hdcserve: clean shutdown at version %d", srv.Snapshot().Version())
}

// serveHTTP serves the handler on ln until ctx is canceled (SIGINT or
// SIGTERM in production), then shuts down gracefully: http.Server.Shutdown
// waits for in-flight requests — a training batch that reached ApplyBatch
// finishes and lands in the write-ahead log — and only then is the
// durability layer flushed and closed.
func serveHTTP(ctx context.Context, ln net.Listener, h http.Handler, model *hdcirc.Server) error {
	srv := &http.Server{
		Handler: h,
		// Evict slowloris connections at the header stage and idle
		// keep-alives; no ReadTimeout — long-lived NDJSON ingest streams
		// are legitimate.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc: // listener failed outright
		model.Close()
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	shutdownErr := srv.Shutdown(sctx)
	<-errc // Serve has returned http.ErrServerClosed
	if err := model.Close(); err != nil {
		return fmt.Errorf("closing durability layer: %w", err)
	}
	return shutdownErr
}
