// Command hdcserve is a small HTTP JSON front end over the concurrency-safe
// serving layer (hdcirc.Server): it hosts a record-encoding HDC classifier
// plus item memory behind versioned snapshots, so any number of in-flight
// requests read lock-free while training writes stream in.
//
//	go run ./cmd/hdcserve -addr :8080 -d 2048 -k 4 -fields 3 -shards 2
//
// Endpoints (all JSON unless noted):
//
//	POST /train    {"samples":[{"label":0,"features":[…]}],"symbols":["a"]}
//	               → {"version":…,"trained":…,"samples":…,"items":…}
//	POST /predict  {"queries":[[…],[…]]}
//	               → {"version":…,"classes":[…],"distances":[…]}
//	GET  /lookup?key=K      → consistent-hash routing of an arbitrary key
//	POST /lookup   {"features":[…]} → nearest interned symbol (cleanup)
//	GET  /stats    → operational summary (version, samples, reads, …)
//	GET  /snapshot → binary snapshot download (save while serving);
//	               restore it at boot with -load
//
// Samples are numeric records: each of the -fields features is
// level-encoded over the interval [lo, hi] given by the -lo and -hi flags
// and bound to its field key (the paper's record encoding ⊕ᵢ Kᵢ ⊗ Vᵢ).
// Training and prediction both encode across the server's worker pool.
//
// # Durability
//
// With -data-dir the server is durable: every training batch is written
// ahead to a CRC-framed log in that directory before it is applied (fsync
// cadence set by -fsync-every), background checkpoints persist the exact
// model state every -checkpoint-every batches and compact the log, and a
// restart recovers the pre-crash state bit for bit. On SIGINT/SIGTERM the
// server shuts down gracefully: in-flight requests (including training
// batches) complete, then the log is flushed and closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before giving up and closing anyway.
const shutdownGrace = 15 * time.Second

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		d       = flag.Int("d", 2048, "hypervector dimension")
		k       = flag.Int("k", 4, "number of classes")
		shards  = flag.Int("shards", 2, "sub-model shards")
		workers = flag.Int("workers", 0, "batch pool size (0 = GOMAXPROCS)")
		fields  = flag.Int("fields", 3, "features per sample record")
		lo      = flag.Float64("lo", 0, "feature interval lower bound")
		hi      = flag.Float64("hi", 1, "feature interval upper bound")
		levels  = flag.Int("levels", 64, "quantization levels per feature")
		seed    = flag.Uint64("seed", 1, "master seed")
		load    = flag.String("load", "", "warm-start from a snapshot file")
		dataDir = flag.String("data-dir", "", "durability directory (write-ahead log + checkpoints); empty = in-memory only")
		fsync   = flag.Int("fsync-every", 1, "with -data-dir: fsync the log once per this many batches (negative = never)")
		ckpt    = flag.Int("checkpoint-every", 256, "with -data-dir: background checkpoint cadence in batches (negative = manual only)")
	)
	flag.Parse()

	app, err := newApp(appConfig{
		Dim: *d, Classes: *k, Shards: *shards, Workers: *workers,
		Fields: *fields, Lo: *lo, Hi: *hi, Levels: *levels, Seed: *seed,
		DataDir: *dataDir, FsyncEvery: *fsync, CheckpointEvery: *ckpt,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdcserve: %v\n", err)
		os.Exit(2)
	}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdcserve: %v\n", err)
			os.Exit(2)
		}
		err = app.srv.Restore(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdcserve: warm start: %v\n", err)
			os.Exit(2)
		}
		log.Printf("warm-started from %s at version %d", *load, app.srv.Snapshot().Version())
	}
	if *dataDir != "" {
		log.Printf("durable: data-dir %s, recovered at version %d", *dataDir, app.srv.Snapshot().Version())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdcserve: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("hdcserve listening on %s (d=%d k=%d shards=%d fields=%d)", ln.Addr(), *d, *k, *shards, *fields)
	if err := serveHTTP(ctx, ln, app); err != nil {
		log.Fatal(err)
	}
	log.Printf("hdcserve: clean shutdown at version %d", app.srv.Snapshot().Version())
}

// serveHTTP serves the app's mux on ln until ctx is canceled (SIGINT or
// SIGTERM in production), then shuts down gracefully: http.Server.Shutdown
// waits for in-flight requests — a training batch that reached ApplyBatch
// finishes and lands in the write-ahead log — and only then is the
// durability layer flushed and closed.
func serveHTTP(ctx context.Context, ln net.Listener, a *app) error {
	srv := &http.Server{Handler: a.mux()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc: // listener failed outright
		a.close()
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	shutdownErr := srv.Shutdown(sctx)
	<-errc // Serve has returned http.ErrServerClosed
	if err := a.close(); err != nil {
		return fmt.Errorf("closing durability layer: %w", err)
	}
	return shutdownErr
}
