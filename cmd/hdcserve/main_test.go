package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testApp(t *testing.T) *app {
	t.Helper()
	a, err := newApp(appConfig{
		Dim: 1024, Classes: 3, Shards: 2, Workers: 2,
		Fields: 2, Lo: 0, Hi: 1, Levels: 32, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if ct := rec.Header().Get("Content-Type"); ct == "application/json" {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec, out
}

// trainBody builds a linearly separable workload: class i's features
// cluster around distinct corners of the unit square.
func trainBody(perClass int) map[string]any {
	centers := [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}}
	var samples []map[string]any
	for class, c := range centers {
		for j := 0; j < perClass; j++ {
			jit := 0.02 * float64(j%5)
			samples = append(samples, map[string]any{
				"label":    class,
				"features": []float64{c[0] + jit, c[1] - jit},
			})
		}
	}
	return map[string]any{"samples": samples, "symbols": []string{"sensor-a", "sensor-b"}}
}

func TestTrainPredictRoundTrip(t *testing.T) {
	a := testApp(t)
	m := a.mux()

	rec, out := doJSON(t, m, http.MethodPost, "/train", trainBody(10))
	if rec.Code != http.StatusOK {
		t.Fatalf("/train = %d: %s", rec.Code, rec.Body.String())
	}
	if out["version"].(float64) != 1 || out["trained"].(float64) != 30 || out["items"].(float64) != 2 {
		t.Fatalf("train response: %v", out)
	}

	rec, out = doJSON(t, m, http.MethodPost, "/predict", map[string]any{
		"queries": [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/predict = %d: %s", rec.Code, rec.Body.String())
	}
	classes := out["classes"].([]any)
	for want, got := range classes {
		if int(got.(float64)) != want {
			t.Errorf("query %d classified as %v", want, got)
		}
	}
	if out["version"].(float64) != 1 {
		t.Errorf("predict version = %v", out["version"])
	}
	if len(out["distances"].([]any)) != 3 {
		t.Errorf("distances = %v", out["distances"])
	}
}

func TestLookupSurfaces(t *testing.T) {
	a := testApp(t)
	m := a.mux()
	if rec, _ := doJSON(t, m, http.MethodPost, "/train", trainBody(4)); rec.Code != http.StatusOK {
		t.Fatal("train failed")
	}

	// Key routing: deterministic, in range.
	rec, out := doJSON(t, m, http.MethodGet, "/lookup?key=user-42", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/lookup?key = %d", rec.Code)
	}
	shard := out["shard"].(float64)
	if shard < 0 || shard >= 2 {
		t.Errorf("shard = %v", shard)
	}
	if out["member"].(string) != fmt.Sprintf("shard/%d", int(shard)) {
		t.Errorf("member = %v", out["member"])
	}
	_, out2 := doJSON(t, m, http.MethodGet, "/lookup?key=user-42", nil)
	if out2["shard"].(float64) != shard {
		t.Error("routing not deterministic")
	}

	// Symbol membership.
	rec, out = doJSON(t, m, http.MethodGet, "/lookup?symbol=sensor-a", nil)
	if rec.Code != http.StatusOK || out["found"].(bool) != true {
		t.Errorf("symbol lookup: %d %v", rec.Code, out)
	}
	_, out = doJSON(t, m, http.MethodGet, "/lookup?symbol=missing", nil)
	if out["found"].(bool) != false {
		t.Errorf("phantom symbol: %v", out)
	}

	// Cleanup by features returns some interned symbol with a similarity.
	rec, out = doJSON(t, m, http.MethodPost, "/lookup", map[string]any{"features": []float64{0.3, 0.3}})
	if rec.Code != http.StatusOK {
		t.Fatalf("/lookup POST = %d", rec.Code)
	}
	if s := out["symbol"].(string); s != "sensor-a" && s != "sensor-b" {
		t.Errorf("cleanup symbol = %q", s)
	}

	// Neither key nor symbol → 400.
	if rec, _ := doJSON(t, m, http.MethodGet, "/lookup", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bare /lookup = %d", rec.Code)
	}
}

func TestStats(t *testing.T) {
	a := testApp(t)
	m := a.mux()
	doJSON(t, m, http.MethodPost, "/train", trainBody(5))
	doJSON(t, m, http.MethodPost, "/predict", map[string]any{"queries": [][]float64{{0.2, 0.2}}})

	rec, out := doJSON(t, m, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	if out["version"].(float64) != 1 || out["samples"].(float64) != 15 {
		t.Errorf("stats: %v", out)
	}
	if out["shards"].(float64) != 2 || out["classes"].(float64) != 3 {
		t.Errorf("stats shape: %v", out)
	}
	if out["reads_served"].(float64) < 1 {
		t.Errorf("reads_served: %v", out["reads_served"])
	}
}

func TestSnapshotDownloadWarmStart(t *testing.T) {
	a := testApp(t)
	m := a.mux()
	doJSON(t, m, http.MethodPost, "/train", trainBody(8))

	req := httptest.NewRequest(http.MethodGet, "/snapshot", nil)
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/snapshot = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Snapshot-Version"); got != "1" {
		t.Errorf("snapshot version header = %q", got)
	}

	// Warm-start a second app from the downloaded bytes (the -load path).
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := os.WriteFile(path, rec.Body.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	b := testApp(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := b.srv.Restore(f); err != nil {
		t.Fatal(err)
	}

	// Both apps must answer identically.
	queries := map[string]any{"queries": [][]float64{{0.1, 0.1}, {0.9, 0.1}, {0.5, 0.9}, {0.4, 0.6}}}
	_, outA := doJSON(t, a.mux(), http.MethodPost, "/predict", queries)
	_, outB := doJSON(t, b.mux(), http.MethodPost, "/predict", queries)
	ca, cb := outA["classes"].([]any), outB["classes"].([]any)
	for i := range ca {
		if ca[i].(float64) != cb[i].(float64) {
			t.Fatalf("warm-started app disagrees on query %d: %v vs %v", i, ca[i], cb[i])
		}
	}
}

func TestRequestValidation(t *testing.T) {
	a := testApp(t)
	m := a.mux()
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{http.MethodGet, "/train", nil, http.StatusMethodNotAllowed},
		{http.MethodGet, "/predict", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/stats", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/snapshot", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/train", map[string]any{}, http.StatusBadRequest},
		{http.MethodPost, "/predict", map[string]any{}, http.StatusBadRequest},
		{http.MethodPost, "/train", map[string]any{
			"samples": []map[string]any{{"label": 0, "features": []float64{1}}}, // wrong arity
		}, http.StatusBadRequest},
		{http.MethodPost, "/train", map[string]any{
			"samples": []map[string]any{{"label": 99, "features": []float64{0.1, 0.2}}}, // class range
		}, http.StatusBadRequest},
		{http.MethodPost, "/predict", map[string]any{"queries": [][]float64{{0.5}}}, http.StatusBadRequest},
	}
	for i, c := range cases {
		rec, _ := doJSON(t, m, c.method, c.path, c.body)
		if rec.Code != c.want {
			t.Errorf("case %d (%s %s): code %d, want %d — %s", i, c.method, c.path, rec.Code, c.want, rec.Body.String())
		}
	}
	// Malformed JSON body.
	req := httptest.NewRequest(http.MethodPost, "/train", bytes.NewReader([]byte("{nope")))
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON = %d", rec.Code)
	}
	// A failed batch must not advance the version.
	_, out := doJSON(t, m, http.MethodGet, "/stats", nil)
	if out["version"].(float64) != 0 {
		t.Errorf("rejected requests advanced version to %v", out["version"])
	}
}

// TestConcurrentTrafficThroughHandlers hammers predict from several
// goroutines while training writes land — the HTTP-level smoke version of
// the serving layer's race guarantee (run with -race in CI).
func TestConcurrentTrafficThroughHandlers(t *testing.T) {
	a := testApp(t)
	m := a.mux()
	doJSON(t, m, http.MethodPost, "/train", trainBody(5))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec, _ := doJSON(t, m, http.MethodPost, "/predict",
					map[string]any{"queries": [][]float64{{0.1, 0.1}, {0.5, 0.9}}})
				if rec.Code != http.StatusOK {
					t.Errorf("predict under load = %d", rec.Code)
					return
				}
			}
		}()
	}
	for b := 0; b < 10; b++ {
		if rec, _ := doJSON(t, m, http.MethodPost, "/train", trainBody(3)); rec.Code != http.StatusOK {
			t.Fatalf("train under load = %d", rec.Code)
		}
	}
	close(stop)
	wg.Wait()
	_, out := doJSON(t, m, http.MethodGet, "/stats", nil)
	if out["version"].(float64) != 11 {
		t.Errorf("final version = %v, want 11", out["version"])
	}
}
