package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"hdcirc"
)

// appConfig sizes the served model and its record encoder.
type appConfig struct {
	Dim, Classes, Shards, Workers int
	Fields                        int
	Lo, Hi                        float64
	Levels                        int
	Seed                          uint64
	// DataDir enables durability: write-ahead log plus checkpoints live
	// here and existing state is recovered at startup. Empty keeps the
	// server in-memory only.
	DataDir         string
	FsyncEvery      int
	CheckpointEvery int
}

// app owns the server plus the encoding stack requests pass through.
type app struct {
	cfg appConfig
	srv *hdcirc.Server
	rec *hdcirc.RecordEncoder
	enc []hdcirc.FieldEncoder // the per-field scalar encoder, repeated
}

func newApp(cfg appConfig) (*app, error) {
	if cfg.Fields <= 0 {
		return nil, fmt.Errorf("need at least one record field, got %d", cfg.Fields)
	}
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("need at least one quantization level, got %d", cfg.Levels)
	}
	if cfg.Hi <= cfg.Lo {
		return nil, fmt.Errorf("empty feature interval [%v,%v]", cfg.Lo, cfg.Hi)
	}
	scfg := hdcirc.ServerConfig{
		Dim:     cfg.Dim,
		Classes: cfg.Classes,
		Shards:  cfg.Shards,
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
	}
	if cfg.DataDir != "" {
		scfg.WAL = &hdcirc.WALConfig{
			Dir:             cfg.DataDir,
			SyncEvery:       cfg.FsyncEvery,
			CheckpointEvery: cfg.CheckpointEvery,
		}
	}
	srv, err := hdcirc.OpenDurableServer(scfg)
	if err != nil {
		return nil, err
	}
	basis := hdcirc.NewBasis(hdcirc.Level, cfg.Levels, cfg.Dim, 0, hdcirc.SubStream(cfg.Seed, "hdcserve/levels"))
	scalar := hdcirc.NewScalarEncoder(basis, cfg.Lo, cfg.Hi)
	enc := make([]hdcirc.FieldEncoder, cfg.Fields)
	for i := range enc {
		enc[i] = scalar
	}
	return &app{
		cfg: cfg,
		srv: srv,
		rec: hdcirc.NewRecordEncoder(cfg.Dim, cfg.Fields, cfg.Seed),
		enc: enc,
	}, nil
}

// close flushes and releases the serving layer: in-flight checkpoints
// finish and the write-ahead log is synced and closed. Idempotent.
func (a *app) close() error { return a.srv.Close() }

// encode maps one feature record to its hypervector. The record encoder is
// stateless per call (fixed keys, fixed tie vector), so encode is safe
// from any number of request goroutines.
func (a *app) encode(features []float64) (*hdcirc.Vector, error) {
	if len(features) != a.cfg.Fields {
		return nil, fmt.Errorf("record has %d features, server expects %d", len(features), a.cfg.Fields)
	}
	for i, f := range features {
		if f != f { // NaN: the scalar encoder would panic
			return nil, fmt.Errorf("feature %d is NaN", i)
		}
	}
	return a.rec.EncodeRecord(features, a.enc), nil
}

// encodeBatch encodes many records across the server's worker pool.
func (a *app) encodeBatch(records [][]float64) ([]*hdcirc.Vector, error) {
	for i, rec := range records {
		if len(rec) != a.cfg.Fields {
			return nil, fmt.Errorf("record %d has %d features, server expects %d", i, len(rec), a.cfg.Fields)
		}
		for j, f := range rec {
			if f != f {
				return nil, fmt.Errorf("record %d feature %d is NaN", i, j)
			}
		}
	}
	return hdcirc.EncodeBatch(a.srv.Pool(), records, func(rec []float64) *hdcirc.Vector {
		return a.rec.EncodeRecord(rec, a.enc)
	}), nil
}

func (a *app) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/train", a.handleTrain)
	m.HandleFunc("/predict", a.handlePredict)
	m.HandleFunc("/lookup", a.handleLookup)
	m.HandleFunc("/stats", a.handleStats)
	m.HandleFunc("/snapshot", a.handleSnapshot)
	return m
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type trainRequest struct {
	Samples []struct {
		Label    int       `json:"label"`
		Features []float64 `json:"features"`
	} `json:"samples"`
	Symbols []string `json:"symbols"`
}

type trainResponse struct {
	Version uint64 `json:"version"`
	Trained int    `json:"trained"`
	Samples uint64 `json:"samples"`
	Items   int    `json:"items"`
}

// handleTrain applies one write batch: encoded training samples plus item
// membership churn, published as one new snapshot version.
func (a *app) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req trainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Samples) == 0 && len(req.Symbols) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	records := make([][]float64, len(req.Samples))
	for i, s := range req.Samples {
		records[i] = s.Features
	}
	hvs, err := a.encodeBatch(records)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	batch := hdcirc.ServerBatch{Items: req.Symbols}
	for i, s := range req.Samples {
		batch.Train = append(batch.Train, hdcirc.ServerSample{Class: s.Label, HV: hvs[i]})
	}
	snap, err := a.srv.ApplyBatch(batch)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, trainResponse{
		Version: snap.Version(),
		Trained: len(req.Samples),
		Samples: snap.Samples(),
		Items:   snap.NumItems(),
	})
}

type predictRequest struct {
	Queries [][]float64 `json:"queries"`
}

type predictResponse struct {
	Version   uint64    `json:"version"`
	Classes   []int     `json:"classes"`
	Distances []float64 `json:"distances"`
}

// handlePredict classifies every query against one consistent snapshot.
func (a *app) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("no queries"))
		return
	}
	hvs, err := a.encodeBatch(req.Queries)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	snap := a.srv.Snapshot()
	classes, dists := snap.PredictBatch(a.srv.Pool(), hvs)
	a.srv.CountReads(len(hvs))
	writeJSON(w, http.StatusOK, predictResponse{Version: snap.Version(), Classes: classes, Distances: dists})
}

type lookupResponse struct {
	// Key-routing fields (GET ?key=).
	Key    string `json:"key,omitempty"`
	Shard  *int   `json:"shard,omitempty"`
	Member string `json:"member,omitempty"`
	Slot   *int   `json:"slot,omitempty"`
	// Cleanup fields (POST features / GET ?symbol=).
	Symbol     string  `json:"symbol,omitempty"`
	Similarity float64 `json:"similarity,omitempty"`
	Found      *bool   `json:"found,omitempty"`
	Version    uint64  `json:"version"`
}

// handleLookup serves the HD-hashing surface: GET ?key=K routes an
// arbitrary key through the consistent-hashing ring; GET ?symbol=S checks
// item membership; POST {"features":[…]} runs nearest-symbol cleanup on
// the encoded record.
func (a *app) handleLookup(w http.ResponseWriter, r *http.Request) {
	snap := a.srv.Snapshot()
	switch r.Method {
	case http.MethodGet:
		if key := r.URL.Query().Get("key"); key != "" {
			shard, member, slot := a.srv.Route(key)
			writeJSON(w, http.StatusOK, lookupResponse{
				Key: key, Shard: &shard, Member: member, Slot: &slot, Version: snap.Version(),
			})
			return
		}
		if sym := r.URL.Query().Get("symbol"); sym != "" {
			_, ok := snap.Item(sym)
			writeJSON(w, http.StatusOK, lookupResponse{Symbol: sym, Found: &ok, Version: snap.Version()})
			return
		}
		writeErr(w, http.StatusBadRequest, errors.New("need ?key= or ?symbol="))
	case http.MethodPost:
		var req struct {
			Features []float64 `json:"features"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		hv, err := a.encode(req.Features)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		sym, sim, ok := snap.Lookup(hv)
		a.srv.CountReads(1)
		if !ok {
			writeErr(w, http.StatusNotFound, errors.New("no items interned"))
			return
		}
		writeJSON(w, http.StatusOK, lookupResponse{Symbol: sym, Similarity: sim, Version: snap.Version()})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET or POST only"))
	}
}

// handleStats reports the operational summary of the current snapshot.
func (a *app) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, a.srv.Stats())
}

// handleSnapshot streams the current snapshot's binary serialization —
// saving a live server without stopping reads or writes; feed the bytes
// back through -load to warm-start a replacement.
func (a *app) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	snap := a.srv.Snapshot()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snapshot-Version", fmt.Sprint(snap.Version()))
	if _, err := snap.WriteTo(w); err != nil {
		// Headers are gone; all we can do is log-level signal via close.
		return
	}
}
