package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"hdcirc"
)

// durableTestConfig is the app shape shared by the shutdown and crash
// tests (and mirrored in-process to verify recovered bytes).
func durableTestConfig(dataDir string) appConfig {
	return appConfig{
		Dim: 512, Classes: 3, Shards: 2, Workers: 2,
		Fields: 2, Lo: 0, Hi: 1, Levels: 16, Seed: 7,
		DataDir: dataDir, FsyncEvery: 1, CheckpointEvery: 4,
	}
}

// trainBodyIdx is a deterministic training batch per index, so a replay of
// bodies 0..V-1 reproduces any server that applied the first V batches.
func trainBodyIdx(i int) map[string]any {
	f := float64(i%10) / 10
	return map[string]any{
		"samples": []map[string]any{
			{"label": i % 3, "features": []float64{f, 1 - f}},
			{"label": (i + 1) % 3, "features": []float64{1 - f, f}},
		},
		"symbols": []string{fmt.Sprintf("sym/%d", i%6)},
	}
}

func postJSON(client *http.Client, url string, body any) (map[string]any, int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, resp.StatusCode, err
	}
	return out, resp.StatusCode, nil
}

// TestGracefulShutdownCompletesInFlightAndFlushes drives serveHTTP — the
// exact path SIGINT/SIGTERM triggers in main — and checks the contract:
// training batches in flight at shutdown complete (acknowledged work is
// never torn), the WAL is flushed, and a reopened server recovers every
// acknowledged batch.
func TestGracefulShutdownCompletesInFlightAndFlushes(t *testing.T) {
	dir := t.TempDir()
	a, err := newApp(durableTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveHTTP(ctx, ln, a) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}

	// A baseline of synchronously acknowledged batches…
	const warm = 5
	for i := 0; i < warm; i++ {
		out, code, err := postJSON(client, base+"/train", trainBodyIdx(i))
		if err != nil || code != http.StatusOK {
			t.Fatalf("train %d: code %d, err %v (%v)", i, code, err, out)
		}
	}
	// …then keep writing from a goroutine while shutdown lands mid-stream.
	var acked, sent atomic.Int64
	sent.Store(warm)
	acked.Store(warm)
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		for i := warm; ; i++ {
			sent.Add(1)
			_, code, err := postJSON(client, base+"/train", trainBodyIdx(i))
			if err != nil || code != http.StatusOK {
				return // the listener is gone: shutdown reached us
			}
			acked.Add(1)
		}
	}()
	for acked.Load() < warm+3 { // let a few in-flight writes overlap shutdown
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serveHTTP returned %v", err)
	}
	<-senderDone

	// The listener must actually be closed now.
	if _, _, err := postJSON(client, base+"/train", trainBodyIdx(0)); err == nil {
		t.Fatal("train accepted after shutdown")
	}
	// Writes after close must be refused by the server layer too.
	if _, err := a.srv.ApplyBatch(hdcirc.ServerBatch{Items: []string{"post-close"}}); err == nil {
		t.Fatal("ApplyBatch accepted after close")
	}

	// Recovery: every acknowledged batch survived the shutdown flush.
	b, err := newApp(durableTestConfig(dir))
	if err != nil {
		t.Fatalf("reopening data dir: %v", err)
	}
	defer b.close()
	v := int64(b.srv.Snapshot().Version())
	if v < acked.Load() || v > sent.Load() {
		t.Fatalf("recovered version %d outside [acked %d, sent %d]", v, acked.Load(), sent.Load())
	}
}
