package main

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hdcirc"
	"hdcirc/client"
)

// durableTestOptions is the server shape shared by the shutdown test here
// and the client package's crash-recovery contract test (which runs this
// binary as a child process with the same flags).
func durableTestOptions(dataDir string) *options {
	return &options{
		dim: 512, classes: 3, shards: 2, workers: 2,
		fields: 2, lo: 0, hi: 1, levels: 16, seed: 7,
		dataDir: dataDir, fsyncEvery: 1, checkpointEvery: 4,
	}
}

// trainReqIdx is a deterministic training batch per index, so a replay of
// batches 0..V-1 reproduces any server that applied the first V batches.
func trainReqIdx(i int) client.TrainRequest {
	f := float64(i%10) / 10
	return client.TrainRequest{
		Samples: []client.Sample{
			{Label: i % 3, Features: []float64{f, 1 - f}},
			{Label: (i + 1) % 3, Features: []float64{1 - f, f}},
		},
		Symbols: []string{fmt.Sprintf("sym/%d", i%6)},
	}
}

// TestGracefulShutdownCompletesInFlightAndFlushes drives serveHTTP — the
// exact path SIGINT/SIGTERM triggers in main — through the client SDK and
// checks the contract: training batches in flight at shutdown complete
// (acknowledged work is never torn), the WAL is flushed, and a reopened
// server recovers every acknowledged batch.
func TestGracefulShutdownCompletesInFlightAndFlushes(t *testing.T) {
	dir := t.TempDir()
	h, srv, err := build(durableTestOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveHTTP(ctx, ln, h, srv) }()
	c, err := client.New("http://" + ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cctx, cdone := context.WithTimeout(context.Background(), 30*time.Second)
	defer cdone()

	// A baseline of synchronously acknowledged batches…
	const warm = 5
	for i := 0; i < warm; i++ {
		if _, err := c.Train(cctx, trainReqIdx(i)); err != nil {
			t.Fatalf("train %d: %v", i, err)
		}
	}
	// …then keep writing from a goroutine while shutdown lands mid-stream.
	var acked, sent atomic.Int64
	sent.Store(warm)
	acked.Store(warm)
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		for i := warm; ; i++ {
			sent.Add(1)
			if _, err := c.Train(cctx, trainReqIdx(i)); err != nil {
				return // the listener is gone: shutdown reached us
			}
			acked.Add(1)
		}
	}()
	for acked.Load() < warm+3 { // let a few in-flight writes overlap shutdown
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serveHTTP returned %v", err)
	}
	<-senderDone

	// The listener must actually be closed now.
	if _, err := c.Train(cctx, trainReqIdx(0)); err == nil {
		t.Fatal("train accepted after shutdown")
	}
	// Writes after close must be refused by the server layer too.
	if _, err := srv.ApplyBatch(hdcirc.ServerBatch{Items: []string{"post-close"}}); err == nil {
		t.Fatal("ApplyBatch accepted after close")
	}

	// Recovery: every acknowledged batch survived the shutdown flush.
	_, srv2, err := build(durableTestOptions(dir))
	if err != nil {
		t.Fatalf("reopening data dir: %v", err)
	}
	defer srv2.Close()
	v := int64(srv2.Snapshot().Version())
	if v < acked.Load() || v > sent.Load() {
		t.Fatalf("recovered version %d outside [acked %d, sent %d]", v, acked.Load(), sent.Load())
	}
}
