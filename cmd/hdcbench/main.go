// Command hdcbench measures the kernel hot paths — bind, distance,
// accumulate, threshold, rotate, majority, nearest and predict — and emits
// the ns/op numbers as JSON (BENCH_kernels.json by default) so the
// performance trajectory can be tracked across changes:
//
//	go run ./cmd/hdcbench            # d=10000, writes BENCH_kernels.json
//	go run ./cmd/hdcbench -d 4096 -o -   # custom dimension, JSON to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"hdcirc/internal/batch"
	"hdcirc/internal/bitvec"
	"hdcirc/internal/model"
	"hdcirc/internal/rng"
	"hdcirc/internal/serve"
)

type kernelResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	Dimension  int            `json:"dimension"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Kernels    []kernelResult `json:"kernels"`
}

func main() {
	d := flag.Int("d", 10000, "hypervector dimension")
	out := flag.String("o", "BENCH_kernels.json", "output path, or - for stdout")
	flag.Parse()
	if *d <= 0 {
		fmt.Fprintf(os.Stderr, "hdcbench: -d must be positive, got %d\n", *d)
		os.Exit(2)
	}

	r := rng.New(1)
	x := bitvec.Random(*d, r)
	y := bitvec.Random(*d, r)
	dst := bitvec.New(*d)

	acc := bitvec.NewAccumulator(*d)
	for i := 0; i < 9; i++ {
		acc.Add(bitvec.Random(*d, r))
	}

	nine := make([]*bitvec.Vector, 9)
	for i := range nine {
		nine[i] = bitvec.Random(*d, r)
	}

	cands := make([]*bitvec.Vector, 64)
	for i := range cands {
		cands[i] = bitvec.Random(*d, r)
	}

	const k = 32
	clf := model.NewClassifier(k, *d, 7)
	queries := make([]*bitvec.Vector, 256)
	for i := range queries {
		class := i % k
		hv := bitvec.Random(*d, rng.Sub(11, fmt.Sprintf("bench/sample/%d", i)))
		clf.Add(class, hv)
		queries[i] = hv
	}
	clf.Finalize()
	pool := batch.New(0)

	// Serving-layer fixture: the same 32-class workload behind snapshots.
	srv, err := serve.NewServer(serve.Config{Dim: *d, Classes: k, Shards: 4, Seed: 7})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdcbench:", err)
		os.Exit(1)
	}
	var sb serve.Batch
	for i, hv := range queries {
		sb.Train = append(sb.Train, serve.Sample{Class: i % k, HV: hv})
	}
	if _, err := srv.ApplyBatch(sb); err != nil {
		fmt.Fprintln(os.Stderr, "hdcbench:", err)
		os.Exit(1)
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"bind", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.XorInto(y, dst)
			}
		}},
		{"distance", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = x.HammingDistance(y)
			}
		}},
		{"accumulate", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				acc.Add(x)
			}
		}},
		{"threshold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = acc.Threshold(bitvec.TieZero, nil)
			}
		}},
		{"rotate", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = x.RotateBits(1)
			}
		}},
		{"majority9_csa", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = bitvec.Majority(nine, bitvec.TieZero, nil)
			}
		}},
		{"nearest64", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = bitvec.Nearest(x, cands)
			}
		}},
		{"predict_k32", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = clf.Predict(queries[i%len(queries)])
			}
		}},
		{"predict_batch256", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = clf.PredictBatch(pool, queries)
			}
		}},
		{"serve_predict", func(b *testing.B) {
			snap := srv.Snapshot()
			for i := 0; i < b.N; i++ {
				_, _ = snap.Predict(queries[i%len(queries)])
			}
		}},
		{"serve_predict_par", func(b *testing.B) {
			// GOMAXPROCS concurrent readers against the lock-free snapshot;
			// ns/op here is aggregate wall time per prediction, so
			// 1e9/ns_per_op is the served QPS at that fan-in.
			b.RunParallel(func(pb *testing.PB) {
				snap := srv.Snapshot()
				i := 0
				for pb.Next() {
					_, _ = snap.Predict(queries[i%len(queries)])
					i++
				}
			})
		}},
		{"serve_apply_batch256", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := srv.ApplyBatch(sb); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	rep := report{Dimension: *d, GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, bench := range benches {
		res := testing.Benchmark(bench.fn)
		rep.Kernels = append(rep.Kernels, kernelResult{
			Name:        bench.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-18s %12.1f ns/op %8d B/op %6d allocs/op\n",
			bench.name, float64(res.T.Nanoseconds())/float64(res.N),
			res.AllocedBytesPerOp(), res.AllocsPerOp())
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdcbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hdcbench:", err)
		os.Exit(1)
	}
}
