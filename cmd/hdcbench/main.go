// Command hdcbench measures the kernel hot paths — bind, distance,
// accumulate, threshold, rotate, majority, nearest, predict, serve, the
// sketch-indexed lookups, the durability paths and the HTTP serving API
// (protocol v1 through the client SDK) — and emits the ns/op numbers as JSON
// (BENCH_kernels.json by default) so the performance trajectory can be
// tracked across changes:
//
//	go run ./cmd/hdcbench            # d=10000, writes BENCH_kernels.json
//	go run ./cmd/hdcbench -d 4096 -o -   # custom dimension, JSON to stdout
//
// Each kernel is measured -samples times in interleaved round-robin
// order — every kernel once per round, then the next round — so drift in
// the runner (thermal ramps, noisy neighbors) lands evenly across
// kernels instead of poisoning whichever one ran last. The report
// records the per-round samples; ns/op, B/op and allocs/op are the
// medians across rounds.
//
// It is also the CI bench-regression gate: -compare diffs a freshly
// measured report against a committed baseline and fails on any kernel
// that regressed past the threshold:
//
//	go run ./cmd/hdcbench -o current.json
//	go run ./cmd/hdcbench -compare BENCH_kernels.json current.json
//
// The gate is statistical, not a single-number diff: a kernel fails only
// when the median regression exceeds -max-regress AND a one-sided
// Mann-Whitney rank test on the two sample sets rejects "no slowdown" at
// α=0.05 — a noisy runner that happens to catch one bad round cannot
// fail the build, and a consistent small-sample slowdown cannot hide
// behind a lucky median. allocs/op is gated exactly: any increase fails,
// since allocation counts are deterministic per code path. Rows whose
// recorded worker counts differ between baseline and current (the
// machine-width parallel benches on machines of different width) are
// reported but not gated — their ns/op are not comparable across core
// counts; the fixed-width _w2/_w4 scaling rows exist to stay gateable
// everywhere.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"hdcirc/client"
	"hdcirc/internal/batch"
	"hdcirc/internal/bitvec"
	"hdcirc/internal/cluster"
	"hdcirc/internal/embed"
	"hdcirc/internal/httpapi"
	"hdcirc/internal/index"
	"hdcirc/internal/model"
	"hdcirc/internal/repl"
	"hdcirc/internal/rng"
	"hdcirc/internal/serve"
	"hdcirc/internal/vfs"
	"hdcirc/internal/wal"
)

type kernelResult struct {
	Name string `json:"name"`
	// NsPerOp, BytesPerOp and AllocsPerOp are medians across the
	// interleaved measurement rounds.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Workers is the number of goroutines actually doing the work for this
	// row: 1 for the serial kernels, the batch-pool width for pooled
	// benches, GOMAXPROCS for the RunParallel benches, the fixed width for
	// the _wN scaling rows. ns/op for rows with Workers > 1 is aggregate
	// wall time per op at that fan-in, so it is only comparable between
	// runs with equal Workers.
	Workers int `json:"workers"`
	// Samples holds the per-round ns/op measurements behind the medians;
	// -compare feeds them to the rank test.
	Samples []float64 `json:"samples_ns,omitempty"`
}

type indexReport struct {
	N          int     `json:"n"`
	Noise      float64 `json:"noise"`
	Queries    int     `json:"queries"`
	Recall     float64 `json:"recall"`      // indexed lookup returns the exact-scan symbol
	SpeedupX   float64 `json:"speedup_x"`   // linear ns/op ÷ indexed ns/op
	Candidates int     `json:"candidates"`  // resolved re-rank candidate count
	Signature  int     `json:"signature_m"` // resolved signature bits
}

type report struct {
	Dimension int    `json:"dimension"`
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the parallelism requested of the runtime; NumCPU is
	// what the machine effectively offers. A report measured with the two
	// diverging (a capped container, taskset) explains otherwise-puzzling
	// parallel rows.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// SamplesPerKernel is the number of interleaved measurement rounds.
	SamplesPerKernel int            `json:"samples_per_kernel"`
	Kernels          []kernelResult `json:"kernels"`
	Index            *indexReport   `json:"index,omitempty"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdcbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	d := flag.Int("d", 10000, "hypervector dimension")
	out := flag.String("o", "BENCH_kernels.json", "output path, or - for stdout")
	samples := flag.Int("samples", 5, "interleaved measurement rounds per kernel; medians are reported, the rounds feed -compare's rank test")
	compare := flag.String("compare", "", "baseline report to diff against; the positional argument is the current report (compare-only mode, no benchmarks run)")
	maxRegress := flag.Float64("max-regress", 0.35, "with -compare: maximum tolerated median ns/op regression per kernel (0.35 = +35%), gated at α=0.05 significance when both reports carry samples")
	flag.Parse()
	if *compare != "" {
		if flag.NArg() != 1 {
			fatalf("-compare needs exactly one positional argument (the current report), got %d", flag.NArg())
		}
		os.Exit(runCompare(*compare, flag.Arg(0), *maxRegress))
	}
	if *d <= 0 {
		fmt.Fprintf(os.Stderr, "hdcbench: -d must be positive, got %d\n", *d)
		os.Exit(2)
	}
	if *samples < 1 {
		fmt.Fprintf(os.Stderr, "hdcbench: -samples must be at least 1, got %d\n", *samples)
		os.Exit(2)
	}

	r := rng.New(1)
	x := bitvec.Random(*d, r)
	y := bitvec.Random(*d, r)
	dst := bitvec.New(*d)

	acc := bitvec.NewAccumulator(*d)
	for i := 0; i < 9; i++ {
		acc.Add(bitvec.Random(*d, r))
	}

	nine := make([]*bitvec.Vector, 9)
	for i := range nine {
		nine[i] = bitvec.Random(*d, r)
	}

	cands := make([]*bitvec.Vector, 64)
	for i := range cands {
		cands[i] = bitvec.Random(*d, r)
	}

	const k = 32
	clf := model.NewClassifier(k, *d, 7)
	queries := make([]*bitvec.Vector, 256)
	for i := range queries {
		class := i % k
		hv := bitvec.Random(*d, rng.Sub(11, fmt.Sprintf("bench/sample/%d", i)))
		clf.Add(class, hv)
		queries[i] = hv
	}
	clf.Finalize()
	pool := batch.New(0)
	// Fixed-width pools for the _wN scaling rows: unlike the machine-width
	// pool above, their worker counts match on every machine, so the rows
	// gate in -compare everywhere and their ratios expose scaling
	// regressions (a lost parallel speedup) rather than core counts.
	pool2, pool4 := batch.New(2), batch.New(4)

	// Serving-layer fixture: the same 32-class workload behind snapshots.
	srv, err := serve.NewServer(serve.Config{Dim: *d, Classes: k, Shards: 4, Seed: 7})
	if err != nil {
		fatalf("%v", err)
	}
	var sb serve.Batch
	for i, hv := range queries {
		sb.Train = append(sb.Train, serve.Sample{Class: i % k, HV: hv})
	}
	if _, err := srv.ApplyBatch(sb); err != nil {
		fatalf("%v", err)
	}

	// Associative-lookup fixture: a 10k-symbol item memory, probed with
	// noisy (30% flipped) copies of stored items — the cleanup workload the
	// sketch index accelerates. One exact-scan twin, one auto-indexed.
	const (
		itemN       = 10000
		itemNoise   = 0.3
		itemQueries = 500
	)
	imLinear := embed.NewItemMemory(*d, 13)
	imLinear.SetIndexConfig(index.Config{Disabled: true})
	imIndexed := embed.NewItemMemory(*d, 13)
	itemSyms := make([]string, itemN)
	for i := range itemSyms {
		itemSyms[i] = fmt.Sprintf("item/%d", i)
		imLinear.Get(itemSyms[i])
		imIndexed.Get(itemSyms[i])
	}
	_, itemVecs := imIndexed.View()
	noiseSrc := rng.Sub(17, "bench/item-noise")
	itemProbes := make([]*bitvec.Vector, itemQueries)
	for i := range itemProbes {
		q := imIndexed.Get(itemSyms[(i*31)%itemN]).Clone()
		for b := 0; b < *d; b++ {
			if noiseSrc.Float64() < itemNoise {
				q.FlipBit(b)
			}
		}
		itemProbes[i] = q
	}
	imIndexed.Lookup(itemProbes[0]) // warm: build the index outside the timed loop

	// Durability fixtures. wal_append measures the log hot path — framing,
	// CRC, sequential write — on a payload sized like a 4-sample training
	// batch, with fsync disabled so the row gates the code, not the CI
	// runner's disk. recover_replay measures a full recovery: open a
	// directory holding 64 such batches and replay them into a fresh
	// server (the deterministic apply path, snapshot per record).
	tmpRoot, err := os.MkdirTemp("", "hdcbench-wal")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(tmpRoot)
	// Default 4 MiB rotation plus periodic TruncateBefore keep the log at
	// the bounded steady state a checkpointing server maintains — without
	// the compaction the file grows by ~1 GB per measurement and the row
	// benchmarks the filesystem's page-cache behavior instead of the code
	// (observed 2.5× run-to-run swings).
	appendLog, err := wal.Open(filepath.Join(tmpRoot, "append"), wal.Options{SyncEvery: -1})
	if err != nil {
		fatalf("%v", err)
	}
	defer appendLog.Close()
	walPayload := make([]byte, 4*(4+8*((*d+63)/64))+21)
	payloadSrc := rng.Sub(23, "bench/wal-payload")
	for i := range walPayload {
		walPayload[i] = byte(payloadSrc.Uint64())
	}

	recoverCfg := serve.Config{
		Dim: *d, Classes: k, Shards: 4, Seed: 7,
		WAL: &serve.WALConfig{Dir: filepath.Join(tmpRoot, "recover"), SyncEvery: -1, CheckpointEvery: -1},
	}
	recSrv, err := serve.Open(recoverCfg)
	if err != nil {
		fatalf("%v", err)
	}
	for i := 0; i < 64; i++ {
		var rb serve.Batch
		for j := 0; j < 4; j++ {
			s := queries[(4*i+j)%len(queries)]
			rb.Train = append(rb.Train, serve.Sample{Class: (4*i + j) % k, HV: s})
		}
		if _, err := recSrv.ApplyBatch(rb); err != nil {
			fatalf("%v", err)
		}
	}
	if err := recSrv.Close(); err != nil {
		fatalf("%v", err)
	}

	// Fault-seam fixtures. wal_append_faulty_disk runs the same append hot
	// path through a FaultFS with a fault armed that never matches — the
	// price of the injection seam itself, which production pays as a nil
	// check (vfs.Default) and tests pay per op. degraded_predict measures
	// the read plane of a server whose write plane died: snapshot load +
	// predict must cost the same as on a healthy server.
	faultyFS := vfs.NewFaultFS(nil)
	faultyFS.Arm(vfs.Fault{Op: vfs.OpWrite, Path: "no-such-path", Err: vfs.ErrIO})
	faultyLog, err := wal.Open(filepath.Join(tmpRoot, "faulty"), wal.Options{SyncEvery: -1, FS: faultyFS})
	if err != nil {
		fatalf("%v", err)
	}
	defer faultyLog.Close()

	degFS := vfs.NewFaultFS(nil)
	degSrv, err := serve.Open(serve.Config{
		Dim: *d, Classes: k, Shards: 4, Seed: 7,
		WAL: &serve.WALConfig{Dir: filepath.Join(tmpRoot, "degraded"), SyncEvery: -1, CheckpointEvery: -1, FS: degFS},
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer degSrv.Close()
	if _, err := degSrv.ApplyBatch(sb); err != nil {
		fatalf("%v", err)
	}
	degFS.Arm(vfs.Fault{Op: vfs.OpWrite, Path: ".seg", Err: vfs.ErrNoSpace})
	if _, err := degSrv.ApplyBatch(sb); err == nil {
		fatalf("degraded fixture: faulted append succeeded")
	}
	if st := degSrv.State(); st != serve.StateDegraded {
		fatalf("degraded fixture: state %v", st)
	}

	// Serving-API-v1 fixture: the protocol handler over a loopback HTTP
	// server, driven through the client SDK — the full production path
	// (wire, decode, admission, record encode, snapshot predict / batch
	// apply). Its own serve.Server keeps the mutation-heavy ingest row
	// from skewing the in-process serving fixtures above.
	const httpFields = 2
	httpSrv, err := serve.NewServer(serve.Config{Dim: *d, Classes: k, Shards: 4, Seed: 7})
	if err != nil {
		fatalf("%v", err)
	}
	httpEnc, err := httpapi.NewScalarRecordEncoder(httpapi.ScalarRecordConfig{
		Dim: *d, Fields: httpFields, Lo: 0, Hi: 1, Levels: 64, Seed: 7,
	})
	if err != nil {
		fatalf("%v", err)
	}
	httpAPI, err := httpapi.New(httpapi.Config{Server: httpSrv, Encoder: httpEnc})
	if err != nil {
		fatalf("%v", err)
	}
	httpTS := httptest.NewServer(httpAPI)
	defer httpTS.Close()
	cli, err := client.New(httpTS.URL)
	if err != nil {
		fatalf("%v", err)
	}
	httpRecs := make([][]float64, 256)
	for i := range httpRecs {
		f := float64(i%32) / 32
		httpRecs[i] = []float64{f, 1 - f}
	}
	{
		var hb serve.Batch
		for i, rec := range httpRecs {
			hb.Train = append(hb.Train, serve.Sample{Class: i % k, HV: httpEnc.Encode(rec)})
		}
		if _, err := httpSrv.ApplyBatch(hb); err != nil {
			fatalf("%v", err)
		}
	}
	httpRow := func(i int) httpapi.IngestRow {
		label := i % k
		return httpapi.IngestRow{Label: &label, Features: httpRecs[i%len(httpRecs)]}
	}

	// Replication fixtures. repl_ship_record measures the tier's per-record
	// pipeline — primary append, frame encode + CRC, NDJSON over loopback
	// HTTP, follower decode, validate, deterministic apply — as the latency
	// from ApplyBatch on the primary to the version landing on a connected
	// in-memory follower. repl_catchup_64batch measures a cold join: a
	// fresh follower connecting to a primary 64 batches ahead and
	// converging over one catch-up stream. Both followers run fixed 2-wide
	// pools so the rows gate in -compare on machines of any width.
	shipSrv, err := serve.Open(serve.Config{
		Dim: *d, Classes: k, Shards: 4, Workers: 2, Seed: 7,
		WAL: &serve.WALConfig{Dir: filepath.Join(tmpRoot, "repl-ship"), SyncEvery: -1, CheckpointEvery: -1},
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer shipSrv.Close()
	shipSource, err := repl.NewSource(repl.SourceConfig{Server: shipSrv})
	if err != nil {
		fatalf("%v", err)
	}
	shipAPI, err := httpapi.New(httpapi.Config{Server: shipSrv, Encoder: httpEnc, Replication: shipSource})
	if err != nil {
		fatalf("%v", err)
	}
	shipTS := httptest.NewServer(shipAPI)
	defer shipTS.Close()
	shipFollower, err := serve.NewServer(serve.Config{Dim: *d, Classes: k, Shards: 4, Workers: 2, Seed: 7})
	if err != nil {
		fatalf("%v", err)
	}
	defer shipFollower.Close()
	shipF, err := repl.StartFollower(context.Background(), repl.FollowerConfig{
		Server: shipFollower, PrimaryURL: shipTS.URL, AckEvery: 1,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer shipF.Close()
	shipBatch := serve.Batch{Train: []serve.Sample{{Class: 0, HV: queries[0]}}}

	catchupSrv, err := serve.Open(serve.Config{
		Dim: *d, Classes: k, Shards: 4, Seed: 7,
		WAL: &serve.WALConfig{Dir: filepath.Join(tmpRoot, "repl-catchup"), SyncEvery: -1, CheckpointEvery: -1},
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer catchupSrv.Close()
	for i := 0; i < 64; i++ {
		var rb serve.Batch
		for j := 0; j < 4; j++ {
			rb.Train = append(rb.Train, serve.Sample{Class: (4*i + j) % k, HV: queries[(4*i+j)%len(queries)]})
		}
		if _, err := catchupSrv.ApplyBatch(rb); err != nil {
			fatalf("%v", err)
		}
	}
	catchupSource, err := repl.NewSource(repl.SourceConfig{Server: catchupSrv})
	if err != nil {
		fatalf("%v", err)
	}
	catchupAPI, err := httpapi.New(httpapi.Config{Server: catchupSrv, Encoder: httpEnc, Replication: catchupSource})
	if err != nil {
		fatalf("%v", err)
	}
	catchupTS := httptest.NewServer(catchupAPI)
	defer catchupTS.Close()

	// Sharded-cluster fixtures. cluster_predict_scatter measures one
	// scatter-gather prediction through the cluster client: fan /v1/scores
	// out to both shard groups over loopback HTTP, filter each response to
	// the classes its shard owns, merge exactly — the sharding tax over
	// http_predict. cluster_ingest_split measures one row through an open
	// sharded ingest stream: hashring routing on the client, per-shard
	// coalescers underneath (every 4th row also carries a symbol, so the
	// label-owner/symbol-owner split path stays hot). Both shard servers
	// carry the full 32-class workload, as the unsharded twin does — the
	// client-side ownership filter is part of what is being measured.
	const clusterShardCount = 2
	clusterSwaps := make([]*swapHandler, clusterShardCount)
	clusterEndpoints := make([]cluster.ShardEndpoints, clusterShardCount)
	for i := range clusterSwaps {
		clusterSwaps[i] = &swapHandler{}
		ts := httptest.NewServer(clusterSwaps[i])
		defer ts.Close()
		clusterEndpoints[i] = cluster.ShardEndpoints{Primary: ts.URL}
	}
	clusterMan := &cluster.Manifest{Version: 1, RingSeed: 42, Shards: clusterEndpoints}
	for i := range clusterSwaps {
		node, err := cluster.NewNode(clusterMan, i)
		if err != nil {
			fatalf("%v", err)
		}
		csrv, err := serve.NewServer(serve.Config{Dim: *d, Classes: k, Shards: 4, Seed: 7})
		if err != nil {
			fatalf("%v", err)
		}
		var cb serve.Batch
		for qi, rec := range httpRecs {
			cb.Train = append(cb.Train, serve.Sample{Class: qi % k, HV: httpEnc.Encode(rec)})
		}
		if _, err := csrv.ApplyBatch(cb); err != nil {
			fatalf("%v", err)
		}
		capi, err := httpapi.New(httpapi.Config{Server: csrv, Encoder: httpEnc, Cluster: node})
		if err != nil {
			fatalf("%v", err)
		}
		clusterSwaps[i].h.Store(http.Handler(capi))
	}
	ccli, err := client.NewClusterClient(clusterMan)
	if err != nil {
		fatalf("%v", err)
	}

	gmp := runtime.GOMAXPROCS(0)
	benches := []struct {
		name    string
		workers int
		fn      func(b *testing.B)
	}{
		{"bind", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.XorInto(y, dst)
			}
		}},
		{"distance", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = x.HammingDistance(y)
			}
		}},
		{"accumulate", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				acc.Add(x)
			}
		}},
		{"threshold", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = acc.Threshold(bitvec.TieZero, nil)
			}
		}},
		{"rotate", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = x.RotateBits(1)
			}
		}},
		{"majority9_csa", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = bitvec.Majority(nine, bitvec.TieZero, nil)
			}
		}},
		{"nearest64", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = bitvec.Nearest(x, cands)
			}
		}},
		{"predict_k32", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = clf.Predict(queries[i%len(queries)])
			}
		}},
		{"predict_batch256", pool.Workers(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = clf.PredictBatch(pool, queries)
			}
		}},
		{"predict_batch256_w2", 2, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = clf.PredictBatch(pool2, queries)
			}
		}},
		{"predict_batch256_w4", 4, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = clf.PredictBatch(pool4, queries)
			}
		}},
		{"serve_predict", 1, func(b *testing.B) {
			snap := srv.Snapshot()
			for i := 0; i < b.N; i++ {
				_, _ = snap.Predict(queries[i%len(queries)])
			}
		}},
		{"serve_predict_par", gmp, func(b *testing.B) {
			// GOMAXPROCS concurrent readers against the lock-free snapshot;
			// ns/op here is aggregate wall time per prediction, so
			// 1e9/ns_per_op is the served QPS at that fan-in.
			b.RunParallel(func(pb *testing.PB) {
				snap := srv.Snapshot()
				i := 0
				for pb.Next() {
					_, _ = snap.Predict(queries[i%len(queries)])
					i++
				}
			})
		}},
		{"serve_predict_par_w2", 2, fixedParPredict(srv, queries, 2)},
		{"serve_predict_par_w4", 4, fixedParPredict(srv, queries, 4)},
		{"serve_apply_batch256", srv.Pool().Workers(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := srv.ApplyBatch(sb); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"index_build_n10k", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = index.New(itemVecs, index.Config{})
			}
		}},
		{"index_lookup_linear_n10k", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, _ = imLinear.Lookup(itemProbes[i%len(itemProbes)])
			}
		}},
		{"index_lookup_indexed_n10k", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, _ = imIndexed.Lookup(itemProbes[i%len(itemProbes)])
			}
		}},
		{"wal_append", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq, err := appendLog.Append(walPayload)
				if err != nil {
					b.Fatal(err)
				}
				if seq%4096 == 0 && seq > 8192 {
					if err := appendLog.TruncateBefore(seq - 8192); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"wal_append_faulty_disk", 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq, err := faultyLog.Append(walPayload)
				if err != nil {
					b.Fatal(err)
				}
				if seq%4096 == 0 && seq > 8192 {
					if err := faultyLog.TruncateBefore(seq - 8192); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"degraded_predict", 1, func(b *testing.B) {
			// Reads on a degraded server: snapshot load + predict, off the
			// last published snapshot. The write plane being down must not
			// tax this path.
			for i := 0; i < b.N; i++ {
				snap := degSrv.Snapshot()
				_, _ = snap.Predict(queries[i%len(queries)])
			}
		}},
		{"http_predict", 1, func(b *testing.B) {
			// One op = one unary /v1/predict round trip through the client:
			// HTTP framing, admission, JSON decode, record encode, snapshot
			// predict, response. The wire tax over serve_predict.
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				if _, _, err := cli.PredictOne(ctx, httpRecs[i%len(httpRecs)]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"http_ingest_stream", 1, func(b *testing.B) {
			// One op = one row through an open NDJSON bulk-ingest stream,
			// amortizing the server-side 256-row batch coalescing — the
			// sustained bulk-load throughput of the serving API.
			is, err := cli.Ingest(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if err := is.Send(httpRow(i)); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := is.Close(); err != nil {
				b.Fatal(err)
			}
		}},
		{"cluster_predict_scatter", 1, func(b *testing.B) {
			// One op = one prediction scattered to both shard groups and
			// merged client-side; two loopback round trips per op, so the
			// delta over http_predict is the fan-out + ownership-filtered
			// merge.
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				if _, _, err := ccli.PredictOne(ctx, httpRecs[i%len(httpRecs)]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"cluster_ingest_split", 1, func(b *testing.B) {
			// One op = one row through the sharded ingest stream: hashring
			// route, per-shard coalescer append, occasional label/symbol
			// split into two wire rows.
			cis, err := ccli.Ingest(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				row := httpRow(i)
				if i%4 == 0 {
					row.Symbol = fmt.Sprintf("item/%d", i%64)
				}
				if err := cis.Send(row); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := cis.Close(); err != nil {
				b.Fatal(err)
			}
		}},
		{"repl_ship_record", 1, func(b *testing.B) {
			// One op = one record shipped end to end: ApplyBatch on the
			// primary through the open replicate-stream to the follower's
			// applied version. Replication latency per record, loopback wire
			// included.
			for i := 0; i < b.N; i++ {
				snap, err := shipSrv.ApplyBatch(shipBatch)
				if err != nil {
					b.Fatal(err)
				}
				for shipFollower.Snapshot().Version() < snap.Version() {
					runtime.Gosched()
				}
			}
		}},
		{"repl_catchup_64batch", 2, func(b *testing.B) {
			// One op = a cold follower join: connect to a primary 64 batches
			// ahead, stream the history (checkpoint seed or log suffix — the
			// source's choice), converge, tear down.
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				fsrv, err := serve.NewServer(serve.Config{Dim: *d, Classes: k, Shards: 4, Workers: 2, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				f, err := repl.StartFollower(ctx, repl.FollowerConfig{Server: fsrv, PrimaryURL: catchupTS.URL})
				if err != nil {
					b.Fatal(err)
				}
				for fsrv.Snapshot().Version() < 64 {
					runtime.Gosched()
				}
				f.Close()
				if err := fsrv.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"recover_replay", srv.Pool().Workers(), func(b *testing.B) {
			// One op = a complete crash recovery of the 64-batch directory:
			// checkpoint scan, log scan + CRC verification, deterministic
			// replay publishing a snapshot per record.
			for i := 0; i < b.N; i++ {
				rs, err := serve.Open(recoverCfg)
				if err != nil {
					b.Fatal(err)
				}
				if v := rs.Snapshot().Version(); v != 64 {
					b.Fatalf("recovered version %d, want 64", v)
				}
				if err := rs.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	rep := report{
		Dimension: *d, GoVersion: runtime.Version(),
		GOMAXPROCS: gmp, NumCPU: runtime.NumCPU(),
		SamplesPerKernel: *samples,
	}
	// Interleaved rounds: every kernel once per round, so runner drift
	// spreads across all kernels instead of concentrating in the last.
	type measure struct {
		ns     []float64
		bytes  []int64
		allocs []int64
	}
	measures := make([]measure, len(benches))
	for round := 0; round < *samples; round++ {
		fmt.Fprintf(os.Stderr, "round %d/%d\n", round+1, *samples)
		for bi, bench := range benches {
			res := testing.Benchmark(bench.fn)
			measures[bi].ns = append(measures[bi].ns, float64(res.T.Nanoseconds())/float64(res.N))
			measures[bi].bytes = append(measures[bi].bytes, res.AllocedBytesPerOp())
			measures[bi].allocs = append(measures[bi].allocs, res.AllocsPerOp())
		}
	}
	ns := make(map[string]float64, len(benches))
	for bi, bench := range benches {
		m := measures[bi]
		nsMed := medianFloat(m.ns)
		ns[bench.name] = nsMed
		rep.Kernels = append(rep.Kernels, kernelResult{
			Name:        bench.name,
			NsPerOp:     nsMed,
			BytesPerOp:  medianInt(m.bytes),
			AllocsPerOp: medianInt(m.allocs),
			Workers:     bench.workers,
			Samples:     m.ns,
		})
		lo, hi := m.ns[0], m.ns[0]
		for _, v := range m.ns[1:] {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		fmt.Fprintf(os.Stderr, "%-26s %12.1f ns/op [%.1f..%.1f] %8d B/op %6d allocs/op %4d workers\n",
			bench.name, nsMed, lo, hi, medianInt(m.bytes), medianInt(m.allocs), bench.workers)
	}

	// Measured recall of the indexed lookup against the exact scan over
	// the same probes — the accuracy side of the latency trade the rows
	// above quantify.
	ix := index.New(itemVecs, index.Config{})
	hits := 0
	for _, q := range itemProbes {
		ws, _, _ := imLinear.Lookup(q)
		gs, _, _ := imIndexed.Lookup(q)
		if gs == ws {
			hits++
		}
	}
	rep.Index = &indexReport{
		N:          itemN,
		Noise:      itemNoise,
		Queries:    itemQueries,
		Recall:     float64(hits) / itemQueries,
		SpeedupX:   ns["index_lookup_linear_n10k"] / ns["index_lookup_indexed_n10k"],
		Candidates: ix.Candidates(),
		Signature:  ix.SignatureBits(),
	}
	fmt.Fprintf(os.Stderr, "indexed lookup: recall %.4f, speedup %.1fx (n=%d, noise=%.2f, C=%d, m=%d)\n",
		rep.Index.Recall, rep.Index.SpeedupX, itemN, itemNoise, ix.Candidates(), ix.SignatureBits())

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("%v", err)
	}
}

// fixedParPredict is a RunParallel-style snapshot-predict bench pinned to
// an exact worker count, so the row's Workers field matches on machines of
// any width and the row stays gateable in -compare.
// swapHandler defers handler installation until after its httptest server
// has a URL: the cluster fixture's manifest must name every endpoint
// before the per-shard handlers (which need the manifest) can be built.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

func fixedParPredict(srv *serve.Server, queries []*bitvec.Vector, workers int) func(*testing.B) {
	return func(b *testing.B) {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				snap := srv.Snapshot()
				for {
					i := next.Add(1)
					if i > int64(b.N) {
						return
					}
					_, _ = snap.Predict(queries[int(i)%len(queries)])
				}
			}()
		}
		wg.Wait()
	}
}

// medianFloat returns the median of xs (0 when empty).
func medianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// medianInt returns the median of xs (0 when empty), rounding down on
// even-length inputs so a count median is still a count.
func medianInt(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// mannWhitneyGreater reports whether cur is stochastically greater than
// base at one-sided α=0.05, via the rank-sum U statistic under the normal
// approximation with continuity correction (ties split the pair). With
// the 5-sample default the test needs near-total separation of the two
// sample sets to fire — exactly the "is this real or runner noise" bar a
// CI gate wants. Fewer than two samples on either side cannot carry a
// rank test; the caller falls back to the median comparison alone.
func mannWhitneyGreater(base, cur []float64) bool {
	n, m := len(base), len(cur)
	var u float64
	for _, c := range cur {
		for _, b := range base {
			switch {
			case c > b:
				u++
			case c == b:
				u += 0.5
			}
		}
	}
	mean := float64(n*m) / 2
	sd := math.Sqrt(float64(n*m*(n+m+1)) / 12)
	z := (u - mean - 0.5) / sd
	return z >= 1.645
}

// loadReport reads and decodes a benchmark report.
func loadReport(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runCompare diffs current against baseline and returns the process exit
// code: 0 when no gated kernel regressed, 1 otherwise. A kernel regresses
// when (a) its median ns/op worsened past maxRegress AND the Mann-Whitney
// rank test on the two sample sets confirms the slowdown at α=0.05 (a
// report without samples — a legacy baseline — falls back to the median
// comparison alone), or (b) its allocs/op increased at all: allocation
// counts are deterministic per code path, so the alloc gate is exact.
// Kernels present in only one report are informational (new benches
// appear, old ones retire); kernels whose worker counts differ are
// reported but not gated, since aggregate parallel ns/op is
// machine-width-dependent.
func runCompare(basePath, curPath string, maxRegress float64) int {
	base, err := loadReport(basePath)
	if err != nil {
		fatalf("baseline: %v", err)
	}
	cur, err := loadReport(curPath)
	if err != nil {
		fatalf("current: %v", err)
	}
	if base.Dimension != cur.Dimension {
		fmt.Fprintf(os.Stderr, "note: dimension mismatch (baseline d=%d, current d=%d); comparing anyway\n",
			base.Dimension, cur.Dimension)
	}
	baseBy := make(map[string]kernelResult, len(base.Kernels))
	for _, kr := range base.Kernels {
		baseBy[kr.Name] = kr
	}
	failed := 0
	fmt.Printf("%-26s %14s %14s %9s  %s\n", "kernel", "baseline ns/op", "current ns/op", "delta", "verdict")
	for _, kc := range cur.Kernels {
		kb, ok := baseBy[kc.Name]
		if !ok {
			fmt.Printf("%-26s %14s %14.1f %9s  new (not gated)\n", kc.Name, "-", kc.NsPerOp, "-")
			continue
		}
		delete(baseBy, kc.Name)
		delta := kc.NsPerOp/kb.NsPerOp - 1
		if kb.Workers != kc.Workers {
			fmt.Printf("%-26s %14.1f %14.1f %+8.1f%%  workers %d→%d (not gated)\n",
				kc.Name, kb.NsPerOp, kc.NsPerOp, 100*delta, kb.Workers, kc.Workers)
			continue
		}
		verdict := "ok"
		if delta > maxRegress {
			if len(kb.Samples) >= 2 && len(kc.Samples) >= 2 && !mannWhitneyGreater(kb.Samples, kc.Samples) {
				verdict = "ok (median past limit, not significant at α=0.05)"
			} else {
				verdict = fmt.Sprintf("REGRESSION (limit +%.0f%%)", 100*maxRegress)
				failed++
			}
		}
		if kc.AllocsPerOp > kb.AllocsPerOp {
			verdict = fmt.Sprintf("ALLOC REGRESSION (%d → %d allocs/op)", kb.AllocsPerOp, kc.AllocsPerOp)
			failed++
		}
		fmt.Printf("%-26s %14.1f %14.1f %+8.1f%%  %s\n", kc.Name, kb.NsPerOp, kc.NsPerOp, 100*delta, verdict)
	}
	for name := range baseBy {
		fmt.Printf("%-26s %14.1f %14s %9s  missing from current (not gated)\n", name, baseBy[name].NsPerOp, "-", "-")
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "hdcbench: %d kernel(s) regressed (median +%.0f%% with significance, or any allocs/op increase)\n", failed, 100*maxRegress)
		return 1
	}
	fmt.Fprintf(os.Stderr, "hdcbench: no kernel regressed beyond +%.0f%% (α=0.05) and no allocs/op increased\n", 100*maxRegress)
	return 0
}
