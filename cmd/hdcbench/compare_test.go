package main

// Self-tests for the statistical bench gate: a deliberate regression must
// fire it, runner noise must not, and the exact allocs/op ratchet must
// catch a single added allocation. These run against runCompare itself —
// the same code path CI exercises — so a gate that silently stops gating
// fails here first.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeReport marshals a report to a temp file and returns its path.
func writeTestReport(t *testing.T, name string, rep report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func kernel(name string, samples []float64, allocs int64, workers int) kernelResult {
	return kernelResult{
		Name:        name,
		NsPerOp:     medianFloat(samples),
		AllocsPerOp: allocs,
		Workers:     workers,
		Samples:     samples,
	}
}

func compareReports(t *testing.T, base, cur report) int {
	t.Helper()
	return runCompare(
		writeTestReport(t, "base.json", base),
		writeTestReport(t, "cur.json", cur),
		0.35,
	)
}

func TestCompareGateFiresOnDeliberateRegression(t *testing.T) {
	// Median +60%, sample sets fully separated: unambiguous slowdown.
	base := report{Kernels: []kernelResult{kernel("bind", []float64{100, 101, 102, 99, 100}, 0, 1)}}
	cur := report{Kernels: []kernelResult{kernel("bind", []float64{160, 161, 159, 162, 160}, 0, 1)}}
	if code := compareReports(t, base, cur); code != 1 {
		t.Fatalf("deliberate regression passed the gate (exit %d)", code)
	}
}

func TestCompareGatePassesEqualRuns(t *testing.T) {
	base := report{Kernels: []kernelResult{kernel("bind", []float64{100, 101, 102, 99, 100}, 2, 1)}}
	cur := report{Kernels: []kernelResult{kernel("bind", []float64{101, 100, 99, 102, 100}, 2, 1)}}
	if code := compareReports(t, base, cur); code != 0 {
		t.Fatalf("equal runs failed the gate (exit %d)", code)
	}
}

func TestCompareGateIgnoresInsignificantMedianShift(t *testing.T) {
	// The medians differ 2× but the sample sets interleave heavily: a
	// bimodal runner, not a code change. The rank test must hold the gate.
	base := report{Kernels: []kernelResult{kernel("bind", []float64{100, 100, 100, 200, 200}, 0, 1)}}
	cur := report{Kernels: []kernelResult{kernel("bind", []float64{200, 100, 200, 100, 200}, 0, 1)}}
	if code := compareReports(t, base, cur); code != 0 {
		t.Fatalf("insignificant median shift fired the gate (exit %d)", code)
	}
}

func TestCompareAllocGateIsExact(t *testing.T) {
	flat := []float64{100, 100, 100, 100, 100}
	base := report{Kernels: []kernelResult{kernel("predict_k32", flat, 3, 1)}}
	worse := report{Kernels: []kernelResult{kernel("predict_k32", flat, 4, 1)}}
	if code := compareReports(t, base, worse); code != 1 {
		t.Fatalf("a single added alloc/op passed the gate (exit %d)", code)
	}
	better := report{Kernels: []kernelResult{kernel("predict_k32", flat, 2, 1)}}
	if code := compareReports(t, base, better); code != 0 {
		t.Fatalf("an alloc/op decrease failed the gate (exit %d)", code)
	}
}

func TestCompareLegacyReportsFallBackToMedians(t *testing.T) {
	// Sample-less reports (an old committed baseline) still gate on the
	// point comparison — the gate never goes dark during a transition.
	base := report{Kernels: []kernelResult{{Name: "bind", NsPerOp: 100, Workers: 1}}}
	cur := report{Kernels: []kernelResult{{Name: "bind", NsPerOp: 150, Workers: 1}}}
	if code := compareReports(t, base, cur); code != 1 {
		t.Fatalf("legacy 50%% regression passed the gate (exit %d)", code)
	}
}

func TestCompareSkipsMismatchedWorkerRows(t *testing.T) {
	// Machine-width rows on machines of different width: reported, never
	// gated — aggregate parallel ns/op is not comparable across widths.
	base := report{Kernels: []kernelResult{kernel("serve_predict_par", []float64{100, 100, 100}, 0, 8)}}
	cur := report{Kernels: []kernelResult{kernel("serve_predict_par", []float64{400, 400, 400}, 0, 2)}}
	if code := compareReports(t, base, cur); code != 0 {
		t.Fatalf("mismatched-workers row was gated (exit %d)", code)
	}
}

func TestMannWhitneyGreater(t *testing.T) {
	sep := mannWhitneyGreater([]float64{1, 2, 3, 4, 5}, []float64{10, 11, 12, 13, 14})
	if !sep {
		t.Error("fully separated samples not significant")
	}
	if mannWhitneyGreater([]float64{1, 2, 3, 4, 5}, []float64{1, 2, 3, 4, 5}) {
		t.Error("identical samples reported significant")
	}
	if mannWhitneyGreater([]float64{10, 11, 12, 13, 14}, []float64{1, 2, 3, 4, 5}) {
		t.Error("an improvement reported as a significant slowdown")
	}
}

func TestMedians(t *testing.T) {
	if m := medianFloat([]float64{3, 1, 2}); m != 2 {
		t.Errorf("medianFloat odd = %v", m)
	}
	if m := medianFloat([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("medianFloat even = %v", m)
	}
	if m := medianInt([]int64{5, 1, 3}); m != 3 {
		t.Errorf("medianInt odd = %d", m)
	}
	if m := medianInt([]int64{1, 2, 3, 4}); m != 2 {
		t.Errorf("medianInt even = %d", m)
	}
	if medianFloat(nil) != 0 || medianInt(nil) != 0 {
		t.Error("empty medians must be 0")
	}
}
