// Command hdclint is the repository's invariant multichecker: it runs the
// internal/analysis suite (vfsdiscipline, sentinelcmp, snapshotmut,
// atomicloadmut, ctxflow) over Go packages and fails when any
// repo-specific correctness convention is violated.
//
// Two modes:
//
//	hdclint ./...                     # standalone: load, check, report
//	go vet -vettool=$(pwd)/hdclint ./...   # as a go vet analysis tool
//
// The vettool mode speaks the go vet unit protocol: the -V=full version
// handshake, the -flags handshake, and per-package .cfg files whose
// export-data maps replace the loader. Either way the exit status is
// non-zero iff findings (or operational errors) occurred, so both modes
// gate CI the same way.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hdcirc/internal/analysis"
	"hdcirc/internal/analysis/hdclint"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// No analyzer flags: report an empty set to the go command.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(vetUnit(args[0]))
	case len(args) == 1 && (args[0] == "help" || args[0] == "-help" || args[0] == "--help"):
		help()
	default:
		os.Exit(standalone(args))
	}
}

func help() {
	fmt.Println("hdclint: repo-invariant multichecker")
	fmt.Println()
	fmt.Println("usage: hdclint [packages]   (e.g. hdclint ./...)")
	fmt.Println("   or: go vet -vettool=/path/to/hdclint ./...")
	fmt.Println()
	fmt.Println("registered analyzers:")
	for _, a := range hdclint.Analyzers() {
		fmt.Printf("  %-14s %s\n", a.Name, a.Doc)
	}
}

// printVersion answers the go command's -V=full tool-identity handshake.
// The version string hashes the executable so rebuilding hdclint after an
// analyzer change invalidates go vet's result cache.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version v0-%x\n", filepath.Base(os.Args[0]), h.Sum(nil)[:8])
}

// standalone loads the named packages with the module-aware loader and
// reports findings. Exit 1 on findings, 2 on operational errors.
func standalone(patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdclint:", err)
		return 2
	}
	findings, err := analysis.Run(hdclint.Analyzers(), pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdclint:", err)
		return 2
	}
	wd, _ := os.Getwd()
	for _, f := range findings {
		pos := f.Position()
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, f.Message, f.Analyzer.Name)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "hdclint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// vetConfig is the unit description go vet writes for each package, per
// the x/tools unitchecker protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit checks one go vet unit: parse the cfg, type-check the package
// against the export data go vet supplies, run the suite, print findings
// the way vet expects (file:line:col to stderr, exit 2).
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdclint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hdclint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command stats the facts file; this suite exchanges none, but
	// the file must exist even on early exits.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "hdclint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "hdclint:", err)
			return 1
		}
		files = append(files, f)
	}
	compilerImp := analysis.NewImporter(fset, cfg.PackageFile)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.ImportFrom(path, cfg.Dir, 0)
	})
	tpkg, info, err := analysis.Check(cfg.ImportPath, fset, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "hdclint:", err)
		return 1
	}
	pkg := &analysis.Package{
		PkgPath:   cfg.ImportPath,
		Name:      tpkg.Name(),
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := analysis.Run(hdclint.Analyzers(), []*analysis.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hdclint:", err)
		return 1
	}
	for _, f := range findings {
		pos := f.Position()
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, f.Message, f.Analyzer.Name)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
