// Command hdcrepro regenerates the paper's tables and figures on the
// synthetic workload substitutes. Run with -exp to select an experiment:
//
//	hdcrepro -exp table1     # Table 1: gesture classification accuracy
//	hdcrepro -exp table2     # Table 2: regression MSE
//	hdcrepro -exp figure3    # Figure 3: basis similarity heatmaps
//	hdcrepro -exp markov     # Section 4.2: flip calibration sweep
//	hdcrepro -exp figure6    # Figure 6: r-profile similarities
//	hdcrepro -exp figure7    # Figure 7: normalized regression MSE
//	hdcrepro -exp figure8    # Figure 8: r sweep over all datasets
//
// Extensions and ablations beyond the paper:
//
//	hdcrepro -exp levelablation    # Algorithm 1 vs legacy level generation
//	hdcrepro -exp decoderablation  # nearest vs top-k weighted label decode
//	hdcrepro -exp dimsweep         # accuracy vs hypervector dimension
//	hdcrepro -exp emg              # EMG biosignal pipeline (Rahimi lineage)
//	hdcrepro -exp text             # n-gram language identification
//	hdcrepro -exp cost             # hardware energy/memory cost model
//	hdcrepro -exp graph            # GraphHD graph-family classification
//	hdcrepro -exp robustness       # accuracy vs prototype bit-fault rate
//	hdcrepro -exp all              # everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"hdcirc/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1|table2|figure3|markov|figure6|figure7|figure8|levelablation|decoderablation|dimsweep|emg|text|all")
	seed := flag.Uint64("seed", experiments.DefaultSeed, "root random seed")
	dim := flag.Int("d", 10000, "hypervector dimension")
	fast := flag.Bool("fast", false, "reduced workload sizes for a quick pass")
	flag.Parse()

	if err := run(*exp, *seed, *dim, *fast); err != nil {
		fmt.Fprintln(os.Stderr, "hdcrepro:", err)
		os.Exit(1)
	}
}

func run(exp string, seed uint64, dim int, fast bool) error {
	w := os.Stdout
	fmt.Fprintf(w, "hdcrepro: seed=%d d=%d fast=%v\n\n", seed, dim, fast)

	table1 := func() {
		cfg := experiments.DefaultTable1Config()
		cfg.Classify.Seed = seed
		cfg.Classify.D = dim
		if fast {
			cfg.Classify.D = 4096
			cfg.Gesture.TrainPerGesture = 15
			cfg.Gesture.TestPerGesture = 10
		}
		experiments.RenderTable1(w, experiments.RunTable1(cfg))
		fmt.Fprintln(w)
	}
	table2 := func() {
		cfg := experiments.DefaultTable2Config()
		cfg.Regress.Seed = seed
		cfg.Regress.D = dim
		if fast {
			cfg.Regress.D = 4096
			cfg.Temp.HourStep = 12
			cfg.Orbit.N = 1500
		}
		experiments.RenderTable2(w, experiments.RunTable2(cfg))
		fmt.Fprintln(w)
	}
	figure3 := func() {
		cfg := experiments.DefaultFigure3Config()
		cfg.Seed = seed
		cfg.D = dim
		experiments.RenderFigure3(w, experiments.RunFigure3(cfg))
	}
	markovSweep := func() error {
		pts, err := experiments.RunMarkovSweep(dim,
			[]float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.49})
		if err != nil {
			return err
		}
		experiments.RenderMarkovSweep(w, dim, pts)
		fmt.Fprintln(w)
		return nil
	}
	figure6 := func() {
		cfg := experiments.DefaultFigure6Config()
		cfg.Seed = seed
		cfg.D = dim
		experiments.RenderFigure6(w, experiments.RunFigure6(cfg))
		fmt.Fprintln(w)
	}
	figure7 := func() {
		cfg := experiments.DefaultTable2Config()
		cfg.Regress.Seed = seed
		cfg.Regress.D = dim
		if fast {
			cfg.Regress.D = 4096
			cfg.Temp.HourStep = 12
			cfg.Orbit.N = 1500
		}
		experiments.RenderFigure7(w, experiments.RunFigure7(cfg))
		fmt.Fprintln(w)
	}
	figure8 := func() {
		cfg := experiments.DefaultFigure8Config()
		cfg.Classify.Seed = seed
		cfg.Regress.Seed = seed
		cfg.Classify.D = dim
		cfg.Regress.D = dim
		if fast {
			cfg.Classify.D = 4096
			cfg.Regress.D = 4096
			cfg.RGrid = []float64{0, 0.05, 0.2, 0.6, 1}
			cfg.Gesture.TrainPerGesture = 15
			cfg.Gesture.TestPerGesture = 10
			cfg.Temp.HourStep = 12
			cfg.Orbit.N = 1500
		}
		experiments.RenderFigure8(w, experiments.RunFigure8(cfg))
		fmt.Fprintln(w)
	}

	table1Cfg := func() experiments.Table1Config {
		cfg := experiments.DefaultTable1Config()
		cfg.Classify.Seed = seed
		cfg.Classify.D = dim
		if fast {
			cfg.Classify.D = 4096
			cfg.Gesture.TrainPerGesture = 15
			cfg.Gesture.TestPerGesture = 10
		}
		return cfg
	}
	table2Cfg := func() experiments.Table2Config {
		cfg := experiments.DefaultTable2Config()
		cfg.Regress.Seed = seed
		cfg.Regress.D = dim
		if fast {
			cfg.Regress.D = 4096
			cfg.Temp.HourStep = 12
			cfg.Orbit.N = 1500
		}
		return cfg
	}
	levelAblation := func() {
		experiments.RenderLevelAblation(w, experiments.RunLevelAblation(table1Cfg(), table2Cfg()))
		fmt.Fprintln(w)
	}
	decoderAblation := func() {
		experiments.RenderDecoderAblation(w, experiments.RunDecoderAblation(table2Cfg()))
		fmt.Fprintln(w)
	}
	dimSweep := func() {
		base := table1Cfg()
		dims := []int{1024, 2048, 4096, 8192, 16384}
		if fast {
			dims = []int{1024, 4096}
		}
		experiments.RenderDimensionSweep(w,
			experiments.RunDimensionSweep(base.Classify, base.Gesture, dims))
		fmt.Fprintln(w)
	}
	emg := func() {
		cfg := experiments.DefaultEMGExperiment()
		cfg.Seed = seed
		cfg.D = dim
		if fast {
			cfg.D = 4096
			cfg.DataConfig.TrainPerGesture = 10
			cfg.DataConfig.TestPerGesture = 8
		}
		experiments.RenderExtension(w, experiments.RunEMG(cfg))
		fmt.Fprintln(w)
	}
	text := func() {
		cfg := experiments.DefaultTextExperiment()
		cfg.Seed = seed
		cfg.D = dim
		if fast {
			cfg.D = 4096
			cfg.DataConfig.TrainPerLang = 15
			cfg.DataConfig.TestPerLang = 10
		}
		experiments.RenderExtension(w, experiments.RunText(cfg))
		fmt.Fprintln(w)
	}

	cost := func() {
		experiments.RenderCost(w, experiments.RunCost(table1Cfg(), table2Cfg()))
		fmt.Fprintln(w)
	}
	graphhd := func() {
		cfg := experiments.DefaultGraphHDConfig()
		cfg.Seed = seed
		cfg.D = dim
		if fast {
			cfg.D = 4096
			cfg.TrainPerClass = 12
			cfg.TestPerClass = 8
		}
		experiments.RenderGraphHD(w, experiments.RunGraphHD(cfg))
		fmt.Fprintln(w)
	}
	robustness := func() {
		cfg := experiments.DefaultRobustnessConfig()
		cfg.Classify.Seed = seed
		cfg.Classify.D = dim
		if fast {
			cfg.Classify.D = 4096
			cfg.Gesture.TrainPerGesture = 15
			cfg.Gesture.TestPerGesture = 10
		}
		experiments.RenderRobustness(w, experiments.RunRobustness(cfg))
		fmt.Fprintln(w)
	}

	switch exp {
	case "table1":
		table1()
	case "table2":
		table2()
	case "figure3":
		figure3()
	case "markov":
		return markovSweep()
	case "figure6":
		figure6()
	case "figure7":
		figure7()
	case "figure8":
		figure8()
	case "levelablation":
		levelAblation()
	case "decoderablation":
		decoderAblation()
	case "dimsweep":
		dimSweep()
	case "emg":
		emg()
	case "text":
		text()
	case "cost":
		cost()
	case "graph":
		graphhd()
	case "robustness":
		robustness()
	case "all":
		figure3()
		if err := markovSweep(); err != nil {
			return err
		}
		figure6()
		table1()
		table2()
		figure7()
		figure8()
		levelAblation()
		decoderAblation()
		dimSweep()
		emg()
		text()
		cost()
		graphhd()
		robustness()
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
