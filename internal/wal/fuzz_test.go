package wal

// FuzzWALRecover is the crash-safety harness the nightly CI job runs for
// minutes at a time: build a known-good log, then mangle it — truncate at
// an arbitrary byte, flip an arbitrary byte, or both — and require that
// recovery (a) never panics, (b) never replays a partial or altered
// record, and (c) replays a gap-free prefix of what was appended.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hdcirc/internal/vfs"
)

func FuzzWALRecover(f *testing.F) {
	f.Add(uint8(3), uint16(40), uint16(0), uint8(0), false)
	f.Add(uint8(10), uint16(17), uint16(100), uint8(0xff), true)
	f.Add(uint8(1), uint16(0), uint16(3), uint8(0x01), true)   // corrupt the header
	f.Add(uint8(20), uint16(9999), uint16(50), uint8(0), true) // truncate far past EOF is a no-op
	f.Fuzz(func(t *testing.T, nRecords uint8, cutAt uint16, flipAt uint16, flipBits uint8, alsoFlip bool) {
		n := int(nRecords)%24 + 1
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: 96, SyncEvery: -1}) // several small segments
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[uint64][]byte, n)
		for i := 0; i < n; i++ {
			payload := []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i%7)))
			seq, err := l.Append(payload)
			if err != nil {
				t.Fatal(err)
			}
			want[seq] = payload
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// Mangle one of the segment files at fuzzed positions.
		names, err := segmentNames(vfs.OS{}, dir)
		if err != nil || len(names) == 0 {
			t.Fatal("no segments written")
		}
		victim := filepath.Join(dir, names[int(cutAt)%len(names)])
		raw, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		if int(cutAt) < len(raw) {
			raw = raw[:cutAt]
		}
		if alsoFlip && len(raw) > 0 {
			raw[int(flipAt)%len(raw)] ^= flipBits
		}
		if err := os.WriteFile(victim, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		// Recovery must never panic and must yield a clean prefix.
		l2, err := Open(dir, Options{})
		if err != nil {
			// An unreadable log is a legal outcome of corruption; what is
			// not legal is a panic or a bad replay below.
			return
		}
		defer l2.Close()
		var prev uint64
		replayErr := l2.Replay(0, func(seq uint64, payload []byte) error {
			if seq != prev+1 {
				t.Fatalf("replay gap: %d after %d", seq, prev)
			}
			prev = seq
			orig, ok := want[seq]
			if !ok {
				t.Fatalf("replayed unknown record %d", seq)
			}
			if !bytes.Equal(payload, orig) {
				t.Fatalf("record %d altered: %q, want %q", seq, payload, orig)
			}
			return nil
		})
		if replayErr != nil {
			t.Fatalf("replay of recovered log failed: %v", replayErr)
		}
		// Appends must still work after any recovery.
		if _, err := l2.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
