package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdcirc/internal/vfs"
)

// appendN appends n payloads ("payload/<seq>") and returns them by seq.
func appendN(t *testing.T, l *Log, n int) map[uint64][]byte {
	t.Helper()
	out := make(map[uint64][]byte, n)
	for i := 0; i < n; i++ {
		want := l.NextSeq()
		payload := []byte(fmt.Sprintf("payload/%d", want))
		seq, err := l.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		if seq != want {
			t.Fatalf("append assigned seq %d, want %d", seq, want)
		}
		out[seq] = payload
	}
	return out
}

// replayAll collects every record from seq 1.
func replayAll(t *testing.T, l *Log) map[uint64][]byte {
	t.Helper()
	got := make(map[uint64][]byte)
	prev := uint64(0)
	if err := l.Replay(0, func(seq uint64, payload []byte) error {
		if seq <= prev {
			t.Fatalf("replay out of order: %d after %d", seq, prev)
		}
		prev = seq
		got[seq] = append([]byte(nil), payload...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 25)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextSeq() != 26 {
		t.Fatalf("reopened NextSeq = %d, want 26", l2.NextSeq())
	}
	got := replayAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for seq, p := range want {
		if !bytes.Equal(got[seq], p) {
			t.Fatalf("record %d: %q, want %q", seq, got[seq], p)
		}
	}
}

func TestReplayFrom(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128}) // force several segments
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20)
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var seqs []uint64
	if err := l2.Replay(15, func(seq uint64, _ []byte) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 6 || seqs[0] != 15 || seqs[5] != 20 {
		t.Fatalf("Replay(15) visited %v", seqs)
	}
}

func TestRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 30)
	segs := l.Segments()
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}

	if err := l.TruncateBefore(20); err != nil {
		t.Fatal(err)
	}
	for _, s := range l.Segments() {
		first, err := seqFromName(filepath.Base(s))
		if err != nil {
			t.Fatal(err)
		}
		// A surviving segment must contain at least one record >= 20 — or be
		// the tail.
		if s != segs[len(segs)-1] {
			fi, err := os.Stat(s)
			if err != nil {
				t.Fatalf("kept segment vanished: %v", err)
			}
			_ = fi
		}
		_ = first
	}
	// Everything from 20 on must still replay after reopen.
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	for seq := uint64(20); seq <= 30; seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("record %d lost by TruncateBefore", seq)
		}
	}
	if l2.NextSeq() != 31 {
		t.Fatalf("NextSeq after compaction = %d, want 31", l2.NextSeq())
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for _, cut := range []int{1, 5, recHeaderLen, recHeaderLen + 3} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 10)
			l.Close()

			segs, err := segmentNames(vfs.OS{}, dir)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, segs[len(segs)-1])
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			got := replayAll(t, l2)
			if len(got) != 9 {
				t.Fatalf("after torn tail: %d records, want 9", len(got))
			}
			if l2.NextSeq() != 10 {
				t.Fatalf("NextSeq = %d, want 10 (reusing the torn slot)", l2.NextSeq())
			}
			// The log must accept new appends at the reclaimed sequence.
			if seq, err := l2.Append([]byte("replacement")); err != nil || seq != 10 {
				t.Fatalf("append after torn recovery: seq %d, err %v", seq, err)
			}
		})
	}
}

func TestCorruptMiddleSegmentSetsAsideSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 30)
	l.Close()

	segs, err := segmentNames(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Flip a payload byte in the middle segment.
	mid := filepath.Join(dir, segs[len(segs)/2])
	raw, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(mid, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	// Replay must be a gap-free prefix ending before the corrupt record.
	for seq := uint64(1); seq <= uint64(len(got)); seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("replayed set has a gap at %d", seq)
		}
	}
	if len(got) >= 30 {
		t.Fatalf("corruption not detected: %d records replayed", len(got))
	}
	// The suffix segments must be preserved as *.corrupt, not deleted.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	aside := 0
	for _, e := range entries {
		if strings.Contains(e.Name(), ".corrupt") {
			aside++
		}
	}
	if aside == 0 {
		t.Error("corrupt suffix segments were not set aside")
	}
}

func TestSyncPolicies(t *testing.T) {
	// Smoke: both batched and disabled fsync must append and replay fine
	// (the durability difference only shows on machine crashes).
	for _, every := range []int{1, 8, -1} {
		dir := t.TempDir()
		l, err := Open(dir, Options{SyncEvery: every})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 12)
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		l.Close()
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := replayAll(t, l2); len(got) != 12 {
			t.Fatalf("SyncEvery=%d: %d records, want 12", every, len(got))
		}
		l2.Close()
	}
}

func TestSkipTo(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.SkipTo(100); err != nil {
		t.Fatal(err)
	}
	if err := l.SkipTo(50); err == nil {
		t.Error("SkipTo rewind accepted")
	}
	seq, err := l.Append([]byte("x"))
	if err != nil || seq != 100 {
		t.Fatalf("append after SkipTo: seq %d, err %v", seq, err)
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextSeq() != 101 {
		t.Fatalf("NextSeq after SkipTo reopen = %d, want 101", l2.NextSeq())
	}
}

func TestReplayAfterAppendRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1)
	if err := l.Replay(0, func(uint64, []byte) error { return nil }); err == nil {
		t.Error("Replay after Append accepted")
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Error("oversize payload accepted")
	}
}

func TestAppendAfterCloseRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append([]byte("x")); err == nil {
		t.Error("append after Close accepted")
	}
}
