package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// collect streams [from, ∞) into a map and returns (records, next).
func collect(t *testing.T, l *Log, from uint64) (map[uint64]string, uint64) {
	t.Helper()
	got := map[uint64]string{}
	next, err := l.StreamFrom(from, func(seq uint64, payload []byte) error {
		got[seq] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("StreamFrom(%d): %v", from, err)
	}
	return got, next
}

// TestStreamFromAfterAppends proves StreamFrom works where Replay does
// not: on a handle that has already appended, from any starting seq.
func TestStreamFromAfterAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const n = 40
	for i := 1; i <= n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, from := range []uint64{1, 2, 17, n, n + 1} {
		got, next := collect(t, l, from)
		if next != n+1 {
			t.Fatalf("StreamFrom(%d) next = %d, want %d", from, next, n+1)
		}
		want := 0
		if from <= n {
			want = int(n - from + 1)
		}
		if len(got) != want {
			t.Fatalf("StreamFrom(%d) returned %d records, want %d", from, len(got), want)
		}
		for seq := from; seq <= n; seq++ {
			if got[seq] != fmt.Sprintf("record-%d", seq) {
				t.Fatalf("record %d = %q", seq, got[seq])
			}
		}
	}
	if oldest := l.OldestSeq(); oldest != 1 {
		t.Fatalf("OldestSeq = %d, want 1", oldest)
	}
}

// TestStreamFromCompacted: a suffix request below the oldest retained
// segment is ErrCompacted (the caller must re-seed from a checkpoint),
// both after TruncateBefore and after SkipTo on an empty log.
func TestStreamFromCompacted(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 30; i++ {
		if _, err := l.Append(make([]byte, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateBefore(20); err != nil {
		t.Fatal(err)
	}
	oldest := l.OldestSeq()
	if oldest <= 1 || oldest > 20 {
		t.Fatalf("OldestSeq after TruncateBefore(20) = %d", oldest)
	}
	if _, err := l.StreamFrom(oldest-1, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("StreamFrom below oldest = %v, want ErrCompacted", err)
	}
	got, next := collect(t, l, oldest)
	if uint64(len(got)) != next-oldest {
		t.Fatalf("streamed %d records from %d, next %d", len(got), oldest, next)
	}

	// SkipTo on a fresh log: everything below the skip point reads as
	// compacted (a checkpoint covers it), nothing is streamable yet.
	l2, err := Open(t.TempDir(), Options{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.SkipTo(101); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.StreamFrom(51, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("StreamFrom(51) after SkipTo(101) = %v, want ErrCompacted", err)
	}
	if got, next := collect(t, l2, 101); len(got) != 0 || next != 101 {
		t.Fatalf("StreamFrom(101) = %d records, next %d", len(got), next)
	}
}

// TestStreamFromConcurrentAppends hammers StreamFrom while an appender
// runs: every stream must observe a dense prefix [from, next) with the
// exact payload bytes — no torn frames, no gaps, no reordering.
func TestStreamFromConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const total = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= total; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	for r := 0; r < 20; r++ {
		var last uint64
		next, err := l.StreamFrom(1, func(seq uint64, payload []byte) error {
			if seq != last+1 {
				return fmt.Errorf("gap: got seq %d after %d", seq, last)
			}
			if string(payload) != fmt.Sprintf("payload-%d", seq) {
				return fmt.Errorf("record %d: payload %q", seq, payload)
			}
			last = seq
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if last != next-1 {
			t.Fatalf("streamed through %d but next is %d", last, next)
		}
	}
	wg.Wait()
	if got, next := collect(t, l, 1); len(got) != total || next != total+1 {
		t.Fatalf("final stream: %d records, next %d", len(got), next)
	}
}
