// Package wal is an append-only, CRC-framed, fsync-batched write-ahead
// log with segment rotation and crash-safe recovery. It stores opaque
// payloads under monotonically increasing sequence numbers; the serving
// layer (internal/serve) logs one encoded write batch per record so that a
// crash loses nothing that was acknowledged.
//
// # On-disk layout
//
// A log is a directory of segment files named wal-<firstSeq>.seg:
//
//	segment: magic "HWSG" | uint32 format | uint64 firstSeq
//	record:  uint32 payloadLen | uint32 crc32c(seq ‖ payload)
//	         | uint64 seq | payload
//
// Records never span segments. Rotation closes the current segment once it
// exceeds Options.SegmentBytes and opens a fresh one whose header names
// the next sequence number, so any record can be found from file names
// alone and old segments can be dropped wholesale once a checkpoint
// covers them (TruncateBefore).
//
// # Torn-write guarantee
//
// Appends are a single sequential write; fsync is batched per
// Options.SyncEvery. After a crash, Open scans every segment in order and
// accepts records until the first frame that is short, fails its CRC, or
// breaks the sequence chain — everything from that point on is discarded:
// the torn tail of the last segment is truncated in place, and any
// later segment is set aside (renamed *.corrupt, never silently deleted).
// A partial record is therefore never replayed, and what remains is
// always a strict prefix of what was appended — exactly the property that
// makes replay-into-a-deterministic-state-machine correct.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hdcirc/internal/vfs"
)

const (
	segmentMagic  = "HWSG"
	segmentFormat = 1
	segmentExt    = ".seg"
	segmentPrefix = "wal-"

	segHeaderLen = 4 + 4 + 8
	recHeaderLen = 4 + 4 + 8

	// MaxRecordBytes bounds a single payload; the length prefix of a torn
	// frame is attacker- (or bit-rot-) controlled, so recovery refuses to
	// allocate past this.
	MaxRecordBytes = 1 << 26 // 64 MiB
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms this repo targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Log. The zero value is safe: 4 MiB segments, fsync on
// every append.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the current one grows
	// past this size; <= 0 selects 4 MiB.
	SegmentBytes int64
	// SyncEvery batches fsync: the file is synced once per SyncEvery
	// appends (1 = every append, the durability default; 0 selects 1).
	// Negative disables fsync entirely — appends ride the OS page cache
	// and a machine crash may lose the unsynced suffix (a process crash
	// does not).
	SyncEvery int
	// FS is the filesystem the log lives on; nil selects the real one.
	// Tests hand in a vfs.FaultFS to inject storage faults.
	FS vfs.FS
}

func (o *Options) norm() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	o.FS = vfs.Default(o.FS)
}

// segment is one on-disk segment file.
type segment struct {
	path     string
	firstSeq uint64
	records  uint64 // valid records (set during Open's scan)
}

// Log is an append-only segmented record log. Append/Sync/TruncateBefore/
// Close are safe for concurrent use; Replay is only valid between Open and
// the first Append.
type Log struct {
	dir  string
	opts Options
	fs   vfs.FS

	mu       sync.Mutex
	segs     []segment // all live segments, ascending firstSeq
	cur      vfs.File  // open tail segment (nil until first append after SkipTo)
	curSize  int64
	nextSeq  uint64
	unsynced int
	appended bool
	closed   bool
	failed   error // sticky write/rotate/sync failure; see Append
}

// Open opens (creating if necessary) the log in dir and runs crash
// recovery: segments are scanned in order, the torn tail of the last
// segment is truncated away, and segments after a corrupt one are renamed
// aside. The returned log appends at one past the last intact record.
func Open(dir string, opts Options) (*Log, error) {
	opts.norm()
	fs := opts.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating directory: %w", err)
	}
	names, err := segmentNames(fs, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, fs: fs, nextSeq: 1}
	for i, name := range names {
		path := filepath.Join(dir, name)
		// The first surviving segment may start anywhere (earlier ones get
		// dropped by checkpoint compaction); later ones must chain exactly.
		wantSeq := l.nextSeq
		if i == 0 {
			wantSeq = 0
		}
		seg, intactBytes, scanErr := scanSegment(fs, path, wantSeq)
		if scanErr != nil {
			// This segment is unusable from intactBytes on. Keep its intact
			// prefix when it has one; set aside everything after the fault.
			if seg.records > 0 || intactBytes > segHeaderLen {
				if err := fs.Truncate(path, intactBytes); err != nil {
					return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", name, err)
				}
				l.segs = append(l.segs, seg)
				l.nextSeq = seg.firstSeq + seg.records
			} else if err := setAside(fs, path); err != nil {
				return nil, err
			}
			for _, later := range names[i+1:] {
				if err := setAside(fs, filepath.Join(dir, later)); err != nil {
					return nil, err
				}
			}
			break
		}
		l.segs = append(l.segs, seg)
		l.nextSeq = seg.firstSeq + seg.records
	}
	if len(l.segs) > 0 && l.segs[len(l.segs)-1].records == 0 {
		// A crash between rotation and the first record leaves an empty tail
		// segment whose name the next rotation would want back; drop it.
		tail := l.segs[len(l.segs)-1]
		if err := fs.Remove(tail.path); err != nil {
			return nil, fmt.Errorf("wal: removing empty tail segment: %w", err)
		}
		l.segs = l.segs[:len(l.segs)-1]
	}
	return l, nil
}

// segmentNames lists the segment files in dir, ascending by firstSeq.
func segmentNames(fs vfs.FS, dir string) ([]string, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading directory: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() || !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentExt) {
			continue
		}
		if _, err := seqFromName(name); err != nil {
			continue // foreign file; leave it alone
		}
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, _ := seqFromName(names[i])
		b, _ := seqFromName(names[j])
		return a < b
	})
	return names, nil
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segmentPrefix, firstSeq, segmentExt)
}

func seqFromName(name string) (uint64, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentExt)
	return strconv.ParseUint(body, 10, 64)
}

// setAside renames an unusable segment out of the scan set, preserving the
// bytes for forensics instead of deleting data on the recovery path.
func setAside(fs vfs.FS, path string) error {
	dst := path + ".corrupt"
	// Never clobber evidence from an earlier recovery.
	for i := 1; ; i++ {
		if _, err := fs.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = fmt.Sprintf("%s.corrupt.%d", path, i)
	}
	if err := fs.Rename(path, dst); err != nil {
		return fmt.Errorf("wal: setting aside corrupt segment: %w", err)
	}
	return nil
}

// scanSegment walks one segment validating every frame. It returns the
// segment summary, the byte offset of the end of the last intact record,
// and a non-nil error when the segment ends in anything but a clean EOF —
// in which case the summary covers the intact prefix only. wantSeq is the
// sequence number the first record must carry (0 skips the continuity
// check for the first segment).
func scanSegment(fs vfs.FS, path string, wantSeq uint64) (segment, int64, error) {
	f, err := fs.Open(path)
	if err != nil {
		return segment{}, 0, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()

	seg := segment{path: path}
	header := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(f, header); err != nil {
		return seg, 0, fmt.Errorf("wal: segment header: %w", err)
	}
	if string(header[:4]) != segmentMagic {
		return seg, 0, errors.New("wal: bad segment magic")
	}
	if format := binary.LittleEndian.Uint32(header[4:]); format != segmentFormat {
		return seg, 0, fmt.Errorf("wal: unsupported segment format %d", format)
	}
	seg.firstSeq = binary.LittleEndian.Uint64(header[8:])
	if nameSeq, err := seqFromName(filepath.Base(path)); err != nil || nameSeq != seg.firstSeq {
		return seg, 0, errors.New("wal: segment header disagrees with file name")
	}
	if wantSeq != 0 && seg.firstSeq != wantSeq {
		return seg, 0, fmt.Errorf("wal: segment starts at seq %d, expected %d", seg.firstSeq, wantSeq)
	}

	intact := int64(segHeaderLen)
	next := seg.firstSeq
	rec := make([]byte, recHeaderLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, rec); err != nil {
			if err == io.EOF {
				return seg, intact, nil // clean end
			}
			return seg, intact, fmt.Errorf("wal: torn record header at offset %d", intact)
		}
		plen := binary.LittleEndian.Uint32(rec[0:])
		crc := binary.LittleEndian.Uint32(rec[4:])
		seq := binary.LittleEndian.Uint64(rec[8:])
		if plen > MaxRecordBytes {
			return seg, intact, fmt.Errorf("wal: implausible record length %d at offset %d", plen, intact)
		}
		if seq != next {
			return seg, intact, fmt.Errorf("wal: sequence break at offset %d: record %d, expected %d", intact, seq, next)
		}
		if int(plen) > cap(payload) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(f, payload); err != nil {
			return seg, intact, fmt.Errorf("wal: torn record payload at offset %d", intact)
		}
		if recordCRC(seq, payload) != crc {
			return seg, intact, fmt.Errorf("wal: CRC mismatch at offset %d (record %d)", intact, seq)
		}
		intact += int64(recHeaderLen) + int64(plen)
		seg.records++
		next++
	}
}

// RecordCRC returns the checksum the log stores with record seq — the
// Castagnoli CRC over seq‖payload. Replication echoes it per shipped
// record so a follower verifies the exact integrity the disk format
// promises, end to end.
func RecordCRC(seq uint64, payload []byte) uint32 { return recordCRC(seq, payload) }

// recordCRC checksums a record's sequence number together with its
// payload, so a frame copied to the wrong position fails verification.
func recordCRC(seq uint64, payload []byte) uint32 {
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], seq)
	return crc32.Update(crc32.Checksum(sb[:], crcTable), crcTable, payload)
}

// NextSeq returns the sequence number the next Append will be assigned.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Segments returns the live segment file paths, ascending.
func (l *Log) Segments() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.segs))
	for i := range l.segs {
		out[i] = l.segs[i].path
	}
	return out
}

// Replay streams every intact record with seq >= from, in order, to fn.
// It re-reads from disk (recovery already validated every frame, so a
// failure here is a new I/O fault). Replay is only valid before the first
// Append on this handle.
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.appended {
		l.mu.Unlock()
		return errors.New("wal: Replay after Append")
	}
	segs := make([]segment, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()

	for _, seg := range segs {
		if seg.firstSeq+seg.records <= from {
			continue // fully below the replay point
		}
		if err := replaySegment(l.fs, seg, from, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(fs vfs.FS, seg segment, from uint64, fn func(uint64, []byte) error) error {
	f, err := fs.Open(seg.path)
	if err != nil {
		return fmt.Errorf("wal: reopening segment for replay: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(segHeaderLen, io.SeekStart); err != nil {
		return err
	}
	rec := make([]byte, recHeaderLen)
	for i := uint64(0); i < seg.records; i++ {
		if _, err := io.ReadFull(f, rec); err != nil {
			return fmt.Errorf("wal: replay read: %w", err)
		}
		plen := binary.LittleEndian.Uint32(rec[0:])
		crc := binary.LittleEndian.Uint32(rec[4:])
		seq := binary.LittleEndian.Uint64(rec[8:])
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			return fmt.Errorf("wal: replay read: %w", err)
		}
		if recordCRC(seq, payload) != crc {
			return fmt.Errorf("wal: replay CRC mismatch on record %d", seq)
		}
		if seq < from {
			continue
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
	}
	return nil
}

// OldestSeq returns the sequence number of the oldest record the log can
// still stream (compaction removes covered segments wholesale). On an
// empty log it equals NextSeq: nothing is streamable yet.
func (l *Log) OldestSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return l.nextSeq
	}
	return l.segs[0].firstSeq
}

// StreamFrom streams every record with seq >= from, in order, to fn, and
// returns the sequence number one past the last record that existed when
// the call started — the resume point for the next StreamFrom. Unlike
// Replay it is valid at any point in the log's life, concurrently with
// appends: the segment set and record counts are snapshotted under the
// lock, so fn sees a consistent prefix and never a torn tail (a record's
// frame is fully written before it is counted). This is the replication
// catch-up reader — a follower at seq F calls StreamFrom(F+1, ship) in a
// loop, interleaved with the apply notifier, to tail the primary's log.
//
// When from precedes OldestSeq the suffix is gone (compaction): the
// caller must re-seed from a checkpoint instead, and StreamFrom reports
// ErrCompacted.
func (l *Log) StreamFrom(from uint64, fn func(seq uint64, payload []byte) error) (next uint64, err error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("wal: log is closed")
	}
	oldest := l.nextSeq // empty log: nothing below nextSeq is streamable
	if len(l.segs) > 0 {
		oldest = l.segs[0].firstSeq
	}
	if from < oldest {
		l.mu.Unlock()
		return 0, fmt.Errorf("%w: seq %d requested, oldest retained is %d", ErrCompacted, from, oldest)
	}
	segs := make([]segment, len(l.segs))
	copy(segs, l.segs)
	next = l.nextSeq
	// Everything below next is fully on disk (the frame write completes
	// under mu before records/nextSeq advance), but the bytes may still be
	// unsynced — fine for same-machine readers, which is what replication
	// shipping is: the OS page cache serves them.
	l.mu.Unlock()

	for _, seg := range segs {
		if seg.firstSeq+seg.records <= from {
			continue
		}
		if err := replaySegment(l.fs, seg, from, fn); err != nil {
			return 0, err
		}
	}
	return next, nil
}

// ErrCompacted marks a StreamFrom request for records that checkpoint
// compaction already removed: the caller must re-seed from a checkpoint.
var ErrCompacted = errors.New("wal: requested records were compacted away")

// Append frames the payload under the next sequence number, writes it to
// the tail segment (rotating first when the segment is full), applies the
// fsync policy and returns the assigned sequence number. The record is
// durable when Append returns with SyncEvery == 1; with batched sync it is
// durable no later than SyncEvery-1 appends or one Sync call later.
//
// Append is fail-stop: after any write, rotation or sync failure the log
// refuses further appends with the original error. A partial frame may be
// sitting mid-segment after such a failure, and a record written after it
// would survive the write yet be discarded by recovery's prefix scan — so
// rather than acknowledge durability it cannot deliver, the log demands a
// reopen (which truncates the garbage) before accepting more records.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: log is closed")
	}
	if l.failed != nil {
		return 0, fmt.Errorf("wal: log failed earlier: %w", l.failed)
	}
	if l.cur == nil || l.curSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.failed = err
			return 0, err
		}
	}
	seq := l.nextSeq
	buf := make([]byte, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], recordCRC(seq, payload))
	binary.LittleEndian.PutUint64(buf[8:], seq)
	copy(buf[recHeaderLen:], payload)
	if _, err := l.cur.Write(buf); err != nil {
		l.failed = err
		return 0, fmt.Errorf("wal: appending record %d: %w", seq, err)
	}
	l.curSize += int64(len(buf))
	l.nextSeq++
	l.segs[len(l.segs)-1].records++
	l.appended = true
	l.unsynced++
	if l.opts.SyncEvery > 0 && l.unsynced >= l.opts.SyncEvery {
		if err := l.syncLocked(); err != nil {
			l.failed = err
			return 0, err
		}
	}
	return seq, nil
}

// rotateLocked syncs and closes the tail segment and opens a fresh one
// starting at nextSeq. The new segment's header is synced (and the
// directory entry with it) before any record lands, so recovery can always
// trust headers.
func (l *Log) rotateLocked() error {
	if l.cur != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("wal: closing segment: %w", err)
		}
		l.cur = nil
	}
	path := filepath.Join(l.dir, segmentName(l.nextSeq))
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	header := make([]byte, segHeaderLen)
	copy(header, segmentMagic)
	binary.LittleEndian.PutUint32(header[4:], segmentFormat)
	binary.LittleEndian.PutUint64(header[8:], l.nextSeq)
	if _, err := f.Write(header); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if l.opts.SyncEvery >= 0 {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: syncing segment header: %w", err)
		}
		if err := l.fs.SyncDir(l.dir); err != nil {
			f.Close()
			return fmt.Errorf("wal: syncing directory after segment create: %w", err)
		}
	}
	l.cur = f
	l.curSize = segHeaderLen
	l.segs = append(l.segs, segment{path: path, firstSeq: l.nextSeq})
	return nil
}

// Sync forces an fsync of the tail segment regardless of the SyncEvery
// policy — the graceful-shutdown flush.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.cur == nil || l.unsynced == 0 {
		l.unsynced = 0
		return nil
	}
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.unsynced = 0
	return nil
}

// TruncateBefore removes segments every record of which has seq < from —
// the checkpoint compaction hook: once a checkpoint covers versions up to
// from-1, the log prefix is dead weight. The tail segment is never
// removed, and a segment containing both covered and uncovered records is
// kept whole (recovery skips the covered prefix during replay).
func (l *Log) TruncateBefore(from uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segs[:0]
	for i, seg := range l.segs {
		last := i == len(l.segs)-1
		end := seg.firstSeq + seg.records // one past the last record
		if !last && end <= from {
			if err := l.fs.Remove(seg.path); err != nil {
				// Keep state consistent with disk on failure.
				kept = append(kept, l.segs[i:]...)
				l.segs = kept
				return fmt.Errorf("wal: removing covered segment: %w", err)
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return nil
}

// SkipTo advances the next sequence number to seq without writing
// anything, forcing a fresh segment for the next append. It is how a
// recovered server resumes numbering after a checkpoint that is newer
// than every surviving log record; seq must not rewind.
func (l *Log) SkipTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.nextSeq {
		return fmt.Errorf("wal: SkipTo(%d) would rewind next sequence %d", seq, l.nextSeq)
	}
	if seq == l.nextSeq {
		return nil
	}
	if l.cur != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("wal: closing segment: %w", err)
		}
		l.cur = nil
	}
	l.nextSeq = seq
	return nil
}

// Close flushes and closes the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.cur == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.cur.Close(); err == nil {
		err = cerr
	}
	l.cur = nil
	return err
}
