package experiments

import (
	"strings"
	"testing"

	"hdcirc/internal/core"
	"hdcirc/internal/stats"
)

func fastEMG() EMGConfig {
	cfg := DefaultEMGExperiment()
	cfg.D = 4096
	cfg.DataConfig.TrainPerGesture = 10
	cfg.DataConfig.TestPerGesture = 8
	return cfg
}

func fastText() TextConfig {
	cfg := DefaultTextExperiment()
	cfg.D = 4096
	cfg.DataConfig.TrainPerLang = 15
	cfg.DataConfig.TestPerLang = 10
	return cfg
}

func TestRunEMGAccuracy(t *testing.T) {
	res := RunEMG(fastEMG())
	if res.Accuracy < 0.6 {
		t.Errorf("EMG accuracy %v too low (chance = 0.2)", res.Accuracy)
	}
	if res.Task != "EMG" {
		t.Errorf("task = %q", res.Task)
	}
	if res.Conf.Total() != 40 {
		t.Errorf("confusion total %d", res.Conf.Total())
	}
}

func TestRunEMGDeterministic(t *testing.T) {
	if RunEMG(fastEMG()).Accuracy != RunEMG(fastEMG()).Accuracy {
		t.Error("EMG runs with equal config differ")
	}
}

func TestRunEMGLevelKindMatters(t *testing.T) {
	// Random amplitude basis must not beat the level basis: the EMG signal
	// is ordinal and needs linear correlation.
	lvl := fastEMG()
	rnd := fastEMG()
	rnd.LevelKind = core.KindRandom
	a, b := RunEMG(lvl), RunEMG(rnd)
	if b.Accuracy > a.Accuracy+0.1 {
		t.Errorf("random basis (%v) clearly beats level basis (%v) on ordinal EMG", b.Accuracy, a.Accuracy)
	}
}

func TestRunTextAccuracy(t *testing.T) {
	res := RunText(fastText())
	if res.Accuracy < 0.5 {
		t.Errorf("language-id accuracy %v too low (chance = 0.2)", res.Accuracy)
	}
	if res.Task != "LanguageID" {
		t.Errorf("task = %q", res.Task)
	}
}

func TestRunTextNGramSizeEffect(t *testing.T) {
	// Unigram statistics are much weaker than bigram/trigram statistics
	// for first-order Markov languages.
	uni := fastText()
	uni.NGram = 1
	tri := fastText()
	a, b := RunText(uni), RunText(tri)
	if a.Accuracy > b.Accuracy+0.1 {
		t.Errorf("unigrams (%v) should not clearly beat trigrams (%v)", a.Accuracy, b.Accuracy)
	}
}

func TestRunLevelAblationShape(t *testing.T) {
	t1 := DefaultTable1Config()
	t1.Classify = fastClassify()
	t1.Gesture = fastGesture("")
	t2 := DefaultTable2Config()
	t2.Regress = fastRegress()
	t2.Temp = fastTemp()
	t2.Orbit = fastOrbit()
	rows := RunLevelAblation(t1, t2)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	regressionRows := 0
	for _, r := range rows {
		if r.LegacyMetric <= 0 || r.Interp1Metric <= 0 {
			t.Errorf("%s: non-positive metrics %v/%v", r.Task, r.LegacyMetric, r.Interp1Metric)
		}
		if r.Regression {
			regressionRows++
		} else if r.LegacyMetric > 1 || r.Interp1Metric > 1 {
			t.Errorf("%s: classification accuracy out of range", r.Task)
		}
	}
	if regressionRows != 2 {
		t.Errorf("regression rows = %d, want 2", regressionRows)
	}
}

func TestRunDecoderAblationImproves(t *testing.T) {
	cfg := DefaultTable2Config()
	cfg.Regress = fastRegress()
	cfg.Temp = fastTemp()
	cfg.Orbit = fastOrbit()
	rows := RunDecoderAblation(cfg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WeightedMSE > r.NearestMSE*1.05 {
			t.Errorf("%s: weighted decode (%v) clearly worse than nearest (%v)",
				r.Dataset, r.WeightedMSE, r.NearestMSE)
		}
	}
}

func TestRunDimensionSweepMonotoneTrend(t *testing.T) {
	base := fastClassify()
	pts := RunDimensionSweep(base, fastGesture(""), []int{512, 2048, 8192})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Accuracy at the largest dimension must be at least that at the
	// smallest (allowing for noise at the small end).
	if pts[2].Accuracy+0.05 < pts[0].Accuracy {
		t.Errorf("accuracy degrades with dimension: %v", pts)
	}
	for _, p := range pts {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("accuracy %v out of range", p.Accuracy)
		}
	}
}

func TestExtensionRenderers(t *testing.T) {
	var b strings.Builder
	RenderLevelAblation(&b, []LevelAblationRow{
		{Task: "X", LegacyMetric: 0.7, Interp1Metric: 0.8},
		{Task: "Y", LegacyMetric: 100, Interp1Metric: 90, Regression: true},
	})
	if !strings.Contains(b.String(), "Algorithm 1") || !strings.Contains(b.String(), "MSE") {
		t.Error("level ablation render incomplete")
	}
	b.Reset()
	RenderDecoderAblation(&b, []DecoderAblationRow{{Dataset: "Z", NearestMSE: 10, WeightedMSE: 9}})
	if !strings.Contains(b.String(), "-10.0%") {
		t.Errorf("decoder ablation render missing delta:\n%s", b.String())
	}
	b.Reset()
	RenderDimensionSweep(&b, []DimensionPoint{{D: 1024, Accuracy: 0.5}})
	if !strings.Contains(b.String(), "1024") {
		t.Error("dimension sweep render incomplete")
	}
	b.Reset()
	conf := stats.NewConfusion(2)
	conf.Observe(0, 0)
	RenderExtension(&b, ClassificationResult{Task: "EMG", Accuracy: 0.9, Conf: conf})
	if !strings.Contains(b.String(), "EMG") {
		t.Error("extension render incomplete")
	}
}
