package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hdcirc/internal/core"
)

// RenderTable1 writes the Table 1 reproduction in the paper's layout.
func RenderTable1(w io.Writer, t *Table1Result) {
	fmt.Fprintf(w, "Table 1 — classification accuracy (circular r = %g)\n", t.CircularR)
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "Dataset", "Random", "Level", "Circular")
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%-16s %9.1f%% %9.1f%% %9.1f%%\n",
			row.Task,
			100*row.Accuracy[core.KindRandom],
			100*row.Accuracy[core.KindLevel],
			100*row.Accuracy[core.KindCircular])
	}
	fmt.Fprintf(w, "circular vs random: %+.1f%% average relative accuracy\n",
		100*t.AverageImprovement(core.KindRandom))
}

// RenderTable2 writes the Table 2 reproduction in the paper's layout.
func RenderTable2(w io.Writer, t *Table2Result) {
	fmt.Fprintf(w, "Table 2 — regression MSE (circular r = %g)\n", t.CircularR)
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "Dataset", "Random", "Level", "Circular")
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%-16s %10.1f %10.1f %10.1f\n",
			row.Dataset,
			row.MSE[core.KindRandom],
			row.MSE[core.KindLevel],
			row.MSE[core.KindCircular])
	}
	fmt.Fprintf(w, "circular vs level: %.1f%% average MSE reduction\n",
		100*t.AverageReduction(core.KindLevel))
	fmt.Fprintf(w, "circular vs random: %.1f%% average MSE reduction\n",
		100*t.AverageReduction(core.KindRandom))
}

// heatmapGlyphs maps similarity in [0.5, 1] onto a density ramp; values
// below 0.5 use the lightest glyph (the paper's color scale also starts at
// 0.5).
var heatmapGlyphs = []rune(" .:-=+*#%@")

// RenderHeatmap writes an ASCII heatmap of a similarity matrix.
func RenderHeatmap(w io.Writer, name string, m [][]float64) {
	fmt.Fprintf(w, "%s (similarity 0.5→1 rendered ' '→'@')\n", name)
	for _, row := range m {
		var b strings.Builder
		for _, v := range row {
			t := (v - 0.5) / 0.5
			if t < 0 {
				t = 0
			}
			idx := int(t * float64(len(heatmapGlyphs)-1))
			if idx >= len(heatmapGlyphs) {
				idx = len(heatmapGlyphs) - 1
			}
			b.WriteRune(heatmapGlyphs[idx])
			b.WriteRune(' ')
		}
		fmt.Fprintln(w, b.String())
	}
}

// RenderFigure3 writes all three heatmaps of the Figure 3 reproduction.
func RenderFigure3(w io.Writer, f *Figure3Result) {
	fmt.Fprintf(w, "Figure 3 — pairwise similarity of basis sets (m=%d, d=%d)\n\n", f.M, f.D)
	kinds := make([]core.Kind, 0, len(f.Matrices))
	for k := range f.Matrices {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		RenderHeatmap(w, k.String(), f.Matrices[k])
		fmt.Fprintln(w)
	}
}

// RenderMarkovSweep writes the flip-calibration table.
func RenderMarkovSweep(w io.Writer, d int, pts []MarkovPoint) {
	fmt.Fprintf(w, "Section 4.2 — flips for target expected distance (d=%d)\n", d)
	fmt.Fprintf(w, "%8s %16s %16s\n", "Δ", "markov 𝔉", "analytic f")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.3f %16.1f %16.1f\n", p.Delta, p.MarkovFlips, p.AnalyticFlips)
	}
}

// RenderFigure6 writes the r-profile similarity curves.
func RenderFigure6(w io.Writer, profiles []Figure6Profile) {
	fmt.Fprintln(w, "Figure 6 — similarity to reference node vs r")
	for _, p := range profiles {
		fmt.Fprintf(w, "r=%-4g:", p.R)
		for _, s := range p.Similarity {
			fmt.Fprintf(w, " %.3f", s)
		}
		fmt.Fprintln(w)
	}
}

// RenderFigure7 writes the normalized MSE bars.
func RenderFigure7(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Figure 7 — normalized regression MSE (random = 1.0)")
	fmt.Fprintf(w, "%-16s %10s %10s %10s\n", "Dataset", "Random", "Level", "Circular")
	for _, row := range rows {
		fmt.Fprintf(w, "%-16s %10.3f %10.3f %10.3f\n",
			row.Dataset,
			row.MSE[core.KindRandom],
			row.MSE[core.KindLevel],
			row.MSE[core.KindCircular])
	}
}

// RenderFigure8 writes the r-sweep normalized error series.
func RenderFigure8(w io.Writer, series []Figure8Series) {
	fmt.Fprintln(w, "Figure 8 — normalized error vs r (random basis = 1.0)")
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "%-16s", "r")
	for _, r := range series[0].R {
		fmt.Fprintf(w, " %7.2f", r)
	}
	fmt.Fprintln(w)
	for _, s := range series {
		fmt.Fprintf(w, "%-16s", s.Dataset)
		for _, e := range s.Error {
			fmt.Fprintf(w, " %7.3f", e)
		}
		fmt.Fprintln(w)
	}
}
