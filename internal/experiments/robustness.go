package experiments

import (
	"fmt"
	"io"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/dataset"
	"hdcirc/internal/embed"
	"hdcirc/internal/model"
	"hdcirc/internal/rng"
)

// The robustness experiment quantifies the holographic-representation claim
// of the paper's introduction: because every bit carries the same amount of
// information, a trained HDC model keeps classifying under random bit
// faults in its stored prototypes, degrading gracefully rather than
// catastrophically.

// RobustnessConfig parameterizes the fault-injection sweep.
type RobustnessConfig struct {
	Classify  ClassifyConfig
	Gesture   dataset.GestureConfig
	FlipGrid  []float64 // fraction of prototype bits flipped
	CircularR float64
}

// DefaultRobustnessConfig sweeps fault rates from 0 to 30%.
func DefaultRobustnessConfig() RobustnessConfig {
	return RobustnessConfig{
		Classify:  DefaultClassifyConfig(),
		Gesture:   dataset.DefaultGestureConfig("Knot Tying"),
		FlipGrid:  []float64{0, 0.01, 0.05, 0.10, 0.20, 0.30},
		CircularR: 0.1,
	}
}

// RobustnessPoint is the accuracy at one fault rate.
type RobustnessPoint struct {
	FlipFraction float64
	Accuracy     float64
}

// RunRobustness trains the circular-basis gesture classifier once, then
// measures test accuracy after flipping increasing fractions of the class
// prototypes' bits. Fault injection is deterministic in the seed.
func RunRobustness(cfg RobustnessConfig) []RobustnessPoint {
	cfg.Gesture.Task = "Knot Tying"
	ds := dataset.GenGestures(cfg.Gesture, cfg.Classify.Seed)
	cc := cfg.Classify
	cc.R = cfg.CircularR

	basisStream := rng.Sub(cc.Seed, "robustness/basis")
	set := core.CircularSetR(cc.ValueLevels, cc.D, cc.R, basisStream)
	enc := embed.NewCircularEncoder(set, 2*pi)
	record := embed.NewRecordEncoder(cc.D, ds.Config.NumFeatures, cc.Seed^hash("robustness"))
	encs := make([]embed.FieldEncoder, ds.Config.NumFeatures)
	for i := range encs {
		encs[i] = enc
	}
	encode := func(s dataset.GestureSample) *bitvec.Vector {
		return record.EncodeRecord(s.Features, encs)
	}

	clf := model.NewClassifier(ds.Config.NumGestures, cc.D, cc.Seed^hash("robustness/clf"))
	for _, s := range ds.Train {
		clf.Add(s.Label, encode(s))
	}
	clf.Finalize()

	// Pre-encode the test set once; only the prototypes are corrupted.
	testHVs := make([]*bitvec.Vector, len(ds.Test))
	for i, s := range ds.Test {
		testHVs[i] = encode(s)
	}

	// Snapshot clean prototypes.
	clean := make([]*bitvec.Vector, ds.Config.NumGestures)
	for i := range clean {
		clean[i] = clf.ClassVector(i).Clone()
	}

	evalWith := func(protos []*bitvec.Vector) float64 {
		correct := 0
		for i, hv := range testHVs {
			best, bestC := 2.0, 0
			for c, p := range protos {
				if d := hv.Distance(p); d < best {
					best, bestC = d, c
				}
			}
			if bestC == ds.Test[i].Label {
				correct++
			}
		}
		return float64(correct) / float64(len(testHVs))
	}

	out := make([]RobustnessPoint, len(cfg.FlipGrid))
	for gi, frac := range cfg.FlipGrid {
		faults := rng.Sub(cc.Seed, fmt.Sprintf("robustness/faults/%g", frac))
		protos := make([]*bitvec.Vector, len(clean))
		n := int(frac * float64(cc.D))
		for i, p := range clean {
			v := p.Clone()
			for f := 0; f < n; f++ {
				v.FlipBit(faults.Intn(cc.D))
			}
			protos[i] = v
		}
		out[gi] = RobustnessPoint{FlipFraction: frac, Accuracy: evalWith(protos)}
	}
	return out
}

// RenderRobustness writes the fault-injection sweep.
func RenderRobustness(w io.Writer, pts []RobustnessPoint) {
	fmt.Fprintln(w, "Robustness — gesture accuracy vs prototype bit-fault rate (circular basis)")
	fmt.Fprintf(w, "%12s %10s\n", "flip frac", "accuracy")
	for _, p := range pts {
		fmt.Fprintf(w, "%11.0f%% %9.1f%%\n", 100*p.FlipFraction, 100*p.Accuracy)
	}
}
