package experiments

import (
	"strings"
	"testing"
)

func TestRunCostReports(t *testing.T) {
	t1 := DefaultTable1Config()
	t1.Classify = fastClassify()
	t1.Gesture = fastGesture("")
	t2 := DefaultTable2Config()
	t2.Regress = fastRegress()
	t2.Temp = fastTemp()
	t2.Orbit = fastOrbit()
	reports := RunCost(t1, t2)
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		if r.TrainEnergyUJ <= 0 || r.InferEnergyUJ <= 0 || r.ModelKiB <= 0 {
			t.Errorf("%s: non-positive cost fields %+v", r.Name, r)
		}
	}
	// Beijing (8k training samples) must out-cost Mars (~1k) in training.
	var beijing, mars float64
	for _, r := range reports {
		switch r.Name {
		case "Beijing regressor":
			beijing = r.TrainEnergyUJ
		case "Mars regressor":
			mars = r.TrainEnergyUJ
		}
	}
	if beijing <= mars {
		t.Errorf("Beijing training energy %v not above Mars %v", beijing, mars)
	}
}

func TestRenderCost(t *testing.T) {
	t1 := DefaultTable1Config()
	t1.Classify = fastClassify()
	t1.Gesture = fastGesture("")
	t2 := DefaultTable2Config()
	t2.Regress = fastRegress()
	t2.Temp = fastTemp()
	t2.Orbit = fastOrbit()
	var b strings.Builder
	RenderCost(&b, RunCost(t1, t2))
	out := b.String()
	for _, want := range []string{"Gesture classifier", "Beijing regressor", "Mars regressor", "µJ"} {
		if !strings.Contains(out, want) {
			t.Errorf("cost render missing %q:\n%s", want, out)
		}
	}
}
