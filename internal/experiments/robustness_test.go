package experiments

import (
	"strings"
	"testing"
)

func fastRobustness() RobustnessConfig {
	cfg := DefaultRobustnessConfig()
	cfg.Classify = fastClassify()
	cfg.Gesture = fastGesture("Knot Tying")
	cfg.FlipGrid = []float64{0, 0.1, 0.3}
	return cfg
}

func TestRunRobustnessGracefulDegradation(t *testing.T) {
	pts := RunRobustness(fastRobustness())
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	clean := pts[0].Accuracy
	if clean < 0.6 {
		t.Fatalf("clean accuracy %v too low to measure degradation", clean)
	}
	// At 10% faults the drop must be small; at 30% the model must retain
	// most of its accuracy — the holographic-robustness claim.
	if pts[1].Accuracy < clean-0.15 {
		t.Errorf("10%% faults dropped accuracy %v → %v (not graceful)", clean, pts[1].Accuracy)
	}
	if pts[2].Accuracy < clean*0.6 {
		t.Errorf("30%% faults collapsed accuracy %v → %v", clean, pts[2].Accuracy)
	}
	// Monotone non-increasing up to noise.
	if pts[2].Accuracy > pts[0].Accuracy+0.05 {
		t.Errorf("accuracy increased under faults: %v", pts)
	}
}

func TestRunRobustnessDeterministic(t *testing.T) {
	a := RunRobustness(fastRobustness())
	b := RunRobustness(fastRobustness())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("equal-config robustness runs differ")
		}
	}
}

func TestRenderRobustness(t *testing.T) {
	var b strings.Builder
	RenderRobustness(&b, []RobustnessPoint{{FlipFraction: 0.1, Accuracy: 0.9}})
	if !strings.Contains(b.String(), "10%") || !strings.Contains(b.String(), "90.0%") {
		t.Errorf("robustness render incomplete:\n%s", b.String())
	}
}
