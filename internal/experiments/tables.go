package experiments

import (
	"hdcirc/internal/core"
	"hdcirc/internal/dataset"
)

// Tasks are the paper's three JIGSAWS surgical tasks.
var Tasks = []string{"Knot Tying", "Needle Passing", "Suturing"}

// Table1Basis is the basis column order of the paper's Table 1.
var Table1Basis = []core.Kind{core.KindRandom, core.KindLevel, core.KindCircular}

// Table1Config parameterizes the Table 1 reproduction.
type Table1Config struct {
	Classify  ClassifyConfig
	Gesture   dataset.GestureConfig // Task is overwritten per row
	CircularR float64               // the paper uses r = 0.1 for Table 1
}

// DefaultTable1Config mirrors the paper's setup.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Classify:  DefaultClassifyConfig(),
		Gesture:   dataset.DefaultGestureConfig(""),
		CircularR: 0.1,
	}
}

// Table1Row is one surgical task's accuracies per basis family.
type Table1Row struct {
	Task     string
	Accuracy map[core.Kind]float64
}

// Table1Result reproduces the paper's Table 1.
type Table1Result struct {
	Rows      []Table1Row
	CircularR float64
}

// RunTable1 trains and evaluates all (task × basis) cells, in parallel
// across cells.
func RunTable1(cfg Table1Config) *Table1Result {
	res := &Table1Result{CircularR: cfg.CircularR}
	res.Rows = make([]Table1Row, len(Tasks))
	type cell struct{ task, basis int }
	var cells []cell
	for t := range Tasks {
		res.Rows[t] = Table1Row{Task: Tasks[t], Accuracy: make(map[core.Kind]float64, len(Table1Basis))}
		for b := range Table1Basis {
			cells = append(cells, cell{t, b})
		}
	}
	// Pre-generate datasets once per task (shared across basis columns).
	data := make([]*dataset.GestureDataset, len(Tasks))
	for t, task := range Tasks {
		g := cfg.Gesture
		g.Task = task
		data[t] = dataset.GenGestures(g, cfg.Classify.Seed)
	}
	acc := make([]float64, len(cells))
	parallelFor(len(cells), func(i int) {
		c := cells[i]
		kind := Table1Basis[c.basis]
		cc := cfg.Classify
		if kind == core.KindCircular {
			cc.R = cfg.CircularR
		} else {
			cc.R = 0
		}
		acc[i] = RunGestureClassification(data[c.task], kind, cc).Accuracy
	})
	for i, c := range cells {
		res.Rows[c.task].Accuracy[Table1Basis[c.basis]] = acc[i]
	}
	return res
}

// AverageImprovement returns the mean relative accuracy gain of circular
// over the reference basis across rows — the paper quotes +7.2% over
// random.
func (t *Table1Result) AverageImprovement(ref core.Kind) float64 {
	var sum float64
	for _, row := range t.Rows {
		sum += (row.Accuracy[core.KindCircular] - row.Accuracy[ref]) / row.Accuracy[ref]
	}
	return sum / float64(len(t.Rows))
}

// ---------------------------------------------------------------------------

// Table2Config parameterizes the Table 2 reproduction.
type Table2Config struct {
	Regress   RegressConfig
	Temp      dataset.TempConfig
	Orbit     dataset.OrbitConfig
	CircularR float64 // the paper uses r = 0.01 for Table 2
}

// DefaultTable2Config mirrors the paper's setup.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		Regress:   DefaultRegressConfig(),
		Temp:      dataset.DefaultTempConfig(),
		Orbit:     dataset.DefaultOrbitConfig(),
		CircularR: 0.01,
	}
}

// Table2Datasets is the row order of the paper's Table 2.
var Table2Datasets = []string{"Beijing", "Mars Express"}

// Table2Row is one dataset's MSE per basis family.
type Table2Row struct {
	Dataset string
	MSE     map[core.Kind]float64
}

// Table2Result reproduces the paper's Table 2 (and via normalization,
// Figure 7).
type Table2Result struct {
	Rows      []Table2Row
	CircularR float64
}

// RunTable2 trains and evaluates all (dataset × basis) regression cells in
// parallel.
func RunTable2(cfg Table2Config) *Table2Result {
	res := &Table2Result{CircularR: cfg.CircularR}
	res.Rows = []Table2Row{
		{Dataset: "Beijing", MSE: map[core.Kind]float64{}},
		{Dataset: "Mars Express", MSE: map[core.Kind]float64{}},
	}
	temps := dataset.GenTemperature(cfg.Temp, cfg.Regress.Seed)
	orbits := dataset.GenOrbitPower(cfg.Orbit, cfg.Regress.Seed)

	type cell struct {
		ds    int
		basis int
	}
	var cells []cell
	for d := range res.Rows {
		for b := range Table1Basis {
			cells = append(cells, cell{d, b})
		}
	}
	mse := make([]float64, len(cells))
	parallelFor(len(cells), func(i int) {
		c := cells[i]
		kind := Table1Basis[c.basis]
		rc := cfg.Regress
		if kind == core.KindCircular {
			rc.R = cfg.CircularR
		} else {
			rc.R = 0
		}
		if c.ds == 0 {
			mse[i] = RunTemperatureRegression(temps, kind, rc).MSE
		} else {
			mse[i] = RunOrbitRegression(orbits, kind, rc).MSE
		}
	})
	for i, c := range cells {
		res.Rows[c.ds].MSE[Table1Basis[c.basis]] = mse[i]
	}
	return res
}

// AverageReduction returns the mean relative MSE reduction of circular
// versus the reference basis — the paper quotes −67.7% vs level and
// −84.4% vs random.
func (t *Table2Result) AverageReduction(ref core.Kind) float64 {
	var sum float64
	for _, row := range t.Rows {
		sum += 1 - row.MSE[core.KindCircular]/row.MSE[ref]
	}
	return sum / float64(len(t.Rows))
}

// Normalized returns each dataset's MSE normalized by the reference basis
// (random in the paper's Figure 7).
func (t *Table2Result) Normalized(ref core.Kind) []Table2Row {
	out := make([]Table2Row, len(t.Rows))
	for i, row := range t.Rows {
		norm := map[core.Kind]float64{}
		for k, v := range row.MSE {
			norm[k] = v / row.MSE[ref]
		}
		out[i] = Table2Row{Dataset: row.Dataset, MSE: norm}
	}
	return out
}
