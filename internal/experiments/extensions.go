package experiments

// Extension experiments beyond the paper's evaluation: the EMG and text
// workloads from the lineage the paper cites, and the ablations DESIGN.md
// calls out (Algorithm-1 vs legacy level generation, weighted vs nearest
// decoding, dimension sweep). All follow the same deterministic-config
// pattern as the table/figure runners.

import (
	"fmt"
	"io"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/dataset"
	"hdcirc/internal/embed"
	"hdcirc/internal/model"
	"hdcirc/internal/rng"
	"hdcirc/internal/stats"
)

// ---------------------------------------------------------------------------
// EMG gesture recognition (Rahimi et al. 2016 lineage)
// ---------------------------------------------------------------------------

// EMGConfig parameterizes the EMG extension experiment.
type EMGConfig struct {
	D          int
	AmpLevels  int // quantization of the rectified amplitude
	LevelKind  core.Kind
	Seed       uint64
	DataConfig dataset.EMGConfig
}

// DefaultEMGExperiment mirrors the classic biosignal pipeline at d = 10000.
func DefaultEMGExperiment() EMGConfig {
	return EMGConfig{
		D: 10000, AmpLevels: 16, LevelKind: core.KindLevel,
		Seed: DefaultSeed, DataConfig: dataset.DefaultEMGConfig(),
	}
}

// RunEMG trains the temporal-record pipeline on synthetic EMG windows:
// each time step bundles channel-keyed amplitude levels, the window is a
// permuted sequence bundle of its steps, and the centroid classifier
// separates gestures. Returns test accuracy.
func RunEMG(cfg EMGConfig) ClassificationResult {
	ds := dataset.GenEMG(cfg.DataConfig, cfg.Seed)
	basis := core.Config{Kind: cfg.LevelKind, M: cfg.AmpLevels, D: cfg.D}.
		Build(rng.Sub(cfg.Seed, "emg/basis/"+cfg.LevelKind.String()))
	amp := embed.NewScalarEncoder(basis, 0, 1)
	record := embed.NewRecordEncoder(cfg.D, cfg.DataConfig.Channels, cfg.Seed^hash("emg/keys"))
	seq := embed.NewSequenceEncoder(cfg.D, cfg.Seed^hash("emg/seq"))

	encs := make([]embed.FieldEncoder, cfg.DataConfig.Channels)
	for i := range encs {
		encs[i] = amp
	}
	encode := func(s dataset.EMGSample) *bitvec.Vector {
		steps := make([]*bitvec.Vector, len(s.Window))
		for t, step := range s.Window {
			steps[t] = record.EncodeRecord(step, encs)
		}
		return seq.Encode(steps)
	}

	clf := model.NewClassifier(cfg.DataConfig.NumGestures, cfg.D, cfg.Seed^hash("emg/clf"))
	for _, s := range ds.Train {
		clf.Add(s.Label, encode(s))
	}
	conf := stats.NewConfusion(cfg.DataConfig.NumGestures)
	for _, s := range ds.Test {
		pred, _ := clf.Predict(encode(s))
		conf.Observe(s.Label, pred)
	}
	return ClassificationResult{
		Task: "EMG", Kind: cfg.LevelKind, Accuracy: conf.Accuracy(), Conf: conf,
	}
}

// ---------------------------------------------------------------------------
// Language identification (Section 3.1 symbol encoding)
// ---------------------------------------------------------------------------

// TextConfig parameterizes the language-identification extension.
type TextConfig struct {
	D          int
	NGram      int
	Seed       uint64
	DataConfig dataset.TextConfig
}

// DefaultTextExperiment mirrors the classic trigram language-id pipeline.
func DefaultTextExperiment() TextConfig {
	return TextConfig{D: 10000, NGram: 3, Seed: DefaultSeed, DataConfig: dataset.DefaultTextConfig()}
}

// RunText trains the n-gram pipeline on synthetic languages: letters map
// through an item memory, sentences become bundles of bound n-grams, and
// the centroid classifier identifies the language. Returns test accuracy.
func RunText(cfg TextConfig) ClassificationResult {
	ds := dataset.GenText(cfg.DataConfig, cfg.Seed)
	items := embed.NewItemMemory(cfg.D, cfg.Seed^hash("text/items"))
	ngram := embed.NewNGramEncoder(cfg.D, cfg.NGram, cfg.Seed^hash("text/ngram"))

	encode := func(s dataset.TextSample) *bitvec.Vector {
		letters := make([]*bitvec.Vector, len(s.Text))
		for i := 0; i < len(s.Text); i++ {
			letters[i] = items.Get(s.Text[i : i+1])
		}
		return ngram.Encode(letters)
	}
	clf := model.NewClassifier(cfg.DataConfig.NumLanguages, cfg.D, cfg.Seed^hash("text/clf"))
	for _, s := range ds.Train {
		clf.Add(s.Label, encode(s))
	}
	conf := stats.NewConfusion(cfg.DataConfig.NumLanguages)
	for _, s := range ds.Test {
		pred, _ := clf.Predict(encode(s))
		conf.Observe(s.Label, pred)
	}
	return ClassificationResult{
		Task: "LanguageID", Kind: core.KindRandom, Accuracy: conf.Accuracy(), Conf: conf,
	}
}

// ---------------------------------------------------------------------------
// Ablation: Algorithm-1 vs legacy level generation (contribution 1 isolated)
// ---------------------------------------------------------------------------

// LevelAblationRow compares the two level constructions on one task.
type LevelAblationRow struct {
	Task          string
	LegacyMetric  float64 // accuracy (classification) or MSE (regression)
	Interp1Metric float64
	Regression    bool
}

// RunLevelAblation evaluates legacy vs Algorithm-1 level sets on all five
// paper workloads (levels substituted for the basis under test everywhere).
func RunLevelAblation(t1 Table1Config, t2 Table2Config) []LevelAblationRow {
	var rows []LevelAblationRow
	for _, task := range Tasks {
		g := t1.Gesture
		g.Task = task
		ds := dataset.GenGestures(g, t1.Classify.Seed)
		legacy := RunGestureClassification(ds, core.KindLevelLegacy, t1.Classify)
		interp := RunGestureClassification(ds, core.KindLevel, t1.Classify)
		rows = append(rows, LevelAblationRow{
			Task: task, LegacyMetric: legacy.Accuracy, Interp1Metric: interp.Accuracy,
		})
	}
	temps := dataset.GenTemperature(t2.Temp, t2.Regress.Seed)
	orbits := dataset.GenOrbitPower(t2.Orbit, t2.Regress.Seed)
	rows = append(rows, LevelAblationRow{
		Task:          "Beijing",
		LegacyMetric:  RunTemperatureRegression(temps, core.KindLevelLegacy, t2.Regress).MSE,
		Interp1Metric: RunTemperatureRegression(temps, core.KindLevel, t2.Regress).MSE,
		Regression:    true,
	})
	rows = append(rows, LevelAblationRow{
		Task:          "Mars Express",
		LegacyMetric:  RunOrbitRegression(orbits, core.KindLevelLegacy, t2.Regress).MSE,
		Interp1Metric: RunOrbitRegression(orbits, core.KindLevel, t2.Regress).MSE,
		Regression:    true,
	})
	return rows
}

// RenderLevelAblation writes the level-generation ablation table.
func RenderLevelAblation(w io.Writer, rows []LevelAblationRow) {
	fmt.Fprintln(w, "Ablation — legacy fixed-flip levels vs Algorithm 1 interpolation levels")
	fmt.Fprintf(w, "%-16s %12s %12s %8s\n", "Dataset", "Legacy", "Algorithm 1", "Metric")
	for _, r := range rows {
		metric := "acc"
		a, b := 100*r.LegacyMetric, 100*r.Interp1Metric
		if r.Regression {
			metric = "MSE"
			a, b = r.LegacyMetric, r.Interp1Metric
		}
		fmt.Fprintf(w, "%-16s %12.1f %12.1f %8s\n", r.Task, a, b, metric)
	}
}

// ---------------------------------------------------------------------------
// Ablation: nearest vs weighted label decoding
// ---------------------------------------------------------------------------

// DecoderAblationRow compares decode rules on one regression dataset.
type DecoderAblationRow struct {
	Dataset     string
	NearestMSE  float64
	WeightedMSE float64 // top-k similarity-weighted decode (k = 5)
}

// RunDecoderAblation re-runs the circular-basis regression cells with the
// nearest-label decode of Section 2.3 versus the top-k weighted decode
// extension (embed.DecodeWeighted).
func RunDecoderAblation(cfg Table2Config) []DecoderAblationRow {
	const topK = 5
	temps := dataset.GenTemperature(cfg.Temp, cfg.Regress.Seed)
	orbits := dataset.GenOrbitPower(cfg.Orbit, cfg.Regress.Seed)
	rc := cfg.Regress
	rc.R = cfg.CircularR

	rows := make([]DecoderAblationRow, 0, 2)

	// Beijing with both decoders.
	{
		train, test := dataset.SplitChronological(temps, 0.7)
		basisStream := rng.Sub(rc.Seed, "ablation/decoder/beijing")
		dayEnc := embed.NewCircularEncoder(core.CircularSetR(rc.DayLevels, rc.D, rc.R, basisStream), 365)
		hourEnc := embed.NewCircularEncoder(core.CircularSetR(rc.HourLevels, rc.D, rc.R, basisStream), 24)
		yearEnc := embed.NewScalarEncoder(core.LevelSet(rc.YearLevels, rc.D, basisStream), 0, 5)
		lo, hi := dataset.TempRange(train)
		labelEnc := embed.NewScalarEncoder(core.LevelSet(rc.LabelLevels, rc.D, basisStream), lo, hi)
		reg := model.NewRegressor(rc.D, rc.Seed^hash("ablation/beijing"))
		encode := func(s dataset.TempSample) *bitvec.Vector {
			return yearEnc.Encode(float64(s.YearIndex)).
				Xor(dayEnc.Encode(s.DayOfYear)).
				Xor(hourEnc.Encode(s.HourOfDay))
		}
		for _, s := range train {
			reg.Add(encode(s), labelEnc.Encode(s.Temp))
		}
		var seN, seW float64
		for _, s := range test {
			pv := reg.PredictVector(encode(s))
			dn := labelEnc.Decode(pv) - s.Temp
			dw := labelEnc.DecodeWeighted(pv, topK) - s.Temp
			seN += dn * dn
			seW += dw * dw
		}
		n := float64(len(test))
		rows = append(rows, DecoderAblationRow{Dataset: "Beijing", NearestMSE: seN / n, WeightedMSE: seW / n})
	}

	// Mars Express with both decoders.
	{
		split := rng.Sub(rc.Seed, "regress/mars/split")
		train, test := dataset.SplitRandom(orbits, 0.7, split)
		basisStream := rng.Sub(rc.Seed, "ablation/decoder/mars")
		anomalyEnc := embed.NewCircularEncoder(core.CircularSetR(rc.AnomalyLevels, rc.D, rc.R, basisStream), 2*pi)
		lo, hi := dataset.PowerRange(train)
		labelEnc := embed.NewScalarEncoder(core.LevelSet(rc.LabelLevels, rc.D, basisStream), lo, hi)
		reg := model.NewRegressor(rc.D, rc.Seed^hash("ablation/mars"))
		for _, s := range train {
			reg.Add(anomalyEnc.Encode(s.MeanAnomaly), labelEnc.Encode(s.Power))
		}
		var seN, seW float64
		for _, s := range test {
			pv := reg.PredictVector(anomalyEnc.Encode(s.MeanAnomaly))
			dn := labelEnc.Decode(pv) - s.Power
			dw := labelEnc.DecodeWeighted(pv, topK) - s.Power
			seN += dn * dn
			seW += dw * dw
		}
		n := float64(len(test))
		rows = append(rows, DecoderAblationRow{Dataset: "Mars Express", NearestMSE: seN / n, WeightedMSE: seW / n})
	}
	return rows
}

// RenderDecoderAblation writes the decoder ablation table.
func RenderDecoderAblation(w io.Writer, rows []DecoderAblationRow) {
	fmt.Fprintln(w, "Ablation — nearest-label decode (paper) vs top-5 weighted decode (extension)")
	fmt.Fprintf(w, "%-16s %12s %12s %9s\n", "Dataset", "Nearest", "Weighted", "Δ%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.1f %12.1f %8.1f%%\n",
			r.Dataset, r.NearestMSE, r.WeightedMSE, 100*(r.WeightedMSE/r.NearestMSE-1))
	}
}

// ---------------------------------------------------------------------------
// Ablation: dimension sweep
// ---------------------------------------------------------------------------

// DimensionPoint is the accuracy of one classification cell at one d.
type DimensionPoint struct {
	D        int
	Accuracy float64
}

// RunDimensionSweep evaluates the circular-basis gesture classifier across
// hypervector dimensions (the robustness/efficiency trade of HDC).
func RunDimensionSweep(base ClassifyConfig, gesture dataset.GestureConfig, dims []int) []DimensionPoint {
	gesture.Task = "Knot Tying"
	ds := dataset.GenGestures(gesture, base.Seed)
	out := make([]DimensionPoint, len(dims))
	parallelFor(len(dims), func(i int) {
		cfg := base
		cfg.D = dims[i]
		cfg.R = 0.1
		out[i] = DimensionPoint{D: dims[i], Accuracy: RunGestureClassification(ds, core.KindCircular, cfg).Accuracy}
	})
	return out
}

// RenderDimensionSweep writes the dimension sweep table.
func RenderDimensionSweep(w io.Writer, pts []DimensionPoint) {
	fmt.Fprintln(w, "Ablation — circular-basis accuracy vs hypervector dimension (Knot Tying)")
	fmt.Fprintf(w, "%8s %10s\n", "d", "accuracy")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %9.1f%%\n", p.D, 100*p.Accuracy)
	}
}

// RenderExtension writes an extension classification result.
func RenderExtension(w io.Writer, res ClassificationResult) {
	fmt.Fprintf(w, "Extension — %s pipeline: accuracy %.1f%% over %d test samples\n",
		res.Task, 100*res.Accuracy, res.Conf.Total())
}
