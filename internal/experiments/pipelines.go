// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6) on the synthetic workload substitutes documented
// in DESIGN.md. Each experiment has a Run function returning a printable
// result struct and a deterministic configuration; the cmd/hdcrepro CLI and
// the repository's benchmark suite are thin wrappers around these.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/dataset"
	"hdcirc/internal/embed"
	"hdcirc/internal/model"
	"hdcirc/internal/rng"
	"hdcirc/internal/stats"
)

// DefaultSeed is the root seed used by the CLI when none is given; every
// result in EXPERIMENTS.md was produced with it.
const DefaultSeed uint64 = 42

// valueEncoder builds the feature encoder for one basis family over a
// periodic domain [0, period). Level and random families quantize the
// interval linearly (the interval view of the paper's Section 3.2);
// circular wraps. The returned encoder is also used for decoding.
func valueEncoder(kind core.Kind, m, d int, r float64, period float64, src *rng.Stream) embed.FieldEncoder {
	cfg := core.Config{Kind: kind, M: m, D: d, R: r}
	set := cfg.Build(src)
	if kind == core.KindCircular {
		return embed.NewCircularEncoder(set, period)
	}
	return embed.NewScalarEncoder(set, 0, period)
}

// ---------------------------------------------------------------------------
// Gesture classification pipeline (Table 1, Figure 8)
// ---------------------------------------------------------------------------

// ClassifyConfig parameterizes one gesture-classification run.
type ClassifyConfig struct {
	D            int     // hypervector dimension
	ValueLevels  int     // basis set cardinality for feature values
	R            float64 // correlation-relaxation hyperparameter
	RefineEpochs int     // online retraining epochs (0 = pure centroid model, as in the paper)
	Seed         uint64
}

// DefaultClassifyConfig mirrors the paper's setup: d = 10000 and the plain
// centroid classifier.
func DefaultClassifyConfig() ClassifyConfig {
	return ClassifyConfig{D: 10000, ValueLevels: 24, R: 0, RefineEpochs: 0, Seed: DefaultSeed}
}

// ClassificationResult is the outcome of one (task, basis) cell.
type ClassificationResult struct {
	Task     string
	Kind     core.Kind
	R        float64
	Accuracy float64
	Conf     *stats.Confusion
}

// RunGestureClassification trains the Section 2.2 framework on one surgical
// task with the given basis family and returns test accuracy. Samples are
// encoded as ⊕_i K_i ⊗ V_i, the paper's Table 1 record encoding.
func RunGestureClassification(ds *dataset.GestureDataset, kind core.Kind, cfg ClassifyConfig) ClassificationResult {
	basisStream := rng.Sub(cfg.Seed, fmt.Sprintf("classify/basis/%s/%s/%g", ds.Config.Task, kind, cfg.R))
	enc := valueEncoder(kind, cfg.ValueLevels, cfg.D, cfg.R, 2*pi, basisStream)
	record := embed.NewRecordEncoder(cfg.D, ds.Config.NumFeatures, cfg.Seed^hash(ds.Config.Task))

	encs := make([]embed.FieldEncoder, ds.Config.NumFeatures)
	for i := range encs {
		encs[i] = enc
	}
	encode := func(s dataset.GestureSample) *bitvec.Vector {
		return record.EncodeRecord(s.Features, encs)
	}

	clf := model.NewClassifier(ds.Config.NumGestures, cfg.D, cfg.Seed^hash("clf"))
	trainHVs := encodeParallel(ds.Train, encode)
	for i, s := range ds.Train {
		clf.Add(s.Label, trainHVs[i])
	}
	if cfg.RefineEpochs > 0 {
		labels := make([]int, len(ds.Train))
		for i, s := range ds.Train {
			labels[i] = s.Label
		}
		clf.Refine(trainHVs, labels, cfg.RefineEpochs)
	}

	conf := stats.NewConfusion(ds.Config.NumGestures)
	testHVs := encodeParallel(ds.Test, encode)
	for i, s := range ds.Test {
		pred, _ := clf.Predict(testHVs[i])
		conf.Observe(s.Label, pred)
	}
	return ClassificationResult{
		Task: ds.Config.Task, Kind: kind, R: cfg.R,
		Accuracy: conf.Accuracy(), Conf: conf,
	}
}

// ---------------------------------------------------------------------------
// Temperature regression pipeline (Table 2 "Beijing", Figures 7–8)
// ---------------------------------------------------------------------------

// RegressConfig parameterizes one regression run.
type RegressConfig struct {
	D             int     // hypervector dimension
	DayLevels     int     // basis cardinality for day-of-year
	HourLevels    int     // basis cardinality for hour-of-day
	YearLevels    int     // level basis cardinality for the year feature
	AnomalyLevels int     // basis cardinality for the orbital mean anomaly
	LabelLevels   int     // level basis cardinality for the regression label
	R             float64 // correlation-relaxation hyperparameter for the basis under test
	Seed          uint64
}

// DefaultRegressConfig mirrors the paper's d = 10000 setting with label and
// feature quantizations sized to the synthetic series.
func DefaultRegressConfig() RegressConfig {
	return RegressConfig{
		D: 10000, DayLevels: 365, HourLevels: 24, YearLevels: 8,
		AnomalyLevels: 512, LabelLevels: 128, R: 0, Seed: DefaultSeed,
	}
}

// RegressionResult is the outcome of one (dataset, basis) cell.
type RegressionResult struct {
	Dataset string
	Kind    core.Kind
	R       float64
	MSE     float64
	MAE     float64
}

// RunTemperatureRegression trains the Section 2.3 framework on the
// chronological temperature series: samples are encoded Y ⊗ D ⊗ H (year
// level-encoded; day and hour with the basis family under test), labels are
// level-encoded temperatures, and the test MSE over the final 30% is
// returned.
func RunTemperatureRegression(series []dataset.TempSample, kind core.Kind, cfg RegressConfig) RegressionResult {
	train, test := dataset.SplitChronological(series, 0.7)

	basisStream := rng.Sub(cfg.Seed, fmt.Sprintf("regress/beijing/%s/%g", kind, cfg.R))
	dayEnc := valueEncoder(kind, cfg.DayLevels, cfg.D, cfg.R, 365, basisStream)
	hourEnc := valueEncoder(kind, cfg.HourLevels, cfg.D, cfg.R, 24, basisStream)
	maxYear := 0
	for _, s := range series {
		if s.YearIndex > maxYear {
			maxYear = s.YearIndex
		}
	}
	yearSet := core.LevelSet(cfg.YearLevels, cfg.D, basisStream)
	yearEnc := embed.NewScalarEncoder(yearSet, 0, float64(maxYear)+1)

	lo, hi := dataset.TempRange(train)
	labelSet := core.LevelSet(cfg.LabelLevels, cfg.D, basisStream)
	labelEnc := embed.NewScalarEncoder(labelSet, lo, hi)

	encode := func(s dataset.TempSample) *bitvec.Vector {
		v := yearEnc.Encode(float64(s.YearIndex))
		v = v.Xor(dayEnc.Encode(s.DayOfYear))
		v.XorInPlace(hourEnc.Encode(s.HourOfDay))
		return v
	}

	reg := model.NewRegressor(cfg.D, cfg.Seed^hash("beijing"))
	for _, s := range train {
		reg.Add(encode(s), labelEnc.Encode(s.Temp))
	}
	pred := make([]float64, len(test))
	truth := make([]float64, len(test))
	for i, s := range test {
		pred[i] = reg.Predict(encode(s), labelEnc)
		truth[i] = s.Temp
	}
	return RegressionResult{
		Dataset: "Beijing", Kind: kind, R: cfg.R,
		MSE: stats.MSE(pred, truth), MAE: stats.MAE(pred, truth),
	}
}

// RunOrbitRegression trains the regression framework on the orbital power
// series: the mean anomaly is the single feature (encoded with the basis
// family under test), labels are level-encoded power readings, and the MSE
// over a random 30% test split is returned.
func RunOrbitRegression(series []dataset.OrbitSample, kind core.Kind, cfg RegressConfig) RegressionResult {
	split := rng.Sub(cfg.Seed, "regress/mars/split")
	train, test := dataset.SplitRandom(series, 0.7, split)

	basisStream := rng.Sub(cfg.Seed, fmt.Sprintf("regress/mars/%s/%g", kind, cfg.R))
	anomalyEnc := valueEncoder(kind, cfg.AnomalyLevels, cfg.D, cfg.R, 2*pi, basisStream)

	lo, hi := dataset.PowerRange(train)
	labelSet := core.LevelSet(cfg.LabelLevels, cfg.D, basisStream)
	labelEnc := embed.NewScalarEncoder(labelSet, lo, hi)

	reg := model.NewRegressor(cfg.D, cfg.Seed^hash("mars"))
	for _, s := range train {
		reg.Add(anomalyEnc.Encode(s.MeanAnomaly), labelEnc.Encode(s.Power))
	}
	pred := make([]float64, len(test))
	truth := make([]float64, len(test))
	for i, s := range test {
		pred[i] = reg.Predict(anomalyEnc.Encode(s.MeanAnomaly), labelEnc)
		truth[i] = s.Power
	}
	return RegressionResult{
		Dataset: "Mars Express", Kind: kind, R: cfg.R,
		MSE: stats.MSE(pred, truth), MAE: stats.MAE(pred, truth),
	}
}

// ---------------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------------

const pi = 3.141592653589793

// hash folds a string into a uint64 (FNV-1a) for seed derivation.
func hash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// encodeParallel encodes items[i] with the (goroutine-safe) encode function
// on all cores, preserving order. Encoders are safe because bundling ties
// resolve against fixed tie vectors (see bitvec.ThresholdTieVector).
func encodeParallel[T any](items []T, encode func(T) *bitvec.Vector) []*bitvec.Vector {
	out := make([]*bitvec.Vector, len(items))
	parallelFor(len(items), func(i int) { out[i] = encode(items[i]) })
	return out
}

// parallelFor runs f(i) for i in [0,n) on up to GOMAXPROCS workers and
// waits. Each index must be independent; the experiment grid cells are.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
