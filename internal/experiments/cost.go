package experiments

import (
	"fmt"
	"io"

	"hdcirc/internal/dataset"
	"hdcirc/internal/hwcost"
)

// RunCost produces hardware cost reports for the paper's three deployments
// (gesture classifier, Beijing regressor, Mars regressor) under the given
// table configs and the default 45 nm energy table. It backs the efficiency
// discussion of the paper's Sections 1 and 6.2 with first-order numbers.
func RunCost(t1 Table1Config, t2 Table2Config) []hwcost.Report {
	e := hwcost.Default45nm()
	g := t1.Gesture
	gestureTrain := g.NumGestures * g.TrainPerGesture
	gestureTest := g.NumGestures * g.TestPerGesture

	temps := dataset.GenTemperature(t2.Temp, t2.Regress.Seed)
	tTrain, tTest := dataset.SplitChronological(temps, 0.7)

	workloads := []hwcost.Workload{
		{
			Name: "Gesture classifier",
			Pipeline: hwcost.PipelineConfig{
				D: t1.Classify.D, Fields: g.NumFeatures,
				Classes: g.NumGestures, BasisM: t1.Classify.ValueLevels,
			},
			Train: gestureTrain, Test: gestureTest,
		},
		{
			Name: "Beijing regressor",
			Pipeline: hwcost.PipelineConfig{
				D: t2.Regress.D, Fields: 3,
				LabelLevels: t2.Regress.LabelLevels,
				BasisM:      t2.Regress.DayLevels + t2.Regress.HourLevels + t2.Regress.YearLevels,
			},
			Train: len(tTrain), Test: len(tTest),
		},
		{
			Name: "Mars regressor",
			Pipeline: hwcost.PipelineConfig{
				D: t2.Regress.D, Fields: 1,
				LabelLevels: t2.Regress.LabelLevels,
				BasisM:      t2.Regress.AnomalyLevels,
			},
			Train: int(0.7 * float64(t2.Orbit.N)), Test: t2.Orbit.N - int(0.7*float64(t2.Orbit.N)),
		},
	}
	out := make([]hwcost.Report, len(workloads))
	for i, w := range workloads {
		out[i] = hwcost.Cost(w, e)
	}
	return out
}

// RenderCost writes the hardware cost table.
func RenderCost(w io.Writer, reports []hwcost.Report) {
	fmt.Fprintln(w, "Hardware cost model — 45 nm-class energy table, word-level datapath")
	fmt.Fprintf(w, "%-20s %14s %14s %12s\n", "Deployment", "train µJ", "infer µJ/item", "model KiB")
	for _, r := range reports {
		fmt.Fprintf(w, "%-20s %14.1f %14.3f %12.0f\n",
			r.Name, r.TrainEnergyUJ, r.InferEnergyUJ, r.ModelKiB)
	}
}
