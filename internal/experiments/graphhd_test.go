package experiments

import (
	"strings"
	"testing"
)

func fastGraphHD() GraphHDConfig {
	cfg := DefaultGraphHDConfig()
	cfg.D = 4096
	cfg.TrainPerClass = 12
	cfg.TestPerClass = 8
	return cfg
}

func TestRunGraphHDBeatsChance(t *testing.T) {
	res := RunGraphHD(fastGraphHD())
	if res.Accuracy < 0.55 {
		t.Errorf("GraphHD accuracy %v too low (chance = 1/3)", res.Accuracy)
	}
	if res.Conf.Total() != 24 {
		t.Errorf("confusion total = %d", res.Conf.Total())
	}
}

func TestRunGraphHDDeterministic(t *testing.T) {
	if RunGraphHD(fastGraphHD()).Accuracy != RunGraphHD(fastGraphHD()).Accuracy {
		t.Error("equal-config GraphHD runs differ")
	}
}

func TestRunGraphHDStructureSensitive(t *testing.T) {
	// The small-world family has the most distinctive structure; its
	// recall should be at least as good as the overall accuracy.
	res := RunGraphHD(fastGraphHD())
	rec := res.Conf.PerClassRecall()
	if rec[2] < res.Accuracy-0.05 {
		t.Errorf("watts-strogatz recall %v below accuracy %v", rec[2], res.Accuracy)
	}
}

func TestRenderGraphHD(t *testing.T) {
	var b strings.Builder
	RenderGraphHD(&b, RunGraphHD(fastGraphHD()))
	for _, want := range []string{"GraphHD", "erdos-renyi", "watts-strogatz", "recall"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}
