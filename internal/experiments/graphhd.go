package experiments

import (
	"fmt"
	"io"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/graph"
	"hdcirc/internal/model"
	"hdcirc/internal/rng"
	"hdcirc/internal/stats"
)

// GraphHD extension (Nunes et al., DATE 2022 — the paper's reference [31]):
// a graph is encoded as the bundle of its edges, each edge being the
// binding of its endpoints' vertex hypervectors, with vertices assigned
// basis vectors by centrality rank so structurally similar graphs share
// encodings. We classify three synthetic random-graph families that differ
// only in structure.

// GraphHDConfig parameterizes the graph-classification extension.
type GraphHDConfig struct {
	D             int
	Vertices      int // vertices per graph
	TrainPerClass int
	TestPerClass  int
	Seed          uint64
}

// DefaultGraphHDConfig gives three separable-but-not-trivial families.
func DefaultGraphHDConfig() GraphHDConfig {
	return GraphHDConfig{D: 10000, Vertices: 40, TrainPerClass: 30, TestPerClass: 20, Seed: DefaultSeed}
}

// graphFamilies lists the class names in label order.
var graphFamilies = []string{"erdos-renyi", "pref-attach", "watts-strogatz"}

// genGraph draws one graph of the given class with matched average degree
// (~4), so density alone cannot separate the families.
func genGraph(class int, n int, r *rng.Stream) *graph.Graph {
	switch class {
	case 0:
		return graph.ErdosRenyi(n, 4/float64(n-1), r)
	case 1:
		return graph.PreferentialAttachment(n, 2, r)
	default:
		return graph.WattsStrogatz(n, 4, 0.1, r)
	}
}

// encodeGraph implements the GraphHD encoding: vertex hypervectors come
// from a shared random basis indexed by degree-centrality rank; the graph
// is the majority bundle of its bound edge pairs. Graphs with no edges
// encode to the tie vector (never happens for the synthetic families).
func encodeGraph(g *graph.Graph, vertexBasis *core.Set, tieVec *bitvec.Vector) *bitvec.Vector {
	rank := g.DegreeRank()
	acc := bitvec.NewAccumulator(vertexBasis.Dim())
	tmp := bitvec.New(vertexBasis.Dim())
	for _, e := range g.Edges() {
		vertexBasis.At(rank[e[0]]).XorInto(vertexBasis.At(rank[e[1]]), tmp)
		acc.Add(tmp)
	}
	return acc.ThresholdTieVector(tieVec)
}

// GraphHDResult is the outcome of the graph-classification extension.
type GraphHDResult struct {
	Accuracy float64
	Conf     *stats.Confusion
}

// RunGraphHD trains the centroid classifier on the three graph families
// and returns test accuracy.
func RunGraphHD(cfg GraphHDConfig) GraphHDResult {
	basis := core.RandomSet(cfg.Vertices, cfg.D, rng.Sub(cfg.Seed, "graphhd/basis"))
	tieVec := bitvec.Random(cfg.D, rng.Sub(cfg.Seed, "graphhd/ties"))

	gen := func(label string, per int) ([]*bitvec.Vector, []int) {
		stream := rng.Sub(cfg.Seed, "graphhd/"+label)
		var hvs []*bitvec.Vector
		var labels []int
		for class := range graphFamilies {
			for i := 0; i < per; i++ {
				g := genGraph(class, cfg.Vertices, stream)
				hvs = append(hvs, encodeGraph(g, basis, tieVec))
				labels = append(labels, class)
			}
		}
		return hvs, labels
	}

	trainHVs, trainLabels := gen("train", cfg.TrainPerClass)
	testHVs, testLabels := gen("test", cfg.TestPerClass)

	clf := model.NewClassifier(len(graphFamilies), cfg.D, cfg.Seed^hash("graphhd/clf"))
	for i, hv := range trainHVs {
		clf.Add(trainLabels[i], hv)
	}
	conf := stats.NewConfusion(len(graphFamilies))
	for i, hv := range testHVs {
		pred, _ := clf.Predict(hv)
		conf.Observe(testLabels[i], pred)
	}
	return GraphHDResult{Accuracy: conf.Accuracy(), Conf: conf}
}

// RenderGraphHD writes the graph-classification result with per-family
// recall.
func RenderGraphHD(w io.Writer, res GraphHDResult) {
	fmt.Fprintf(w, "Extension — GraphHD: %d graph families, accuracy %.1f%%\n",
		len(graphFamilies), 100*res.Accuracy)
	for i, rec := range res.Conf.PerClassRecall() {
		fmt.Fprintf(w, "  %-16s recall %.1f%%\n", graphFamilies[i], 100*rec)
	}
}
