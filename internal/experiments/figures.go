package experiments

import (
	"fmt"

	"hdcirc/internal/core"
	"hdcirc/internal/dataset"
	"hdcirc/internal/markov"
	"hdcirc/internal/rng"
	"hdcirc/internal/stats"
)

// ---------------------------------------------------------------------------
// Figure 3 — pairwise similarity heatmaps of the three basis families
// ---------------------------------------------------------------------------

// Figure3Config parameterizes the similarity-matrix comparison.
type Figure3Config struct {
	M    int // set cardinality shown on the heatmap axes
	D    int
	Seed uint64
}

// DefaultFigure3Config mirrors the paper's 10-point axes at d = 10000.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{M: 10, D: 10000, Seed: DefaultSeed}
}

// Figure3Result holds one similarity matrix per basis family.
type Figure3Result struct {
	M        int
	D        int
	Matrices map[core.Kind][][]float64
}

// RunFigure3 generates the three basis sets and their pairwise similarity
// matrices.
func RunFigure3(cfg Figure3Config) *Figure3Result {
	res := &Figure3Result{M: cfg.M, D: cfg.D, Matrices: map[core.Kind][][]float64{}}
	for _, kind := range Table1Basis {
		src := rng.Sub(cfg.Seed, "figure3/"+kind.String())
		set := core.Config{Kind: kind, M: cfg.M, D: cfg.D}.Build(src)
		res.Matrices[kind] = core.SimilarityMatrix(set)
	}
	return res
}

// ---------------------------------------------------------------------------
// Section 4.2 / Figure 4 — Markov-chain flip calibration
// ---------------------------------------------------------------------------

// MarkovPoint is one row of the flip-calibration sweep.
type MarkovPoint struct {
	Delta         float64 // target expected distance
	MarkovFlips   float64 // absorption-time calibration (the paper's 𝔉)
	AnalyticFlips float64 // closed-form with-replacement calibration
}

// RunMarkovSweep computes the flip budgets for a sweep of target distances
// at dimension d — the quantitative content behind the paper's Figure 4
// discussion.
func RunMarkovSweep(d int, deltas []float64) ([]MarkovPoint, error) {
	out := make([]MarkovPoint, 0, len(deltas))
	for _, delta := range deltas {
		k := int(delta * float64(d))
		if k < 1 {
			k = 1
		}
		mf, err := markov.ExpectedFlipsRecurrence(d, k)
		if err != nil {
			return nil, fmt.Errorf("markov sweep at Δ=%v: %w", delta, err)
		}
		af, err := markov.AnalyticFlips(d, delta)
		if err != nil {
			return nil, fmt.Errorf("analytic sweep at Δ=%v: %w", delta, err)
		}
		out = append(out, MarkovPoint{Delta: delta, MarkovFlips: mf, AnalyticFlips: af})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figure 6 — effect of r on the circular similarity profile
// ---------------------------------------------------------------------------

// Figure6Config parameterizes the r-profile comparison.
type Figure6Config struct {
	M     int
	D     int
	RGrid []float64
	Seed  uint64
}

// DefaultFigure6Config mirrors the paper: 10 hypervectors, r ∈ {0, 0.5, 1}.
func DefaultFigure6Config() Figure6Config {
	return Figure6Config{M: 10, D: 10000, RGrid: []float64{0, 0.5, 1}, Seed: DefaultSeed}
}

// Figure6Profile is the similarity of every node to the reference node
// (index 0) for one r value.
type Figure6Profile struct {
	R          float64
	Similarity []float64
}

// RunFigure6 builds circular sets across the r grid and records each
// node's similarity to the reference node.
func RunFigure6(cfg Figure6Config) []Figure6Profile {
	out := make([]Figure6Profile, len(cfg.RGrid))
	for i, r := range cfg.RGrid {
		src := rng.Sub(cfg.Seed, fmt.Sprintf("figure6/%g", r))
		set := core.CircularSetR(cfg.M, cfg.D, r, src)
		sims := make([]float64, cfg.M)
		for j := 0; j < cfg.M; j++ {
			sims[j] = set.At(0).Similarity(set.At(j))
		}
		out[i] = Figure6Profile{R: r, Similarity: sims}
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 7 — normalized regression MSE bars (derived from Table 2)
// ---------------------------------------------------------------------------

// RunFigure7 runs Table 2 and normalizes each dataset's MSE against the
// random basis, the reference of the paper's Figure 7.
func RunFigure7(cfg Table2Config) []Table2Row {
	return RunTable2(cfg).Normalized(core.KindRandom)
}

// ---------------------------------------------------------------------------
// Figure 8 — r-hyperparameter sweep over all five datasets
// ---------------------------------------------------------------------------

// Figure8Config parameterizes the r sweep.
type Figure8Config struct {
	RGrid    []float64
	Classify ClassifyConfig
	Regress  RegressConfig
	Gesture  dataset.GestureConfig
	Temp     dataset.TempConfig
	Orbit    dataset.OrbitConfig
}

// DefaultFigure8Config covers r ∈ [0,1] with the grid the paper plots.
func DefaultFigure8Config() Figure8Config {
	return Figure8Config{
		RGrid:    []float64{0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1},
		Classify: DefaultClassifyConfig(),
		Regress:  DefaultRegressConfig(),
		Gesture:  dataset.DefaultGestureConfig(""),
		Temp:     dataset.DefaultTempConfig(),
		Orbit:    dataset.DefaultOrbitConfig(),
	}
}

// Figure8Series is the normalized error curve of one dataset across the r
// grid. Classification datasets use the normalized accuracy error
// (1−α)/(1−ᾱ); regression datasets use MSE/refMSE; the reference ᾱ/refMSE
// is the random-basis performance on the same dataset.
type Figure8Series struct {
	Dataset string
	R       []float64
	Error   []float64
}

// RunFigure8 sweeps the r hyperparameter of the circular basis over all
// five evaluation datasets, normalizing each against its random-basis
// reference. Cells run in parallel.
func RunFigure8(cfg Figure8Config) []Figure8Series {
	datasets := append(append([]string{}, Table2Datasets...), Tasks...)
	nR := len(cfg.RGrid)

	// Pre-generate workloads once.
	temps := dataset.GenTemperature(cfg.Temp, cfg.Regress.Seed)
	orbits := dataset.GenOrbitPower(cfg.Orbit, cfg.Regress.Seed)
	gests := make(map[string]*dataset.GestureDataset, len(Tasks))
	for _, task := range Tasks {
		g := cfg.Gesture
		g.Task = task
		gests[task] = dataset.GenGestures(g, cfg.Classify.Seed)
	}

	// Raw metric for one (dataset, kind, r) cell: MSE for regression,
	// accuracy for classification.
	runCell := func(ds string, kind core.Kind, r float64) float64 {
		switch ds {
		case "Beijing":
			rc := cfg.Regress
			rc.R = r
			return RunTemperatureRegression(temps, kind, rc).MSE
		case "Mars Express":
			rc := cfg.Regress
			rc.R = r
			return RunOrbitRegression(orbits, kind, rc).MSE
		default:
			cc := cfg.Classify
			cc.R = r
			return RunGestureClassification(gests[ds], kind, cc).Accuracy
		}
	}

	type job struct {
		ds int
		ri int // -1 means the random reference cell
	}
	var jobs []job
	for d := range datasets {
		jobs = append(jobs, job{d, -1})
		for ri := 0; ri < nR; ri++ {
			jobs = append(jobs, job{d, ri})
		}
	}
	raw := make(map[job]float64, len(jobs))
	vals := make([]float64, len(jobs))
	parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		if j.ri < 0 {
			vals[i] = runCell(datasets[j.ds], core.KindRandom, 0)
			return
		}
		vals[i] = runCell(datasets[j.ds], core.KindCircular, cfg.RGrid[j.ri])
	})
	for i, j := range jobs {
		raw[j] = vals[i]
	}

	out := make([]Figure8Series, len(datasets))
	for d, name := range datasets {
		ref := raw[job{d, -1}]
		errs := make([]float64, nR)
		for ri := 0; ri < nR; ri++ {
			v := raw[job{d, ri}]
			if isRegression(name) {
				errs[ri] = stats.NormalizedMSE(v, ref)
			} else {
				errs[ri] = stats.NormalizedAccuracyError(v, ref)
			}
		}
		out[d] = Figure8Series{Dataset: name, R: append([]float64{}, cfg.RGrid...), Error: errs}
	}
	return out
}

func isRegression(dataset string) bool {
	return dataset == "Beijing" || dataset == "Mars Express"
}
