package experiments

import (
	"math"
	"strings"
	"testing"

	"hdcirc/internal/core"
	"hdcirc/internal/dataset"
)

// Reduced-size configs keep the suite fast while preserving every shape
// assertion; the full-size numbers live in EXPERIMENTS.md.

func fastClassify() ClassifyConfig {
	c := DefaultClassifyConfig()
	c.D = 4096
	return c
}

func fastGesture(task string) dataset.GestureConfig {
	g := dataset.DefaultGestureConfig(task)
	g.TrainPerGesture = 12
	g.TestPerGesture = 8
	return g
}

func fastRegress() RegressConfig {
	c := DefaultRegressConfig()
	c.D = 4096
	return c
}

func fastTemp() dataset.TempConfig {
	c := dataset.DefaultTempConfig()
	c.HourStep = 12
	return c
}

func fastOrbit() dataset.OrbitConfig {
	c := dataset.DefaultOrbitConfig()
	c.N = 900
	return c
}

func TestRunGestureClassificationBetterThanChance(t *testing.T) {
	ds := dataset.GenGestures(fastGesture("Knot Tying"), DefaultSeed)
	res := RunGestureClassification(ds, core.KindCircular, fastClassify())
	if res.Accuracy < 0.5 {
		t.Errorf("circular accuracy %v suspiciously low (chance = 1/15)", res.Accuracy)
	}
	if res.Conf.Total() != len(ds.Test) {
		t.Errorf("confusion total %d != test size %d", res.Conf.Total(), len(ds.Test))
	}
	if res.Task != "Knot Tying" || res.Kind != core.KindCircular {
		t.Errorf("metadata wrong: %+v", res)
	}
}

func TestRunGestureClassificationCircularWins(t *testing.T) {
	// The paper's headline (Table 1): circular beats random and level on
	// every surgical task.
	for _, task := range Tasks {
		ds := dataset.GenGestures(fastGesture(task), DefaultSeed)
		cfg := fastClassify()
		cfg.R = 0.1
		circ := RunGestureClassification(ds, core.KindCircular, cfg)
		cfg.R = 0
		rand := RunGestureClassification(ds, core.KindRandom, cfg)
		lvl := RunGestureClassification(ds, core.KindLevel, cfg)
		if circ.Accuracy <= rand.Accuracy {
			t.Errorf("%s: circular %v not above random %v", task, circ.Accuracy, rand.Accuracy)
		}
		if circ.Accuracy <= lvl.Accuracy {
			t.Errorf("%s: circular %v not above level %v", task, circ.Accuracy, lvl.Accuracy)
		}
	}
}

func TestRunGestureClassificationDeterministic(t *testing.T) {
	ds := dataset.GenGestures(fastGesture("Suturing"), DefaultSeed)
	a := RunGestureClassification(ds, core.KindLevel, fastClassify())
	b := RunGestureClassification(ds, core.KindLevel, fastClassify())
	if a.Accuracy != b.Accuracy {
		t.Errorf("same-seed runs differ: %v vs %v", a.Accuracy, b.Accuracy)
	}
}

func TestRunGestureClassificationRefinementDoesNotHurt(t *testing.T) {
	ds := dataset.GenGestures(fastGesture("Knot Tying"), DefaultSeed)
	base := fastClassify()
	refined := base
	refined.RefineEpochs = 5
	a := RunGestureClassification(ds, core.KindCircular, base)
	b := RunGestureClassification(ds, core.KindCircular, refined)
	// Online refinement fits the training set harder; on this workload it
	// must not collapse test accuracy (allow small regressions from
	// overfitting the train surgeon).
	if b.Accuracy < a.Accuracy-0.1 {
		t.Errorf("refinement collapsed accuracy: %v → %v", a.Accuracy, b.Accuracy)
	}
}

func TestRunTemperatureRegressionOrdering(t *testing.T) {
	// Table 2 row 1 shape: circular < level < random MSE.
	temps := dataset.GenTemperature(fastTemp(), DefaultSeed)
	cfg := fastRegress()
	cfg.R = 0.01
	circ := RunTemperatureRegression(temps, core.KindCircular, cfg)
	cfg.R = 0
	lvl := RunTemperatureRegression(temps, core.KindLevel, cfg)
	rnd := RunTemperatureRegression(temps, core.KindRandom, cfg)
	if !(circ.MSE < lvl.MSE && lvl.MSE < rnd.MSE) {
		t.Errorf("ordering violated: circular %v, level %v, random %v", circ.MSE, lvl.MSE, rnd.MSE)
	}
	if circ.MAE <= 0 || circ.MAE > math.Sqrt(circ.MSE)+1e-9 {
		t.Errorf("MAE %v inconsistent with MSE %v", circ.MAE, circ.MSE)
	}
}

func TestRunOrbitRegressionOrdering(t *testing.T) {
	// Table 2 row 2 shape: random is far worst; circular beats level.
	orbits := dataset.GenOrbitPower(fastOrbit(), DefaultSeed)
	cfg := fastRegress()
	cfg.R = 0.01
	circ := RunOrbitRegression(orbits, core.KindCircular, cfg)
	cfg.R = 0
	lvl := RunOrbitRegression(orbits, core.KindLevel, cfg)
	rnd := RunOrbitRegression(orbits, core.KindRandom, cfg)
	if rnd.MSE <= lvl.MSE || rnd.MSE <= circ.MSE {
		t.Errorf("random %v should be far worst (level %v, circular %v)", rnd.MSE, lvl.MSE, circ.MSE)
	}
	if circ.MSE >= lvl.MSE*1.1 {
		t.Errorf("circular %v should not lose clearly to level %v", circ.MSE, lvl.MSE)
	}
}

func TestRunTable1ShapeAndRanges(t *testing.T) {
	cfg := DefaultTable1Config()
	cfg.Classify = fastClassify()
	cfg.Gesture = fastGesture("")
	res := RunTable1(cfg)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, k := range Table1Basis {
			a, ok := row.Accuracy[k]
			if !ok {
				t.Fatalf("%s missing %v accuracy", row.Task, k)
			}
			if a < 0 || a > 1 {
				t.Fatalf("%s %v accuracy %v out of range", row.Task, k, a)
			}
		}
		if row.Accuracy[core.KindCircular] <= row.Accuracy[core.KindRandom] {
			t.Errorf("%s: circular does not beat random", row.Task)
		}
	}
	if res.AverageImprovement(core.KindRandom) <= 0 {
		t.Error("average improvement over random not positive")
	}
}

func TestRunTable2ShapeAndDerived(t *testing.T) {
	cfg := DefaultTable2Config()
	cfg.Regress = fastRegress()
	cfg.Temp = fastTemp()
	cfg.Orbit = fastOrbit()
	res := RunTable2(cfg)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MSE[core.KindCircular] >= row.MSE[core.KindRandom] {
			t.Errorf("%s: circular MSE not below random", row.Dataset)
		}
	}
	if red := res.AverageReduction(core.KindRandom); red <= 0 || red > 1 {
		t.Errorf("reduction vs random = %v out of (0,1]", red)
	}
	norm := res.Normalized(core.KindRandom)
	for _, row := range norm {
		if math.Abs(row.MSE[core.KindRandom]-1) > 1e-12 {
			t.Errorf("%s: normalized random MSE %v != 1", row.Dataset, row.MSE[core.KindRandom])
		}
	}
}

func TestRunFigure3Profiles(t *testing.T) {
	cfg := DefaultFigure3Config()
	cfg.D = 4096
	res := RunFigure3(cfg)
	if len(res.Matrices) != 3 {
		t.Fatalf("matrices = %d", len(res.Matrices))
	}
	randM := res.Matrices[core.KindRandom]
	lvlM := res.Matrices[core.KindLevel]
	circM := res.Matrices[core.KindCircular]
	m := cfg.M
	// Random: off-diagonal ≈ 0.5.
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j && math.Abs(randM[i][j]-0.5) > 0.05 {
				t.Errorf("random sim[%d][%d] = %v", i, j, randM[i][j])
			}
		}
	}
	// Level: first row decreasing.
	for j := 1; j < m; j++ {
		if lvlM[0][j] > lvlM[0][j-1]+0.03 {
			t.Errorf("level first row not decreasing at %d", j)
		}
	}
	// Circular: wrap symmetry sim(0,1) ≈ sim(0,m−1).
	if math.Abs(circM[0][1]-circM[0][m-1]) > 0.05 {
		t.Errorf("circular wrap asymmetry: %v vs %v", circM[0][1], circM[0][m-1])
	}
}

func TestRunMarkovSweep(t *testing.T) {
	pts, err := RunMarkovSweep(10000, []float64{0.05, 0.1, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.MarkovFlips > p.AnalyticFlips {
			t.Errorf("Δ=%v: markov %v above analytic %v", p.Delta, p.MarkovFlips, p.AnalyticFlips)
		}
		if p.MarkovFlips < p.Delta*10000 {
			t.Errorf("Δ=%v: flips %v below minimum", p.Delta, p.MarkovFlips)
		}
	}
	if _, err := RunMarkovSweep(10000, []float64{0.7}); err == nil {
		t.Error("invalid delta accepted")
	}
}

func TestRunFigure6ProfileShapes(t *testing.T) {
	cfg := DefaultFigure6Config()
	cfg.D = 4096
	profiles := RunFigure6(cfg)
	if len(profiles) != 3 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	for _, p := range profiles {
		if p.Similarity[0] != 1 {
			t.Errorf("r=%v: self similarity %v != 1", p.R, p.Similarity[0])
		}
	}
	// r=0: antipode ≈ 0.5; wrap neighbor clearly similar.
	p0 := profiles[0]
	if math.Abs(p0.Similarity[cfg.M/2]-0.5) > 0.05 {
		t.Errorf("r=0 antipodal similarity %v", p0.Similarity[cfg.M/2])
	}
	if p0.Similarity[cfg.M-1] < 0.7 {
		t.Errorf("r=0 wrap neighbor similarity %v too low", p0.Similarity[cfg.M-1])
	}
	// r=1: all non-self ≈ 0.5.
	p1 := profiles[len(profiles)-1]
	for j := 1; j < cfg.M; j++ {
		if math.Abs(p1.Similarity[j]-0.5) > 0.06 {
			t.Errorf("r=1 similarity[%d] = %v not ≈ 0.5", j, p1.Similarity[j])
		}
	}
}

func TestRunFigure7NormalizedToRandom(t *testing.T) {
	cfg := DefaultTable2Config()
	cfg.Regress = fastRegress()
	cfg.Temp = fastTemp()
	cfg.Orbit = fastOrbit()
	rows := RunFigure7(cfg)
	for _, row := range rows {
		if math.Abs(row.MSE[core.KindRandom]-1) > 1e-12 {
			t.Errorf("%s: random not normalized to 1", row.Dataset)
		}
		if row.MSE[core.KindCircular] >= 1 {
			t.Errorf("%s: circular normalized MSE %v not below 1", row.Dataset, row.MSE[core.KindCircular])
		}
	}
}

func TestRunFigure8SeriesShape(t *testing.T) {
	cfg := DefaultFigure8Config()
	cfg.Classify = fastClassify()
	cfg.Regress = fastRegress()
	cfg.Gesture = fastGesture("")
	cfg.Temp = fastTemp()
	cfg.Orbit = fastOrbit()
	cfg.RGrid = []float64{0, 0.1, 1}
	series := RunFigure8(cfg)
	if len(series) != 5 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Error) != 3 || len(s.R) != 3 {
			t.Fatalf("%s: wrong grid length", s.Dataset)
		}
		// r=0 (plain circular) must beat the random reference on every
		// dataset — that is Tables 1 and 2 restated.
		if s.Error[0] >= 1 {
			t.Errorf("%s: normalized error at r=0 is %v, want < 1", s.Dataset, s.Error[0])
		}
		// r=1 approaches the random reference: allow generous noise band.
		if s.Error[2] < 0.5 || s.Error[2] > 2 {
			t.Errorf("%s: normalized error at r=1 is %v, want ≈ 1", s.Dataset, s.Error[2])
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var b strings.Builder

	t1 := &Table1Result{CircularR: 0.1, Rows: []Table1Row{{
		Task: "X", Accuracy: map[core.Kind]float64{
			core.KindRandom: 0.7, core.KindLevel: 0.7, core.KindCircular: 0.8},
	}}}
	RenderTable1(&b, t1)
	if !strings.Contains(b.String(), "Table 1") || !strings.Contains(b.String(), "80.0%") {
		t.Errorf("Table1 render missing content:\n%s", b.String())
	}

	b.Reset()
	t2 := &Table2Result{CircularR: 0.01, Rows: []Table2Row{{
		Dataset: "Y", MSE: map[core.Kind]float64{
			core.KindRandom: 10, core.KindLevel: 5, core.KindCircular: 2},
	}}}
	RenderTable2(&b, t2)
	if !strings.Contains(b.String(), "Table 2") {
		t.Error("Table2 render missing header")
	}

	b.Reset()
	RenderHeatmap(&b, "test", [][]float64{{1, 0.5}, {0.5, 1}})
	if !strings.Contains(b.String(), "@") {
		t.Error("heatmap missing saturated glyph")
	}

	b.Reset()
	RenderFigure6(&b, []Figure6Profile{{R: 0, Similarity: []float64{1, 0.8}}})
	if !strings.Contains(b.String(), "r=0") {
		t.Error("Figure6 render missing series")
	}

	b.Reset()
	RenderFigure7(&b, t2.Normalized(core.KindRandom))
	if !strings.Contains(b.String(), "1.000") {
		t.Error("Figure7 render missing normalized reference")
	}

	b.Reset()
	RenderFigure8(&b, []Figure8Series{{Dataset: "Z", R: []float64{0, 1}, Error: []float64{0.5, 1}}})
	if !strings.Contains(b.String(), "Z") {
		t.Error("Figure8 render missing series")
	}
	RenderFigure8(&b, nil) // must not panic on empty input

	b.Reset()
	pts, err := RunMarkovSweep(1000, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	RenderMarkovSweep(&b, 1000, pts)
	if !strings.Contains(b.String(), "0.100") {
		t.Error("markov render missing delta")
	}

	b.Reset()
	f3 := &Figure3Result{M: 2, D: 64, Matrices: map[core.Kind][][]float64{
		core.KindRandom: {{1, 0.5}, {0.5, 1}},
	}}
	RenderFigure3(&b, f3)
	if !strings.Contains(b.String(), "random") {
		t.Error("Figure3 render missing family name")
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	n := 137
	seen := make([]int32, n)
	parallelFor(n, func(i int) { seen[i]++ })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
	parallelFor(0, func(int) { t.Fatal("called for n=0") })
	// Single-element path.
	hit := false
	parallelFor(1, func(i int) { hit = true })
	if !hit {
		t.Error("n=1 not executed")
	}
}

func TestHashStableAndDistinct(t *testing.T) {
	if hash("a") != hash("a") {
		t.Error("hash not deterministic")
	}
	if hash("a") == hash("b") {
		t.Error("hash collision on trivial inputs")
	}
}

func TestIsRegression(t *testing.T) {
	if !isRegression("Beijing") || !isRegression("Mars Express") {
		t.Error("regression datasets misclassified")
	}
	if isRegression("Knot Tying") {
		t.Error("classification dataset misclassified")
	}
}
