// Package batch provides the concurrent fan-out layer for encode, train
// and predict pipelines: a fixed-size worker pool that distributes
// independent per-index work across GOMAXPROCS goroutines.
//
// Every construct here is deterministic by design: workers claim indices
// from an atomic cursor but write results only to their own index, so the
// output of a batched operation is bit-identical to the sequential loop
// regardless of the worker count or scheduling order. Operations that need
// randomness (majority tie-breaking) stay deterministic because the
// encoders use fixed per-encoder tie vectors and the models draw tie coins
// only in sequential sections — the properties ThresholdTieVector and the
// classifier's epoch structure were designed around.
package batch

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a reusable description of a worker fleet. The zero value is not
// usable; create pools with New. Pools hold no goroutines between calls —
// workers are spawned per operation and torn down when it completes, so an
// idle Pool costs nothing.
type Pool struct {
	workers int
}

// New returns a pool of the given size; workers <= 0 selects
// runtime.GOMAXPROCS(0), the number of CPUs the scheduler will actually
// use.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// ForEach invokes fn(i) exactly once for every i in [0, n), spread across
// the pool. fn must be safe for concurrent invocation from multiple
// goroutines; the usual pattern is writing to out[i] only, which keeps the
// result independent of scheduling. A panic in any fn is re-raised on the
// calling goroutine after the remaining workers drain.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		trap   panicTrap
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer trap.catch()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	trap.reraise()
}

// panicTrap collects the first panic raised across a fleet of workers so it
// can be re-raised on the calling goroutine after the fleet drains. Without
// it a panic inside an anonymous worker goroutine is unrecoverable and
// kills the whole process — fatal for a long-lived server.
type panicTrap struct {
	mu sync.Mutex
	v  any
}

// catch records a recovered panic; call it in a deferred statement at the
// top of each worker.
func (t *panicTrap) catch() {
	if r := recover(); r != nil {
		t.mu.Lock()
		if t.v == nil {
			t.v = r
		}
		t.mu.Unlock()
	}
}

// reraise panics on the caller with the first trapped value, if any.
func (t *panicTrap) reraise() {
	if t.v != nil {
		panic(t.v)
	}
}

// Map applies fn to every element of in across the pool and returns the
// outputs in input order: out[i] = fn(in[i]), bit-identical to the
// sequential loop for any worker count.
func Map[T, R any](p *Pool, in []T, fn func(T) R) []R {
	out := make([]R, len(in))
	p.ForEach(len(in), func(i int) { out[i] = fn(in[i]) })
	return out
}

// Chunks invokes fn(lo, hi) over contiguous, non-overlapping index ranges
// covering [0, n), one range per worker, sized as evenly as possible. Use
// it when per-index dispatch is too fine-grained — e.g. merging per-worker
// partial results that are themselves index-addressed. Like ForEach, a
// panic in any fn is re-raised on the calling goroutine after the
// remaining workers drain; ranges claimed by other workers may or may not
// have run.
func (p *Pool) Chunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, n)
		return
	}
	var (
		wg   sync.WaitGroup
		trap panicTrap
	)
	wg.Add(w)
	size, rem := n/w, n%w
	lo := 0
	for g := 0; g < w; g++ {
		hi := lo + size
		if g < rem {
			hi++
		}
		go func(lo, hi int) {
			defer wg.Done()
			defer trap.catch()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	trap.reraise()
}
