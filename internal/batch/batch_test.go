package batch

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(-3).Workers(); got < 1 {
		t.Errorf("New(-3).Workers() = %d", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Errorf("New(5).Workers() = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 17, 1000} {
			hits := make([]atomic.Int32, n)
			p.ForEach(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 500)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{1, 3, 8} {
		out := Map(New(workers), in, func(x int) int { return x * x })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		p := New(workers)
		for _, n := range []int{0, 1, 5, 16, 17, 1000} {
			covered := make([]atomic.Int32, n)
			p.Chunks(n, func(lo, hi int) {
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
			})
			for i := range covered {
				if c := covered[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	New(4).ForEach(100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForEachSingleWorkerPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	New(1).ForEach(10, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

// TestChunksPropagatesPanic pins the contract Chunks shares with ForEach:
// a worker panic must surface on the calling goroutine instead of crashing
// the process from an anonymous goroutine.
func TestChunksPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		func() {
			defer func() {
				if r := recover(); r != "chunk-boom" {
					t.Errorf("workers=%d: recovered %v, want chunk-boom", workers, r)
				}
			}()
			New(workers).Chunks(100, func(lo, hi int) {
				if lo <= 37 && 37 < hi {
					panic("chunk-boom")
				}
			})
		}()
	}
}

// TestChunksPanicStillDrains checks the non-panicking workers finish (the
// call returns only after every goroutine is done) so no chunk goroutine
// outlives the call.
func TestChunksPanicStillDrains(t *testing.T) {
	var ran atomic.Int32
	func() {
		defer func() { recover() }()
		New(8).Chunks(8, func(lo, hi int) {
			ran.Add(1)
			if lo == 0 {
				panic("x")
			}
		})
	}()
	if got := ran.Load(); got != 8 {
		t.Errorf("only %d of 8 chunks ran before return", got)
	}
}
