// Package hwcost provides a first-order hardware cost model for HDC
// pipelines, backing the paper's efficiency claims for embedded and IoT
// targets (Sections 1 and 6.2). The model counts the word-level primitive
// operations a binary-HDC datapath executes — 64-bit XORs, popcounts,
// counter updates and threshold comparisons — plus the model memory
// footprint, and converts them to energy with a configurable per-op table
// (defaults in the ballpark of a 45 nm embedded-class process).
//
// This is an analytic estimator, not a simulator: it exists to compare
// *designs* (dimension, basis cardinality, field counts, class counts) on
// equal footing, the way architecture papers size HDC accelerators.
package hwcost

import "fmt"

// OpCounts tallies word-level primitive operations and the static memory a
// pipeline stage needs.
type OpCounts struct {
	XorWords       int64 // 64-bit XOR operations (binding)
	PopcountWords  int64 // 64-bit popcounts (distance)
	CounterUpdates int64 // per-dimension saturating counter increments (bundling/training)
	ThresholdOps   int64 // per-dimension majority threshold comparisons
	MemoryBits     int64 // static storage: basis sets, prototypes, counters
}

// Add returns the element-wise sum of two counts.
func (o OpCounts) Add(p OpCounts) OpCounts {
	return OpCounts{
		XorWords:       o.XorWords + p.XorWords,
		PopcountWords:  o.PopcountWords + p.PopcountWords,
		CounterUpdates: o.CounterUpdates + p.CounterUpdates,
		ThresholdOps:   o.ThresholdOps + p.ThresholdOps,
		MemoryBits:     o.MemoryBits + p.MemoryBits,
	}
}

// Scale returns the counts multiplied by n (memory is NOT scaled — it is
// static).
func (o OpCounts) Scale(n int64) OpCounts {
	return OpCounts{
		XorWords:       o.XorWords * n,
		PopcountWords:  o.PopcountWords * n,
		CounterUpdates: o.CounterUpdates * n,
		ThresholdOps:   o.ThresholdOps * n,
		MemoryBits:     o.MemoryBits,
	}
}

// EnergyModel holds per-operation energies in picojoules.
type EnergyModel struct {
	XorWordPJ   float64 // one 64-bit XOR including operand reads
	PopcountPJ  float64 // one 64-bit popcount step
	CounterPJ   float64 // one counter read-modify-write
	ThresholdPJ float64 // one comparison
	LeakPJPerOp float64 // amortized static leakage per op
}

// Default45nm returns energy constants in the ballpark reported for 45 nm
// embedded logic (Horowitz ISSCC'14 style orders of magnitude: ~pJ-scale
// word ops, counter RMWs dominated by SRAM access).
func Default45nm() EnergyModel {
	return EnergyModel{
		XorWordPJ:   1.1,
		PopcountPJ:  1.8,
		CounterPJ:   6.0,
		ThresholdPJ: 0.4,
		LeakPJPerOp: 0.2,
	}
}

// Energy returns the total energy of the counted operations in microjoules.
func (e EnergyModel) Energy(o OpCounts) float64 {
	ops := float64(o.XorWords + o.PopcountWords + o.CounterUpdates + o.ThresholdOps)
	pj := float64(o.XorWords)*e.XorWordPJ +
		float64(o.PopcountWords)*e.PopcountPJ +
		float64(o.CounterUpdates)*e.CounterPJ +
		float64(o.ThresholdOps)*e.ThresholdPJ +
		ops*e.LeakPJPerOp
	return pj / 1e6
}

// words converts a bit dimension to 64-bit word count (rounded up).
func words(d int) int64 { return int64((d + 63) / 64) }

// ---------------------------------------------------------------------------
// Pipeline stage models
// ---------------------------------------------------------------------------

// PipelineConfig describes an HDC deployment for costing.
type PipelineConfig struct {
	D           int // hypervector dimension
	Fields      int // record fields bound per sample (0 or 1 = single feature)
	Classes     int // classifier prototypes (0 for regression)
	LabelLevels int // regression label set size (0 for classification)
	BasisM      int // feature basis cardinality (for memory accounting)
}

func (c PipelineConfig) validate() {
	if c.D <= 0 {
		panic(fmt.Sprintf("hwcost: dimension must be positive, got %d", c.D))
	}
}

// EncodeSample counts one sample encoding: Fields key-bindings plus the
// bundling majority across fields (record encoding ⊕ Kᵢ⊗Vᵢ). A single-
// feature pipeline (Fields ≤ 1) is a bare basis lookup — zero dynamic ops.
func (c PipelineConfig) EncodeSample() OpCounts {
	c.validate()
	w := words(c.D)
	if c.Fields <= 1 {
		return OpCounts{}
	}
	return OpCounts{
		XorWords:       int64(c.Fields) * w,
		CounterUpdates: int64(c.Fields) * int64(c.D),
		ThresholdOps:   int64(c.D),
	}
}

// TrainSample counts absorbing one encoded sample into a model: one
// counter update per dimension (classification adds to a class accumulator;
// regression binds with the label first).
func (c PipelineConfig) TrainSample() OpCounts {
	c.validate()
	out := OpCounts{CounterUpdates: int64(c.D)}
	if c.LabelLevels > 0 {
		out.XorWords = words(c.D) // bind φ(x) ⊗ φℓ(y)
	}
	return out
}

// FinalizeModel counts thresholding the trained accumulators into binary
// prototypes.
func (c PipelineConfig) FinalizeModel() OpCounts {
	c.validate()
	n := int64(1)
	if c.Classes > 1 {
		n = int64(c.Classes)
	}
	return OpCounts{ThresholdOps: n * int64(c.D)}
}

// InferSample counts one inference: encode (shared with EncodeSample, not
// included here), then either Classes prototype distances or one unbind
// plus LabelLevels cleanup distances.
func (c PipelineConfig) InferSample() OpCounts {
	c.validate()
	w := words(c.D)
	if c.Classes > 1 {
		return OpCounts{
			XorWords:      int64(c.Classes) * w,
			PopcountWords: int64(c.Classes) * w,
		}
	}
	n := int64(c.LabelLevels)
	if n < 1 {
		n = 1
	}
	return OpCounts{
		XorWords:      w + n*w, // unbind + cleanup XORs
		PopcountWords: n * w,
	}
}

// ModelMemory counts the static storage of a deployed model: basis set(s),
// field keys and prototypes (binary), ignoring training counters which stay
// on the training host.
func (c PipelineConfig) ModelMemory() OpCounts {
	c.validate()
	bits := int64(0)
	if c.BasisM > 0 {
		bits += int64(c.BasisM) * int64(c.D)
	}
	if c.Fields > 1 {
		bits += int64(c.Fields) * int64(c.D)
	}
	if c.Classes > 1 {
		bits += int64(c.Classes) * int64(c.D)
	} else {
		bits += int64(c.D) // regression model vector
		bits += int64(c.LabelLevels) * int64(c.D)
	}
	return OpCounts{MemoryBits: bits}
}

// Workload couples a pipeline with sample counts for end-to-end costing.
type Workload struct {
	Name     string
	Pipeline PipelineConfig
	Train    int
	Test     int
}

// Report is the costed summary of one workload.
type Report struct {
	Name            string
	TrainOps        OpCounts
	InferOpsPerItem OpCounts
	ModelKiB        float64
	TrainEnergyUJ   float64
	InferEnergyUJ   float64 // per inference
}

// Cost produces the end-to-end report for a workload under the energy
// model.
func Cost(w Workload, e EnergyModel) Report {
	p := w.Pipeline
	train := p.EncodeSample().Add(p.TrainSample()).Scale(int64(w.Train)).Add(p.FinalizeModel())
	infer := p.EncodeSample().Add(p.InferSample())
	mem := p.ModelMemory()
	return Report{
		Name:            w.Name,
		TrainOps:        train,
		InferOpsPerItem: infer,
		ModelKiB:        float64(mem.MemoryBits) / 8 / 1024,
		TrainEnergyUJ:   e.Energy(train),
		InferEnergyUJ:   e.Energy(infer),
	}
}
