package hwcost

import (
	"math"
	"testing"
)

func classifierCfg() PipelineConfig {
	return PipelineConfig{D: 10000, Fields: 18, Classes: 15, BasisM: 24}
}

func regressorCfg() PipelineConfig {
	return PipelineConfig{D: 10000, Fields: 3, LabelLevels: 128, BasisM: 512}
}

func TestOpCountsAddScale(t *testing.T) {
	a := OpCounts{XorWords: 1, PopcountWords: 2, CounterUpdates: 3, ThresholdOps: 4, MemoryBits: 5}
	b := a.Add(a)
	if b.XorWords != 2 || b.MemoryBits != 10 {
		t.Errorf("Add wrong: %+v", b)
	}
	s := a.Scale(3)
	if s.XorWords != 3 || s.CounterUpdates != 9 {
		t.Errorf("Scale wrong: %+v", s)
	}
	if s.MemoryBits != 5 {
		t.Errorf("Scale must not scale static memory: %+v", s)
	}
}

func TestEncodeSampleScalesWithFieldsAndD(t *testing.T) {
	base := classifierCfg().EncodeSample()
	wide := PipelineConfig{D: 10000, Fields: 36, Classes: 15}.EncodeSample()
	if wide.XorWords != 2*base.XorWords {
		t.Errorf("XOR count did not double with fields: %d vs %d", wide.XorWords, base.XorWords)
	}
	big := PipelineConfig{D: 20000, Fields: 18, Classes: 15}.EncodeSample()
	if big.CounterUpdates != 2*base.CounterUpdates {
		t.Errorf("counter updates did not double with d")
	}
	// Single-feature pipelines encode by table lookup: zero dynamic ops.
	single := PipelineConfig{D: 10000, Fields: 1}.EncodeSample()
	if single.XorWords != 0 || single.CounterUpdates != 0 {
		t.Errorf("single-feature encode should be free: %+v", single)
	}
}

func TestInferSampleClassifierVsRegressor(t *testing.T) {
	clf := classifierCfg().InferSample()
	if clf.PopcountWords != 15*int64((10000+63)/64) {
		t.Errorf("classifier popcounts wrong: %d", clf.PopcountWords)
	}
	reg := regressorCfg().InferSample()
	// Regression cleanup over 128 labels dominates.
	if reg.PopcountWords <= clf.PopcountWords {
		t.Errorf("128-label cleanup (%d) should out-cost 15-class compare (%d)",
			reg.PopcountWords, clf.PopcountWords)
	}
}

func TestTrainSampleBindsLabelOnlyForRegression(t *testing.T) {
	if classifierCfg().TrainSample().XorWords != 0 {
		t.Error("classifier training should not bind labels")
	}
	if regressorCfg().TrainSample().XorWords == 0 {
		t.Error("regressor training must bind the label")
	}
}

func TestFinalizeModelPerClass(t *testing.T) {
	clf := classifierCfg().FinalizeModel()
	if clf.ThresholdOps != 15*10000 {
		t.Errorf("finalize thresholds = %d", clf.ThresholdOps)
	}
	reg := regressorCfg().FinalizeModel()
	if reg.ThresholdOps != 10000 {
		t.Errorf("regression finalize thresholds = %d", reg.ThresholdOps)
	}
}

func TestModelMemoryAccounting(t *testing.T) {
	clf := classifierCfg().ModelMemory().MemoryBits
	// basis 24·d + keys 18·d + prototypes 15·d = 57·d
	if clf != 57*10000 {
		t.Errorf("classifier memory = %d bits, want %d", clf, 57*10000)
	}
	reg := regressorCfg().ModelMemory().MemoryBits
	// basis 512·d + keys 3·d + model d + labels 128·d = 644·d
	if reg != 644*10000 {
		t.Errorf("regressor memory = %d bits, want %d", reg, 644*10000)
	}
}

func TestEnergyModel(t *testing.T) {
	e := Default45nm()
	zero := e.Energy(OpCounts{})
	if zero != 0 {
		t.Errorf("zero ops cost energy: %v", zero)
	}
	one := e.Energy(OpCounts{XorWords: 1})
	want := (e.XorWordPJ + e.LeakPJPerOp) / 1e6
	if math.Abs(one-want) > 1e-15 {
		t.Errorf("single-op energy %v, want %v", one, want)
	}
	// Energy is monotone in counts.
	small := e.Energy(OpCounts{CounterUpdates: 100})
	large := e.Energy(OpCounts{CounterUpdates: 1000})
	if large <= small {
		t.Error("energy not monotone")
	}
}

func TestCostEndToEnd(t *testing.T) {
	w := Workload{Name: "gesture", Pipeline: classifierCfg(), Train: 600, Test: 375}
	rep := Cost(w, Default45nm())
	if rep.Name != "gesture" {
		t.Error("name lost")
	}
	if rep.TrainEnergyUJ <= 0 || rep.InferEnergyUJ <= 0 {
		t.Error("non-positive energies")
	}
	if rep.TrainEnergyUJ <= rep.InferEnergyUJ {
		t.Error("600-sample training should out-cost one inference")
	}
	if rep.ModelKiB <= 0 {
		t.Error("model memory missing")
	}
	// Training ops scale linearly in the training-set size (modulo the
	// constant finalize term).
	w2 := w
	w2.Train = 1200
	rep2 := Cost(w2, Default45nm())
	fin := classifierCfg().FinalizeModel()
	growth := float64(rep2.TrainOps.CounterUpdates-fin.CounterUpdates) /
		float64(rep.TrainOps.CounterUpdates-fin.CounterUpdates)
	if math.Abs(growth-2) > 1e-9 {
		t.Errorf("training counter growth %v, want 2", growth)
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("d=0 did not panic")
		}
	}()
	PipelineConfig{D: 0}.EncodeSample()
}

func TestEmbeddedBudgetSanity(t *testing.T) {
	// The paper's claim: most embedded systems can afford HDC inference.
	// One full gesture inference at d=10000 must stay under a millijoule
	// under the default energy table — sanity-check the model's scale.
	cfg := classifierCfg()
	infer := cfg.EncodeSample().Add(cfg.InferSample())
	uj := Default45nm().Energy(infer)
	if uj > 1000 {
		t.Errorf("one inference costs %v µJ — implausibly high for the model", uj)
	}
	if uj <= 0 {
		t.Error("inference energy not positive")
	}
}
