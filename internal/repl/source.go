package repl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hdcirc/internal/httpapi"
	"hdcirc/internal/serve"
	"hdcirc/internal/wal"
)

// SourceConfig parameterizes the primary-side shipper.
type SourceConfig struct {
	// Server is the durable serving core whose log is shipped (required;
	// replication needs Config.WAL).
	Server *serve.Server
	// Heartbeat is the idle cadence: a session with nothing to ship emits
	// a heartbeat frame this often so followers keep lag observable and
	// connections stay verified live. <= 0 selects 2s.
	Heartbeat time.Duration
	// ChunkRecords bounds how many records one disk read buffers per
	// session before frames start flowing. <= 0 selects 64.
	ChunkRecords int
}

func (c *SourceConfig) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return 2 * time.Second
}

func (c *SourceConfig) chunkRecords() int {
	if c.ChunkRecords > 0 {
		return c.ChunkRecords
	}
	return 64
}

// Source is the primary side of WAL shipping: an
// httpapi.ReplicationSource whose sessions serve catch-up from the log,
// re-seed from checkpoints past compaction, and tail live applies via
// the server's coalesced apply notification. Constructing a Source
// registers replication stats on the server. Safe for concurrent
// sessions.
type Source struct {
	cfg SourceConfig

	mu       sync.Mutex
	sessions map[int]*session
	nextID   int
}

// NewSource validates the config and attaches the shipper to the server.
// Attaching a shipper declares the server the tier's primary: its stats
// report role "primary" from here on (a follower cannot host one —
// chained replication is not supported).
func NewSource(cfg SourceConfig) (*Source, error) {
	if cfg.Server == nil {
		return nil, errors.New("repl: SourceConfig.Server is required")
	}
	if _, durable := cfg.Server.WALOldestSeq(); !durable {
		return nil, errors.New("repl: replication needs a durable server (serve.Config.WAL)")
	}
	if cfg.Server.Role() == serve.RoleFollower {
		return nil, errors.New("repl: cannot ship from a follower (chained replication is not supported)")
	}
	if err := cfg.Server.Promote(); err != nil {
		return nil, err
	}
	s := &Source{cfg: cfg, sessions: make(map[int]*session)}
	cfg.Server.SetReplicationStatsFunc(s.stats)
	return s, nil
}

// stats summarizes the shipper for serve.Stats: live session count, the
// slowest connected follower's acked position, and the head's distance
// from it.
func (s *Source) stats() serve.ReplicationStats {
	head := s.cfg.Server.Snapshot().Version()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := serve.ReplicationStats{ConnectedFollowers: len(s.sessions)}
	first := true
	for _, sess := range s.sessions {
		if a := sess.acked.Load(); first || a < st.LastAckedSeq {
			st.LastAckedSeq = a
			first = false
		}
	}
	if !first && head > st.LastAckedSeq {
		st.FollowerLagSeq = head - st.LastAckedSeq
	}
	return st
}

// Stream opens one follower session. A from_seq ahead of the primary's
// history is rejected with stale_seq — that follower has records this
// primary never wrote (a divergence, e.g. after a botched failover), and
// only a checkpoint re-seed (reconnect with from_seq 0) can make it a
// replica of THIS history.
func (s *Source) Stream(ctx context.Context, req httpapi.ReplicateRequest) (httpapi.ReplicationStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	from := req.FromSeq
	if from == 0 {
		from = 1
	}
	if head := s.cfg.Server.Snapshot().Version(); from > head+1 {
		return nil, httpapi.Errorf(httpapi.CodeStaleSeq,
			"from_seq %d is ahead of primary head %d: follower diverged, re-seed from checkpoint", from, head)
	}
	sess := &session{src: s, from: from}
	sess.notify, sess.cancelSub = s.cfg.Server.SubscribeApplied()
	s.mu.Lock()
	sess.id = s.nextID
	s.nextID++
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	return sess, nil
}

// errChunkFull stops a log read once a session's chunk is buffered.
var errChunkFull = errors.New("repl: chunk full")

// session is one follower's shipping state. Next runs on a single
// goroutine (the handler's write loop); Ack is called concurrently from
// the handler's body reader.
type session struct {
	src       *Source
	id        int
	from      uint64 // next sequence to ship
	queue     []httpapi.ReplicateFrame
	notify    <-chan struct{}
	cancelSub func()
	acked     atomic.Uint64
	closed    atomic.Bool
}

// Ack records the follower's applied position (monotonic).
func (se *session) Ack(seq uint64) {
	for {
		cur := se.acked.Load()
		if seq <= cur || se.acked.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Close releases the session; idempotent.
func (se *session) Close() error {
	if se.closed.CompareAndSwap(false, true) {
		se.cancelSub()
		se.src.mu.Lock()
		delete(se.src.sessions, se.id)
		se.src.mu.Unlock()
	}
	return nil
}

// Next blocks until the next frame is due: a buffered record, a fresh
// chunk read from the log, a checkpoint seed when compaction passed the
// session's cursor, or a heartbeat when the primary is idle.
func (se *session) Next(ctx context.Context) (httpapi.ReplicateFrame, error) {
	for {
		if len(se.queue) > 0 {
			f := se.queue[0]
			se.queue = se.queue[1:]
			return f, nil
		}
		if err := ctx.Err(); err != nil {
			return httpapi.ReplicateFrame{}, err
		}
		srv := se.src.cfg.Server
		head := srv.Snapshot().Version()
		n := 0
		next, err := srv.WALStreamFrom(se.from, func(seq uint64, payload []byte) error {
			// payload is a fresh per-record allocation (wal contract), so
			// retaining it frame-side is safe.
			se.queue = append(se.queue, httpapi.ReplicateFrame{
				Seq:     seq,
				Payload: payload,
				CRC:     wal.RecordCRC(seq, payload),
				HeadSeq: head,
			})
			if n++; n >= se.src.cfg.chunkRecords() {
				return errChunkFull
			}
			return nil
		})
		switch {
		case err == nil:
			se.from = next
		case errors.Is(err, errChunkFull):
			se.from = se.queue[len(se.queue)-1].Seq + 1
		case errors.Is(err, wal.ErrCompacted):
			// The suffix below the cursor is gone — seed the follower with
			// the primary's exact current state and resume past it. The
			// queue holds nothing here (compaction is checked before the
			// first record), so the seed cannot jump over buffered records.
			version, image, eerr := srv.EncodeCheckpoint()
			if eerr != nil {
				return httpapi.ReplicateFrame{}, httpapi.Errorf(httpapi.CodeStaleSeq,
					"follower needs a checkpoint seed but encoding failed: %v", eerr)
			}
			se.from = version + 1
			return httpapi.ReplicateFrame{Checkpoint: image, CheckpointVersion: version, HeadSeq: version}, nil
		default:
			return httpapi.ReplicateFrame{}, fmt.Errorf("repl: reading log from %d: %w", se.from, err)
		}
		if len(se.queue) > 0 {
			continue
		}
		// Fully caught up: sleep until an apply lands (coalesced — the
		// next loop re-reads the log for everything new) or the heartbeat
		// cadence expires.
		idle := time.NewTimer(se.src.cfg.heartbeat())
		select {
		case <-ctx.Done():
			idle.Stop()
			return httpapi.ReplicateFrame{}, ctx.Err()
		case <-se.notify:
			idle.Stop()
		case <-idle.C:
			return httpapi.ReplicateFrame{Heartbeat: true, HeadSeq: srv.Snapshot().Version()}, nil
		}
	}
}
