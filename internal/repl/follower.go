package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hdcirc/internal/httpapi"
	"hdcirc/internal/serve"
	"hdcirc/internal/wal"
)

// FollowerConfig parameterizes the replica-side applier.
type FollowerConfig struct {
	// Server is the local serving core replicated state applies into
	// (required). StartFollower puts it in follower mode.
	Server *serve.Server
	// PrimaryURL is the primary's base URL, e.g. "http://10.0.0.1:8080"
	// (required). A not_primary redirect from the tier updates it.
	PrimaryURL string
	// Client issues the long-lived replicate-stream request. nil selects
	// a default client with no overall timeout (the stream is unbounded
	// by design; cancellation comes from the follower's context).
	Client *http.Client
	// ReconnectMin/ReconnectMax bound the exponential backoff between
	// connection attempts. <= 0 select 100ms and 5s.
	ReconnectMin, ReconnectMax time.Duration
	// AckEvery is how many applied records may pass between progress
	// acks (idle heartbeats always ack). <= 0 selects 32.
	AckEvery int
	// AckInterval is the keepalive cadence: the follower re-sends its
	// position this often even with nothing new applied. Keepalives are
	// what make a dead connection observable on the WRITE side — a silent
	// request body never touches the socket, so a primary that vanished
	// (or answered with an early error and closed the connection) would
	// otherwise leave the stream blocked forever. <= 0 selects 500ms.
	AckInterval time.Duration
}

func (c *FollowerConfig) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

func (c *FollowerConfig) reconnectMin() time.Duration {
	if c.ReconnectMin > 0 {
		return c.ReconnectMin
	}
	return 100 * time.Millisecond
}

func (c *FollowerConfig) reconnectMax() time.Duration {
	if c.ReconnectMax > 0 {
		return c.ReconnectMax
	}
	return 5 * time.Second
}

func (c *FollowerConfig) ackEvery() int {
	if c.AckEvery > 0 {
		return c.AckEvery
	}
	return 32
}

func (c *FollowerConfig) ackInterval() time.Duration {
	if c.AckInterval > 0 {
		return c.AckInterval
	}
	return 500 * time.Millisecond
}

// Follower is the replica side of WAL shipping: one background loop that
// keeps a duplex replicate-stream connection to the primary alive,
// verifies and applies every shipped record through the deterministic
// apply path, installs in-band checkpoint seeds, and acks progress. Its
// resume cursor is the server's applied version, so crashes and
// reconnects are idempotent by construction.
type Follower struct {
	cfg    FollowerConfig
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	head      atomic.Uint64 // primary's newest seq, from frame HeadSeq
	connected atomic.Bool
	reseed    atomic.Bool // next connect requests a checkpoint seed

	mu      sync.Mutex
	primary string
	lastErr error
}

// StartFollower puts the server in follower mode and starts the
// replication loop under ctx. Stop it with Close (or by cancelling ctx);
// flip the node into a primary with Promote.
func StartFollower(ctx context.Context, cfg FollowerConfig) (*Follower, error) {
	if cfg.Server == nil {
		return nil, errors.New("repl: FollowerConfig.Server is required")
	}
	if cfg.PrimaryURL == "" {
		return nil, errors.New("repl: FollowerConfig.PrimaryURL is required")
	}
	if err := cfg.Server.BecomeFollower(cfg.PrimaryURL); err != nil {
		return nil, err
	}
	fctx, cancel := context.WithCancel(ctx)
	f := &Follower{cfg: cfg, ctx: fctx, cancel: cancel, primary: cfg.PrimaryURL}
	cfg.Server.SetReplicationStatsFunc(f.stats)
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// stats summarizes the applier for serve.Stats: the follower's own
// applied version is its acked position, and lag is the primary head's
// distance from it.
func (f *Follower) stats() serve.ReplicationStats {
	applied := f.cfg.Server.Snapshot().Version()
	st := serve.ReplicationStats{LastAckedSeq: applied}
	if head := f.head.Load(); head > applied {
		st.FollowerLagSeq = head - applied
	}
	return st
}

// Lag reports how many sequence numbers the follower trails the newest
// primary head it has heard of.
func (f *Follower) Lag() uint64 { return f.stats().FollowerLagSeq }

// Connected reports whether a replicate stream is currently live.
func (f *Follower) Connected() bool { return f.connected.Load() }

// PrimaryURL reports the primary currently followed (redirects update it).
func (f *Follower) PrimaryURL() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.primary
}

// LastError reports the most recent connection/apply failure, nil while
// the stream is healthy.
func (f *Follower) LastError() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

func (f *Follower) setErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// Close stops the replication loop and waits for it to exit. The server
// stays a follower (still read-only); Promote instead to take writes.
func (f *Follower) Close() error {
	f.cancel()
	f.wg.Wait()
	return nil
}

// Promote stops the replication loop and flips the server into a primary
// — the promote-on-demand hook. The caller must make sure the old
// primary is dead or demoted first.
func (f *Follower) Promote() error {
	f.cancel()
	f.wg.Wait()
	return f.cfg.Server.Promote()
}

// run reconnects forever with capped exponential backoff; any stream
// that shipped at least one frame resets the backoff.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.cfg.reconnectMin()
	for f.ctx.Err() == nil {
		progressed, err := f.streamOnce()
		f.connected.Store(false)
		if f.ctx.Err() != nil {
			return
		}
		if err != nil {
			f.setErr(err)
		}
		if err != nil && !progressed {
			// The attempt died before a single frame. When the endpoint
			// refused the stream with an early error response, the duplex
			// transport can surface that as a bare connection fault with
			// the envelope (and any not_primary redirect hint) lost —
			// recover it with a plain-body probe.
			f.probeRefusal()
		}
		if progressed {
			backoff = f.cfg.reconnectMin()
		}
		if !f.sleep(backoff) {
			return
		}
		if backoff *= 2; backoff > f.cfg.reconnectMax() {
			backoff = f.cfg.reconnectMax()
		}
	}
}

// sleep waits d unless the follower is closed first.
func (f *Follower) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// streamOnce runs one replicate-stream connection to completion:
// request, duplex ack writer, frame apply loop. progressed reports
// whether any frame arrived (backoff reset).
func (f *Follower) streamOnce() (progressed bool, err error) {
	from := f.cfg.Server.Snapshot().Version() + 1
	if f.reseed.CompareAndSwap(true, false) {
		from = 0 // force a checkpoint seed
	}

	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(f.ctx, http.MethodPost, f.PrimaryURL()+"/v1/replicate:stream", pr)
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	// Expect: 100-continue is load-bearing, not an optimization. The
	// server only reads the request body once it has accepted the stream,
	// so when it refuses early (not_primary, unavailable) the refusal
	// arrives as the final response with the body never sent. Without it,
	// the server blocks draining the never-ending ack body before it can
	// finish the error response while the client waits for that response
	// before closing the body — a mutual deadlock.
	req.Header.Set("Expect", "100-continue")

	// The request body is the follower's half of the duplex stream: the
	// position announcement, then acks as applies land. The writer owns
	// the pipe and ALWAYS closes it on exit — that is what unblocks the
	// transport's body copy so Do can return on cancellation, and what
	// lets the transport observe the body's end when the attempt is over.
	acks := make(chan uint64, 16)
	attemptDone := make(chan struct{})
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		defer pw.CloseWithError(errors.New("repl: stream attempt ended"))
		enc := json.NewEncoder(pw)
		if err := enc.Encode(httpapi.ReplicateRequest{FromSeq: from}); err != nil {
			return
		}
		keepalive := time.NewTicker(f.cfg.ackInterval())
		defer keepalive.Stop()
		for {
			select {
			case <-f.ctx.Done():
				return
			case <-attemptDone:
				return
			case seq := <-acks:
				if enc.Encode(httpapi.ReplicateAck{AckedSeq: seq}) != nil {
					return
				}
			case <-keepalive.C:
				// Re-announce the applied position even while idle: the
				// write is what detects a dead or half-closed connection
				// (see FollowerConfig.AckInterval).
				if enc.Encode(httpapi.ReplicateAck{AckedSeq: f.cfg.Server.Snapshot().Version()}) != nil {
					return
				}
			}
		}
	}()
	defer func() {
		close(attemptDone)
		wwg.Wait()
	}()

	resp, err := f.cfg.client().Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, f.handleWireError(decodeEnvelope(resp.Body, resp.StatusCode))
	}

	ack := func(seq uint64) {
		select {
		case acks <- seq:
		default: // acks are progress hints; dropping one is harmless
		}
	}

	dec := json.NewDecoder(resp.Body)
	sinceAck := 0
	for {
		var frame httpapi.ReplicateFrame
		if err := dec.Decode(&frame); err != nil {
			if errors.Is(err, io.EOF) || f.ctx.Err() != nil {
				return progressed, nil // primary closed the stream; reconnect
			}
			return progressed, fmt.Errorf("repl: reading stream: %w", err)
		}
		progressed = true
		f.connected.Store(true)
		f.setErr(nil)
		if frame.HeadSeq > f.head.Load() {
			f.head.Store(frame.HeadSeq)
		}
		switch {
		case frame.Error != nil:
			return progressed, f.handleWireError(frame.Error)
		case len(frame.Checkpoint) > 0:
			if err := f.cfg.Server.InstallCheckpoint(f.ctx, frame.Checkpoint); err != nil {
				return progressed, fmt.Errorf("repl: installing checkpoint seed at %d: %w", frame.CheckpointVersion, err)
			}
			ack(f.cfg.Server.Snapshot().Version())
			sinceAck = 0
		case frame.Seq > 0:
			// End-to-end integrity: the echoed CRC is the one the
			// primary's disk stores for this record.
			if wal.RecordCRC(frame.Seq, frame.Payload) != frame.CRC {
				return progressed, fmt.Errorf("repl: record %d failed CRC verification", frame.Seq)
			}
			if err := f.applyRecord(frame.Seq, frame.Payload); err != nil {
				return progressed, err
			}
			if sinceAck++; sinceAck >= f.cfg.ackEvery() {
				ack(f.cfg.Server.Snapshot().Version())
				sinceAck = 0
			}
		case frame.Heartbeat:
			ack(f.cfg.Server.Snapshot().Version())
			sinceAck = 0
		}
	}
}

// applyRecord applies one shipped record, tolerating exact duplicates (a
// record at or below the applied version after a reconnect race) and
// treating gaps as stream faults.
func (f *Follower) applyRecord(seq uint64, payload []byte) error {
	err := f.cfg.Server.ApplyReplicated(f.ctx, seq, payload)
	if errors.Is(err, serve.ErrReplSeq) && seq <= f.cfg.Server.Snapshot().Version() {
		return nil // already applied; idempotent skip
	}
	if err != nil {
		return fmt.Errorf("repl: applying record %d: %w", seq, err)
	}
	return nil
}

// probeRefusal re-requests the replicate endpoint with a complete
// (non-pipe) body so an early error response is reliably readable, and
// feeds any structured refusal through handleWireError. Best-effort: a
// healthy primary just gets a stream that is immediately abandoned, and
// probe failures are ignored (the reconnect loop is already backing off).
func (f *Follower) probeRefusal() {
	ctx, cancel := context.WithTimeout(f.ctx, 2*time.Second)
	defer cancel()
	var body bytes.Buffer
	line := httpapi.ReplicateRequest{FromSeq: f.cfg.Server.Snapshot().Version() + 1}
	if json.NewEncoder(&body).Encode(line) != nil {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.PrimaryURL()+"/v1/replicate:stream", bytes.NewReader(body.Bytes()))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := f.cfg.client().Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_ = f.handleWireError(decodeEnvelope(resp.Body, resp.StatusCode))
	}
}

// handleWireError reacts to a structured protocol error: not_primary
// re-points the follower (and its server's advertised primary) at the
// hinted URL, stale_seq forces a checkpoint re-seed on the next connect,
// anything else just reconnects with backoff.
func (f *Follower) handleWireError(e *httpapi.Error) error {
	switch e.Code {
	case httpapi.CodeNotPrimary:
		if e.PrimaryURL != "" {
			f.mu.Lock()
			f.primary = e.PrimaryURL
			f.mu.Unlock()
			// Keep the server's redirect hint accurate for its own clients.
			if err := f.cfg.Server.BecomeFollower(e.PrimaryURL); err != nil {
				return err
			}
		}
	case httpapi.CodeStaleSeq:
		f.reseed.Store(true)
	}
	return e
}

// decodeEnvelope parses a non-2xx response body into its structured
// error, synthesizing one when the body is not an envelope.
func decodeEnvelope(r io.Reader, status int) *httpapi.Error {
	var env struct {
		Error *httpapi.Error `json:"error"`
	}
	if err := json.NewDecoder(r).Decode(&env); err != nil || env.Error == nil {
		return httpapi.Errorf(httpapi.CodeInternal, "primary answered HTTP %d without a protocol envelope", status)
	}
	return env.Error
}
