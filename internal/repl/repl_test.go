package repl

// End-to-end replication tests over the real wire: a primary behind the
// v1 handler (httptest) shipping to followers through Source +
// StartFollower. The invariant every test closes with is the tier's whole
// promise: a converged follower is BIT-identical to the primary at the
// same version. The chaos test at the bottom is the property test the CI
// race leg runs: random kill points on both halves of the stream plus
// random checkpoint cadence must never break that invariant.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/embed"
	"hdcirc/internal/httpapi"
	"hdcirc/internal/rng"
	"hdcirc/internal/sdm"
	"hdcirc/internal/serve"
)

const testDim = 384

// durableConfig mirrors the serve test fixture: every write kind enabled
// so shipped batches exercise the full apply surface.
func durableConfig(dir string) serve.Config {
	cfg := serve.Config{Dim: testDim, Classes: 7, Shards: 3, Workers: 2, Seed: 1234}
	labelSet := core.Config{Kind: core.KindLevel, M: 16, D: cfg.Dim}.Build(rng.Sub(cfg.Seed, "test/labels"))
	cfg.Labels = embed.NewScalarEncoder(labelSet, 0, 15)
	mc := sdm.Config{Dim: cfg.Dim, Locations: 300, Radius: cfg.Dim/2 - cfg.Dim/16, Seed: 5}
	cfg.Cleanup = &mc
	cfg.WAL = &serve.WALConfig{Dir: dir}
	return cfg
}

// randomBatch draws one batch mixing every write kind.
func randomBatch(cfg serve.Config, src *rng.Stream) serve.Batch {
	var b serve.Batch
	for i, n := 0, int(src.Uint64()%4); i < n; i++ {
		b.Train = append(b.Train, serve.Sample{Class: int(src.Uint64() % uint64(cfg.Classes)), HV: bitvec.Random(cfg.Dim, src)})
	}
	if src.Uint64()%3 == 0 {
		b.Pairs = append(b.Pairs, serve.Pair{X: bitvec.Random(cfg.Dim, src), Value: float64(src.Uint64() % 16)})
	}
	for i, n := 0, int(src.Uint64()%3); i < n; i++ {
		b.Items = append(b.Items, fmt.Sprintf("item/%d", src.Uint64()%50))
	}
	if src.Uint64()%3 == 0 {
		w := bitvec.Random(cfg.Dim, src)
		b.Writes = append(b.Writes, serve.MemWrite{Address: w, Data: w})
	}
	return b
}

func snapshotBytes(t *testing.T, s *serve.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireIdentical asserts the follower is bit-identical to the primary:
// same version, same serialized snapshot stream.
func requireIdentical(t *testing.T, follower, primary *serve.Server) {
	t.Helper()
	fs, ps := follower.Snapshot(), primary.Snapshot()
	if fs.Version() != ps.Version() {
		t.Fatalf("follower at version %d, primary at %d", fs.Version(), ps.Version())
	}
	if !bytes.Equal(snapshotBytes(t, fs), snapshotBytes(t, ps)) {
		t.Fatalf("snapshot streams differ at version %d", fs.Version())
	}
}

func mustOpen(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	s, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// startPrimary stands up a durable primary behind the real v1 handler
// with replication enabled.
func startPrimary(t *testing.T, srv *serve.Server) *httptest.Server {
	t.Helper()
	src, err := NewSource(SourceConfig{Server: srv, Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := httpapi.NewScalarRecordEncoder(httpapi.ScalarRecordConfig{Dim: testDim, Fields: 2, Lo: 0, Hi: 1, Levels: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	api, err := httpapi.New(httpapi.Config{Server: srv, Encoder: enc, Replication: src})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api)
	t.Cleanup(ts.Close)
	return ts
}

func startFollower(t *testing.T, ctx context.Context, srv *serve.Server, primaryURL string) *Follower {
	t.Helper()
	f, err := StartFollower(ctx, FollowerConfig{
		Server:       srv,
		PrimaryURL:   primaryURL,
		ReconnectMin: 10 * time.Millisecond,
		ReconnectMax: 100 * time.Millisecond,
		AckEvery:     1,
		AckInterval:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// waitVersion polls until srv's applied version reaches want.
func waitVersion(t *testing.T, srv *serve.Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for srv.Snapshot().Version() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out at version %d waiting for %d", srv.Snapshot().Version(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestReplicationCatchUpAndLiveTail(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	psrv := mustOpen(t, durableConfig(t.TempDir()))
	defer psrv.Close()
	ts := startPrimary(t, psrv)

	// Catch-up: the primary has history before the follower ever connects.
	src := rng.Sub(42, "repl/e2e")
	cfg := durableConfig("")
	for i := 0; i < 30; i++ {
		if _, err := psrv.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}
	fsrv := mustOpen(t, durableConfig(t.TempDir()))
	defer fsrv.Close()
	f := startFollower(t, ctx, fsrv, ts.URL)
	defer f.Close()
	waitVersion(t, fsrv, psrv.Snapshot().Version())
	requireIdentical(t, fsrv, psrv)

	// Live tail: new primary writes flow through the open stream.
	for i := 0; i < 20; i++ {
		if _, err := psrv.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}
	waitVersion(t, fsrv, psrv.Snapshot().Version())
	requireIdentical(t, fsrv, psrv)

	// The follower is read-only for clients, and both sides surface the
	// tier in stats.
	if _, err := fsrv.ApplyBatch(randomBatch(cfg, src)); !errors.Is(err, serve.ErrNotPrimary) {
		t.Fatalf("follower accepted a client write: %v", err)
	}
	fst := fsrv.Stats()
	if fst.Role != "follower" || fst.Replication == nil {
		t.Fatalf("follower stats missing replication block: %+v", fst)
	}
	if got := fst.Replication.LastAckedSeq; got != fsrv.Snapshot().Version() {
		t.Fatalf("follower last_acked_seq = %d, want %d", got, fsrv.Snapshot().Version())
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		pst := psrv.Stats()
		if pst.Role != "primary" {
			t.Fatalf("shipping primary reports role %q, want primary", pst.Role)
		}
		if pst.Replication != nil && pst.Replication.ConnectedFollowers == 1 &&
			pst.Replication.LastAckedSeq == psrv.Snapshot().Version() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never saw the follower fully acked: %+v", pst.Replication)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFollowerSeedsFromCheckpointPastCompaction(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := durableConfig(t.TempDir())
	cfg.WAL.SegmentBytes = 1024
	cfg.WAL.KeepCheckpoints = 1
	psrv := mustOpen(t, cfg)
	defer psrv.Close()
	ts := startPrimary(t, psrv)

	src := rng.Sub(7, "repl/seed")
	for i := 0; i < 25; i++ {
		if _, err := psrv.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := psrv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := psrv.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}
	if oldest, ok := psrv.WALOldestSeq(); !ok || oldest <= 1 {
		t.Fatalf("primary log not compacted (oldest %d); the test needs a seed path", oldest)
	}

	// A brand-new follower starts below the compaction horizon, so its
	// catch-up MUST begin with an in-band checkpoint seed.
	fdir := t.TempDir()
	fsrv := mustOpen(t, durableConfig(fdir))
	defer fsrv.Close()
	f := startFollower(t, ctx, fsrv, ts.URL)
	defer f.Close()
	waitVersion(t, fsrv, psrv.Snapshot().Version())
	requireIdentical(t, fsrv, psrv)

	// And the seeded follower's own durability works: restart from its own
	// directory recovers the same state and rejoins the live tail.
	f.Close()
	if err := fsrv.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, durableConfig(fdir))
	defer re.Close()
	requireIdentical(t, re, psrv)
	f2 := startFollower(t, ctx, re, ts.URL)
	defer f2.Close()
	if _, err := psrv.ApplyBatch(randomBatch(cfg, src)); err != nil {
		t.Fatal(err)
	}
	waitVersion(t, re, psrv.Snapshot().Version())
	requireIdentical(t, re, psrv)
}

func TestFollowerFollowsNotPrimaryRedirect(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	psrv := mustOpen(t, durableConfig(t.TempDir()))
	defer psrv.Close()
	ts := startPrimary(t, psrv)

	// A second node that is itself a follower of the real primary: its
	// replicate endpoint must answer not_primary with the redirect hint.
	osrv := mustOpen(t, durableConfig(t.TempDir()))
	defer osrv.Close()
	if err := osrv.BecomeFollower(ts.URL); err != nil {
		t.Fatal(err)
	}
	enc, err := httpapi.NewScalarRecordEncoder(httpapi.ScalarRecordConfig{Dim: testDim, Fields: 2, Lo: 0, Hi: 1, Levels: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	oapi, err := httpapi.New(httpapi.Config{Server: osrv, Encoder: enc})
	if err != nil {
		t.Fatal(err)
	}
	ots := httptest.NewServer(oapi)
	t.Cleanup(ots.Close)

	src := rng.Sub(11, "repl/redirect")
	cfg := durableConfig("")
	for i := 0; i < 5; i++ {
		if _, err := psrv.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}

	// Point the follower at the WRONG node; it must adopt the hint and
	// converge against the real primary.
	fsrv := mustOpen(t, durableConfig(t.TempDir()))
	defer fsrv.Close()
	f := startFollower(t, ctx, fsrv, ots.URL)
	defer f.Close()
	waitVersion(t, fsrv, psrv.Snapshot().Version())
	requireIdentical(t, fsrv, psrv)
	if got := f.PrimaryURL(); got != ts.URL {
		t.Fatalf("follower primary = %q, want adopted %q", got, ts.URL)
	}
}

// TestReplicationChaosKillPoints is the tier's property test: a follower
// that is killed at random points (its own process via Close+reopen, or
// the primary-side stream via connection kills) under a random checkpoint
// cadence must always reconverge to a bit-identical snapshot.
func TestReplicationChaosKillPoints(t *testing.T) {
	seeds := []uint64{3, 17, 91}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			src := rng.Sub(seed, "repl/chaos")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			pcfg := durableConfig(t.TempDir())
			pcfg.WAL.SegmentBytes = 2048
			pcfg.WAL.KeepCheckpoints = 1
			// Random automatic checkpoint cadence; -1 disables (only
			// explicit checkpoints below).
			switch src.Uint64() % 3 {
			case 0:
				pcfg.WAL.CheckpointEvery = -1
			default:
				pcfg.WAL.CheckpointEvery = 3 + int(src.Uint64()%12)
			}
			psrv := mustOpen(t, pcfg)
			defer psrv.Close()
			ts := startPrimary(t, psrv)

			fdir := t.TempDir()
			fsrv := mustOpen(t, durableConfig(fdir))
			f := startFollower(t, ctx, fsrv, ts.URL)
			defer func() { f.Close(); fsrv.Close() }()

			for round := 0; round < 10; round++ {
				for i, n := 0, 1+int(src.Uint64()%8); i < n; i++ {
					if _, err := psrv.ApplyBatch(randomBatch(pcfg, src)); err != nil {
						t.Fatal(err)
					}
				}
				if src.Uint64()%4 == 0 {
					if _, err := psrv.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				// The kill point: nothing, a primary-side stream kill, or a
				// follower crash (close + reopen from its own directory, the
				// real recovery path).
				switch src.Uint64() % 3 {
				case 0:
				case 1:
					ts.CloseClientConnections()
				case 2:
					f.Close()
					if err := fsrv.Close(); err != nil {
						t.Fatal(err)
					}
					fsrv = mustOpen(t, durableConfig(fdir))
					f = startFollower(t, ctx, fsrv, ts.URL)
				}
				waitVersion(t, fsrv, psrv.Snapshot().Version())
				requireIdentical(t, fsrv, psrv)
			}
		})
	}
}

// The observability contract of Stats schema v2: a follower behind the
// primary's head surfaces nonzero lag through its server's stats, and the
// lag drains to zero once it converges.
func TestFollowerLagReportsAndConverges(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Phase 1: a stub primary that only announces head_seq=7 and ships
	// nothing — the follower cannot catch up, so its stats must pin the
	// lag at 7.
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(httpapi.ReplicateFrame{Heartbeat: true, HeadSeq: 7})
		w.(http.Flusher).Flush()
		// Hold the stream open, shipping nothing. Draining the ack body
		// (rather than waiting on the request context) is what lets the
		// server notice the follower hanging up and end the handler.
		io.Copy(io.Discard, r.Body)
	}))
	defer stub.Close()

	fsrv := mustOpen(t, durableConfig(t.TempDir()))
	defer fsrv.Close()
	f := startFollower(t, ctx, fsrv, stub.URL)
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := fsrv.Stats()
		if st.Role == "follower" && st.Replication != nil && st.Replication.FollowerLagSeq == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reported lag 7: %+v", st.Replication)
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.Close()

	// Phase 2: re-point the same follower server at a real primary that IS
	// at version 7 — the backlog applies and the reported lag converges to
	// zero.
	cfg := durableConfig("")
	psrv := mustOpen(t, durableConfig(t.TempDir()))
	defer psrv.Close()
	ts := startPrimary(t, psrv)
	src := rng.Sub(11, "repl/lag")
	for i := 0; i < 7; i++ {
		if _, err := psrv.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}
	f2 := startFollower(t, ctx, fsrv, ts.URL)
	defer f2.Close()
	waitVersion(t, fsrv, 7)
	deadline = time.Now().Add(15 * time.Second)
	for {
		st := fsrv.Stats()
		if st.Replication != nil && st.Replication.FollowerLagSeq == 0 && st.Replication.LastAckedSeq == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower lag never converged to zero: %+v", st.Replication)
		}
		time.Sleep(2 * time.Millisecond)
	}
	requireIdentical(t, fsrv, psrv)
}
