// Package repl is the replication engine of the distributed serving
// tier: WAL shipping from one primary to any number of followers, built
// entirely out of invariants the single-process layers already prove.
//
// The design rests on three facts:
//
//   - The write-ahead log is a totally ordered, seq-numbered batch
//     stream, and record seq == snapshot version (internal/wal,
//     internal/serve). Shipping the log IS shipping the state.
//   - Batch application is deterministic (fixed tie vectors,
//     single-writer ordering), so a follower that applies the primary's
//     verbatim records through the same validate-then-apply path is
//     bit-identical to the primary at the same version — the property
//     crash recovery already depends on, reused across processes.
//   - Checkpoints are portable byte-exact state, so a follower whose
//     position the primary has compacted past is seeded with a
//     checkpoint image in-band and then continues on the suffix —
//     exactly the recovery path serve.Open runs locally.
//
// # Shipping (Source, primary side)
//
// Source implements httpapi.ReplicationSource. Each follower session
// reads catch-up records straight from the primary's log
// (serve.WALStreamFrom) and then tails live applies through a COALESCED
// apply notification (serve.SubscribeApplied): the signal only says
// "versions advanced", and the session re-reads everything new from
// disk. The disk is therefore the only buffer — a slow follower costs
// the primary one open connection and zero queued memory, and can never
// force records to be dropped. If compaction overtakes a session between
// reads, the session transparently re-seeds the follower with a fresh
// checkpoint image.
//
// # Applying (Follower, replica side)
//
// Follower maintains one long-lived duplex NDJSON connection to the
// primary's /v1/replicate:stream endpoint, reconnecting with capped
// exponential backoff forever (the follower's applied version is its
// resume cursor, so reconnects are idempotent). Each shipped record's
// CRC echo is verified against the on-disk record checksum before the
// record is applied and appended to the follower's OWN log — a restarted
// follower recovers locally (checkpoint + suffix) and rejoins the stream
// where it left off. Acks flow back on the same connection for primary-
// side lag accounting; heartbeats keep lag observable while idle. A
// not_primary redirect re-points the connection (and the follower's
// advertised primary); a stale_seq error forces a checkpoint re-seed.
//
// Both halves surface their state through serve.Stats's replication
// block: role, connected_followers, follower_lag_seq, last_acked_seq.
package repl
