// Package analysis is a self-contained, stdlib-only re-implementation of
// the golang.org/x/tools/go/analysis core: Analyzer, Pass and Diagnostic,
// plus a module-aware package loader (Load) and a driver (Run). It exists
// because this repository's correctness rests on cross-cutting conventions
// — the vfs fault seam, immutable published snapshots, errors.Is sentinel
// matching, context threading — that nothing but a machine check can hold
// through refactors, and the build environment vendors no external
// modules. The API deliberately mirrors go/analysis so the analyzers in
// the subpackages (vfsdiscipline, sentinelcmp, snapshotmut, atomicloadmut,
// ctxflow) would port to the real framework by changing one import line.
//
// The suite is exposed as the cmd/hdclint multichecker, which runs both
// standalone (hdclint ./...) and as a `go vet -vettool` backend.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name, prose documentation
// of the invariant it holds, and a Run function applied to one package at
// a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line. It must be a valid Go identifier.
	Name string

	// Doc states the invariant, why it exists, and what the fix is.
	// The first sentence is the summary shown by `hdclint help`.
	Doc string

	// Run applies the analyzer to one package. Findings are delivered
	// through pass.Report; the error return is for operational failures
	// (not findings).
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work: the parsed and
// type-checked package plus the Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position inside the pass's FileSet and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
