// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want expectations, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest on the stdlib only.
//
// Fixtures live under <testdata>/src/<pkgpath>/*.go. A line expecting a
// diagnostic carries a comment of the form
//
//	code() // want "regexp" "another regexp"
//
// where each quoted (or backquoted) regexp must match the message of one
// diagnostic reported on that line. Diagnostics without a matching
// expectation, and expectations without a matching diagnostic, both fail
// the test. Unlike `go vet` over the real tree, fixture _test.go files ARE
// loaded — that is how an analyzer's test-file allowlist is proven to
// hold.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hdcirc/internal/analysis"
)

// Run loads each fixture package below testdata/src, applies the analyzer
// to it, and reports every mismatch between diagnostics and // want
// expectations as a test error.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	fset := token.NewFileSet()
	imp, err := newFixtureImporter(fset, srcRoot)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, path := range pkgPaths {
		fix, err := imp.load(path)
		if err != nil {
			t.Fatalf("analysistest: loading fixture %q: %v", path, err)
		}
		checkPackage(t, a, fset, fix)
	}
}

func checkPackage(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, fix *fixture) {
	t.Helper()
	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     fix.files,
		Pkg:       fix.pkg,
		TypesInfo: fix.info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: analyzer %s failed on %s: %v", a.Name, fix.path, err)
	}

	want := map[string][]*expectation{} // "file:line" → expectations
	for _, f := range fix.files {
		for key, exps := range parseExpectations(t, fset, f) {
			want[key] = append(want[key], exps...)
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, exp := range want[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, exps := range want {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, exp.re)
			}
		}
	}
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// parseExpectations extracts // want comments, keyed by "file:line" of the
// comment's position.
func parseExpectations(t *testing.T, fset *token.FileSet, f *ast.File) map[string][]*expectation {
	t.Helper()
	out := map[string][]*expectation{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			rest := strings.TrimSpace(text)
			for rest != "" {
				q, err := strconv.QuotedPrefix(rest)
				if err != nil {
					// Trailing prose after at least one pattern is fine.
					if len(out[key]) > 0 {
						break
					}
					t.Fatalf("%s: malformed // want comment %q: %v", key, c.Text, err)
				}
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: malformed // want pattern %q: %v", key, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad // want regexp %q: %v", key, pat, err)
				}
				out[key] = append(out[key], &expectation{re: re})
				rest = strings.TrimSpace(rest[len(q):])
			}
		}
	}
	return out
}

// fixture is one loaded fixture package.
type fixture struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// fixtureImporter type-checks fixture packages from testdata/src, letting
// them import one another by relative path, and resolves every other
// import (stdlib) through build-cache export data.
type fixtureImporter struct {
	fset     *token.FileSet
	srcRoot  string
	fallback types.ImporterFrom
	cache    map[string]*fixture
}

func newFixtureImporter(fset *token.FileSet, srcRoot string) (*fixtureImporter, error) {
	ext, err := externalImports(srcRoot)
	if err != nil {
		return nil, err
	}
	exports, err := analysis.ExportFiles(".", ext)
	if err != nil {
		return nil, err
	}
	return &fixtureImporter{
		fset:     fset,
		srcRoot:  srcRoot,
		fallback: analysis.NewImporter(fset, exports),
		cache:    map[string]*fixture{},
	}, nil
}

// externalImports scans every fixture file and returns the import paths
// that do not resolve to fixture packages — the set needing export data.
func externalImports(srcRoot string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(srcRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), p, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("parsing %s: %v", p, err)
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if st, err := os.Stat(filepath.Join(srcRoot, path)); err != nil || !st.IsDir() {
				seen[path] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(fi.srcRoot, path)); err == nil && st.IsDir() {
		fix, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return fix.pkg, nil
	}
	return fi.fallback.ImportFrom(path, fi.srcRoot, 0)
}

// load parses and type-checks one fixture package (all .go files in its
// directory, _test.go included).
func (fi *fixtureImporter) load(path string) (*fixture, error) {
	if fix, ok := fi.cache[path]; ok {
		return fix, nil
	}
	dir := filepath.Join(fi.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q has no .go files", path)
	}
	pkg, info, err := analysis.Check(path, fi.fset, files, fi)
	if err != nil {
		return nil, err
	}
	fix := &fixture{path: path, files: files, pkg: pkg, info: info}
	fi.cache[path] = fix
	return fix, nil
}
