package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Name      string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -json=<fields>` with the given arguments in dir and
// decodes the newline-separated JSON stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	full := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles,Export,Standard,Module,Error"}, args...)
	cmd := exec.Command("go", full...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// NewImporter returns a types importer that resolves every import path
// through compiler export data, looked up in the given path→file map —
// the same mechanism `go vet` hands its analysis tools. The map typically
// comes from `go list -export -deps`.
func NewImporter(fset *token.FileSet, exportFiles map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exportFiles[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// ExportFiles resolves the given import paths (plus all their
// dependencies) to build-cache export-data files, compiling them if
// needed. It is how fixture tests obtain stdlib type information without
// an installed toolchain package tree. An empty path list yields an empty
// map without invoking the go command.
func ExportFiles(dir string, paths []string) (map[string]string, error) {
	out := map[string]string{}
	if len(paths) == 0 {
		return out, nil
	}
	pkgs, err := goList(dir, append([]string{"-export", "-deps"}, paths...)...)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// NewTypesInfo allocates the full set of type-information maps the
// analyzers rely on (uses, defs, selections, expression types).
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Check parses nothing and type-checks the given parsed files as one
// package, resolving imports through imp. It returns the package, its
// type info, and the first type error encountered (with all errors
// joined).
func Check(pkgPath string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	var tcErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	info := NewTypesInfo()
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if len(tcErrs) > 0 {
		return pkg, info, fmt.Errorf("type-checking %s: %w", pkgPath, errors.Join(tcErrs...))
	}
	if err != nil {
		return pkg, info, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return pkg, info, nil
}

// Load lists the packages matching patterns (relative to dir), parses and
// type-checks each one, and returns them ready for analysis. Imports —
// stdlib and intra-module alike — are resolved through build-cache export
// data, so loading N packages costs N type-checks, not N·deps. Test files
// are not loaded, matching `go vet` unit semantics. Any listing, parse or
// type error fails the load: the linters only run on code that compiles.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	universe, err := goList(dir, append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exportFiles := make(map[string]string, len(universe))
	for _, p := range universe {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := NewImporter(fset, exportFiles)
	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", filepath.Join(t.Dir, name), err)
			}
			files = append(files, f)
		}
		pkg, info, err := Check(t.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			PkgPath:   t.ImportPath,
			Name:      t.Name,
			Fset:      fset,
			Syntax:    files,
			Types:     pkg,
			TypesInfo: info,
		})
	}
	return out, nil
}
