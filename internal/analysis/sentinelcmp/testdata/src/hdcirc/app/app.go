// Fixture: a consumer package — cross-package comparisons against module
// sentinels are reported; io.EOF-style external contracts are not.
package app

import (
	"errors"
	"io"

	"ext/lib"
	"hdcirc/serve"
)

func consume(err error) int {
	if err == serve.ErrDegraded { // want `serve\.ErrDegraded compared with ==`
		return 1
	}
	if err == io.EOF { // no finding: stdlib identity contract
		return 2
	}
	if err == lib.ErrOther { // no finding: other module's sentinel
		return 3
	}
	if errors.Is(err, serve.ErrWALFailed) { // no finding
		return 4
	}
	return 0
}
