// Fixture: a module package (path prefix hdcirc/) declaring sentinels and
// comparing them — identity comparisons must be reported, errors.Is must
// not.
package serve

import "errors"

var (
	ErrDegraded  = errors.New("serve: degraded")
	ErrWALFailed = errors.New("serve: wal failed")
	ErrClosed    = errors.New("serve: closed")
)

// notASentinel is package-level but not named Err*.
var notASentinel = errors.New("serve: misc")

func classify(err error) int {
	if err == ErrDegraded { // want `serve\.ErrDegraded compared with ==`
		return 1
	}
	if err != ErrWALFailed { // want `serve\.ErrWALFailed compared with !=`
		return 2
	}
	if ErrClosed == err { // want `serve\.ErrClosed compared with ==`
		return 3
	}
	switch err {
	case ErrClosed: // want `serve\.ErrClosed compared with switch case`
		return 4
	case nil:
		return 5
	}
	if errors.Is(err, ErrDegraded) { // no finding: errors.Is walks the chain
		return 6
	}
	if err == notASentinel { // no finding: not an Err* sentinel
		return 7
	}
	if err == nil { // no finding
		return 8
	}
	return 0
}
