// Fixture: a package OUTSIDE the hdcirc module prefix — its sentinels
// keep whatever contract their module documents.
package lib

import "errors"

// ErrOther is another module's sentinel; comparing against it elsewhere
// is that module's documented business.
var ErrOther = errors.New("lib: other")
