// Package sentinelcmp forbids comparing this module's sentinel errors
// with == or !=.
//
// Since PR 6 a single failure deliberately wraps TWO sentinels into one
// chain — a degraded-mode write fails with an error that is both
// ErrDegraded and ErrWALFailed, with the original syscall errno still
// matchable underneath. `err == serve.ErrDegraded` is therefore never
// true for real errors and silently misclassifies them; only errors.Is
// walks the chain. The check applies to every sentinel declared in this
// module (package-level `var ErrX` of error type). Comparisons against
// OTHER modules' sentinels — io.EOF above all, whose contract is
// documented identity — stay allowed.
package sentinelcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hdcirc/internal/analysis"
)

// Analyzer is the sentinelcmp checker.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelcmp",
	Doc: "forbid ==/!= against this module's sentinel errors: wrapped chains " +
		"(ErrDegraded+ErrWALFailed) make identity comparison silently wrong; " +
		"use errors.Is",
	Run: run,
}

// localPrefixes identify the module whose sentinels must be matched with
// errors.Is. Sentinels from other modules (io.EOF, sql.ErrNoRows, …) keep
// their documented identity contracts.
var localPrefixes = []string{"hdcirc"}

func isLocalPkg(pkg, current *types.Package) bool {
	if pkg == current {
		return true
	}
	for _, pre := range localPrefixes {
		if pkg.Path() == pre || strings.HasPrefix(pkg.Path(), pre+"/") {
			return true
		}
	}
	return false
}

// sentinelObj resolves expr to a package-level error variable named
// Err*, or nil.
func sentinelObj(info *types.Info, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() { // not package-level
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !types.Implements(v.Type(), errorInterface()) {
		return nil
	}
	return v
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

func run(pass *analysis.Pass) error {
	report := func(pos token.Pos, v *types.Var, op string) {
		pass.Reportf(pos,
			"%s compared with %s; module sentinels may be wrapped (even two in one chain) — use errors.Is(err, %s)",
			qualified(v), op, qualified(v))
	}
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			for _, side := range []ast.Expr{n.X, n.Y} {
				if v := sentinelObj(pass.TypesInfo, side); v != nil && isLocalPkg(v.Pkg(), pass.Pkg) {
					report(n.Pos(), v, n.Op.String())
				}
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[n.Tag]
			if !ok || !types.Implements(tv.Type, errorInterface()) {
				return true
			}
			for _, stmt := range n.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if v := sentinelObj(pass.TypesInfo, e); v != nil && isLocalPkg(v.Pkg(), pass.Pkg) {
						report(e.Pos(), v, "switch case")
					}
				}
			}
		}
		return true
	})
	return nil
}

func qualified(v *types.Var) string {
	return v.Pkg().Name() + "." + v.Name()
}
