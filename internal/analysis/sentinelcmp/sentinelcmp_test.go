package sentinelcmp_test

import (
	"testing"

	"hdcirc/internal/analysis/analysistest"
	"hdcirc/internal/analysis/sentinelcmp"
)

func TestSentinelCmp(t *testing.T) {
	analysistest.Run(t, "testdata", sentinelcmp.Analyzer,
		"hdcirc/serve", "hdcirc/app", "ext/lib")
}
