package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WalkStack traverses every node of every file in depth-first order,
// calling fn with the node and the stack of its ancestors (outermost
// first; stack[len-1] == n). fn returning false prunes the subtree.
func WalkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				// Children are pruned, but ast.Inspect still delivers the
				// pop event for n, so keep it on the stack.
				return false
			}
			return true
		})
	}
}

// EnclosingFunc returns the nearest named function declaration on the
// stack — function literals are attributed to the declaration they occur
// in — or nil at file scope.
func EnclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// IsTestFile reports whether the position lies in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// CalleeFunc resolves a call expression to the concrete function or
// method it invokes, or nil for calls through function values, built-ins
// and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// ReceiverNamed returns the named type of a method's receiver (pointer
// receivers are dereferenced), or nil for plain functions.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return NamedOf(sig.Recv().Type())
}

// Deref unwraps one level of pointer type.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedOf returns the named type of t after stripping pointers and type
// aliases, or nil.
func NamedOf(t types.Type) *types.Named {
	t = types.Unalias(Deref(types.Unalias(t)))
	n, _ := t.(*types.Named)
	return n
}
