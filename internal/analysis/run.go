package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one diagnostic attributed to the analyzer and package that
// produced it.
type Finding struct {
	Analyzer *Analyzer
	Pkg      *Package
	Diagnostic
}

// Position resolves the finding's position against its package's FileSet.
func (f Finding) Position() token.Position {
	return f.Pkg.Fset.Position(f.Pos)
}

// String renders the finding the way `go vet` does: file:line:col:
// message, with the analyzer name appended for attribution.
func (f Finding) String() string {
	p := f.Position()
	return fmt.Sprintf("%s:%d:%d: %s (%s)", p.Filename, p.Line, p.Column, f.Message, f.Analyzer.Name)
}

// Run applies every analyzer to every package and returns all findings
// sorted by file, line, column and analyzer name — a deterministic order
// regardless of analyzer registration or package iteration order. The
// error return reports an analyzer's operational failure, not findings.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			p := pkg
			pass.Report = func(d Diagnostic) {
				out = append(out, Finding{Analyzer: a, Pkg: p, Diagnostic: d})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position(), out[j].Position()
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer.Name < out[j].Analyzer.Name
	})
	return out, nil
}
