package ctxflow_test

import (
	"testing"

	"hdcirc/internal/analysis/analysistest"
	"hdcirc/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "lib", "mainprog")
}
