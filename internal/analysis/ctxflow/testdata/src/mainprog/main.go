// Fixture: package main owns its process lifecycle — Background is the
// correct root there, and blocking is its own business.
package main

import "context"

func main() {
	ctx := context.Background() // no finding: package main
	run(ctx)
}

func run(ctx context.Context) {}

func WaitForever(ch chan int) int { return <-ch } // no finding: package main
