// Fixture: _test.go files may use Background freely.
package lib

import "context"

func testHarness() error {
	return Work(context.Background()) // no finding: test file
}
