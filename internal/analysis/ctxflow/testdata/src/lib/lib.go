// Fixture: a library package — Background/TODO and un-bounded exported
// blocking APIs are reported; the pairing idiom, context-carrying stream
// types, non-blocking selects and unexported helpers are not.
package lib

import (
	"context"
	"time"
)

func Work(ctx context.Context) error { return nil }

func Bad() error {
	return Work(context.Background()) // want `context\.Background in library code`
}

func BadTODO() error {
	return Work(context.TODO()) // want `context\.TODO in library code`
}

// Apply → ApplyContext is the stdlib pairing idiom: the one sanctioned
// Background.
func Apply() error                           { return ApplyContext(context.Background()) }
func ApplyContext(ctx context.Context) error { return nil }

// BadIndirect launders Background through a variable first — not the
// pairing shape, still a severed chain.
func BadIndirect() error {
	ctx := context.Background() // want `context\.Background in library code`
	return BadIndirectContext(ctx)
}
func BadIndirectContext(ctx context.Context) error { return nil }

type Q struct{ ch chan int }

func (q *Q) Pop() int { return <-q.ch } // want `exported Pop blocks \(channel receive\)`

func (q *Q) Push(v int) { q.ch <- v } // want `exported Push blocks \(channel send\)`

func (q *Q) PopContext(ctx context.Context) int {
	select { // no finding: context-bounded
	case v := <-q.ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func (q *Q) TryPop() (int, bool) {
	select { // no finding: select with default never blocks
	case v := <-q.ch:
		return v, true
	default:
		return 0, false
	}
}

func (q *Q) Gather() int {
	n := 0
	for range q.ch { // want `exported Gather blocks \(range over channel\)`
		n++
	}
	return n
}

func (q *Q) Close() error { // no finding: io.Closer's signature is contract
	<-q.ch
	return nil
}

func Nap() {
	time.Sleep(time.Millisecond) // want `exported Nap blocks \(time\.Sleep\)`
}

// Stream carries the context it was opened with; its blocking methods are
// bounded by construction.
type Stream struct {
	ctx context.Context
	ch  chan int
}

func (s *Stream) Recv() int { return <-s.ch } // no finding: receiver carries ctx

// Wrapped reaches a context through a nested struct — still bounded.
type Wrapped struct{ s *Stream }

func (w *Wrapped) Recv() int { return <-w.s.ch } // no finding: nested ctx carrier

func drain(ch chan int) int { return <-ch } // no finding: unexported

type hidden struct{ ch chan int }

func (h *hidden) Wait() int { return <-h.ch } // no finding: unexported receiver type

func Launch(ch chan int) {
	go func() { <-ch }() // no finding: blocking inside a launched goroutine
}
