// Package ctxflow enforces context threading through the library's
// blocking paths.
//
// PR 6 made the request lifecycle deadline-bounded end to end: the server
// admits writes under a context, the client SDK layers WithCallTimeout
// under the caller's context, and cancellation is the only way to abandon
// a stuck path without leaking it. One context.Background() in the middle
// of that chain silently severs it — the coalescer bug fixed in this PR
// dropped every caller's deadline on the floor exactly that way. Two
// checks:
//
//  1. context.Background() and context.TODO() are forbidden in library
//     code (any non-main package, non-test file). The one structural
//     exception is the stdlib's own pairing idiom: inside a function
//     named X, passing Background directly to XContext — e.g. ApplyBatch
//     delegating to ApplyBatchContext — is the documented "caller opted
//     out of deadlines" entry point and stays allowed.
//
//  2. An exported function or method of a library package that blocks —
//     a channel send/receive, a select without default, a range over a
//     channel, or time.Sleep, directly in its body — must either accept
//     a context.Context parameter or be a method of a stream-like type
//     that carries the context it was opened with (a struct reachable
//     from the receiver holds a context.Context field). Close() error
//     methods are exempt: io.Closer's signature is fixed by contract.
//
// Blocking inside a function literal (goroutines the method launches) is
// the launcher's business, not the API's, and is not flagged.
package ctxflow

import (
	"go/ast"
	"go/types"

	"hdcirc/internal/analysis"
)

// Analyzer is the ctxflow checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background/TODO in library code (except the X → " +
		"XContext pairing idiom) and exported blocking APIs that neither take " +
		"a context nor belong to a context-carrying stream type",
	Run: run,
}

func isContextType(t types.Type) bool {
	n := analysis.NamedOf(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// hasContextParam reports whether any parameter (including variadic) is a
// context.Context.
func hasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// carriesContext reports whether t (a receiver type) transitively holds a
// context.Context struct field within depth levels — the stream-object
// pattern, where the type is constructed under a context and every
// blocking method is bounded by it.
func carriesContext(t types.Type, depth int) bool {
	if depth == 0 {
		return false
	}
	st, ok := analysis.Deref(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isContextType(ft) {
			return true
		}
		if carriesContext(ft, depth-1) {
			return true
		}
	}
	return false
}

// calleeName returns the bare name a call is spelled with (x.Foo → Foo).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// pairedDelegation reports whether the Background/TODO call at
// stack[len-1] is an argument of a call to <enclosing>Context — the
// allowed X → XContext pairing.
func pairedDelegation(stack []ast.Node) bool {
	fd := analysis.EnclosingFunc(stack)
	if fd == nil || len(stack) < 2 {
		return false
	}
	parent, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	return calleeName(parent) == fd.Name.Name+"Context"
}

// exportedAPI reports whether fd is part of the package's exported API:
// an exported function, or an exported method on an exported named
// receiver type.
func exportedAPI(info *types.Info, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	def, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := analysis.ReceiverNamed(def)
	return recv != nil && recv.Obj().Exported()
}

// isCloser reports the io.Closer shape: Close() error — a signature fixed
// by stdlib contract that cannot grow a context parameter.
func isCloser(fd *ast.FuncDecl, sig *types.Signature) bool {
	return fd.Name.Name == "Close" && fd.Recv != nil &&
		sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		sig.Results().At(0).Type().String() == "error"
}

// blockingOp finds the first directly blocking operation in a function
// body — pruning function literals — and describes it. ok is false for a
// body with no direct blocking.
func blockingOp(pass *analysis.Pass, body *ast.BlockStmt) (pos ast.Node, what string, ok bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pos, what, ok = n, "channel send", true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pos, what, ok = n, "channel receive", true
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, isComm := c.(*ast.CommClause); isComm && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				pos, what, ok = n, "select without default", true
			}
			return false // comm clauses of a non-blocking select are fine
		case *ast.RangeStmt:
			if tv, found := pass.TypesInfo.Types[n.X]; found {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pos, what, ok = n, "range over channel", true
				}
			}
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, n)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				pos, what, ok = n, "time.Sleep", true
			}
		}
		return !ok
	})
	return pos, what, ok
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}

	// Check 1: Background/TODO in library code.
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if name := fn.Name(); name != "Background" && name != "TODO" {
			return true
		}
		if analysis.IsTestFile(pass.Fset, call.Pos()) || pairedDelegation(stack) {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s in library code severs the caller's cancellation/deadline chain; "+
				"thread a context parameter (or delegate from X to XContext)", fn.Name())
		return true
	})

	// Check 2: exported blocking APIs without a context.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedAPI(pass.TypesInfo, fd) {
				continue
			}
			if analysis.IsTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			def, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := def.Type().(*types.Signature)
			if hasContextParam(sig) || isCloser(fd, sig) {
				continue
			}
			if sig.Recv() != nil && carriesContext(sig.Recv().Type(), 3) {
				continue
			}
			if op, what, blocked := blockingOp(pass, fd.Body); blocked {
				pass.Reportf(op.Pos(),
					"exported %s blocks (%s) but takes no context.Context and its receiver carries none; "+
						"callers cannot bound or cancel it", fd.Name.Name, what)
			}
		}
	}
	return nil
}
