// Fixture: a package named serve with Snapshot/shardView types — writes
// are legal only inside buildSnapshotLocked.
package serve

type shardView struct {
	classes []int
	proto   []string
}

type Snapshot struct {
	version uint64
	shards  []shardView
}

type Server struct {
	cur     *Snapshot
	version uint64
}

// buildSnapshotLocked is the designated builder: every write here is
// pre-publication and allowed.
func (s *Server) buildSnapshotLocked() *Snapshot {
	snap := &Snapshot{version: s.version}
	snap.shards = make([]shardView, 2) // no finding: builder
	view := shardView{}
	view.classes = append(view.classes, 1) // no finding: builder
	view.proto = []string{"p"}             // no finding: builder
	snap.shards[0] = view                  // no finding: builder
	snap.version++                         // no finding: builder
	func() {
		// Function literals inside the builder are attributed to it —
		// buildSnapshotLocked fans writes out across a worker pool.
		snap.shards[1] = view // no finding: builder (via func literal)
	}()
	return snap
}

func (s *Server) leak(snap *Snapshot) {
	snap.version = 7              // want `write to Snapshot\.version outside builder\(s\) buildSnapshotLocked`
	snap.version++                // want `write to Snapshot\.version outside`
	snap.shards[0].proto = nil    // want `write to shardView\.proto outside`
	snap.shards[0].classes[0] = 9 // want `write to shardView\.classes outside`
	*snap = Snapshot{}            // want `write to Snapshot outside`
	v := &snap.shards[1]
	v.proto = append(v.proto, "q") // want `write to shardView\.proto outside`
	_ = snap.version               // no finding: reads are the point
}
