// Fixture: the classifier's published prototype view — classView may be
// populated in finalizeLocked and ReadClassifier only.
package model

type classView struct {
	protos []string
	ix     *int
}

type Classifier struct {
	cur *classView
}

func (c *Classifier) finalizeLocked() *classView {
	view := &classView{}
	view.protos = []string{"a"} // no finding: designated builder
	view.ix = new(int)          // no finding: designated builder
	return view
}

func ReadClassifier(data []string) *classView {
	view := &classView{protos: data}
	view.ix = new(int) // no finding: designated builder
	return view
}

func (c *Classifier) tamper(view *classView) {
	view.protos = nil                      // want `write to classView\.protos outside builder\(s\) ReadClassifier/finalizeLocked`
	view.protos = append(view.protos, "z") // want `write to classView\.protos outside`
	*view.ix = 3                           // want `write to classView\.ix outside` — pointee of a published field is still shared state
	view.ix = nil                          // want `write to classView\.ix outside`
}
