// Fixture: same type NAMES in an unrelated package — out of scope, the
// protection is keyed on (package name, type name).
package other

type Snapshot struct {
	version uint64
}

func touch(s *Snapshot) {
	s.version = 1 // no finding: not the serve package
	s.version++   // no finding
}
