package snapshotmut_test

import (
	"testing"

	"hdcirc/internal/analysis/analysistest"
	"hdcirc/internal/analysis/snapshotmut"
)

func TestSnapshotMut(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotmut.Analyzer,
		"serve", "model", "other")
}
