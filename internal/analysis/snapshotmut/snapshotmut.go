// Package snapshotmut forbids mutating published snapshot state outside
// its designated builder functions.
//
// The entire lock-free read plane rests on one invariant: a
// serve.Snapshot (and each shardView inside it), and a model.classView,
// are frozen the moment they are published through an atomic.Pointer
// store. Readers at any fan-in dereference them with no lock; a single
// post-publication field write is a data race that -race only catches if
// a test happens to overlap the exact pair of accesses. This analyzer
// makes the freeze structural: assignments (including compound assigns,
// ++/--, element writes and whole-struct overwrites through a pointer)
// to fields of those types are allowed only inside the functions that
// build the value before publication — serve.buildSnapshotLocked for
// Snapshot/shardView, model.finalizeLocked and model.ReadClassifier for
// classView. Everywhere else they are reported.
//
// Known limitation: the check is syntactic over selector chains, so a
// write through an intermediate alias (v := snap.shards[0]; v.proto = …)
// on a non-pointer copy is not flagged — but such a write mutates the
// copy, not the snapshot, so the invariant still holds.
package snapshotmut

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"hdcirc/internal/analysis"
)

// Analyzer is the snapshotmut checker.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotmut",
	Doc: "forbid writes to serve.Snapshot / serve.shardView / model.classView " +
		"fields outside their designated builders; published snapshots are " +
		"immutable and readers hold no lock",
	Run: run,
}

// target is one protected type and the builder functions allowed to
// populate it before publication.
type target struct {
	pkgName  string
	typeName string
	builders map[string]bool
}

var targets = []target{
	{"serve", "Snapshot", map[string]bool{"buildSnapshotLocked": true}},
	{"serve", "shardView", map[string]bool{"buildSnapshotLocked": true}},
	{"model", "classView", map[string]bool{"finalizeLocked": true, "ReadClassifier": true}},
}

// match returns the protected target for a named type, or nil.
func match(n *types.Named) *target {
	if n == nil || n.Obj().Pkg() == nil {
		return nil
	}
	for i := range targets {
		t := &targets[i]
		if n.Obj().Name() == t.typeName && n.Obj().Pkg().Name() == t.pkgName {
			return t
		}
	}
	return nil
}

// protectedWrite walks an assignment target's selector/index/deref chain
// and returns the protected target it mutates, if any, with the position
// to report.
func protectedWrite(info *types.Info, expr ast.Expr) (*target, string) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.StarExpr:
			// *p = Snapshot{…} — whole-struct overwrite through a pointer.
			if tv, ok := info.Types[e.X]; ok {
				if t := match(analysis.NamedOf(tv.Type)); t != nil {
					return t, t.typeName
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.TypeAssertExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if t := match(analysis.NamedOf(sel.Recv())); t != nil {
					return t, t.typeName + "." + e.Sel.Name
				}
			}
			expr = e.X
		default:
			return nil, ""
		}
	}
}

func run(pass *analysis.Pass) error {
	check := func(expr ast.Expr, stack []ast.Node) {
		t, what := protectedWrite(pass.TypesInfo, expr)
		if t == nil {
			return
		}
		if fd := analysis.EnclosingFunc(stack); fd != nil && t.builders[fd.Name.Name] {
			return
		}
		pass.Reportf(expr.Pos(),
			"write to %s outside builder(s) %s: published snapshot state is immutable (lock-free readers)",
			what, builderNames(t))
	}
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs, stack)
			}
		case *ast.IncDecStmt:
			check(n.X, stack)
		}
		return true
	})
	return nil
}

func builderNames(t *target) string {
	names := make([]string, 0, len(t.builders))
	for n := range t.builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}
