package hdclint_test

import (
	"strings"
	"testing"

	"hdcirc/internal/analysis"
	"hdcirc/internal/analysis/hdclint"
)

// TestRegisteredAnalyzerSet pins the multichecker's contents: exactly the
// five invariant analyzers, in a stable order, each well-formed. A
// refactor that drops or renames one fails here before CI quietly stops
// checking an invariant.
func TestRegisteredAnalyzerSet(t *testing.T) {
	want := []string{"vfsdiscipline", "sentinelcmp", "snapshotmut", "atomicloadmut", "ctxflow"}
	got := hdclint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("registered %d analyzers, want %d", len(got), len(want))
	}
	seen := map[string]bool{}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestRepoIsClean runs the full suite over the repository itself — the
// same check CI's lint job performs. Every convention violation must be
// fixed in code, never suppressed, so the expected finding count is
// exactly zero.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go command; skipped in -short")
	}
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing the module", len(pkgs))
	}
	findings, err := analysis.Run(hdclint.Analyzers(), pkgs)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	var b strings.Builder
	for _, f := range findings {
		b.WriteString("\n  " + f.String())
	}
	if len(findings) > 0 {
		t.Errorf("hdclint found %d violation(s) in the repo — fix them in code (no suppressions):%s",
			len(findings), b.String())
	}
}
