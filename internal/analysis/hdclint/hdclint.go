// Package hdclint registers the repository's invariant analyzers — the
// single source of truth for what the cmd/hdclint multichecker runs, both
// standalone and as a `go vet -vettool` backend. Adding an analyzer means
// adding it here; the registry meta-test pins the expected set so a
// refactor cannot silently drop one.
package hdclint

import (
	"hdcirc/internal/analysis"
	"hdcirc/internal/analysis/atomicloadmut"
	"hdcirc/internal/analysis/ctxflow"
	"hdcirc/internal/analysis/sentinelcmp"
	"hdcirc/internal/analysis/snapshotmut"
	"hdcirc/internal/analysis/vfsdiscipline"
)

// Analyzers returns the full registered suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		vfsdiscipline.Analyzer,
		sentinelcmp.Analyzer,
		snapshotmut.Analyzer,
		atomicloadmut.Analyzer,
		ctxflow.Analyzer,
	}
}
