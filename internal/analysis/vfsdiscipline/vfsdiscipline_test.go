package vfsdiscipline_test

import (
	"testing"

	"hdcirc/internal/analysis/analysistest"
	"hdcirc/internal/analysis/vfsdiscipline"
)

func TestVFSDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", vfsdiscipline.Analyzer,
		"internal/wal", "internal/serve", "internal/vfs", "other")
}
