// Package vfsdiscipline forbids direct os file-system calls in the
// durability packages.
//
// PR 6 routed every file operation in internal/wal and the internal/serve
// checkpoint writer through the internal/vfs seam so that FaultFS can
// inject ENOSPC, EIO, torn writes and failed fsyncs underneath them. A
// direct os.OpenFile / os.Rename / (*os.File).Sync in those packages
// silently escapes the seam: the chaos tests keep passing while the code
// path they were supposed to cover goes dark. This analyzer makes the
// seam load-bearing: inside internal/wal, internal/serve, internal/repl
// (whose followers replay shipped records through the same durable apply
// path) and internal/cluster (whose manifest save is an atomic
// tmp+fsync+rename sequence), the os functions that vfs.FS mirrors are
// compile-time-forbidden. internal/vfs
// itself (the seam's OS passthrough), cmd/ binaries and _test.go files
// are out of scope by construction.
package vfsdiscipline

import (
	"go/ast"
	"strings"

	"hdcirc/internal/analysis"
)

// Analyzer is the vfsdiscipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "vfsdiscipline",
	Doc: "forbid direct os file I/O in internal/wal, internal/serve, internal/repl and internal/cluster; " +
		"all file operations there must go through the internal/vfs fault seam " +
		"so storage fault injection keeps covering them",
	Run: run,
}

// scopedSuffixes are the import-path suffixes the discipline applies to.
var scopedSuffixes = []string{"internal/wal", "internal/serve", "internal/repl", "internal/cluster"}

// forbiddenFuncs maps os package functions to the vfs.FS replacement that
// keeps the operation inside the fault seam.
var forbiddenFuncs = map[string]string{
	"Open":       "FS.Open",
	"OpenFile":   "FS.OpenFile",
	"Create":     "FS.OpenFile",
	"CreateTemp": "FS.OpenFile",
	"ReadFile":   "FS.Open",
	"WriteFile":  "FS.OpenFile",
	"Mkdir":      "FS.MkdirAll",
	"MkdirAll":   "FS.MkdirAll",
	"Rename":     "FS.Rename",
	"Remove":     "FS.Remove",
	"RemoveAll":  "FS.Remove",
	"Truncate":   "FS.Truncate",
	"Stat":       "FS.Stat",
	"ReadDir":    "FS.ReadDir",
}

// forbiddenFileMethods are *os.File methods with a vfs.File equivalent.
var forbiddenFileMethods = map[string]string{
	"Sync":     "File.Sync",
	"Truncate": "FS.Truncate",
}

func inScope(pkgPath string) bool {
	for _, suf := range scopedSuffixes {
		if pkgPath == suf || strings.HasSuffix(pkgPath, "/"+suf) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		if analysis.IsTestFile(pass.Fset, call.Pos()) {
			return true
		}
		if recv := analysis.ReceiverNamed(fn); recv != nil {
			if recv.Obj().Name() == "File" {
				if repl, bad := forbiddenFileMethods[fn.Name()]; bad {
					pass.Reportf(call.Pos(),
						"(*os.File).%s bypasses the internal/vfs fault seam; use vfs.%s", fn.Name(), repl)
				}
			}
			return true
		}
		if repl, bad := forbiddenFuncs[fn.Name()]; bad {
			pass.Reportf(call.Pos(),
				"direct os.%s bypasses the internal/vfs fault seam; use vfs.%s", fn.Name(), repl)
		}
		return true
	})
	return nil
}
