// Fixture: the seam implementation itself (import-path suffix
// internal/vfs) is the one place direct os calls are the point.
package vfs

import "os"

func open(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0o644) // no finding: vfs is the passthrough
}

func remove(path string) error {
	return os.Remove(path) // no finding
}
