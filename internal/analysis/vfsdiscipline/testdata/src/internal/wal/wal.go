// Fixture: a durability package (import-path suffix internal/wal) where
// direct os file I/O must be reported and seam-routed I/O must not.
package wal

import "os"

// File and FS model the vfs seam: methods on these interfaces are the
// sanctioned way to touch the file system.
type File interface {
	Sync() error
	Close() error
}

type FS interface {
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	Rename(oldPath, newPath string) error
}

func rotate(fs FS) error {
	f, err := os.OpenFile("seg", os.O_CREATE|os.O_WRONLY, 0o644) // want `direct os\.OpenFile bypasses the internal/vfs fault seam`
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil { // want `\(\*os\.File\)\.Sync bypasses the internal/vfs fault seam`
		return err
	}
	if err := os.Rename("seg", "seg.1"); err != nil { // want `direct os\.Rename bypasses`
		return err
	}
	if err := os.Remove("seg.corrupt"); err != nil { // want `direct os\.Remove bypasses`
		return err
	}
	if _, err := os.Stat("seg.1"); os.IsNotExist(err) { // want `direct os\.Stat bypasses`
		return err
	}
	return nil
}

// throughSeam exercises the allowed path: vfs-style interface calls and
// os helpers without a seam equivalent stay silent.
func throughSeam(fs FS) error {
	g, err := fs.OpenFile("seg", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := g.Sync(); err != nil { // interface method, not (*os.File).Sync
		return err
	}
	if err := fs.Rename("seg", "seg.1"); err != nil {
		return err
	}
	if os.IsNotExist(err) { // predicate helpers are not file I/O
		return nil
	}
	return g.Close()
}
