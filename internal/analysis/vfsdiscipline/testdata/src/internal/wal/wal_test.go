// Fixture: _test.go files in a scoped package are allowlisted — tests may
// arrange real files directly.
package wal

import "os"

func helperForTests() error {
	f, err := os.Create("fixture") // no finding: test file
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil { // no finding: test file
		return err
	}
	return os.Remove("fixture") // no finding: test file
}
