// Fixture: the checkpoint writer (import-path suffix internal/serve) is
// in scope too.
package serve

import "os"

func writeCheckpoint(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil { // want `direct os\.MkdirAll bypasses`
		return err
	}
	if err := os.WriteFile(dir+"/ckpt.tmp", nil, 0o644); err != nil { // want `direct os\.WriteFile bypasses`
		return err
	}
	return os.Rename(dir+"/ckpt.tmp", dir+"/ckpt") // want `direct os\.Rename bypasses`
}
