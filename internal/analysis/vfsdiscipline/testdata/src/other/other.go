// Fixture: packages outside internal/wal and internal/serve are out of
// scope entirely.
package other

import "os"

func scratch() error {
	f, err := os.Create("scratch") // no finding: out of scope
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync() // no finding: out of scope
}
