// Package atomicloadmut forbids writing through a pointer obtained from
// an atomic.Pointer.Load() (or atomic.Value.Load()) call expression.
//
// The serving layer's publication pattern is copy-on-write: build a fresh
// value, then Store it; Load hands out a shared, published value that
// concurrent readers are dereferencing with no lock. `p.Load().field = x`
// therefore mutates state that other goroutines are reading right now —
// a data race that types happily allow. This analyzer flags any
// assignment, ++/--, element write or whole-value overwrite whose target
// chain passes through a .Load() call on a sync/atomic pointer-like
// type. The fix is always the same: copy, mutate the copy, Store.
//
// Known limitation: only writes syntactically rooted in the Load() call
// are caught; laundering the pointer through a variable first
// (v := p.Load(); v.f = x) needs the type-based snapshotmut check, which
// covers the repo's published types by name.
package atomicloadmut

import (
	"go/ast"

	"hdcirc/internal/analysis"
)

// Analyzer is the atomicloadmut checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicloadmut",
	Doc: "forbid writes through atomic.Pointer.Load() results; published " +
		"values are shared with lock-free readers — copy, mutate, Store",
	Run: run,
}

// loadedTypes are the sync/atomic types whose Load results are published
// shared state.
var loadedTypes = map[string]bool{"Pointer": true, "Value": true}

// throughAtomicLoad reports whether the assignment target's chain is
// rooted in a .Load() call on a sync/atomic published container.
func throughAtomicLoad(pass *analysis.Pass, expr ast.Expr) (*ast.CallExpr, bool) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.TypeAssertExpr:
			expr = e.X
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(pass.TypesInfo, e)
			if fn == nil || fn.Name() != "Load" {
				return nil, false
			}
			recv := analysis.ReceiverNamed(fn)
			if recv == nil || recv.Obj().Pkg() == nil {
				return nil, false
			}
			if recv.Obj().Pkg().Path() == "sync/atomic" && loadedTypes[recv.Obj().Name()] {
				return e, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

func run(pass *analysis.Pass) error {
	check := func(expr ast.Expr) {
		if _, ok := throughAtomicLoad(pass, expr); ok {
			pass.Reportf(expr.Pos(),
				"write through atomic Load() mutates a published value shared with lock-free readers; copy it, mutate the copy, then Store")
		}
	}
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(n.X)
		}
		return true
	})
	return nil
}
