package atomicloadmut_test

import (
	"testing"

	"hdcirc/internal/analysis/analysistest"
	"hdcirc/internal/analysis/atomicloadmut"
)

func TestAtomicLoadMut(t *testing.T) {
	analysistest.Run(t, "testdata", atomicloadmut.Analyzer, "a")
}
