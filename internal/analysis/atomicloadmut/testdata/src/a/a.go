// Fixture: writes through atomic Load() results are reported; the
// copy-mutate-Store pattern and plain reads are not.
package a

import "sync/atomic"

type S struct {
	f  int
	sl []int
}

var p atomic.Pointer[S]
var v atomic.Value

func bad() {
	p.Load().f = 1      // want `write through atomic Load\(\)`
	p.Load().sl[0] = 2  // want `write through atomic Load\(\)`
	*p.Load() = S{}     // want `write through atomic Load\(\)`
	p.Load().f++        // want `write through atomic Load\(\)`
	v.Load().(*S).f = 3 // want `write through atomic Load\(\)`
}

func good() {
	cp := *p.Load() // no finding: copy…
	cp.f = 1        // …mutate the copy…
	p.Store(&cp)    // …Store the new value
	_ = p.Load().f  // no finding: read
	_ = len(p.Load().sl)
}

// ownLoad proves the check is type-keyed, not name-keyed.
type box struct{ f int }

func (b *box) Load() *box { return b }

func alias() {
	b := &box{}
	b.Load().f = 1 // no finding: not a sync/atomic Load
}
