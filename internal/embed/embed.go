// Package embed builds the paper's encoding functions φ: it maps atomic
// values (symbols, real numbers, angles) to basis-hypervectors and composes
// them into records, sequences and n-grams with the HDC operations. The
// scalar and circular encoders are invertible (Section 2.3 needs φℓ⁻¹ to
// decode regression labels): decoding finds the most similar basis vector
// and returns the value it quantizes.
package embed

import (
	"fmt"
	"math"
	"sync"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/index"
	"hdcirc/internal/rng"
)

// ---------------------------------------------------------------------------
// Item memory (symbols → random-hypervectors)
// ---------------------------------------------------------------------------

// ItemMemory maps symbolic identifiers to random-hypervectors, creating
// them lazily. Lookups of the same symbol always return the same vector.
// Creation order does not affect other symbols' vectors: each symbol's
// vector comes from a substream derived from the memory's seed and the
// symbol itself.
type ItemMemory struct {
	d    int
	seed uint64
	m    map[string]int // symbol → index into syms/vecs
	syms []string
	vecs []*bitvec.Vector

	ixCfg index.Config // sketch-index knobs; zero value = defaults, auto-enable past MinSize
	ixMu  sync.Mutex   // guards ix/ixLen rebuilds (Lookup stays safe with Lookup)
	ix    *index.Index // sketch index over vecs[:ixLen]; nil until first large Lookup
	ixLen int
}

// NewItemMemory returns an empty item memory over dimension d seeded by
// seed. Associative Lookup is automatically served through a bit-sampling
// sketch index (internal/index) once the memory grows past the default
// index threshold; SetIndexConfig tunes or disables that.
func NewItemMemory(d int, seed uint64) *ItemMemory {
	if d <= 0 {
		panic(fmt.Sprintf("embed: dimension must be positive, got %d", d))
	}
	return &ItemMemory{d: d, seed: seed, m: make(map[string]int)}
}

// SetIndexConfig replaces the memory's sketch-index configuration (see
// index.Config: signature width, candidate count, auto-enable threshold,
// Disabled for exact-only operation) and invalidates any index built so
// far. Call it before concurrent Lookups start.
func (im *ItemMemory) SetIndexConfig(cfg index.Config) {
	im.ixMu.Lock()
	im.ixCfg = cfg
	im.ix, im.ixLen = nil, 0
	im.ixMu.Unlock()
}

// Dim returns the hypervector dimension.
func (im *ItemMemory) Dim() int { return im.d }

// Len returns the number of symbols stored so far.
func (im *ItemMemory) Len() int { return len(im.m) }

// Get returns the hypervector for symbol, creating it deterministically on
// first use.
func (im *ItemMemory) Get(symbol string) *bitvec.Vector {
	if i, ok := im.m[symbol]; ok {
		return im.vecs[i]
	}
	v := bitvec.Random(im.d, rng.Sub(im.seed, "item/"+symbol))
	im.m[symbol] = len(im.syms)
	im.syms = append(im.syms, symbol)
	im.vecs = append(im.vecs, v)
	return v
}

// View returns the memory's symbols and their hypervectors in creation
// order, as capacity-capped slices sharing the memory's storage. The
// returned slices are a stable point-in-time view: later Gets only append
// past their length, never move or mutate the vectors already handed out —
// which is exactly what a snapshot-serving layer needs to publish an
// immutable item-memory generation without copying it. Callers must not
// modify the slices or the vectors.
func (im *ItemMemory) View() (symbols []string, vectors []*bitvec.Vector) {
	return im.syms[:len(im.syms):len(im.syms)], im.vecs[:len(im.vecs):len(im.vecs)]
}

// Lookup returns the stored symbol whose hypervector is most similar to q,
// with its similarity; ok is false when the memory is empty. This is the
// cleanup/associative-recall step of symbolic HDC.
//
// Below the configured index threshold (or with indexing disabled) the
// scan runs on the fused nearest-neighbor kernel over the creation-ordered
// vector list: no allocation, and exact similarity ties resolve
// deterministically to the earliest-created symbol. Past the threshold the
// bulk of the memory is served through the bit-sampling sketch index —
// sublinear candidate generation plus exact re-rank — with symbols interned
// since the last index build covered by an exact pruned scan, so a trickle
// of Gets between Lookups never forces a rebuild. The index is rebuilt
// (and the stale one discarded) once the un-indexed tail grows past a
// fraction of the indexed prefix. Lookup is safe for concurrent Lookup
// callers; it is not safe concurrently with Get (which was already true of
// the plain scan — Get mutates the backing slices).
func (im *ItemMemory) Lookup(q *bitvec.Vector) (symbol string, sim float64, ok bool) {
	n := len(im.vecs)
	if n == 0 {
		return "", -1, false
	}
	var idx, hd int
	if ix := im.lookupIndex(n); ix != nil {
		idx, hd = ix.Nearest(q)
		if tail := im.vecs[ix.Len():n:n]; len(tail) > 0 {
			// Exact scan of the recently interned tail; strict improvement
			// only, so the (lower-index) prefix winner keeps exact ties.
			if ti, th := bitvec.NearestPruned(q, tail, hd); ti >= 0 {
				idx, hd = ix.Len()+ti, th
			}
		}
	} else {
		idx, hd = bitvec.Nearest(q, im.vecs[:n:n])
	}
	return im.syms[idx], 1 - float64(hd)/float64(im.d), true
}

// lookupIndex returns the sketch index serving a Lookup over the first n
// vectors, or nil when the memory should stay on the exact linear scan.
// The index covers the prefix that existed at its build; it is invalidated
// and rebuilt here once Gets have appended more than index.MaxTail(ixLen)
// vectors past it.
func (im *ItemMemory) lookupIndex(n int) *index.Index {
	if !im.ixCfg.Enabled(n) {
		return nil
	}
	im.ixMu.Lock()
	defer im.ixMu.Unlock()
	if im.ix == nil || n-im.ixLen > index.MaxTail(im.ixLen) {
		im.ix = index.New(im.vecs[:n:n], im.ixCfg)
		im.ixLen = n
	}
	return im.ix
}

// ---------------------------------------------------------------------------
// Scalar (level) encoder
// ---------------------------------------------------------------------------

// ScalarEncoder quantizes the real interval [Lo, Hi] onto a basis set of m
// hypervectors: φL(x) = L_l with l = argmin |x − ξ_l| over the m evenly
// spaced points ξ. Values outside the interval clamp to the endpoints.
// Any core.Set works — level for linear correlation, random for the
// baseline, scatter for nonlinear quantization.
type ScalarEncoder struct {
	set    *core.Set
	lo, hi float64
}

// NewScalarEncoder wraps a basis set as an encoder of [lo, hi]. It panics
// when the interval is degenerate — hi <= lo or a non-finite bound — or
// the set has fewer than 1 vector. The bounds check matters: a zero-width
// interval makes Index divide by zero and a NaN/Inf bound makes it feed
// NaN into an int conversion, which Go leaves implementation-defined.
// (Note `hi <= lo` alone would NOT reject NaN bounds: every comparison
// with NaN is false.)
func NewScalarEncoder(set *core.Set, lo, hi float64) *ScalarEncoder {
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		panic(fmt.Sprintf("embed: non-finite interval bound [%v,%v]", lo, hi))
	}
	if hi <= lo {
		panic(fmt.Sprintf("embed: empty interval [%v,%v]", lo, hi))
	}
	if set.Len() < 1 {
		panic("embed: scalar encoder needs a non-empty basis set")
	}
	return &ScalarEncoder{set: set, lo: lo, hi: hi}
}

// Set returns the underlying basis set.
func (e *ScalarEncoder) Set() *core.Set { return e.set }

// Lo and Hi return the encoded interval bounds.
func (e *ScalarEncoder) Lo() float64 { return e.lo }

// Hi returns the upper bound of the encoded interval.
func (e *ScalarEncoder) Hi() float64 { return e.hi }

// Index returns the quantization index for x (clamped to the interval).
func (e *ScalarEncoder) Index(x float64) int {
	m := e.set.Len()
	if m == 1 {
		return 0
	}
	if math.IsNaN(x) {
		panic("embed: cannot encode NaN")
	}
	pos := (x - e.lo) / (e.hi - e.lo) * float64(m-1)
	i := int(math.Round(pos))
	if i < 0 {
		return 0
	}
	if i >= m {
		return m - 1
	}
	return i
}

// Value returns the quantization point ξ_i represented by index i.
func (e *ScalarEncoder) Value(i int) float64 {
	m := e.set.Len()
	if i < 0 || i >= m {
		panic(fmt.Sprintf("embed: index %d outside [0,%d)", i, m))
	}
	if m == 1 {
		return (e.lo + e.hi) / 2
	}
	return e.lo + float64(i)*(e.hi-e.lo)/float64(m-1)
}

// Encode maps x to its quantization level's hypervector (shared, do not
// mutate).
func (e *ScalarEncoder) Encode(x float64) *bitvec.Vector {
	return e.set.At(e.Index(x))
}

// DecodeIndex returns the index of the basis vector most similar to q —
// the φℓ⁻¹ nearest-label step of Section 2.3 — using the fused
// nearest-neighbor kernel (ties resolve to the lowest index).
func (e *ScalarEncoder) DecodeIndex(q *bitvec.Vector) int {
	idx, _ := bitvec.Nearest(q, e.set.Vectors())
	return idx
}

// Decode returns the value represented by the basis vector most similar to
// q.
func (e *ScalarEncoder) Decode(q *bitvec.Vector) float64 {
	return e.Value(e.DecodeIndex(q))
}

// DecodeBound returns the value whose basis vector is most similar to the
// binding a ⊗ b, without materializing the bound query — the fused
// unbind-then-decode step regression prediction uses.
func (e *ScalarEncoder) DecodeBound(a, b *bitvec.Vector) float64 {
	idx, _ := bitvec.NearestXor(a, b, e.set.Vectors())
	return e.Value(idx)
}

// ---------------------------------------------------------------------------
// Circular (angle) encoder
// ---------------------------------------------------------------------------

// CircularEncoder quantizes a periodic quantity of the given period onto m
// hypervectors placed at phases i·period/m, wrapping at the period
// boundary — so period and 0 encode to the same vector, which is precisely
// what level encoders cannot do. Works with a circular basis set for
// correlation-preserving encoding; accepts any set for baselines.
type CircularEncoder struct {
	set    *core.Set
	period float64
}

// NewCircularEncoder wraps a basis set as an encoder of a periodic value
// with the given period (2π for radians, 24 for hours, 365 for days…).
func NewCircularEncoder(set *core.Set, period float64) *CircularEncoder {
	if period <= 0 {
		panic(fmt.Sprintf("embed: period must be positive, got %v", period))
	}
	if set.Len() < 1 {
		panic("embed: circular encoder needs a non-empty basis set")
	}
	return &CircularEncoder{set: set, period: period}
}

// Set returns the underlying basis set.
func (e *CircularEncoder) Set() *core.Set { return e.set }

// Period returns the encoder's period.
func (e *CircularEncoder) Period() float64 { return e.period }

// Index returns the wrapped quantization index for x.
func (e *CircularEncoder) Index(x float64) int {
	if math.IsNaN(x) {
		panic("embed: cannot encode NaN")
	}
	m := e.set.Len()
	frac := math.Mod(x/e.period, 1)
	if frac < 0 {
		frac++
	}
	i := int(math.Round(frac * float64(m)))
	if i >= m {
		i = 0
	}
	return i
}

// Phase returns the phase value represented by index i, in [0, period).
func (e *CircularEncoder) Phase(i int) float64 {
	m := e.set.Len()
	if i < 0 || i >= m {
		panic(fmt.Sprintf("embed: index %d outside [0,%d)", i, m))
	}
	return float64(i) * e.period / float64(m)
}

// Encode maps the periodic value x to its quantization hypervector.
func (e *CircularEncoder) Encode(x float64) *bitvec.Vector {
	return e.set.At(e.Index(x))
}

// DecodeIndex returns the index of the most similar basis vector, scanned
// with the fused nearest-neighbor kernel (ties resolve to the lowest
// index).
func (e *CircularEncoder) DecodeIndex(q *bitvec.Vector) int {
	idx, _ := bitvec.Nearest(q, e.set.Vectors())
	return idx
}

// Decode returns the phase represented by the most similar basis vector.
func (e *CircularEncoder) Decode(q *bitvec.Vector) float64 {
	return e.Phase(e.DecodeIndex(q))
}

// ---------------------------------------------------------------------------
// Record encoder (key ⊗ value bundles)
// ---------------------------------------------------------------------------

// RecordEncoder implements the paper's Table-1 sample encoding
// ⊕_{i=1..n} K_i ⊗ V_i: every field i has a fixed random key hypervector
// K_i, a field value is encoded by the field's value encoder, and the bound
// pairs are bundled with majority.
type RecordEncoder struct {
	d      int
	keys   []*bitvec.Vector
	tieVec *bitvec.Vector
}

// NewRecordEncoder creates a record encoder with nFields random keys drawn
// from a substream of seed. Even-count majority ties resolve to the bits of
// a fixed random tie vector, so encoding is deterministic, independent of
// call order, and safe to invoke from concurrent goroutines.
func NewRecordEncoder(d, nFields int, seed uint64) *RecordEncoder {
	if nFields <= 0 {
		panic(fmt.Sprintf("embed: record encoder needs at least one field, got %d", nFields))
	}
	keyStream := rng.Sub(seed, "record/keys")
	keys := make([]*bitvec.Vector, nFields)
	for i := range keys {
		keys[i] = bitvec.Random(d, keyStream)
	}
	return &RecordEncoder{
		d:      d,
		keys:   keys,
		tieVec: bitvec.Random(d, rng.Sub(seed, "record/ties")),
	}
}

// NumFields returns the number of fields the encoder was created with.
func (e *RecordEncoder) NumFields() int { return len(e.keys) }

// Key returns field i's key hypervector.
func (e *RecordEncoder) Key(i int) *bitvec.Vector { return e.keys[i] }

// EncodeVectors bundles the key-bound field value hypervectors. The number
// of values must equal the number of fields.
func (e *RecordEncoder) EncodeVectors(values []*bitvec.Vector) *bitvec.Vector {
	if len(values) != len(e.keys) {
		panic(fmt.Sprintf("embed: record has %d fields, got %d values", len(e.keys), len(values)))
	}
	acc := bitvec.NewAccumulator(e.d)
	tmp := bitvec.New(e.d)
	for i, v := range values {
		e.keys[i].XorInto(v, tmp)
		acc.Add(tmp)
	}
	return acc.ThresholdTieVector(e.tieVec)
}

// FieldEncoder is anything that can map a float64 to a hypervector; both
// ScalarEncoder and CircularEncoder satisfy it.
type FieldEncoder interface {
	Encode(x float64) *bitvec.Vector
}

// EncodeRecord encodes a numeric record: value i goes through enc[i] (a
// single encoder may be reused across fields by passing it at several
// positions).
func (e *RecordEncoder) EncodeRecord(values []float64, enc []FieldEncoder) *bitvec.Vector {
	if len(values) != len(e.keys) || len(enc) != len(e.keys) {
		panic(fmt.Sprintf("embed: record wants %d values+encoders, got %d/%d",
			len(e.keys), len(values), len(enc)))
	}
	vecs := make([]*bitvec.Vector, len(values))
	for i, x := range values {
		vecs[i] = enc[i].Encode(x)
	}
	return e.EncodeVectors(vecs)
}

// ---------------------------------------------------------------------------
// Sequence and n-gram encoders (Section 3.1)
// ---------------------------------------------------------------------------

// SequenceEncoder implements φ(w) = ⊕_i Π^i(φ(α_i)): each element is
// permuted by its position and the results are bundled. Position 0 is
// rotated by 0.
type SequenceEncoder struct {
	d      int
	tieVec *bitvec.Vector
}

// NewSequenceEncoder returns a sequence encoder over dimension d; ties in
// the bundling majority resolve to a fixed random tie vector derived from
// seed, keeping encoding order-independent and goroutine-safe.
func NewSequenceEncoder(d int, seed uint64) *SequenceEncoder {
	if d <= 0 {
		panic(fmt.Sprintf("embed: dimension must be positive, got %d", d))
	}
	return &SequenceEncoder{d: d, tieVec: bitvec.Random(d, rng.Sub(seed, "seq/ties"))}
}

// Encode bundles the position-permuted elements. It panics on an empty
// sequence.
func (e *SequenceEncoder) Encode(items []*bitvec.Vector) *bitvec.Vector {
	if len(items) == 0 {
		panic("embed: cannot encode empty sequence")
	}
	acc := bitvec.NewAccumulator(e.d)
	for i, v := range items {
		acc.Add(v.Rotate(i))
	}
	return acc.ThresholdTieVector(e.tieVec)
}

// NGramEncoder encodes a sequence as the bundle of its n-grams, each
// n-gram being the binding of its position-permuted elements — the
// classical text-classification encoding of Rahimi et al.
type NGramEncoder struct {
	d      int
	n      int
	tieVec *bitvec.Vector
}

// NewNGramEncoder returns an n-gram encoder; n must be at least 1. Majority
// ties resolve to a fixed random tie vector derived from seed.
func NewNGramEncoder(d, n int, seed uint64) *NGramEncoder {
	if d <= 0 {
		panic(fmt.Sprintf("embed: dimension must be positive, got %d", d))
	}
	if n < 1 {
		panic(fmt.Sprintf("embed: n-gram size must be >= 1, got %d", n))
	}
	return &NGramEncoder{d: d, n: n, tieVec: bitvec.Random(d, rng.Sub(seed, "ngram/ties"))}
}

// N returns the gram size.
func (e *NGramEncoder) N() int { return e.n }

// Encode bundles the bound n-grams of the sequence. Sequences shorter than
// n are encoded as a single shorter gram.
func (e *NGramEncoder) Encode(items []*bitvec.Vector) *bitvec.Vector {
	if len(items) == 0 {
		panic("embed: cannot encode empty sequence")
	}
	n := e.n
	if len(items) < n {
		n = len(items)
	}
	acc := bitvec.NewAccumulator(e.d)
	gram := bitvec.New(e.d)
	for start := 0; start+n <= len(items); start++ {
		gram.CopyFrom(items[start].Rotate(n - 1))
		for k := 1; k < n; k++ {
			gram.XorInPlace(items[start+k].Rotate(n - 1 - k))
		}
		acc.Add(gram)
	}
	return acc.ThresholdTieVector(e.tieVec)
}
