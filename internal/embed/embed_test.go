package embed

import (
	"math"
	"testing"
	"testing/quick"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/rng"
)

func levelSet(m, d int, seed uint64) *core.Set {
	return core.LevelSet(m, d, rng.New(seed))
}

func circularSet(m, d int, seed uint64) *core.Set {
	return core.CircularSet(m, d, rng.New(seed))
}

// --- ItemMemory ---

func TestItemMemoryStableAndDistinct(t *testing.T) {
	im := NewItemMemory(2048, 7)
	a1 := im.Get("alpha")
	b := im.Get("beta")
	a2 := im.Get("alpha")
	if a1 != a2 {
		t.Error("repeated Get returned different vector pointer")
	}
	if a1.Equal(b) {
		t.Error("different symbols share a vector")
	}
	if sim := a1.Similarity(b); sim > 0.6 {
		t.Errorf("distinct symbols too similar: %v", sim)
	}
	if im.Len() != 2 {
		t.Errorf("Len = %d, want 2", im.Len())
	}
}

func TestItemMemoryOrderIndependent(t *testing.T) {
	im1 := NewItemMemory(1024, 9)
	im2 := NewItemMemory(1024, 9)
	x1 := im1.Get("x")
	_ = im2.Get("y")
	x2 := im2.Get("x")
	if !x1.Equal(x2) {
		t.Error("symbol vector depends on creation order")
	}
}

func TestItemMemorySeedSensitive(t *testing.T) {
	a := NewItemMemory(1024, 1).Get("x")
	b := NewItemMemory(1024, 2).Get("x")
	if a.Equal(b) {
		t.Error("different seeds produced identical symbol vector")
	}
}

func TestItemMemoryLookup(t *testing.T) {
	im := NewItemMemory(4096, 11)
	for _, s := range []string{"a", "b", "c", "d"} {
		im.Get(s)
	}
	// Noisy query: flip 10% of bits of "c".
	q := im.Get("c").Clone()
	r := rng.New(3)
	for i := 0; i < 400; i++ {
		q.FlipBit(r.Intn(4096))
	}
	sym, sim, ok := im.Lookup(q)
	if !ok || sym != "c" {
		t.Errorf("Lookup = %q (ok=%v), want c", sym, ok)
	}
	if sim < 0.7 {
		t.Errorf("similarity %v suspiciously low", sim)
	}
	empty := NewItemMemory(64, 1)
	if _, _, ok := empty.Lookup(bitvec.New(64)); ok {
		t.Error("empty Lookup returned ok")
	}
}

func TestItemMemoryView(t *testing.T) {
	im := NewItemMemory(256, 5)
	for _, s := range []string{"a", "b", "c"} {
		im.Get(s)
	}
	syms, vecs := im.View()
	if len(syms) != 3 || len(vecs) != 3 {
		t.Fatalf("view lengths %d/%d, want 3/3", len(syms), len(vecs))
	}
	// The view is a stable point in time: later Gets must not disturb it,
	// and the vectors must be the exact stored ones.
	im.Get("d")
	im.Get("e")
	for i, s := range []string{"a", "b", "c"} {
		if syms[i] != s {
			t.Errorf("view symbol %d = %q, want %q", i, syms[i], s)
		}
		if !vecs[i].Equal(im.Get(s)) {
			t.Errorf("view vector for %q diverged from memory", s)
		}
	}
	syms2, _ := im.View()
	if len(syms2) != 5 {
		t.Errorf("second view has %d symbols, want 5", len(syms2))
	}
}

func TestItemMemoryPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad dim did not panic")
		}
	}()
	NewItemMemory(0, 1)
}

// --- ScalarEncoder ---

func TestScalarEncoderIndexing(t *testing.T) {
	e := NewScalarEncoder(levelSet(11, 512, 1), 0, 10)
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {10, 10}, {5, 5}, {4.9, 5}, {5.4, 5},
		{-100, 0}, {100, 10}, {0.49, 0}, {0.51, 1},
	}
	for _, c := range cases {
		if got := e.Index(c.x); got != c.want {
			t.Errorf("Index(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestScalarEncoderValueRoundTrip(t *testing.T) {
	e := NewScalarEncoder(levelSet(21, 512, 2), -5, 5)
	for i := 0; i < 21; i++ {
		if got := e.Index(e.Value(i)); got != i {
			t.Errorf("round trip index %d → %v → %d", i, e.Value(i), got)
		}
	}
	if e.Value(0) != -5 || e.Value(20) != 5 {
		t.Error("endpoint values wrong")
	}
}

func TestScalarEncoderDecodeCleanVector(t *testing.T) {
	e := NewScalarEncoder(levelSet(16, 10000, 3), 0, 1)
	for i := 0; i < 16; i++ {
		if got := e.DecodeIndex(e.Set().At(i)); got != i {
			t.Errorf("decode of exact level %d gave %d", i, got)
		}
	}
}

func TestScalarEncoderDecodeNoisyVector(t *testing.T) {
	e := NewScalarEncoder(levelSet(8, 10000, 4), 0, 7)
	q := e.Encode(3).Clone()
	r := rng.New(5)
	for i := 0; i < 1500; i++ { // 15% noise
		q.FlipBit(r.Intn(10000))
	}
	if v := e.Decode(q); v != 3 {
		t.Errorf("noisy decode = %v, want 3", v)
	}
}

func TestScalarEncoderSingleLevel(t *testing.T) {
	e := NewScalarEncoder(levelSet(1, 256, 6), 0, 10)
	if e.Index(7) != 0 {
		t.Error("single-level index != 0")
	}
	if e.Value(0) != 5 {
		t.Errorf("single-level value = %v, want midpoint 5", e.Value(0))
	}
}

func TestScalarEncoderPanics(t *testing.T) {
	set := levelSet(4, 64, 7)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("inverted interval did not panic")
			}
		}()
		NewScalarEncoder(set, 5, 5)
	}()
	// Degenerate bounds that slip past a plain `hi <= lo` check: NaN
	// compares false with everything, and ±Inf makes Index produce NaN
	// before the int conversion.
	for _, bad := range [][2]float64{
		{math.NaN(), 1},
		{0, math.NaN()},
		{math.NaN(), math.NaN()},
		{math.Inf(-1), math.Inf(1)},
		{0, math.Inf(1)},
		{7, 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("interval [%v,%v] did not panic", bad[0], bad[1])
				}
			}()
			NewScalarEncoder(set, bad[0], bad[1])
		}()
	}
	e := NewScalarEncoder(set, 0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NaN encode did not panic")
			}
		}()
		e.Encode(math.NaN())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Value out of range did not panic")
			}
		}()
		e.Value(4)
	}()
}

func TestScalarEncoderNeighborSimilarity(t *testing.T) {
	// Closeness in value → closeness in hyperspace (the defining level-set
	// property surfaced through the encoder API).
	e := NewScalarEncoder(levelSet(32, 10000, 8), 0, 31)
	near := e.Encode(10).Similarity(e.Encode(11))
	far := e.Encode(10).Similarity(e.Encode(30))
	if near <= far {
		t.Errorf("neighbor similarity %v not above far similarity %v", near, far)
	}
}

// --- CircularEncoder ---

func TestCircularEncoderWrapIndex(t *testing.T) {
	e := NewCircularEncoder(circularSet(8, 512, 9), 8)
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1, 1}, {7, 7}, {8, 0}, {9, 1}, {-1, 7}, {16, 0}, {7.6, 0},
	}
	for _, c := range cases {
		if got := e.Index(c.x); got != c.want {
			t.Errorf("Index(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestCircularEncoderPeriodBoundaryEqualsZero(t *testing.T) {
	e := NewCircularEncoder(circularSet(12, 1024, 10), 2*math.Pi)
	if !e.Encode(0).Equal(e.Encode(2 * math.Pi)) {
		t.Error("0 and 2π encode differently")
	}
	if !e.Encode(0.01).Equal(e.Encode(0.01 + 4*math.Pi)) {
		t.Error("wrapping by full periods changes encoding")
	}
}

func TestCircularEncoderWrapNeighborsSimilar(t *testing.T) {
	// The paper's motivating property: values just across the period
	// boundary are similar under circular encoding.
	m, d := 24, 10000
	e := NewCircularEncoder(circularSet(m, d, 11), 24)
	simWrap := e.Encode(23.6).Similarity(e.Encode(0.2))
	simFar := e.Encode(23.6).Similarity(e.Encode(12))
	if simWrap <= simFar+0.2 {
		t.Errorf("wrap similarity %v should far exceed antipodal %v", simWrap, simFar)
	}
	// Contrast with a level encoding of the same interval.
	le := NewScalarEncoder(levelSet(m, d, 12), 0, 24)
	levelWrap := le.Encode(23.6).Similarity(le.Encode(0.2))
	if levelWrap > 0.6 {
		t.Errorf("level encoder should break at the boundary; similarity %v", levelWrap)
	}
}

func TestCircularEncoderPhaseRoundTrip(t *testing.T) {
	e := NewCircularEncoder(circularSet(10, 512, 13), 1.0)
	for i := 0; i < 10; i++ {
		if got := e.Index(e.Phase(i)); got != i {
			t.Errorf("phase round trip %d → %v → %d", i, e.Phase(i), got)
		}
	}
}

func TestCircularEncoderDecode(t *testing.T) {
	e := NewCircularEncoder(circularSet(16, 10000, 14), 2*math.Pi)
	q := e.Encode(math.Pi).Clone()
	r := rng.New(15)
	for i := 0; i < 1000; i++ {
		q.FlipBit(r.Intn(10000))
	}
	got := e.Decode(q)
	if math.Abs(got-math.Pi) > 2*math.Pi/16+1e-9 {
		t.Errorf("noisy circular decode = %v, want ≈ π", got)
	}
}

func TestCircularEncoderPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-positive period did not panic")
			}
		}()
		NewCircularEncoder(circularSet(4, 64, 16), 0)
	}()
	e := NewCircularEncoder(circularSet(4, 64, 17), 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NaN did not panic")
			}
		}()
		e.Index(math.NaN())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Phase out of range did not panic")
			}
		}()
		e.Phase(-1)
	}()
}

// --- RecordEncoder ---

func TestRecordEncoderSimilarRecordsSimilar(t *testing.T) {
	d := 10000
	re := NewRecordEncoder(d, 6, 21)
	vals := levelSet(16, d, 22)
	enc := NewScalarEncoder(vals, 0, 15)
	encs := make([]FieldEncoder, 6)
	for i := range encs {
		encs[i] = enc
	}
	a := re.EncodeRecord([]float64{1, 2, 3, 4, 5, 6}, encs)
	b := re.EncodeRecord([]float64{1, 2, 3, 4, 5, 7}, encs) // one field nudged
	c := re.EncodeRecord([]float64{15, 14, 13, 12, 11, 10}, encs)
	if simAB, simAC := a.Similarity(b), a.Similarity(c); simAB <= simAC {
		t.Errorf("near record sim %v not above far record sim %v", simAB, simAC)
	}
}

func TestRecordEncoderDeterministic(t *testing.T) {
	d := 1024
	e1 := NewRecordEncoder(d, 3, 5)
	e2 := NewRecordEncoder(d, 3, 5)
	set := levelSet(8, d, 6)
	enc := NewScalarEncoder(set, 0, 7)
	encs := []FieldEncoder{enc, enc, enc}
	a := e1.EncodeRecord([]float64{1, 3, 5}, encs)
	b := e2.EncodeRecord([]float64{1, 3, 5}, encs)
	if !a.Equal(b) {
		t.Error("same-seed record encoders disagree")
	}
}

func TestRecordEncoderKeysDistinct(t *testing.T) {
	re := NewRecordEncoder(4096, 4, 30)
	if re.NumFields() != 4 {
		t.Errorf("NumFields = %d", re.NumFields())
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if sim := re.Key(i).Similarity(re.Key(j)); sim > 0.6 {
				t.Errorf("keys %d,%d too similar: %v", i, j, sim)
			}
		}
	}
}

func TestRecordEncoderFieldRecoverable(t *testing.T) {
	// Unbinding a field key from the record should approximately recover
	// that field's value vector (similar above chance).
	d := 10000
	re := NewRecordEncoder(d, 3, 31)
	set := levelSet(4, d, 32)
	enc := NewScalarEncoder(set, 0, 3)
	encs := []FieldEncoder{enc, enc, enc}
	rec := re.EncodeRecord([]float64{0, 1, 2}, encs)
	recovered := rec.Xor(re.Key(1))
	simTrue := recovered.Similarity(enc.Encode(1))
	simWrong := recovered.Similarity(enc.Encode(3))
	if simTrue <= simWrong {
		t.Errorf("field recovery failed: true %v, wrong %v", simTrue, simWrong)
	}
	if simTrue < 0.6 {
		t.Errorf("recovered field similarity %v too low", simTrue)
	}
}

func TestRecordEncoderPanics(t *testing.T) {
	re := NewRecordEncoder(64, 2, 33)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong value count did not panic")
			}
		}()
		re.EncodeVectors([]*bitvec.Vector{bitvec.New(64)})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero fields did not panic")
			}
		}()
		NewRecordEncoder(64, 0, 1)
	}()
}

// --- SequenceEncoder / NGramEncoder ---

func TestSequenceEncoderOrderSensitive(t *testing.T) {
	d := 10000
	im := NewItemMemory(d, 41)
	se := NewSequenceEncoder(d, 42)
	ab := se.Encode([]*bitvec.Vector{im.Get("a"), im.Get("b")})
	ba := se.Encode([]*bitvec.Vector{im.Get("b"), im.Get("a")})
	if sim := ab.Similarity(ba); sim > 0.9 {
		t.Errorf("permuted sequences too similar: %v", sim)
	}
	// Same sequence re-encoded must be identical (deterministic ties).
	se2 := NewSequenceEncoder(d, 42)
	ab2 := se2.Encode([]*bitvec.Vector{im.Get("a"), im.Get("b")})
	if !ab.Equal(ab2) {
		t.Error("same-seed sequence encoders disagree")
	}
}

func TestSequenceEncoderSharedPrefixSimilar(t *testing.T) {
	d := 10000
	im := NewItemMemory(d, 43)
	se := NewSequenceEncoder(d, 44)
	mk := func(ss ...string) *bitvec.Vector {
		items := make([]*bitvec.Vector, len(ss))
		for i, s := range ss {
			items[i] = im.Get(s)
		}
		return se.Encode(items)
	}
	near := mk("a", "b", "c", "d").Similarity(mk("a", "b", "c", "e"))
	far := mk("a", "b", "c", "d").Similarity(mk("w", "x", "y", "z"))
	if near <= far {
		t.Errorf("shared-prefix similarity %v not above disjoint %v", near, far)
	}
}

func TestSequenceEncoderPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty sequence did not panic")
		}
	}()
	NewSequenceEncoder(64, 1).Encode(nil)
}

func TestNGramEncoderBasics(t *testing.T) {
	d := 10000
	im := NewItemMemory(d, 51)
	ng := NewNGramEncoder(d, 3, 52)
	if ng.N() != 3 {
		t.Errorf("N = %d", ng.N())
	}
	mk := func(ss ...string) []*bitvec.Vector {
		items := make([]*bitvec.Vector, len(ss))
		for i, s := range ss {
			items[i] = im.Get(s)
		}
		return items
	}
	overlap := ng.Encode(mk("a", "b", "c", "d")).Similarity(ng.Encode(mk("b", "c", "d", "e")))
	disjoint := ng.Encode(mk("a", "b", "c", "d")).Similarity(ng.Encode(mk("p", "q", "r", "s")))
	if overlap <= disjoint {
		t.Errorf("n-gram overlap similarity %v not above disjoint %v", overlap, disjoint)
	}
}

func TestNGramEncoderShortSequence(t *testing.T) {
	d := 1024
	im := NewItemMemory(d, 53)
	ng := NewNGramEncoder(d, 5, 54)
	// Shorter than n: encodes as a single gram without panicking.
	v := ng.Encode([]*bitvec.Vector{im.Get("a"), im.Get("b")})
	if v.Dim() != d {
		t.Error("short-sequence encoding wrong dimension")
	}
}

func TestNGramEncoderPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("n=0 did not panic")
			}
		}()
		NewNGramEncoder(64, 0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty encode did not panic")
			}
		}()
		NewNGramEncoder(64, 2, 1).Encode(nil)
	}()
}

// --- property tests ---

func TestQuickScalarIndexMonotone(t *testing.T) {
	e := NewScalarEncoder(levelSet(64, 256, 61), 0, 100)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return e.Index(a) <= e.Index(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCircularIndexPeriodic(t *testing.T) {
	e := NewCircularEncoder(circularSet(32, 256, 62), 10)
	f := func(xRaw int16, periods int8) bool {
		x := float64(xRaw) / 100
		return e.Index(x) == e.Index(x+10*float64(periods))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
