package embed

import (
	"math"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/rng"
)

func TestDecodeWeightedK1EqualsDecode(t *testing.T) {
	e := NewScalarEncoder(levelSet(16, 4096, 91), 0, 15)
	q := e.Encode(9)
	if e.DecodeWeighted(q, 1) != e.Decode(q) {
		t.Error("k=1 weighted decode differs from Decode")
	}
	ce := NewCircularEncoder(circularSet(16, 4096, 92), 16)
	cq := ce.Encode(5)
	if ce.DecodeWeighted(cq, 1) != ce.Decode(cq) {
		t.Error("circular k=1 weighted decode differs from Decode")
	}
}

func TestDecodeWeightedExactVector(t *testing.T) {
	// On a clean basis vector the weighted decode must stay within one
	// quantization step of the true value.
	e := NewScalarEncoder(levelSet(32, 10000, 93), 0, 31)
	for _, x := range []float64{5, 15, 25} {
		got := e.DecodeWeighted(e.Encode(x), 3)
		if math.Abs(got-x) > 1 {
			t.Errorf("weighted decode of clean %v = %v", x, got)
		}
	}
}

func TestDecodeWeightedInterpolatesBetweenLevels(t *testing.T) {
	// A bundle of two adjacent levels decodes between them under weighted
	// decode, while the nearest rule must snap to one of them.
	d := 10000
	set := levelSet(16, d, 94)
	e := NewScalarEncoder(set, 0, 15)
	acc := bitvec.NewAccumulator(d)
	acc.Add(e.Encode(6))
	acc.Add(e.Encode(7))
	q := acc.Threshold(bitvec.TieRandom, rng.New(95))
	got := e.DecodeWeighted(q, 4)
	if got < 5.5 || got > 7.5 {
		t.Errorf("weighted decode of 6/7 bundle = %v, want in (5.5, 7.5)", got)
	}
	snap := e.Decode(q)
	if snap != 6 && snap != 7 {
		t.Errorf("nearest decode of 6/7 bundle = %v, want 6 or 7", snap)
	}
}

func TestDecodeWeightedCircularWrapsCorrectly(t *testing.T) {
	// A bundle of the two vectors around the seam (phase 23 and 1 of a
	// 24-period) must decode near 0, not near 12 — a linear average of
	// phases would return ~12.
	d := 10000
	set := circularSet(24, d, 96)
	e := NewCircularEncoder(set, 24)
	acc := bitvec.NewAccumulator(d)
	acc.Add(e.Encode(23))
	acc.Add(e.Encode(1))
	q := acc.Threshold(bitvec.TieRandom, rng.New(97))
	got := e.DecodeWeighted(q, 4)
	distToZero := math.Min(got, 24-got)
	if distToZero > 2.5 {
		t.Errorf("circular weighted decode of seam bundle = %v, want near 0", got)
	}
}

func TestDecodeWeightedPanicsOnBadK(t *testing.T) {
	e := NewScalarEncoder(levelSet(8, 512, 98), 0, 7)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("k=0 did not panic")
			}
		}()
		e.DecodeWeighted(e.Encode(1), 0)
	}()
	ce := NewCircularEncoder(circularSet(8, 512, 99), 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("circular k=0 did not panic")
			}
		}()
		ce.DecodeWeighted(ce.Encode(1), 0)
	}()
}

func TestDecodeWeightedKLargerThanSet(t *testing.T) {
	e := NewScalarEncoder(levelSet(4, 2048, 100), 0, 3)
	// Must clamp k to the set size, not panic.
	got := e.DecodeWeighted(e.Encode(2), 100)
	if got < 0 || got > 3 {
		t.Errorf("clamped weighted decode = %v out of range", got)
	}
}

func TestDecodeWeightedReducesRegressionError(t *testing.T) {
	// The motivating property: on a smooth target the weighted decode
	// yields lower squared error than the nearest-vector decode.
	d := 10000
	stream := rng.New(101)
	xs := core.CircularSet(64, d, stream)
	ys := core.LevelSet(32, d, stream)
	xe := NewCircularEncoder(xs, 2*math.Pi)
	ye := NewScalarEncoder(ys, -1.3, 1.3)

	acc := bitvec.NewAccumulator(d)
	train := rng.New(102)
	for i := 0; i < 300; i++ {
		theta := train.Float64() * 2 * math.Pi
		acc.Add(xe.Encode(theta).Xor(ye.Encode(math.Sin(theta))))
	}
	model := acc.Threshold(bitvec.TieRandom, rng.New(103))

	var seNearest, seWeighted float64
	n := 150
	for i := 0; i < n; i++ {
		theta := train.Float64() * 2 * math.Pi
		pv := model.Xor(xe.Encode(theta))
		truth := math.Sin(theta)
		dn := ye.Decode(pv) - truth
		dw := ye.DecodeWeighted(pv, 5) - truth
		seNearest += dn * dn
		seWeighted += dw * dw
	}
	if seWeighted >= seNearest {
		t.Errorf("weighted decode SE %v not below nearest SE %v", seWeighted, seNearest)
	}
}
