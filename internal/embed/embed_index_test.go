package embed

import (
	"fmt"
	"sync"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/index"
	"hdcirc/internal/rng"
)

// fillItems interns n symbols and returns them in creation order.
func fillItems(im *ItemMemory, n int) []string {
	syms := make([]string, n)
	for i := range syms {
		syms[i] = fmt.Sprintf("item/%d", i)
		im.Get(syms[i])
	}
	return syms
}

func flipSome(v *bitvec.Vector, rho float64, src *rng.Stream) *bitvec.Vector {
	out := v.Clone()
	for i := 0; i < v.Dim(); i++ {
		if src.Float64() < rho {
			out.FlipBit(i)
		}
	}
	return out
}

func TestIndexedLookupMatchesExactInExactMode(t *testing.T) {
	const d, n = 1024, 300
	exact := NewItemMemory(d, 9)
	indexed := NewItemMemory(d, 9)
	// Exact mode: candidates cover everything, tiny MinSize so the index
	// actually engages at this n.
	indexed.SetIndexConfig(index.Config{MinSize: 10, Candidates: n + 50})
	fillItems(exact, n)
	fillItems(indexed, n)
	src := rng.Sub(31, "exact-mode")
	for i := 0; i < 60; i++ {
		var q *bitvec.Vector
		if i%2 == 0 {
			q = bitvec.Random(d, src)
		} else {
			q = flipSome(exact.Get(fmt.Sprintf("item/%d", i%n)), 0.35, src)
		}
		ws, wsim, _ := exact.Lookup(q)
		gs, gsim, _ := indexed.Lookup(q)
		if gs != ws || gsim != wsim {
			t.Fatalf("query %d: indexed (%q,%v), exact (%q,%v)", i, gs, gsim, ws, wsim)
		}
	}
}

func TestIndexedLookupRecallOnNoisyProbes(t *testing.T) {
	const d, n = 2048, 3000
	im := NewItemMemory(d, 4)
	im.SetIndexConfig(index.Config{MinSize: 1000})
	syms := fillItems(im, n)
	src := rng.Sub(8, "recall")
	hits := 0
	const queries = 200
	for i := 0; i < queries; i++ {
		target := syms[(i*37)%n]
		q := flipSome(im.Get(target), 0.3, src)
		got, _, ok := im.Lookup(q)
		if !ok {
			t.Fatal("lookup failed on non-empty memory")
		}
		if got == target {
			hits++
		}
	}
	if recall := float64(hits) / queries; recall < 0.99 {
		t.Fatalf("indexed recall %.4f below 0.99 (%d/%d)", recall, hits, queries)
	}
}

func TestIndexedLookupTailScanAfterGets(t *testing.T) {
	// Gets after an index build land in the exact-scanned tail; a probe of
	// a tail symbol must still resolve (and similarity must be exact).
	const d = 512
	im := NewItemMemory(d, 6)
	im.SetIndexConfig(index.Config{MinSize: 100, Candidates: 1 << 20}) // exact mode
	fillItems(im, 150)
	q0 := flipSome(im.Get("item/120"), 0.2, rng.Sub(3, "tail0"))
	if got, _, _ := im.Lookup(q0); got != "item/120" {
		t.Fatalf("pre-tail lookup got %q", got)
	}
	// Intern a handful more (fewer than the rebuild slack of 64): these are
	// served by the exact tail scan against the stale index.
	late := im.Get("late/symbol")
	q := flipSome(late, 0.2, rng.Sub(3, "tail"))
	got, sim, ok := im.Lookup(q)
	if !ok || got != "late/symbol" {
		t.Fatalf("tail lookup got (%q, %v, %v)", got, sim, ok)
	}
	if want := 1 - q.Distance(late); sim != want {
		t.Fatalf("tail similarity %v, want exact %v", sim, want)
	}
}

func TestIndexedLookupRebuildsAfterManyGets(t *testing.T) {
	const d = 256
	im := NewItemMemory(d, 2)
	im.SetIndexConfig(index.Config{MinSize: 50, Candidates: 1 << 20})
	fillItems(im, 60)
	im.Lookup(bitvec.Random(d, rng.Sub(1, "warm"))) // builds index over 60
	if im.ixLen != 60 {
		t.Fatalf("index covers %d, want 60", im.ixLen)
	}
	// Exceed the rebuild slack (64 for small prefixes).
	for i := 0; i < 70; i++ {
		im.Get(fmt.Sprintf("extra/%d", i))
	}
	probe := flipSome(im.Get("extra/42"), 0.15, rng.Sub(4, "rebuild"))
	got, _, _ := im.Lookup(probe)
	if got != "extra/42" {
		t.Fatalf("post-rebuild lookup got %q", got)
	}
	if im.ixLen != 130 {
		t.Fatalf("index covers %d after rebuild, want 130", im.ixLen)
	}
}

func TestDisabledIndexNeverBuilds(t *testing.T) {
	const d = 128
	im := NewItemMemory(d, 5)
	im.SetIndexConfig(index.Config{Disabled: true, MinSize: 1})
	fillItems(im, 100)
	im.Lookup(bitvec.Random(d, rng.Sub(7, "disabled")))
	if im.ix != nil {
		t.Fatal("disabled config built an index")
	}
}

func TestConcurrentIndexedLookups(t *testing.T) {
	// Many goroutines racing on first-Lookup index construction and on
	// lookups afterwards; run under -race in CI.
	const d, n = 512, 400
	im := NewItemMemory(d, 11)
	im.SetIndexConfig(index.Config{MinSize: 100})
	syms := fillItems(im, n)
	queries := make([]*bitvec.Vector, 64)
	src := rng.Sub(19, "conc")
	for i := range queries {
		queries[i] = flipSome(im.Get(syms[i%n]), 0.25, src)
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		want[i], _, _ = im.Lookup(q)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				if got, _, _ := im.Lookup(q); got != want[i] {
					t.Errorf("concurrent lookup %d got %q, want %q", i, got, want[i])
				}
			}
		}()
	}
	wg.Wait()
}
