package embed

// Weighted decoding — an extension beyond the paper's nearest-vector
// decode. The nearest-label rule of Section 2.3 quantizes the prediction to
// the label grid and discards the information carried by the runner-up
// similarities. DecodeWeighted instead averages the values of the top-k
// most similar basis vectors, weighted by their similarity margin over the
// k+1-th, which interpolates between grid points and measurably reduces
// regression error on smooth targets (see BenchmarkAblationDecoder).

import (
	"fmt"
	"math"
	"sort"

	"hdcirc/internal/bitvec"
)

// topK returns the indexes of the k smallest distances between q and the
// set's vectors, ordered best first, along with the distances.
func topK(q *bitvec.Vector, set interface {
	Len() int
	At(int) *bitvec.Vector
}, k int) ([]int, []float64) {
	n := set.Len()
	if k > n {
		k = n
	}
	type cand struct {
		idx int
		d   float64
	}
	cands := make([]cand, n)
	for i := 0; i < n; i++ {
		cands[i] = cand{i, q.Distance(set.At(i))}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].idx < cands[b].idx
	})
	idx := make([]int, k)
	dist := make([]float64, k)
	for i := 0; i < k; i++ {
		idx[i], dist[i] = cands[i].idx, cands[i].d
	}
	return idx, dist
}

// weights converts top-k distances into normalized weights: each candidate
// is weighted by how much closer it is than the worst retained candidate
// (plus a floor so k = 1 and ties stay well-defined).
func weights(dist []float64) []float64 {
	worst := dist[len(dist)-1]
	w := make([]float64, len(dist))
	var sum float64
	for i, d := range dist {
		w[i] = (worst - d) + 1e-9
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// DecodeWeighted returns the similarity-weighted average of the values of
// the k most similar basis vectors. k = 1 reduces to Decode. It panics on
// k < 1.
func (e *ScalarEncoder) DecodeWeighted(q *bitvec.Vector, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("embed: DecodeWeighted needs k >= 1, got %d", k))
	}
	if k == 1 {
		return e.Decode(q)
	}
	idx, dist := topK(q, e.set, k)
	w := weights(dist)
	var out float64
	for i, ix := range idx {
		out += w[i] * e.Value(ix)
	}
	return out
}

// DecodeWeighted returns the circular-mean of the phases of the k most
// similar basis vectors, weighted by similarity margin — the directional-
// statistics analogue of the scalar version (a plain average of phases
// would break at the wrap seam).
func (e *CircularEncoder) DecodeWeighted(q *bitvec.Vector, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("embed: DecodeWeighted needs k >= 1, got %d", k))
	}
	if k == 1 {
		return e.Decode(q)
	}
	idx, dist := topK(q, e.set, k)
	w := weights(dist)
	var c, s float64
	for i, ix := range idx {
		theta := 2 * math.Pi * e.Phase(ix) / e.period
		c += w[i] * math.Cos(theta)
		s += w[i] * math.Sin(theta)
	}
	if c == 0 && s == 0 {
		// Degenerate balance: fall back to the nearest vector.
		return e.Decode(q)
	}
	theta := math.Atan2(s, c)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	return theta * e.period / (2 * math.Pi)
}
