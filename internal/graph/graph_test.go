package graph

import (
	"math"
	"testing"

	"hdcirc/internal/rng"
)

func TestNewAndEdges(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.NumEdges() != 0 {
		t.Fatal("fresh graph wrong")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate is a no-op
	g.AddEdge(2, 2) // self-loop ignored
	g.AddEdge(3, 4)
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("undirected edge missing")
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop stored")
	}
	es := g.Edges()
	if len(es) != 2 || es[0] != [2]int{0, 1} || es[1] != [2]int{3, 4} {
		t.Errorf("Edges() = %v", es)
	}
}

func TestDegreeAndRank(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	// degrees: 0→3, 1→2, 2→2, 3→1
	if g.Degree(0) != 3 || g.Degree(3) != 1 {
		t.Fatal("degrees wrong")
	}
	rank := g.DegreeRank()
	if rank[0] != 0 {
		t.Errorf("highest-degree vertex rank = %d", rank[0])
	}
	if rank[3] != 3 {
		t.Errorf("lowest-degree vertex rank = %d", rank[3])
	}
	if rank[1] != 1 || rank[2] != 2 { // tie broken by id
		t.Errorf("tie ranks = %d,%d", rank[1], rank[2])
	}
}

func TestPanics(t *testing.T) {
	cases := map[string]func(){
		"n=0":        func() { New(0) },
		"vertex oob": func() { New(2).AddEdge(0, 5) },
		"bad p":      func() { ErdosRenyi(5, 1.5, rng.New(1)) },
		"bad m":      func() { PreferentialAttachment(5, 0, rng.New(1)) },
		"bad k":      func() { WattsStrogatz(10, 3, 0.1, rng.New(1)) },
		"bad beta":   func() { WattsStrogatz(10, 4, -1, rng.New(1)) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	r := rng.New(2)
	n, p := 60, 0.2
	g := ErdosRenyi(n, p, r)
	want := p * float64(n*(n-1)/2)
	got := float64(g.NumEdges())
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Errorf("G(n,p) edges = %v, want ≈ %v", got, want)
	}
}

func TestPreferentialAttachmentHeavyTail(t *testing.T) {
	r := rng.New(3)
	g := PreferentialAttachment(120, 2, r)
	er := ErdosRenyi(120, float64(2*g.NumEdges())/float64(120*119), r)
	// Degree variance of BA must clearly exceed that of a density-matched
	// ER graph.
	variance := func(g *Graph) float64 {
		var sum, sumsq float64
		for v := 0; v < g.N(); v++ {
			d := float64(g.Degree(v))
			sum += d
			sumsq += d * d
		}
		n := float64(g.N())
		m := sum / n
		return sumsq/n - m*m
	}
	if variance(g) <= variance(er) {
		t.Errorf("BA degree variance %v not above ER %v", variance(g), variance(er))
	}
}

func TestWattsStrogatzClustering(t *testing.T) {
	r := rng.New(4)
	ws := WattsStrogatz(100, 6, 0.05, r)
	er := ErdosRenyi(100, float64(2*ws.NumEdges())/float64(100*99), r)
	if ws.ClusteringCoefficient() <= 2*er.ClusteringCoefficient() {
		t.Errorf("WS clustering %v not well above ER %v",
			ws.ClusteringCoefficient(), er.ClusteringCoefficient())
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := PreferentialAttachment(40, 2, rng.New(5))
	b := PreferentialAttachment(40, 2, rng.New(5))
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatal("edge counts differ")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("equal-seed graphs differ")
		}
	}
}

func TestClusteringDegenerate(t *testing.T) {
	if New(3).ClusteringCoefficient() != 0 {
		t.Error("empty graph clustering != 0")
	}
	tri := New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	if c := tri.ClusteringCoefficient(); c != 1 {
		t.Errorf("triangle clustering = %v, want 1", c)
	}
}
