// Package graph provides the small graph substrate used by the GraphHD
// extension experiment (Nunes et al., DATE 2022 — the paper's reference
// [31]): an adjacency-set graph type, three synthetic random-graph family
// generators with distinct structure (Erdős–Rényi, preferential attachment,
// Watts–Strogatz ring rewiring), and the centrality ranking GraphHD encodes
// vertices by.
package graph

import (
	"fmt"
	"sort"

	"hdcirc/internal/rng"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	n   int
	adj []map[int]bool
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("graph: vertex count must be positive, got %d", n))
	}
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}; self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.adj[u][v]
}

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// Edges returns every undirected edge once, as ordered pairs u < v, sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for u := 0; u < g.n; u++ {
		total += len(g.adj[u])
	}
	return total / 2
}

// DegreeRank returns each vertex's rank by descending degree (ties broken
// by vertex id): rank[v] ∈ [0, N). GraphHD assigns basis-hypervectors to
// vertices by centrality rank so isomorphic graphs encode identically up
// to tie order; degree centrality is the cheap, deterministic choice.
func (g *Graph) DegreeRank() []int {
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	rank := make([]int, g.n)
	for r, v := range order {
		rank[v] = r
	}
	return rank
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d outside [0,%d)", u, g.n))
	}
}

// ---------------------------------------------------------------------------
// Random-graph family generators
// ---------------------------------------------------------------------------

// ErdosRenyi samples G(n, p): every pair is an edge independently with
// probability p.
func ErdosRenyi(n int, p float64, r *rng.Stream) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: edge probability %v outside [0,1]", p))
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// PreferentialAttachment grows a Barabási–Albert-style graph: starting from
// a small clique, each new vertex attaches m edges to existing vertices
// with probability proportional to their degree (plus one, so isolated
// vertices stay reachable). Produces heavy-tailed degree distributions.
func PreferentialAttachment(n, m int, r *rng.Stream) *Graph {
	if m < 1 {
		panic(fmt.Sprintf("graph: attachment count %d must be >= 1", m))
	}
	g := New(n)
	seed := m + 1
	if seed > n {
		seed = n
	}
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			g.AddEdge(u, v)
		}
	}
	for u := seed; u < n; u++ {
		for e := 0; e < m; e++ {
			// Weighted pick over existing vertices by degree+1.
			total := 0
			for v := 0; v < u; v++ {
				total += g.Degree(v) + 1
			}
			pick := r.Intn(total)
			acc := 0
			for v := 0; v < u; v++ {
				acc += g.Degree(v) + 1
				if pick < acc {
					g.AddEdge(u, v)
					break
				}
			}
		}
	}
	return g
}

// WattsStrogatz builds a ring lattice where each vertex connects to its k
// nearest neighbors (k even), then rewires each edge with probability beta
// to a uniform random endpoint. Small beta keeps high clustering; this is
// the "small world" family.
func WattsStrogatz(n, k int, beta float64, r *rng.Stream) *Graph {
	if k < 2 || k%2 != 0 || k >= n {
		panic(fmt.Sprintf("graph: ring degree %d must be even, >= 2 and < n=%d", k, n))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("graph: rewiring probability %v outside [0,1]", beta))
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if r.Float64() < beta {
				// Rewire to a random non-self vertex; collisions with an
				// existing edge simply keep the lattice edge out (AddEdge
				// on an existing pair is a no-op, which slightly lowers
				// degree — acceptable for a synthetic family).
				w := r.Intn(n)
				if w != u {
					g.AddEdge(u, w)
					continue
				}
			}
			g.AddEdge(u, v)
		}
	}
	return g
}

// ClusteringCoefficient returns the global clustering coefficient (ratio of
// closed triplets), a structural statistic that separates the three
// families; the generator tests assert it.
func (g *Graph) ClusteringCoefficient() float64 {
	closed, triplets := 0, 0
	for u := 0; u < g.n; u++ {
		neigh := make([]int, 0, len(g.adj[u]))
		for v := range g.adj[u] {
			neigh = append(neigh, v)
		}
		for i := 0; i < len(neigh); i++ {
			for j := i + 1; j < len(neigh); j++ {
				triplets++
				if g.adj[neigh[i]][neigh[j]] {
					closed++
				}
			}
		}
	}
	if triplets == 0 {
		return 0
	}
	return float64(closed) / float64(triplets)
}
