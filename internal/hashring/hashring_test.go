package hashring

import (
	"fmt"
	"testing"

	"hdcirc/internal/rng"
)

func TestNewRoundsToEven(t *testing.T) {
	r := mustNew(t, 9, 1024, 1)
	if r.Positions() != 10 {
		t.Errorf("positions = %d, want 10", r.Positions())
	}
	if _, err := New(1, 64, 1); err == nil {
		t.Error("m<2 accepted")
	}
	if _, err := New(8, 0, 1); err == nil {
		t.Error("d=0 accepted")
	}
}

func mustNew(t *testing.T, m, d int, seed uint64) *Ring {
	t.Helper()
	r, err := New(m, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAddFullRingErrors(t *testing.T) {
	r := mustNew(t, 2, 256, 11)
	for i := 0; i < r.Positions(); i++ {
		if _, err := r.Add(fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Add("overflow"); err == nil {
		t.Fatal("full ring accepted another member")
	}
	// The failed join must not corrupt the ring: every key still routes.
	if got := len(r.Members()); got != r.Positions() {
		t.Errorf("members = %d after failed Add, want %d", got, r.Positions())
	}
	if _, ok := r.Lookup("some-key"); !ok {
		t.Error("lookup failed after rejected Add")
	}
}

func TestAddRemoveMembers(t *testing.T) {
	r := mustNew(t, 16, 1024, 2)
	if _, err := r.Add("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("a"); err == nil {
		t.Error("duplicate Add accepted")
	}
	if _, err := r.Add("b"); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Members()); got != 2 {
		t.Errorf("members = %d", got)
	}
	if err := r.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("a"); err == nil {
		t.Error("double Remove accepted")
	}
	if got := r.Members(); len(got) != 1 || got[0] != "b" {
		t.Errorf("members after removal: %v", got)
	}
}

func TestAddSpreadsMembers(t *testing.T) {
	r := mustNew(t, 16, 1024, 3)
	slots := map[string]int{}
	for _, n := range []string{"a", "b", "c", "d"} {
		s, err := r.Add(n)
		if err != nil {
			t.Fatal(err)
		}
		slots[n] = s
	}
	// Four members on 16 slots spread greedily: minimum pairwise circular
	// distance must be at least 16/4/2 = 2.
	names := []string{"a", "b", "c", "d"}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if d := circDist(slots[names[i]], slots[names[j]], 16); d < 2 {
				t.Errorf("members %s,%s too close: %d", names[i], names[j], d)
			}
		}
	}
}

func TestLookupEmpty(t *testing.T) {
	r := mustNew(t, 8, 512, 4)
	if _, ok := r.Lookup("key"); ok {
		t.Error("lookup on empty ring returned ok")
	}
}

func TestLookupReturnsNearestMember(t *testing.T) {
	r := mustNew(t, 32, 10000, 5)
	for _, n := range []string{"a", "b", "c", "d"} {
		if _, err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	// Every key must land on the member whose slot is circularly nearest
	// to the key's slot (uncorrupted vectors ⇒ similarity order = slot
	// order, up to hypervector noise on near-ties).
	agree := 0
	const keys = 200
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		got, ok := r.Lookup(key)
		if !ok {
			t.Fatal("lookup failed")
		}
		ks := r.KeySlot(key)
		best, bestD := "", 1<<30
		for _, name := range r.Members() {
			slot := 0
			for s, n := range r.slots {
				if n == name {
					slot = s
				}
			}
			if d := circDist(ks, slot, 32); d < bestD {
				bestD, best = d, name
			}
		}
		if got == best {
			agree++
		}
	}
	if agree < keys*9/10 {
		t.Errorf("only %d/%d lookups matched the circularly nearest member", agree, keys)
	}
}

func TestLookupDeterministic(t *testing.T) {
	r := mustNew(t, 16, 2048, 6)
	for _, n := range []string{"x", "y", "z"} {
		if _, err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := r.Lookup("some-key")
	b, _ := r.Lookup("some-key")
	if a != b {
		t.Error("lookup not deterministic")
	}
}

func TestConsistentHashingMinimalRemap(t *testing.T) {
	// Removing one of four members must remap (essentially) only the keys
	// it served — the defining consistent-hashing property.
	build := func() *Ring {
		r := mustNew(t, 64, 4096, 7)
		for _, n := range []string{"a", "b", "c", "d"} {
			if _, err := r.Add(n); err != nil {
				t.Fatal(err)
			}
		}
		return r
	}
	r := build()
	const keys = 300
	before := make([]string, keys)
	for i := range before {
		before[i], _ = r.Lookup(fmt.Sprintf("key-%d", i))
	}
	if err := r.Remove("c"); err != nil {
		t.Fatal(err)
	}
	movedNonC := 0
	for i := range before {
		after, _ := r.Lookup(fmt.Sprintf("key-%d", i))
		if before[i] != "c" && after != before[i] {
			movedNonC++
		}
		if after == "c" {
			t.Fatal("removed member still serving keys")
		}
	}
	if movedNonC > keys/20 {
		t.Errorf("%d/%d keys of surviving members remapped; want ≈ 0", movedNonC, keys)
	}
}

func TestCorruptionRobustness(t *testing.T) {
	// HD hashing's selling point: lookups survive significant bit
	// corruption of the member vectors.
	r := mustNew(t, 16, 10000, 8)
	for _, n := range []string{"a", "b", "c", "d"} {
		if _, err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	const keys = 200
	clean := make([]string, keys)
	for i := range clean {
		clean[i], _ = r.Lookup(fmt.Sprintf("key-%d", i))
	}
	r.Corrupt(0.05, rng.New(99)) // 5% of bits flipped in every member vector
	same := 0
	for i := range clean {
		got, _ := r.Lookup(fmt.Sprintf("key-%d", i))
		if got == clean[i] {
			same++
		}
	}
	// Keys almost equidistant between two members may legitimately flip;
	// the holographic representation keeps the vast majority stable.
	if same < keys*90/100 {
		t.Errorf("only %d/%d lookups survived 5%% corruption", same, keys)
	}
	// Heal restores exact behaviour.
	r.Heal()
	for i := range clean {
		if got, _ := r.Lookup(fmt.Sprintf("key-%d", i)); got != clean[i] {
			t.Fatal("heal did not restore lookups")
		}
	}
}

func TestCorruptPanicsOnBadFraction(t *testing.T) {
	r := mustNew(t, 8, 512, 9)
	defer func() {
		if recover() == nil {
			t.Error("bad fraction did not panic")
		}
	}()
	r.Corrupt(1.5, rng.New(1))
}

func TestKeySlotStable(t *testing.T) {
	r := mustNew(t, 32, 512, 10)
	if r.KeySlot("k") != r.KeySlot("k") {
		t.Error("key slot not deterministic")
	}
	if r.KeySlot("k") < 0 || r.KeySlot("k") >= 32 {
		t.Error("key slot out of range")
	}
}

func TestCircDist(t *testing.T) {
	cases := []struct{ a, b, m, want int }{
		{0, 0, 10, 0}, {0, 5, 10, 5}, {0, 9, 10, 1}, {2, 8, 10, 4}, {9, 1, 10, 2},
	}
	for _, c := range cases {
		if got := circDist(c.a, c.b, c.m); got != c.want {
			t.Errorf("circDist(%d,%d,%d) = %d, want %d", c.a, c.b, c.m, got, c.want)
		}
	}
}
