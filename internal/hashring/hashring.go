// Package hashring implements Hyperdimensional Hashing (Heddes et al., DAC
// 2022) — the application that originally motivated circular-hypervectors,
// cited by the paper as the source of the construction it generalizes. A
// hash ring's positions are represented by a circular-hypervector set; keys
// hash to a position hypervector and are served by the member whose
// position is most similar. Because similarity degrades gracefully with
// distance (and the representation is holographic), lookups stay mostly
// correct under random bit corruption of the stored vectors — the
// robustness HD hashing is for, demonstrated by this package's tests and
// the examples/hashring program.
package hashring

import (
	"fmt"
	"sort"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/rng"
)

// Ring is a consistent-hashing ring over circular-hypervector positions.
// It is not safe for concurrent mutation; once membership stops changing,
// Lookup and KeySlot are read-only and safe from any number of goroutines
// (internal/serve relies on this for lock-free request routing).
type Ring struct {
	set     *core.Set
	m       int
	members map[string]int            // member name → ring slot
	slots   map[int]string            // ring slot → member name
	vectors map[string]*bitvec.Vector // member position vectors (possibly corrupted copies)
	// names/vlist mirror vectors in name-sorted order so lookups can scan
	// a slice with the fused nearest-neighbor kernel; kept in sync by
	// Add/Remove/Heal.
	names []string
	vlist []*bitvec.Vector
	seed  uint64
}

// New creates a ring with m positions (rounded up to even) of dimension d.
// It returns an error when m < 2 or d <= 0 — ring sizing often comes from
// user or operator input in a server, so a bad size must be reportable, not
// a panic.
func New(m, d int, seed uint64) (*Ring, error) {
	if m < 2 {
		return nil, fmt.Errorf("hashring: need at least 2 positions, got %d", m)
	}
	if d <= 0 {
		return nil, fmt.Errorf("hashring: dimension must be positive, got %d", d)
	}
	if m%2 != 0 {
		m++
	}
	set := core.CircularSet(m, d, rng.Sub(seed, "hashring/positions"))
	return &Ring{
		set:     set,
		m:       m,
		members: make(map[string]int),
		slots:   make(map[int]string),
		vectors: make(map[string]*bitvec.Vector),
		seed:    seed,
	}, nil
}

// Positions returns the number of ring positions m.
func (r *Ring) Positions() int { return r.m }

// Members returns the current member names in slot order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for name := range r.members {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool { return r.members[out[i]] < r.members[out[j]] })
	return out
}

// Add places a member on the ring at the free slot that maximizes the
// minimum circular distance to existing members (the even-spreading
// strategy of HD hashing), and returns its slot. Adding an existing member
// or adding to a full ring is an error: membership churn is driven by
// external events (fleet scale-up), and a server must be able to refuse an
// overflowing join without crashing.
func (r *Ring) Add(name string) (int, error) {
	if _, ok := r.members[name]; ok {
		return 0, fmt.Errorf("hashring: member %q already present", name)
	}
	if len(r.members) >= r.m {
		return 0, fmt.Errorf("hashring: ring of %d positions is full", r.m)
	}
	slot := 0
	if len(r.members) == 0 {
		// First member lands on the slot derived from its name so layouts
		// differ between rings.
		slot = int(hash(name) % uint64(r.m))
	} else {
		bestGap := -1
		for s := 0; s < r.m; s++ {
			if _, used := r.slots[s]; used {
				continue
			}
			gap := r.m
			for _, occupied := range r.members {
				d := circDist(s, occupied, r.m)
				if d < gap {
					gap = d
				}
			}
			if gap > bestGap {
				bestGap, slot = gap, s
			}
		}
	}
	r.members[name] = slot
	r.slots[slot] = name
	r.vectors[name] = r.set.At(slot).Clone()
	r.reindex()
	return slot, nil
}

// reindex rebuilds the name-sorted lookup slices from the vectors map.
func (r *Ring) reindex() {
	r.names = r.names[:0]
	for name := range r.vectors {
		r.names = append(r.names, name)
	}
	sort.Strings(r.names)
	r.vlist = r.vlist[:0]
	for _, name := range r.names {
		r.vlist = append(r.vlist, r.vectors[name])
	}
}

// Remove deletes a member from the ring.
func (r *Ring) Remove(name string) error {
	slot, ok := r.members[name]
	if !ok {
		return fmt.Errorf("hashring: member %q not present", name)
	}
	delete(r.members, name)
	delete(r.slots, slot)
	delete(r.vectors, name)
	r.reindex()
	return nil
}

// Lookup returns the member that serves the given key: the key hashes to a
// ring position, and the member whose (stored, possibly corrupted) position
// vector is most similar to that position's hypervector wins. ok is false
// on an empty ring. The scan runs the fused nearest-neighbor kernel over
// the name-sorted member list, so exact similarity ties resolve to the
// lexicographically smallest name, with no per-lookup allocation.
func (r *Ring) Lookup(key string) (member string, ok bool) {
	if len(r.members) == 0 {
		return "", false
	}
	q := r.set.At(r.KeySlot(key))
	idx, _ := bitvec.Nearest(q, r.vlist)
	return r.names[idx], true
}

// KeySlot returns the ring slot the key hashes to.
func (r *Ring) KeySlot(key string) int {
	return int(hash(key) % uint64(r.m))
}

// Corrupt flips the given fraction of bits in every stored member position
// vector, simulating memory faults; lookups afterwards exercise HD
// hashing's graceful degradation. The ring's reference set is untouched.
func (r *Ring) Corrupt(fraction float64, stream *rng.Stream) {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("hashring: corruption fraction %v outside [0,1]", fraction))
	}
	d := r.set.Dim()
	n := int(fraction * float64(d))
	for _, v := range r.vectors {
		for i := 0; i < n; i++ {
			v.FlipBit(stream.Intn(d))
		}
	}
}

// Heal restores every member's stored vector from the reference set.
func (r *Ring) Heal() {
	for name, slot := range r.members {
		r.vectors[name] = r.set.At(slot).Clone()
	}
	r.reindex()
}

// circDist is the circular slot distance between two slots on a ring of m.
func circDist(a, b, m int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if m-d < d {
		d = m - d
	}
	return d
}

// hash is FNV-1a over the key.
func hash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
