package hashring

import (
	"fmt"
	"testing"
)

// TestRingStabilityGoldens pins the ring's observable routing behavior
// for a fixed geometry (8 positions, d=1024, seed 42, members shard/0..2
// added in order). Every stored key in a sharded tier lives where this
// function puts it, so the FNV key hash, the circular-set construction,
// the seed derivation, and the even-spreading placement strategy are all
// compatibility surfaces: a change to any of them silently strands every
// stored key behind a different shard. If this test fails, the change is
// a deliberate resharding event, not a refactor — it needs a migration
// story, not an updated golden.
func TestRingStabilityGoldens(t *testing.T) {
	r, err := New(8, 1024, 42)
	if err != nil {
		t.Fatal(err)
	}
	wantSlots := []int{4, 0, 2} // placement of shard/0, shard/1, shard/2 in order
	for i, want := range wantSlots {
		slot, err := r.Add(fmt.Sprintf("shard/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if slot != want {
			t.Fatalf("shard/%d placed at slot %d, golden %d", i, slot, want)
		}
	}

	// FNV-1a key→slot goldens.
	keySlots := map[string]int{
		"class/0":    0,
		"class/1":    3,
		"class/2":    6,
		"class/3":    1,
		"item/alpha": 5,
		"item/bravo": 5,
		"item/zulu":  5,
	}
	for key, want := range keySlots {
		if got := r.KeySlot(key); got != want {
			t.Errorf("KeySlot(%q) = %d, golden %d", key, got, want)
		}
	}

	// End-to-end key→member goldens through the hypervector lookup.
	lookups := map[string]string{
		"class/0":    "shard/1",
		"class/1":    "shard/2",
		"class/2":    "shard/0",
		"class/3":    "shard/1",
		"class/4":    "shard/0",
		"class/5":    "shard/1",
		"item/alpha": "shard/0",
		"item/bravo": "shard/0",
		"item/zulu":  "shard/0",
	}
	for key, want := range lookups {
		got, ok := r.Lookup(key)
		if !ok || got != want {
			t.Errorf("Lookup(%q) = %q (ok=%v), golden %q", key, got, ok, want)
		}
	}
}

// TestHashGoldens pins the raw FNV-1a values the slot math divides — the
// lowest-level stability anchor, independent of ring geometry.
func TestHashGoldens(t *testing.T) {
	want := map[string]uint64{
		"":        14695981039346656037,
		"class/0": 2240978272474868320,
		"item/a":  7418439121936504926,
		"shard/0": 10006329267557691540,
	}
	for key, h := range want {
		if got := hash(key); got != h {
			t.Errorf("hash(%q) = %d, golden %d", key, got, h)
		}
	}
}
