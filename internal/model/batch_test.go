package model

// Determinism tests for the batch pipeline: every batched classifier
// operation must be bit-identical to its sequential counterpart for any
// worker count — the contract the concurrent layer is built on.

import (
	"testing"

	"hdcirc/internal/batch"
	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
)

var batchWorkerCounts = []int{1, 2, 3, 5, 8, 16}

// trainSet draws a small labeled training set with noisy class clusters so
// refinement has genuine misclassifications to chew on.
func trainSet(k, d, n int, seed uint64) (hvs []*bitvec.Vector, labels []int) {
	src := rng.Sub(seed, "batchtest/data")
	protos := make([]*bitvec.Vector, k)
	for i := range protos {
		protos[i] = bitvec.Random(d, src)
	}
	for i := 0; i < n; i++ {
		label := i % k
		hv := protos[label].Clone()
		// Flip ~30% of bits for heavy intra-class noise.
		for j := 0; j < d*3/10; j++ {
			hv.FlipBit(src.Intn(d))
		}
		hvs = append(hvs, hv)
		labels = append(labels, label)
	}
	return hvs, labels
}

func TestAddBatchMatchesSequentialAdd(t *testing.T) {
	const k, d, n = 5, 777, 160
	hvs, labels := trainSet(k, d, n, 1)
	for _, workers := range batchWorkerCounts {
		seq := NewClassifier(k, d, 42)
		for i, hv := range hvs {
			seq.Add(labels[i], hv)
		}
		par := NewClassifier(k, d, 42)
		par.AddBatch(batch.New(workers), labels, hvs)
		for cl := 0; cl < k; cl++ {
			a, b := seq.accs[cl].Counts(), par.accs[cl].Counts()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d class=%d: accumulator count %d differs", workers, cl, i)
				}
			}
			if !seq.ClassVector(cl).Equal(par.ClassVector(cl)) {
				t.Fatalf("workers=%d: class vector %d differs from sequential", workers, cl)
			}
		}
	}
}

func TestPredictBatchMatchesSequentialPredict(t *testing.T) {
	const k, d, n = 4, 1000, 120
	hvs, labels := trainSet(k, d, n, 2)
	queries, _ := trainSet(k, d, 60, 3)
	for _, workers := range batchWorkerCounts {
		c := NewClassifier(k, d, 7)
		c.AddBatch(batch.New(workers), labels, hvs)
		wantCl := make([]int, len(queries))
		wantDist := make([]float64, len(queries))
		for i, q := range queries {
			wantCl[i], wantDist[i] = c.Predict(q)
		}
		gotCl, gotDist := c.PredictBatch(batch.New(workers), queries)
		for i := range queries {
			if gotCl[i] != wantCl[i] || gotDist[i] != wantDist[i] {
				t.Fatalf("workers=%d sample=%d: PredictBatch (%d,%v) != sequential (%d,%v)",
					workers, i, gotCl[i], gotDist[i], wantCl[i], wantDist[i])
			}
		}
	}
}

func TestRefineBatchMatchesSequentialRefine(t *testing.T) {
	const k, d, n, epochs = 4, 512, 200, 6
	hvs, labels := trainSet(k, d, n, 4)
	build := func() *Classifier {
		c := NewClassifier(k, d, 99)
		for i, hv := range hvs {
			c.Add(labels[i], hv)
		}
		return c
	}
	seq := build()
	seqUpdates := seq.Refine(hvs, labels, epochs)
	for _, workers := range batchWorkerCounts {
		par := build()
		parUpdates := par.RefineBatch(batch.New(workers), hvs, labels, epochs)
		if len(parUpdates) != len(seqUpdates) {
			t.Fatalf("workers=%d: %d epochs vs sequential %d", workers, len(parUpdates), len(seqUpdates))
		}
		for e := range seqUpdates {
			if parUpdates[e] != seqUpdates[e] {
				t.Fatalf("workers=%d epoch %d: %d updates vs sequential %d",
					workers, e, parUpdates[e], seqUpdates[e])
			}
		}
		for cl := 0; cl < k; cl++ {
			if !par.ClassVector(cl).Equal(seq.ClassVector(cl)) {
				t.Fatalf("workers=%d: refined class vector %d differs from sequential", workers, cl)
			}
		}
	}
}

func TestAddBatchValidatesBeforeAccumulating(t *testing.T) {
	c := NewClassifier(3, 64, 1)
	hvs := []*bitvec.Vector{bitvec.New(64), bitvec.New(64)}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddBatch accepted an out-of-range class")
			}
		}()
		c.AddBatch(batch.New(2), []int{0, 7}, hvs)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddBatch accepted a wrong-dimension sample")
			}
		}()
		c.AddBatch(batch.New(2), []int{0, 1}, []*bitvec.Vector{bitvec.New(64), bitvec.New(65)})
	}()
	for cl := 0; cl < 3; cl++ {
		if c.accs[cl].N() != 0 {
			t.Errorf("class %d accumulated %d samples before the panic", cl, c.accs[cl].N())
		}
	}
}
