package model

import (
	"fmt"

	"hdcirc/internal/batch"
	"hdcirc/internal/bitvec"
)

// Batched training and inference. Every method here is bit-identical to
// its sequential counterpart for any pool size: accumulation parallelizes
// across classes (integer counter additions commute, and each class is
// owned by exactly one worker), prediction parallelizes across samples
// (each sample writes only its own output slot), and refinement keeps the
// accumulator updates — the only order-sensitive-looking part — in a
// sequential section, exactly mirroring Refine's epoch structure and tie
// coin consumption.

// AddBatch bundles many encoded training samples into their class
// accumulators across the pool and invalidates the finalized prototypes.
// It panics when the slices disagree in length, any class is out of range,
// or any sample has the wrong dimension; all validation happens before any
// accumulator is touched, so on panic no sample has been accumulated.
func (c *Classifier) AddBatch(p *batch.Pool, classes []int, hvs []*bitvec.Vector) {
	if len(classes) != len(hvs) {
		panic(fmt.Sprintf("model: %d classes but %d samples", len(classes), len(hvs)))
	}
	byClass := make([][]int, c.k)
	for i, cl := range classes {
		c.checkClass(cl)
		if hvs[i].Dim() != c.d {
			panic(fmt.Sprintf("model: sample %d has dimension %d, classifier %d", i, hvs[i].Dim(), c.d))
		}
		byClass[cl] = append(byClass[cl], i)
	}
	p.ForEach(c.k, func(cl int) {
		acc := c.accs[cl]
		for _, i := range byClass[cl] {
			acc.Add(hvs[i])
		}
	})
	c.class.Store(nil)
}

// PredictBatch classifies every sample across the pool, returning the
// predicted classes and normalized distances in input order. The result is
// bit-identical to calling Predict sequentially.
func (c *Classifier) PredictBatch(p *batch.Pool, hvs []*bitvec.Vector) (classes []int, distances []float64) {
	c.finalized() // finalize once up front rather than racing in the workers
	classes = make([]int, len(hvs))
	distances = make([]float64, len(hvs))
	p.ForEach(len(hvs), func(i int) {
		classes[i], distances[i] = c.Predict(hvs[i])
	})
	return classes, distances
}

// RefineBatch is Refine with the per-epoch prediction pass fanned out
// across the pool. Within an epoch every sample is predicted against the
// epoch-start prototypes (exactly as Refine does — prototypes never change
// mid-epoch), so parallelizing the predictions and applying the
// accumulator updates in a sequential pass reproduces Refine's result and
// tie-coin stream bit for bit, for any worker count.
func (c *Classifier) RefineBatch(p *batch.Pool, hvs []*bitvec.Vector, labels []int, epochs int) []int {
	if len(hvs) != len(labels) {
		panic(fmt.Sprintf("model: %d samples but %d labels", len(hvs), len(labels)))
	}
	preds := make([]int, len(hvs))
	updates := make([]int, 0, epochs)
	for e := 0; e < epochs; e++ {
		c.Finalize()
		p.ForEach(len(hvs), func(i int) {
			preds[i], _ = c.Predict(hvs[i])
		})
		n := 0
		for i, hv := range hvs {
			if preds[i] != labels[i] {
				c.accs[labels[i]].Add(hv)
				c.accs[preds[i]].Sub(hv)
				n++
			}
		}
		updates = append(updates, n)
		c.class.Store(nil)
		if n == 0 {
			break
		}
	}
	c.Finalize()
	return updates
}
