package model

import (
	"fmt"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/index"
	"hdcirc/internal/rng"
)

// largeKFixture trains one sample per class so every prototype is that
// sample exactly — queries near a prototype have an unambiguous answer.
func largeKFixture(k, d int, cfg index.Config) (*Classifier, []*bitvec.Vector) {
	c := NewClassifier(k, d, 3)
	c.SetIndexConfig(cfg)
	samples := make([]*bitvec.Vector, k)
	for i := range samples {
		samples[i] = bitvec.Random(d, rng.Sub(21, fmt.Sprintf("largek/%d", i)))
		c.Add(i, samples[i])
	}
	return c, samples
}

func TestPredictIndexedExactModeMatchesLinear(t *testing.T) {
	const k, d = 400, 768
	indexed, samples := largeKFixture(k, d, index.Config{MinSize: 100, Candidates: k})
	linear, _ := largeKFixture(k, d, index.Config{Disabled: true})
	if indexed.finalizedView().ix == nil {
		t.Fatal("index did not engage at k=400 with MinSize=100")
	}
	if linear.finalizedView().ix != nil {
		t.Fatal("disabled config built an index")
	}
	src := rng.Sub(9, "queries")
	for i := 0; i < 100; i++ {
		var q *bitvec.Vector
		if i%2 == 0 {
			q = bitvec.Random(d, src)
		} else {
			q = samples[i%k].Clone()
			for f := 0; f < d/4; f++ {
				q.FlipBit(int(src.Uint64() % uint64(d)))
			}
		}
		wc, wd := linear.Predict(q)
		gc, gd := indexed.Predict(q)
		if gc != wc || gd != wd {
			t.Fatalf("query %d: indexed (%d,%v), linear (%d,%v)", i, gc, gd, wc, wd)
		}
	}
}

func TestPredictIndexedApproximateRecall(t *testing.T) {
	const k, d = 3000, 2048
	c, samples := largeKFixture(k, d, index.Config{MinSize: 1000})
	src := rng.Sub(13, "noisy")
	hits := 0
	const queries = 200
	for i := 0; i < queries; i++ {
		target := (i * 61) % k
		q := samples[target].Clone()
		for b := 0; b < d; b++ {
			if src.Float64() < 0.3 {
				q.FlipBit(b)
			}
		}
		if got, _ := c.Predict(q); got == target {
			hits++
		}
	}
	if recall := float64(hits) / queries; recall < 0.99 {
		t.Fatalf("large-k indexed Predict recall %.4f below 0.99 (%d/%d)", recall, hits, queries)
	}
}

func TestPredictBelowThresholdStaysLinear(t *testing.T) {
	c, _ := largeKFixture(32, 256, index.DefaultConfig())
	if c.finalizedView().ix != nil {
		t.Fatal("default config indexed a 32-class model")
	}
}

func TestSetIndexConfigInvalidatesFinalization(t *testing.T) {
	c, samples := largeKFixture(200, 256, index.Config{Disabled: true})
	c.Predict(samples[0]) // finalize without index
	c.SetIndexConfig(index.Config{MinSize: 50, Candidates: 200})
	view := c.finalizedView()
	if view.ix == nil {
		t.Fatal("re-finalization after SetIndexConfig did not build the index")
	}
}
