package model

// Model serialization. A trained classifier is its class-vectors; a trained
// regressor is its model hypervector. Serializing the *finalized* binary
// form (not the integer accumulators) matches how HDC models deploy to
// embedded inference targets: inference needs only the binary prototypes.
//
//	classifier: magic "HCLS" | uint32 version | uint64 k | k framed vectors
//	regressor:  magic "HREG" | uint32 version | 1 framed vector

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/index"
)

const (
	classifierMagic      = "HCLS"
	classifierStateMagic = "HCST"
	regressorMagic       = "HREG"
	regressorStateMagic  = "HRST"
	modelVersion         = 1
)

// WriteTo serializes the finalized classifier prototypes. Training state
// (the accumulators) is intentionally not persisted; a loaded model serves
// inference only.
func (c *Classifier) WriteTo(w io.Writer) (int64, error) {
	class := c.finalized()
	header := make([]byte, 4+4+8)
	copy(header, classifierMagic)
	binary.LittleEndian.PutUint32(header[4:], modelVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(c.k))
	var n int64
	k, err := w.Write(header)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, m := range class {
		kk, err := m.WriteTo(w)
		n += kk
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadClassifier deserializes a classifier written by WriteTo. The result
// predicts exactly like the saved model; it can also keep training, but
// note the re-seeding caveat: the binary prototypes are loaded into fresh
// accumulators with UNIT weight, because the integer training counts are
// intentionally not persisted. A class trained on n samples therefore
// resumes as if it had seen one sample, so continued Add/Refine moves the
// prototype much faster than it would have moved the original model —
// fine for fine-tuning on fresh data, skewed if you expect the old
// training mass to keep anchoring the centroid. Keep the live accumulators
// (or a serve.Server warm start, which documents the same property) when
// refinement must continue exactly where it left off.
func ReadClassifier(r io.Reader, seed uint64) (*Classifier, error) {
	header := make([]byte, 4+4+8)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("model: reading classifier header: %w", err)
	}
	if string(header[:4]) != classifierMagic {
		return nil, errors.New("model: bad magic (not a classifier stream)")
	}
	if ver := binary.LittleEndian.Uint32(header[4:]); ver != modelVersion {
		return nil, fmt.Errorf("model: unsupported classifier version %d", ver)
	}
	k64 := binary.LittleEndian.Uint64(header[8:])
	if k64 == 0 || k64 > 1<<20 {
		return nil, fmt.Errorf("model: implausible class count %d", k64)
	}
	var vecs []*bitvec.Vector
	for i := 0; i < int(k64); i++ {
		v, err := bitvec.ReadVector(r)
		if err != nil {
			return nil, fmt.Errorf("model: reading class vector %d: %w", i, err)
		}
		vecs = append(vecs, v)
	}
	d := vecs[0].Dim()
	for i, v := range vecs {
		if v.Dim() != d {
			return nil, fmt.Errorf("model: class vector %d dimension %d != %d", i, v.Dim(), d)
		}
	}
	c := NewClassifier(int(k64), d, seed)
	for i, v := range vecs {
		c.accs[i].Add(v)
	}
	view := &classView{protos: vecs}
	if c.ixCfg.Enabled(c.k) {
		view.ix = index.New(vecs, c.ixCfg)
	}
	c.class.Store(view)
	return c, nil
}

// WriteStateTo serializes the classifier's EXACT training state: every
// class's integer accumulator (counters plus addition count), as k framed
// HACC streams after a small header. Unlike WriteTo, a state restored from
// this stream continues training — Add, Sub, Refine — bit-identically to
// the original model, which is what durable checkpoints (internal/serve)
// need so that replaying a write-ahead-log suffix equals a full replay.
//
//	stream: magic "HCST" | uint32 version | uint64 k | k HACC accumulators
func (c *Classifier) WriteStateTo(w io.Writer) (int64, error) {
	header := make([]byte, 4+4+8)
	copy(header, classifierStateMagic)
	binary.LittleEndian.PutUint32(header[4:], modelVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(c.k))
	var n int64
	k, err := w.Write(header)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, acc := range c.accs {
		kk, err := acc.WriteTo(w)
		n += kk
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// RestoreStateFrom replaces the classifier's accumulators with the exact
// training state written by WriteStateTo and invalidates the finalized
// prototypes. The stream must carry the same class count and dimension the
// classifier was built with. On error the classifier is unchanged.
func (c *Classifier) RestoreStateFrom(r io.Reader) error {
	header := make([]byte, 4+4+8)
	if _, err := io.ReadFull(r, header); err != nil {
		return fmt.Errorf("model: reading classifier state header: %w", err)
	}
	if string(header[:4]) != classifierStateMagic {
		return errors.New("model: bad magic (not a classifier state stream)")
	}
	if ver := binary.LittleEndian.Uint32(header[4:]); ver != modelVersion {
		return fmt.Errorf("model: unsupported classifier state version %d", ver)
	}
	if k := binary.LittleEndian.Uint64(header[8:]); k != uint64(c.k) {
		return fmt.Errorf("model: state stream carries %d classes, classifier has %d", k, c.k)
	}
	accs := make([]*bitvec.Accumulator, c.k)
	for i := range accs {
		acc, err := bitvec.ReadAccumulator(r)
		if err != nil {
			return fmt.Errorf("model: reading class %d accumulator: %w", i, err)
		}
		if acc.Dim() != c.d {
			return fmt.Errorf("model: class %d accumulator dimension %d, classifier %d", i, acc.Dim(), c.d)
		}
		accs[i] = acc
	}
	c.accs = accs
	c.class.Store(nil)
	return nil
}

// WriteTo serializes the finalized regression model hypervector.
func (r *Regressor) WriteTo(w io.Writer) (int64, error) {
	header := make([]byte, 4+4)
	copy(header, regressorMagic)
	binary.LittleEndian.PutUint32(header[4:], modelVersion)
	var n int64
	k, err := w.Write(header)
	n += int64(k)
	if err != nil {
		return n, err
	}
	kk, err := r.Model().WriteTo(w)
	return n + kk, err
}

// WriteStateTo serializes the regressor's exact training state (its
// accumulator) — the regression counterpart of Classifier.WriteStateTo.
//
//	stream: magic "HRST" | uint32 version | 1 HACC accumulator
func (r *Regressor) WriteStateTo(w io.Writer) (int64, error) {
	header := make([]byte, 4+4)
	copy(header, regressorStateMagic)
	binary.LittleEndian.PutUint32(header[4:], modelVersion)
	var n int64
	k, err := w.Write(header)
	n += int64(k)
	if err != nil {
		return n, err
	}
	kk, err := r.acc.WriteTo(w)
	return n + kk, err
}

// RestoreStateFrom replaces the regressor's accumulator with the exact
// state written by WriteStateTo and invalidates the finalized model. On
// error the regressor is unchanged.
func (r *Regressor) RestoreStateFrom(rd io.Reader) error {
	header := make([]byte, 4+4)
	if _, err := io.ReadFull(rd, header); err != nil {
		return fmt.Errorf("model: reading regressor state header: %w", err)
	}
	if string(header[:4]) != regressorStateMagic {
		return errors.New("model: bad magic (not a regressor state stream)")
	}
	if ver := binary.LittleEndian.Uint32(header[4:]); ver != modelVersion {
		return fmt.Errorf("model: unsupported regressor state version %d", ver)
	}
	acc, err := bitvec.ReadAccumulator(rd)
	if err != nil {
		return fmt.Errorf("model: reading regressor accumulator: %w", err)
	}
	if acc.Dim() != r.d {
		return fmt.Errorf("model: regressor accumulator dimension %d, regressor %d", acc.Dim(), r.d)
	}
	r.acc = acc
	r.model.Store(nil)
	return nil
}

// ReadRegressor deserializes a regressor written by WriteTo.
func ReadRegressor(rd io.Reader, seed uint64) (*Regressor, error) {
	header := make([]byte, 4+4)
	if _, err := io.ReadFull(rd, header); err != nil {
		return nil, fmt.Errorf("model: reading regressor header: %w", err)
	}
	if string(header[:4]) != regressorMagic {
		return nil, errors.New("model: bad magic (not a regressor stream)")
	}
	if ver := binary.LittleEndian.Uint32(header[4:]); ver != modelVersion {
		return nil, fmt.Errorf("model: unsupported regressor version %d", ver)
	}
	v, err := bitvec.ReadVector(rd)
	if err != nil {
		return nil, fmt.Errorf("model: reading model vector: %w", err)
	}
	reg := NewRegressor(v.Dim(), seed)
	reg.acc.Add(v)
	reg.model.Store(v)
	return reg, nil
}
