package model

import (
	"fmt"
	"sync"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
)

// TestConcurrentPredictAfterAdd hammers the lazy finalize-on-read path:
// after training invalidates the prototype cache, many goroutines race the
// first Predict/Scores/ClassVector. Under -race this used to report a data
// race on the cached prototype slice (and on the tie-coin stream); with the
// atomic + double-checked finalize every reader must also observe the same
// published prototypes.
func TestConcurrentPredictAfterAdd(t *testing.T) {
	const (
		d       = 1024
		k       = 8
		readers = 16
	)
	c := NewClassifier(k, d, 42)
	src := rng.New(7)
	samples := make([]*bitvec.Vector, 64)
	for i := range samples {
		samples[i] = bitvec.Random(d, src)
		c.Add(i%k, samples[i])
	}
	// Cache is cold here: the first finalize happens inside the racing reads.
	type result struct {
		preds  []int
		protos []*bitvec.Vector
	}
	results := make([]result, readers)
	var wg sync.WaitGroup
	wg.Add(readers)
	for g := 0; g < readers; g++ {
		go func(g int) {
			defer wg.Done()
			res := result{preds: make([]int, len(samples))}
			for i, hv := range samples {
				res.preds[i], _ = c.Predict(hv)
				_ = c.Scores(hv)
			}
			for i := 0; i < k; i++ {
				res.protos = append(res.protos, c.ClassVector(i))
			}
			results[g] = res
		}(g)
	}
	wg.Wait()
	for g := 1; g < readers; g++ {
		for i := range samples {
			if results[g].preds[i] != results[0].preds[i] {
				t.Fatalf("reader %d predicted %d for sample %d, reader 0 predicted %d",
					g, results[g].preds[i], i, results[0].preds[i])
			}
		}
		for i := 0; i < k; i++ {
			if !results[g].protos[i].Equal(results[0].protos[i]) {
				t.Fatalf("reader %d saw a different prototype for class %d", g, i)
			}
		}
	}
}

// TestConcurrentRegressorModel races the regressor's lazy finalize.
func TestConcurrentRegressorModel(t *testing.T) {
	const d = 1024
	r := NewRegressor(d, 3)
	src := rng.New(9)
	var pairs [][2]*bitvec.Vector
	for i := 0; i < 32; i++ {
		pairs = append(pairs, [2]*bitvec.Vector{bitvec.Random(d, src), bitvec.Random(d, src)})
		r.Add(pairs[i][0], pairs[i][1])
	}
	models := make([]*bitvec.Vector, 16)
	var wg sync.WaitGroup
	wg.Add(len(models))
	for g := range models {
		go func(g int) {
			defer wg.Done()
			models[g] = r.Model()
			for _, p := range pairs {
				_ = r.PredictVector(p[0])
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(models); g++ {
		if !models[g].Equal(models[0]) {
			t.Fatalf("reader %d saw a different regressor model", g)
		}
	}
}

// TestSetTieVectorsDeterministic checks that fixed tie vectors make
// finalization idempotent and a pure function of the accumulators:
// repeated Finalize calls and a second classifier fed the same samples in
// a different order produce identical prototypes.
func TestSetTieVectorsDeterministic(t *testing.T) {
	const (
		d = 512
		k = 4
	)
	tvs := make([]*bitvec.Vector, k)
	for i := range tvs {
		tvs[i] = bitvec.Random(d, rng.Sub(99, fmt.Sprintf("tie/%d", i)))
	}
	build := func(order []int, samples []*bitvec.Vector, labels []int) *Classifier {
		c := NewClassifier(k, d, 1)
		c.SetTieVectors(tvs)
		for _, i := range order {
			c.Add(labels[i], samples[i])
		}
		return c
	}
	src := rng.New(5)
	var samples []*bitvec.Vector
	var labels []int
	order := make([]int, 40)
	for i := range order {
		// Duplicate pairs of samples per class so accumulator ties (even
		// counts summing to zero) actually occur and the tie vector matters.
		v := bitvec.Random(d, src)
		samples = append(samples, v, v.Not())
		labels = append(labels, i%k, i%k)
	}
	samples = samples[:40]
	labels = labels[:40]
	for i := range order {
		order[i] = i
	}
	a := build(order, samples, labels)
	rev := make([]int, len(order))
	for i := range rev {
		rev[i] = order[len(order)-1-i]
	}
	b := build(rev, samples, labels)
	a.Finalize()
	a.Finalize() // idempotent: consumes no stream state
	for i := 0; i < k; i++ {
		if !a.ClassVector(i).Equal(b.ClassVector(i)) {
			t.Fatalf("class %d prototype depends on insertion order under fixed tie vectors", i)
		}
	}
}

// TestClassifierSub checks Sub is the exact inverse of Add on the
// accumulators: adding then subtracting a batch restores the prototypes.
func TestClassifierSub(t *testing.T) {
	const (
		d = 512
		k = 3
	)
	tvs := make([]*bitvec.Vector, k)
	for i := range tvs {
		tvs[i] = bitvec.Random(d, rng.Sub(7, fmt.Sprintf("tie/%d", i)))
	}
	c := NewClassifier(k, d, 1)
	c.SetTieVectors(tvs)
	src := rng.New(8)
	for i := 0; i < 30; i++ {
		c.Add(i%k, bitvec.Random(d, src))
	}
	before := make([]*bitvec.Vector, k)
	for i := range before {
		before[i] = c.ClassVector(i)
	}
	extra := bitvec.Random(d, src)
	c.Add(1, extra)
	if c.ClassVector(1).Equal(before[1]) {
		// Not strictly guaranteed for an arbitrary vector, but with random
		// data a no-op add would indicate Sub/Add testing nothing.
		t.Log("add did not change prototype; test weaker than intended")
	}
	c.Sub(1, extra)
	for i := 0; i < k; i++ {
		if !c.ClassVector(i).Equal(before[i]) {
			t.Fatalf("class %d prototype not restored after Add+Sub", i)
		}
	}
}
