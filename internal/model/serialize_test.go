package model

import (
	"bytes"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
)

func TestClassifierSerializeRoundTrip(t *testing.T) {
	d := 4096
	r := rng.New(201)
	c := NewClassifier(4, d, 202)
	protos := make([]*bitvec.Vector, 4)
	for class := range protos {
		protos[class] = bitvec.Random(d, r)
		for s := 0; s < 5; s++ {
			c.Add(class, noisy(protos[class], 0.1, r))
		}
	}
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo count mismatch: %d vs %d", n, buf.Len())
	}
	loaded, err := ReadClassifier(&buf, 202)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumClasses() != 4 || loaded.Dim() != d {
		t.Fatalf("loaded shape wrong: %d classes, d=%d", loaded.NumClasses(), loaded.Dim())
	}
	// Identical prototypes → identical predictions.
	for i := 0; i < 4; i++ {
		if !loaded.ClassVector(i).Equal(c.ClassVector(i)) {
			t.Fatalf("class vector %d differs after round trip", i)
		}
	}
	for i := 0; i < 20; i++ {
		q := noisy(protos[i%4], 0.2, r)
		p1, _ := c.Predict(q)
		p2, _ := loaded.Predict(q)
		if p1 != p2 {
			t.Fatalf("prediction diverges after round trip")
		}
	}
}

func TestLoadedClassifierCanKeepTraining(t *testing.T) {
	d := 2048
	r := rng.New(203)
	c := NewClassifier(2, d, 204)
	a, b := bitvec.Random(d, r), bitvec.Random(d, r)
	c.Add(0, a)
	c.Add(1, b)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadClassifier(&buf, 204)
	if err != nil {
		t.Fatal(err)
	}
	loaded.Add(0, a) // must not panic; prototypes refresh
	if pred, _ := loaded.Predict(a); pred != 0 {
		t.Error("post-load training broke predictions")
	}
}

func TestRegressorSerializeRoundTrip(t *testing.T) {
	d := 4096
	r := rng.New(205)
	reg := NewRegressor(d, 206)
	for i := 0; i < 7; i++ {
		reg.Add(bitvec.Random(d, r), bitvec.Random(d, r))
	}
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadRegressor(&buf, 206)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Model().Equal(reg.Model()) {
		t.Error("model vector differs after round trip")
	}
	q := bitvec.Random(d, r)
	if !loaded.PredictVector(q).Equal(reg.PredictVector(q)) {
		t.Error("prediction vector differs after round trip")
	}
}

func TestModelDeserializeRejectsGarbage(t *testing.T) {
	if _, err := ReadClassifier(bytes.NewReader(nil), 1); err == nil {
		t.Error("empty classifier stream accepted")
	}
	if _, err := ReadRegressor(bytes.NewReader(nil), 1); err == nil {
		t.Error("empty regressor stream accepted")
	}
	if _, err := ReadClassifier(bytes.NewReader([]byte("XXXX\x01\x00\x00\x00\x02\x00\x00\x00\x00\x00\x00\x00")), 1); err == nil {
		t.Error("bad classifier magic accepted")
	}
	if _, err := ReadRegressor(bytes.NewReader([]byte("YYYY\x01\x00\x00\x00")), 1); err == nil {
		t.Error("bad regressor magic accepted")
	}
	// Classifier header claiming classes but no vectors.
	var buf bytes.Buffer
	buf.WriteString("HCLS")
	buf.Write([]byte{1, 0, 0, 0})
	buf.Write([]byte{2, 0, 0, 0, 0, 0, 0, 0})
	if _, err := ReadClassifier(&buf, 1); err == nil {
		t.Error("truncated classifier accepted")
	}
}

// TestClassifierStateRoundTrip pins the property the durable serving layer
// depends on: a classifier restored from WriteStateTo continues training
// bit-identically to the original — the unit-weight caveat of the HCLS
// prototype format does not apply to the exact-state format.
func TestClassifierStateRoundTrip(t *testing.T) {
	const k, d = 4, 512
	src := rng.New(31)
	a := NewClassifier(k, d, 9)
	tvs := make([]*bitvec.Vector, k)
	for i := range tvs {
		tvs[i] = bitvec.Random(d, src)
	}
	a.SetTieVectors(tvs)
	for i := 0; i < 40; i++ {
		a.Add(i%k, bitvec.Random(d, src))
	}

	var buf bytes.Buffer
	if _, err := a.WriteStateTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewClassifier(k, d, 9)
	b.SetTieVectors(tvs)
	if err := b.RestoreStateFrom(&buf); err != nil {
		t.Fatal(err)
	}

	// Continue training both identically — including Sub, which is where
	// unit-weight restores diverge — and compare every prototype.
	extra := bitvec.Random(d, rng.New(77))
	a.Add(1, extra)
	b.Add(1, extra)
	a.Sub(2, extra)
	b.Sub(2, extra)
	for c := 0; c < k; c++ {
		if !a.ClassVector(c).Equal(b.ClassVector(c)) {
			t.Fatalf("class %d diverged after restored training", c)
		}
	}
}

func TestRegressorStateRoundTrip(t *testing.T) {
	const d = 512
	src := rng.New(33)
	a := NewRegressor(d, 5)
	a.SetTieVector(bitvec.Random(d, src))
	for i := 0; i < 9; i++ {
		a.Add(bitvec.Random(d, src), bitvec.Random(d, src))
	}
	var buf bytes.Buffer
	if _, err := a.WriteStateTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewRegressor(d, 5)
	b.SetTieVector(a.tieVec)
	if err := b.RestoreStateFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() {
		t.Fatalf("restored pair count %d, want %d", b.N(), a.N())
	}
	pair := bitvec.Random(d, rng.New(78))
	a.Add(pair, pair)
	b.Add(pair, pair)
	if !a.Model().Equal(b.Model()) {
		t.Fatal("regressor model diverged after restored training")
	}
}

func TestRestoreStateRejectsShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	a := NewClassifier(3, 256, 1)
	if _, err := a.WriteStateTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := NewClassifier(4, 256, 1).RestoreStateFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("class-count mismatch accepted")
	}
	if err := NewClassifier(3, 128, 1).RestoreStateFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := NewClassifier(3, 256, 1).RestoreStateFrom(bytes.NewReader(buf.Bytes()[:8])); err == nil {
		t.Error("truncated state stream accepted")
	}
}

func TestClassifierCrossStreamRoundTrip(t *testing.T) {
	// Classifier → Regressor reader must fail cleanly, not misparse.
	d := 512
	c := NewClassifier(2, d, 207)
	c.Add(0, bitvec.Random(d, rng.New(208)))
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRegressor(&buf, 1); err == nil {
		t.Error("regressor reader accepted a classifier stream")
	}
}
