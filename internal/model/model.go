// Package model implements the paper's two learning frameworks on top of
// encoded hypervectors.
//
// Classification (Section 2.2): each class accumulates the bundle of its
// training samples' encodings into a class-vector prototype; inference
// returns the class whose prototype is nearest to the query. An optional
// online-refinement pass (the standard retraining extension in the HDC
// literature) moves misclassified samples from the wrong prototype to the
// right one on the integer accumulators.
//
// Regression (Section 2.3): a single model hypervector memorizes the bundle
// of φ(x) ⊗ φℓ(y) pairs. Prediction unbinds the query (binding is its own
// inverse), cleans up against the label basis and decodes.
//
// # Concurrency
//
// Reads (Predict, Scores, ClassVector, Model, PredictVector) are safe to
// call from any number of goroutines, including the first read after
// training: the lazily finalized prototypes live behind an atomic pointer
// and the finalization itself is serialized by a mutex, so exactly one
// goroutine thresholds the accumulators while the rest wait and then share
// the published result. Writes (Add, Sub, Refine, the batch variants) are
// NOT safe concurrently with each other or with reads — serve them through
// a single writer (see internal/serve for the lock-free snapshot layer
// built on top of this contract).
package model

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/embed"
	"hdcirc/internal/index"
	"hdcirc/internal/rng"
)

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

// Classifier is the centroid HDC classification model M = {M_1, …, M_k}.
type Classifier struct {
	k, d    int
	accs    []*bitvec.Accumulator
	tie     bitvec.TieBreak
	src     *rng.Stream
	tieVecs []*bitvec.Vector // optional fixed per-class tie vectors; see SetTieVectors
	ixCfg   index.Config     // sketch-index knobs for large-k Predict; see SetIndexConfig

	mu    sync.Mutex                // serializes finalization
	class atomic.Pointer[classView] // finalized prototypes (+ index); nil until finalize
}

// classView is one finalized generation of the prototypes: the thresholded
// class vectors plus, past the index threshold, the sketch index Predict
// scans instead of the full list. Published as a unit through the atomic
// pointer so readers never see a prototype/index mismatch.
type classView struct {
	protos []*bitvec.Vector
	ix     *index.Index // nil below the threshold or when disabled
}

// NewClassifier creates a classifier over k classes and dimension d. Ties
// in the prototype majority are broken randomly from a substream of seed.
func NewClassifier(k, d int, seed uint64) *Classifier {
	if k <= 0 {
		panic(fmt.Sprintf("model: class count must be positive, got %d", k))
	}
	if d <= 0 {
		panic(fmt.Sprintf("model: dimension must be positive, got %d", d))
	}
	accs := make([]*bitvec.Accumulator, k)
	for i := range accs {
		accs[i] = bitvec.NewAccumulator(d)
	}
	return &Classifier{
		k: k, d: d,
		accs: accs,
		tie:  bitvec.TieRandom,
		src:  rng.Sub(seed, "classifier/ties"),
	}
}

// NumClasses returns k.
func (c *Classifier) NumClasses() int { return c.k }

// Dim returns the hypervector dimension.
func (c *Classifier) Dim() int { return c.d }

// SetTieVectors switches finalization from the default random tie coins to
// fixed per-class tie vectors: class i's prototype becomes
// accs[i].ThresholdTieVector(tvs[i]). This makes Finalize a pure,
// idempotent function of the accumulator state — the same accumulators
// always threshold to the same prototypes, regardless of how many times or
// in what order classes are finalized — which is what snapshot-based
// serving (internal/serve) and cross-shard determinism need. Pass vectors
// of the classifier's dimension, one per class; call before training.
func (c *Classifier) SetTieVectors(tvs []*bitvec.Vector) {
	if len(tvs) != c.k {
		panic(fmt.Sprintf("model: %d tie vectors for %d classes", len(tvs), c.k))
	}
	for i, tv := range tvs {
		if tv.Dim() != c.d {
			panic(fmt.Sprintf("model: tie vector %d has dimension %d, classifier %d", i, tv.Dim(), c.d))
		}
	}
	c.tieVecs = tvs
	c.class.Store(nil)
}

// SetIndexConfig replaces the classifier's sketch-index configuration (see
// index.Config). With the defaults, Predict switches from the exact linear
// scan to sublinear indexed search once the class count reaches
// index.DefaultConfig().MinSize; set Disabled for exact-only prediction at
// any k, or Candidates >= k for an indexed-but-exact scan. Invalidates the
// finalized prototypes; call before concurrent reads start.
func (c *Classifier) SetIndexConfig(cfg index.Config) {
	c.ixCfg = cfg
	c.class.Store(nil)
}

// Add bundles one encoded training sample into its class accumulator and
// invalidates the finalized prototypes.
func (c *Classifier) Add(class int, hv *bitvec.Vector) {
	c.checkClass(class)
	c.accs[class].Add(hv)
	c.class.Store(nil)
}

// Sub removes one encoded sample's weight from a class accumulator — the
// inverse of Add, used by online refinement (move a misclassified sample
// out of the wrongly predicted class) and by serving-layer un-learning.
func (c *Classifier) Sub(class int, hv *bitvec.Vector) {
	c.checkClass(class)
	c.accs[class].Sub(hv)
	c.class.Store(nil)
}

// Finalize thresholds the accumulators into class-vectors. It must be
// called after training (and after any refinement) before Predict; Predict
// calls it implicitly when needed. Explicit calls always re-threshold
// (consuming fresh tie coins unless SetTieVectors made finalization
// deterministic).
func (c *Classifier) Finalize() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finalizeLocked()
}

// finalizeLocked thresholds under c.mu and publishes the prototype view,
// building the sketch index when the class count is past the configured
// threshold.
func (c *Classifier) finalizeLocked() *classView {
	vs := make([]*bitvec.Vector, c.k)
	for i, acc := range c.accs {
		if c.tieVecs != nil {
			vs[i] = acc.ThresholdTieVector(c.tieVecs[i])
		} else {
			vs[i] = acc.Threshold(c.tie, c.src)
		}
	}
	view := &classView{protos: vs}
	if c.ixCfg.Enabled(c.k) {
		view.ix = index.New(vs, c.ixCfg)
	}
	c.class.Store(view)
	return view
}

// finalizedView returns the published prototype view, finalizing at most
// once when the cache is empty. Safe for concurrent callers: the fast path
// is a single atomic load, and the slow path double-checks under the mutex
// so racing first readers agree on one finalization.
func (c *Classifier) finalizedView() *classView {
	if p := c.class.Load(); p != nil {
		return p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.class.Load(); p != nil {
		return p
	}
	return c.finalizeLocked()
}

// finalized returns the published prototype slice (see finalizedView).
func (c *Classifier) finalized() []*bitvec.Vector {
	return c.finalizedView().protos
}

// ClassVector returns class i's prototype, finalizing if necessary. The
// returned vector is shared — do not mutate it.
func (c *Classifier) ClassVector(i int) *bitvec.Vector {
	c.checkClass(i)
	return c.finalized()[i]
}

// Predict returns the class whose prototype is most similar to the query,
// and the corresponding normalized distance. Below the index threshold the
// scan runs on the fused nearest-neighbor kernel (no per-class allocation
// or float division, early exit per candidate); for large class counts it
// goes through the sketch index built at finalization (sublinear candidate
// generation, exact re-rank — see SetIndexConfig). Ties resolve to the
// lowest class index in both paths.
func (c *Classifier) Predict(q *bitvec.Vector) (class int, distance float64) {
	view := c.finalizedView()
	var idx, hd int
	if view.ix != nil {
		idx, hd = view.ix.Nearest(q)
	} else {
		idx, hd = bitvec.Nearest(q, view.protos)
	}
	return idx, float64(hd) / float64(c.d)
}

// Scores returns the similarity of the query to every class prototype.
func (c *Classifier) Scores(q *bitvec.Vector) []float64 {
	hds := bitvec.DistanceMany(q, c.finalized(), make([]int, c.k))
	out := make([]float64, c.k)
	for i, hd := range hds {
		out[i] = 1 - float64(hd)/float64(c.d)
	}
	return out
}

// Refine performs epochs of online retraining over the given training set:
// each misclassified sample is added to its true class accumulator and
// subtracted from the wrongly predicted one, and prototypes are
// re-thresholded after every epoch. It returns the number of updates per
// epoch, which reaching zero means the training set is fit. This is the
// standard perceptron-style HDC retraining extension; with epochs = 0 the
// model is the paper's single-pass centroid model.
func (c *Classifier) Refine(hvs []*bitvec.Vector, labels []int, epochs int) []int {
	if len(hvs) != len(labels) {
		panic(fmt.Sprintf("model: %d samples but %d labels", len(hvs), len(labels)))
	}
	updates := make([]int, 0, epochs)
	for e := 0; e < epochs; e++ {
		c.Finalize()
		n := 0
		for i, hv := range hvs {
			pred, _ := c.Predict(hv)
			if pred != labels[i] {
				c.accs[labels[i]].Add(hv)
				c.accs[pred].Sub(hv)
				n++
			}
		}
		updates = append(updates, n)
		c.class.Store(nil)
		if n == 0 {
			break
		}
	}
	c.Finalize()
	return updates
}

func (c *Classifier) checkClass(i int) {
	if i < 0 || i >= c.k {
		panic(fmt.Sprintf("model: class %d outside [0,%d)", i, c.k))
	}
}

// ---------------------------------------------------------------------------
// Regressor
// ---------------------------------------------------------------------------

// Regressor is the single-hypervector regression model
// M = ⊕_i φ(x_i) ⊗ φℓ(y_i).
type Regressor struct {
	d      int
	acc    *bitvec.Accumulator
	tie    bitvec.TieBreak
	src    *rng.Stream
	tieVec *bitvec.Vector // optional fixed tie vector; see SetTieVector

	mu    sync.Mutex                    // serializes finalization
	model atomic.Pointer[bitvec.Vector] // thresholded; nil until finalize
}

// NewRegressor creates a regressor over dimension d; majority ties are
// broken randomly from a substream of seed.
func NewRegressor(d int, seed uint64) *Regressor {
	if d <= 0 {
		panic(fmt.Sprintf("model: dimension must be positive, got %d", d))
	}
	return &Regressor{
		d:   d,
		acc: bitvec.NewAccumulator(d),
		tie: bitvec.TieRandom,
		src: rng.Sub(seed, "regressor/ties"),
	}
}

// Dim returns the hypervector dimension.
func (r *Regressor) Dim() int { return r.d }

// SetTieVector switches finalization to a fixed tie vector, making it a
// pure, idempotent function of the accumulator state (see
// Classifier.SetTieVectors). Call before training.
func (r *Regressor) SetTieVector(tv *bitvec.Vector) {
	if tv.Dim() != r.d {
		panic(fmt.Sprintf("model: tie vector has dimension %d, regressor %d", tv.Dim(), r.d))
	}
	r.tieVec = tv
	r.model.Store(nil)
}

// Add memorizes one training pair: the binding of the encoded sample and
// the encoded label is bundled into the model.
func (r *Regressor) Add(sampleHV, labelHV *bitvec.Vector) {
	r.acc.Add(sampleHV.Xor(labelHV))
	r.model.Store(nil)
}

// N returns the number of memorized pairs.
func (r *Regressor) N() int { return r.acc.N() }

// Finalize thresholds the accumulator into the model hypervector.
func (r *Regressor) Finalize() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finalizeLocked()
}

func (r *Regressor) finalizeLocked() *bitvec.Vector {
	var m *bitvec.Vector
	if r.tieVec != nil {
		m = r.acc.ThresholdTieVector(r.tieVec)
	} else {
		m = r.acc.Threshold(r.tie, r.src)
	}
	r.model.Store(m)
	return m
}

// Model returns the model hypervector, finalizing if needed. Safe for
// concurrent readers (shared — do not mutate the result).
func (r *Regressor) Model() *bitvec.Vector {
	if m := r.model.Load(); m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.model.Load(); m != nil {
		return m
	}
	return r.finalizeLocked()
}

// PredictVector returns the approximate label hypervector M ⊗ φ(x̂); the
// caller cleans it up against a label basis (e.g. ScalarEncoder.Decode).
func (r *Regressor) PredictVector(sampleHV *bitvec.Vector) *bitvec.Vector {
	return r.Model().Xor(sampleHV)
}

// Predict decodes the approximate label hypervector against the label
// encoder and returns the value. The unbinding M ⊗ φ(x̂) and the
// nearest-label scan run as one fused kernel; no intermediate vector is
// allocated.
func (r *Regressor) Predict(sampleHV *bitvec.Vector, labels *embed.ScalarEncoder) float64 {
	return labels.DecodeBound(r.Model(), sampleHV)
}
