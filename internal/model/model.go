// Package model implements the paper's two learning frameworks on top of
// encoded hypervectors.
//
// Classification (Section 2.2): each class accumulates the bundle of its
// training samples' encodings into a class-vector prototype; inference
// returns the class whose prototype is nearest to the query. An optional
// online-refinement pass (the standard retraining extension in the HDC
// literature) moves misclassified samples from the wrong prototype to the
// right one on the integer accumulators.
//
// Regression (Section 2.3): a single model hypervector memorizes the bundle
// of φ(x) ⊗ φℓ(y) pairs. Prediction unbinds the query (binding is its own
// inverse), cleans up against the label basis and decodes.
package model

import (
	"fmt"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/embed"
	"hdcirc/internal/rng"
)

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

// Classifier is the centroid HDC classification model M = {M_1, …, M_k}.
type Classifier struct {
	k, d  int
	accs  []*bitvec.Accumulator
	class []*bitvec.Vector // thresholded prototypes; nil until Finalize
	tie   bitvec.TieBreak
	src   *rng.Stream
}

// NewClassifier creates a classifier over k classes and dimension d. Ties
// in the prototype majority are broken randomly from a substream of seed.
func NewClassifier(k, d int, seed uint64) *Classifier {
	if k <= 0 {
		panic(fmt.Sprintf("model: class count must be positive, got %d", k))
	}
	if d <= 0 {
		panic(fmt.Sprintf("model: dimension must be positive, got %d", d))
	}
	accs := make([]*bitvec.Accumulator, k)
	for i := range accs {
		accs[i] = bitvec.NewAccumulator(d)
	}
	return &Classifier{
		k: k, d: d,
		accs: accs,
		tie:  bitvec.TieRandom,
		src:  rng.Sub(seed, "classifier/ties"),
	}
}

// NumClasses returns k.
func (c *Classifier) NumClasses() int { return c.k }

// Dim returns the hypervector dimension.
func (c *Classifier) Dim() int { return c.d }

// Add bundles one encoded training sample into its class accumulator and
// invalidates the finalized prototypes.
func (c *Classifier) Add(class int, hv *bitvec.Vector) {
	c.checkClass(class)
	c.accs[class].Add(hv)
	c.class = nil
}

// Finalize thresholds the accumulators into class-vectors. It must be
// called after training (and after any refinement) before Predict; Predict
// calls it implicitly when needed.
func (c *Classifier) Finalize() {
	c.class = make([]*bitvec.Vector, c.k)
	for i, acc := range c.accs {
		c.class[i] = acc.Threshold(c.tie, c.src)
	}
}

// ClassVector returns class i's prototype, finalizing if necessary.
func (c *Classifier) ClassVector(i int) *bitvec.Vector {
	c.checkClass(i)
	if c.class == nil {
		c.Finalize()
	}
	return c.class[i]
}

// Predict returns the class whose prototype is most similar to the query,
// and the corresponding normalized distance. The scan runs on the fused
// nearest-neighbor kernel (no per-class allocation or float division, early
// exit per candidate); ties resolve to the lowest class index.
func (c *Classifier) Predict(q *bitvec.Vector) (class int, distance float64) {
	if c.class == nil {
		c.Finalize()
	}
	idx, hd := bitvec.Nearest(q, c.class)
	return idx, float64(hd) / float64(c.d)
}

// Scores returns the similarity of the query to every class prototype.
func (c *Classifier) Scores(q *bitvec.Vector) []float64 {
	if c.class == nil {
		c.Finalize()
	}
	hds := bitvec.DistanceMany(q, c.class, make([]int, c.k))
	out := make([]float64, c.k)
	for i, hd := range hds {
		out[i] = 1 - float64(hd)/float64(c.d)
	}
	return out
}

// Refine performs epochs of online retraining over the given training set:
// each misclassified sample is added to its true class accumulator and
// subtracted from the wrongly predicted one, and prototypes are
// re-thresholded after every epoch. It returns the number of updates per
// epoch, which reaching zero means the training set is fit. This is the
// standard perceptron-style HDC retraining extension; with epochs = 0 the
// model is the paper's single-pass centroid model.
func (c *Classifier) Refine(hvs []*bitvec.Vector, labels []int, epochs int) []int {
	if len(hvs) != len(labels) {
		panic(fmt.Sprintf("model: %d samples but %d labels", len(hvs), len(labels)))
	}
	updates := make([]int, 0, epochs)
	for e := 0; e < epochs; e++ {
		c.Finalize()
		n := 0
		for i, hv := range hvs {
			pred, _ := c.Predict(hv)
			if pred != labels[i] {
				c.accs[labels[i]].Add(hv)
				c.accs[pred].Sub(hv)
				n++
			}
		}
		updates = append(updates, n)
		c.class = nil
		if n == 0 {
			break
		}
	}
	c.Finalize()
	return updates
}

func (c *Classifier) checkClass(i int) {
	if i < 0 || i >= c.k {
		panic(fmt.Sprintf("model: class %d outside [0,%d)", i, c.k))
	}
}

// ---------------------------------------------------------------------------
// Regressor
// ---------------------------------------------------------------------------

// Regressor is the single-hypervector regression model
// M = ⊕_i φ(x_i) ⊗ φℓ(y_i).
type Regressor struct {
	d     int
	acc   *bitvec.Accumulator
	model *bitvec.Vector // thresholded; nil until Finalize
	tie   bitvec.TieBreak
	src   *rng.Stream
}

// NewRegressor creates a regressor over dimension d; majority ties are
// broken randomly from a substream of seed.
func NewRegressor(d int, seed uint64) *Regressor {
	if d <= 0 {
		panic(fmt.Sprintf("model: dimension must be positive, got %d", d))
	}
	return &Regressor{
		d:   d,
		acc: bitvec.NewAccumulator(d),
		tie: bitvec.TieRandom,
		src: rng.Sub(seed, "regressor/ties"),
	}
}

// Dim returns the hypervector dimension.
func (r *Regressor) Dim() int { return r.d }

// Add memorizes one training pair: the binding of the encoded sample and
// the encoded label is bundled into the model.
func (r *Regressor) Add(sampleHV, labelHV *bitvec.Vector) {
	r.acc.Add(sampleHV.Xor(labelHV))
	r.model = nil
}

// N returns the number of memorized pairs.
func (r *Regressor) N() int { return r.acc.N() }

// Finalize thresholds the accumulator into the model hypervector.
func (r *Regressor) Finalize() {
	r.model = r.acc.Threshold(r.tie, r.src)
}

// Model returns the model hypervector, finalizing if needed.
func (r *Regressor) Model() *bitvec.Vector {
	if r.model == nil {
		r.Finalize()
	}
	return r.model
}

// PredictVector returns the approximate label hypervector M ⊗ φ(x̂); the
// caller cleans it up against a label basis (e.g. ScalarEncoder.Decode).
func (r *Regressor) PredictVector(sampleHV *bitvec.Vector) *bitvec.Vector {
	return r.Model().Xor(sampleHV)
}

// Predict decodes the approximate label hypervector against the label
// encoder and returns the value. The unbinding M ⊗ φ(x̂) and the
// nearest-label scan run as one fused kernel; no intermediate vector is
// allocated.
func (r *Regressor) Predict(sampleHV *bitvec.Vector, labels *embed.ScalarEncoder) float64 {
	return labels.DecodeBound(r.Model(), sampleHV)
}
