package model

import (
	"math"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/dist"
	"hdcirc/internal/embed"
	"hdcirc/internal/rng"
	"hdcirc/internal/stats"
)

// noisy returns a copy of v with the given fraction of bits flipped.
func noisy(v *bitvec.Vector, frac float64, r *rng.Stream) *bitvec.Vector {
	out := v.Clone()
	n := int(frac * float64(v.Dim()))
	for i := 0; i < n; i++ {
		out.FlipBit(r.Intn(v.Dim()))
	}
	return out
}

func TestClassifierSeparatesNoisyPrototypes(t *testing.T) {
	d := 10000
	r := rng.New(1)
	k := 5
	protos := make([]*bitvec.Vector, k)
	for i := range protos {
		protos[i] = bitvec.Random(d, r)
	}
	c := NewClassifier(k, d, 2)
	for class, p := range protos {
		for s := 0; s < 20; s++ {
			c.Add(class, noisy(p, 0.2, r))
		}
	}
	correct := 0
	total := 0
	for class, p := range protos {
		for s := 0; s < 20; s++ {
			pred, dd := c.Predict(noisy(p, 0.25, r))
			if dd < 0 || dd > 1 {
				t.Fatalf("distance out of range: %v", dd)
			}
			if pred == class {
				correct++
			}
			total++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.99 {
		t.Errorf("accuracy %v on separable task, want ≈ 1", acc)
	}
}

func TestClassifierScores(t *testing.T) {
	d := 4096
	r := rng.New(3)
	c := NewClassifier(3, d, 4)
	vs := []*bitvec.Vector{bitvec.Random(d, r), bitvec.Random(d, r), bitvec.Random(d, r)}
	for i, v := range vs {
		c.Add(i, v)
	}
	scores := c.Scores(vs[1])
	if len(scores) != 3 {
		t.Fatalf("scores length %d", len(scores))
	}
	if scores[1] < scores[0] || scores[1] < scores[2] {
		t.Errorf("own class not highest: %v", scores)
	}
	// Single-sample class vector equals the sample itself.
	if scores[1] != 1 {
		t.Errorf("self score %v, want 1", scores[1])
	}
}

func TestClassifierClassVectorAndFinalize(t *testing.T) {
	d := 512
	r := rng.New(5)
	c := NewClassifier(2, d, 6)
	v := bitvec.Random(d, r)
	c.Add(0, v)
	if !c.ClassVector(0).Equal(v) {
		t.Error("single-sample class vector differs from sample")
	}
	// Adding after finalize invalidates and refreshes prototypes.
	w := v.Not()
	c.Add(0, w) // counts cancel → all ties → random resolution
	cv := c.ClassVector(0)
	if cv.Equal(v) || cv.Equal(w) {
		t.Log("tie-broken vector coincides with an operand; acceptable but unlikely")
	}
}

func TestClassifierDeterministicWithSeed(t *testing.T) {
	d := 2048
	build := func() *bitvec.Vector {
		r := rng.New(7)
		c := NewClassifier(2, d, 8)
		c.Add(0, bitvec.Random(d, r))
		c.Add(0, bitvec.Random(d, r)) // even count → ties possible
		return c.ClassVector(0)
	}
	if !build().Equal(build()) {
		t.Error("same-seed classifiers produced different prototypes")
	}
}

func TestClassifierRefineImprovesOverlappingClasses(t *testing.T) {
	// Two overlapping clusters: centroid model confuses some samples;
	// refinement must not reduce training accuracy.
	d := 10000
	r := rng.New(9)
	base := bitvec.Random(d, r)
	protoA := base
	protoB := noisy(base, 0.15, r) // heavily overlapping classes
	var hvs []*bitvec.Vector
	var labels []int
	for s := 0; s < 40; s++ {
		hvs = append(hvs, noisy(protoA, 0.12, r))
		labels = append(labels, 0)
		hvs = append(hvs, noisy(protoB, 0.12, r))
		labels = append(labels, 1)
	}
	trainAcc := func(c *Classifier) float64 {
		pred := make([]int, len(hvs))
		for i, hv := range hvs {
			pred[i], _ = c.Predict(hv)
		}
		return stats.Accuracy(pred, labels)
	}
	c := NewClassifier(2, d, 10)
	for i, hv := range hvs {
		c.Add(labels[i], hv)
	}
	before := trainAcc(c)
	updates := c.Refine(hvs, labels, 10)
	after := trainAcc(c)
	if after < before-1e-9 {
		t.Errorf("refinement reduced training accuracy: %v → %v", before, after)
	}
	if len(updates) == 0 {
		t.Error("no refinement epochs recorded")
	}
	for _, u := range updates {
		if u < 0 || u > len(hvs) {
			t.Errorf("update count %d out of range", u)
		}
	}
}

func TestClassifierRefineStopsWhenFit(t *testing.T) {
	d := 4096
	r := rng.New(11)
	a, b := bitvec.Random(d, r), bitvec.Random(d, r)
	c := NewClassifier(2, d, 12)
	c.Add(0, a)
	c.Add(1, b)
	updates := c.Refine([]*bitvec.Vector{a, b}, []int{0, 1}, 50)
	if len(updates) > 1 || updates[len(updates)-1] != 0 {
		t.Errorf("perfectly separable set should converge immediately: %v", updates)
	}
}

func TestClassifierPanics(t *testing.T) {
	cases := map[string]func(){
		"k=0":         func() { NewClassifier(0, 64, 1) },
		"d=0":         func() { NewClassifier(2, 0, 1) },
		"bad class":   func() { NewClassifier(2, 64, 1).Add(2, bitvec.New(64)) },
		"neg class":   func() { NewClassifier(2, 64, 1).Add(-1, bitvec.New(64)) },
		"bad lengths": func() { NewClassifier(2, 64, 1).Refine([]*bitvec.Vector{bitvec.New(64)}, nil, 1) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestClassifierAccessors(t *testing.T) {
	c := NewClassifier(4, 128, 13)
	if c.NumClasses() != 4 || c.Dim() != 128 {
		t.Error("accessors wrong")
	}
}

func TestRegressorSinglePairExactRecovery(t *testing.T) {
	// One memorized pair unbinds exactly: M ⊗ φ(x) = φℓ(y).
	d := 10000
	xs := core.LevelSet(32, d, rng.New(14))
	ys := core.LevelSet(32, d, rng.New(15))
	xe := embed.NewScalarEncoder(xs, 0, 31)
	ye := embed.NewScalarEncoder(ys, 0, 31)
	reg := NewRegressor(d, 16)
	reg.Add(xe.Encode(8), ye.Encode(8))
	if reg.N() != 1 {
		t.Fatalf("N = %d, want 1", reg.N())
	}
	if got := reg.Predict(xe.Encode(8), ye); got != 8 {
		t.Errorf("single-pair decode = %v, want exactly 8", got)
	}
	if !reg.PredictVector(xe.Encode(8)).Equal(ye.Encode(8)) {
		t.Error("single-pair unbinding is not exact")
	}
}

// The bundled regressor acts as kernel-weighted median regression: the
// decode is pulled toward labels of x-similar training samples, with a
// kernel set by the basis geometry (see the weighted-median analysis in
// DESIGN.md). These tests assert that behaviour rather than exact
// pointwise recovery, which the architecture does not (and per the paper's
// own MSE magnitudes, should not) deliver.
func TestRegressorTracksMonotoneFunction(t *testing.T) {
	d := 10000
	xs := core.LevelSet(32, d, rng.New(17))
	ys := core.LevelSet(32, d, rng.New(18))
	xe := embed.NewScalarEncoder(xs, 0, 31)
	ye := embed.NewScalarEncoder(ys, 0, 31)
	reg := NewRegressor(d, 19)
	for x := 0.0; x < 32; x++ {
		reg.Add(xe.Encode(x), ye.Encode(x))
	}
	// A single level feature has a kernel spanning the whole interval, so
	// shrinkage toward the weighted median is severe; what must survive is
	// the ordering and center accuracy.
	lo := reg.Predict(xe.Encode(2), ye)
	mid := reg.Predict(xe.Encode(16), ye)
	hi := reg.Predict(xe.Encode(29), ye)
	if !(lo <= mid && mid <= hi && lo < hi) {
		t.Errorf("predictions not ordered: %v %v %v", lo, mid, hi)
	}
	if math.Abs(mid-16) > 4 {
		t.Errorf("center prediction %v, want within 4 of 16", mid)
	}
}

func TestRegressorProductBindingSharpensKernel(t *testing.T) {
	// The paper's Beijing encoding binds several fields (Y ⊗ D ⊗ H); bound
	// encodings multiply their similarity kernels, localizing the weighted
	// median. Regressing y = x with a coarse ⊗ fine product encoding must
	// beat the single-feature encoding at off-center points.
	d := 10000
	stream := rng.New(23)
	coarse := embed.NewScalarEncoder(core.LevelSet(8, d, stream), 0, 7)
	fine := embed.NewScalarEncoder(core.LevelSet(8, d, stream), 0, 7)
	single := embed.NewScalarEncoder(core.LevelSet(64, d, stream), 0, 63)
	ye := embed.NewScalarEncoder(core.LevelSet(64, d, stream), 0, 63)

	prodEnc := func(x float64) *bitvec.Vector {
		c := math.Floor(x / 8)
		f := x - 8*c
		return coarse.Encode(c).Xor(fine.Encode(f))
	}
	regProd := NewRegressor(d, 24)
	regSingle := NewRegressor(d, 25)
	for x := 0.0; x < 64; x++ {
		regProd.Add(prodEnc(x), ye.Encode(x))
		regSingle.Add(single.Encode(x), ye.Encode(x))
	}
	var errProd, errSingle float64
	for _, q := range []float64{4, 12, 20, 44, 52, 60} {
		errProd += math.Abs(regProd.Predict(prodEnc(q), ye) - q)
		errSingle += math.Abs(regSingle.Predict(single.Encode(q), ye) - q)
	}
	if errProd >= errSingle {
		t.Errorf("product encoding error %v not below single-feature error %v", errProd, errSingle)
	}
}

func TestRegressorBeatsConstantBaseline(t *testing.T) {
	// On a sinusoid, the HDC regressor must beat always-predicting the
	// mean (MSE = variance).
	d := 10000
	stream := rng.New(20)
	xs := core.LevelSet(64, d, stream)
	ys := core.LevelSet(64, d, stream)
	xe := embed.NewScalarEncoder(xs, 0, 2*math.Pi)
	ye := embed.NewScalarEncoder(ys, -1.2, 1.2)
	reg := NewRegressor(d, 21)
	trainR := rng.New(22)
	truth := func(x float64) float64 { return math.Sin(x) }
	for i := 0; i < 400; i++ {
		x := dist.Uniform(trainR, 0, 2*math.Pi)
		reg.Add(xe.Encode(x), ye.Encode(truth(x)))
	}
	var se, vv float64
	n := 200
	for i := 0; i < n; i++ {
		x := dist.Uniform(trainR, 0, 2*math.Pi)
		p := reg.Predict(xe.Encode(x), ye)
		e := p - truth(x)
		se += e * e
		vv += truth(x) * truth(x) // mean of sin over [0,2π) is 0
	}
	mse := se / float64(n)
	variance := vv / float64(n)
	if mse >= variance {
		t.Errorf("regressor MSE %v does not beat constant-baseline variance %v", mse, variance)
	}
}

func TestRegressorModelVectorStable(t *testing.T) {
	d := 2048
	r := rng.New(20)
	reg := NewRegressor(d, 21)
	reg.Add(bitvec.Random(d, r), bitvec.Random(d, r))
	m1 := reg.Model()
	m2 := reg.Model()
	if !m1.Equal(m2) {
		t.Error("Model() not stable between calls")
	}
	reg.Add(bitvec.Random(d, r), bitvec.Random(d, r))
	_ = reg.Model() // must re-finalize without panicking
}

func TestRegressorDeterministicWithSeed(t *testing.T) {
	d := 1024
	build := func() *bitvec.Vector {
		r := rng.New(22)
		reg := NewRegressor(d, 23)
		reg.Add(bitvec.Random(d, r), bitvec.Random(d, r))
		reg.Add(bitvec.Random(d, r), bitvec.Random(d, r))
		return reg.Model()
	}
	if !build().Equal(build()) {
		t.Error("same-seed regressors differ")
	}
}

func TestRegressorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("d=0 did not panic")
		}
	}()
	NewRegressor(0, 1)
}

func TestRegressorCircularLabels(t *testing.T) {
	// End-to-end: angular feature through circular basis regressed onto a
	// linear label; checks the paper's Mars Express shape in miniature.
	d := 10000
	seedStream := rng.New(24)
	feat := embed.NewCircularEncoder(core.CircularSet(36, d, seedStream), 2*math.Pi)
	labels := embed.NewScalarEncoder(core.LevelSet(64, d, seedStream), -1, 1)
	reg := NewRegressor(d, 25)
	trainR := rng.New(26)
	for i := 0; i < 300; i++ {
		theta := dist.Uniform(trainR, 0, 2*math.Pi)
		y := math.Cos(theta)
		reg.Add(feat.Encode(theta), labels.Encode(y))
	}
	var se, vv, n float64
	for i := 0; i < 100; i++ {
		theta := dist.Uniform(trainR, 0, 2*math.Pi)
		got := reg.Predict(feat.Encode(theta), labels)
		e := got - math.Cos(theta)
		se += e * e
		vv += math.Cos(theta) * math.Cos(theta)
		n++
	}
	mse := se / n
	variance := vv / n
	// The broad circular kernel smooths heavily; require a clear win over
	// the constant baseline rather than pointwise accuracy.
	if mse >= 0.95*variance {
		t.Errorf("circular regression MSE %v not clearly below baseline variance %v", mse, variance)
	}
}
