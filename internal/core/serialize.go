package core

// Basis-set serialization. A trained HDC deployment ships its basis sets to
// the target device; the framing mirrors bitvec's:
//
//	magic "HSET" | uint32 version | int32 kind | float64 r |
//	uint64 m | uint64 d | m framed hypervectors

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"hdcirc/internal/bitvec"
)

const (
	setMagic   = "HSET"
	setVersion = 1
)

// WriteTo serializes the set to w. It implements io.WriterTo.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	header := make([]byte, 4+4+4+8+8+8)
	copy(header, setMagic)
	binary.LittleEndian.PutUint32(header[4:], setVersion)
	binary.LittleEndian.PutUint32(header[8:], uint32(s.kind))
	binary.LittleEndian.PutUint64(header[12:], math.Float64bits(s.r))
	binary.LittleEndian.PutUint64(header[20:], uint64(s.Len()))
	binary.LittleEndian.PutUint64(header[28:], uint64(s.d))
	var n int64
	k, err := w.Write(header)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, v := range s.vecs {
		kk, err := v.WriteTo(w)
		n += kk
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadSet deserializes a basis set written by Set.WriteTo.
func ReadSet(r io.Reader) (*Set, error) {
	header := make([]byte, 4+4+4+8+8+8)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("core: reading set header: %w", err)
	}
	if string(header[:4]) != setMagic {
		return nil, errors.New("core: bad magic (not a basis-set stream)")
	}
	if ver := binary.LittleEndian.Uint32(header[4:]); ver != setVersion {
		return nil, fmt.Errorf("core: unsupported set version %d", ver)
	}
	kind := Kind(binary.LittleEndian.Uint32(header[8:]))
	rparam := math.Float64frombits(binary.LittleEndian.Uint64(header[12:]))
	m := binary.LittleEndian.Uint64(header[20:])
	d := binary.LittleEndian.Uint64(header[28:])
	if m == 0 || m > 1<<24 {
		return nil, fmt.Errorf("core: implausible set size %d", m)
	}
	if d == 0 || d > 1<<32 {
		return nil, fmt.Errorf("core: implausible dimension %d", d)
	}
	vecs := make([]*bitvec.Vector, m)
	for i := range vecs {
		v, err := bitvec.ReadVector(r)
		if err != nil {
			return nil, fmt.Errorf("core: reading vector %d: %w", i, err)
		}
		if v.Dim() != int(d) {
			return nil, fmt.Errorf("core: vector %d has dimension %d, header says %d", i, v.Dim(), d)
		}
		vecs[i] = v
	}
	return &Set{kind: kind, d: int(d), r: rparam, vecs: vecs}, nil
}
