package core

import (
	"fmt"
	"strings"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
)

// KindThermometer is the thermometer-code basis set, a further
// linearly-correlated family from the HDC literature included for baseline
// comparisons: level l sets the first ⌊l·d/(m−1)/2⌋ coordinates of a fixed
// random permutation. Like the legacy level set its pairwise distances are
// deterministic; unlike it, every vector is a prefix pattern, which makes
// thermometer codes trivially monotone but the least expressive family.
const KindThermometer Kind = 5

// ThermometerSet generates m thermometer-code hypervectors of dimension d.
// L_0 is a uniformly random vector; level l flips the first quota·l
// coordinates (under a shared random permutation) relative to L_0, with the
// total flip budget d/2 so the endpoints are exactly orthogonal — the same
// endpoint contract as LevelLegacySet, realized with prefix structure.
func ThermometerSet(m, d int, src *rng.Stream) *Set {
	validate(m, d)
	base := bitvec.Random(d, src)
	vecs := make([]*bitvec.Vector, m)
	vecs[0] = base
	if m == 1 {
		return &Set{kind: KindThermometer, d: d, vecs: vecs}
	}
	perm := src.Perm(d)
	total := d / 2
	for l := 1; l < m; l++ {
		v := base.Clone()
		for _, p := range perm[:total*l/(m-1)] {
			v.FlipBit(p)
		}
		vecs[l] = v
	}
	return &Set{kind: KindThermometer, d: d, vecs: vecs}
}

// ParseKind converts a family name (as produced by Kind.String) back into a
// Kind; it accepts any case.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "random":
		return KindRandom, nil
	case "level-legacy", "legacy":
		return KindLevelLegacy, nil
	case "level":
		return KindLevel, nil
	case "circular":
		return KindCircular, nil
	case "scatter":
		return KindScatter, nil
	case "thermometer":
		return KindThermometer, nil
	default:
		return 0, fmt.Errorf("core: unknown basis kind %q", s)
	}
}

// Kinds lists every basis family in declaration order.
func Kinds() []Kind {
	return []Kind{KindRandom, KindLevelLegacy, KindLevel, KindCircular, KindScatter, KindThermometer}
}
