package core

import (
	"bytes"
	"math"
	"testing"

	"hdcirc/internal/rng"
)

func TestThermometerExactDistances(t *testing.T) {
	r := rng.New(31)
	m, d := 9, 10000
	s := ThermometerSet(m, d, r)
	if s.Kind() != KindThermometer {
		t.Fatalf("kind = %v", s.Kind())
	}
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			got := s.At(i).HammingDistance(s.At(j))
			want := (d/2)*j/(m-1) - (d/2)*i/(m-1)
			if got != want {
				t.Errorf("δ(T%d,T%d) = %d bits, want %d", i, j, got, want)
			}
		}
	}
	if got := s.At(0).HammingDistance(s.At(m - 1)); got != d/2 {
		t.Errorf("endpoints differ in %d bits, want %d", got, d/2)
	}
}

func TestThermometerPrefixStructure(t *testing.T) {
	// Each level's flips must be a superset of the previous level's flips
	// relative to the base: flipped(l) ⊂ flipped(l+1).
	r := rng.New(32)
	m, d := 6, 2048
	s := ThermometerSet(m, d, r)
	base := s.At(0)
	for l := 1; l < m-1; l++ {
		cur := base.Xor(s.At(l))
		next := base.Xor(s.At(l + 1))
		for i := 0; i < d; i++ {
			if cur.Bit(i) == 1 && next.Bit(i) == 0 {
				t.Fatalf("level %d flip at %d not retained at level %d", l, i, l+1)
			}
		}
	}
}

func TestThermometerSingle(t *testing.T) {
	if s := ThermometerSet(1, 256, rng.New(33)); s.Len() != 1 {
		t.Error("m=1 thermometer set wrong size")
	}
}

func TestThermometerViaConfig(t *testing.T) {
	s := Config{Kind: KindThermometer, M: 4, D: 512}.Build(rng.New(34))
	if s.Kind() != KindThermometer || s.Len() != 4 {
		t.Error("Config.Build(thermometer) wrong")
	}
	if KindThermometer.String() != "thermometer" {
		t.Error("thermometer String wrong")
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"random":       KindRandom,
		"Level":        KindLevel,
		" circular ":   KindCircular,
		"SCATTER":      KindScatter,
		"level-legacy": KindLevelLegacy,
		"legacy":       KindLevelLegacy,
		"thermometer":  KindThermometer,
	}
	for in, want := range cases {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindsRoundTripThroughParse(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip of %v failed: %v, %v", k, got, err)
		}
	}
}

func TestSetSerializeRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		s := Config{Kind: k, M: 5, D: 777, R: 0.25}.Build(rng.New(35))
		var buf bytes.Buffer
		n, err := s.WriteTo(&buf)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("%v: WriteTo count mismatch", k)
		}
		got, err := ReadSet(&buf)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got.Kind() != s.Kind() || got.Len() != s.Len() || got.Dim() != s.Dim() {
			t.Errorf("%v: metadata mismatch", k)
		}
		if math.Abs(got.R()-s.R()) > 0 {
			t.Errorf("%v: r mismatch %v vs %v", k, got.R(), s.R())
		}
		for i := 0; i < s.Len(); i++ {
			if !got.At(i).Equal(s.At(i)) {
				t.Fatalf("%v: vector %d differs after round trip", k, i)
			}
		}
	}
}

func TestReadSetRejectsGarbage(t *testing.T) {
	if _, err := ReadSet(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadSet(bytes.NewReader([]byte("XXXXYYYYZZZZ00000000111111112222222233333333"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated after header.
	s := Config{Kind: KindLevel, M: 3, D: 128}.Build(rng.New(36))
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSet(bytes.NewReader(buf.Bytes()[:40])); err == nil {
		t.Error("truncated stream accepted")
	}
}

// Thermometer codes quantify the information-content argument of Section
// 4.1 at its extreme: the whole set is determined by the base vector and
// one permutation, so pairwise distances never vary across draws.
func TestThermometerZeroDistanceVariance(t *testing.T) {
	r := rng.New(37)
	first := -1
	for draw := 0; draw < 10; draw++ {
		s := ThermometerSet(5, 1024, r)
		d := s.At(1).HammingDistance(s.At(3))
		if first < 0 {
			first = d
		} else if d != first {
			t.Fatalf("draw %d: distance %d differs from %d", draw, d, first)
		}
	}
}
