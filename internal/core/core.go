// Package core implements the paper's subject matter: basis-hypervector
// sets, the stochastically created hypervectors that represent atomic
// information in Hyperdimensional Computing.
//
// Five generators are provided:
//
//   - RandomSet — i.i.d. uniform hypervectors for symbolic data (Section 3.1);
//     all pairs quasi-orthogonal.
//   - LevelLegacySet — the pre-existing level-hypervector construction
//     (Rahimi et al.): successive levels flip a fixed quota of previously
//     unflipped bits, so pairwise distances are exact, not stochastic.
//   - LevelSet — the paper's Algorithm 1: intermediate levels draw each bit
//     from either endpoint through a shared uniform interpolation filter, so
//     E[δ(L_i, L_j)] = (j−i)/(2(m−1)) with maximal information content
//     (Proposition 4.1).
//   - CircularSet — the paper's main contribution (Section 5.1): a two-phase
//     construction whose expected distance profile is proportional to the
//     circular (arc) distance between the angles the vectors represent, with
//     antipodal vectors quasi-orthogonal.
//   - ScatterSet — scatter codes (Section 4.2): levels placed at target
//     expected distances by performing the Markov-chain-calibrated number of
//     uniformly random flips; the input-to-similarity mapping is nonlinear.
//
// LevelSet and CircularSet accept the r hyperparameter of Section 5.2 that
// interpolates toward a random set (r = 0 keeps full correlation, r = 1 is
// indistinguishable from RandomSet), implemented by concatenating level
// segments with n = r + (1−r)(m−1) transitions each.
package core

import (
	"fmt"
	"math"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/markov"
	"hdcirc/internal/rng"
)

// Kind identifies a basis-hypervector family.
type Kind int

const (
	// KindRandom is the uncorrelated basis set for symbols.
	KindRandom Kind = iota
	// KindLevelLegacy is the fixed-flip-quota level construction.
	KindLevelLegacy
	// KindLevel is the paper's Algorithm 1 interpolation construction.
	KindLevel
	// KindCircular is the two-phase circular construction.
	KindCircular
	// KindScatter is the Markov-calibrated scatter-code construction.
	KindScatter
)

func (k Kind) String() string {
	switch k {
	case KindRandom:
		return "random"
	case KindLevelLegacy:
		return "level-legacy"
	case KindLevel:
		return "level"
	case KindCircular:
		return "circular"
	case KindScatter:
		return "scatter"
	case KindThermometer:
		return "thermometer"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Set is an ordered basis-hypervector set. Index i corresponds to the i-th
// atomic value (the i-th symbol, the i-th quantization point of an interval,
// or the angle 2π·i/m).
type Set struct {
	kind Kind
	d    int
	r    float64
	vecs []*bitvec.Vector
}

// Kind returns the family the set was generated from.
func (s *Set) Kind() Kind { return s.kind }

// Dim returns the hypervector dimension d.
func (s *Set) Dim() int { return s.d }

// Len returns the set cardinality m.
func (s *Set) Len() int { return len(s.vecs) }

// R returns the correlation-relaxation hyperparameter the set was built
// with (0 for families that do not take one).
func (s *Set) R() float64 { return s.r }

// At returns the i-th basis vector. The vector is shared, not copied;
// callers must not mutate it.
func (s *Set) At(i int) *bitvec.Vector { return s.vecs[i] }

// Vectors returns the backing slice (shared, not copied).
func (s *Set) Vectors() []*bitvec.Vector { return s.vecs }

// validate panics on non-sensical set parameters; generation happens at
// model-construction time where a panic is the right failure mode for a
// programming error.
func validate(m, d int) {
	if m <= 0 {
		panic(fmt.Sprintf("core: set size must be positive, got %d", m))
	}
	if d <= 0 {
		panic(fmt.Sprintf("core: dimension must be positive, got %d", d))
	}
}

// RandomSet generates m i.i.d. uniform hypervectors of dimension d.
func RandomSet(m, d int, src *rng.Stream) *Set {
	validate(m, d)
	vecs := make([]*bitvec.Vector, m)
	for i := range vecs {
		vecs[i] = bitvec.Random(d, src)
	}
	return &Set{kind: KindRandom, d: d, vecs: vecs}
}

// LevelLegacySet generates level-hypervectors with the pre-existing method:
// L1 is uniform; each of the m−1 transitions flips a disjoint quota of
// ⌊d/2⌋/(m−1) not-previously-flipped bits (chosen through one random
// permutation of the coordinates), so δ(L_i, L_j) is deterministic given
// the quota and L_1, L_m share exactly ⌊d/2⌋ flipped bits.
func LevelLegacySet(m, d int, src *rng.Stream) *Set {
	validate(m, d)
	vecs := make([]*bitvec.Vector, m)
	vecs[0] = bitvec.Random(d, src)
	if m == 1 {
		return &Set{kind: KindLevelLegacy, d: d, vecs: vecs}
	}
	perm := src.Perm(d)
	total := d / 2
	for l := 1; l < m; l++ {
		v := vecs[l-1].Clone()
		// Flip the next quota of coordinates from the shared permutation.
		from := total * (l - 1) / (m - 1)
		to := total * l / (m - 1)
		for _, p := range perm[from:to] {
			v.FlipBit(p)
		}
		vecs[l] = v
	}
	return &Set{kind: KindLevelLegacy, d: d, vecs: vecs}
}

// LevelSet generates level-hypervectors with the paper's Algorithm 1
// (interpolation filters), i.e. LevelSetR with r = 0.
func LevelSet(m, d int, src *rng.Stream) *Set { return LevelSetR(m, d, 0, src) }

// LevelSetR generates level-hypervectors with the r hyperparameter of
// Section 5.2. r = 0 is exactly Algorithm 1 (one segment spanning the whole
// set); r = 1 yields independent random vectors; intermediate values
// concatenate level segments of n = r + (1−r)(m−1) transitions, each with
// fresh random endpoints and a fresh interpolation filter. The threshold for
// level l is τ_l = 1 − ((l−1) mod n)/n, as in the paper.
func LevelSetR(m, d int, r float64, src *rng.Stream) *Set {
	validate(m, d)
	if r < 0 || r > 1 {
		panic(fmt.Sprintf("core: r hyperparameter %v outside [0,1]", r))
	}
	vecs := make([]*bitvec.Vector, m)
	if m == 1 {
		vecs[0] = bitvec.Random(d, src)
		return &Set{kind: KindLevel, d: d, r: r, vecs: vecs}
	}
	n := r + (1-r)*float64(m-1) // transitions per segment, n ≥ 1

	var start, end *bitvec.Vector // current segment endpoints
	var phi []float64             // current segment interpolation filter
	segment := -1
	for l := 0; l < m; l++ { // l is 0-based: paper's l−1
		t := float64(l)
		s := int(t / n)
		p := t - float64(s)*n
		// Guard against floating-point: t/n a hair below an integer makes p
		// ≈ n; treat it as the next segment start.
		if n-p < 1e-9 {
			s++
			p = 0
		}
		if s != segment {
			if start == nil {
				start = bitvec.Random(d, src)
			} else {
				start = end
			}
			end = bitvec.Random(d, src)
			phi = uniforms(d, src, phi)
			segment = s
		}
		if p == 0 {
			vecs[l] = start.Clone()
			continue
		}
		tau := 1 - p/n
		v := bitvec.New(d)
		for k := 0; k < d; k++ {
			if phi[k] < tau {
				v.SetBit(k, start.Bit(k))
			} else {
				v.SetBit(k, end.Bit(k))
			}
		}
		vecs[l] = v
	}
	return &Set{kind: KindLevel, d: d, r: r, vecs: vecs}
}

// uniforms fills (reusing buf when possible) a slice of d uniform [0,1)
// samples.
func uniforms(d int, src *rng.Stream, buf []float64) []float64 {
	if cap(buf) < d {
		buf = make([]float64, d)
	}
	buf = buf[:d]
	for i := range buf {
		buf[i] = src.Float64()
	}
	return buf
}

// CircularSet generates circular-hypervectors (Section 5.1) with r = 0.
func CircularSet(m, d int, src *rng.Stream) *Set { return CircularSetR(m, d, 0, src) }

// CircularSetR generates circular-hypervectors with the r hyperparameter.
// For even m the construction is the paper's two-phase algorithm: phase 1
// builds m/2+1 level-hypervectors (with r applied to phase 1 only, per
// Section 5.2); phase 2 replays the phase-1 transitions T_i = C_i ⊗ C_{i+1}
// onto the running vector to walk back to C_1 around the other side of the
// circle. For odd m, a set of size 2m is generated and every other element
// kept (the paper's footnote 1).
func CircularSetR(m, d int, r float64, src *rng.Stream) *Set {
	validate(m, d)
	if r < 0 || r > 1 {
		panic(fmt.Sprintf("core: r hyperparameter %v outside [0,1]", r))
	}
	if m == 1 {
		return &Set{kind: KindCircular, d: d, r: r, vecs: []*bitvec.Vector{bitvec.Random(d, src)}}
	}
	if m%2 != 0 {
		big := CircularSetR(2*m, d, r, src)
		vecs := make([]*bitvec.Vector, m)
		for i := range vecs {
			vecs[i] = big.vecs[2*i]
		}
		return &Set{kind: KindCircular, d: d, r: r, vecs: vecs}
	}
	half := m / 2
	phase1 := LevelSetR(half+1, d, r, src)

	vecs := make([]*bitvec.Vector, m)
	for i := 0; i <= half; i++ {
		vecs[i] = phase1.vecs[i]
	}
	// Transitions between consecutive phase-1 levels.
	trans := make([]*bitvec.Vector, half)
	for i := 0; i < half; i++ {
		trans[i] = phase1.vecs[i].Xor(phase1.vecs[i+1])
	}
	// Phase 2: C_i = C_{i−1} ⊗ T_{i−m/2−1} (1-based), i = m/2+2 … m.
	for i := half + 1; i < m; i++ {
		vecs[i] = vecs[i-1].Xor(trans[i-half-1])
	}
	return &Set{kind: KindCircular, d: d, r: r, vecs: vecs}
}

// ScatterCalibration selects how ScatterSet converts a target expected
// distance into a flip count.
type ScatterCalibration int

const (
	// CalibrationMarkov uses the expected absorption time of the paper's
	// Section 4.2 Markov chain (first time the walk reaches the target
	// distance).
	CalibrationMarkov ScatterCalibration = iota
	// CalibrationAnalytic uses the closed-form flips-with-replacement
	// inverse f = ln(1−2Δ)/ln(1−2/d), which makes the post-flip expected
	// distance exactly Δ.
	CalibrationAnalytic
)

func (c ScatterCalibration) String() string {
	switch c {
	case CalibrationMarkov:
		return "markov"
	case CalibrationAnalytic:
		return "analytic"
	default:
		return fmt.Sprintf("ScatterCalibration(%d)", int(c))
	}
}

// ScatterSet generates scatter codes: level j is obtained from L_1 by
// performing the calibrated number of uniformly random flips (positions
// drawn with replacement) for target distance Δ_{1,j} = (j−1)/(2(m−1)).
// Unlike LevelSet, the similarity structure between *intermediate* pairs is
// a nonlinear function of index distance.
func ScatterSet(m, d int, cal ScatterCalibration, src *rng.Stream) *Set {
	validate(m, d)
	vecs := make([]*bitvec.Vector, m)
	vecs[0] = bitvec.Random(d, src)
	if m == 1 {
		return &Set{kind: KindScatter, d: d, vecs: vecs}
	}
	for j := 1; j < m; j++ {
		delta := float64(j) / (2 * float64(m-1))
		var flips float64
		switch cal {
		case CalibrationAnalytic:
			f, err := markov.AnalyticFlips(d, math.Min(delta, 0.5-1e-12))
			if err != nil {
				panic(fmt.Sprintf("core: scatter calibration failed: %v", err))
			}
			flips = f
		default:
			k := int(math.Round(delta * float64(d)))
			if k < 1 {
				k = 1
			}
			f, err := markov.ExpectedFlipsRecurrence(d, k)
			if err != nil {
				panic(fmt.Sprintf("core: scatter calibration failed: %v", err))
			}
			flips = f
		}
		v := vecs[0].Clone()
		for f := 0; f < int(math.Round(flips)); f++ {
			v.FlipBit(src.Intn(d))
		}
		vecs[j] = v
	}
	return &Set{kind: KindScatter, d: d, vecs: vecs}
}

// LevelExpectedDistance returns Δ_{i,j} = |j−i|/(2(m−1)), the expected
// normalized distance between levels i and j (0-based) of an Algorithm-1
// set of size m (Proposition 4.1).
func LevelExpectedDistance(m, i, j int) float64 {
	if m < 2 {
		return 0
	}
	return math.Abs(float64(j-i)) / (2 * float64(m-1))
}

// CircularExpectedDistance returns the expected normalized distance between
// circular-hypervectors i and j (0-based) of a set of size m: the
// arc-proportional profile min(lag, m−lag)/m realized by the two-phase
// construction (see DESIGN.md §6 on the triangular-vs-cosine distinction).
func CircularExpectedDistance(m, i, j int) float64 {
	if m < 2 {
		return 0
	}
	lag := i - j
	if lag < 0 {
		lag = -lag
	}
	lag %= m
	if m-lag < lag {
		lag = m - lag
	}
	return float64(lag) / float64(m)
}

// SimilarityMatrix returns the m×m matrix of pairwise similarities
// 1 − δ(S_i, S_j) of a basis set — the quantity plotted in the paper's
// Figures 3 and 6.
func SimilarityMatrix(s *Set) [][]float64 {
	m := s.Len()
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			out[i][j] = s.At(i).Similarity(s.At(j))
		}
	}
	return out
}

// Config bundles the parameters of a basis set so experiments can sweep
// families generically.
type Config struct {
	Kind Kind
	M    int     // set cardinality
	D    int     // hypervector dimension
	R    float64 // correlation-relaxation hyperparameter (level/circular)

	Calibration ScatterCalibration // scatter only
}

// Build generates the configured set from the given stream.
func (c Config) Build(src *rng.Stream) *Set {
	switch c.Kind {
	case KindRandom:
		return RandomSet(c.M, c.D, src)
	case KindLevelLegacy:
		return LevelLegacySet(c.M, c.D, src)
	case KindLevel:
		return LevelSetR(c.M, c.D, c.R, src)
	case KindCircular:
		return CircularSetR(c.M, c.D, c.R, src)
	case KindScatter:
		return ScatterSet(c.M, c.D, c.Calibration, src)
	case KindThermometer:
		return ThermometerSet(c.M, c.D, src)
	default:
		panic(fmt.Sprintf("core: unknown basis kind %v", c.Kind))
	}
}
