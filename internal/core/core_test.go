package core

import (
	"math"
	"testing"
	"testing/quick"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/markov"
	"hdcirc/internal/rng"
)

// tol returns a k-sigma tolerance for a normalized Hamming distance
// estimate in dimension d around probability p.
func tol(d int, p, k float64) float64 {
	return k * math.Sqrt(p*(1-p)/float64(d))
}

func TestRandomSetQuasiOrthogonal(t *testing.T) {
	r := rng.New(1)
	s := RandomSet(8, 10000, r)
	if s.Kind() != KindRandom || s.Len() != 8 || s.Dim() != 10000 {
		t.Fatalf("metadata wrong: %v %d %d", s.Kind(), s.Len(), s.Dim())
	}
	for i := 0; i < s.Len(); i++ {
		for j := i + 1; j < s.Len(); j++ {
			d := s.At(i).Distance(s.At(j))
			if math.Abs(d-0.5) > tol(10000, 0.5, 6) {
				t.Errorf("pair (%d,%d) distance %v not ≈ 0.5", i, j, d)
			}
		}
	}
}

func TestLevelLegacyExactDistances(t *testing.T) {
	r := rng.New(2)
	m, d := 11, 10000
	s := LevelLegacySet(m, d, r)
	quota := (d / 2) / (m - 1)
	_ = quota
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			got := s.At(i).HammingDistance(s.At(j))
			want := (d/2)*j/(m-1) - (d/2)*i/(m-1)
			if got != want {
				t.Errorf("legacy δ(L%d,L%d) = %d bits, want exactly %d", i, j, got, want)
			}
		}
	}
	// Endpoints exactly orthogonal (d/2 differing bits).
	if got := s.At(0).HammingDistance(s.At(m - 1)); got != d/2 {
		t.Errorf("endpoints differ in %d bits, want %d", got, d/2)
	}
}

func TestLevelLegacyDeterministicPairsStochasticSets(t *testing.T) {
	// Two draws share the distance structure but not the vectors.
	s1 := LevelLegacySet(5, 2048, rng.New(3))
	s2 := LevelLegacySet(5, 2048, rng.New(4))
	if s1.At(0).Equal(s2.At(0)) {
		t.Error("different seeds produced identical base vector")
	}
	if s1.At(0).HammingDistance(s1.At(4)) != s2.At(0).HammingDistance(s2.At(4)) {
		t.Error("legacy sets should have identical (deterministic) pair distances")
	}
}

func TestLevelSetExpectedDistances(t *testing.T) {
	// Proposition 4.1: E[δ(L_i, L_j)] = (j−i)/(2(m−1)).
	r := rng.New(5)
	m, d := 10, 10000
	s := LevelSet(m, d, r)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			got := s.At(i).Distance(s.At(j))
			want := LevelExpectedDistance(m, i, j)
			if math.Abs(got-want) > tol(d, math.Max(want, 0.01), 6) {
				t.Errorf("δ(L%d,L%d) = %v, want ≈ %v", i, j, got, want)
			}
		}
	}
}

func TestLevelSetEndpointsQuasiOrthogonal(t *testing.T) {
	r := rng.New(6)
	s := LevelSet(33, 10000, r)
	d := s.At(0).Distance(s.At(32))
	if math.Abs(d-0.5) > tol(10000, 0.5, 6) {
		t.Errorf("endpoint distance %v not ≈ 0.5", d)
	}
}

func TestLevelSetDistancesAreStochastic(t *testing.T) {
	// Unlike the legacy method, Algorithm 1 distances vary across draws —
	// that is the whole point (higher information content). With d=10000
	// the binomial spread makes exact collisions essentially impossible.
	a := LevelSet(10, 10000, rng.New(7))
	b := LevelSet(10, 10000, rng.New(8))
	same := 0
	pairs := 0
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			pairs++
			if a.At(i).HammingDistance(a.At(j)) == b.At(i).HammingDistance(b.At(j)) {
				same++
			}
		}
	}
	if same > pairs/3 {
		t.Errorf("%d/%d pair distances identical across independent draws; expected stochastic", same, pairs)
	}
}

func TestLevelSetMonotoneFromEndpoint(t *testing.T) {
	r := rng.New(9)
	m := 16
	s := LevelSet(m, 10000, r)
	prev := -1.0
	for j := 1; j < m; j++ {
		d := s.At(0).Distance(s.At(j))
		if d <= prev {
			t.Fatalf("distance from L0 not increasing at j=%d: %v <= %v", j, d, prev)
		}
		prev = d
	}
}

func TestLevelSetSmallM(t *testing.T) {
	r := rng.New(10)
	if s := LevelSet(1, 1000, r); s.Len() != 1 {
		t.Error("m=1 level set wrong size")
	}
	s := LevelSet(2, 10000, r)
	d := s.At(0).Distance(s.At(1))
	if math.Abs(d-0.5) > tol(10000, 0.5, 6) {
		t.Errorf("m=2 distance %v not ≈ 0.5", d)
	}
}

func TestLevelSetRExtremes(t *testing.T) {
	// r=1 must behave like a random set: all pairs quasi-orthogonal.
	r := rng.New(11)
	m, d := 10, 10000
	s := LevelSetR(m, d, 1, r)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			dd := s.At(i).Distance(s.At(j))
			if math.Abs(dd-0.5) > tol(d, 0.5, 6) {
				t.Errorf("r=1 pair (%d,%d) distance %v not ≈ 0.5", i, j, dd)
			}
		}
	}
}

func TestLevelSetRIntermediateLocalCorrelation(t *testing.T) {
	// For r in (0,1), adjacent levels stay correlated (δ < 0.5) while far
	// levels decorrelate faster than the r=0 line.
	r := rng.New(12)
	m, d := 21, 10000
	s := LevelSetR(m, d, 0.5, r)
	adj := s.At(10).Distance(s.At(11))
	if adj >= 0.4 {
		t.Errorf("adjacent distance %v too large for r=0.5", adj)
	}
	far := s.At(0).Distance(s.At(m - 1))
	if far < 0.4 {
		t.Errorf("far distance %v should be ≈ 0.5 for r=0.5", far)
	}
}

func TestLevelSetRSegmentBoundariesChain(t *testing.T) {
	// Segment ends are the next segment's starts: no discontinuity larger
	// than one transition anywhere along consecutive levels.
	r := rng.New(13)
	m, d := 24, 10000
	for _, rr := range []float64{0.25, 0.5, 0.75} {
		s := LevelSetR(m, d, rr, r)
		n := rr + (1-rr)*float64(m-1)
		perStep := 0.5 / n // expected distance of one transition
		for l := 1; l < m; l++ {
			dd := s.At(l - 1).Distance(s.At(l))
			if dd > perStep+tol(d, perStep, 8)+0.02 {
				t.Errorf("r=%v: consecutive distance at %d is %v, expected ≈ %v", rr, l, dd, perStep)
			}
		}
	}
}

func TestLevelSetRPanicsOutsideRange(t *testing.T) {
	for _, rr := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("r=%v did not panic", rr)
				}
			}()
			LevelSetR(4, 64, rr, rng.New(1))
		}()
	}
}

func TestCircularSetProfile(t *testing.T) {
	// E[δ(C_i, C_j)] = min(lag, m−lag)/m — the triangular arc profile.
	r := rng.New(14)
	m, d := 12, 10000
	s := CircularSet(m, d, r)
	if s.Len() != m {
		t.Fatalf("size %d, want %d", s.Len(), m)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			got := s.At(i).Distance(s.At(j))
			want := CircularExpectedDistance(m, i, j)
			if math.Abs(got-want) > tol(d, math.Max(want, 0.01), 6) {
				t.Errorf("δ(C%d,C%d) = %v, want ≈ %v", i, j, got, want)
			}
		}
	}
}

func TestCircularSetAntipodalQuasiOrthogonal(t *testing.T) {
	r := rng.New(15)
	m, d := 16, 10000
	s := CircularSet(m, d, r)
	for i := 0; i < m; i++ {
		opp := (i + m/2) % m
		dd := s.At(i).Distance(s.At(opp))
		if math.Abs(dd-0.5) > tol(d, 0.5, 6) {
			t.Errorf("antipodal pair (%d,%d) distance %v not ≈ 0.5", i, opp, dd)
		}
	}
}

func TestCircularSetWrapContinuity(t *testing.T) {
	// The defining property missing from level sets: C_{m−1} and C_0 are
	// close (one step), not maximally dissimilar.
	r := rng.New(16)
	m, d := 20, 10000
	s := CircularSet(m, d, r)
	wrap := s.At(m - 1).Distance(s.At(0))
	want := 1.0 / float64(m)
	if math.Abs(wrap-want) > tol(d, want, 8)+0.01 {
		t.Errorf("wrap distance %v, want ≈ %v", wrap, want)
	}
	// Contrast: a level set of the same size has orthogonal endpoints.
	ls := LevelSet(m, d, r)
	if ls.At(0).Distance(ls.At(m-1)) < 0.45 {
		t.Error("level endpoints unexpectedly correlated")
	}
}

func TestCircularSetOddSize(t *testing.T) {
	r := rng.New(17)
	m, d := 9, 10000
	s := CircularSet(m, d, r)
	if s.Len() != m {
		t.Fatalf("odd size: got %d", s.Len())
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			got := s.At(i).Distance(s.At(j))
			want := CircularExpectedDistance(m, i, j)
			if math.Abs(got-want) > tol(d, math.Max(want, 0.01), 7) {
				t.Errorf("odd m: δ(C%d,C%d) = %v, want ≈ %v", i, j, got, want)
			}
		}
	}
}

func TestCircularSetPhase2ConsistentWithTransitions(t *testing.T) {
	// Phase-2 members are exact XOR walks: C_{i} ⊗ C_{i−1} must equal the
	// corresponding phase-1 transition.
	r := rng.New(18)
	m, d := 12, 4096
	s := CircularSet(m, d, r)
	half := m / 2
	for i := half + 1; i < m; i++ {
		trans := s.At(i - 1).Xor(s.At(i))
		phase1 := s.At(i - half - 1).Xor(s.At(i - half))
		if !trans.Equal(phase1) {
			t.Errorf("phase-2 transition %d does not replay phase-1 transition", i)
		}
	}
}

func TestCircularSetClosesTheLoop(t *testing.T) {
	// Applying the final transition to C_{m−1} must return exactly C_0
	// (the dashed arrow in the paper's Figure 5).
	r := rng.New(19)
	m, d := 10, 2048
	s := CircularSet(m, d, r)
	half := m / 2
	last := s.At(m - 1).Xor(s.At(half - 1).Xor(s.At(half)))
	if !last.Equal(s.At(0)) {
		t.Error("circle does not close")
	}
}

func TestCircularSetRExtremeRandom(t *testing.T) {
	r := rng.New(20)
	m, d := 10, 10000
	s := CircularSetR(m, d, 1, r)
	// With r=1 phase 1 is random; all pairs among phase-1 vectors are
	// quasi-orthogonal. (Phase-2 vectors are XOR combinations and also
	// decorrelate from each other.)
	for i := 0; i <= m/2; i++ {
		for j := i + 1; j <= m/2; j++ {
			dd := s.At(i).Distance(s.At(j))
			if math.Abs(dd-0.5) > tol(d, 0.5, 6) {
				t.Errorf("r=1 phase-1 pair (%d,%d) distance %v not ≈ 0.5", i, j, dd)
			}
		}
	}
}

func TestCircularSetSizeOne(t *testing.T) {
	if s := CircularSet(1, 512, rng.New(21)); s.Len() != 1 {
		t.Error("m=1 circular set wrong size")
	}
}

func TestScatterSetMarkovDistances(t *testing.T) {
	r := rng.New(22)
	m, d := 9, 10000
	s := ScatterSet(m, d, CalibrationMarkov, r)
	for j := 1; j < m; j++ {
		want := float64(j) / (2 * float64(m-1))
		got := s.At(0).Distance(s.At(j))
		// The first-hitting calibration slightly undershoots the target in
		// expectation for large Δ (see markov docs); allow 6σ + 2% slack.
		if math.Abs(got-want) > tol(d, want, 6)+0.02 {
			t.Errorf("scatter δ(L0,L%d) = %v, want ≈ %v", j, got, want)
		}
	}
}

func TestScatterSetAnalyticDistances(t *testing.T) {
	r := rng.New(23)
	m, d := 9, 10000
	s := ScatterSet(m, d, CalibrationAnalytic, r)
	for j := 1; j < m; j++ {
		want := float64(j) / (2 * float64(m-1))
		got := s.At(0).Distance(s.At(j))
		if math.Abs(got-want) > tol(d, want, 6)+0.01 {
			t.Errorf("scatter δ(L0,L%d) = %v, want ≈ %v", j, got, want)
		}
	}
}

func TestScatterSetNonlinearIntermediatePairs(t *testing.T) {
	// Distances between intermediate scatter levels exceed the linear
	// profile (independent flip sets overlap): that is the documented
	// nonlinearity versus LevelSet.
	r := rng.New(24)
	m, d := 9, 10000
	s := ScatterSet(m, d, CalibrationAnalytic, r)
	mid := (m - 1) / 2
	gotMid := s.At(mid).Distance(s.At(m - 1))
	linear := LevelExpectedDistance(m, mid, m-1)
	if gotMid <= linear {
		t.Errorf("scatter intermediate distance %v should exceed linear %v", gotMid, linear)
	}
}

func TestExpectedDistanceHelpers(t *testing.T) {
	if LevelExpectedDistance(10, 0, 9) != 0.5 {
		t.Error("level endpoints expected distance != 0.5")
	}
	if LevelExpectedDistance(1, 0, 0) != 0 {
		t.Error("degenerate level distance != 0")
	}
	if CircularExpectedDistance(12, 0, 6) != 0.5 {
		t.Error("antipodal circular distance != 0.5")
	}
	if CircularExpectedDistance(12, 0, 11) != 1.0/12 {
		t.Error("wrap circular distance wrong")
	}
	if CircularExpectedDistance(12, 3, 3) != 0 {
		t.Error("self circular distance != 0")
	}
	if CircularExpectedDistance(1, 0, 0) != 0 {
		t.Error("degenerate circular distance != 0")
	}
}

func TestSimilarityMatrixProperties(t *testing.T) {
	r := rng.New(25)
	s := CircularSet(8, 2048, r)
	m := SimilarityMatrix(s)
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d] = %v", i, m[i][i])
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Errorf("similarity matrix not symmetric at (%d,%d)", i, j)
			}
			if m[i][j] < 0 || m[i][j] > 1 {
				t.Errorf("similarity out of range: %v", m[i][j])
			}
		}
	}
}

func TestConfigBuild(t *testing.T) {
	r := rng.New(26)
	kinds := []Kind{KindRandom, KindLevelLegacy, KindLevel, KindCircular, KindScatter}
	for _, k := range kinds {
		s := Config{Kind: k, M: 6, D: 512}.Build(r)
		if s.Kind() != k {
			t.Errorf("Config.Build(%v) produced kind %v", k, s.Kind())
		}
		if s.Len() != 6 || s.Dim() != 512 {
			t.Errorf("%v: wrong shape %d×%d", k, s.Len(), s.Dim())
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown kind did not panic")
			}
		}()
		Config{Kind: Kind(99), M: 2, D: 64}.Build(r)
	}()
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindRandom:      "random",
		KindLevelLegacy: "level-legacy",
		KindLevel:       "level",
		KindCircular:    "circular",
		KindScatter:     "scatter",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), w)
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind has empty string")
	}
	if CalibrationMarkov.String() != "markov" || CalibrationAnalytic.String() != "analytic" {
		t.Error("calibration strings wrong")
	}
	if ScatterCalibration(9).String() == "" {
		t.Error("unknown calibration has empty string")
	}
}

func TestValidatePanics(t *testing.T) {
	cases := []func(){
		func() { RandomSet(0, 64, rng.New(1)) },
		func() { RandomSet(4, 0, rng.New(1)) },
		func() { LevelSet(-1, 64, rng.New(1)) },
		func() { CircularSet(4, -5, rng.New(1)) },
		func() { ScatterSet(0, 64, CalibrationMarkov, rng.New(1)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDeterministicGeneration(t *testing.T) {
	for _, k := range []Kind{KindRandom, KindLevelLegacy, KindLevel, KindCircular, KindScatter} {
		a := Config{Kind: k, M: 8, D: 1024}.Build(rng.New(777))
		b := Config{Kind: k, M: 8, D: 1024}.Build(rng.New(777))
		for i := 0; i < 8; i++ {
			if !a.At(i).Equal(b.At(i)) {
				t.Errorf("%v: vector %d differs across equal-seed builds", k, i)
			}
		}
	}
}

func TestQuickLevelDistanceOrdering(t *testing.T) {
	// For any triple i<j<k in a level set, δ(i,j) ≤ δ(i,k) within noise.
	f := func(seed uint16) bool {
		s := LevelSet(8, 4096, rng.New(uint64(seed)))
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				for k := j + 1; k < 8; k++ {
					if s.At(i).Distance(s.At(j)) > s.At(i).Distance(s.At(k))+0.05 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickCircularSymmetricLags(t *testing.T) {
	// Distance depends only on circular lag: δ(C_0, C_k) ≈ δ(C_j, C_{j+k}).
	f := func(seed uint16) bool {
		m := 12
		s := CircularSet(m, 4096, rng.New(uint64(seed)))
		for k := 1; k < m/2; k++ {
			base := s.At(0).Distance(s.At(k))
			for j := 1; j < m; j++ {
				if math.Abs(s.At(j).Distance(s.At((j+k)%m))-base) > 0.08 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Statistical verification of Proposition 4.1 over repeated draws: the MEAN
// distance across draws converges to Δ. This is the in-expectation claim,
// distinct from the single-draw tolerance tests above.
func TestProposition41MeanConvergence(t *testing.T) {
	m, d := 6, 2048
	const draws = 60
	sums := make([][]float64, m)
	for i := range sums {
		sums[i] = make([]float64, m)
	}
	r := rng.New(314)
	for n := 0; n < draws; n++ {
		s := LevelSet(m, d, r)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				sums[i][j] += s.At(i).Distance(s.At(j))
			}
		}
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			mean := sums[i][j] / draws
			want := LevelExpectedDistance(m, i, j)
			se := math.Sqrt(want*(1-want)/float64(d)) / math.Sqrt(draws)
			if math.Abs(mean-want) > 6*se+0.003 {
				t.Errorf("E[δ(L%d,L%d)] = %v, want %v (±%v)", i, j, mean, want, 6*se)
			}
		}
	}
}

// Information-content sanity check backing Section 4.1's argument: the
// variance of pairwise distances across draws is zero for the legacy
// method and positive for Algorithm 1.
func TestLegacyVsInterpolationVariance(t *testing.T) {
	m, d := 6, 2048
	const draws = 30
	var legacyVar, interpVar float64
	r := rng.New(2718)
	var legacyVals, interpVals []float64
	for n := 0; n < draws; n++ {
		lg := LevelLegacySet(m, d, r)
		in := LevelSet(m, d, r)
		legacyVals = append(legacyVals, lg.At(1).Distance(lg.At(3)))
		interpVals = append(interpVals, in.At(1).Distance(in.At(3)))
	}
	legacyVar = variance(legacyVals)
	interpVar = variance(interpVals)
	if legacyVar != 0 {
		t.Errorf("legacy pair distance variance %v, want exactly 0", legacyVar)
	}
	if interpVar <= 0 {
		t.Errorf("interpolation pair distance variance %v, want > 0", interpVar)
	}
}

func variance(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return v / float64(len(xs))
}

// Cross-check the scatter generator against the markov package's analytic
// distance prediction.
func TestScatterMatchesMarkovPrediction(t *testing.T) {
	d := 10000
	r := rng.New(1001)
	base := bitvec.Random(d, r)
	flips, err := markov.AnalyticFlips(d, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Perform the flips and check realized distance ≈ prediction.
	v := base.Clone()
	for f := 0; f < int(flips); f++ {
		v.FlipBit(r.Intn(d))
	}
	got := base.Distance(v)
	want := markov.DistanceAfterFlips(d, math.Floor(flips))
	if math.Abs(got-want) > tol(d, want, 6) {
		t.Errorf("realized distance %v, predicted %v", got, want)
	}
}
