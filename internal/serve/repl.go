package serve

// Replication hooks: the serve layer's side of the primary/follower tier
// built in internal/repl. The design keeps the state machine honest by
// changing nothing about HOW batches apply — a follower pushes the
// primary's verbatim WAL payloads through the exact validate-then-apply
// path ApplyBatch uses, at the exact same sequence numbers, so a replica
// at version V is bit-identical to the primary at version V (the same
// invariant crash recovery already proves). What this file adds is:
//
//   - Roles. A follower rejects client writes with ErrNotPrimary (carrying
//     the primary's URL for redirect hints) and accepts ApplyReplicated
//     instead; Promote flips it into a primary without a restart.
//   - ApplyReplicated: the follower-only write path. The record lands in
//     the follower's own WAL under the primary's sequence number, so a
//     restarted follower recovers locally and rejoins the stream at its
//     last applied seq.
//   - InstallCheckpoint: catch-up seeding. When the primary has compacted
//     past a follower's position, the follower swallows a whole checkpoint
//     image (the same HCKP bytes checkpoint files hold), resets its state
//     to it, persists it to its own durability directory, and realigns its
//     log — after which suffix shipping resumes.
//   - SubscribeApplied: a coalesced apply signal. Subscribers get "versions
//     advanced", not records; the shipper re-reads new records from the log
//     (WALStreamFrom), so the disk is the only buffer and a slow follower
//     can never make the primary drop or queue records in memory.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Role is a server's position in the replication topology.
type Role int

const (
	// RolePrimary accepts client writes and ships its WAL to followers.
	RolePrimary Role = iota
	// RoleFollower applies replicated records only; client writes are
	// rejected with ErrNotPrimary.
	RoleFollower
)

func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleFollower:
		return "follower"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// ErrNotPrimary is returned (possibly wrapped, with the primary's URL when
// known) by client writes against a follower. Front ends translate it into
// a redirect hint so the client SDK can fail over to the primary.
var ErrNotPrimary = errors.New("serve: not the primary (read-only replica)")

// ErrReplSeq is returned (wrapped) by ApplyReplicated when the record's
// sequence number does not follow the follower's applied version: the
// stream is stale or has a gap, and the shipper must reconnect from the
// follower's actual position.
var ErrReplSeq = errors.New("serve: replicated record out of sequence")

// ReplicationStats is the replication block of Stats, produced by the
// registered stats callback (the repl shipper on a primary, the repl
// applier on a follower).
type ReplicationStats struct {
	// ConnectedFollowers is the number of live replication streams (primary
	// side; zero on followers).
	ConnectedFollowers int `json:"connected_followers"`
	// FollowerLagSeq is how many sequence numbers this server trails the
	// newest one it knows about: on a follower, primary head − applied
	// version; on a primary, its head − the slowest connected follower's
	// acked seq.
	FollowerLagSeq uint64 `json:"follower_lag_seq"`
	// LastAckedSeq is the newest sequence acknowledged across the tier:
	// on a follower, its own applied version; on a primary, the slowest
	// connected follower's acknowledged seq (0 with no followers).
	LastAckedSeq uint64 `json:"last_acked_seq"`
}

// BecomeFollower marks the server a read-only replica of the primary at
// primaryURL (may be empty when unknown): client writes start failing with
// ErrNotPrimary; ApplyReplicated and InstallCheckpoint become the only
// write paths. Safe to call on a live server — in-flight ApplyBatch calls
// that already hold the write slot complete first.
func (s *Server) BecomeFollower(primaryURL string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.role = RoleFollower
	s.roleSet = true
	s.primaryURL = primaryURL
	return nil
}

// Promote flips a follower into a primary: client writes are accepted
// again, starting from exactly the state the replication stream had
// applied. The caller is responsible for making sure the old primary is
// dead or demoted first — two primaries diverge.
func (s *Server) Promote() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.role = RolePrimary
	s.roleSet = true
	s.primaryURL = ""
	return nil
}

// Role reports the server's current replication role. Servers that never
// saw BecomeFollower/Promote are primaries.
func (s *Server) Role() Role {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.role
}

// PrimaryURL reports the primary's URL as configured by BecomeFollower —
// empty on primaries and on followers that were not told.
func (s *Server) PrimaryURL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primaryURL
}

// SetReplicationStatsFunc registers the callback Stats uses to fill its
// replication block. The callback runs outside the server's locks but on
// the Stats caller's goroutine — it must be fast and must not call back
// into Stats. nil unregisters.
func (s *Server) SetReplicationStatsFunc(fn func() ReplicationStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.replStatsFn = fn
}

// SubscribeApplied returns a coalesced apply-notification channel: after
// any successful apply (client batch or replicated record) the channel
// holds a token. Multiple applies between receives coalesce into one token
// — the subscriber is expected to re-read the log for everything new, so
// a signal is never "missed", only merged. cancel unregisters; the channel
// is never closed.
func (s *Server) SubscribeApplied() (ch <-chan struct{}, cancel func()) {
	c := make(chan struct{}, 1)
	s.subMu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = c
	s.subMu.Unlock()
	return c, func() {
		s.subMu.Lock()
		delete(s.subs, id)
		s.subMu.Unlock()
	}
}

// notifyApplied deposits a token with every subscriber, without blocking:
// a full channel already signals "something new", which is all the signal
// carries.
func (s *Server) notifyApplied() {
	s.subMu.Lock()
	for _, c := range s.subs {
		select {
		case c <- struct{}{}:
		default:
		}
	}
	s.subMu.Unlock()
}

// ApplyReplicated applies one record shipped from the primary: the
// verbatim WAL payload of the batch that published version seq there. The
// record must extend the follower's history exactly (seq == version+1,
// else ErrReplSeq), is validated like any client batch, lands in the
// follower's own log under the same sequence number, and applies through
// the deterministic path — which is the whole bit-identity argument.
// Follower-only; primaries reject it so a misrouted stream cannot fork
// history.
func (s *Server) ApplyReplicated(ctx context.Context, seq uint64, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case s.wsem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-s.wsem }()

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.role != RoleFollower:
		return fmt.Errorf("serve: ApplyReplicated on a %s (followers only)", s.role)
	case s.walErr != nil:
		return fmt.Errorf("%w: %w earlier: %v", ErrDegraded, ErrWALFailed, s.walErr)
	case seq != s.version+1:
		return fmt.Errorf("%w: record %d cannot follow version %d", ErrReplSeq, seq, s.version)
	}
	var b Batch
	if err := decodeBatch(payload, s.cfg.Dim, &b); err != nil {
		return fmt.Errorf("serve: decoding replicated record %d: %w", seq, err)
	}
	if err := s.validate(&b); err != nil {
		return fmt.Errorf("serve: replicated record %d: %w", seq, err)
	}
	if s.wal != nil {
		got, err := s.wal.Append(payload)
		if err != nil {
			s.degradeLocked(err)
			return fmt.Errorf("%w: %w: replicated append: %w", ErrDegraded, ErrWALFailed, err)
		}
		if got != seq {
			// The local log numbered the record differently than the
			// primary — the follower's history has silently forked. Nothing
			// appended after this point would be trustworthy: fail-stop.
			err := fmt.Errorf("serve: local log assigned seq %d to replicated record %d", got, seq)
			s.degradeLocked(err)
			return fmt.Errorf("%w: %w: %w", ErrDegraded, ErrWALFailed, err)
		}
	}
	if _, err := s.applyLocked(&b); err != nil {
		if s.wal != nil {
			s.degradeLocked(err)
		}
		return err
	}
	s.maybeCheckpointLocked()
	return nil
}

// EncodeCheckpoint serializes the server's exact current state to memory,
// byte-identical to a checkpoint file (CRC trailer included): the image a
// primary ships to seed a follower whose position it has compacted past.
// The returned version is the state's snapshot version.
func (s *Server) EncodeCheckpoint() (version uint64, data []byte, err error) {
	version, buf, err := s.encodeCheckpoint()
	if err != nil {
		return 0, nil, err
	}
	return version, appendCkptCRC(buf), nil
}

// InstallCheckpoint resets a follower to the exact state in a checkpoint
// image produced by EncodeCheckpoint (equivalently: the bytes of a
// checkpoint file). The image is CRC-verified and fully parsed into a
// scratch server before anything mutates, so a bad image leaves the
// follower untouched. On success the image must not precede the follower's
// current version (that would rewind history — ErrReplSeq), the state is
// adopted atomically behind the snapshot pointer, and on a durable
// follower the image is persisted as a regular checkpoint file and the
// local log realigned past it — a restart recovers from it like any other
// checkpoint.
func (s *Server) InstallCheckpoint(ctx context.Context, raw []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case s.wsem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-s.wsem }()
	// Lock order: ckptMu before mu, matching Checkpoint — a background
	// checkpoint holding ckptMu briefly takes mu to encode.
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	// Parse and verify against a scratch in-memory server first; only a
	// fully-loaded image is adopted.
	cfg := s.cfg
	cfg.WAL = nil
	fresh, err := NewServer(cfg)
	if err != nil {
		return err
	}
	if err := loadCheckpointBytes(fresh, raw); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.role != RoleFollower:
		return fmt.Errorf("serve: InstallCheckpoint on a %s (followers only)", s.role)
	case s.walErr != nil:
		return fmt.Errorf("%w: %w earlier: %v", ErrDegraded, ErrWALFailed, s.walErr)
	case fresh.version < s.version:
		return fmt.Errorf("%w: checkpoint at version %d precedes applied version %d", ErrReplSeq, fresh.version, s.version)
	}

	// Durable followers persist the image before adopting it: once the
	// in-memory state has moved past the local log a crash must find the
	// checkpoint on disk, or restart recovery rewinds behind the primary's
	// compaction horizon again.
	if s.wal != nil {
		if s.wal.NextSeq() > fresh.version+1 {
			return fmt.Errorf("serve: local log already holds seq %d, cannot install checkpoint at version %d", s.wal.NextSeq()-1, fresh.version)
		}
		if err := s.persistCheckpointLocked(fresh.version, raw); err != nil {
			return err
		}
		if s.wal.NextSeq() < fresh.version+1 {
			if err := s.wal.SkipTo(fresh.version + 1); err != nil {
				return err
			}
		}
		s.sinceCkpt = 0
	}

	s.shards = fresh.shards
	s.reg = fresh.reg
	s.mem = fresh.mem
	s.samples = fresh.samples
	s.pairs = fresh.pairs
	s.nitems = fresh.nitems
	s.version = fresh.version
	s.snap.Store(s.buildSnapshotLocked(nil, nil))
	s.notifyApplied()
	return nil
}

// persistCheckpointLocked writes a ready-made checkpoint image into the
// durability directory (write, fsync, rename, directory fsync), applies
// checkpoint retention, and compacts the log up to the oldest retained
// checkpoint. Called under s.mu with s.ckptMu held.
func (s *Server) persistCheckpointLocked(version uint64, buf []byte) error {
	fs := s.walCfg.fs()
	path := filepath.Join(s.walCfg.Dir, checkpointName(version))
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("serve: creating checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("serve: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("serve: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("serve: closing checkpoint: %w", err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("serve: publishing checkpoint: %w", err)
	}
	if err := fs.SyncDir(s.walCfg.Dir); err != nil {
		return fmt.Errorf("serve: syncing durability directory: %w", err)
	}
	s.lastCkpt.Store(version)

	versions, err := checkpointVersions(fs, s.walCfg.Dir)
	if err != nil {
		return err
	}
	keep := min(len(versions), s.walCfg.keepCheckpoints())
	for _, v := range versions[keep:] {
		if err := fs.Remove(filepath.Join(s.walCfg.Dir, checkpointName(v))); err != nil {
			return fmt.Errorf("serve: retiring old checkpoint: %w", err)
		}
	}
	return s.wal.TruncateBefore(versions[keep-1] + 1)
}

// WALOldestSeq reports the oldest record sequence the server's log still
// retains (ok=false on non-durable servers). A follower below this needs a
// checkpoint seed, not a suffix.
func (s *Server) WALOldestSeq() (seq uint64, ok bool) {
	s.mu.Lock()
	log := s.wal
	s.mu.Unlock()
	if log == nil {
		return 0, false
	}
	return log.OldestSeq(), true
}

// WALStreamFrom streams the server's retained log records with sequence >=
// from, in order, returning the next sequence to resume from — the
// shipper's read path (see wal.Log.StreamFrom; wal.ErrCompacted means the
// suffix is gone and the follower needs a checkpoint seed). Replication
// requires durability: non-durable servers have no log to ship.
func (s *Server) WALStreamFrom(from uint64, fn func(seq uint64, payload []byte) error) (next uint64, err error) {
	s.mu.Lock()
	log := s.wal
	s.mu.Unlock()
	if log == nil {
		return 0, errors.New("serve: replication needs a durable server (Config.WAL)")
	}
	return log.StreamFrom(from, fn)
}
