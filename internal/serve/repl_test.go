package serve

// Replication-surface tests: the serve layer's follower mode. The
// invariant everything here leans on is the same one crash recovery
// proves — a follower that applied the primary's records through
// ApplyReplicated is bit-identical to the primary at the same version.

import (
	"context"
	"errors"
	"testing"
	"time"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
	"hdcirc/internal/wal"
)

// shipAll streams every retained primary record at or above the
// follower's next version into the follower.
func shipAll(t *testing.T, primary, follower *Server) {
	t.Helper()
	ctx := context.Background()
	from := follower.Snapshot().Version() + 1
	if _, err := primary.WALStreamFrom(from, func(seq uint64, payload []byte) error {
		return follower.ApplyReplicated(ctx, seq, payload)
	}); err != nil {
		t.Fatalf("shipping from %d: %v", from, err)
	}
}

func TestFollowerRejectsClientWrites(t *testing.T) {
	s := mustOpen(t, durableConfig(t.TempDir()))
	defer s.Close()
	if err := s.BecomeFollower("http://primary:9000"); err != nil {
		t.Fatal(err)
	}
	if got := s.Role(); got != RoleFollower {
		t.Fatalf("Role = %v", got)
	}
	if got := s.PrimaryURL(); got != "http://primary:9000" {
		t.Fatalf("PrimaryURL = %q", got)
	}
	_, err := s.ApplyBatch(Batch{Train: []Sample{{Class: 0, HV: bitvec.Random(s.cfg.Dim, rng.New(1))}}})
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("ApplyBatch on follower = %v, want ErrNotPrimary", err)
	}
	if err == nil || !contains(err.Error(), "http://primary:9000") {
		t.Fatalf("error %v does not carry the primary URL", err)
	}
	// Promote-on-demand: writes flow again, replicated applies stop.
	if err := s.Promote(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyBatch(Batch{Items: []string{"x"}}); err != nil {
		t.Fatalf("ApplyBatch after Promote: %v", err)
	}
	if err := s.ApplyReplicated(context.Background(), 2, encodeBatch(&Batch{Items: []string{"y"}}, s.cfg.Dim)); err == nil {
		t.Fatal("ApplyReplicated on a primary succeeded")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestReplicatedFollowerBitIdentical ships a full random history to a
// follower and requires bit-identical state at the same version, across a
// follower restart (the follower's own WAL must carry the records).
func TestReplicatedFollowerBitIdentical(t *testing.T) {
	src := rng.New(42)
	primary := mustOpen(t, durableConfig(t.TempDir()))
	defer primary.Close()

	followerDir := t.TempDir()
	follower := mustOpen(t, durableConfig(followerDir))
	if err := follower.BecomeFollower(""); err != nil {
		t.Fatal(err)
	}

	cfg := primary.Config()
	for i := 0; i < 25; i++ {
		if _, err := primary.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}
	shipAll(t, primary, follower)

	probes := make([]*bitvec.Vector, 8)
	for i := range probes {
		probes[i] = bitvec.Random(cfg.Dim, src)
	}
	requireSameState(t, follower, primary, probes)

	// Replaying an already-applied record is a sequence error, not silent
	// double-application.
	var lastPayload []byte
	var lastSeq uint64
	if _, err := primary.WALStreamFrom(1, func(seq uint64, payload []byte) error {
		lastSeq, lastPayload = seq, append([]byte(nil), payload...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyReplicated(context.Background(), lastSeq, lastPayload); !errors.Is(err, ErrReplSeq) {
		t.Fatalf("stale replicated record = %v, want ErrReplSeq", err)
	}
	if err := follower.ApplyReplicated(context.Background(), lastSeq+2, lastPayload); !errors.Is(err, ErrReplSeq) {
		t.Fatalf("gapped replicated record = %v, want ErrReplSeq", err)
	}

	// Restart the follower from its own directory: local recovery must
	// land on the same bits, and shipping must resume where it left off.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	follower = mustOpen(t, durableConfig(followerDir))
	defer follower.Close()
	if err := follower.BecomeFollower(""); err != nil {
		t.Fatal(err)
	}
	requireSameState(t, follower, primary, probes)

	for i := 0; i < 10; i++ {
		if _, err := primary.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}
	shipAll(t, primary, follower)
	requireSameState(t, follower, primary, probes)
}

// TestInstallCheckpointSeedsLaggedFollower compacts the primary's log past
// a fresh follower's position, seeds it with EncodeCheckpoint, ships the
// suffix, and requires bit-identical state — across a follower restart,
// because InstallCheckpoint persists the image to the follower's own dir.
func TestInstallCheckpointSeedsLaggedFollower(t *testing.T) {
	src := rng.New(7)
	cfgDir := t.TempDir()
	cfg := durableConfig(cfgDir)
	cfg.WAL.KeepCheckpoints = 1
	cfg.WAL.SegmentBytes = 1024 // rotate often so TruncateBefore can drop segments
	primary := mustOpen(t, cfg)
	defer primary.Close()
	for i := 0; i < 20; i++ {
		if _, err := primary.ApplyBatch(randomBatch(primary.Config(), src)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := primary.ApplyBatch(randomBatch(primary.Config(), src)); err != nil {
			t.Fatal(err)
		}
	}
	oldest, ok := primary.WALOldestSeq()
	if !ok || oldest <= 1 {
		t.Fatalf("primary log not compacted: oldest %d ok %v", oldest, ok)
	}

	followerDir := t.TempDir()
	follower := mustOpen(t, durableConfig(followerDir))
	if err := follower.BecomeFollower(""); err != nil {
		t.Fatal(err)
	}
	// A fresh follower cannot suffix-catch-up past compaction.
	if _, err := primary.WALStreamFrom(1, func(uint64, []byte) error { return nil }); !errors.Is(err, wal.ErrCompacted) {
		t.Fatalf("StreamFrom(1) = %v, want ErrCompacted", err)
	}
	version, image, err := primary.EncodeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.InstallCheckpoint(context.Background(), image); err != nil {
		t.Fatal(err)
	}
	if got := follower.Snapshot().Version(); got != version {
		t.Fatalf("installed version %d, want %d", got, version)
	}
	shipAll(t, primary, follower)

	probes := []*bitvec.Vector{bitvec.Random(cfg.Dim, src), bitvec.Random(cfg.Dim, src)}
	requireSameState(t, follower, primary, probes)

	// Installing an image older than the applied version must rewind
	// nothing: advance both past the image's version first.
	if _, err := primary.ApplyBatch(randomBatch(primary.Config(), src)); err != nil {
		t.Fatal(err)
	}
	shipAll(t, primary, follower)
	if err := follower.InstallCheckpoint(context.Background(), image); !errors.Is(err, ErrReplSeq) {
		t.Fatalf("stale InstallCheckpoint = %v, want ErrReplSeq", err)
	}
	requireSameState(t, follower, primary, probes)

	// Restart: the persisted image + locally logged suffix must recover
	// the same bits.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	follower = mustOpen(t, durableConfig(followerDir))
	defer follower.Close()
	requireSameState(t, follower, primary, probes)
}

func TestSubscribeAppliedCoalesces(t *testing.T) {
	s := mustOpen(t, durableConfig(t.TempDir()))
	defer s.Close()
	ch, cancel := s.SubscribeApplied()
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := s.ApplyBatch(Batch{Items: []string{"a", "b"}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("no apply notification")
	}
	// Three applies coalesce to at most one pending token now.
	select {
	case <-ch:
	default:
	}
	select {
	case <-ch:
		t.Fatal("notifications did not coalesce")
	default:
	}
	cancel()
	if _, err := s.ApplyBatch(Batch{Items: []string{"c"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
		t.Fatal("notified after cancel")
	default:
	}
}

func TestStatsReplicationBlock(t *testing.T) {
	s := mustOpen(t, durableConfig(t.TempDir()))
	defer s.Close()
	if st := s.Stats(); st.Role != "" || st.Replication != nil {
		t.Fatalf("untiered server leaked replication stats: %+v", st)
	}
	if err := s.BecomeFollower("http://p"); err != nil {
		t.Fatal(err)
	}
	s.SetReplicationStatsFunc(func() ReplicationStats {
		return ReplicationStats{FollowerLagSeq: 3, LastAckedSeq: 17}
	})
	st := s.Stats()
	if st.Role != "follower" {
		t.Fatalf("Role = %q", st.Role)
	}
	if st.Replication == nil || st.Replication.FollowerLagSeq != 3 || st.Replication.LastAckedSeq != 17 {
		t.Fatalf("Replication = %+v", st.Replication)
	}
}
