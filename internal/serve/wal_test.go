package serve

// Durability tests. The load-bearing one is the crash-recovery property
// test: for a random op sequence over every write kind, kill the server at
// any record boundary or mid-record (byte-level truncation of the log
// tail) and require that Open recovers a snapshot bit-identical to a fresh
// in-memory server replaying the surviving prefix sequentially — with and
// without checkpoints in the history. Run under -race in CI.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/embed"
	"hdcirc/internal/rng"
	"hdcirc/internal/sdm"
)

// durableConfig is the full-surface fixture: several shards, regression
// and cleanup memory enabled, so every batch kind flows through the log.
func durableConfig(dir string) Config {
	cfg := Config{Dim: 384, Classes: 7, Shards: 3, Workers: 2, Seed: 1234}
	labelSet := core.Config{Kind: core.KindLevel, M: 16, D: cfg.Dim}.Build(rng.Sub(cfg.Seed, "test/labels"))
	cfg.Labels = embed.NewScalarEncoder(labelSet, 0, 15)
	mc := sdm.Config{Dim: cfg.Dim, Locations: 300, Radius: activationTestRadius(cfg.Dim), Seed: 5}
	cfg.Cleanup = &mc
	if dir != "" {
		cfg.WAL = &WALConfig{Dir: dir}
	}
	return cfg
}

// activationTestRadius keeps SDM activations sparse but non-empty at the
// small test dimension.
func activationTestRadius(d int) int { return d/2 - d/16 }

// randomBatch draws one batch mixing every write kind, deterministically
// from src.
func randomBatch(cfg Config, src *rng.Stream) Batch {
	var b Batch
	for i, n := 0, int(src.Uint64()%4); i < n; i++ {
		b.Train = append(b.Train, Sample{Class: int(src.Uint64() % uint64(cfg.Classes)), HV: bitvec.Random(cfg.Dim, src)})
	}
	if len(b.Train) > 1 && src.Uint64()%4 == 0 {
		// Exact inverse of something just trained: exercises Untrain.
		b.Untrain = append(b.Untrain, b.Train[0])
	}
	if src.Uint64()%3 == 0 {
		b.Pairs = append(b.Pairs, Pair{X: bitvec.Random(cfg.Dim, src), Value: float64(src.Uint64() % 16)})
	}
	for i, n := 0, int(src.Uint64()%3); i < n; i++ {
		b.Items = append(b.Items, fmt.Sprintf("item/%d", src.Uint64()%50))
	}
	if src.Uint64()%3 == 0 {
		w := bitvec.Random(cfg.Dim, src)
		b.Writes = append(b.Writes, MemWrite{Address: w, Data: w})
	}
	if src.Uint64()%5 == 0 {
		ref := &Refine{Epochs: 1 + int(src.Uint64()%2)}
		for i, n := 0, 1+int(src.Uint64()%3); i < n; i++ {
			ref.HVs = append(ref.HVs, bitvec.Random(cfg.Dim, src))
			ref.Labels = append(ref.Labels, int(src.Uint64()%uint64(cfg.Classes)))
		}
		b.Refine = ref
	}
	return b
}

// snapshotBytes serializes a snapshot for bit-level comparison.
func snapshotBytes(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireSameState asserts two servers are bit-identical: snapshot stream,
// item lookups, and cleanup-memory reads.
func requireSameState(t *testing.T, got, want *Server, probes []*bitvec.Vector) {
	t.Helper()
	gs, ws := got.Snapshot(), want.Snapshot()
	if gs.Version() != ws.Version() {
		t.Fatalf("version %d, want %d", gs.Version(), ws.Version())
	}
	if !bytes.Equal(snapshotBytes(t, gs), snapshotBytes(t, ws)) {
		t.Fatal("snapshot streams differ")
	}
	for i, q := range probes {
		gsym, gsim, gok := gs.Lookup(q)
		wsym, wsim, wok := ws.Lookup(q)
		if gsym != wsym || gsim != wsim || gok != wok {
			t.Fatalf("probe %d: lookup (%q,%v,%v), want (%q,%v,%v)", i, gsym, gsim, gok, wsym, wsim, wok)
		}
		gw, gi, gok := gs.Cleanup(q, 3)
		ww, wi, wok := ws.Cleanup(q, 3)
		if gok != wok || gi != wi || (gok && !gw.Equal(ww)) {
			t.Fatalf("probe %d: cleanup reads differ", i)
		}
		gv, gok2 := gs.PredictValue(q)
		wv, wok2 := ws.PredictValue(q)
		if gv != wv || gok2 != wok2 {
			t.Fatalf("probe %d: regression (%v,%v), want (%v,%v)", i, gv, gok2, wv, wok2)
		}
	}
}

func mustOpen(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenWithoutWALIsNewServer(t *testing.T) {
	s := mustOpen(t, durableConfig(""))
	defer s.Close()
	if s.Stats().Durable {
		t.Fatal("in-memory server claims durability")
	}
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on an in-memory server accepted")
	}
}

func TestDurableCleanShutdownRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	src := rng.New(2026)
	batches := make([]Batch, 30)
	for i := range batches {
		batches[i] = randomBatch(cfg, src)
	}

	a := mustOpen(t, cfg)
	if !a.Stats().Durable {
		t.Fatal("durable server claims no durability")
	}
	for i, b := range batches {
		if _, err := a.ApplyBatch(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyBatch(batches[0]); err == nil {
		t.Fatal("write after Close accepted")
	}

	// Reopen and compare against a sequential in-memory replay.
	b := mustOpen(t, cfg)
	defer b.Close()
	ref := mustOpen(t, durableConfig(""))
	for _, batch := range batches {
		if _, err := ref.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	probes := make([]*bitvec.Vector, 8)
	psrc := rng.New(55)
	for i := range probes {
		probes[i] = bitvec.Random(cfg.Dim, psrc)
	}
	requireSameState(t, b, ref, probes)
}

// TestCrashRecoveryProperty is the acceptance property: for a random op
// sequence, kill at any record boundary or mid-record → Recover yields a
// snapshot bit-identical to replaying the acknowledged prefix
// sequentially. The "kill" is byte-level: the log directory is copied
// as-is (no Close, no final sync) and its tail truncated at an arbitrary
// offset; recovery must then match the in-memory reference replay of
// exactly the records that survived intact — and never fewer than were
// already durable at the cut.
func TestCrashRecoveryProperty(t *testing.T) {
	const nBatches = 18
	for _, seed := range []uint64{1, 7, 42} {
		for _, ckptEvery := range []int{-1, 5} { // no checkpoints / frequent checkpoints
			t.Run(fmt.Sprintf("seed=%d/ckpt=%d", seed, ckptEvery), func(t *testing.T) {
				dir := t.TempDir()
				cfg := durableConfig(dir)
				cfg.WAL.CheckpointEvery = ckptEvery
				cfg.WAL.SegmentBytes = 4096 // several segments per run
				src := rng.New(seed)
				batches := make([]Batch, nBatches)
				for i := range batches {
					batches[i] = randomBatch(cfg, src)
				}

				s := mustOpen(t, cfg)
				for i, b := range batches {
					if _, err := s.ApplyBatch(b); err != nil {
						t.Fatalf("batch %d: %v", i, err)
					}
				}
				// Wait for any in-flight background checkpoint, then abandon
				// the server WITHOUT closing the log — the crash.
				s.ckptWG.Wait()

				// Knife positions: every segment boundary region and plenty of
				// mid-record cuts, driven by the same deterministic stream.
				for trial := 0; trial < 12; trial++ {
					crashDir := t.TempDir()
					copyDir(t, dir, crashDir)
					cutTail(t, crashDir, src)

					ccfg := durableConfig(crashDir)
					ccfg.WAL.CheckpointEvery = ckptEvery
					ccfg.WAL.SegmentBytes = 4096
					rec, err := Open(ccfg)
					if err != nil {
						t.Fatalf("trial %d: recovery failed: %v", trial, err)
					}
					v := int(rec.Snapshot().Version())
					if v > nBatches {
						t.Fatalf("trial %d: recovered version %d past %d appended", trial, v, nBatches)
					}
					ref := mustOpen(t, durableConfig(""))
					for _, b := range batches[:v] {
						if _, err := ref.ApplyBatch(b); err != nil {
							t.Fatal(err)
						}
					}
					probes := []*bitvec.Vector{bitvec.Random(cfg.Dim, rng.New(9)), bitvec.Random(cfg.Dim, rng.New(10))}
					requireSameState(t, rec, ref, probes)

					// The recovered server must keep taking writes durably.
					if _, err := rec.ApplyBatch(batches[0]); err != nil {
						t.Fatalf("trial %d: write after recovery: %v", trial, err)
					}
					if err := rec.Close(); err != nil {
						t.Fatalf("trial %d: close after recovery: %v", trial, err)
					}
				}
			})
		}
	}
}

// copyDir copies every regular file in src to dst.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// cutTail truncates the newest log segment at a position drawn from src:
// sometimes a record boundary survives, sometimes the knife lands
// mid-record — both must recover.
func cutTail(t *testing.T, dir string, src *rng.Stream) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		return
	}
	// Newest segment sorts last (zero-padded names).
	path := filepath.Join(dir, segs[len(segs)-1])
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(src.Uint64() % uint64(fi.Size()+1))
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointCompactionBoundsRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.WAL.SegmentBytes = 2048
	cfg.WAL.CheckpointEvery = -1 // manual
	src := rng.New(77)

	s := mustOpen(t, cfg)
	batches := make([]Batch, 24)
	for i := range batches {
		batches[i] = randomBatch(cfg, src)
		if _, err := s.ApplyBatch(batches[i]); err != nil {
			t.Fatal(err)
		}
		if i == 15 {
			v, err := s.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if v != 16 {
				t.Fatalf("checkpoint at version %d, want 16", v)
			}
		}
	}
	if st := s.Stats(); st.LastCheckpoint != 16 {
		t.Fatalf("Stats.LastCheckpoint = %d, want 16", st.LastCheckpoint)
	}
	// Compaction must have removed the fully-covered early segments.
	segsAfter := s.wal.Segments()
	for _, p := range segsAfter {
		if strings.HasSuffix(p, fmt.Sprintf("wal-%020d.seg", 1)) {
			t.Fatal("first segment survived a covering checkpoint")
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery = checkpoint + suffix must equal the full sequential replay.
	rec := mustOpen(t, cfg)
	defer rec.Close()
	ref := mustOpen(t, durableConfig(""))
	for _, b := range batches {
		if _, err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	probes := []*bitvec.Vector{bitvec.Random(cfg.Dim, rng.New(3))}
	requireSameState(t, rec, ref, probes)
}

func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.WAL.CheckpointEvery = -1
	src := rng.New(99)

	s := mustOpen(t, cfg)
	var batches []Batch
	for i := 0; i < 10; i++ {
		b := randomBatch(cfg, src)
		batches = append(batches, b)
		if _, err := s.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Bit-rot the checkpoint. The default segment size keeps the whole log
	// in one (tail) segment, which compaction never removes, so recovery
	// must fall back to full replay and still be exact.
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.hckp"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no checkpoint written: %v", err)
	}
	raw, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(names[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery with corrupt checkpoint failed: %v", err)
	}
	defer rec.Close()
	ref := mustOpen(t, durableConfig(""))
	for _, b := range batches {
		if _, err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, rec, ref, []*bitvec.Vector{bitvec.Random(cfg.Dim, rng.New(4))})
	// The poisoned file must be preserved for forensics.
	if aside, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.corrupt")); len(aside) == 0 {
		t.Error("corrupt checkpoint silently discarded")
	}
}

// TestMismatchedConfigPreservesCheckpoints: a restart with the wrong
// shape must abort, NOT set the checkpoints aside as corrupt — operator
// error may never destroy the recovery set.
func TestMismatchedConfigPreservesCheckpoints(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	src := rng.New(13)
	s := mustOpen(t, cfg)
	for i := 0; i < 5; i++ {
		if _, err := s.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	wrong := durableConfig(dir)
	wrong.Classes = 11
	if _, err := Open(wrong); err == nil {
		t.Fatal("mismatched config recovered successfully")
	}
	if aside, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.corrupt")); len(aside) != 0 {
		t.Fatalf("config mismatch destroyed checkpoints: %v", aside)
	}
	// The correctly-configured retry must still recover everything.
	rec := mustOpen(t, cfg)
	defer rec.Close()
	if v := rec.Snapshot().Version(); v != 5 {
		t.Fatalf("recovered version %d after config-mismatch detour, want 5", v)
	}
}

// TestFallbackCheckpointSurvivesCompaction: compaction may only drop log
// records below the OLDEST retained checkpoint, so when the newest
// checkpoint bit-rots, the older one plus the surviving suffix still
// recovers exactly.
func TestFallbackCheckpointSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.WAL.CheckpointEvery = -1
	cfg.WAL.SegmentBytes = 2048 // many small segments so compaction bites
	src := rng.New(88)

	s := mustOpen(t, cfg)
	var batches []Batch
	apply := func(n int) {
		for i := 0; i < n; i++ {
			b := randomBatch(cfg, src)
			batches = append(batches, b)
			if _, err := s.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
		}
	}
	apply(8)
	if _, err := s.Checkpoint(); err != nil { // older checkpoint at v8
		t.Fatal(err)
	}
	apply(8)
	if _, err := s.Checkpoint(); err != nil { // newest at v16: compaction runs
		t.Fatal(err)
	}
	apply(4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Rot the NEWEST checkpoint; recovery must fall back to v8 and replay
	// records 9..20 — which compaction is required to have kept.
	raw, err := os.ReadFile(filepath.Join(dir, checkpointName(16)))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x10
	if err := os.WriteFile(filepath.Join(dir, checkpointName(16)), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("fallback recovery failed: %v", err)
	}
	defer rec.Close()
	ref := mustOpen(t, durableConfig(""))
	for _, b := range batches {
		if _, err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, rec, ref, []*bitvec.Vector{bitvec.Random(cfg.Dim, rng.New(6))})
	if aside, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.corrupt")); len(aside) != 1 {
		t.Errorf("rotted checkpoint not set aside: %v", aside)
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	cfg := durableConfig("")
	src := rng.New(321)
	for i := 0; i < 50; i++ {
		b := randomBatch(cfg, src)
		payload := encodeBatch(&b, cfg.Dim)
		var got Batch
		if err := decodeBatch(payload, cfg.Dim, &got); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if len(got.Train) != len(b.Train) || len(got.Untrain) != len(b.Untrain) ||
			len(got.Pairs) != len(b.Pairs) || len(got.Items) != len(b.Items) ||
			len(got.Writes) != len(b.Writes) || (got.Refine == nil) != (b.Refine == nil) {
			t.Fatalf("batch %d: shape mismatch after round trip", i)
		}
		for j := range b.Train {
			if got.Train[j].Class != b.Train[j].Class || !got.Train[j].HV.Equal(b.Train[j].HV) {
				t.Fatalf("batch %d: train %d mismatch", i, j)
			}
		}
		for j := range b.Pairs {
			if got.Pairs[j].Value != b.Pairs[j].Value || !got.Pairs[j].X.Equal(b.Pairs[j].X) {
				t.Fatalf("batch %d: pair %d mismatch", i, j)
			}
		}
		for j := range b.Items {
			if got.Items[j] != b.Items[j] {
				t.Fatalf("batch %d: item %d mismatch", i, j)
			}
		}
		for j := range b.Writes {
			if !got.Writes[j].Address.Equal(b.Writes[j].Address) || !got.Writes[j].Data.Equal(b.Writes[j].Data) {
				t.Fatalf("batch %d: write %d mismatch", i, j)
			}
		}
		if b.Refine != nil {
			if got.Refine.Epochs != b.Refine.Epochs || len(got.Refine.HVs) != len(b.Refine.HVs) {
				t.Fatalf("batch %d: refine mismatch", i)
			}
		}
		// Truncations at every byte must error, never panic.
		for cut := 0; cut < len(payload); cut += 7 {
			var junk Batch
			if err := decodeBatch(payload[:cut], cfg.Dim, &junk); err == nil {
				t.Fatalf("batch %d: truncation at %d accepted", i, cut)
			}
		}
	}
}

func TestDurableRestoreRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, durableConfig(dir))
	defer s.Close()
	if err := s.Restore(bytes.NewReader(nil)); err == nil ||
		!strings.Contains(err.Error(), "durable") {
		t.Fatalf("Restore on a durable server: %v", err)
	}
}
