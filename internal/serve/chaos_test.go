package serve

// Chaos property test: random op sequences (writes, checkpoints,
// recoveries) under randomly scheduled storage faults — ENOSPC, EIO,
// torn writes, failed fsyncs, failed directory syncs, failed checkpoint
// renames — injected through the vfs seam. The property, for every seed:
//
//   - Every fault surfaces as a typed error (ErrWALFailed wrapped in
//     ErrDegraded for the write plane) while reads keep serving the last
//     published snapshot at exactly the acknowledged version.
//   - After the fault clears, Recover returns the server to healthy, and
//     its state is bit-identical to a fresh in-memory server replaying
//     exactly the applied batches — every acknowledged batch, in order,
//     plus at most the one in-flight batch per incident that reached the
//     log before its fault (the same record a crash restart would replay).
//   - A restart from the directory agrees with the recovered server.
//
// An acknowledged-then-lost write is the failing case, and the reason
// this test exists.
//
// Seeds: a fixed set by default (deterministic in CI), plus every crasher
// recorded under testdata/chaos/, plus CHAOS_SEEDS=1,2,3 (exact seeds) or
// CHAOS_RANDOM=n (n time-derived seeds, the nightly mode). A failing
// random seed is written to testdata/chaos/ so the failure rides into the
// repo as a regression once committed.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
	"hdcirc/internal/vfs"
)

const chaosDir = "testdata/chaos"

func chaosSeeds(t *testing.T) []uint64 {
	t.Helper()
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		var seeds []uint64
		for _, part := range strings.Split(env, ",") {
			n, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				t.Fatalf("CHAOS_SEEDS entry %q: %v", part, err)
			}
			seeds = append(seeds, n)
		}
		return seeds
	}
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	// Recorded crashers replay as regressions.
	if entries, err := os.ReadDir(chaosDir); err == nil {
		for _, e := range entries {
			if n, err := strconv.ParseUint(strings.TrimPrefix(e.Name(), "seed-"), 10, 64); err == nil {
				seeds = append(seeds, n)
			}
		}
	}
	if n, _ := strconv.Atoi(os.Getenv("CHAOS_RANDOM")); n > 0 {
		base := uint64(time.Now().UnixNano())
		for i := 0; i < n; i++ {
			seeds = append(seeds, base+uint64(i)*0x9e3779b97f4a7c15)
		}
	}
	return seeds
}

// saveCrasher records a failing seed so the schedule replays forever.
func saveCrasher(t *testing.T, seed uint64) {
	t.Helper()
	if err := os.MkdirAll(chaosDir, 0o755); err != nil {
		t.Logf("recording crasher: %v", err)
		return
	}
	path := filepath.Join(chaosDir, fmt.Sprintf("seed-%d", seed))
	if err := os.WriteFile(path, []byte(strconv.FormatUint(seed, 10)+"\n"), 0o644); err != nil {
		t.Logf("recording crasher: %v", err)
		return
	}
	t.Logf("crasher recorded: %s", path)
}

// chaosFault draws one fault from the menu. Count 1 models a transient
// glitch, Count 0 a fault that persists until the operator (the test's
// reconcile step) clears it.
func chaosFault(src *rng.Stream) vfs.Fault {
	count := src.Intn(2) // 0 = sticky, 1 = one-shot
	switch src.Intn(7) {
	case 0:
		return vfs.Fault{Op: vfs.OpWrite, Path: ".seg", Err: vfs.ErrNoSpace, Count: count}
	case 1: // torn write: a prefix reaches the platter, then EIO
		return vfs.Fault{Op: vfs.OpWrite, Path: ".seg", Err: vfs.ErrIO, Count: count, KeepBytes: src.Intn(16)}
	case 2:
		return vfs.Fault{Op: vfs.OpSync, Path: ".seg", Err: vfs.ErrIO, Count: count}
	case 3:
		return vfs.Fault{Op: vfs.OpSyncDir, Err: vfs.ErrIO, Count: count}
	case 4:
		return vfs.Fault{Op: vfs.OpWrite, Path: ".ckpt", Err: vfs.ErrNoSpace, Count: count}
	case 5:
		return vfs.Fault{Op: vfs.OpRename, Path: ".ckpt", Err: vfs.ErrIO, Count: count}
	default:
		return vfs.Fault{Op: vfs.OpSync, Path: ".ckpt", Err: vfs.ErrIO, Count: count}
	}
}

func TestChaosFaultSchedules(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			if err := runChaos(t, seed); err != nil {
				saveCrasher(t, seed)
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

func runChaos(t *testing.T, seed uint64) error {
	t.Helper()
	src := rng.New(seed)
	ffs := vfs.NewFaultFS(nil)
	ffs.Seed(seed)
	cfg := durableConfig(t.TempDir())
	cfg.WAL.FS = ffs
	cfg.WAL.SegmentBytes = int64(2048 + src.Intn(4096)) // small: rotation under fire
	cfg.WAL.CheckpointEvery = -1                        // checkpoints only when the schedule says so
	s := mustOpen(t, cfg)
	defer s.Close()

	var (
		applied []Batch // the model: batches the recovered server must equal
		pending *Batch  // the one batch per incident that MAY be in the log
		armed   bool
	)

	// reconcile clears the fault and recovers, then settles whether the
	// incident's in-flight batch reached the log: the version says.
	reconcile := func(step int) error {
		ffs.Clear()
		armed = false
		if err := s.Recover(); err != nil {
			return fmt.Errorf("step %d: recover on cleared fault: %v", step, err)
		}
		if st := s.State(); st != StateHealthy {
			return fmt.Errorf("step %d: state %v after recover", step, st)
		}
		v := s.Snapshot().Version()
		switch {
		case v == uint64(len(applied)):
			pending = nil // never reached the log (or its tail was torn off)
		case pending != nil && v == uint64(len(applied))+1:
			applied = append(applied, *pending) // durable but unacked: replayed
			pending = nil
		default:
			return fmt.Errorf("step %d: version %d after recovery, %d acked, pending=%v — acked writes lost or invented",
				step, v, len(applied), pending != nil)
		}
		return nil
	}

	steps := 60
	for i := 0; i < steps; i++ {
		switch r := src.Intn(10); {
		case r < 6: // a write batch
			b := randomBatch(cfg, src)
			_, err := s.ApplyBatch(b)
			if err == nil {
				applied = append(applied, b)
				if v := s.Snapshot().Version(); v != uint64(len(applied)) {
					return fmt.Errorf("step %d: version %d after ack %d", i, v, len(applied))
				}
				break
			}
			// Every write failure must be typed — and the first one of an
			// incident is the only batch that may have touched the log.
			if !errors.Is(err, ErrWALFailed) || !errors.Is(err, ErrDegraded) {
				return fmt.Errorf("step %d: untyped write failure: %v", i, err)
			}
			if pending == nil && s.State() == StateDegraded {
				pending = &b
			}
			// Reads must keep serving the acked state mid-incident.
			if v := s.Snapshot().Version(); v != uint64(len(applied)) {
				return fmt.Errorf("step %d: degraded reads at version %d, want %d", i, v, len(applied))
			}
		case r == 6: // a checkpoint; failure is tolerated but must be clean
			if _, err := s.Checkpoint(); err != nil {
				if leftover := globTmp(t, cfg.WAL.Dir); len(leftover) > 0 {
					return fmt.Errorf("step %d: failed checkpoint leaked %v", i, leftover)
				}
			}
		case r == 7: // the disk develops a fault
			if !armed {
				ffs.Arm(chaosFault(src))
				armed = true
			}
		case r == 8: // the operator shows up
			if s.State() == StateDegraded {
				if err := reconcile(i); err != nil {
					return err
				}
			}
		default: // a read probe: the snapshot must always be consultable
			snap := s.Snapshot()
			if snap == nil || snap.Version() != uint64(len(applied)) {
				return fmt.Errorf("step %d: read probe at version %v, want %d", i, snap.Version(), len(applied))
			}
		}
	}

	// Final heal: every schedule ends with a recovered server.
	if err := reconcile(steps); err != nil {
		return err
	}
	if leftover := globTmp(t, cfg.WAL.Dir); len(leftover) > 0 {
		return fmt.Errorf("end of run: leaked tmp files %v", leftover)
	}

	// The recovered server equals a fresh replay of exactly the applied
	// batches…
	ref := mustOpen(t, durableConfig(""))
	defer ref.Close()
	for k, b := range applied {
		if _, err := ref.ApplyBatch(b); err != nil {
			return fmt.Errorf("reference replay batch %d: %v", k, err)
		}
	}
	probes := make([]*bitvec.Vector, 6)
	psrc := rng.New(seed ^ 0xdecafbad)
	for i := range probes {
		probes[i] = bitvec.Random(cfg.Dim, psrc)
	}
	requireSameState(t, s, ref, probes)

	// …and so does a restart from the directory on a healthy disk.
	if err := s.Close(); err != nil {
		return fmt.Errorf("closing chaos server: %v", err)
	}
	clean := cfg
	clean.WAL = &WALConfig{Dir: cfg.WAL.Dir}
	re := mustOpen(t, clean)
	defer re.Close()
	requireSameState(t, re, ref, probes)
	return nil
}

// globTmp lists leftover atomic-write temporaries in the durability dir.
func globTmp(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}
