package serve

// Snapshot persistence and warm start. Because a snapshot is immutable,
// saving needs no locks and can run while the server keeps serving reads
// and applying writes — the bytes describe exactly one published version.
//
//	stream: magic "HSRV" | uint32 format | uint64 version | uint64 samples
//	        | uint64 pairs | uint8 flags | HCLS classifier stream
//	        | [HREG regressor stream] | uint64 item count | framed symbols
//
// The classifier and regressor sections reuse internal/model's wire
// formats, so a snapshot's model section is readable by plain
// model.ReadClassifier too. Like ReadClassifier, a warm start re-seeds
// the shard accumulators with UNIT weight — the loaded server predicts
// bit-identically to the saved snapshot, but continued refinement moves
// faster than it would have on the original accumulators (the training
// counts are not persisted). The SDM cleanup memory is rebuildable cache
// state and is intentionally not persisted.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/model"
)

const (
	snapshotMagic  = "HSRV"
	snapshotFormat = 1

	flagRegressor = 1 << 0
)

// WriteTo serializes the snapshot. It is safe to call at any time,
// including while the originating server keeps serving and applying.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	header := make([]byte, 4+4+8+8+8+1)
	copy(header, snapshotMagic)
	binary.LittleEndian.PutUint32(header[4:], snapshotFormat)
	binary.LittleEndian.PutUint64(header[8:], s.version)
	binary.LittleEndian.PutUint64(header[16:], s.samples)
	binary.LittleEndian.PutUint64(header[24:], s.pairs)
	if s.reg != nil {
		header[32] |= flagRegressor
	}
	var n int64
	k, err := w.Write(header)
	n += int64(k)
	if err != nil {
		return n, err
	}

	// Classifier section: assemble the global prototypes into a
	// model.Classifier and reuse its wire format. Unit-weight seeding
	// leaves no accumulator ties, so the streamed finalized vectors are
	// exactly the snapshot prototypes.
	clf := model.NewClassifier(s.classes, s.dim, 0)
	for c := 0; c < s.classes; c++ {
		clf.Add(c, s.ClassVector(c))
	}
	k64, err := clf.WriteTo(w)
	n += k64
	if err != nil {
		return n, err
	}

	if s.reg != nil {
		reg := model.NewRegressor(s.dim, 0)
		reg.Add(s.reg, bitvec.New(s.dim)) // x ⊗ 0 = x: seeds the model vector itself
		k64, err = reg.WriteTo(w)
		n += k64
		if err != nil {
			return n, err
		}
	}

	// Item symbols in shard-major creation order. Vectors are not stored:
	// they are a pure function of (seed, symbol), so a same-seed server
	// regenerates them bit-identically on load.
	var count uint64
	for i := range s.shards {
		count += uint64(len(s.shards[i].syms))
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], count)
	k, err = w.Write(buf[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	for i := range s.shards {
		for _, sym := range s.shards[i].syms {
			binary.LittleEndian.PutUint32(buf[:4], uint32(len(sym)))
			k, err = w.Write(buf[:4])
			n += int64(k)
			if err != nil {
				return n, err
			}
			k, err = io.WriteString(w, sym)
			n += int64(k)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// Restore warm-starts a FRESH server from a stream written by
// Snapshot.WriteTo: the loaded server publishes a snapshot that predicts,
// looks up and decodes bit-identically to the saved one, and can keep
// taking writes (with the unit-weight re-seeding caveat documented above).
// The server must be empty (no applied batches) and shaped compatibly
// (same dimension and class count; the item-vector seed must match the
// saving server's for lookups to agree).
func (s *Server) Restore(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.version != 0 || s.samples != 0 || s.pairs != 0 || s.nitems != 0 {
		return errors.New("serve: Restore needs a fresh server (writes already applied)")
	}
	if s.wal != nil {
		// A durable server's state must come through its own log/checkpoint
		// recovery (Open); a side-channel restore would diverge from the log.
		return errors.New("serve: Restore on a durable server (recover through Open instead)")
	}

	header := make([]byte, 4+4+8+8+8+1)
	if _, err := io.ReadFull(r, header); err != nil {
		return fmt.Errorf("serve: reading snapshot header: %w", err)
	}
	if string(header[:4]) != snapshotMagic {
		return errors.New("serve: bad magic (not a server snapshot stream)")
	}
	if f := binary.LittleEndian.Uint32(header[4:]); f != snapshotFormat {
		return fmt.Errorf("serve: unsupported snapshot format %d", f)
	}
	version := binary.LittleEndian.Uint64(header[8:])
	samples := binary.LittleEndian.Uint64(header[16:])
	pairs := binary.LittleEndian.Uint64(header[24:])
	flags := header[32]

	clf, err := model.ReadClassifier(r, 0)
	if err != nil {
		return fmt.Errorf("serve: reading classifier section: %w", err)
	}
	if clf.NumClasses() != s.cfg.Classes || clf.Dim() != s.cfg.Dim {
		return fmt.Errorf("serve: snapshot is %d classes × %d dims, server %d × %d",
			clf.NumClasses(), clf.Dim(), s.cfg.Classes, s.cfg.Dim)
	}

	var regModel *bitvec.Vector
	if flags&flagRegressor != 0 {
		if s.reg == nil {
			return errors.New("serve: snapshot carries a regressor but the server has no label encoder")
		}
		loaded, err := model.ReadRegressor(r, 0)
		if err != nil {
			return fmt.Errorf("serve: reading regressor section: %w", err)
		}
		if loaded.Dim() != s.cfg.Dim {
			return fmt.Errorf("serve: regressor dimension %d, server %d", loaded.Dim(), s.cfg.Dim)
		}
		regModel = loaded.Model()
	}

	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return fmt.Errorf("serve: reading item count: %w", err)
	}
	count := binary.LittleEndian.Uint64(buf[:])
	if count > 1<<28 {
		return fmt.Errorf("serve: implausible item count %d", count)
	}
	syms := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return fmt.Errorf("serve: reading item %d: %w", i, err)
		}
		l := binary.LittleEndian.Uint32(buf[:4])
		if l > 1<<20 {
			return fmt.Errorf("serve: implausible symbol length %d", l)
		}
		raw := make([]byte, l)
		if _, err := io.ReadFull(r, raw); err != nil {
			return fmt.Errorf("serve: reading item %d: %w", i, err)
		}
		syms = append(syms, string(raw))
	}

	// Everything parsed — mutate. Seed each class's shard accumulator with
	// the loaded prototype at unit weight: no counter is zero, so the
	// deterministic re-finalize reproduces the prototype bit for bit.
	for c := 0; c < s.cfg.Classes; c++ {
		sh := s.shards[s.shardOf[c]]
		sh.cls.Add(sh.local[c], clf.ClassVector(c))
	}
	if regModel != nil {
		s.reg.Add(regModel, bitvec.New(s.cfg.Dim))
	}
	for _, sym := range syms {
		sh, err := s.routeKey("item/" + sym)
		if err != nil {
			return err
		}
		s.shards[sh].items.Get(sym)
	}
	s.version = version
	s.samples = samples
	s.pairs = pairs
	s.nitems = len(syms)
	s.snap.Store(s.buildSnapshotLocked(nil, nil))
	return nil
}
