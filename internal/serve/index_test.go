package serve

import (
	"fmt"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/index"
	"hdcirc/internal/rng"
)

// internSymbols pushes n symbols through one batch and returns the
// published snapshot.
func internSymbols(t *testing.T, s *Server, n int) *Snapshot {
	t.Helper()
	var b Batch
	for i := 0; i < n; i++ {
		b.Items = append(b.Items, fmt.Sprintf("sym/%d", i))
	}
	snap, err := s.ApplyBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestSnapshotLookupIndexedMatchesExactConfig(t *testing.T) {
	const d, n = 1024, 1200
	mk := func(ix *index.Config) *Server {
		s, err := NewServer(Config{Dim: d, Classes: 4, Shards: 3, Seed: 21, Index: ix})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Exact-mode index (candidates cover any shard) vs indexing disabled:
	// published lookups must agree symbol-for-symbol and bit-for-bit.
	indexed := mk(&index.Config{MinSize: 50, Candidates: n})
	exact := mk(&index.Config{Disabled: true})
	si := internSymbols(t, indexed, n)
	se := internSymbols(t, exact, n)
	engaged := false
	for i := range si.shards {
		if si.shards[i].itemIx != nil {
			engaged = true
		}
	}
	if !engaged {
		t.Fatal("no shard engaged the item index")
	}
	src := rng.Sub(3, "serve-lookup")
	for i := 0; i < 80; i++ {
		var q *bitvec.Vector
		if i%2 == 0 {
			q = bitvec.Random(d, src)
		} else {
			hv, ok := se.Item(fmt.Sprintf("sym/%d", i*7%n))
			if !ok {
				t.Fatal("seeded symbol missing")
			}
			q = hv.Clone()
			for f := 0; f < d/4; f++ {
				q.FlipBit(int(src.Uint64() % uint64(d)))
			}
		}
		ws, wsim, wok := se.Lookup(q)
		gs, gsim, gok := si.Lookup(q)
		if gs != ws || gsim != wsim || gok != wok {
			t.Fatalf("query %d: indexed (%q,%v,%v), exact (%q,%v,%v)", i, gs, gsim, gok, ws, wsim, wok)
		}
	}
}

func TestSnapshotLookupIndexedRecallOnNoisyProbes(t *testing.T) {
	const d, n = 2048, 4000
	s, err := NewServer(Config{Dim: d, Classes: 2, Shards: 2, Seed: 8,
		Index: &index.Config{MinSize: 500}})
	if err != nil {
		t.Fatal(err)
	}
	snap := internSymbols(t, s, n)
	src := rng.Sub(12, "serve-recall")
	hits := 0
	const queries = 150
	for i := 0; i < queries; i++ {
		sym := fmt.Sprintf("sym/%d", (i*53)%n)
		hv, ok := snap.Item(sym)
		if !ok {
			t.Fatalf("symbol %s missing", sym)
		}
		q := hv.Clone()
		for b := 0; b < d; b++ {
			if src.Float64() < 0.3 {
				q.FlipBit(b)
			}
		}
		if got, _, _ := snap.Lookup(q); got == sym {
			hits++
		}
	}
	if recall := float64(hits) / queries; recall < 0.99 {
		t.Fatalf("snapshot indexed recall %.4f below 0.99 (%d/%d)", recall, hits, queries)
	}
}

func TestSnapshotIndexReusedAcrossCleanBatches(t *testing.T) {
	const d = 512
	s, err := NewServer(Config{Dim: d, Classes: 4, Shards: 2, Seed: 5,
		Index: &index.Config{MinSize: 50, Candidates: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	snap1 := internSymbols(t, s, 200)
	// A classifier-only batch must not rebuild (or drop) the item indexes.
	hv := bitvec.Random(d, rng.Sub(9, "train"))
	snap2, err := s.ApplyBatch(Batch{Train: []Sample{{Class: 1, HV: hv}}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap1.shards {
		if snap2.shards[i].itemIx != snap1.shards[i].itemIx {
			t.Fatalf("shard %d item index not shared across an item-clean batch", i)
		}
	}
	// A small item batch keeps every index: the dirtied shard carries its
	// previous index over and serves the new symbol from the exact tail
	// scan (no O(items) rebuild on the write path).
	snap3, err := s.ApplyBatch(Batch{Items: []string{"late/0"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap3.shards {
		if snap3.shards[i].itemIx != snap2.shards[i].itemIx {
			t.Fatalf("shard %d index rebuilt for a one-symbol batch", i)
		}
	}
	hv2, ok := snap3.Item("late/0")
	if !ok {
		t.Fatal("late symbol missing from snapshot")
	}
	if sym, _, _ := snap3.Lookup(hv2); sym != "late/0" {
		t.Fatalf("tail lookup got %q, want late/0", sym)
	}
	// Once the un-indexed tail outgrows the rebuild bound, exactly the
	// dirtied shards re-index and cover the full collection again.
	var big Batch
	for i := 0; i < 200; i++ {
		big.Items = append(big.Items, fmt.Sprintf("bulk/%d", i))
	}
	snap4, err := s.ApplyBatch(big)
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap4.shards {
		v := &snap4.shards[i]
		if v.itemIx == nil {
			t.Fatalf("shard %d lost its index", i)
		}
		if tail := len(v.vecs) - v.itemIx.Len(); tail > index.MaxTail(v.itemIx.Len()) {
			t.Fatalf("shard %d tail %d exceeds rebuild bound", i, tail)
		}
	}
}

func TestSnapshotPredictIndexedExactModeMatchesLinear(t *testing.T) {
	// Enough classes that shards cross the index threshold; exact-mode
	// candidates keep prediction bit-identical to the disabled config.
	const d, k = 512, 600
	mk := func(ix *index.Config) *Snapshot {
		s, err := NewServer(Config{Dim: d, Classes: k, Shards: 3, Seed: 31, Index: ix})
		if err != nil {
			t.Fatal(err)
		}
		var b Batch
		src := rng.Sub(77, "train")
		for c := 0; c < k; c++ {
			b.Train = append(b.Train, Sample{Class: c, HV: bitvec.Random(d, src)})
		}
		snap, err := s.ApplyBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	si := mk(&index.Config{MinSize: 100, Candidates: k})
	se := mk(&index.Config{Disabled: true})
	engaged := false
	for i := range si.shards {
		if si.shards[i].protoIx != nil {
			engaged = true
		}
	}
	if !engaged {
		t.Fatal("no shard engaged the prototype index")
	}
	src := rng.Sub(6, "serve-predict")
	for i := 0; i < 100; i++ {
		q := bitvec.Random(d, src)
		wc, wd := se.Predict(q)
		gc, gd := si.Predict(q)
		if gc != wc || gd != wd {
			t.Fatalf("query %d: indexed (%d,%v), linear (%d,%v)", i, gc, gd, wc, wd)
		}
	}
}
