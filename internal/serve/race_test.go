package serve

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
)

// TestConcurrentReadersBitIdenticalToSequential is the serving layer's
// acceptance stress test, meant to run under -race: 8 readers hammer
// Predict/Scores/Lookup while a writer streams training batches, item
// churn and refinement through ApplyBatch. Every observation a reader
// makes is tagged with the snapshot version it came from and checked —
// after the fact — against a sequential replay of the same batches on the
// unsharded reference model: reads must be bit-identical to the
// sequential model at every published version.
func TestConcurrentReadersBitIdenticalToSequential(t *testing.T) {
	const (
		readers   = 8
		batches   = 24
		batchSize = 12
		nQueries  = 12
	)
	cfg := testConfig(4)
	s := mustServer(t, cfg)

	queries := randomSamples(nQueries, 7001)
	trainBatches := make([][]Sample, batches)
	for b := range trainBatches {
		trainBatches[b] = randomSamples(batchSize, uint64(8000+b))
	}

	// Sequential replay first: record, per version, the expected
	// prediction and distance for every probe query.
	type expect struct {
		class []int
		dist  []float64
	}
	expected := make([]expect, batches+1)
	ref := referenceClassifier(cfg)
	record := func(v int) {
		e := expect{class: make([]int, nQueries), dist: make([]float64, nQueries)}
		for i, q := range queries {
			e.class[i], e.dist[i] = ref.Predict(q.HV)
		}
		expected[v] = e
	}
	ref.Finalize()
	record(0)
	for b, samples := range trainBatches {
		for _, smp := range samples {
			ref.Add(smp.Class, smp.HV)
		}
		ref.Finalize()
		record(b + 1)
	}

	var (
		wg        sync.WaitGroup
		done      atomic.Bool
		checks    atomic.Int64
		mismatch  atomic.Int64
		badDetail atomic.Value
	)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !done.Load() {
				snap := s.Snapshot() // one consistent version for the whole pass
				v := snap.Version()
				for i, q := range queries {
					class, dist := snap.Predict(q.HV)
					e := expected[v]
					if class != e.class[i] || dist != e.dist[i] {
						mismatch.Add(1)
						badDetail.Store([3]int{int(v), i, class})
					}
					checks.Add(1)
				}
				// Exercise the other read surfaces for race coverage.
				_ = snap.Scores(queries[g%nQueries].HV)
				_, _, _ = snap.Lookup(queries[g%nQueries].HV)
				_, _ = snap.Item("warm/3")
			}
		}(g)
	}

	// The writer streams batches while the readers run; every published
	// snapshot gets its prototypes checked against the replay too.
	for b, samples := range trainBatches {
		batch := Batch{Train: samples}
		if b%5 == 1 {
			batch.Items = []string{"warm/1", "warm/2", "warm/3"}
		}
		snap, err := s.ApplyBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := snap.Version(), uint64(b+1); got != want {
			t.Fatalf("published version %d, want %d", got, want)
		}
	}
	done.Store(true)
	wg.Wait()

	if checks.Load() < readers*nQueries {
		t.Fatalf("readers made only %d checks", checks.Load())
	}
	if m := mismatch.Load(); m != 0 {
		t.Fatalf("%d of %d concurrent reads diverged from the sequential model (first: version/query/class %v)",
			m, checks.Load(), badDetail.Load())
	}

	// And the final state matches the replay exactly.
	final := s.Snapshot()
	for c := 0; c < cfg.Classes; c++ {
		if !final.ClassVector(c).Equal(ref.ClassVector(c)) {
			t.Fatalf("final prototype %d differs from sequential model", c)
		}
	}
}

// TestConcurrentWriters checks ApplyBatch is safe (serialized) for
// concurrent callers: versions stay dense and the result equals a
// sequential application of the same multiset of batches.
func TestConcurrentWriters(t *testing.T) {
	cfg := testConfig(3)
	s := mustServer(t, cfg)
	const writers = 6
	batchesPerWriter := 4
	all := make([][]Sample, writers*batchesPerWriter)
	for i := range all {
		all[i] = randomSamples(8, uint64(9000+i))
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesPerWriter; b++ {
				if _, err := s.ApplyBatch(Batch{Train: all[w*batchesPerWriter+b]}); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if v := s.Snapshot().Version(); v != uint64(len(all)) {
		t.Fatalf("final version %d, want %d (dense single-writer ordering)", v, len(all))
	}
	// Accumulator addition commutes, so any interleaving must equal the
	// sequential application.
	ref := referenceClassifier(cfg)
	for _, samples := range all {
		for _, smp := range samples {
			ref.Add(smp.Class, smp.HV)
		}
	}
	final := s.Snapshot()
	for c := 0; c < cfg.Classes; c++ {
		if !final.ClassVector(c).Equal(ref.ClassVector(c)) {
			t.Fatalf("prototype %d differs from sequential multiset application", c)
		}
	}
}

// TestSaveUnderConcurrentReadsAndWrites serializes snapshots while readers
// and a writer are active, then warm-starts servers from the saved bytes
// and checks each restore reproduces the exact version it captured.
func TestSaveUnderConcurrentReadsAndWrites(t *testing.T) {
	cfg := testConfig(2)
	s := mustServer(t, cfg)
	queries := randomSamples(8, 7100)

	var wg sync.WaitGroup
	var done atomic.Bool
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				for _, q := range queries {
					s.Predict(q.HV)
				}
			}
		}()
	}

	type saved struct {
		bytes []byte
		snap  *Snapshot
	}
	var saves []saved
	for b := 0; b < 10; b++ {
		snap, err := s.ApplyBatch(Batch{Train: randomSamples(10, uint64(7200+b))})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := snap.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		saves = append(saves, saved{bytes: buf.Bytes(), snap: snap})
	}
	done.Store(true)
	wg.Wait()

	for i, sv := range saves {
		fresh := mustServer(t, cfg)
		if err := fresh.Restore(bytes.NewReader(sv.bytes)); err != nil {
			t.Fatalf("restore of save %d: %v", i, err)
		}
		got := fresh.Snapshot()
		if got.Version() != sv.snap.Version() {
			t.Fatalf("save %d restored version %d, want %d", i, got.Version(), sv.snap.Version())
		}
		for c := 0; c < cfg.Classes; c++ {
			if !got.ClassVector(c).Equal(sv.snap.ClassVector(c)) {
				t.Fatalf("save %d: restored prototype %d differs", i, c)
			}
		}
		for qi, q := range queries {
			ac, ad := sv.snap.Predict(q.HV)
			bc, bd := got.Predict(q.HV)
			if ac != bc || ad != bd {
				t.Fatalf("save %d query %d: restored predict differs", i, qi)
			}
		}
	}
}

// TestSnapshotStableWhileHeld pins the immutability contract directly: a
// held snapshot's observable state must not move, no matter how much the
// server trains afterwards.
func TestSnapshotStableWhileHeld(t *testing.T) {
	s := mustServer(t, testConfig(3))
	if _, err := s.ApplyBatch(Batch{Train: randomSamples(16, 7300)}); err != nil {
		t.Fatal(err)
	}
	held := s.Snapshot()
	queries := randomSamples(8, 7301)
	before := make([]int, len(queries))
	for i, q := range queries {
		before[i], _ = held.Predict(q.HV)
	}
	protos := make([]*bitvec.Vector, s.Config().Classes)
	for c := range protos {
		protos[c] = held.ClassVector(c).Clone()
	}
	for b := 0; b < 8; b++ {
		if _, err := s.ApplyBatch(Batch{Train: randomSamples(16, uint64(7400+b))}); err != nil {
			t.Fatal(err)
		}
	}
	for i, q := range queries {
		if got, _ := held.Predict(q.HV); got != before[i] {
			t.Fatalf("held snapshot's prediction %d drifted", i)
		}
	}
	for c := range protos {
		if !held.ClassVector(c).Equal(protos[c]) {
			t.Fatalf("held snapshot's prototype %d mutated", c)
		}
	}
}

// referenceClassifier equivalence also needs the tie vectors to be what the
// server derives; this guards the derivation against accidental renames.
func TestClassTieVectorDerivation(t *testing.T) {
	a := classTieVector(5, 128, 3)
	b := bitvec.Random(128, rng.Sub(5, "serve/ties/class/3"))
	if !a.Equal(b) {
		t.Fatal("classTieVector derivation changed; update referenceClassifier and persisted-snapshot docs")
	}
}
