package serve

import (
	"sort"

	"hdcirc/internal/batch"
	"hdcirc/internal/bitvec"
	"hdcirc/internal/embed"
	"hdcirc/internal/index"
	"hdcirc/internal/sdm"
)

// shardView is one shard's frozen contribution to a snapshot: finalized
// class prototypes (in ascending global-class order), the item-memory
// generation, and — once either collection outgrows the configured index
// threshold — sketch indexes over them, built exactly once at snapshot
// publication so the read plane stays lock-free. All slices, vectors and
// indexes are immutable once published.
type shardView struct {
	classes []int            // global class ids, ascending
	proto   []*bitvec.Vector // finalized prototypes, parallel to classes
	syms    []string         // item symbols in creation order
	vecs    []*bitvec.Vector // item vectors, parallel to syms
	protoIx *index.Index     // sketch index over proto; nil below threshold
	itemIx  *index.Index     // sketch index over vecs; nil below threshold
}

// Snapshot is an immutable, versioned, finalized view of every model the
// server hosts. All methods are pure reads, safe from any number of
// goroutines, and mutually consistent: everything observed through one
// snapshot reflects exactly the write batches up to its version.
type Snapshot struct {
	version uint64
	dim     int
	classes int
	shardOf []int // global class id → shard (shared, fixed at server birth)
	shards  []shardView
	reg     *bitvec.Vector       // finalized regressor model; nil until pairs exist
	labels  *embed.ScalarEncoder // label decoder; nil when regression disabled
	mem     *sdm.Memory          // frozen cleanup-memory generation; nil when disabled
	samples uint64
	pairs   uint64
	items   int
}

// Version returns the snapshot's publication number; version 0 is the
// empty model published by NewServer.
func (s *Snapshot) Version() uint64 { return s.version }

// Dim returns the hypervector dimension.
func (s *Snapshot) Dim() int { return s.dim }

// Classes returns the number of classifier classes.
func (s *Snapshot) Classes() int { return s.classes }

// Samples returns the cumulative number of classifier training samples.
func (s *Snapshot) Samples() uint64 { return s.samples }

// Pairs returns the cumulative number of regression pairs.
func (s *Snapshot) Pairs() uint64 { return s.pairs }

// NumItems returns the number of interned item symbols.
func (s *Snapshot) NumItems() int { return s.items }

// Predict returns the class whose prototype is most similar to the query
// and the normalized distance. Each shard scans its own prototypes with
// the fused nearest-neighbor kernel — or, past the configured index
// threshold, through the per-snapshot sketch index — and across shards,
// exact ties resolve to the lowest global class id. Without an engaged
// index (or with it in exact mode) the result is bit-identical to an
// unsharded classifier scanning classes 0..k-1 in order.
func (s *Snapshot) Predict(q *bitvec.Vector) (class int, distance float64) {
	bestClass, bestHD := -1, s.dim+1
	for i := range s.shards {
		v := &s.shards[i]
		if len(v.proto) == 0 {
			continue
		}
		var idx, hd int
		if v.protoIx != nil {
			idx, hd = v.protoIx.Nearest(q)
		} else {
			idx, hd = bitvec.Nearest(q, v.proto)
		}
		c := v.classes[idx]
		if hd < bestHD || (hd == bestHD && c < bestClass) {
			bestClass, bestHD = c, hd
		}
	}
	return bestClass, float64(bestHD) / float64(s.dim)
}

// PredictBatch classifies every query against this one snapshot across the
// pool, bit-identical to sequential Predict calls.
func (s *Snapshot) PredictBatch(p *batch.Pool, qs []*bitvec.Vector) (classes []int, distances []float64) {
	classes = make([]int, len(qs))
	distances = make([]float64, len(qs))
	p.ForEach(len(qs), func(i int) {
		classes[i], distances[i] = s.Predict(qs[i])
	})
	return classes, distances
}

// Scores returns the query's similarity to every class prototype, indexed
// by global class id.
func (s *Snapshot) Scores(q *bitvec.Vector) []float64 {
	out := make([]float64, s.classes)
	for i := range s.shards {
		v := &s.shards[i]
		if len(v.proto) == 0 {
			continue
		}
		hds := bitvec.DistanceMany(q, v.proto, make([]int, len(v.proto)))
		for l, hd := range hds {
			out[v.classes[l]] = 1 - float64(hd)/float64(s.dim)
		}
	}
	return out
}

// RawScores returns the query's raw Hamming distance to every class
// prototype, indexed by global class id. This is the scatter half of
// cross-process scatter-gather predict: integer distances merge exactly
// (the float similarities Scores returns would round), so a cluster
// client can fan this out to every shard, keep each shard's owned-class
// rows, and reproduce the unsharded Predict tie-break bit for bit.
func (s *Snapshot) RawScores(q *bitvec.Vector) []int {
	out := make([]int, s.classes)
	for i := range s.shards {
		v := &s.shards[i]
		if len(v.proto) == 0 {
			continue
		}
		hds := bitvec.DistanceMany(q, v.proto, make([]int, len(v.proto)))
		for l, hd := range hds {
			out[v.classes[l]] = hd
		}
	}
	return out
}

// ClassVector returns the finalized prototype of a global class id. The
// vector is shared and immutable.
func (s *Snapshot) ClassVector(class int) *bitvec.Vector {
	if class < 0 || class >= s.classes {
		return nil
	}
	v := &s.shards[s.shardOf[class]]
	l := sort.SearchInts(v.classes, class)
	return v.proto[l]
}

// Lookup runs item-memory cleanup: the interned symbol whose vector is
// most similar to q, with its similarity. Shards past the configured index
// threshold are scanned through their per-snapshot sketch index (sublinear
// candidate generation, exact re-rank); symbols interned after the index
// was built — it may be carried over from an earlier snapshot while the
// un-indexed tail stays small — are covered by an exact pruned scan, and
// shards below the threshold scan linearly. Within a shard exact ties
// resolve to the earliest-created symbol; across shards, to the
// lexicographically smallest one. ok is false when no items are interned.
func (s *Snapshot) Lookup(q *bitvec.Vector) (symbol string, sim float64, ok bool) {
	bestHD := s.dim + 1
	for i := range s.shards {
		v := &s.shards[i]
		if len(v.vecs) == 0 {
			continue
		}
		var idx, hd int
		if v.itemIx != nil {
			idx, hd = v.itemIx.Nearest(q)
			if tail := v.vecs[v.itemIx.Len():]; len(tail) > 0 {
				// Strict improvement only: the (earlier-created) indexed
				// prefix keeps exact ties.
				if ti, th := bitvec.NearestPruned(q, tail, hd); ti >= 0 {
					idx, hd = v.itemIx.Len()+ti, th
				}
			}
		} else {
			idx, hd = bitvec.Nearest(q, v.vecs)
		}
		if hd < bestHD || (hd == bestHD && v.syms[idx] < symbol) {
			symbol, bestHD, ok = v.syms[idx], hd, true
		}
	}
	if !ok {
		return "", -1, false
	}
	return symbol, 1 - float64(bestHD)/float64(s.dim), true
}

// Item returns the vector interned for a symbol, or ok=false when the
// symbol is not a member. The scan is linear in the shard's item count.
func (s *Snapshot) Item(symbol string) (hv *bitvec.Vector, ok bool) {
	for i := range s.shards {
		v := &s.shards[i]
		for j, sym := range v.syms {
			if sym == symbol {
				return v.vecs[j], true
			}
		}
	}
	return nil, false
}

// PredictValue decodes the regression prediction for an encoded sample
// against the label encoder: the fused unbind-then-decode step on the
// snapshot's finalized regressor model. ok is false when regression is
// disabled or no pairs have been learned.
func (s *Snapshot) PredictValue(q *bitvec.Vector) (value float64, ok bool) {
	if s.reg == nil || s.labels == nil {
		return 0, false
	}
	return s.labels.DecodeBound(s.reg, q), true
}

// RegressorModel returns the finalized regression model hypervector, or
// nil when regression is disabled or untrained.
func (s *Snapshot) RegressorModel() *bitvec.Vector { return s.reg }

// Cleanup reads the snapshot's cleanup-memory generation, iterating reads
// to a fixed point (at most maxIters). ok is false when the memory is
// disabled or no hard location activates.
func (s *Snapshot) Cleanup(q *bitvec.Vector, maxIters int) (word *bitvec.Vector, iters int, ok bool) {
	if s.mem == nil {
		return nil, 0, false
	}
	if maxIters < 1 {
		maxIters = 1
	}
	return s.mem.ReadIterative(q, maxIters)
}
