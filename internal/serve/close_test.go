package serve

// Shutdown under pressure: Close racing in-flight writes, the background
// checkpointer, and the auto-retry probe must neither panic nor lie —
// double-close stays idempotent, and a write that arrives after Close is
// ErrClosed (an orderly shutdown), never ErrWALFailed (a disk lie).

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hdcirc/internal/rng"
	"hdcirc/internal/vfs"
)

func TestCloseRacesApplyBatchDuringSlowFsync(t *testing.T) {
	cfg, ffs := faultedConfig(t)
	s := mustOpen(t, cfg)

	src := rng.New(17)
	if _, err := s.ApplyBatch(randomBatch(cfg, src)); err != nil {
		t.Fatal(err)
	}
	// The next fsync stalls 150ms with no error — a disk having a moment.
	ffs.Arm(vfs.Fault{Op: vfs.OpSync, Path: ".seg", Delay: 150 * time.Millisecond, Count: 1})

	var wg sync.WaitGroup
	writeErrs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.ApplyBatch(randomBatch(cfg, rng.New(uint64(100+i))))
			writeErrs <- err
		}()
	}
	// Close lands while the first of them is provably inside the stalled
	// fsync; it must wait the write out, not panic, not corrupt.
	for ffs.Fired() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close during slow fsync: %v", err)
	}
	wg.Wait()
	close(writeErrs)
	for err := range writeErrs {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("racing write: %v, want nil or ErrClosed", err)
		}
	}
}

func TestCloseRacesBackgroundCheckpointer(t *testing.T) {
	cfg, ffs := faultedConfig(t)
	cfg.WAL.CheckpointEvery = 1 // every batch spawns a background checkpoint
	s := mustOpen(t, cfg)

	// Checkpoint fsyncs stall so Close reliably lands mid-checkpoint.
	ffs.Arm(vfs.Fault{Op: vfs.OpSync, Path: ".ckpt", Delay: 50 * time.Millisecond})
	src := rng.New(23)
	for i := 0; i < 3; i++ {
		if _, err := s.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close during background checkpoint: %v", err)
	}
}

func TestDoubleCloseIdempotent(t *testing.T) {
	cfg, _ := faultedConfig(t)
	s := mustOpen(t, cfg)
	if _, err := s.ApplyBatch(randomBatch(cfg, rng.New(1))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v, want nil", err)
	}
	// Concurrent double-close is just as idempotent.
	s2 := mustOpen(t, durableConfig(t.TempDir()))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s2.Close(); err != nil {
				t.Errorf("concurrent close: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestWriteAfterCloseIsErrClosedNotWALFailed(t *testing.T) {
	cfg, _ := faultedConfig(t)
	s := mustOpen(t, cfg)
	if _, err := s.ApplyBatch(randomBatch(cfg, rng.New(2))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := s.ApplyBatch(randomBatch(cfg, rng.New(3)))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v, want ErrClosed", err)
	}
	if errors.Is(err, ErrWALFailed) || errors.Is(err, ErrDegraded) {
		t.Fatalf("write after close claims a disk fault: %v", err)
	}
	// Reads outlive Close: the published snapshot stays serviceable.
	if snap := s.Snapshot(); snap == nil || snap.Version() != 1 {
		t.Fatalf("snapshot after close: %v", snap)
	}
}

func TestCloseStopsAutoRetryProbe(t *testing.T) {
	cfg, ffs := faultedConfig(t)
	cfg.WAL.RetryInterval = time.Hour // would park a probe ~forever
	s := mustOpen(t, cfg)

	ffs.Arm(vfs.Fault{Op: vfs.OpWrite, Path: ".seg", Err: vfs.ErrIO})
	if _, err := s.ApplyBatch(randomBatch(cfg, rng.New(4))); err == nil {
		t.Fatal("faulted append succeeded")
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close with parked probe: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung waiting for the retry probe")
	}
}
