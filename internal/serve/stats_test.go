package serve

import (
	"strings"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
)

// TestStatsDurabilityObservability covers the operator-facing durability
// fields: WAL sequence tracks the version (record seq == snapshot
// version), segment count is live, checkpoints surface, and the sticky
// WAL error state is visible instead of silent.
func TestStatsDurabilityObservability(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.WAL.CheckpointEvery = -1 // manual only; the test drives cadence
	s := mustOpen(t, cfg)
	src := rng.New(99)

	if st := s.Stats(); !st.Durable || st.WALSeq != 0 || st.WALError != "" {
		t.Fatalf("fresh durable stats: %+v", st)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.WALSeq != 5 || st.WALSeq != st.Version {
		t.Errorf("wal_seq = %d at version %d, want equal", st.WALSeq, st.Version)
	}
	if st.WALSegments < 1 {
		t.Errorf("wal_segments = %d, want >= 1", st.WALSegments)
	}
	if st.LastCheckpoint != 0 {
		t.Errorf("last_checkpoint = %d before any checkpoint", st.LastCheckpoint)
	}

	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LastCheckpoint != 5 {
		t.Errorf("last_checkpoint = %d after checkpoint at 5", st.LastCheckpoint)
	}

	// Force the sticky WAL failure path: close the log behind the server's
	// back, so the next append fails and every later write fails fast —
	// and the stats say so.
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyBatch(randomBatch(cfg, src)); err == nil {
		t.Fatal("ApplyBatch succeeded on a closed log")
	}
	st = s.Stats()
	if st.WALError == "" {
		t.Fatal("sticky WAL failure not surfaced in stats")
	}
	if !strings.Contains(st.WALError, "closed") {
		t.Errorf("wal_error = %q, want the underlying fault", st.WALError)
	}
	if st.Version != 5 {
		t.Errorf("failed write advanced version to %d", st.Version)
	}

	// In-memory servers report zero/empty durability fields.
	mem, err := NewServer(Config{Dim: 128, Classes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.ApplyBatch(Batch{Train: []Sample{{Class: 0, HV: bitvec.Random(128, src)}}}); err != nil {
		t.Fatal(err)
	}
	if st := mem.Stats(); st.Durable || st.WALSeq != 0 || st.WALSegments != 0 || st.WALError != "" {
		t.Errorf("in-memory stats carry durability fields: %+v", st)
	}
}
