package serve

// Durability: the write-ahead log and checkpoint layer over the snapshot
// server. Every ApplyBatch is encoded and appended to an internal/wal log
// BEFORE it mutates the master models, so an acknowledged batch survives a
// crash; recovery replays the log into a fresh server, and because
// ApplyBatch is deterministic (fixed tie vectors, single-writer ordering),
// the recovered snapshot is bit-identical to the pre-crash one.
//
// Checkpoints bound recovery cost: a checkpoint file persists the portable
// snapshot (the existing HSRV stream, which embeds the HCLS/HREG model
// wire formats) PLUS the exact training state — per-class integer
// accumulators, the regressor accumulator and the written SDM counters.
// The exact sections are what keep checkpointed recovery bit-identical:
// the HSRV stream alone re-seeds accumulators at unit weight, which
// predicts identically but would diverge once the replayed log suffix
// keeps training. Once a checkpoint at version C is durable, every log
// segment fully below C is dropped, so recovery reads one checkpoint plus
// the log suffix instead of the whole history.
//
//	checkpoint: magic "HCKP" | uint32 format | uint64 dim | uint32 classes
//	            | uint32 shards | uint8 flags | HSRV snapshot stream
//	            | per shard: uint8 hasClassifier [HCST classifier state]
//	            | [HRST regressor state] | [HSDM cleanup-memory state]
//
// Log record sequence numbers equal snapshot versions: record N is the
// batch whose application published version N.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/vfs"
	"hdcirc/internal/wal"
)

const (
	ckptMagic  = "HCKP"
	ckptFormat = 1
	ckptPrefix = "ckpt-"
	ckptExt    = ".hckp"

	flagCkptRegressor = 1 << 0
	flagCkptCleanup   = 1 << 1
)

// ckptCRCTable checksums whole checkpoint files (Castagnoli, matching the
// log's record CRCs).
var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// appendCkptCRC appends the whole-image CRC trailer to an encoded
// checkpoint body, yielding the exact bytes checkpoint files (and
// replication checkpoint seeds) carry.
func appendCkptCRC(buf []byte) []byte {
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(buf, ckptCRCTable))
	return append(buf, crc[:]...)
}

// errCkptCorrupt marks a checkpoint whose BYTES are damaged (short file,
// CRC mismatch, foreign magic/format). Only these are set aside so
// recovery can fall back to an older checkpoint; every other load failure
// — a dimension/class/shard mismatch, a missing label encoder — means the
// server was opened with the wrong config, and destroying the recovery
// set over operator input would be unforgivable: those abort Open intact.
var errCkptCorrupt = errors.New("serve: checkpoint corrupt")

// WALConfig enables durable serving: every applied batch is written ahead
// to a segmented log in Dir and checkpoints bound recovery cost. The zero
// value of each knob selects the documented default.
type WALConfig struct {
	// Dir is the durability directory (required): log segments and
	// checkpoint files live here.
	Dir string
	// SyncEvery batches fsync: the log is synced once per SyncEvery
	// appended batches. 1 (the default) makes every acknowledged batch
	// durable before ApplyBatch returns; larger values trade the tail of a
	// machine crash for throughput; negative disables fsync (a process
	// crash still loses nothing — the OS has the bytes).
	SyncEvery int
	// SegmentBytes rotates log segments past this size; <= 0 selects 4 MiB.
	SegmentBytes int64
	// CheckpointEvery persists a checkpoint (in the background) after this
	// many applied batches, then drops fully-covered log segments; 0
	// selects 256, negative disables automatic checkpoints (Checkpoint can
	// still be called explicitly).
	CheckpointEvery int
	// KeepCheckpoints retains this many newest checkpoint files; <= 0
	// selects 2 (the newest plus one fallback).
	KeepCheckpoints int
	// FS is the filesystem the log and checkpoints live on; nil selects
	// the real one. Chaos tests hand in a vfs.FaultFS to inject storage
	// faults into the whole durability path.
	FS vfs.FS
	// RetryInterval, when > 0, arms the degraded-mode recovery probe: a
	// server that entered degraded state on a WAL fault re-tries recovery
	// every RetryInterval until it succeeds or RetryMax attempts are
	// spent. 0 (the default) disables the probe — recovery then only
	// happens through an explicit Recover call.
	RetryInterval time.Duration
	// RetryMax bounds the probe's attempts; <= 0 selects 8.
	RetryMax int
}

// fs resolves the configured filesystem (nil means the real one).
func (w WALConfig) fs() vfs.FS { return vfs.Default(w.FS) }

func (w WALConfig) retryMax() int {
	if w.RetryMax > 0 {
		return w.RetryMax
	}
	return 8
}

func (w WALConfig) checkpointEvery() int {
	switch {
	case w.CheckpointEvery > 0:
		return w.CheckpointEvery
	case w.CheckpointEvery < 0:
		return math.MaxInt
	default:
		return 256
	}
}

func (w WALConfig) keepCheckpoints() int {
	if w.KeepCheckpoints > 0 {
		return w.KeepCheckpoints
	}
	return 2
}

// Open builds a Server and, when cfg.WAL is set, makes it durable:
// existing state in cfg.WAL.Dir is recovered (newest loadable checkpoint,
// then the log suffix replayed batch by batch), and every subsequent
// ApplyBatch is written ahead to the log. With cfg.WAL == nil it is
// exactly NewServer.
func Open(cfg Config) (*Server, error) {
	if cfg.WAL == nil {
		return NewServer(cfg)
	}
	w := *cfg.WAL
	if w.Dir == "" {
		return nil, errors.New("serve: WAL config needs a directory")
	}
	fs := w.fs()
	if err := fs.MkdirAll(w.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating durability directory: %w", err)
	}
	if err := removeStaleCheckpointTmp(fs, w.Dir); err != nil {
		return nil, err
	}

	// Newest loadable checkpoint wins; unreadable ones are set aside (never
	// deleted) and the next older one is tried on a fresh server, so a
	// half-written or bit-rotted checkpoint cannot poison recovery.
	s, ckptVersion, err := loadLatestCheckpoint(cfg, fs, w.Dir)
	if err != nil {
		return nil, err
	}

	log, err := wal.Open(w.Dir, wal.Options{SegmentBytes: w.SegmentBytes, SyncEvery: w.SyncEvery, FS: w.FS})
	if err != nil {
		return nil, err
	}
	err = log.Replay(ckptVersion+1, func(seq uint64, payload []byte) error {
		var b Batch
		if err := decodeBatch(payload, s.cfg.Dim, &b); err != nil {
			return fmt.Errorf("serve: decoding log record %d: %w", seq, err)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if err := s.validate(&b); err != nil {
			return fmt.Errorf("serve: replaying log record %d: %w", seq, err)
		}
		if s.version+1 != seq {
			return fmt.Errorf("serve: log record %d cannot follow version %d (checkpoint and log disagree)", seq, s.version)
		}
		if _, err := s.applyLocked(&b); err != nil {
			return fmt.Errorf("serve: replaying log record %d: %w", seq, err)
		}
		return nil
	})
	if err != nil {
		log.Close()
		return nil, err
	}
	// Resume numbering after a checkpoint newer than every surviving log
	// record (compaction dropped the whole suffix).
	if next := s.version + 1; log.NextSeq() < next {
		if err := log.SkipTo(next); err != nil {
			log.Close()
			return nil, err
		}
	}
	s.wal = log
	s.walCfg = w
	s.lastCkpt.Store(ckptVersion)
	return s, nil
}

// checkpointName returns the checkpoint file name for a version.
func checkpointName(version uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, version, ckptExt)
}

// removeStaleCheckpointTmp deletes ckpt-*.hckp.tmp files left behind by a
// crash mid-checkpoint. They were never renamed into place, so they hold
// no recoverable state — only the rename publishes a checkpoint — and
// each abandoned one otherwise leaks a full model image of disk forever.
func removeStaleCheckpointTmp(fs vfs.FS, dir string) error {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("serve: reading durability directory: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptExt+".tmp") {
			continue
		}
		if err := fs.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("serve: removing stale checkpoint temp file: %w", err)
		}
	}
	return nil
}

// checkpointVersions lists checkpoint versions present in dir, descending.
func checkpointVersions(fs vfs.FS, dir string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: reading durability directory: %w", err)
	}
	var versions []uint64
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptExt) {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptExt), 10, 64)
		if err != nil {
			continue
		}
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] > versions[j] })
	return versions, nil
}

// loadLatestCheckpoint returns a server warm-started from the newest
// loadable checkpoint in dir (and that checkpoint's version), or a fresh
// empty server when none loads. Each candidate is tried on its own fresh
// server so a failed partial load never pollutes the survivor.
func loadLatestCheckpoint(cfg Config, fs vfs.FS, dir string) (*Server, uint64, error) {
	versions, err := checkpointVersions(fs, dir)
	if err != nil {
		return nil, 0, err
	}
	for _, v := range versions {
		s, err := NewServer(cfg)
		if err != nil {
			return nil, 0, err
		}
		path := filepath.Join(dir, checkpointName(v))
		switch err := loadCheckpointFile(s, fs, path); {
		case err == nil:
			return s, v, nil
		case errors.Is(err, errCkptCorrupt):
			// Damaged bytes: keep them for forensics, fall back to the
			// next older checkpoint.
			_ = fs.Rename(path, path+".corrupt")
		default:
			// Shape/config mismatch or I/O fault — not corruption. Abort
			// with the checkpoint set intact so a correctly-configured
			// retry can still recover.
			return nil, 0, err
		}
	}
	s, err := NewServer(cfg)
	return s, 0, err
}

// loadCheckpointFile restores a fresh server's exact state from one
// checkpoint file. The whole file is verified against its CRC trailer
// before a byte of it is parsed, so bit rot anywhere — even in sections
// later superseded by the exact-state ones — is detected, not absorbed.
func loadCheckpointFile(s *Server, fs vfs.FS, path string) error {
	raw, err := vfs.ReadFile(fs, path)
	if err != nil {
		return err
	}
	return loadCheckpointBytes(s, raw)
}

// loadCheckpointBytes is loadCheckpointFile over an in-memory image — the
// shape checkpoints travel in over the replication stream, where a seeding
// follower verifies and parses the primary's bytes without a file.
func loadCheckpointBytes(s *Server, raw []byte) error {
	if len(raw) < 4 {
		return fmt.Errorf("%w: file too short", errCkptCorrupt)
	}
	body := raw[:len(raw)-4]
	if got := binary.LittleEndian.Uint32(raw[len(raw)-4:]); got != crc32.Checksum(body, ckptCRCTable) {
		return fmt.Errorf("%w: CRC mismatch", errCkptCorrupt)
	}
	r := bytes.NewReader(body)

	header := make([]byte, 4+4+8+4+4+1)
	if _, err := io.ReadFull(r, header); err != nil {
		return fmt.Errorf("%w: reading header: %v", errCkptCorrupt, err)
	}
	if string(header[:4]) != ckptMagic {
		return fmt.Errorf("%w: bad magic", errCkptCorrupt)
	}
	if format := binary.LittleEndian.Uint32(header[4:]); format != ckptFormat {
		return fmt.Errorf("%w: unsupported format %d", errCkptCorrupt, format)
	}
	if d := binary.LittleEndian.Uint64(header[8:]); d != uint64(s.cfg.Dim) {
		return fmt.Errorf("serve: checkpoint dimension %d, server %d", d, s.cfg.Dim)
	}
	if k := binary.LittleEndian.Uint32(header[16:]); k != uint32(s.cfg.Classes) {
		return fmt.Errorf("serve: checkpoint has %d classes, server %d", k, s.cfg.Classes)
	}
	if sh := binary.LittleEndian.Uint32(header[20:]); sh != uint32(len(s.shards)) {
		return fmt.Errorf("serve: checkpoint has %d shards, server %d", sh, len(s.shards))
	}
	flags := header[24]
	if flags&flagCkptRegressor != 0 && s.reg == nil {
		return errors.New("serve: checkpoint carries a regressor but the server has no label encoder")
	}
	if flags&flagCkptCleanup != 0 && s.mem == nil {
		return errors.New("serve: checkpoint carries a cleanup memory but the server has none")
	}

	// The portable snapshot section re-creates version, counters, item
	// symbols and (at unit weight) the prototypes...
	if err := s.Restore(r); err != nil {
		return err
	}
	// ...and the exact-state sections then replace the unit-weight seeds
	// with the true accumulators, so continued training (the replayed log
	// suffix) stays bit-identical to the original sequence.
	s.mu.Lock()
	defer s.mu.Unlock()
	var has [1]byte
	for i, st := range s.shards {
		if _, err := io.ReadFull(r, has[:]); err != nil {
			return fmt.Errorf("serve: reading shard %d state marker: %w", i, err)
		}
		switch {
		case has[0] == 0 && st.cls == nil:
			continue
		case has[0] == 1 && st.cls != nil:
			if err := st.cls.RestoreStateFrom(r); err != nil {
				return fmt.Errorf("serve: shard %d classifier state: %w", i, err)
			}
		default:
			return fmt.Errorf("serve: checkpoint shard %d classifier presence disagrees with server layout", i)
		}
	}
	if flags&flagCkptRegressor != 0 {
		if err := s.reg.RestoreStateFrom(r); err != nil {
			return fmt.Errorf("serve: regressor state: %w", err)
		}
	}
	if flags&flagCkptCleanup != 0 {
		mem := s.mem
		if err := mem.RestoreStateFrom(r); err != nil {
			return fmt.Errorf("serve: cleanup-memory state: %w", err)
		}
	}
	s.snap.Store(s.buildSnapshotLocked(nil, nil))
	return nil
}

// Checkpoint persists the server's exact current state to the durability
// directory, makes it durable (write, fsync, rename, directory fsync) and
// then compacts: log segments fully covered by the checkpoint are removed
// and checkpoints beyond WALConfig.KeepCheckpoints retired. It returns the
// checkpointed version. Serialization holds the writer lock only while
// encoding to memory; the file I/O runs unlocked, so reads and writes keep
// flowing. Safe for concurrent callers (checkpoints serialize internally).
func (s *Server) Checkpoint() (uint64, error) {
	s.mu.Lock()
	durable := s.wal != nil
	s.mu.Unlock()
	if !durable {
		return 0, errors.New("serve: Checkpoint needs a durable server (Config.WAL)")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	// No-op checkpoints (nothing applied since the last one, or an empty
	// server whose recovery equals a fresh start) return before the full
	// state encode — which would otherwise stall every writer on s.mu just
	// to throw the buffer away.
	s.mu.Lock()
	version := s.version
	s.mu.Unlock()
	if version == 0 || version <= s.lastCkpt.Load() {
		return version, nil
	}

	version, buf, err := s.encodeCheckpoint()
	if err != nil {
		return 0, err
	}
	buf = appendCkptCRC(buf)

	fs := s.walCfg.fs()
	path := filepath.Join(s.walCfg.Dir, checkpointName(version))
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("serve: creating checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		fs.Remove(tmp)
		return 0, fmt.Errorf("serve: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return 0, fmt.Errorf("serve: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return 0, fmt.Errorf("serve: closing checkpoint: %w", err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return 0, fmt.Errorf("serve: publishing checkpoint: %w", err)
	}
	// The rename is not durable until the directory entry is — without
	// this fsync a machine crash can resurrect the pre-rename state.
	if err := fs.SyncDir(s.walCfg.Dir); err != nil {
		return 0, fmt.Errorf("serve: syncing durability directory: %w", err)
	}
	s.lastCkpt.Store(version)

	// Retire checkpoints beyond the retention count, then compact the log
	// only up to the OLDEST retained checkpoint — the fallback checkpoints
	// are worthless unless the records between them and the newest one
	// stay replayable.
	versions, err := checkpointVersions(fs, s.walCfg.Dir)
	if err != nil {
		return version, err
	}
	keep := min(len(versions), s.walCfg.keepCheckpoints())
	for _, v := range versions[keep:] {
		if err := fs.Remove(filepath.Join(s.walCfg.Dir, checkpointName(v))); err != nil {
			return version, fmt.Errorf("serve: retiring old checkpoint: %w", err)
		}
	}
	oldestRetained := versions[keep-1] // versions is non-empty: we just wrote one
	s.mu.Lock()
	log := s.wal // recovery may have swapped the handle; compact the live one
	s.mu.Unlock()
	if err := log.TruncateBefore(oldestRetained + 1); err != nil {
		return version, err
	}
	// A manual checkpoint restarts the background cadence — the next
	// automatic one should be CheckpointEvery batches from NOW.
	s.mu.Lock()
	s.sinceCkpt = 0
	s.mu.Unlock()
	return version, nil
}

// encodeCheckpoint serializes the exact server state to memory under the
// writer lock.
func (s *Server) encodeCheckpoint() (uint64, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	var buf bytes.Buffer
	header := make([]byte, 4+4+8+4+4+1)
	copy(header, ckptMagic)
	binary.LittleEndian.PutUint32(header[4:], ckptFormat)
	binary.LittleEndian.PutUint64(header[8:], uint64(s.cfg.Dim))
	binary.LittleEndian.PutUint32(header[16:], uint32(s.cfg.Classes))
	binary.LittleEndian.PutUint32(header[20:], uint32(len(s.shards)))
	if s.reg != nil {
		header[24] |= flagCkptRegressor
	}
	if s.mem != nil {
		header[24] |= flagCkptCleanup
	}
	buf.Write(header)

	snap := s.snap.Load()
	if _, err := snap.WriteTo(&buf); err != nil {
		return 0, nil, fmt.Errorf("serve: encoding checkpoint snapshot: %w", err)
	}
	for i, st := range s.shards {
		if st.cls == nil {
			buf.WriteByte(0)
			continue
		}
		buf.WriteByte(1)
		if _, err := st.cls.WriteStateTo(&buf); err != nil {
			return 0, nil, fmt.Errorf("serve: encoding shard %d state: %w", i, err)
		}
	}
	if s.reg != nil {
		if _, err := s.reg.WriteStateTo(&buf); err != nil {
			return 0, nil, fmt.Errorf("serve: encoding regressor state: %w", err)
		}
	}
	if s.mem != nil {
		if _, err := s.mem.WriteStateTo(&buf); err != nil {
			return 0, nil, fmt.Errorf("serve: encoding cleanup-memory state: %w", err)
		}
	}
	return s.version, buf.Bytes(), nil
}

// maybeCheckpointLocked spawns at most one background checkpoint once
// enough batches accumulated since the last one. Called under s.mu.
func (s *Server) maybeCheckpointLocked() {
	if s.wal == nil {
		return
	}
	s.sinceCkpt++
	if s.sinceCkpt < s.walCfg.checkpointEvery() || !s.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	s.sinceCkpt = 0
	s.ckptWG.Add(1)
	go func() {
		defer s.ckptWG.Done()
		defer s.ckptBusy.Store(false)
		if _, err := s.Checkpoint(); err != nil {
			s.errMu.Lock()
			s.ckptErr = err
			s.errMu.Unlock()
		}
	}()
}

// Close flushes and closes the durability layer: in-flight background
// checkpoints finish, the log is synced and closed, and further ApplyBatch
// calls fail. Reads stay valid (the published snapshot survives). It
// returns any background checkpoint error that would otherwise be lost.
// Closing a non-durable server just stops writes. Safe to call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.stopProbe.Do(func() { close(s.probeStop) })
	s.probeWG.Wait()
	s.ckptWG.Wait()
	s.mu.Lock()
	log := s.wal // recovery may have swapped the handle
	s.mu.Unlock()
	var err error
	if log != nil {
		err = log.Close()
	}
	s.errMu.Lock()
	if err == nil && s.ckptErr != nil {
		err = fmt.Errorf("serve: background checkpoint: %w", s.ckptErr)
	}
	s.errMu.Unlock()
	return err
}

// ---------------------------------------------------------------------------
// Batch wire codec
// ---------------------------------------------------------------------------

// Batch payload framing (all little-endian; hypervectors are raw words,
// the dimension being fixed by the server config the log belongs to):
//
//	uint32 nTrain   | nTrain   × (uint32 class | words)
//	uint32 nUntrain | nUntrain × (uint32 class | words)
//	uint32 nPairs   | nPairs   × (uint64 IEEE-754 bits | words)
//	uint32 nItems   | nItems   × (uint32 len | bytes)
//	uint32 nWrites  | nWrites  × (address words | data words)
//	uint8 hasRefine | [uint32 epochs | uint32 n | n × (uint32 label | words)]

// encodeBatch serializes a validated batch for the write-ahead log.
func encodeBatch(b *Batch, d int) []byte {
	var buf bytes.Buffer
	var u32 [4]byte
	var u64 [8]byte
	putN := func(n int) {
		binary.LittleEndian.PutUint32(u32[:], uint32(n))
		buf.Write(u32[:])
	}
	putVec := func(v *bitvec.Vector) {
		for _, w := range v.Words() {
			binary.LittleEndian.PutUint64(u64[:], w)
			buf.Write(u64[:])
		}
	}

	putN(len(b.Train))
	for _, smp := range b.Train {
		putN(smp.Class)
		putVec(smp.HV)
	}
	putN(len(b.Untrain))
	for _, smp := range b.Untrain {
		putN(smp.Class)
		putVec(smp.HV)
	}
	putN(len(b.Pairs))
	for _, p := range b.Pairs {
		binary.LittleEndian.PutUint64(u64[:], math.Float64bits(p.Value))
		buf.Write(u64[:])
		putVec(p.X)
	}
	putN(len(b.Items))
	for _, sym := range b.Items {
		putN(len(sym))
		buf.WriteString(sym)
	}
	putN(len(b.Writes))
	for _, w := range b.Writes {
		putVec(w.Address)
		putVec(w.Data)
	}
	if b.Refine == nil {
		buf.WriteByte(0)
	} else {
		buf.WriteByte(1)
		putN(b.Refine.Epochs)
		putN(len(b.Refine.HVs))
		for i, hv := range b.Refine.HVs {
			putN(b.Refine.Labels[i])
			putVec(hv)
		}
	}
	return buf.Bytes()
}

// batchDecoder is a bounds-checked cursor over a batch payload. Every read
// returns an error instead of panicking: the payload passed CRC, but the
// decoder is also the last line of defense against a logic bug elsewhere.
type batchDecoder struct {
	data []byte
	off  int
	d    int
}

func (r *batchDecoder) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, errors.New("serve: truncated batch payload")
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *batchDecoder) u64() (uint64, error) {
	if r.off+8 > len(r.data) {
		return 0, errors.New("serve: truncated batch payload")
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

// count reads an element count and sanity-bounds it by the bytes that
// remain, so a corrupt count cannot drive a huge allocation.
func (r *batchDecoder) count(minElemBytes int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if minElemBytes > 0 && int(n) > (len(r.data)-r.off)/minElemBytes {
		return 0, fmt.Errorf("serve: batch payload count %d exceeds remaining bytes", n)
	}
	return int(n), nil
}

func (r *batchDecoder) vec() (*bitvec.Vector, error) {
	v := bitvec.New(r.d)
	words := v.Words()
	if r.off+8*len(words) > len(r.data) {
		return nil, errors.New("serve: truncated hypervector in batch payload")
	}
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(r.data[r.off:])
		r.off += 8
	}
	if tail := uint(r.d % 64); tail != 0 {
		if words[len(words)-1]&^(uint64(1)<<tail-1) != 0 {
			return nil, errors.New("serve: batch payload hypervector has bits past the dimension")
		}
	}
	return v, nil
}

// decodeBatch parses a payload produced by encodeBatch into dst.
func decodeBatch(payload []byte, d int, dst *Batch) error {
	r := &batchDecoder{data: payload, d: d}
	vecBytes := 8 * ((d + 63) / 64)

	n, err := r.count(4 + vecBytes)
	if err != nil {
		return err
	}
	dst.Train = make([]Sample, n)
	for i := range dst.Train {
		class, err := r.u32()
		if err != nil {
			return err
		}
		hv, err := r.vec()
		if err != nil {
			return err
		}
		dst.Train[i] = Sample{Class: int(class), HV: hv}
	}
	if n, err = r.count(4 + vecBytes); err != nil {
		return err
	}
	dst.Untrain = make([]Sample, n)
	for i := range dst.Untrain {
		class, err := r.u32()
		if err != nil {
			return err
		}
		hv, err := r.vec()
		if err != nil {
			return err
		}
		dst.Untrain[i] = Sample{Class: int(class), HV: hv}
	}
	if n, err = r.count(8 + vecBytes); err != nil {
		return err
	}
	dst.Pairs = make([]Pair, n)
	for i := range dst.Pairs {
		bits, err := r.u64()
		if err != nil {
			return err
		}
		x, err := r.vec()
		if err != nil {
			return err
		}
		dst.Pairs[i] = Pair{X: x, Value: math.Float64frombits(bits)}
	}
	if n, err = r.count(4); err != nil {
		return err
	}
	dst.Items = make([]string, n)
	for i := range dst.Items {
		l, err := r.count(1)
		if err != nil {
			return err
		}
		if r.off+l > len(r.data) {
			return errors.New("serve: truncated item symbol in batch payload")
		}
		dst.Items[i] = string(r.data[r.off : r.off+l])
		r.off += l
	}
	if n, err = r.count(2 * vecBytes); err != nil {
		return err
	}
	dst.Writes = make([]MemWrite, n)
	for i := range dst.Writes {
		addr, err := r.vec()
		if err != nil {
			return err
		}
		data, err := r.vec()
		if err != nil {
			return err
		}
		dst.Writes[i] = MemWrite{Address: addr, Data: data}
	}
	if r.off >= len(r.data) {
		return errors.New("serve: truncated batch payload")
	}
	hasRefine := r.data[r.off]
	r.off++
	dst.Refine = nil
	if hasRefine == 1 {
		epochs, err := r.u32()
		if err != nil {
			return err
		}
		if n, err = r.count(4 + vecBytes); err != nil {
			return err
		}
		ref := &Refine{Epochs: int(epochs), HVs: make([]*bitvec.Vector, n), Labels: make([]int, n)}
		for i := 0; i < n; i++ {
			label, err := r.u32()
			if err != nil {
				return err
			}
			hv, err := r.vec()
			if err != nil {
				return err
			}
			ref.Labels[i] = int(label)
			ref.HVs[i] = hv
		}
		dst.Refine = ref
	} else if hasRefine != 0 {
		return errors.New("serve: bad refine marker in batch payload")
	}
	if r.off != len(r.data) {
		return errors.New("serve: trailing bytes in batch payload")
	}
	return nil
}
