// Package serve is the concurrency-safe online inference layer: it wraps
// the mutable learning models (Classifier, Regressor, ItemMemory, SDM)
// behind immutable, versioned snapshots swapped through an atomic pointer.
//
// The contract splits the world into two planes:
//
//   - Reads (Predict, Scores, Lookup, PredictValue, Cleanup) run against
//     the current Snapshot: a frozen, finalized view that is never mutated
//     after publication. Grabbing it is one atomic load, so reads are
//     lock-free, race-free at any fan-in, and internally consistent — a
//     request that loads snapshot v sees ALL of v and nothing of v+1.
//
//   - Writes (ApplyBatch: training samples, regression pairs, item-memory
//     membership churn, SDM writes, refinement) go through a single-writer
//     apply path. The writer validates the whole batch first (a rejected
//     batch mutates nothing), applies it to the master models, rebuilds
//     only the shard views the batch dirtied, and publishes a new snapshot
//     with the next version number.
//
// Snapshots are deterministic: shard classifiers finalize with fixed
// per-class tie vectors derived from (seed, global class id), so the
// published prototypes are a pure function of the training multiset —
// independent of worker count, shard count, apply interleaving, and how
// many times finalization ran. That is what makes the serving layer
// testable: a concurrent run must be bit-identical to a sequential replay
// at every published version.
//
// Sharding follows the HD-hashing lineage the repo reproduces (Heddes et
// al., DAC 2022): an internal/hashring ring routes class ids and item
// symbols to per-shard sub-models, so k classes or large item memories
// spread across shards, and the per-shard work (apply, finalize, scans)
// fans out over the internal/batch pool.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hdcirc/internal/batch"
	"hdcirc/internal/bitvec"
	"hdcirc/internal/embed"
	"hdcirc/internal/hashring"
	"hdcirc/internal/index"
	"hdcirc/internal/model"
	"hdcirc/internal/rng"
	"hdcirc/internal/sdm"
	"hdcirc/internal/wal"
)

// Config parameterizes a Server.
type Config struct {
	// Dim is the hypervector dimension (required, > 0).
	Dim int
	// Classes is the number of classifier classes (required, > 0).
	Classes int
	// Shards is the number of sub-model shards classes and item symbols
	// are routed across; <= 0 selects 1.
	Shards int
	// Workers sizes the batch pool used for fan-out; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// Seed derives every stream the server uses (tie vectors, item
	// vectors, ring positions). Two servers with equal configs are
	// bit-identical given equal write sequences.
	Seed uint64
	// Labels optionally enables the regression engine: pairs are decoded
	// against this label encoder. Nil disables regression.
	Labels *embed.ScalarEncoder
	// Cleanup optionally enables the SDM cleanup memory. Nil disables it.
	Cleanup *sdm.Config
	// RingPositions sizes the consistent-hashing ring used for routing;
	// <= 0 selects max(8, 2*Shards). Must be >= Shards.
	RingPositions int
	// Index tunes the per-snapshot sketch indexes over each shard's item
	// vectors and class prototypes (see index.Config). Nil selects
	// index.DefaultConfig(): auto-indexed once a shard's collection
	// reaches the default threshold, exact below it. Set
	// &index.Config{Disabled: true} for exact-only lookups at any size.
	Index *index.Config
	// WAL enables durability when the server is built through Open: every
	// applied batch is written ahead to a segmented log in WAL.Dir before
	// it mutates anything, checkpoints bound recovery cost, and Open
	// recovers existing state from the directory. Nil keeps the server
	// purely in-memory (and NewServer always does). See WALConfig.
	WAL *WALConfig
}

// shardState is one shard's mutable master models, guarded by the server's
// writer mutex.
type shardState struct {
	classes []int             // global class ids in ascending order
	local   map[int]int       // global class id → local index
	cls     *model.Classifier // nil when the shard owns no classes
	items   *embed.ItemMemory
}

// Server hosts the models behind versioned snapshots. All read methods are
// safe for unbounded concurrent use; ApplyBatch and Restore are safe for
// concurrent callers too but serialize internally (single-writer).
type Server struct {
	cfg     Config
	ixCfg   index.Config // resolved snapshot-index configuration
	pool    *batch.Pool
	ring    *hashring.Ring
	shardOf []int // global class id → shard

	// wsem admits one writer at a time ahead of mu, so a writer stalled on
	// a slow disk (fsync under mu) queues later writers HERE, where their
	// context deadline still applies, instead of on the uncancellable mutex.
	wsem chan struct{}

	mu      sync.Mutex // the single-writer apply path
	shards  []*shardState
	reg     *model.Regressor
	mem     *sdm.Memory // current COW head; published heads are never written again
	samples uint64
	pairs   uint64
	nitems  int
	version uint64
	closed  bool  // Close called; writes fail, reads keep serving
	walErr  error // sticky write-ahead failure; server is degraded until Recover

	// Replication role, under mu (see repl.go). Zero value is primary;
	// roleSet records whether a role was ever explicitly assigned, so Stats
	// only reports a role on servers that are part of a replication tier.
	role        Role
	roleSet     bool
	primaryURL  string
	replStatsFn func() ReplicationStats

	// Apply-notification subscribers (coalesced; see SubscribeApplied).
	subMu   sync.Mutex
	subs    map[int]chan struct{}
	nextSub int

	// Degraded-mode bookkeeping, under mu.
	degradedSince time.Time
	probing       bool // a recovery probe goroutine is live

	probeStop chan struct{}
	stopProbe sync.Once
	probeWG   sync.WaitGroup

	// Durability (nil/zero on purely in-memory servers; see wal.go).
	wal       *wal.Log
	walCfg    WALConfig
	sinceCkpt int           // batches since the last checkpoint, under mu
	ckptMu    sync.Mutex    // serializes Checkpoint
	lastCkpt  atomic.Uint64 // newest durable checkpoint version
	ckptBusy  atomic.Bool
	ckptWG    sync.WaitGroup
	errMu     sync.Mutex // guards ckptErr
	ckptErr   error      // background checkpoint failure, surfaced by Close

	snap  atomic.Pointer[Snapshot]
	reads atomic.Uint64
}

// ErrClosed is returned (possibly wrapped) by writes against a server
// whose Close has run. The published snapshot keeps serving reads.
var ErrClosed = errors.New("serve: server is closed")

// ErrWALFailed is returned (wrapped, with the original fault) by writes
// after a sticky write-ahead failure: the in-memory state is still
// consistent, but the server refuses to diverge from its log.
var ErrWALFailed = errors.New("serve: write-ahead log failed")

// ErrDegraded is returned (wrapped, alongside ErrWALFailed) by writes
// against a degraded server: reads keep serving the published snapshot,
// writes fail fast until Recover (or the auto-retry probe) clears the
// storage fault.
var ErrDegraded = errors.New("serve: server is degraded (read-only)")

// ErrUnrecoverable marks a recovery attempt that found the log missing
// acknowledged records: the on-disk prefix is shorter than what callers
// were promised, so clearing the fault would silently lose writes. The
// server stays degraded; an operator must restore the log (or accept the
// loss by reopening from the directory as a fresh process).
var ErrUnrecoverable = errors.New("serve: log lost acknowledged writes")

// State is the server's position in the healthy → degraded → closed
// lifecycle.
type State int

const (
	// StateHealthy accepts writes and reads.
	StateHealthy State = iota
	// StateDegraded serves reads from the published snapshot but fails
	// writes fast: the write-ahead log hit a sticky storage fault. A
	// successful Recover returns the server to StateHealthy.
	StateDegraded
	// StateClosed is terminal: Close has run. Published snapshots remain
	// readable through held references.
	StateClosed
)

func (st State) String() string {
	switch st {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("State(%d)", int(st))
	}
}

// shardMember returns shard i's ring member name.
func shardMember(i int) string { return fmt.Sprintf("shard/%d", i) }

// NewServer validates the config, builds the ring and shard masters, and
// publishes snapshot version 0 (the empty model). Config problems are
// errors, not panics: server sizing comes from operator input.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("serve: dimension must be positive, got %d", cfg.Dim)
	}
	if cfg.Classes <= 0 {
		return nil, fmt.Errorf("serve: class count must be positive, got %d", cfg.Classes)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.RingPositions <= 0 {
		cfg.RingPositions = 2 * cfg.Shards
		if cfg.RingPositions < 8 {
			cfg.RingPositions = 8
		}
	}
	if cfg.RingPositions < cfg.Shards {
		return nil, fmt.Errorf("serve: %d ring positions cannot hold %d shards", cfg.RingPositions, cfg.Shards)
	}
	if cfg.Labels != nil && cfg.Labels.Set().Dim() != cfg.Dim {
		return nil, fmt.Errorf("serve: label encoder dimension %d, server %d", cfg.Labels.Set().Dim(), cfg.Dim)
	}
	ring, err := hashring.New(cfg.RingPositions, cfg.Dim, rng.Sub(cfg.Seed, "serve/ring").Uint64())
	if err != nil {
		return nil, fmt.Errorf("serve: building routing ring: %w", err)
	}
	for i := 0; i < cfg.Shards; i++ {
		if _, err := ring.Add(shardMember(i)); err != nil {
			return nil, fmt.Errorf("serve: placing shard %d: %w", i, err)
		}
	}

	ixCfg := index.DefaultConfig()
	if cfg.Index != nil {
		ixCfg = *cfg.Index
	}
	s := &Server{
		cfg:       cfg,
		ixCfg:     ixCfg,
		pool:      batch.New(cfg.Workers),
		ring:      ring,
		shardOf:   make([]int, cfg.Classes),
		shards:    make([]*shardState, cfg.Shards),
		wsem:      make(chan struct{}, 1),
		probeStop: make(chan struct{}),
		subs:      make(map[int]chan struct{}),
	}
	for i := range s.shards {
		s.shards[i] = &shardState{
			local: make(map[int]int),
			items: embed.NewItemMemory(cfg.Dim, cfg.Seed),
		}
	}
	// Route classes to shards through the ring, in ascending class order so
	// each shard's class list stays sorted (the global tie-break in Predict
	// depends on that).
	for c := 0; c < cfg.Classes; c++ {
		sh, err := s.routeKey(fmt.Sprintf("class/%d", c))
		if err != nil {
			return nil, err
		}
		s.shardOf[c] = sh
		st := s.shards[sh]
		st.local[c] = len(st.classes)
		st.classes = append(st.classes, c)
	}
	// Shard classifiers finalize with fixed tie vectors derived from the
	// GLOBAL class id, so prototypes are identical no matter which shard a
	// class lands on — the determinism the snapshot contract promises.
	for _, st := range s.shards {
		if len(st.classes) == 0 {
			continue
		}
		st.cls = model.NewClassifier(len(st.classes), cfg.Dim, cfg.Seed)
		tvs := make([]*bitvec.Vector, len(st.classes))
		for i, c := range st.classes {
			tvs[i] = classTieVector(cfg.Seed, cfg.Dim, c)
		}
		st.cls.SetTieVectors(tvs)
	}
	if cfg.Labels != nil {
		s.reg = model.NewRegressor(cfg.Dim, cfg.Seed)
		s.reg.SetTieVector(bitvec.Random(cfg.Dim, rng.Sub(cfg.Seed, "serve/ties/regressor")))
	}
	if cfg.Cleanup != nil {
		s.mem = sdm.New(*cfg.Cleanup)
		if s.mem.Dim() != cfg.Dim {
			return nil, fmt.Errorf("serve: cleanup memory dimension %d, server %d", s.mem.Dim(), cfg.Dim)
		}
	}
	s.snap.Store(s.buildSnapshotLocked(nil, nil))
	return s, nil
}

// classTieVector derives the fixed finalization tie vector for a global
// class id.
func classTieVector(seed uint64, d, class int) *bitvec.Vector {
	return bitvec.Random(d, rng.Sub(seed, fmt.Sprintf("serve/ties/class/%d", class)))
}

// routeKey maps an arbitrary routing key to a shard index via the ring.
func (s *Server) routeKey(key string) (int, error) {
	member, ok := s.ring.Lookup(key)
	if !ok {
		return 0, errors.New("serve: routing ring has no members")
	}
	var sh int
	if _, err := fmt.Sscanf(member, "shard/%d", &sh); err != nil || sh < 0 || sh >= len(s.shards) {
		return 0, fmt.Errorf("serve: ring returned foreign member %q", member)
	}
	return sh, nil
}

// Route reports which shard serves an arbitrary routing key, with the ring
// member name and ring slot — the HD-hashing lookup as a service. Safe for
// concurrent use (ring membership is fixed after construction).
func (s *Server) Route(key string) (shard int, member string, slot int) {
	member, _ = s.ring.Lookup(key)
	fmt.Sscanf(member, "shard/%d", &shard)
	return shard, member, s.ring.KeySlot(key)
}

// Config returns the server's (normalized) configuration.
func (s *Server) Config() Config { return s.cfg }

// Pool returns the server's batch pool, for callers that want to fan out
// encoding next to serving.
func (s *Server) Pool() *batch.Pool { return s.pool }

// Snapshot returns the current published snapshot: one atomic load, safe
// at any read fan-in. The result is immutable — hold it as long as needed;
// later writes publish new snapshots instead of touching this one.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// ---------------------------------------------------------------------------
// Write plane
// ---------------------------------------------------------------------------

// Sample is one encoded classification training example.
type Sample struct {
	Class int
	HV    *bitvec.Vector
}

// Pair is one encoded regression pair (sample hypervector, label value).
// The label is encoded through the server's label encoder at apply time.
type Pair struct {
	X     *bitvec.Vector
	Value float64
}

// MemWrite is one SDM cleanup-memory write.
type MemWrite struct {
	Address *bitvec.Vector
	Data    *bitvec.Vector
}

// Refine requests perceptron-style retraining epochs over a working set as
// part of a batch: each misclassified sample moves from the (globally)
// predicted class accumulator to its true one.
type Refine struct {
	HVs    []*bitvec.Vector
	Labels []int
	Epochs int
}

// Batch is one atomic unit of writes. ApplyBatch validates everything
// before mutating anything, so a rejected batch leaves the server exactly
// as it was.
type Batch struct {
	Train   []Sample   // classifier additions
	Untrain []Sample   // classifier removals (exact inverse of Train)
	Pairs   []Pair     // regression pairs (requires Config.Labels)
	Items   []string   // item-memory membership churn: symbols to intern
	Writes  []MemWrite // SDM writes (requires Config.Cleanup)
	Refine  *Refine    // optional retraining pass, applied after Train
}

// validate checks the batch against the server shape without mutating.
func (s *Server) validate(b *Batch) error {
	checkSamples := func(kind string, samples []Sample) error {
		for i, smp := range samples {
			if smp.Class < 0 || smp.Class >= s.cfg.Classes {
				return fmt.Errorf("serve: %s[%d] class %d outside [0,%d)", kind, i, smp.Class, s.cfg.Classes)
			}
			if smp.HV == nil || smp.HV.Dim() != s.cfg.Dim {
				return fmt.Errorf("serve: %s[%d] has wrong dimension", kind, i)
			}
		}
		return nil
	}
	if err := checkSamples("train", b.Train); err != nil {
		return err
	}
	if err := checkSamples("untrain", b.Untrain); err != nil {
		return err
	}
	if len(b.Pairs) > 0 && s.reg == nil {
		return errors.New("serve: regression pairs but no label encoder configured")
	}
	for i, p := range b.Pairs {
		if p.X == nil || p.X.Dim() != s.cfg.Dim {
			return fmt.Errorf("serve: pair[%d] has wrong dimension", i)
		}
	}
	if len(b.Writes) > 0 && s.mem == nil {
		return errors.New("serve: cleanup writes but no cleanup memory configured")
	}
	for i, w := range b.Writes {
		if w.Address == nil || w.Address.Dim() != s.cfg.Dim || w.Data == nil || w.Data.Dim() != s.cfg.Dim {
			return fmt.Errorf("serve: write[%d] has wrong dimension", i)
		}
	}
	if r := b.Refine; r != nil {
		if len(r.HVs) != len(r.Labels) {
			return fmt.Errorf("serve: refine has %d samples but %d labels", len(r.HVs), len(r.Labels))
		}
		if r.Epochs < 0 {
			return fmt.Errorf("serve: refine epochs must be non-negative, got %d", r.Epochs)
		}
		for i, hv := range r.HVs {
			if hv == nil || hv.Dim() != s.cfg.Dim {
				return fmt.Errorf("serve: refine sample %d has wrong dimension", i)
			}
			if r.Labels[i] < 0 || r.Labels[i] >= s.cfg.Classes {
				return fmt.Errorf("serve: refine label %d outside [0,%d)", r.Labels[i], s.cfg.Classes)
			}
		}
	}
	return nil
}

// ApplyBatch validates and applies one write batch through the
// single-writer path, rebuilds the dirtied shard views, and publishes (and
// returns) the new snapshot. Readers switch to it on their next Snapshot
// load; snapshots already held stay valid and frozen. On error nothing is
// mutated and the current snapshot remains published.
//
// On a durable server (Open with Config.WAL) the encoded batch is
// appended to the write-ahead log BEFORE anything mutates, so a batch
// that was acknowledged here survives a crash; with WALConfig.SyncEvery=1
// it is fsynced before ApplyBatch returns. A log failure is sticky:
// the in-memory state stays consistent, but further writes fail fast
// rather than silently diverging from the log.
func (s *Server) ApplyBatch(b Batch) (*Snapshot, error) {
	return s.ApplyBatchContext(context.Background(), b)
}

// ApplyBatchContext is ApplyBatch bounded by a context: a caller whose
// deadline expires while queued behind another writer gets ctx.Err()
// instead of waiting out someone else's slow fsync. The bound covers
// ADMISSION only — once this writer holds the write slot the batch runs
// to completion, because abandoning a batch after its log append would
// desync the log from memory.
func (s *Server) ApplyBatchContext(ctx context.Context, b Batch) (*Snapshot, error) {
	// Checked before the select: a context that is already expired (a 0
	// deadline, a cancelled request) must fail deterministically rather
	// than win a race against the free write slot.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case s.wsem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.wsem }()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.role == RoleFollower {
		if s.primaryURL != "" {
			return nil, fmt.Errorf("%w (primary: %s)", ErrNotPrimary, s.primaryURL)
		}
		return nil, ErrNotPrimary
	}
	if s.walErr != nil {
		return nil, fmt.Errorf("%w: %w earlier: %v", ErrDegraded, ErrWALFailed, s.walErr)
	}
	if err := s.validate(&b); err != nil {
		return nil, err
	}
	if s.wal != nil {
		if _, err := s.wal.Append(encodeBatch(&b, s.cfg.Dim)); err != nil {
			s.degradeLocked(err)
			return nil, fmt.Errorf("%w: %w: write-ahead append: %w", ErrDegraded, ErrWALFailed, err)
		}
	}
	snap, err := s.applyLocked(&b)
	if err != nil {
		// The batch is already in the log but did not fully apply (today
		// unreachable: validation covers everything applyLocked does). The
		// in-memory state can no longer be trusted to match the log, so
		// fail-stop exactly like a log error rather than let the
		// record-seq == version invariant silently desync.
		if s.wal != nil {
			s.degradeLocked(err)
		}
		return nil, err
	}
	s.maybeCheckpointLocked()
	return snap, nil
}

// degradeLocked moves the server to StateDegraded under mu: the cause
// becomes the sticky walErr, the transition is timestamped, and (when the
// config arms one) a bounded background probe starts retrying recovery.
func (s *Server) degradeLocked(cause error) {
	if s.walErr != nil {
		return
	}
	s.walErr = cause
	s.degradedSince = time.Now()
	if s.walCfg.RetryInterval > 0 && !s.probing && !s.closed {
		s.probing = true
		s.probeWG.Add(1)
		go s.probeLoop()
	}
}

// probeLoop retries Recover every WALConfig.RetryInterval, up to RetryMax
// attempts. It stops early on success, on Close, and on an unrecoverable
// log (retrying cannot grow a log that lost acknowledged records).
func (s *Server) probeLoop() {
	defer s.probeWG.Done()
	defer func() {
		s.mu.Lock()
		s.probing = false
		s.mu.Unlock()
	}()
	ticker := time.NewTicker(s.walCfg.RetryInterval)
	defer ticker.Stop()
	for attempt := 0; attempt < s.walCfg.retryMax(); attempt++ {
		select {
		case <-s.probeStop:
			return
		case <-ticker.C:
		}
		switch err := s.Recover(); {
		case err == nil:
			return
		case errors.Is(err, ErrClosed), errors.Is(err, ErrUnrecoverable):
			return
		}
	}
}

// Recover attempts to clear a degraded server's storage fault: the log is
// reopened (which truncates any partial frame the fault left mid-segment),
// any intact records beyond the applied version are replayed into the
// models (they were written but never acknowledged — the same catch-up a
// crash restart performs), and writes are re-enabled. If the reopened log
// resumes BEFORE the acknowledged version and no checkpoint covers the
// gap, acknowledged writes are gone: Recover returns ErrUnrecoverable and
// the server stays degraded. On a healthy (or non-durable) server Recover
// is a no-op.
func (s *Server) Recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recoverLocked()
}

func (s *Server) recoverLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.walErr == nil || s.wal == nil {
		return nil
	}
	// The old handle is poisoned (fail-stop after its first fault); its
	// close error carries no new information.
	_ = s.wal.Close()
	log, err := wal.Open(s.walCfg.Dir, wal.Options{
		SegmentBytes: s.walCfg.SegmentBytes,
		SyncEvery:    s.walCfg.SyncEvery,
		FS:           s.walCfg.FS,
	})
	if err != nil {
		return fmt.Errorf("serve: reopening log: %w", err)
	}
	next, want := log.NextSeq(), s.version+1
	switch {
	case next < want && s.lastCkpt.Load() < s.version:
		// The intact log prefix ends before the acknowledged version and no
		// checkpoint bridges the gap — acked writes are lost. Failing here
		// (instead of resuming) is the whole point of the acked-durability
		// contract.
		log.Close()
		return fmt.Errorf("%w: log resumes at seq %d but version %d was acknowledged", ErrUnrecoverable, next, s.version)
	case next > want:
		// Records the faulty append wrote but never acknowledged: apply
		// them, exactly as a crash restart would, so the log and the models
		// agree again.
		err := log.Replay(want, func(seq uint64, payload []byte) error {
			var b Batch
			if err := decodeBatch(payload, s.cfg.Dim, &b); err != nil {
				return fmt.Errorf("serve: decoding log record %d: %w", seq, err)
			}
			if err := s.validate(&b); err != nil {
				return fmt.Errorf("serve: catching up log record %d: %w", seq, err)
			}
			if s.version+1 != seq {
				return fmt.Errorf("serve: log record %d cannot follow version %d", seq, s.version)
			}
			if _, err := s.applyLocked(&b); err != nil {
				return fmt.Errorf("serve: catching up log record %d: %w", seq, err)
			}
			return nil
		})
		if err != nil {
			log.Close()
			return err
		}
	}
	// A checkpoint newer than every surviving record (compaction, or an
	// empty log) needs numbering resumed past it.
	if log.NextSeq() < s.version+1 {
		if err := log.SkipTo(s.version + 1); err != nil {
			log.Close()
			return err
		}
	}
	s.wal = log
	s.walErr = nil
	s.degradedSince = time.Time{}
	return nil
}

// State reports where the server is in its lifecycle: healthy, degraded
// (reads only), or closed.
func (s *Server) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return StateClosed
	case s.walErr != nil:
		return StateDegraded
	default:
		return StateHealthy
	}
}

// Degraded reports whether the server is in degraded read-only mode, and
// if so since when and why.
func (s *Server) Degraded() (reason error, since time.Time, degraded bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.walErr == nil || s.closed {
		return nil, time.Time{}, false
	}
	return s.walErr, s.degradedSince, true
}

// applyLocked applies a validated batch to the master models and publishes
// the next snapshot. Called under s.mu, after (on durable servers) the
// batch is in the log — which is why it is deterministic: recovery replays
// log records through this same path and must land on identical bits.
func (s *Server) applyLocked(b *Batch) (*Snapshot, error) {
	dirtyCls := make([]bool, len(s.shards))
	dirtyItems := make([]bool, len(s.shards))

	// Classifier train/untrain, grouped by shard so the pool can fan the
	// accumulator updates out with each shard owned by exactly one worker
	// (bit-identical to sequential application — integer adds commute).
	type upd struct {
		local int
		hv    *bitvec.Vector
		sub   bool
	}
	byShard := make([][]upd, len(s.shards))
	route := func(samples []Sample, sub bool) {
		for _, smp := range samples {
			sh := s.shardOf[smp.Class]
			byShard[sh] = append(byShard[sh], upd{local: s.shards[sh].local[smp.Class], hv: smp.HV, sub: sub})
			dirtyCls[sh] = true
		}
	}
	route(b.Train, false)
	route(b.Untrain, true)
	s.pool.ForEach(len(s.shards), func(sh int) {
		st := s.shards[sh]
		for _, u := range byShard[sh] {
			if u.sub {
				st.cls.Sub(u.local, u.hv)
			} else {
				st.cls.Add(u.local, u.hv)
			}
		}
	})
	s.samples += uint64(len(b.Train))

	// Item-memory membership churn, routed by symbol.
	for _, sym := range b.Items {
		sh, err := s.routeKey("item/" + sym)
		if err != nil {
			return nil, err
		}
		st := s.shards[sh]
		before := st.items.Len()
		st.items.Get(sym)
		if st.items.Len() != before {
			s.nitems++
			dirtyItems[sh] = true
		}
	}

	// Regression pairs.
	for _, p := range b.Pairs {
		s.reg.Add(p.X, s.cfg.Labels.Encode(p.Value))
	}
	s.pairs += uint64(len(b.Pairs))

	// SDM writes go to a fresh fork so every published snapshot keeps an
	// immutable cleanup-memory generation (copy-on-write: only the counters
	// this batch's writes activate are cloned).
	if len(b.Writes) > 0 {
		s.mem = s.mem.Fork()
		for _, w := range b.Writes {
			s.mem.Write(w.Address, w.Data)
		}
	}

	// Refinement, after the batch's own additions (global predictions:
	// a misclassified sample is moved out of the class the WHOLE model
	// predicts, which may live on another shard).
	if b.Refine != nil && len(b.Refine.HVs) > 0 {
		s.refineLocked(b.Refine, dirtyCls)
	}

	s.version++
	snap := s.buildSnapshotLocked(dirtyCls, dirtyItems)
	s.snap.Store(snap)
	s.notifyApplied()
	return snap, nil
}

// refineLocked runs the refinement epochs under the writer lock. Epoch
// structure mirrors model.Classifier.Refine: predictions within an epoch
// all use the epoch-start prototypes, then the accumulator moves apply in
// sample order. dirtyCls accumulates every shard the batch has touched so
// far, so each epoch's view only re-finalizes those and shares the rest
// from the published snapshot.
func (s *Server) refineLocked(r *Refine, dirtyCls []bool) {
	for e := 0; e < r.Epochs; e++ {
		view := s.buildSnapshotLocked(dirtyCls, nil) // finalized epoch-start prototypes
		n := 0
		preds := make([]int, len(r.HVs))
		s.pool.ForEach(len(r.HVs), func(i int) {
			preds[i], _ = view.Predict(r.HVs[i])
		})
		for i, hv := range r.HVs {
			label := r.Labels[i]
			if preds[i] == label {
				continue
			}
			lsh, psh := s.shardOf[label], s.shardOf[preds[i]]
			s.shards[lsh].cls.Add(s.shards[lsh].local[label], hv)
			s.shards[psh].cls.Sub(s.shards[psh].local[preds[i]], hv)
			dirtyCls[lsh], dirtyCls[psh] = true, true
			n++
		}
		if n == 0 {
			break
		}
	}
}

// buildSnapshotLocked assembles the next snapshot under the writer lock.
// Shards not marked dirty reuse their previous view unchanged (the slices
// are immutable, so sharing is free); classifier-dirty shards re-finalize
// across the pool, item-dirty shards only refresh the item view. A nil
// slice means "all dirty" for that aspect.
func (s *Server) buildSnapshotLocked(dirtyCls, dirtyItems []bool) *Snapshot {
	prev := s.snap.Load()
	snap := &Snapshot{
		version: s.version,
		dim:     s.cfg.Dim,
		classes: s.cfg.Classes,
		shardOf: s.shardOf,
		shards:  make([]shardView, len(s.shards)),
		labels:  s.cfg.Labels,
		mem:     s.mem,
		samples: s.samples,
		pairs:   s.pairs,
		items:   s.nitems,
	}
	s.pool.ForEach(len(s.shards), func(i int) {
		clsDirty := prev == nil || dirtyCls == nil || dirtyCls[i]
		itemsDirty := prev == nil || dirtyItems == nil || dirtyItems[i]
		if !clsDirty && !itemsDirty {
			snap.shards[i] = prev.shards[i]
			return
		}
		st := s.shards[i]
		view := shardView{classes: st.classes}
		if !clsDirty {
			view.proto, view.protoIx = prev.shards[i].proto, prev.shards[i].protoIx
		} else if st.cls != nil {
			st.cls.Finalize() // deterministic: fixed tie vectors
			view.proto = make([]*bitvec.Vector, len(st.classes))
			for l := range st.classes {
				view.proto[l] = st.cls.ClassVector(l)
			}
			if s.ixCfg.Enabled(len(view.proto)) {
				view.protoIx = index.New(view.proto, s.ixCfg)
			}
		}
		if !itemsDirty {
			view.syms, view.vecs, view.itemIx = prev.shards[i].syms, prev.shards[i].vecs, prev.shards[i].itemIx
		} else {
			view.syms, view.vecs = st.items.View()
			if s.ixCfg.Enabled(len(view.vecs)) {
				// Item memories only append, so the previous snapshot's
				// index still covers a prefix of this view; keep it and let
				// Lookup scan the new tail exactly (same amortization as
				// embed.ItemMemory) until the tail outgrows the rebuild
				// bound — small item batches then cost O(batch), not
				// O(items × signature).
				var prevIx *index.Index
				if prev != nil {
					prevIx = prev.shards[i].itemIx
				}
				if prevIx != nil && len(view.vecs)-prevIx.Len() <= index.MaxTail(prevIx.Len()) {
					view.itemIx = prevIx
				} else {
					view.itemIx = index.New(view.vecs, s.ixCfg)
				}
			}
		}
		snap.shards[i] = view
	})
	if s.reg != nil && s.pairs > 0 {
		snap.reg = s.reg.Model()
	}
	return snap
}

// ---------------------------------------------------------------------------
// Read plane conveniences (stats-counted)
// ---------------------------------------------------------------------------

// Predict classifies against the current snapshot.
func (s *Server) Predict(q *bitvec.Vector) (class int, distance float64) {
	s.reads.Add(1)
	return s.Snapshot().Predict(q)
}

// PredictBatch classifies every query against ONE consistent snapshot,
// fanning out over the server pool; results are bit-identical to
// sequential Predict calls against that snapshot.
func (s *Server) PredictBatch(qs []*bitvec.Vector) (classes []int, distances []float64) {
	s.reads.Add(uint64(len(qs)))
	return s.Snapshot().PredictBatch(s.pool, qs)
}

// Lookup runs item-memory cleanup against the current snapshot.
func (s *Server) Lookup(q *bitvec.Vector) (symbol string, sim float64, ok bool) {
	s.reads.Add(1)
	return s.Snapshot().Lookup(q)
}

// PredictValue decodes a regression prediction against the current
// snapshot.
func (s *Server) PredictValue(q *bitvec.Vector) (value float64, ok bool) {
	s.reads.Add(1)
	return s.Snapshot().PredictValue(q)
}

// Cleanup reads the SDM cleanup memory of the current snapshot,
// iterating at most maxIters times.
func (s *Server) Cleanup(q *bitvec.Vector, maxIters int) (word *bitvec.Vector, iters int, ok bool) {
	s.reads.Add(1)
	return s.Snapshot().Cleanup(q, maxIters)
}

// CountReads adds n to the served-reads counter. Front ends that read
// through a held Snapshot (to keep one consistent version per request)
// rather than the Server convenience methods use this to keep the stats
// honest.
func (s *Server) CountReads(n int) {
	if n > 0 {
		s.reads.Add(uint64(n))
	}
}

// Stats is a point-in-time operational summary.
type Stats struct {
	Version     uint64 `json:"version"`
	Dim         int    `json:"dim"`
	Classes     int    `json:"classes"`
	Shards      int    `json:"shards"`
	Workers     int    `json:"workers"`
	Samples     uint64 `json:"samples"`
	Pairs       uint64 `json:"pairs"`
	Items       int    `json:"items"`
	ReadsServed uint64 `json:"reads_served"`
	MemWrites   int    `json:"mem_writes"`
	Regression  bool   `json:"regression"`
	HasCleanup  bool   `json:"cleanup"`
	// Durable reports whether a write-ahead log backs this server, and
	// LastCheckpoint the newest durable checkpoint version (0 when none
	// has been taken yet).
	Durable        bool   `json:"durable"`
	LastCheckpoint uint64 `json:"last_checkpoint,omitempty"`
	// WALSeq is the newest write-ahead record sequence appended (record
	// seq == snapshot version, so WALSeq − LastCheckpoint bounds how much
	// log a restart or a catching-up replica must replay). WALSegments is
	// the live log segment count after compaction. WALError is the sticky
	// durability failure — empty on a healthy server; non-empty means
	// every write is failing fast and an operator must step in. All three
	// are zero/empty on in-memory servers.
	WALSeq      uint64 `json:"wal_seq,omitempty"`
	WALSegments int    `json:"wal_segments,omitempty"`
	WALError    string `json:"wal_error,omitempty"`
	// Degraded reports read-only mode: a sticky storage fault stopped the
	// write plane while reads keep serving the published snapshot.
	// DegradedSince timestamps the transition.
	Degraded      bool      `json:"degraded,omitempty"`
	DegradedSince time.Time `json:"degraded_since,omitzero"`
	// Role ("primary" or "follower") and Replication are the stats schema
	// v2 additions: both are omitted on servers that are not part of a
	// replication tier, so v1 consumers see an unchanged document. Role is
	// reported once BecomeFollower or Promote has run; Replication is
	// filled by the registered replication stats callback (the shipper on
	// a primary, the applier on a follower).
	Role        string            `json:"role,omitempty"`
	Replication *ReplicationStats `json:"replication,omitempty"`
}

// Stats summarizes the current snapshot plus served-read counters.
func (s *Server) Stats() Stats {
	snap := s.Snapshot()
	st := Stats{
		Version:     snap.version,
		Dim:         s.cfg.Dim,
		Classes:     s.cfg.Classes,
		Shards:      len(s.shards),
		Workers:     s.pool.Workers(),
		Samples:     snap.samples,
		Pairs:       snap.pairs,
		Items:       snap.items,
		ReadsServed: s.reads.Load(),
		Regression:  s.cfg.Labels != nil,
		HasCleanup:  snap.mem != nil,
	}
	if snap.mem != nil {
		st.MemWrites = snap.mem.Writes()
	}
	// The log handle is read under mu: recovery swaps it for a fresh one
	// when a degraded server heals.
	s.mu.Lock()
	log := s.wal
	werr := s.walErr
	if log != nil && werr != nil && !s.closed {
		st.Degraded = true
		st.DegradedSince = s.degradedSince
	}
	if s.roleSet {
		st.Role = s.role.String()
	}
	replFn := s.replStatsFn
	s.mu.Unlock()
	if replFn != nil {
		r := replFn()
		st.Replication = &r
	}
	if log != nil {
		st.Durable = true
		st.LastCheckpoint = s.lastCkpt.Load()
		st.WALSeq = log.NextSeq() - 1
		st.WALSegments = len(log.Segments())
		s.errMu.Lock()
		cerr := s.ckptErr
		s.errMu.Unlock()
		switch {
		case werr != nil:
			st.WALError = werr.Error()
		case cerr != nil:
			st.WALError = "background checkpoint: " + cerr.Error()
		}
	}
	return st
}
