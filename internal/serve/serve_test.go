package serve

import (
	"bytes"
	"testing"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/core"
	"hdcirc/internal/embed"
	"hdcirc/internal/model"
	"hdcirc/internal/rng"
	"hdcirc/internal/sdm"
)

const (
	testDim     = 512
	testClasses = 10
)

func testConfig(shards int) Config {
	return Config{Dim: testDim, Classes: testClasses, Shards: shards, Workers: 4, Seed: 77}
}

func mustServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// referenceClassifier builds the unsharded sequential model the snapshot
// contract promises bit-identity with: same seed-derived per-class tie
// vectors, classes 0..k-1 in order.
func referenceClassifier(cfg Config) *model.Classifier {
	c := model.NewClassifier(cfg.Classes, cfg.Dim, cfg.Seed)
	tvs := make([]*bitvec.Vector, cfg.Classes)
	for i := range tvs {
		tvs[i] = classTieVector(cfg.Seed, cfg.Dim, i)
	}
	c.SetTieVectors(tvs)
	return c
}

func randomSamples(n int, seed uint64) []Sample {
	src := rng.New(seed)
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{Class: src.Intn(testClasses), HV: bitvec.Random(testDim, src)}
	}
	return out
}

func TestNewServerValidation(t *testing.T) {
	bad := []Config{
		{Dim: 0, Classes: 3},
		{Dim: -5, Classes: 3},
		{Dim: 64, Classes: 0},
		{Dim: 64, Classes: 2, Shards: 4, RingPositions: 2},
	}
	for i, cfg := range bad {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// Mismatched label-encoder dimension.
	labels := embed.NewScalarEncoder(core.Config{Kind: core.KindLevel, M: 8, D: 128}.Build(rng.New(1)), 0, 7)
	if _, err := NewServer(Config{Dim: 64, Classes: 2, Labels: labels}); err == nil {
		t.Error("label encoder with wrong dimension accepted")
	}
}

// TestSnapshotMatchesSequentialModel trains through ApplyBatch and checks
// every published version is bit-identical to the sequential reference
// model replaying the same batches — for 1 shard and for many, so the
// sharded routing provably changes nothing about results.
func TestSnapshotMatchesSequentialModel(t *testing.T) {
	for _, shards := range []int{1, 3, 4} {
		cfg := testConfig(shards)
		s := mustServer(t, cfg)
		ref := referenceClassifier(cfg)
		queries := randomSamples(32, 99)

		for b := 0; b < 6; b++ {
			batchSamples := randomSamples(20, uint64(1000+b))
			snap, err := s.ApplyBatch(Batch{Train: batchSamples})
			if err != nil {
				t.Fatal(err)
			}
			if snap.Version() != uint64(b+1) {
				t.Fatalf("shards=%d: version %d after batch %d", shards, snap.Version(), b)
			}
			for _, smp := range batchSamples {
				ref.Add(smp.Class, smp.HV)
			}
			ref.Finalize()
			for c := 0; c < cfg.Classes; c++ {
				if !snap.ClassVector(c).Equal(ref.ClassVector(c)) {
					t.Fatalf("shards=%d v%d: prototype %d differs from sequential model", shards, snap.Version(), c)
				}
			}
			for qi, q := range queries {
				gotC, gotD := snap.Predict(q.HV)
				wantC, wantD := ref.Predict(q.HV)
				if gotC != wantC || gotD != wantD {
					t.Fatalf("shards=%d v%d query %d: got (%d,%v), sequential (%d,%v)",
						shards, snap.Version(), qi, gotC, gotD, wantC, wantD)
				}
				scores := snap.Scores(q.HV)
				refScores := ref.Scores(q.HV)
				for c := range scores {
					if scores[c] != refScores[c] {
						t.Fatalf("shards=%d v%d query %d: score %d differs", shards, snap.Version(), qi, c)
					}
				}
			}
		}
	}
}

// TestUntrainInvertsTrain applies a batch and its inverse and expects the
// original prototypes back.
func TestUntrainInvertsTrain(t *testing.T) {
	s := mustServer(t, testConfig(3))
	base := randomSamples(30, 5)
	snap1, err := s.ApplyBatch(Batch{Train: base})
	if err != nil {
		t.Fatal(err)
	}
	extra := randomSamples(10, 6)
	if _, err := s.ApplyBatch(Batch{Train: extra}); err != nil {
		t.Fatal(err)
	}
	snap3, err := s.ApplyBatch(Batch{Untrain: extra})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < testClasses; c++ {
		if !snap3.ClassVector(c).Equal(snap1.ClassVector(c)) {
			t.Fatalf("prototype %d not restored after Untrain", c)
		}
	}
}

// TestRefineMatchesAcrossShardCounts runs the same train+refine workload
// on 1-shard and 4-shard servers: global refinement must produce identical
// prototypes because predictions and tie vectors are shard-independent.
func TestRefineMatchesAcrossShardCounts(t *testing.T) {
	train := randomSamples(60, 11)
	hvs := make([]*bitvec.Vector, len(train))
	labels := make([]int, len(train))
	for i, smp := range train {
		hvs[i], labels[i] = smp.HV, smp.Class
	}
	var first *Snapshot
	for _, shards := range []int{1, 4} {
		s := mustServer(t, testConfig(shards))
		snap, err := s.ApplyBatch(Batch{Train: train, Refine: &Refine{HVs: hvs, Labels: labels, Epochs: 5}})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = snap
			continue
		}
		for c := 0; c < testClasses; c++ {
			if !snap.ClassVector(c).Equal(first.ClassVector(c)) {
				t.Fatalf("refined prototype %d differs between 1 and %d shards", c, shards)
			}
		}
	}
}

// TestItemsAndLookup checks membership churn: interned symbols route to
// shards, vectors match the seed derivation, and cleanup lookup recovers a
// noisy member.
func TestItemsAndLookup(t *testing.T) {
	cfg := testConfig(4)
	s := mustServer(t, cfg)
	syms := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	snap, err := s.ApplyBatch(Batch{Items: syms})
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumItems() != len(syms) {
		t.Fatalf("items = %d, want %d", snap.NumItems(), len(syms))
	}
	// Re-interning is a no-op.
	snap, err = s.ApplyBatch(Batch{Items: []string{"beta", "zeta"}})
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumItems() != len(syms)+1 {
		t.Fatalf("items = %d after churn, want %d", snap.NumItems(), len(syms)+1)
	}
	for _, sym := range syms {
		hv, ok := snap.Item(sym)
		if !ok {
			t.Fatalf("symbol %q lost", sym)
		}
		want := embed.NewItemMemory(cfg.Dim, cfg.Seed).Get(sym)
		if !hv.Equal(want) {
			t.Fatalf("symbol %q vector differs from seed derivation", sym)
		}
		// Corrupt 10% of bits; cleanup must still find it.
		noisy := hv.Clone()
		src := rng.New(123)
		for i := 0; i < cfg.Dim/10; i++ {
			noisy.FlipBit(src.Intn(cfg.Dim))
		}
		got, sim, ok := snap.Lookup(noisy)
		if !ok || got != sym {
			t.Fatalf("lookup(%q+noise) = %q, %v", sym, got, ok)
		}
		if sim < 0.7 {
			t.Errorf("lookup similarity %v suspiciously low", sim)
		}
	}
	if _, ok := snap.Item("missing"); ok {
		t.Error("phantom item")
	}
}

// TestRegression trains pairs through the server and decodes them back.
func TestRegression(t *testing.T) {
	cfg := testConfig(2)
	labelSet := core.Config{Kind: core.KindLevel, M: 32, D: cfg.Dim}.Build(rng.Sub(cfg.Seed, "test/labels"))
	cfg.Labels = embed.NewScalarEncoder(labelSet, 0, 31)
	s := mustServer(t, cfg)

	// Uncorrelated sample encodings keep the memorized pairs
	// quasi-orthogonal so the unbind-decode recall is clean.
	sampleSet := core.Config{Kind: core.KindRandom, M: 32, D: cfg.Dim}.Build(rng.Sub(cfg.Seed, "test/samples"))
	enc := embed.NewScalarEncoder(sampleSet, 0, 31)

	if _, ok := s.Snapshot().PredictValue(enc.Encode(3)); ok {
		t.Error("untrained regressor claimed a prediction")
	}
	var batch Batch
	for x := 0; x < 32; x += 2 {
		batch.Pairs = append(batch.Pairs, Pair{X: enc.Encode(float64(x)), Value: float64(x)})
	}
	snap, err := s.ApplyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Pairs() != uint64(len(batch.Pairs)) {
		t.Fatalf("pairs = %d", snap.Pairs())
	}
	got, ok := snap.PredictValue(enc.Encode(10))
	if !ok {
		t.Fatal("trained regressor returned !ok")
	}
	if got < 6 || got > 14 {
		t.Errorf("decode(10) = %v, want ≈10", got)
	}
}

// TestCleanupMemory writes through the server and reads back through the
// snapshot, checking the COW generations isolate published snapshots.
func TestCleanupMemory(t *testing.T) {
	cfg := testConfig(2)
	mc := sdm.DefaultConfig(cfg.Dim)
	mc.Locations = 2000
	cfg.Cleanup = &mc
	s := mustServer(t, cfg)

	src := rng.New(9)
	stored := make([]*bitvec.Vector, 6)
	var b Batch
	for i := range stored {
		stored[i] = bitvec.Random(cfg.Dim, src)
		b.Writes = append(b.Writes, MemWrite{Address: stored[i], Data: stored[i]})
	}
	snapA, err := s.ApplyBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	readsA := make([]*bitvec.Vector, len(stored))
	for i, v := range stored {
		got, _, ok := snapA.Cleanup(v, 4)
		if !ok {
			t.Fatalf("cleanup read %d failed", i)
		}
		readsA[i] = got
	}
	// A second generation of writes must not disturb snapshot A.
	var b2 Batch
	for i := 0; i < 20; i++ {
		v := bitvec.Random(cfg.Dim, src)
		b2.Writes = append(b2.Writes, MemWrite{Address: v, Data: v})
	}
	if _, err := s.ApplyBatch(b2); err != nil {
		t.Fatal(err)
	}
	for i, v := range stored {
		got, _, ok := snapA.Cleanup(v, 4)
		if !ok || !got.Equal(readsA[i]) {
			t.Fatalf("snapshot A cleanup read %d changed after later writes", i)
		}
	}
}

// TestApplyBatchValidation checks a rejected batch mutates nothing.
func TestApplyBatchValidation(t *testing.T) {
	s := mustServer(t, testConfig(2))
	good := randomSamples(10, 21)
	before, err := s.ApplyBatch(Batch{Train: good})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	bad := []Batch{
		{Train: []Sample{{Class: testClasses, HV: bitvec.Random(testDim, src)}}},
		{Train: []Sample{{Class: -1, HV: bitvec.Random(testDim, src)}}},
		{Train: []Sample{{Class: 0, HV: bitvec.Random(64, src)}}},
		{Train: []Sample{{Class: 0, HV: nil}}},
		{Pairs: []Pair{{X: bitvec.Random(testDim, src), Value: 1}}},                                     // no label encoder
		{Writes: []MemWrite{{Address: bitvec.Random(testDim, src), Data: bitvec.Random(testDim, src)}}}, // no cleanup
		{Refine: &Refine{HVs: []*bitvec.Vector{bitvec.Random(testDim, src)}, Labels: []int{0, 1}, Epochs: 1}},
		{Refine: &Refine{HVs: []*bitvec.Vector{bitvec.Random(testDim, src)}, Labels: []int{testClasses}, Epochs: 1}},
		{Refine: &Refine{HVs: []*bitvec.Vector{bitvec.Random(testDim, src)}, Labels: []int{0}, Epochs: -1}},
	}
	for i, b := range bad {
		if _, err := s.ApplyBatch(b); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
	}
	after := s.Snapshot()
	if after.Version() != before.Version() {
		t.Fatalf("rejected batches moved the version: %d → %d", before.Version(), after.Version())
	}
	for c := 0; c < testClasses; c++ {
		if !after.ClassVector(c).Equal(before.ClassVector(c)) {
			t.Fatalf("rejected batches mutated prototype %d", c)
		}
	}
}

// TestRouteAndStats sanity-checks the routing and stats surfaces.
func TestRouteAndStats(t *testing.T) {
	s := mustServer(t, testConfig(4))
	shard, member, slot := s.Route("some-key")
	if shard < 0 || shard >= 4 {
		t.Errorf("route shard = %d", shard)
	}
	if member != shardMember(shard) {
		t.Errorf("member %q for shard %d", member, shard)
	}
	if slot < 0 || slot >= s.Config().RingPositions {
		t.Errorf("slot = %d", slot)
	}
	sh2, _, _ := s.Route("some-key")
	if sh2 != shard {
		t.Error("routing not deterministic")
	}

	if _, err := s.ApplyBatch(Batch{Train: randomSamples(8, 31), Items: []string{"x", "y"}}); err != nil {
		t.Fatal(err)
	}
	qs := randomSamples(5, 32)
	for _, q := range qs {
		s.Predict(q.HV)
	}
	st := s.Stats()
	if st.Version != 1 || st.Samples != 8 || st.Items != 2 || st.Shards != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.ReadsServed < 5 {
		t.Errorf("reads served = %d", st.ReadsServed)
	}
}

// TestPredictBatchMatchesSequential checks the pooled batch predict is
// bit-identical to one-by-one prediction on the same snapshot.
func TestPredictBatchMatchesSequential(t *testing.T) {
	s := mustServer(t, testConfig(3))
	if _, err := s.ApplyBatch(Batch{Train: randomSamples(40, 41)}); err != nil {
		t.Fatal(err)
	}
	qs := randomSamples(64, 42)
	hvs := make([]*bitvec.Vector, len(qs))
	for i, q := range qs {
		hvs[i] = q.HV
	}
	classes, dists := s.PredictBatch(hvs)
	snap := s.Snapshot()
	for i, hv := range hvs {
		wc, wd := snap.Predict(hv)
		if classes[i] != wc || dists[i] != wd {
			t.Fatalf("batched predict %d = (%d,%v), sequential (%d,%v)", i, classes[i], dists[i], wc, wd)
		}
	}
}

// TestPersistRoundTrip saves a trained server's snapshot and warm-starts a
// fresh server from it: every read surface must be bit-identical.
func TestPersistRoundTrip(t *testing.T) {
	cfg := testConfig(3)
	labelSet := core.Config{Kind: core.KindLevel, M: 16, D: cfg.Dim}.Build(rng.Sub(cfg.Seed, "test/labels"))
	cfg.Labels = embed.NewScalarEncoder(labelSet, 0, 15)
	a := mustServer(t, cfg)
	var b Batch
	b.Train = randomSamples(50, 51)
	b.Items = []string{"one", "two", "three"}
	src := rng.New(52)
	for i := 0; i < 10; i++ {
		b.Pairs = append(b.Pairs, Pair{X: bitvec.Random(cfg.Dim, src), Value: float64(i)})
	}
	snapA, err := a.ApplyBatch(b)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := snapA.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := mustServer(t, cfg)
	if err := fresh.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	snapB := fresh.Snapshot()
	if snapB.Version() != snapA.Version() || snapB.Samples() != snapA.Samples() ||
		snapB.Pairs() != snapA.Pairs() || snapB.NumItems() != snapA.NumItems() {
		t.Fatalf("restored counters differ: %d/%d/%d/%d vs %d/%d/%d/%d",
			snapB.Version(), snapB.Samples(), snapB.Pairs(), snapB.NumItems(),
			snapA.Version(), snapA.Samples(), snapA.Pairs(), snapA.NumItems())
	}
	for c := 0; c < cfg.Classes; c++ {
		if !snapB.ClassVector(c).Equal(snapA.ClassVector(c)) {
			t.Fatalf("restored prototype %d differs", c)
		}
	}
	if !snapB.RegressorModel().Equal(snapA.RegressorModel()) {
		t.Fatal("restored regressor model differs")
	}
	for qi, q := range randomSamples(16, 53) {
		ac, ad := snapA.Predict(q.HV)
		bc, bd := snapB.Predict(q.HV)
		if ac != bc || ad != bd {
			t.Fatalf("query %d: restored predict differs", qi)
		}
		av, _ := snapA.PredictValue(q.HV)
		bv, _ := snapB.PredictValue(q.HV)
		if av != bv {
			t.Fatalf("query %d: restored regression differs", qi)
		}
		as, _, aok := snapA.Lookup(q.HV)
		bs, _, bok := snapB.Lookup(q.HV)
		if as != bs || aok != bok {
			t.Fatalf("query %d: restored lookup differs", qi)
		}
	}

	// Restore refuses a non-fresh server and foreign bytes.
	if err := a.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Restore into a written server accepted")
	}
	fresh2 := mustServer(t, cfg)
	if err := fresh2.Restore(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("Restore accepted garbage")
	}
	// Shape mismatch: different class count.
	other := testConfig(2)
	other.Classes = testClasses + 1
	fresh3 := mustServer(t, other)
	if err := fresh3.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Restore accepted mismatched class count")
	}
}

// TestWarmStartContinuedTraining checks a warm-started server keeps
// accepting writes and stays consistent with its own sequential reference
// going forward.
func TestWarmStartContinuedTraining(t *testing.T) {
	cfg := testConfig(2)
	a := mustServer(t, cfg)
	if _, err := a.ApplyBatch(Batch{Train: randomSamples(30, 61)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := a.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := mustServer(t, cfg)
	if err := loaded.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	more := randomSamples(20, 62)
	snap, err := loaded.ApplyBatch(Batch{Train: more})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 2 {
		t.Errorf("version after warm-start write = %d, want 2", snap.Version())
	}
	if snap.Samples() != 50 {
		t.Errorf("samples = %d, want 50", snap.Samples())
	}
	// Predictions still well-formed over every class.
	for _, q := range more {
		c, dist := snap.Predict(q.HV)
		if c < 0 || c >= cfg.Classes || dist < 0 || dist > 1 {
			t.Fatalf("degenerate prediction (%d, %v) after warm start", c, dist)
		}
	}
}

func TestShardMemberName(t *testing.T) {
	if shardMember(3) != "shard/3" {
		t.Errorf("shardMember(3) = %q", shardMember(3))
	}
	if shardMember(0) != "shard/0" {
		t.Error("shardMember(0)")
	}
}
