package serve

// Degraded read-only mode: a sticky WAL fault must stop the write plane
// while reads keep serving the published snapshot, and Recover (manual or
// via the auto-retry probe) must return the server to healthy without
// losing an acknowledged write — or refuse, loudly, when the log can no
// longer prove the acknowledged prefix.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"syscall"
	"testing"
	"time"

	"hdcirc/internal/bitvec"
	"hdcirc/internal/rng"
	"hdcirc/internal/vfs"
)

// faultedConfig is durableConfig over an injectable filesystem.
func faultedConfig(t *testing.T) (Config, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFaultFS(nil)
	cfg := durableConfig(t.TempDir())
	cfg.WAL.FS = ffs
	return cfg, ffs
}

func TestDegradedReadOnlyThenRecover(t *testing.T) {
	cfg, ffs := faultedConfig(t)
	s := mustOpen(t, cfg)
	defer s.Close()

	src := rng.New(99)
	var acked []Batch
	for i := 0; i < 6; i++ {
		b := randomBatch(cfg, src)
		if _, err := s.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, b)
	}
	preVersion := s.Snapshot().Version()
	preBytes := snapshotBytes(t, s.Snapshot())

	// The disk fills up mid-append.
	ffs.Arm(vfs.Fault{Op: vfs.OpWrite, Path: ".seg", Err: vfs.ErrNoSpace})
	if _, err := s.ApplyBatch(randomBatch(cfg, src)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk: %v, want ENOSPC", err)
	}
	if st := s.State(); st != StateDegraded {
		t.Fatalf("state after fault: %v, want degraded", st)
	}
	reason, since, degraded := s.Degraded()
	if !degraded || reason == nil || since.IsZero() {
		t.Fatalf("Degraded() = (%v, %v, %v) after fault", reason, since, degraded)
	}

	// Later writes fail fast with both sentinels, without touching disk.
	before := ffs.Ops(vfs.OpWrite)
	_, err := s.ApplyBatch(randomBatch(cfg, src))
	if !errors.Is(err, ErrDegraded) || !errors.Is(err, ErrWALFailed) {
		t.Fatalf("degraded write error %v, want ErrDegraded and ErrWALFailed", err)
	}
	if got := ffs.Ops(vfs.OpWrite); got != before {
		t.Fatalf("degraded write touched the disk (%d -> %d writes)", before, got)
	}

	// Reads keep serving the last published snapshot, bit-identically.
	if !bytes.Equal(snapshotBytes(t, s.Snapshot()), preBytes) {
		t.Fatal("published snapshot changed while degraded")
	}
	st := s.Stats()
	if !st.Degraded || st.DegradedSince.IsZero() || st.WALError == "" {
		t.Fatalf("stats do not report degradation: %+v", st)
	}

	// Operator clears the fault; recovery re-opens the log and resumes.
	ffs.Clear()
	if err := s.Recover(); err != nil {
		t.Fatalf("recover on healed disk: %v", err)
	}
	if st := s.State(); st != StateHealthy {
		t.Fatalf("state after recover: %v, want healthy", st)
	}
	if _, _, degraded := s.Degraded(); degraded {
		t.Fatal("Degraded() still true after recover")
	}
	if v := s.Snapshot().Version(); v != preVersion {
		t.Fatalf("version %d after recover, want %d (failed batch must not apply)", v, preVersion)
	}
	more := randomBatch(cfg, src)
	if _, err := s.ApplyBatch(more); err != nil {
		t.Fatalf("write after recover: %v", err)
	}
	acked = append(acked, more)

	// The recovered server equals a sequential replay of exactly the
	// acknowledged batches.
	ref := mustOpen(t, durableConfig(""))
	defer ref.Close()
	for _, b := range acked {
		if _, err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	probes := make([]*bitvec.Vector, 8)
	psrc := rng.New(5)
	for i := range probes {
		probes[i] = bitvec.Random(cfg.Dim, psrc)
	}
	requireSameState(t, s, ref, probes)

	// And the degradation survives nowhere: a restart from the directory
	// sees the same state.
	s.Close()
	re := mustOpen(t, cfg)
	defer re.Close()
	requireSameState(t, re, ref, probes)
}

func TestRecoverCatchesUpUnackedRecord(t *testing.T) {
	cfg, ffs := faultedConfig(t)
	s := mustOpen(t, cfg)
	defer s.Close()

	src := rng.New(7)
	first := randomBatch(cfg, src)
	if _, err := s.ApplyBatch(first); err != nil {
		t.Fatal(err)
	}

	// The record hits the disk but its fsync fails: written, never
	// acknowledged. Recovery must treat it like a crash would — replay it.
	ffs.Arm(vfs.Fault{Op: vfs.OpSync, Path: ".seg", Err: vfs.ErrIO, Count: 1})
	lost := randomBatch(cfg, src)
	if _, err := s.ApplyBatch(lost); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append with failing fsync: %v, want EIO", err)
	}
	if v := s.Snapshot().Version(); v != 1 {
		t.Fatalf("version %d after unacked append, want 1", v)
	}

	ffs.Clear()
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if v := s.Snapshot().Version(); v != 2 {
		t.Fatalf("version %d after catch-up, want 2 (the unacked record replays)", v)
	}

	ref := mustOpen(t, durableConfig(""))
	defer ref.Close()
	for _, b := range []Batch{first, lost} {
		if _, err := ref.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, s, ref, nil)
}

func TestRecoverRefusesWhenAckedRecordsLost(t *testing.T) {
	cfg, ffs := faultedConfig(t)
	s := mustOpen(t, cfg)
	defer s.Close()

	src := rng.New(11)
	for i := 0; i < 5; i++ {
		if _, err := s.ApplyBatch(randomBatch(cfg, src)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.Arm(vfs.Fault{Op: vfs.OpWrite, Path: ".seg", Err: vfs.ErrIO, Count: 1})
	if _, err := s.ApplyBatch(randomBatch(cfg, src)); err == nil {
		t.Fatal("faulted append succeeded")
	}
	ffs.Clear()

	// The "repair" destroys the log: every acknowledged record vanishes.
	for _, path := range s.wal.Segments() {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
	err := s.Recover()
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("recover over an emptied log: %v, want ErrUnrecoverable", err)
	}
	if st := s.State(); st != StateDegraded {
		t.Fatalf("state after refused recovery: %v, want degraded (still)", st)
	}
}

func TestAutoRetryProbeRecovers(t *testing.T) {
	cfg, ffs := faultedConfig(t)
	cfg.WAL.RetryInterval = 5 * time.Millisecond
	cfg.WAL.RetryMax = 200
	s := mustOpen(t, cfg)
	defer s.Close()

	src := rng.New(3)
	if _, err := s.ApplyBatch(randomBatch(cfg, src)); err != nil {
		t.Fatal(err)
	}
	// One transient EIO on fsync; the fault self-clears (Count: 1), so the
	// probe's reopen succeeds without operator action.
	ffs.Arm(vfs.Fault{Op: vfs.OpSync, Path: ".seg", Err: vfs.ErrIO, Count: 1})
	if _, err := s.ApplyBatch(randomBatch(cfg, src)); err == nil {
		t.Fatal("faulted append succeeded")
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.State() != StateHealthy {
		if time.Now().After(deadline) {
			t.Fatal("probe did not recover the server")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := s.ApplyBatch(randomBatch(cfg, src)); err != nil {
		t.Fatalf("write after probe recovery: %v", err)
	}
}

func TestApplyBatchContextExpiredFailsDeterministically(t *testing.T) {
	s := mustOpen(t, durableConfig(""))
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ApplyBatchContext(ctx, Batch{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: %v, want context.Canceled", err)
	}
	ctx, cancel = context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := s.ApplyBatchContext(ctx, Batch{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: %v, want context.DeadlineExceeded", err)
	}
}

func TestApplyBatchContextTimesOutBehindSlowWriter(t *testing.T) {
	cfg, ffs := faultedConfig(t)
	s := mustOpen(t, cfg)
	defer s.Close()

	src := rng.New(21)
	// The first writer stalls 400 ms inside its record write while holding
	// the write slot; no error, just a slow disk. (.seg write 1 is the
	// segment header laid down by rotation; write 2 is the record.)
	ffs.Arm(vfs.Fault{Op: vfs.OpWrite, Path: ".seg", Delay: 400 * time.Millisecond, After: 1, Count: 1})
	slow := randomBatch(cfg, src)
	done := make(chan error, 1)
	go func() {
		_, err := s.ApplyBatch(slow)
		done <- err
	}()
	// Wait until the stalled writer is provably inside the injected delay.
	for ffs.Fired() == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.ApplyBatchContext(ctx, randomBatch(cfg, src)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued writer past its deadline: %v, want context.DeadlineExceeded", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("slow writer failed: %v", err)
	}
	// The slow writer's batch was applied; the timed-out one was not.
	if v := s.Snapshot().Version(); v != 1 {
		t.Fatalf("version %d, want 1", v)
	}
}
