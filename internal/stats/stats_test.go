package stats

import (
	"math"
	"testing"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4}); got != 0.75 {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
	if got := Accuracy([]int{1}, []int{1}); got != 1 {
		t.Errorf("Accuracy = %v, want 1", got)
	}
}

func TestAccuracyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mismatch": func() { Accuracy([]int{1}, []int{1, 2}) },
		"empty":    func() { Accuracy(nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMSEAndFriends(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 4, 0}
	if got := MSE(pred, truth); math.Abs(got-13.0/3) > 1e-12 {
		t.Errorf("MSE = %v, want %v", got, 13.0/3)
	}
	if got := MAE(pred, truth); math.Abs(got-5.0/3) > 1e-12 {
		t.Errorf("MAE = %v, want %v", got, 5.0/3)
	}
	if got := RMSE(pred, truth); math.Abs(got-math.Sqrt(13.0/3)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if MSE([]float64{2}, []float64{2}) != 0 {
		t.Error("MSE of identical vectors != 0")
	}
}

func TestNormalizedMetrics(t *testing.T) {
	if got := NormalizedAccuracyError(0.9, 0.8); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("normalized accuracy error = %v, want 0.5", got)
	}
	if got := NormalizedAccuracyError(0.8, 0.8); got != 1 {
		t.Errorf("same accuracy should normalize to 1, got %v", got)
	}
	if got := NormalizedMSE(5, 10); got != 0.5 {
		t.Errorf("NormalizedMSE = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("perfect reference accuracy did not panic")
			}
		}()
		NormalizedAccuracyError(0.5, 1.0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero reference MSE did not panic")
			}
		}()
		NormalizedMSE(1, 0)
	}()
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
}

func TestConfusion(t *testing.T) {
	c := NewConfusion(3)
	c.Observe(0, 0)
	c.Observe(0, 1)
	c.Observe(1, 1)
	c.Observe(2, 2)
	c.Observe(2, 2)
	if c.Total() != 5 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.At(0, 1) != 1 || c.At(2, 2) != 2 {
		t.Error("At returns wrong counts")
	}
	if got := c.Accuracy(); got != 0.8 {
		t.Errorf("Accuracy = %v, want 0.8", got)
	}
	rec := c.PerClassRecall()
	if rec[0] != 0.5 || rec[1] != 1 || rec[2] != 1 {
		t.Errorf("recall = %v", rec)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	c := NewConfusion(2)
	if c.Accuracy() != 0 {
		t.Error("empty confusion accuracy != 0")
	}
	if !math.IsNaN(c.PerClassRecall()[0]) {
		t.Error("recall of unseen class should be NaN")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range class did not panic")
			}
		}()
		c.Observe(2, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("k=0 confusion did not panic")
			}
		}()
		NewConfusion(0)
	}()
}

func TestCircularDistance(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, math.Pi, 1},
		{0, math.Pi / 2, 0.5},
		{0.3, 0.3 + 2*math.Pi, 0},
		{math.Pi / 4, -math.Pi / 4, (1 - math.Cos(math.Pi/2)) / 2},
	}
	for _, c := range cases {
		if got := CircularDistance(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ρ(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Symmetry.
	if CircularDistance(1, 2) != CircularDistance(2, 1) {
		t.Error("ρ not symmetric")
	}
}

func TestArcDistance(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, math.Pi, 1},
		{0, math.Pi / 2, 0.5},
		{0, 3 * math.Pi / 2, 0.5}, // wraps the short way
		{0.1, 0.1 + 2*math.Pi, 0},
	}
	for _, c := range cases {
		if got := ArcDistance(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("arc(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCircularSummary(t *testing.T) {
	// Tight cluster at π/2.
	angles := []float64{math.Pi/2 - 0.01, math.Pi / 2, math.Pi/2 + 0.01}
	s := Circular(angles)
	if math.Abs(s.Mean-math.Pi/2) > 1e-6 {
		t.Errorf("Mean = %v, want π/2", s.Mean)
	}
	if s.Resultant < 0.999 {
		t.Errorf("Resultant = %v, want ≈ 1", s.Resultant)
	}
	if s.Variance > 0.001 {
		t.Errorf("Variance = %v, want ≈ 0", s.Variance)
	}
	if s.N != 3 {
		t.Errorf("N = %d", s.N)
	}
}

func TestCircularMeanWrapsCorrectly(t *testing.T) {
	// Angles straddling 0: linear mean would be π (wrong); circular mean
	// must be ≈ 0.
	angles := []float64{0.1, 2*math.Pi - 0.1}
	s := Circular(angles)
	diff := math.Min(s.Mean, 2*math.Pi-s.Mean)
	if diff > 1e-9 {
		t.Errorf("circular mean of straddling sample = %v, want ≈ 0", s.Mean)
	}
}

func TestCircularAntipodal(t *testing.T) {
	s := Circular([]float64{0, math.Pi})
	if s.Resultant > 1e-9 {
		t.Errorf("antipodal resultant = %v, want 0", s.Resultant)
	}
	if !math.IsNaN(s.Mean) {
		t.Errorf("antipodal mean should be NaN, got %v", s.Mean)
	}
	if math.Abs(s.Variance-1) > 1e-9 {
		t.Errorf("antipodal variance = %v, want 1", s.Variance)
	}
}

func TestCircularLinearCorrelationPerfect(t *testing.T) {
	// x = cos θ is perfectly circular-linearly associated.
	n := 500
	theta := make([]float64, n)
	x := make([]float64, n)
	for i := range theta {
		theta[i] = 2 * math.Pi * float64(i) / float64(n)
		x[i] = math.Cos(theta[i])
	}
	if r2 := CircularLinearCorrelation(theta, x); r2 < 0.999 {
		t.Errorf("R² = %v, want ≈ 1", r2)
	}
}

func TestCircularLinearCorrelationPhaseShift(t *testing.T) {
	// A phase-shifted sinusoid is still perfectly associated (that is the
	// point of using both cos and sin regressors).
	n := 500
	theta := make([]float64, n)
	x := make([]float64, n)
	for i := range theta {
		theta[i] = 2 * math.Pi * float64(i) / float64(n)
		x[i] = 3 * math.Sin(theta[i]+1.1)
	}
	if r2 := CircularLinearCorrelation(theta, x); r2 < 0.999 {
		t.Errorf("R² = %v, want ≈ 1", r2)
	}
}

func TestCircularLinearCorrelationIndependent(t *testing.T) {
	// A constant response carries no association.
	theta := []float64{0.1, 1.3, 2.2, 3.9, 5.5}
	x := []float64{2, 2, 2, 2, 2}
	if r2 := CircularLinearCorrelation(theta, x); r2 != 0 {
		t.Errorf("R² = %v, want 0 for constant x", r2)
	}
}

func TestCircularLinearCorrelationPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch did not panic")
			}
		}()
		CircularLinearCorrelation([]float64{1, 2, 3}, []float64{1, 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("tiny sample did not panic")
			}
		}()
		CircularLinearCorrelation([]float64{1, 2}, []float64{1, 2})
	}()
}

func TestCircularPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty circular summary did not panic")
		}
	}()
	Circular(nil)
}
